(* Hand-crafted histories with known satisfaction vectors: the ground truth
   the naive evaluator and the incremental checker must both reproduce. *)

open Helpers

(* Three snapshots:
     t=0: p(1)
     t=5: q(1)
     t=7: p(2), q(1)   *)
let h3 () =
  generic_history
    "@0\n+p(1)\n@5\n-p(1)\n+q(1)\n@7\n+p(2)\n"

let cat = Gen.generic_catalog

let case name formula expected =
  Alcotest.test_case name `Quick (fun () ->
      check_both_vectors name cat (h3 ()) (parse_formula formula) expected)

let basic_cases =
  [ case "exists-p" "exists x. p(x)" [ true; false; true ];
    case "once-unbounded" "once (exists x. p(x))" [ true; true; true ];
    case "once-window" "once[0,4] (exists x. p(x))" [ true; false; true ];
    case "once-point" "once[5,5] (exists x. p(x))" [ false; true; false ];
    case "prev-q" "prev (exists x. q(x))" [ false; false; true ];
    case "prev-gap" "prev[3,10] (exists x. p(x))" [ false; true; false ];
    case "since-plain"
      "(exists x. q(x)) since (exists x. p(x))"
      [ true; true; true ];
    case "since-lower-bound"
      "(exists x. q(x)) since[2,inf] (exists x. p(x))"
      [ false; true; true ];
    case "since-negated-left"
      "(not (exists x. q(x))) since (exists x. p(x))"
      [ true; false; true ];
    case "forall-once"
      "forall x. q(x) -> once[0,10] p(x)"
      [ true; true; true ];
    case "forall-prev-once"
      "forall x. p(x) -> prev once q(x)"
      [ false; true; false ];
    case "historically-or"
      "historically (exists x. (p(x) | q(x)))"
      [ true; true; true ];
    case "historically-window"
      "historically[0,4] (exists x. p(x))"
      [ true; false; false ];
    case "nested-once-prev"
      "once[0,10] prev (exists x. p(x))"
      [ false; true; true ];
    case "guarded-negation"
      "forall x. p(x) -> not q(x)"
      [ true; true; true ];
    case "comparison-filter"
      "forall x. p(x) -> x >= 1 & x <= 2"
      [ true; true; true ];
    case "comparison-violated"
      "forall x. p(x) -> x >= 2"
      [ false; true; true ] ]

(* Per-valuation windows: witnesses for different valuations age
   independently.
     t=0: p(1)
     t=2: p(2)
     t=9: q(1), q(2)    (neither p within [0,5]... p(2) at d=7, p(1) at d=9)
     t=10: q(1), q(2)   *)
let h_window () =
  generic_history
    "@0\n+p(1)\n@2\n-p(1)\n+p(2)\n@9\n-p(2)\n+q(1)\n+q(2)\n@10\n"

let window_cases =
  [ Alcotest.test_case "per-valuation-window" `Quick (fun () ->
        check_both_vectors "q-implies-recent-p" cat (h_window ())
          (parse_formula "forall x. q(x) -> once[0,8] p(x)")
          (* pos2 (t=9): q(1): p(1) at d9 — too old; fails.
             pos3 (t=10): same. *)
          [ true; true; false; false ]);
    Alcotest.test_case "per-valuation-window-wide" `Quick (fun () ->
        check_both_vectors "q-implies-p-within-9" cat (h_window ())
          (parse_formula "forall x. q(x) -> once[0,9] p(x)")
          (* pos2 (t=9): p(1)@0 d=9 ok, p(2)@2 d=7 ok: holds.
             pos3 (t=10): p(1)@0 d=10 too old, p(2)@2 d=8 ok for x=2;
             x=1 fails. *)
          [ true; true; true; false ]) ]

(* Since with survival: the left argument must hold at every state after the
   witness.
     t=1: q(5)          (witness)
     t=2: p(5)          (left holds; q gone)
     t=3: p(5)          (left holds)
     t=4:               (left fails)
     t=5: p(5)          (left holds again, but chain broken)  *)
let h_since () =
  generic_history
    "@1\n+q(5)\n@2\n-q(5)\n+p(5)\n@3\n@4\n-p(5)\n@5\n+p(5)\n"

let since_cases =
  [ Alcotest.test_case "since-survival" `Quick (fun () ->
        check_both_vectors "p-since-q" cat (h_since ())
          (parse_formula "exists x. (p(x) since q(x))")
          (* pos0: witness q(5) at t1 (j=i allowed). pos1: q@1 + p@2 holds.
             pos2: p@2,3 hold. pos3: p fails at t4 — chain broken.
             pos4: p holds at t5 but no further q witness. *)
          [ true; true; true; false; false ]) ]

(* Prev chains and empty-history edges. *)
let edge_cases =
  [ Alcotest.test_case "prev-at-origin" `Quick (fun () ->
        check_both_vectors "prev-false-at-0" cat
          (generic_history "@0\n+e()\n")
          (parse_formula "prev e()")
          [ false ]);
    Alcotest.test_case "prev-prev" `Quick (fun () ->
        check_both_vectors "prev-prev" cat
          (generic_history "@0\n+e()\n@1\n-e()\n@2\n@3\n")
          (parse_formula "prev prev e()")
          [ false; false; true; false ]);
    Alcotest.test_case "once-event" `Quick (fun () ->
        check_both_vectors "once-e" cat
          (generic_history "@0\n@3\n+e()\n@4\n-e()\n@20\n")
          (parse_formula "once[0,10] e()")
          [ false; true; true; false ]);
    Alcotest.test_case "true-false" `Quick (fun () ->
        check_both_vectors "truth" cat
          (generic_history "@0\n")
          (parse_formula "true & not false")
          [ true ]) ]

let suite =
  [ ("semantics:basic", basic_cases);
    ("semantics:window", window_cases);
    ("semantics:since", since_cases);
    ("semantics:edge", edge_cases) ]
