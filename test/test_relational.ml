(* Unit tests for the relational substrate: values, tuples, relations,
   databases, updates, algebra and text serialization. *)

open Helpers

let v_int n = Value.Int n
let v_str s = Value.Str s

let value_cases =
  [ Alcotest.test_case "round-trip" `Quick (fun () ->
        List.iter
          (fun v ->
            let s = Value.to_string v in
            match Value.of_string s with
            | Ok v' ->
              if not (Value.equal v v') then
                Alcotest.failf "%s re-parsed as %s" s (Value.to_string v')
            | Error m -> Alcotest.failf "%s failed to parse: %s" s m)
          [ Value.Int 0; Value.Int (-42); Value.Int max_int;
            Value.Str ""; Value.Str "hello"; Value.Str "with \"quotes\" and \\";
            Value.Str "comma, inside"; Value.Bool true; Value.Bool false;
            Value.Real 0.5; Value.Real (-3.25); Value.Real 1e10 ]);
    Alcotest.test_case "ordering is total and typed" `Quick (fun () ->
        Alcotest.(check bool) "int < str" true
          (Value.compare (v_int 99) (v_str "a") < 0);
        Alcotest.(check bool) "same-type order" true
          (Value.compare (v_int 1) (v_int 2) < 0);
        Alcotest.(check bool) "equal" true (Value.equal (v_str "x") (v_str "x")));
    Alcotest.test_case "numeric" `Quick (fun () ->
        Alcotest.(check (option (float 0.0))) "int" (Some 3.0)
          (Value.numeric (v_int 3));
        Alcotest.(check (option (float 0.0))) "str" None
          (Value.numeric (v_str "3")));
    Alcotest.test_case "type names" `Quick (fun () ->
        List.iter
          (fun ty ->
            Alcotest.(check bool) (Value.ty_name ty) true
              (Value.ty_of_name (Value.ty_name ty) = Some ty))
          [ Value.TInt; Value.TStr; Value.TBool; Value.TReal ]) ]

let tuple_cases =
  [ Alcotest.test_case "compare lexicographic" `Quick (fun () ->
        let a = Tuple.make [ v_int 1; v_int 2 ] in
        let b = Tuple.make [ v_int 1; v_int 3 ] in
        Alcotest.(check bool) "a < b" true (Tuple.compare a b < 0);
        Alcotest.(check bool) "shorter first" true
          (Tuple.compare (Tuple.make [ v_int 9 ]) a < 0));
    Alcotest.test_case "project and append" `Quick (fun () ->
        let t = Tuple.make [ v_int 1; v_int 2; v_int 3 ] in
        Alcotest.(check bool) "project" true
          (Tuple.equal (Tuple.project [| 2; 0 |] t) (Tuple.make [ v_int 3; v_int 1 ]));
        Alcotest.(check int) "append arity" 5
          (Tuple.arity (Tuple.append t (Tuple.make [ v_int 4; v_int 5 ])))) ]

let rel12 () =
  Relation.of_list 2
    [ Tuple.make [ v_int 1; v_int 10 ];
      Tuple.make [ v_int 2; v_int 20 ];
      Tuple.make [ v_int 3; v_int 30 ] ]

let relation_cases =
  [ Alcotest.test_case "set semantics" `Quick (fun () ->
        let r = Relation.add (Tuple.make [ v_int 1; v_int 10 ]) (rel12 ()) in
        Alcotest.(check int) "no duplicate" 3 (Relation.cardinal r));
    Alcotest.test_case "union inter diff" `Quick (fun () ->
        let a = rel12 () in
        let b =
          Relation.of_list 2
            [ Tuple.make [ v_int 3; v_int 30 ]; Tuple.make [ v_int 4; v_int 40 ] ]
        in
        Alcotest.(check int) "union" 4 (Relation.cardinal (Relation.union a b));
        Alcotest.(check int) "inter" 1 (Relation.cardinal (Relation.inter a b));
        Alcotest.(check int) "diff" 2 (Relation.cardinal (Relation.diff a b)));
    Alcotest.test_case "arity mismatch rejected" `Quick (fun () ->
        let a = rel12 () in
        let b = Relation.of_list 1 [ Tuple.make [ v_int 1 ] ] in
        (try
           ignore (Relation.union a b);
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    Alcotest.test_case "product and project" `Quick (fun () ->
        let a = Relation.of_list 1 [ Tuple.make [ v_int 1 ]; Tuple.make [ v_int 2 ] ] in
        let p = Relation.product a (rel12 ()) in
        Alcotest.(check int) "product size" 6 (Relation.cardinal p);
        Alcotest.(check int) "product arity" 3 (Relation.arity p);
        Alcotest.(check int) "project collapses" 2
          (Relation.cardinal (Relation.project [| 0 |] p)));
    Alcotest.test_case "active domain" `Quick (fun () ->
        Alcotest.(check int) "distinct values" 6
          (List.length (Relation.active_domain (rel12 ())))) ]

let emp_schema () =
  Schema.make "emp" [ ("name", Value.TStr); ("sal", Value.TInt) ]

let database_cases =
  [ Alcotest.test_case "insert type checks" `Quick (fun () ->
        let db = Database.create (Schema.Catalog.of_list [ emp_schema () ]) in
        let ok = Database.insert db "emp" (Tuple.make [ v_str "a"; v_int 1 ]) in
        Alcotest.(check bool) "ok" true (Result.is_ok ok);
        let bad = Database.insert db "emp" (Tuple.make [ v_int 1; v_int 1 ]) in
        Alcotest.(check bool) "type error" true (Result.is_error bad);
        let bad2 = Database.insert db "emp" (Tuple.make [ v_str "a" ]) in
        Alcotest.(check bool) "arity error" true (Result.is_error bad2);
        let bad3 = Database.insert db "nope" (Tuple.make [ v_str "a" ]) in
        Alcotest.(check bool) "unknown relation" true (Result.is_error bad3));
    Alcotest.test_case "transactions are atomic" `Quick (fun () ->
        let db = Database.create (Schema.Catalog.of_list [ emp_schema () ]) in
        let txn =
          [ Update.insert "emp" [ v_str "a"; v_int 1 ];
            Update.insert "nope" [ v_str "b" ] ]
        in
        (match Update.apply db txn with
         | Ok _ -> Alcotest.fail "expected failure"
         | Error _ -> ());
        Alcotest.(check int) "db unchanged" 0 (Database.cardinal db));
    Alcotest.test_case "delete is idempotent" `Quick (fun () ->
        let db = Database.create (Schema.Catalog.of_list [ emp_schema () ]) in
        let t = Tuple.make [ v_str "a"; v_int 1 ] in
        let db = get_ok "ins" (Database.insert db "emp" t) in
        let db = get_ok "del" (Database.delete db "emp" t) in
        let db = get_ok "del2" (Database.delete db "emp" t) in
        Alcotest.(check int) "empty" 0 (Database.cardinal db)) ]

let algebra_db () =
  let cat =
    Schema.Catalog.of_list
      [ emp_schema ();
        Schema.make "dept" [ ("name", Value.TStr); ("head", Value.TStr) ] ]
  in
  let db = Database.create cat in
  let db =
    List.fold_left
      (fun db (r, vs) -> get_ok "ins" (Database.insert db r (Tuple.make vs)))
      db
      [ ("emp", [ v_str "a"; v_int 100 ]);
        ("emp", [ v_str "b"; v_int 200 ]);
        ("emp", [ v_str "c"; v_int 300 ]);
        ("dept", [ v_str "cs"; v_str "a" ]);
        ("dept", [ v_str "ee"; v_str "z" ]) ]
  in
  db

let algebra_cases =
  [ Alcotest.test_case "select" `Quick (fun () ->
        let open Algebra in
        let e = Select (Compare (Gt, Col 1, Lit (v_int 150)), Scan "emp") in
        Alcotest.(check int) "two rows" 2
          (Relation.cardinal (get_ok "eval" (eval (algebra_db ()) e))));
    Alcotest.test_case "join" `Quick (fun () ->
        let open Algebra in
        (* employees who head a department *)
        let e = Join ([ (0, 1) ], Scan "emp", Scan "dept") in
        let r = get_ok "eval" (eval (algebra_db ()) e) in
        Alcotest.(check int) "one match" 1 (Relation.cardinal r);
        Alcotest.(check int) "arity" 4 (Relation.arity r));
    Alcotest.test_case "project-union-diff" `Quick (fun () ->
        let open Algebra in
        let names = Project ([| 0 |], Scan "emp") in
        let heads = Project ([| 1 |], Scan "dept") in
        let u = get_ok "u" (eval (algebra_db ()) (Union (names, heads))) in
        Alcotest.(check int) "union" 4 (Relation.cardinal u);
        let d = get_ok "d" (eval (algebra_db ()) (Diff (names, heads))) in
        Alcotest.(check int) "diff" 2 (Relation.cardinal d));
    Alcotest.test_case "static arity check" `Quick (fun () ->
        let open Algebra in
        let cat = Database.catalog (algebra_db ()) in
        Alcotest.(check bool) "bad union" true
          (Result.is_error (arity_of cat (Union (Scan "emp", Project ([| 0 |], Scan "emp")))));
        Alcotest.(check bool) "bad column" true
          (Result.is_error
             (arity_of cat (Select (Compare (Eq, Col 7, Lit (v_int 0)), Scan "emp")))));
    Alcotest.test_case "order comparison needs numbers" `Quick (fun () ->
        let open Algebra in
        let e = Select (Compare (Lt, Col 0, Lit (v_int 0)), Scan "emp") in
        Alcotest.(check bool) "error" true
          (Result.is_error (eval (algebra_db ()) e))) ]

let textio_cases =
  [ Alcotest.test_case "schema line round-trip" `Quick (fun () ->
        let s = emp_schema () in
        let line = Textio.schema_to_string s in
        let s' = get_ok "parse" (Textio.parse_schema_line line) in
        Alcotest.(check bool) "equal" true (Schema.equal s s'));
    Alcotest.test_case "fact round-trip with tricky strings" `Quick (fun () ->
        let t = Tuple.make [ v_str "a, \"b\""; v_int (-3) ] in
        let line = Textio.fact_to_string "emp" t in
        let rel, t' = get_ok "parse" (Textio.parse_fact line) in
        Alcotest.(check string) "rel" "emp" rel;
        Alcotest.(check bool) "tuple" true (Tuple.equal t t'));
    Alcotest.test_case "database dump round-trip" `Quick (fun () ->
        let db = algebra_db () in
        let db' = get_ok "parse" (Textio.parse_database (Textio.dump_database db)) in
        Alcotest.(check bool) "equal" true (Database.equal db db'));
    Alcotest.test_case "comments and blanks ignored" `Quick (fun () ->
        let text = "# a comment\nschema p(a:int)\n\np(1)  # trailing\n" in
        let db = get_ok "parse" (Textio.parse_database text) in
        Alcotest.(check int) "one fact" 1 (Database.cardinal db)) ]

let qcheck_relation_laws =
  let tuple_gen =
    QCheck.Gen.(
      map
        (fun (a, b) -> Tuple.make [ Value.Int a; Value.Int b ])
        (pair (int_bound 5) (int_bound 5)))
  in
  let rel_gen =
    QCheck.Gen.(map (Relation.of_list 2) (list_size (int_bound 12) tuple_gen))
  in
  let arb = QCheck.make rel_gen in
  [ qtest ~count:200 "union commutes"
      QCheck.(pair arb arb)
      (fun (a, b) -> Relation.equal (Relation.union a b) (Relation.union b a));
    qtest ~count:200 "inter via diff"
      QCheck.(pair arb arb)
      (fun (a, b) ->
        Relation.equal (Relation.inter a b) (Relation.diff a (Relation.diff a b)));
    qtest ~count:200 "project idempotent"
      arb
      (fun a ->
        let p = Relation.project [| 0 |] a in
        Relation.equal p (Relation.project [| 0 |] p)) ]

(* The hash-join executor must agree with the definitional nested loop on
   arbitrary inputs: random arities (including zero columns), random join
   column lists (including the empty list, i.e. a product), empty and
   non-empty relations on either side. *)
let nested_loop_join cols ra rb =
  let k = Relation.arity ra + Relation.arity rb in
  Relation.fold
    (fun ta acc ->
      Relation.fold
        (fun tb acc ->
          let matches =
            List.for_all
              (fun (i, j) -> Value.equal (Tuple.get ta i) (Tuple.get tb j))
              cols
          in
          if matches then Relation.add (Tuple.append ta tb) acc else acc)
        rb acc)
    ra (Relation.empty k)

let join_case_gen =
  QCheck.Gen.(
    pair (int_range 0 3) (int_range 0 3) >>= fun (ka, kb) ->
    let tup k =
      map
        (fun l -> Tuple.make (List.map (fun n -> Value.Int n) l))
        (list_repeat k (int_bound 3))
    in
    let rel k = map (Relation.of_list k) (list_size (int_bound 9) (tup k)) in
    let cols =
      if ka = 0 || kb = 0 then return []
      else
        list_size (int_bound (min ka kb))
          (pair (int_bound (ka - 1)) (int_bound (kb - 1)))
    in
    triple cols (rel ka) (rel kb))

let qcheck_join_equivalence =
  let db = Database.create Schema.Catalog.empty in
  [ qtest ~count:500 "hash join = nested-loop join"
      (QCheck.make join_case_gen)
      (fun (cols, ra, rb) ->
        let via =
          get_ok "join"
            (Algebra.eval db (Algebra.Join (cols, Const ra, Const rb)))
        in
        Relation.equal via (nested_loop_join cols ra rb)) ]

let suite =
  [ ("relational:value", value_cases);
    ("relational:tuple", tuple_cases);
    ("relational:relation", relation_cases);
    ("relational:database", database_cases);
    ("relational:algebra", algebra_cases);
    ("relational:textio", textio_cases);
    ("relational:laws", qcheck_relation_laws);
    ("relational:hash-join", qcheck_join_equivalence) ]
