(* The resilience layer: WAL format, crash-safe supervision, recovery,
   error policies, quarantine, injected write failures, and the chaos
   property — for every crash point and fault plan, recover-and-replay is
   observationally identical to never having crashed. *)

open Helpers
module Supervisor = Rtic_core.Supervisor
module Faults = Rtic_core.Faults
module Wal = Rtic_core.Wal
module Metrics = Rtic_core.Metrics
module Chaos = Rtic_workload.Chaos
module F = Formula

let cat = Gen.generic_catalog
let def name body = { F.name; body = parse_formula body }

let txn_p v = [ Update.insert "p" [ Value.Int v ] ]
let txn_q v = [ Update.insert "q" [ Value.Int v ] ]

let cfg ?(auto = 0) ?(retain = 2) ?(policy = Supervisor.Halt) ?budget
    ?(group = 1) ?(wal = 1) () =
  { Supervisor.default_config with
    auto_checkpoint = auto;
    retain;
    on_error = policy;
    aux_budget = budget;
    group_commit = group;
    wal_format = wal }

let sup_exn what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

(* (reports, inconclusive) of an outcome that must be Checked *)
let checked what = function
  | Supervisor.Checked { reports; inconclusive } -> (reports, inconclusive)
  | Supervisor.Skipped r -> Alcotest.failf "%s: unexpectedly skipped (%s)" what r
  | Supervisor.Rejected r -> Alcotest.failf "%s: unexpectedly rejected (%s)" what r
  | Supervisor.Repaired _ -> Alcotest.failf "%s: unexpectedly repaired" what
  | Supervisor.Unrepairable _ ->
    Alcotest.failf "%s: unexpectedly unrepairable" what

(* ---------------- WAL format ---------------- *)

let sample_records =
  [ (1, txn_p 1); (4, txn_q 2); (9, [ Update.delete "p" [ Value.Int 1 ] ]) ]

let wal_cases =
  [ Alcotest.test_case "encode/recover roundtrip" `Quick (fun () ->
        let text = Wal.encode ~start:5 sample_records in
        let w = sup_exn "recover" (Wal.recover text) in
        Alcotest.(check int) "start" 5 w.Wal.start;
        Alcotest.(check bool) "records" true (w.Wal.records = sample_records);
        Alcotest.(check bool) "clean" true (w.Wal.torn = None));
    Alcotest.test_case "empty log roundtrip" `Quick (fun () ->
        let w = sup_exn "recover" (Wal.recover (Wal.encode ~start:0 [])) in
        Alcotest.(check bool) "empty" true (w.Wal.records = [] && w.Wal.torn = None));
    Alcotest.test_case "file not ending in newline drops last record" `Quick
      (fun () ->
        let text = Wal.encode ~start:0 sample_records in
        let torn = String.sub text 0 (String.length text - 1) in
        let w = sup_exn "recover" (Wal.recover torn) in
        Alcotest.(check int) "valid prefix" 2 (List.length w.Wal.records);
        Alcotest.(check bool) "torn reported" true (w.Wal.torn <> None));
    Alcotest.test_case "bit flip in a record fails its CRC" `Quick (fun () ->
        let text = Wal.encode ~start:0 sample_records in
        (* Flip a byte inside the last record's op line. *)
        let b = Bytes.of_string text in
        let pos = String.length text - 3 in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
        let w = sup_exn "recover" (Wal.recover (Bytes.to_string b)) in
        Alcotest.(check int) "valid prefix" 2 (List.length w.Wal.records);
        Alcotest.(check bool) "torn reported" true (w.Wal.torn <> None));
    Alcotest.test_case "header damage is a hard error" `Quick (fun () ->
        let text = Wal.encode ~start:0 sample_records in
        let bad = "xtic" ^ String.sub text 4 (String.length text - 4) in
        Alcotest.(check bool) "error" true (Result.is_error (Wal.recover bad)));
    Alcotest.test_case "non-increasing commit time truncates" `Quick (fun () ->
        let text = Wal.encode ~start:0 [ (5, txn_p 1); (5, txn_p 2) ] in
        let w = sup_exn "recover" (Wal.recover text) in
        Alcotest.(check int) "valid prefix" 1 (List.length w.Wal.records);
        Alcotest.(check bool) "torn reported" true (w.Wal.torn <> None)) ]

(* ---------------- rtic-wal/2: binary frames ---------------- *)

(* The corrupted-file corpus for the v2 decoder: every way an append can
   tear or rot, each yielding the valid prefix plus a torn report — and
   the mixed-header cases, where the header's format wins and the
   mismatched records are a torn tail, never a hard error. *)
let wal2_cases =
  let encode2 = Wal.encode ~version:2 in
  let body_of text =
    (* strip the two-line text header, keeping the binary frames *)
    let i = String.index_from text (String.index text '\n' + 1) '\n' + 1 in
    (String.sub text 0 i, String.sub text i (String.length text - i))
  in
  [ Alcotest.test_case "v2 encode/recover roundtrip" `Quick (fun () ->
        let text = encode2 ~start:5 sample_records in
        let w = sup_exn "recover" (Wal.recover text) in
        Alcotest.(check int) "start" 5 w.Wal.start;
        Alcotest.(check int) "version" 2 w.Wal.version;
        Alcotest.(check bool) "records" true (w.Wal.records = sample_records);
        Alcotest.(check bool) "clean" true (w.Wal.torn = None));
    Alcotest.test_case "v2 record CRC equals the v1 record CRC" `Quick
      (fun () ->
        (* same body bytes, same checksum: the lossless-conversion claim *)
        let v1 = Wal.encode_record ~time:7 (txn_p 3) in
        let v2 = Wal.encode_record ~version:2 ~time:7 (txn_p 3) in
        let crc_of_v1 =
          match String.split_on_char ' ' (List.hd (String.split_on_char '\n' v1)) with
          | [ "txn"; _; _; crc ] -> int_of_string ("0x" ^ crc)
          | _ -> Alcotest.fail "unexpected v1 record header"
        in
        let crc_of_v2 =
          let b i = Char.code v2.[4 + i] in
          b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
        in
        Alcotest.(check int) "crc" crc_of_v1 crc_of_v2);
    Alcotest.test_case "torn length prefix drops the last record" `Quick
      (fun () ->
        let text = encode2 ~start:0 sample_records in
        let last = Wal.encode_record ~version:2 ~time:9
            [ Update.delete "p" [ Value.Int 1 ] ] in
        (* keep 3 bytes of the final frame: mid length-prefix *)
        let torn =
          String.sub text 0 (String.length text - String.length last + 3)
        in
        let w = sup_exn "recover" (Wal.recover torn) in
        Alcotest.(check int) "valid prefix" 2 (List.length w.Wal.records);
        (match w.Wal.torn with
         | Some r ->
           Alcotest.(check bool) "names the tear" true
             (String.length r > 0)
         | None -> Alcotest.fail "torn tail not reported"));
    Alcotest.test_case "torn body drops the last record" `Quick (fun () ->
        let text = encode2 ~start:0 sample_records in
        let torn = String.sub text 0 (String.length text - 2) in
        let w = sup_exn "recover" (Wal.recover torn) in
        Alcotest.(check int) "valid prefix" 2 (List.length w.Wal.records);
        Alcotest.(check bool) "torn reported" true (w.Wal.torn <> None));
    Alcotest.test_case "flipped CRC byte fails that record" `Quick (fun () ->
        let text = encode2 ~start:0 sample_records in
        let last = Wal.encode_record ~version:2 ~time:9
            [ Update.delete "p" [ Value.Int 1 ] ] in
        (* flip a byte inside the last frame's stored CRC field *)
        let pos = String.length text - String.length last + 5 in
        let b = Bytes.of_string text in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
        let w = sup_exn "recover" (Wal.recover (Bytes.to_string b)) in
        Alcotest.(check int) "valid prefix" 2 (List.length w.Wal.records);
        Alcotest.(check bool) "torn reported" true (w.Wal.torn <> None));
    Alcotest.test_case "v1 header over v2 frames tears at the first frame"
      `Quick (fun () ->
        let _, frames = body_of (encode2 ~start:0 sample_records) in
        let mixed = Wal.header ~start:0 () ^ frames in
        let w = sup_exn "recover" (Wal.recover mixed) in
        Alcotest.(check int) "declared format wins" 1 w.Wal.version;
        Alcotest.(check int) "no records" 0 (List.length w.Wal.records);
        Alcotest.(check bool) "torn reported" true (w.Wal.torn <> None));
    Alcotest.test_case "v2 header over v1 records tears at the first frame"
      `Quick (fun () ->
        let _, lines = body_of (Wal.encode ~start:0 sample_records) in
        let mixed = Wal.header ~version:2 ~start:0 () ^ lines in
        let w = sup_exn "recover" (Wal.recover mixed) in
        Alcotest.(check int) "declared format wins" 2 w.Wal.version;
        Alcotest.(check int) "no records" 0 (List.length w.Wal.records);
        Alcotest.(check bool) "torn reported" true (w.Wal.torn <> None));
    (let record_gen =
       QCheck.Gen.(
         let op =
           oneof
             [ map (fun v -> Update.insert "p" [ Value.Int v ]) (int_range 0 99);
               map (fun v -> Update.delete "p" [ Value.Int v ]) (int_range 0 99);
               map (fun v -> Update.insert "q" [ Value.Int v ]) (int_range 0 99) ]
         in
         let txn = list_size (int_range 1 3) op in
         map
           (fun steps ->
             let _, recs =
               List.fold_left
                 (fun (t, acc) (dt, txn) -> (t + dt, (t + dt, txn) :: acc))
                 (0, []) steps
             in
             List.rev recs)
           (list_size (int_range 0 12) (pair (int_range 1 5) txn)))
     in
     qtest "both formats: recover (encode records) = records"
       (QCheck.make record_gen) (fun records ->
         List.for_all
           (fun version ->
             match Wal.recover (Wal.encode ~version ~start:2 records) with
             | Ok w ->
               w.Wal.start = 2 && w.Wal.version = version
               && w.Wal.records = records && w.Wal.torn = None
             | Error _ -> false)
           [ 1; 2 ])) ]

(* ---------------- Supervisor lifecycle ---------------- *)

let defaults = [ def "c1" "forall x. q(x) -> once[0,10] p(x)" ]

let fresh ?(config = cfg ()) ?(defs = defaults) () =
  let fs = Faults.mem_fs () in
  let sup =
    sup_exn "create" (Supervisor.create ~fs ~config ~state_dir:"sd" cat defs)
  in
  (fs, sup)

let lifecycle_cases =
  [ Alcotest.test_case "create writes checkpoint 0 and the WAL header" `Quick
      (fun () ->
        let fs, _ = fresh () in
        Alcotest.(check bool) "state exists" true (Supervisor.state_exists fs "sd");
        Alcotest.(check (list int)) "checkpoints" [ 0 ]
          (List.map fst (Supervisor.checkpoint_files fs "sd"));
        Alcotest.(check string) "wal is a bare header" (Wal.header ~start:0 ())
          (sup_exn "read" (fs.Faults.read_file (Supervisor.wal_path "sd"))));
    Alcotest.test_case "create refuses an existing state dir" `Quick (fun () ->
        let fs, _ = fresh () in
        Alcotest.(check bool) "refused" true
          (Result.is_error
             (Supervisor.create ~fs ~config:(cfg ()) ~state_dir:"sd" cat
                defaults)));
    Alcotest.test_case "auto-checkpoint, retention and compaction" `Quick
      (fun () ->
        let fs, sup = fresh ~config:(cfg ~auto:2 ~retain:2 ()) () in
        List.iteri
          (fun i v ->
            ignore
              (checked "step" (sup_exn "step" (Supervisor.step sup ~time:(i + 1) (txn_p v)))))
          [ 1; 2; 3; 4; 5 ];
        Alcotest.(check (list int)) "newest two retained" [ 4; 2 ]
          (List.map fst (Supervisor.checkpoint_files fs "sd"));
        let w =
          sup_exn "recover wal"
            (Wal.recover (sup_exn "read" (fs.Faults.read_file (Supervisor.wal_path "sd"))))
        in
        Alcotest.(check int) "wal compacted to oldest retained" 2 w.Wal.start;
        Alcotest.(check int) "wal covers up to accepted" 5
          (w.Wal.start + List.length w.Wal.records));
    Alcotest.test_case "violations are reported as by Monitor" `Quick (fun () ->
        let _, sup = fresh () in
        let reports, _ = checked "q" (sup_exn "step" (Supervisor.step sup ~time:1 (txn_q 9))) in
        (match reports with
         | [ r ] ->
           Alcotest.(check string) "name" "c1" r.Monitor.constraint_name;
           Alcotest.(check int) "position" 0 r.Monitor.position
         | rs -> Alcotest.failf "expected one report, got %d" (List.length rs));
        let reports, _ = checked "p" (sup_exn "step" (Supervisor.step sup ~time:2 (txn_p 9))) in
        Alcotest.(check int) "no report" 0 (List.length reports)) ]

(* ---------------- Recovery ---------------- *)

let feed_all sup inputs =
  List.map
    (fun (time, txn) -> sup_exn "step" (Supervisor.step sup ~time txn))
    inputs

let recovery_cases =
  [ Alcotest.test_case "recover after a clean kill loses nothing" `Quick
      (fun () ->
        let fs, sup = fresh ~config:(cfg ~auto:2 ()) () in
        ignore (feed_all sup [ (1, txn_p 1); (2, txn_p 2); (3, txn_q 1) ]);
        (* crash: abandon sup *)
        let sup2, info =
          sup_exn "recover"
            (Supervisor.recover ~fs ~config:(cfg ~auto:2 ()) ~state_dir:"sd"
               cat defaults)
        in
        Alcotest.(check int) "all transactions recovered" 3
          (Supervisor.steps sup2);
        Alcotest.(check bool) "used a checkpoint" true
          (info.Supervisor.checkpoint_step = Some 2);
        Alcotest.(check int) "replayed the suffix" 1 info.Supervisor.replayed;
        Alcotest.(check bool) "last_time restored" true
          (Supervisor.last_time sup2 = Some 3);
        (* the recovered service keeps going *)
        let reports, _ = checked "next" (sup_exn "step" (Supervisor.step sup2 ~time:9 (txn_q 5))) in
        Alcotest.(check int) "violation detected after recovery" 1
          (List.length reports));
    Alcotest.test_case "recover refuses a directory with no WAL" `Quick
      (fun () ->
        let fs = Faults.mem_fs () in
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Supervisor.recover ~fs ~config:(cfg ()) ~state_dir:"nowhere" cat
                defaults)));
    Alcotest.test_case "corrupt newest checkpoint falls back to older" `Quick
      (fun () ->
        let fs, sup = fresh ~config:(cfg ~auto:2 ~retain:2 ()) () in
        ignore (feed_all sup (List.init 5 (fun i -> (i + 1, txn_p i))));
        let newest =
          match Supervisor.checkpoint_files fs "sd" with
          | (_, p) :: _ -> p
          | [] -> Alcotest.fail "no checkpoints"
        in
        ignore (sup_exn "flip" (Faults.bit_flip_file fs ~seed:11 newest));
        let sup2, info =
          sup_exn "recover"
            (Supervisor.recover ~fs ~config:(cfg ~auto:2 ~retain:2 ())
               ~state_dir:"sd" cat defaults)
        in
        Alcotest.(check int) "skipped the corrupt one" 1
          (List.length info.Supervisor.checkpoints_skipped);
        Alcotest.(check bool) "fell back" true
          (info.Supervisor.checkpoint_step = Some 2);
        Alcotest.(check int) "still recovered everything" 5
          (Supervisor.steps sup2));
    Alcotest.test_case "torn WAL tail is repaired on recovery" `Quick (fun () ->
        let fs, sup = fresh ~config:(cfg ~auto:0 ()) () in
        ignore (feed_all sup [ (1, txn_p 1); (2, txn_p 2) ]);
        (* simulate a torn final append *)
        ignore
          (sup_exn "append" (fs.Faults.append_file (Supervisor.wal_path "sd") "txn 3 1"));
        let sup2, info =
          sup_exn "recover"
            (Supervisor.recover ~fs ~config:(cfg ()) ~state_dir:"sd" cat
               defaults)
        in
        Alcotest.(check bool) "torn tail reported" true
          (info.Supervisor.torn_tail <> None);
        Alcotest.(check bool) "repaired" true info.Supervisor.repaired;
        Alcotest.(check bool) "not degraded after repair" false
          (Supervisor.degraded sup2);
        Alcotest.(check int) "both records kept" 2 (Supervisor.steps sup2);
        let w =
          sup_exn "recover wal"
            (Wal.recover (sup_exn "read" (fs.Faults.read_file (Supervisor.wal_path "sd"))))
        in
        Alcotest.(check bool) "wal clean again" true (w.Wal.torn = None));
    Alcotest.test_case "plain --save-state checkpoint (no trailer) loads" `Quick
      (fun () ->
        let fs = Faults.mem_fs () in
        ignore (fs.Faults.mkdir "sd");
        let mon = sup_exn "mon" (Monitor.create cat defaults) in
        ignore
          (fs.Faults.write_file (Supervisor.checkpoint_path "sd" 0)
             (Monitor.to_text mon));
        let snap =
          sup_exn "load"
            (Supervisor.load_checkpoint ~fs cat defaults
               (Supervisor.checkpoint_path "sd" 0))
        in
        Alcotest.(check int) "step from filename" 0 snap.Supervisor.snap_step) ]

(* ---------------- Error policies ---------------- *)

let policy_cases =
  [ Alcotest.test_case "halt: clock regression stops the service" `Quick
      (fun () ->
        let _, sup = fresh ~config:(cfg ~policy:Supervisor.Halt ()) () in
        ignore (feed_all sup [ (5, txn_p 1) ]);
        Alcotest.(check bool) "error" true
          (Result.is_error (Supervisor.step sup ~time:5 (txn_p 2))));
    Alcotest.test_case "skip/reject: dropped, counted, not logged" `Quick
      (fun () ->
        List.iter
          (fun policy ->
            let m = Metrics.create () in
            let fs = Faults.mem_fs () in
            let sup =
              sup_exn "create"
                (Supervisor.create ~fs ~metrics:m ~config:(cfg ~policy ())
                   ~state_dir:"sd" cat defaults)
            in
            ignore (feed_all sup [ (5, txn_p 1) ]);
            let wal_before =
              sup_exn "read" (fs.Faults.read_file (Supervisor.wal_path "sd"))
            in
            let o = sup_exn "step" (Supervisor.step sup ~time:4 (txn_p 2)) in
            (match (policy, o) with
             | Supervisor.Skip, Supervisor.Skipped _
             | Supervisor.Reject, Supervisor.Rejected _ -> ()
             | _ -> Alcotest.fail "wrong outcome for the policy");
            let o2 = sup_exn "step" (Supervisor.step sup ~time:5 (txn_q 3)) in
            (match o2 with
             | Supervisor.Skipped _ | Supervisor.Rejected _ -> ()
             | _ ->
               Alcotest.fail "time 5 repeats the last accepted time");
            Alcotest.(check string) "wal unchanged" wal_before
              (sup_exn "read" (fs.Faults.read_file (Supervisor.wal_path "sd")));
            Alcotest.(check int) "accepted count unchanged" 1
              (Supervisor.steps sup);
            Alcotest.(check int) "clock regressions counted" 2
              (Metrics.counter m "clock_regressions"))
          [ Supervisor.Skip; Supervisor.Reject ]);
    Alcotest.test_case "malformed transaction takes the policy path" `Quick
      (fun () ->
        let m = Metrics.create () in
        let fs = Faults.mem_fs () in
        let sup =
          sup_exn "create"
            (Supervisor.create ~fs ~metrics:m
               ~config:(cfg ~policy:Supervisor.Reject ()) ~state_dir:"sd" cat
               defaults)
        in
        let bad = [ Update.insert "nosuch" [ Value.Int 1 ] ] in
        (match sup_exn "step" (Supervisor.step sup ~time:1 bad) with
         | Supervisor.Rejected _ -> ()
         | _ -> Alcotest.fail "expected Rejected");
        Alcotest.(check int) "counted" 1 (Metrics.counter m "malformed_txns");
        (* the service is unharmed *)
        ignore (checked "ok" (sup_exn "step" (Supervisor.step sup ~time:2 (txn_p 1))))) ]

(* ---------------- Quarantine ---------------- *)

(* `once p(x)` stores one minimal timestamp per distinct p value, so its
   space tracks the number of values ever inserted; the non-temporal
   constraint stores nothing. Feeding distinct p values separates them. *)
let quarantine_defs =
  [ def "unbounded" "forall x. q(x) -> once p(x)";
    def "pointwise" "forall x. q(x) -> p(x)" ]

let quarantine_cases =
  [ Alcotest.test_case "over-budget constraint is quarantined, rest continue"
      `Quick (fun () ->
        let m = Metrics.create () in
        let fs = Faults.mem_fs () in
        let config = cfg ~budget:15 () in
        let sup =
          sup_exn "create"
            (Supervisor.create ~fs ~metrics:m ~config ~state_dir:"sd" cat
               quarantine_defs)
        in
        (* Distinct p values grow `once p(x)` without bound. *)
        let rec grow i =
          if Supervisor.quarantined sup = [] && i < 50 then begin
            ignore (checked "grow" (sup_exn "grow" (Supervisor.step sup ~time:i (txn_p i))));
            grow (i + 1)
          end
          else i
        in
        let n = grow 1 in
        Alcotest.(check bool) "quarantined before 50 steps" true (n < 50);
        (match Supervisor.quarantined sup with
         | [ (name, _) ] -> Alcotest.(check string) "which" "unbounded" name
         | q -> Alcotest.failf "expected one quarantined, got %d" (List.length q));
        Alcotest.(check int) "counted" 1
          (Metrics.counter m "constraints_quarantined");
        (* The frozen constraint reports inconclusive; the live one still
           yields real verdicts (here: a violation). *)
        let reports, inconclusive =
          checked "after" (sup_exn "after" (Supervisor.step sup ~time:(n + 1) (txn_q 999)))
        in
        Alcotest.(check (list string)) "inconclusive" [ "unbounded" ]
          inconclusive;
        (match reports with
         | [ r ] -> Alcotest.(check string) "live verdict" "pointwise" r.Monitor.constraint_name
         | rs -> Alcotest.failf "expected one report, got %d" (List.length rs)));
    Alcotest.test_case "quarantine is re-derived after recovery" `Quick
      (fun () ->
        let fs = Faults.mem_fs () in
        let config = cfg ~auto:2 ~budget:15 () in
        let sup =
          sup_exn "create"
            (Supervisor.create ~fs ~config ~state_dir:"sd" cat quarantine_defs)
        in
        List.iter
          (fun i -> ignore (sup_exn "feed" (Supervisor.step sup ~time:i (txn_p i))))
          (List.init 20 (fun i -> i + 1));
        let q_before = List.map fst (Supervisor.quarantined sup) in
        Alcotest.(check (list string)) "quarantined live" [ "unbounded" ] q_before;
        let sup2, _ =
          sup_exn "recover"
            (Supervisor.recover ~fs ~config ~state_dir:"sd" cat quarantine_defs)
        in
        Alcotest.(check (list string)) "same set after recovery" q_before
          (List.map fst (Supervisor.quarantined sup2))) ]

(* ---------------- Group commit ---------------- *)

let group_cases =
  [ Alcotest.test_case "acks defer until the batch fills" `Quick (fun () ->
        let _, sup = fresh ~config:(cfg ~group:3 ()) () in
        let submit time txn = sup_exn "submit" (Supervisor.submit sup ~time txn) in
        Alcotest.(check int) "first ack deferred" 0
          (List.length (submit 1 (txn_p 1)));
        Alcotest.(check int) "second ack deferred" 0
          (List.length (submit 2 (txn_p 2)));
        Alcotest.(check int) "buffered records" 2
          (Supervisor.pending_records sup);
        Alcotest.(check int) "buffered outcomes" 2
          (Supervisor.pending_outcomes sup);
        let released = submit 3 (txn_q 99) in
        Alcotest.(check int) "third submit flushes the batch" 3
          (List.length released);
        Alcotest.(check int) "queue drained" 0 (Supervisor.pending_records sup);
        (* FIFO: the violation (q with no once p) is the last outcome *)
        (match List.rev released with
         | last :: _ ->
           let reports, _ = checked "last" last in
           Alcotest.(check int) "release order is submission order" 1
             (List.length reports)
         | [] -> Alcotest.fail "no outcomes"));
    Alcotest.test_case "flush releases a partial batch" `Quick (fun () ->
        let fs, sup = fresh ~config:(cfg ~group:4 ()) () in
        ignore (sup_exn "submit" (Supervisor.submit sup ~time:1 (txn_p 1)));
        ignore (sup_exn "submit" (Supervisor.submit sup ~time:2 (txn_p 2)));
        let wal_before =
          sup_exn "read" (fs.Faults.read_file (Supervisor.wal_path "sd"))
        in
        let released = Supervisor.flush sup in
        Alcotest.(check int) "both acks released" 2 (List.length released);
        Alcotest.(check int) "nothing pending" 0 (Supervisor.pending_outcomes sup);
        let wal_after =
          sup_exn "read" (fs.Faults.read_file (Supervisor.wal_path "sd"))
        in
        Alcotest.(check bool) "flush wrote the records" true
          (String.length wal_after > String.length wal_before));
    Alcotest.test_case "step with a group is still one synced outcome" `Quick
      (fun () ->
        let fs, sup = fresh ~config:(cfg ~group:8 ()) () in
        ignore (checked "step" (sup_exn "step" (Supervisor.step sup ~time:1 (txn_p 1))));
        Alcotest.(check int) "no deferred acks" 0
          (Supervisor.pending_outcomes sup);
        let w =
          sup_exn "wal"
            (Wal.recover
               (sup_exn "read" (fs.Faults.read_file (Supervisor.wal_path "sd"))))
        in
        Alcotest.(check int) "record durable before the ack" 1
          (List.length w.Wal.records));
    Alcotest.test_case "clean kill loses only the unflushed window" `Quick
      (fun () ->
        let fs, sup = fresh ~config:(cfg ~group:3 ()) () in
        let acked = ref 0 in
        List.iter
          (fun i ->
            let outs = sup_exn "submit" (Supervisor.submit sup ~time:i (txn_p i)) in
            acked := !acked + List.length outs)
          [ 1; 2; 3; 4; 5 ];
        (* crash: abandon sup with two records buffered, three synced *)
        Alcotest.(check int) "three acks released before the crash" 3 !acked;
        let sup2, _ =
          sup_exn "recover"
            (Supervisor.recover ~fs ~config:(cfg ~group:3 ()) ~state_dir:"sd"
               cat defaults)
        in
        Alcotest.(check int) "exactly the synced batch survives" 3
          (Supervisor.steps sup2));
    Alcotest.test_case "wal format 2 round-trips through the supervisor"
      `Quick (fun () ->
        let fs, sup = fresh ~config:(cfg ~auto:2 ~wal:2 ()) () in
        ignore (feed_all sup [ (1, txn_p 1); (2, txn_p 2); (3, txn_q 1) ]);
        let w =
          sup_exn "wal"
            (Wal.recover
               (sup_exn "read" (fs.Faults.read_file (Supervisor.wal_path "sd"))))
        in
        Alcotest.(check int) "directory is v2" 2 w.Wal.version;
        (* the directory's format is sticky: recovering with a v1 config
           keeps writing v2 (compaction re-encodes in the found format) *)
        let sup2, _ =
          sup_exn "recover"
            (Supervisor.recover ~fs ~config:(cfg ~auto:2 ~wal:1 ())
               ~state_dir:"sd" cat defaults)
        in
        Alcotest.(check int) "recovered everything" 3 (Supervisor.steps sup2);
        Alcotest.(check int) "format wins over config" 2
          (Supervisor.wal_version sup2);
        ignore (checked "after" (sup_exn "step" (Supervisor.step sup2 ~time:9 (txn_p 9))));
        let w2 =
          sup_exn "wal2"
            (Wal.recover
               (sup_exn "read" (fs.Faults.read_file (Supervisor.wal_path "sd"))))
        in
        Alcotest.(check int) "still v2 after more appends" 2 w2.Wal.version);
    Alcotest.test_case "unknown wal format is refused at create" `Quick
      (fun () ->
        let fs = Faults.mem_fs () in
        Alcotest.(check bool) "refused" true
          (Result.is_error
             (Supervisor.create ~fs ~config:(cfg ~wal:3 ()) ~state_dir:"sd"
                cat defaults))) ]

(* ---------------- Injected write failures ---------------- *)

let write_failure_cases =
  [ Alcotest.test_case "write failures degrade durability, never verdicts"
      `Quick (fun () ->
        let inputs = List.init 30 (fun i -> (i + 1, if i mod 3 = 2 then txn_q (i / 3) else txn_p i)) in
        let clean_fs = Faults.mem_fs () in
        let clean =
          sup_exn "create"
            (Supervisor.create ~fs:clean_fs ~config:(cfg ~auto:4 ())
               ~state_dir:"sd" cat defaults)
        in
        let reference =
          List.map (fun o -> fst (checked "clean" o)) (feed_all clean inputs)
        in
        (* Find a seed where creation succeeds but some write later fails:
           deterministic, and robust to changes in the write sequence. *)
        let rec attempt seed =
          if seed > 100 then Alcotest.fail "no suitable seed found"
          else
            let m = Metrics.create () in
            let fs = Faults.with_write_failures ~seed ~rate:0.2 (Faults.mem_fs ()) in
            match
              Supervisor.create ~fs ~metrics:m ~config:(cfg ~auto:4 ())
                ~state_dir:"sd" cat defaults
            with
            | Error _ -> attempt (seed + 1)
            | Ok sup ->
              let outcomes = feed_all sup inputs in
              let failures =
                Metrics.counter m "wal_append_failures"
                + Metrics.counter m "checkpoint_failures"
              in
              if failures = 0 then attempt (seed + 1) else (sup, outcomes)
        in
        let sup, outcomes = attempt 0 in
        Alcotest.(check bool) "degraded" true (Supervisor.degraded sup);
        List.iteri
          (fun i (got, want) ->
            if fst (checked "degraded run" got) <> want then
              Alcotest.failf "verdicts diverged at input %d" i)
          (List.combine outcomes reference)) ]

(* ---------------- Chaos: crash-recovery equivalence ---------------- *)

let small_scenario () =
  let sc = Scenarios.banking in
  let tr = sc.Scenarios.generate ~seed:3 ~steps:12 ~violation_rate:0.2 in
  (sc.Scenarios.catalog, sc.Scenarios.constraints, tr.Trace.init, tr.Trace.steps)

let chaos_cases =
  [ Alcotest.test_case "every crash point, every plan (banking)" `Slow
      (fun () ->
        let cat, defs, init, inputs = small_scenario () in
        let config = cfg ~auto:3 ~retain:2 () in
        List.iter
          (fun plan ->
            for crash_at = 0 to List.length inputs do
              match
                Chaos.run_episode ~init ~config cat defs ~inputs
                  ~seed:(100 + crash_at) ~plan ~crash_at
              with
              | Ok _ -> ()
              | Error e ->
                Alcotest.failf "plan %s, crash at %d: %s"
                  (Faults.plan_name plan) crash_at e
            done)
          Faults.all_plans);
    Alcotest.test_case "seeded chaos sweep" `Slow (fun () ->
        match Chaos.run ~seed:42 ~iters:10 with
        | Ok eps -> Alcotest.(check int) "all episodes ran" 10 (List.length eps)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "group commit: clean kill at every crash point" `Slow
      (fun () ->
        let cat, defs, init, inputs = small_scenario () in
        let config = cfg ~auto:3 ~retain:2 () in
        for crash_at = 0 to List.length inputs do
          match
            Chaos.run_episode ~init ~group:4 ~config cat defs ~inputs
              ~seed:(500 + crash_at) ~plan:Faults.Kill ~crash_at
          with
          | Ok ep ->
            Alcotest.(check int) "episode ran the requested group" 4 ep.Chaos.group;
            if ep.Chaos.accepted_at_crash - ep.Chaos.recovered_step > 3 then
              Alcotest.failf "crash at %d: lost %d > group - 1" crash_at
                (ep.Chaos.accepted_at_crash - ep.Chaos.recovered_step)
          | Error e -> Alcotest.failf "crash at %d: %s" crash_at e
        done);
    Alcotest.test_case "seeded group-commit chaos sweep" `Slow (fun () ->
        match Chaos.run_group ~seed:7 ~iters:8 with
        | Ok eps -> Alcotest.(check int) "all episodes ran" 8 (List.length eps)
        | Error e -> Alcotest.fail e) ]

let suite =
  [ ("resilience:wal", wal_cases);
    ("resilience:wal2", wal2_cases);
    ("resilience:group-commit", group_cases);
    ("resilience:lifecycle", lifecycle_cases);
    ("resilience:recovery", recovery_cases);
    ("resilience:policies", policy_cases);
    ("resilience:quarantine", quarantine_cases);
    ("resilience:write-failures", write_failure_cases);
    ("resilience:chaos", chaos_cases) ]
