let () =
  Alcotest.run "rtic"
    (Test_relational.suite @ Test_temporal.suite @ Test_mtl.suite @ Test_eval.suite @ Test_checker.suite @ Test_active.suite @ Test_future.suite @ Test_checkpoint.suite @ Test_codd.suite @ Test_arith.suite @ Test_stats.suite @ Test_properties.suite @ Test_transition.suite @ Test_sugar.suite @ Test_shared.suite @ Test_edge.suite @ Test_golden.suite @ Test_robustness.suite
    @ Test_semantics.suite @ Test_agreement.suite @ Test_json.suite
    @ Test_metrics.suite @ Test_resilience.suite @ Test_tracer.suite
    @ Test_parallel.suite @ Test_server.suite @ Test_repair.suite
    @ Test_regressions.suite)
