(* Transition atoms (+R / -R): the active-DBMS "inserted"/"deleted"
   transition tables, answered by every engine from the retained previous
   snapshot. *)

open Helpers
module F = Formula
module Compile = Rtic_active.Compile

let cat = Gen.generic_catalog

(* t=0: insert p(1), p(2).  t=3: delete p(1), insert p(3).  t=5: no change.
   t=7: delete p(2), p(3). *)
let h () =
  generic_history
    "@0\n+p(1)\n+p(2)\n@3\n-p(1)\n+p(3)\n@5\n@7\n-p(2)\n-p(3)\n"

let case name formula expected =
  Alcotest.test_case name `Quick (fun () ->
      check_both_vectors name cat (h ()) (parse_formula formula) expected)

let semantics_cases =
  [ case "inserted at position 0 is everything" "exists x. +p(x)"
      [ true; true; false; false ];
    case "deleted is empty at position 0" "exists x. -p(x)"
      [ false; true; false; true ];
    case "specific insert" "+p(3)" [ false; true; false; false ];
    case "specific delete" "-p(1)" [ false; true; false; false ];
    case "no-change transaction" "not ((exists x. +p(x)) | (exists x. -p(x)))"
      [ false; false; true; false ];
    case "transition under temporal operator" "once[0,4] +p(3)"
      (* witness at t=3; in the window at t=3, t=5 and t=7 (distance 4) *)
      [ false; true; true; true ];
    case "deleted implies was present" "forall x. -p(x) -> prev p(x)"
      [ true; true; true; true ];
    case "inserted implies now present" "forall x. +p(x) -> p(x)"
      [ true; true; true; true ];
    case "guarded transition negation" "forall x. -p(x) -> not +p(x)"
      [ true; true; true; true ] ]

let parse_cases =
  [ Alcotest.test_case "syntax round-trips" `Quick (fun () ->
        List.iter
          (fun src ->
            let f = parse_formula src in
            let f' = parse_formula (Pretty.to_string f) in
            if not (F.equal f f') then
              Alcotest.failf "%s did not round-trip (%s)" src
                (Pretty.to_string f))
          [ "+p(x)"; "-p(x)"; "exists x, y. +r(x, y)"; "+e()";
            "forall x. -q(x) -> once +p(x)"; "x + 1 < 2 & +p(x)" ]);
    Alcotest.test_case "transition sign requires an atom" `Quick (fun () ->
        ignore (get_error "bad" (Parser.formula_of_string "+ (p(x))"));
        ignore (get_error "bad2" (Parser.formula_of_string "-once p(x)"))) ]

(* Agreement between all engines on formulas with transition atoms is
   covered by the generator-driven property suites (the generator now emits
   +R/-R leaves); here we pin the active engine and checkpointing
   explicitly. *)
let engine_cases =
  [ Alcotest.test_case "active rules answer transition atoms" `Quick (fun () ->
        let d =
          { F.name = "c"; body = parse_formula "forall x. -p(x) -> once q(x)" }
        in
        let prog = get_ok "compile" (Compile.compile cat d) in
        let _, rev =
          List.fold_left
            (fun (eng, acc) (time, db) ->
              let eng, ok = get_ok "step" (Compile.step eng ~time db) in
              (eng, ok :: acc))
            (Compile.start prog, [])
            (History.snapshots (h ()))
        in
        Alcotest.check bool_list "vector"
          (naive_vector (h ()) d.F.body)
          (List.rev rev));
    Alcotest.test_case "checkpoint preserves the retained snapshot" `Quick
      (fun () ->
        let d =
          { F.name = "c"; body = parse_formula "forall x. -p(x) -> prev p(x)" }
        in
        let snaps = History.snapshots (h ()) in
        let st = get_ok "create" (Incremental.create cat d) in
        (* run two steps, checkpoint, restore, run the rest; compare with a
           straight run *)
        let st =
          List.fold_left
            (fun st (time, db) -> fst (get_ok "s" (Incremental.step st ~time db)))
            st
            (List.filteri (fun i _ -> i < 2) snaps)
        in
        let st' =
          get_ok "restore" (Incremental.of_text cat d (Incremental.to_text st))
        in
        let finish st =
          List.fold_left
            (fun (st, acc) (time, db) ->
              let st, v = get_ok "s" (Incremental.step st ~time db) in
              (st, v.Incremental.satisfied :: acc))
            (st, [])
            (List.filteri (fun i _ -> i >= 2) snaps)
          |> snd |> List.rev
        in
        Alcotest.check bool_list "same verdicts" (finish st) (finish st'));
    Alcotest.test_case "future monitor handles transitions across pruning"
      `Quick (fun () ->
        let d =
          { F.name = "c";
            body =
              parse_formula
                "forall x. -p(x) -> eventually[0,3] (exists y. +p(y))" }
        in
        let st = get_ok "create" (Rtic_core.Future.create cat d) in
        let _ = st in
        (* long quiet stretch then a delete: the buffer will have pruned, but
           the immediately preceding state must survive for -p *)
        let db1 =
          get_ok "i"
            (Database.insert (Database.create cat) "p" (Tuple.make [ Value.Int 1 ]))
        in
        let db2 = get_ok "d" (Database.delete db1 "p" (Tuple.make [ Value.Int 1 ])) in
        let steps =
          [ (1, db1); (2, db1); (30, db1); (60, db1); (90, db2); (95, db2) ]
        in
        let st, out =
          List.fold_left
            (fun (st, out) (time, db) ->
              let st, vs = get_ok "step" (Rtic_core.Future.step st ~time db) in
              (st, out @ vs))
            (st, []) steps
        in
        let out = out @ Rtic_core.Future.finish st in
        let verdicts = List.map (fun v -> v.Rtic_core.Future.satisfied) out in
        (* position 4 (t=90) deletes p(1) and no +p follows within 3 -> F *)
        Alcotest.check bool_list "vector"
          [ true; true; true; true; false; true ]
          verdicts) ]

let suite =
  [ ("transition:semantics", semantics_cases);
    ("transition:parse", parse_cases);
    ("transition:engines", engine_cases) ]
