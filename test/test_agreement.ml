(* The paper's correctness theorem, tested: on every trace, the incremental
   bounded-history-encoding checker reaches exactly the verdicts of the
   naive full-history evaluator — with and without pruning — and prunes to
   no more space than the unpruned ablation. *)

open Helpers

let vectors_agree ?config f tr =
  let h = get_ok "materialize" (Trace.materialize tr) in
  let naive = naive_vector h f in
  let inc = incremental_vector ?config Gen.generic_catalog h f in
  naive = inc

(* Random monitorable formulas over random generic traces. *)
let qcheck_agreement =
  qtest ~count:250 "incremental = naive on random formulas/traces"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, tseed) ->
      let f = Gen.random_formula ~seed:fseed ~depth:4 in
      let tr =
        Gen.random_trace ~seed:tseed
          { Gen.default_params with steps = 40; max_gap = 4 }
      in
      vectors_agree f tr)

let qcheck_agreement_noprune =
  qtest ~count:80 "unpruned ablation = naive on random formulas/traces"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, tseed) ->
      let f = Gen.random_formula ~seed:(fseed + 7) ~depth:4 in
      let tr =
        Gen.random_trace ~seed:(tseed + 7)
          { Gen.default_params with steps = 35 }
      in
      vectors_agree ~config:{ Incremental.prune = false } f tr)

let qcheck_deeper =
  qtest ~count:60 "agreement at temporal depth 7"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, tseed) ->
      let f = Gen.random_formula ~seed:(fseed + 31) ~depth:7 in
      let tr =
        Gen.random_trace ~seed:(tseed + 31)
          { Gen.default_params with steps = 25 }
      in
      vectors_agree f tr)

(* Scenario constraints over scenario traces, clean and violating. *)
let scenario_agreement =
  List.concat_map
    (fun (sc : Scenarios.t) ->
      List.concat_map
        (fun rate ->
          List.map
            (fun seed ->
              Alcotest.test_case
                (Printf.sprintf "%s seed=%d rate=%.1f" sc.name seed rate)
                `Quick
                (fun () ->
                  let tr = sc.generate ~seed ~steps:60 ~violation_rate:rate in
                  let inc =
                    get_ok "run_trace" (Monitor.run_trace sc.constraints tr)
                  in
                  let naive =
                    get_ok "run_trace_naive"
                      (Monitor.run_trace_naive sc.constraints tr)
                  in
                  let show r =
                    Printf.sprintf "%s@%d/%d" r.Monitor.constraint_name
                      r.Monitor.position r.Monitor.time
                  in
                  Alcotest.check
                    Alcotest.(list string)
                    "same violation reports" (List.map show naive)
                    (List.map show inc)))
            [ 1; 2; 3; 4; 5 ])
        [ 0.0; 0.3 ])
    Scenarios.all

(* Clean scenario traces must satisfy all their constraints. *)
let clean_traces_satisfied =
  List.map
    (fun (sc : Scenarios.t) ->
      Alcotest.test_case (sc.name ^ " clean trace has no violations") `Quick
        (fun () ->
          List.iter
            (fun seed ->
              let tr = sc.generate ~seed ~steps:120 ~violation_rate:0.0 in
              let reports =
                get_ok "run_trace" (Monitor.run_trace sc.constraints tr)
              in
              Alcotest.check Alcotest.int
                (Printf.sprintf "seed %d" seed)
                0 (List.length reports))
            [ 11; 12; 13 ]))
    Scenarios.all

(* Violating traces must produce at least one violation (checks that the
   injection machinery and the checker see each other). *)
let dirty_traces_violated =
  List.map
    (fun (sc : Scenarios.t) ->
      Alcotest.test_case (sc.name ^ " violating trace is caught") `Quick
        (fun () ->
          let total = ref 0 in
          List.iter
            (fun seed ->
              let tr = sc.generate ~seed ~steps:120 ~violation_rate:0.5 in
              let reports =
                get_ok "run_trace" (Monitor.run_trace sc.constraints tr)
              in
              total := !total + List.length reports)
            [ 21; 22; 23 ];
          if !total = 0 then
            Alcotest.fail "no violations detected across three dirty traces"))
    Scenarios.all

(* Pruning saves space (never costs) relative to the ablation. *)
let pruning_space =
  qtest ~count:40 "space(pruned) <= space(unpruned)"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, tseed) ->
      let f = Gen.random_formula ~seed:fseed ~depth:4 in
      let tr =
        Gen.random_trace ~seed:tseed { Gen.default_params with steps = 50 }
      in
      let h = get_ok "materialize" (Trace.materialize tr) in
      let d = { Formula.name = "t"; body = f } in
      let run config =
        let st =
          get_ok "create" (Incremental.create ~config Gen.generic_catalog d)
        in
        List.fold_left
          (fun st (time, db) ->
            fst (get_ok "step" (Incremental.step st ~time db)))
          st (History.snapshots h)
      in
      let pruned = run { Incremental.prune = true } in
      let unpruned = run { Incremental.prune = false } in
      Incremental.space pruned <= Incremental.space unpruned)

let suite =
  [ ( "agreement:qcheck",
      [ qcheck_agreement; qcheck_agreement_noprune; qcheck_deeper; pruning_space ] );
    ("agreement:scenarios", scenario_agreement);
    ("agreement:clean", clean_traces_satisfied);
    ("agreement:dirty", dirty_traces_violated) ]
