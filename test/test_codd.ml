(* The FO → relational-algebra compiler must agree with the direct
   evaluator on every snapshot. *)

open Helpers
module Codd = Rtic_eval.Codd
module Fo = Rtic_eval.Fo

let snapshot_of_trace seed =
  let tr = Gen.random_trace ~seed { Gen.default_params with steps = 12 } in
  let h = get_ok "m" (Trace.materialize tr) in
  History.db h (History.last h)

let no_temporal _ =
  Alcotest.fail "unexpected temporal subformula in an FO query"

let eval_direct db f =
  Fo.eval ~db ~temporal:no_temporal (Rewrite.normalize f)

let agreement_closed =
  qtest ~count:250 "algebra = direct evaluation (closed formulas)"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, dbseed) ->
      let f = Gen.random_fo_formula ~seed:fseed ~depth:6 in
      let db = snapshot_of_trace dbseed in
      let direct = Valrel.holds (eval_direct db f) in
      let via = get_ok "compile" (Codd.eval_via_algebra db f) in
      Valrel.holds via = direct)

let agreement_open =
  qtest ~count:250 "algebra = direct evaluation (open formulas)"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, dbseed) ->
      let f = Gen.random_open_fo_formula ~seed:fseed ~depth:6 in
      let db = snapshot_of_trace dbseed in
      let direct = eval_direct db f in
      let via = get_ok "compile" (Codd.eval_via_algebra db f) in
      Valrel.equal via direct)

let unit_cases =
  [ Alcotest.test_case "columns are the sorted free variables" `Quick
      (fun () ->
        let c =
          get_ok "compile"
            (Codd.compile Gen.generic_catalog (parse_formula "r(y, x)"))
        in
        Alcotest.(check (list string)) "cols" [ "x"; "y" ] c.Codd.columns);
    Alcotest.test_case "join and guard shapes" `Quick (fun () ->
        let db = snapshot_of_trace 3 in
        let f = parse_formula "r(x, y) & p(x) & x < y" in
        let direct = eval_direct db f in
        let via = get_ok "eval" (Codd.eval_via_algebra db f) in
        Alcotest.(check bool) "equal" true (Valrel.equal via direct));
    Alcotest.test_case "anti-join via difference" `Quick (fun () ->
        let db = snapshot_of_trace 4 in
        let f = parse_formula "p(x) & not q(x)" in
        let direct = eval_direct db f in
        let via = get_ok "eval" (Codd.eval_via_algebra db f) in
        Alcotest.(check bool) "equal" true (Valrel.equal via direct));
    Alcotest.test_case "repeated variables and constants" `Quick (fun () ->
        let db = snapshot_of_trace 5 in
        List.iter
          (fun src ->
            let f = parse_formula src in
            let direct = eval_direct db f in
            let via = get_ok src (Codd.eval_via_algebra db f) in
            if not (Valrel.equal via direct) then
              Alcotest.failf "%s: algebra disagrees" src)
          [ "r(x, x)"; "r(x, 3)"; "r(2, y)"; "exists x. r(x, x)";
            "p(x) & x = 4"; "x = 4 & p(x)" ]);
    Alcotest.test_case "rejects temporal formulas" `Quick (fun () ->
        ignore
          (get_error "temporal"
             (Codd.compile Gen.generic_catalog (parse_formula "once p(x)"))));
    Alcotest.test_case "rejects unsafe formulas" `Quick (fun () ->
        ignore
          (get_error "unsafe"
             (Codd.compile Gen.generic_catalog (parse_formula "not p(x)")))) ]

(* The planner is a pure rewrite: with and without it, every query returns
   the same valuation relation. *)
let planner_agreement =
  qtest ~count:250 "planned = unplanned evaluation"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, dbseed) ->
      let f = Gen.random_open_fo_formula ~seed:fseed ~depth:6 in
      let db = snapshot_of_trace dbseed in
      let planned = get_ok "planned" (Codd.eval_via_algebra ~plan:true db f) in
      let unplanned =
        get_ok "unplanned" (Codd.eval_via_algebra ~plan:false db f)
      in
      Valrel.equal planned unplanned)

let planner_cases =
  [ planner_agreement;
    Alcotest.test_case "planner pushes guards below the join" `Quick (fun () ->
        let f = parse_formula "r(x, y) & p(x) & x < 12" in
        let planned =
          get_ok "planned" (Codd.compile ~plan:true Gen.generic_catalog f)
        in
        let unplanned =
          get_ok "unplanned" (Codd.compile ~plan:false Gen.generic_catalog f)
        in
        Alcotest.(check bool)
          "rewrote" true
          (planned.Codd.expr <> unplanned.Codd.expr);
        let db = snapshot_of_trace 6 in
        let a = get_ok "a" (Codd.eval_via_algebra ~plan:true db f) in
        let b = get_ok "b" (Codd.eval_via_algebra ~plan:false db f) in
        Alcotest.(check bool) "equal" true (Valrel.equal a b)) ]

let suite =
  [ ("codd:agreement", [ agreement_closed; agreement_open ]);
    ("codd:planner", planner_cases);
    ("codd:unit", unit_cases) ]
