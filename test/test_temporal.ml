(* Unit tests for intervals, histories and traces. *)

open Helpers

let interval_cases =
  [ Alcotest.test_case "membership" `Quick (fun () ->
        let i = Interval.bounded 2 5 in
        List.iter
          (fun (d, want) ->
            Alcotest.(check bool) (string_of_int d) want (Interval.mem d i))
          [ (1, false); (2, true); (5, true); (6, false); (-1, false) ];
        Alcotest.(check bool) "unbounded" true
          (Interval.mem 1_000_000 (Interval.unbounded 3));
        Alcotest.(check bool) "below lower" false
          (Interval.mem 2 (Interval.unbounded 3)));
    Alcotest.test_case "constructors validate" `Quick (fun () ->
        (try
           ignore (Interval.make (-1) None);
           Alcotest.fail "negative lower accepted"
         with Invalid_argument _ -> ());
        (try
           ignore (Interval.bounded 5 3);
           Alcotest.fail "inverted bounds accepted"
         with Invalid_argument _ -> ()));
    Alcotest.test_case "inter and hull" `Quick (fun () ->
        let a = Interval.bounded 0 10 and b = Interval.bounded 5 20 in
        (match Interval.inter a b with
         | Some i ->
           Alcotest.(check int) "lo" 5 (Interval.lo i);
           Alcotest.(check (option int)) "hi" (Some 10) (Interval.hi i)
         | None -> Alcotest.fail "expected overlap");
        Alcotest.(check bool) "disjoint" true
          (Interval.inter (Interval.bounded 0 2) (Interval.bounded 5 9) = None);
        let h = Interval.hull (Interval.bounded 0 2) (Interval.unbounded 5) in
        Alcotest.(check int) "hull lo" 0 (Interval.lo h);
        Alcotest.(check (option int)) "hull hi" None (Interval.hi h));
    Alcotest.test_case "shift clamps at zero" `Quick (fun () ->
        let i = Interval.shift (-4) (Interval.bounded 2 6) in
        Alcotest.(check int) "lo" 0 (Interval.lo i);
        Alcotest.(check (option int)) "hi" (Some 2) (Interval.hi i));
    qtest ~count:200 "mem consistent with bounds"
      QCheck.(triple small_nat small_nat small_nat)
      (fun (l, w, d) ->
        let i = Interval.bounded l (l + w) in
        Interval.mem d i = (d >= l && d <= l + w)) ]

let history_cases =
  [ Alcotest.test_case "strictly increasing times" `Quick (fun () ->
        let db = Database.create Gen.generic_catalog in
        let h = History.initial ~time:5 db in
        Alcotest.(check bool) "equal time rejected" true
          (Result.is_error (History.extend h ~time:5 db));
        Alcotest.(check bool) "smaller time rejected" true
          (Result.is_error (History.extend h ~time:4 db));
        let h = get_ok "extend" (History.extend h ~time:9 db) in
        Alcotest.(check int) "length" 2 (History.length h);
        Alcotest.(check int) "time" 9 (History.time h 1));
    Alcotest.test_case "out-of-range access" `Quick (fun () ->
        let db = Database.create Gen.generic_catalog in
        let h = History.initial ~time:0 db in
        (try
           ignore (History.time h 1);
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ())) ]

let trace_cases =
  [ Alcotest.test_case "parse and materialize" `Quick (fun () ->
        let h = generic_history "@0\n+p(1)\n@4\n+p(2)\n-p(1)\n" in
        Alcotest.(check int) "length" 2 (History.length h);
        let d1 = History.db h 1 in
        let p = Database.relation_exn d1 "p" in
        Alcotest.(check int) "p cardinality" 1 (Relation.cardinal p));
    Alcotest.test_case "rejects decreasing stamps" `Quick (fun () ->
        let r = Trace.parse (generic_schemas ^ "@5\n+p(1)\n@5\n+p(2)\n") in
        Alcotest.(check bool) "error" true (Result.is_error r));
    Alcotest.test_case "rejects update before marker" `Quick (fun () ->
        let r = Trace.parse (generic_schemas ^ "+p(1)\n@5\n") in
        Alcotest.(check bool) "error" true (Result.is_error r));
    Alcotest.test_case "rejects unknown relation" `Quick (fun () ->
        let r = Trace.parse (generic_schemas ^ "@1\n+zz(1)\n") in
        Alcotest.(check bool) "error" true (Result.is_error r));
    Alcotest.test_case "to_string round-trips materialization" `Quick (fun () ->
        let tr = Gen.random_trace ~seed:5 { Gen.default_params with steps = 20 } in
        let tr' = get_ok "reparse" (Trace.parse (Trace.to_string tr)) in
        let h = get_ok "m1" (Trace.materialize tr) in
        let h' = get_ok "m2" (Trace.materialize tr') in
        Alcotest.(check int) "same length" (History.length h) (History.length h');
        List.iter2
          (fun (t, d) (t', d') ->
            Alcotest.(check int) "time" t t';
            Alcotest.(check bool) "db" true (Database.equal d d'))
          (History.snapshots h) (History.snapshots h'));
    Alcotest.test_case "non-empty init is folded into first txn" `Quick (fun () ->
        let cat = Gen.generic_catalog in
        let init =
          get_ok "ins"
            (Database.insert (Database.create cat) "p" (Tuple.make [ Value.Int 7 ]))
        in
        let tr =
          Trace.make_exn cat ~init
            [ (3, [ Update.insert "q" [ Value.Int 1 ] ]) ]
        in
        let tr' = get_ok "reparse" (Trace.parse (Trace.to_string tr)) in
        let h = get_ok "m" (Trace.materialize tr') in
        let d0 = History.db h 0 in
        Alcotest.(check int) "p present" 1
          (Relation.cardinal (Database.relation_exn d0 "p"));
        Alcotest.(check int) "q present" 1
          (Relation.cardinal (Database.relation_exn d0 "q"))) ]

let stored_tuples_cases =
  [ Alcotest.test_case "stored_tuples counts all snapshots" `Quick (fun () ->
        let h = generic_history "@0\n+p(1)\n@1\n+p(2)\n@2\n+q(1)\n" in
        (* snapshots hold 1, 2 and 3 tuples respectively *)
        Alcotest.(check int) "total" 6 (History.stored_tuples h)) ]

let suite =
  [ ("temporal:interval", interval_cases);
    ("temporal:history", history_cases);
    ("temporal:trace", trace_cases);
    ("temporal:space", stored_tuples_cases) ]
