(* The compiled active-rule engine must agree with the incremental checker
   and with the naive semantics on every trace. *)

open Helpers
module Compile = Rtic_active.Compile

let active_vector cat h f =
  let d = { Formula.name = "t"; body = f } in
  let prog = get_ok "compile" (Compile.compile cat d) in
  let _, rev =
    List.fold_left
      (fun (eng, acc) (time, db) ->
        let eng, ok = get_ok "step" (Compile.step eng ~time db) in
        (eng, ok :: acc))
      (Compile.start prog, [])
      (History.snapshots h)
  in
  List.rev rev

let agreement =
  qtest ~count:120 "active rules = naive on random formulas/traces"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, tseed) ->
      let f = Gen.random_formula ~seed:(fseed + 13) ~depth:4 in
      let tr =
        Gen.random_trace ~seed:(tseed + 13)
          { Gen.default_params with steps = 35 }
      in
      let h = get_ok "materialize" (Trace.materialize tr) in
      naive_vector h f = active_vector Gen.generic_catalog h f)

let scenario_agreement =
  List.map
    (fun (sc : Scenarios.t) ->
      Alcotest.test_case (sc.name ^ " compiled = incremental") `Quick (fun () ->
          let tr = sc.generate ~seed:42 ~steps:80 ~violation_rate:0.25 in
          let h = get_ok "m" (Trace.materialize tr) in
          List.iter
            (fun (d : Formula.def) ->
              Alcotest.check bool_list d.name
                (incremental_vector sc.catalog h d.body)
                (active_vector sc.catalog h d.body))
            sc.constraints))
    Scenarios.all

let structure_cases =
  [ Alcotest.test_case "emits one rule per temporal subformula" `Quick
      (fun () ->
        let d =
          { Formula.name = "c";
            body =
              parse_formula
                "forall x. q(x) -> once[0,5] p(x) & prev (p(x) since q(x))" }
        in
        let prog = get_ok "compile" (Compile.compile Gen.generic_catalog d) in
        let rs = Compile.rules prog in
        Alcotest.(check int) "three rules" 3 (List.length rs);
        List.iter
          (fun (r : Compile.rule_desc) ->
            Alcotest.(check bool) "described" true
              (String.length r.description > 0);
            Alcotest.(check bool) "targets an aux table" true
              (String.length r.target > 4))
          rs);
    Alcotest.test_case "aux tables typed from the constraint" `Quick (fun () ->
        let cat = Scenarios.banking.Scenarios.catalog in
        let d =
          { Formula.name = "c";
            body = parse_formula "forall e, s. salary(e, s) -> once[0,9] salary(e, s)" }
        in
        let prog = get_ok "compile" (Compile.compile cat d) in
        let aux = Compile.aux_catalog prog in
        match Schema.Catalog.schemas aux with
        | [ s ] ->
          Alcotest.(check int) "vars + _ts" 3 (Schema.arity s);
          Alcotest.(check bool) "_ts is int" true
            (List.exists
               (fun a -> a.Schema.attr_name = "_ts" && a.Schema.attr_ty = Value.TInt)
               s.Schema.attrs)
        | _ -> Alcotest.fail "expected exactly one auxiliary table");
    Alcotest.test_case "space comparable to incremental" `Quick (fun () ->
        let sc = Scenarios.monitoring in
        let tr = sc.generate ~seed:7 ~steps:60 ~violation_rate:0.0 in
        let h = get_ok "m" (Trace.materialize tr) in
        let d = List.hd sc.constraints in
        let prog = get_ok "compile" (Compile.compile sc.catalog d) in
        let eng =
          List.fold_left
            (fun eng (time, db) -> fst (get_ok "step" (Compile.step eng ~time db)))
            (Compile.start prog) (History.snapshots h)
        in
        let st =
          List.fold_left
            (fun st (time, db) -> fst (get_ok "step" (Incremental.step st ~time db)))
            (get_ok "create" (Incremental.create sc.catalog d))
            (History.snapshots h)
        in
        Alcotest.(check int) "same stored pairs" (Incremental.space st)
          (Compile.space eng)) ]

let suite =
  [ ("active:agreement", agreement :: scenario_agreement);
    ("active:structure", structure_cases) ]
