(* Unit tests for valuation relations and the first-order evaluation core. *)

open Helpers

let vi n = Value.Int n

let vr cols rows =
  Valrel.make cols (List.map (fun r -> Tuple.make (List.map vi r)) rows)

let valrel_cases =
  [ Alcotest.test_case "columns are canonicalized" `Quick (fun () ->
        let a = vr [ "y"; "x" ] [ [ 1; 2 ]; [ 3; 4 ] ] in
        Alcotest.(check (array string)) "sorted" [| "x"; "y" |] (Valrel.cols a);
        (* row (y=1, x=2) must now read x=2, y=1 *)
        Alcotest.(check bool) "reordered" true
          (Valrel.mem (Tuple.make [ vi 2; vi 1 ]) a));
    Alcotest.test_case "unit and falsehood" `Quick (fun () ->
        Alcotest.(check bool) "unit holds" true (Valrel.holds Valrel.unit);
        Alcotest.(check bool) "falsehood doesn't" false
          (Valrel.holds Valrel.falsehood);
        Alcotest.(check int) "unit is 0-ary" 0
          (Array.length (Valrel.cols Valrel.unit)));
    Alcotest.test_case "join on shared column" `Quick (fun () ->
        let a = vr [ "x" ] [ [ 1 ]; [ 2 ]; [ 3 ] ] in
        let b = vr [ "x"; "y" ] [ [ 1; 10 ]; [ 2; 20 ]; [ 9; 90 ] ] in
        let j = Valrel.join a b in
        Alcotest.(check int) "two rows" 2 (Valrel.cardinal j);
        Alcotest.(check (array string)) "cols" [| "x"; "y" |] (Valrel.cols j));
    Alcotest.test_case "join with no shared column is a product" `Quick
      (fun () ->
        let a = vr [ "x" ] [ [ 1 ]; [ 2 ] ] in
        let b = vr [ "y" ] [ [ 10 ]; [ 20 ]; [ 30 ] ] in
        Alcotest.(check int) "6 rows" 6 (Valrel.cardinal (Valrel.join a b)));
    Alcotest.test_case "join with unit is identity" `Quick (fun () ->
        let a = vr [ "x" ] [ [ 1 ]; [ 2 ] ] in
        Alcotest.(check bool) "left unit" true
          (Valrel.equal a (Valrel.join Valrel.unit a));
        Alcotest.(check bool) "right unit" true
          (Valrel.equal a (Valrel.join a Valrel.unit)));
    Alcotest.test_case "antijoin" `Quick (fun () ->
        let a = vr [ "x"; "y" ] [ [ 1; 10 ]; [ 2; 20 ]; [ 3; 30 ] ] in
        let b = vr [ "x" ] [ [ 2 ] ] in
        let r = Valrel.antijoin a b in
        Alcotest.(check int) "two rows survive" 2 (Valrel.cardinal r);
        Alcotest.(check bool) "killed the x=2 row" false
          (Valrel.mem (Tuple.make [ vi 2; vi 20 ]) r));
    Alcotest.test_case "antijoin against empty keeps all" `Quick (fun () ->
        let a = vr [ "x" ] [ [ 1 ]; [ 2 ] ] in
        Alcotest.(check bool) "identity" true
          (Valrel.equal a (Valrel.antijoin a (Valrel.none [ "x" ]))));
    Alcotest.test_case "project collapses" `Quick (fun () ->
        let a = vr [ "x"; "y" ] [ [ 1; 10 ]; [ 1; 20 ]; [ 2; 10 ] ] in
        Alcotest.(check int) "x view" 2
          (Valrel.cardinal (Valrel.project [ "x" ] a));
        Alcotest.(check int) "away y" 2
          (Valrel.cardinal (Valrel.project_away [ "y" ] a)));
    Alcotest.test_case "of_atom with constants and repeats" `Quick (fun () ->
        let rel =
          Relation.of_list 2
            [ Tuple.make [ vi 1; vi 1 ]; Tuple.make [ vi 1; vi 2 ];
              Tuple.make [ vi 3; vi 3 ] ]
        in
        let diag =
          get_ok "diag"
            (Valrel.of_atom rel [ Formula.Var "x"; Formula.Var "x" ])
        in
        Alcotest.(check int) "diagonal" 2 (Valrel.cardinal diag);
        let const1 =
          get_ok "const"
            (Valrel.of_atom rel [ Formula.Const (vi 1); Formula.Var "z" ])
        in
        Alcotest.(check int) "matching rows" 2 (Valrel.cardinal const1);
        let closed =
          get_ok "closed"
            (Valrel.of_atom rel [ Formula.Const (vi 3); Formula.Const (vi 3) ])
        in
        Alcotest.(check bool) "holds" true (Valrel.holds closed);
        Alcotest.(check bool) "arity error" true
          (Result.is_error (Valrel.of_atom rel [ Formula.Var "x" ])));
    Alcotest.test_case "make rejects malformed input descriptively" `Quick
      (fun () ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        let raises_invalid_arg expected f =
          match f () with
          | exception Invalid_argument m ->
            Alcotest.(check bool)
              (Printf.sprintf "message %S mentions %S" m expected)
              true (contains m expected)
          | _ -> Alcotest.failf "expected Invalid_argument (%s)" expected
        in
        raises_invalid_arg "duplicate column" (fun () ->
            Valrel.make [ "x"; "x" ] [ Tuple.make [ vi 1; vi 2 ] ]);
        raises_invalid_arg "arity mismatch" (fun () ->
            Valrel.make [ "x"; "y" ] [ Tuple.make [ vi 1 ] ])) ]

let valrel_laws =
  let gen =
    QCheck.Gen.(
      map
        (fun rows ->
          vr [ "x"; "y" ] (List.map (fun (a, b) -> [ a; b ]) rows))
        (list_size (int_bound 10) (pair (int_bound 4) (int_bound 4))))
  in
  let arb = QCheck.make gen in
  [ qtest ~count:200 "join is commutative (same cols)"
      QCheck.(pair arb arb)
      (fun (a, b) -> Valrel.equal (Valrel.join a b) (Valrel.join b a));
    qtest ~count:200 "join is idempotent" arb (fun a ->
        Valrel.equal a (Valrel.join a a));
    qtest ~count:200 "antijoin and semijoin are disjoint"
      QCheck.(pair arb arb)
      (fun (a, b) ->
        let anti = Valrel.antijoin a b in
        let semi = Valrel.join a b in
        Valrel.is_empty (Valrel.inter anti (Valrel.project [ "x"; "y" ] semi)));
    qtest ~count:200 "antijoin partitions"
      QCheck.(pair arb arb)
      (fun (a, b) ->
        let anti = Valrel.antijoin a b in
        let semi = Valrel.antijoin a anti in
        Valrel.equal a (Valrel.union anti semi)) ]

let naive_error_cases =
  [ Alcotest.test_case "unsafe formula reported" `Quick (fun () ->
        let h = generic_history "@0\n+p(1)\n" in
        ignore (get_error "unsafe" (Naive.eval h 0 (parse_formula "not p(x)"))));
    Alcotest.test_case "unknown relation reported" `Quick (fun () ->
        let h = generic_history "@0\n+p(1)\n" in
        ignore
          (get_error "unknown" (Naive.holds_at h 0 (parse_formula "zzz(3)"))));
    Alcotest.test_case "open formulas produce witnesses" `Quick (fun () ->
        let h = generic_history "@0\n+p(1)\n+p(2)\n@1\n+q(1)\n" in
        let v = get_ok "eval" (Naive.eval h 1 (parse_formula "q(x) & once p(x)")) in
        Alcotest.(check int) "one witness" 1 (Valrel.cardinal v);
        Alcotest.(check bool) "x=1" true (Valrel.mem (Tuple.make [ vi 1 ]) v)) ]

let suite =
  [ ("eval:valrel", valrel_cases);
    ("eval:valrel-laws", valrel_laws);
    ("eval:naive-errors", naive_error_cases) ]
