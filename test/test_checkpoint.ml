(* Checkpoint/restore: saving the bounded history encoding and restoring it
   must be observationally identical to never having stopped. *)

open Helpers
module F = Formula

let cat = Gen.generic_catalog

let steps_of_history h = History.snapshots h

let run_with_checkpoint d snaps cut =
  let st = get_ok "create" (Incremental.create cat d) in
  let before, after =
    List.filteri (fun i _ -> i < cut) snaps,
    List.filteri (fun i _ -> i >= cut) snaps
  in
  let st =
    List.fold_left
      (fun st (time, db) -> fst (get_ok "step" (Incremental.step st ~time db)))
      st before
  in
  let text = Incremental.to_text st in
  let st = get_ok "restore" (Incremental.of_text cat d text) in
  let _, rev =
    List.fold_left
      (fun (st, acc) (time, db) ->
        let st, v = get_ok "step" (Incremental.step st ~time db) in
        (st, v.Incremental.satisfied :: acc))
      (st, []) after
  in
  List.rev rev

let straight_run d snaps =
  let st = get_ok "create" (Incremental.create cat d) in
  let _, rev =
    List.fold_left
      (fun (st, acc) (time, db) ->
        let st, v = get_ok "step" (Incremental.step st ~time db) in
        (st, v.Incremental.satisfied :: acc))
      (st, []) snaps
  in
  List.rev rev

let roundtrip_property =
  qtest ~count:80 "restore-and-continue = run-straight-through"
    QCheck.(triple small_nat small_nat (int_bound 30))
    (fun (fseed, tseed, cut) ->
      let f = Gen.random_formula ~seed:fseed ~depth:4 in
      let tr =
        Gen.random_trace ~seed:tseed { Gen.default_params with steps = 35 }
      in
      let h = get_ok "m" (Trace.materialize tr) in
      let snaps = steps_of_history h in
      let cut = 1 + min cut (List.length snaps - 2) in
      let d = { F.name = "c"; body = f } in
      let straight = straight_run d snaps in
      let resumed = run_with_checkpoint d snaps cut in
      List.filteri (fun i _ -> i >= cut) straight = resumed)

let unit_cases =
  [ Alcotest.test_case "state survives textually" `Quick (fun () ->
        let d =
          { F.name = "c";
            body = parse_formula "forall x. q(x) -> once[0,9] p(x)" }
        in
        let st = get_ok "create" (Incremental.create cat d) in
        let db =
          get_ok "ins"
            (Database.insert (Database.create cat) "p"
               (Tuple.make [ Value.Int 5 ]))
        in
        let st, _ = get_ok "s1" (Incremental.step st ~time:3 db) in
        let text = Incremental.to_text st in
        let st' = get_ok "restore" (Incremental.of_text cat d text) in
        Alcotest.(check int) "space preserved" (Incremental.space st)
          (Incremental.space st');
        Alcotest.(check int) "steps preserved" 1 (Incremental.steps_taken st');
        (* next step must still reject non-increasing timestamps *)
        Alcotest.(check bool) "clock restored" true
          (Result.is_error (Incremental.step st' ~time:3 db)));
    Alcotest.test_case "string values with tricky characters" `Quick (fun () ->
        let cat =
          Schema.Catalog.of_list
            [ Schema.make "s" [ ("v", Value.TStr) ] ]
        in
        let d =
          { F.name = "c";
            body = parse_formula "forall x. s(x) -> once[0,9] s(x)" }
        in
        let st = get_ok "create" (Incremental.create cat d) in
        let db =
          get_ok "ins"
            (Database.insert (Database.create cat) "s"
               (Tuple.make [ Value.Str "a, \"b\" @ 3" ]))
        in
        let st, _ = get_ok "s1" (Incremental.step st ~time:1 db) in
        let st' =
          get_ok "restore" (Incremental.of_text cat d (Incremental.to_text st))
        in
        Alcotest.(check int) "space" (Incremental.space st)
          (Incremental.space st'));
    Alcotest.test_case "rejects checkpoints of other constraints" `Quick
      (fun () ->
        let d1 = { F.name = "a"; body = parse_formula "e()" } in
        let d2 = { F.name = "b"; body = parse_formula "not e()" } in
        let st = get_ok "create" (Incremental.create cat d1) in
        let text = Incremental.to_text st in
        ignore (get_error "mismatch" (Incremental.of_text cat d2 text)));
    Alcotest.test_case "rejects garbage" `Quick (fun () ->
        let d = { F.name = "a"; body = parse_formula "e()" } in
        List.iter
          (fun text -> ignore (get_error "garbage" (Incremental.of_text cat d text)))
          [ ""; "hello world"; "rtic-checkpoint 2\nformula e()";
            "rtic-checkpoint 1\nformula e()\nrow 1" ]) ]

(* Monitor-level checkpoints: database + all checkers. *)
let monitor_cases =
  [ Alcotest.test_case "monitor restore-and-continue" `Quick (fun () ->
        let sc = Scenarios.banking in
        let tr = sc.Scenarios.generate ~seed:17 ~steps:80 ~violation_rate:0.2 in
        let cut = 40 in
        let before = List.filteri (fun i _ -> i < cut) tr.Trace.steps in
        let after = List.filteri (fun i _ -> i >= cut) tr.Trace.steps in
        let feed m steps =
          List.fold_left
            (fun (m, out) (time, txn) ->
              let m, rs = get_ok "step" (Monitor.step m ~time txn) in
              (m, out @ rs))
            (m, []) steps
        in
        (* straight-through run *)
        let m0 =
          get_ok "create" (Monitor.create sc.Scenarios.catalog sc.Scenarios.constraints)
        in
        let m_all, reports_all = feed m0 tr.Trace.steps in
        (* checkpointed run *)
        let m1, reports_before =
          feed
            (get_ok "create"
               (Monitor.create sc.Scenarios.catalog sc.Scenarios.constraints))
            before
        in
        let text = Monitor.to_text m1 in
        let m2 =
          get_ok "restore"
            (Monitor.of_text sc.Scenarios.catalog sc.Scenarios.constraints text)
        in
        let m_res, reports_after = feed m2 after in
        let show r =
          Printf.sprintf "%s@%d" r.Monitor.constraint_name r.Monitor.time
        in
        Alcotest.(check (list string))
          "same reports"
          (List.map show reports_all)
          (List.map show (reports_before @ reports_after));
        Alcotest.(check bool) "same database" true
          (Database.equal (Monitor.database m_all) (Monitor.database m_res));
        Alcotest.(check int) "same space" (Monitor.space m_all)
          (Monitor.space m_res));
    Alcotest.test_case "monitor checkpoint rejects wrong constraint set" `Quick
      (fun () ->
        let cat = Gen.generic_catalog in
        let d1 = { Formula.name = "a"; body = parse_formula "e()" } in
        let d2 = { Formula.name = "b"; body = parse_formula "not e()" } in
        let m = get_ok "create" (Monitor.create cat [ d1 ]) in
        let text = Monitor.to_text m in
        ignore (get_error "count" (Monitor.of_text cat [ d1; d2 ] text));
        ignore (get_error "formula" (Monitor.of_text cat [ d2 ] text))) ]

let suite =
  [ ("checkpoint:roundtrip", [ roundtrip_property ]);
    ("checkpoint:unit", unit_cases);
    ("checkpoint:monitor", monitor_cases) ]
