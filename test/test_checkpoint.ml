(* Checkpoint/restore: saving the bounded history encoding and restoring it
   must be observationally identical to never having stopped. *)

open Helpers
module F = Formula

let cat = Gen.generic_catalog

let steps_of_history h = History.snapshots h

let run_with_checkpoint d snaps cut =
  let st = get_ok "create" (Incremental.create cat d) in
  let before, after =
    List.filteri (fun i _ -> i < cut) snaps,
    List.filteri (fun i _ -> i >= cut) snaps
  in
  let st =
    List.fold_left
      (fun st (time, db) -> fst (get_ok "step" (Incremental.step st ~time db)))
      st before
  in
  let text = Incremental.to_text st in
  let st = get_ok "restore" (Incremental.of_text cat d text) in
  let _, rev =
    List.fold_left
      (fun (st, acc) (time, db) ->
        let st, v = get_ok "step" (Incremental.step st ~time db) in
        (st, v.Incremental.satisfied :: acc))
      (st, []) after
  in
  List.rev rev

let straight_run d snaps =
  let st = get_ok "create" (Incremental.create cat d) in
  let _, rev =
    List.fold_left
      (fun (st, acc) (time, db) ->
        let st, v = get_ok "step" (Incremental.step st ~time db) in
        (st, v.Incremental.satisfied :: acc))
      (st, []) snaps
  in
  List.rev rev

let roundtrip_property =
  qtest ~count:80 "restore-and-continue = run-straight-through"
    QCheck.(triple small_nat small_nat (int_bound 30))
    (fun (fseed, tseed, cut) ->
      let f = Gen.random_formula ~seed:fseed ~depth:4 in
      let tr =
        Gen.random_trace ~seed:tseed { Gen.default_params with steps = 35 }
      in
      let h = get_ok "m" (Trace.materialize tr) in
      let snaps = steps_of_history h in
      let cut = 1 + min cut (List.length snaps - 2) in
      let d = { F.name = "c"; body = f } in
      let straight = straight_run d snaps in
      let resumed = run_with_checkpoint d snaps cut in
      List.filteri (fun i _ -> i >= cut) straight = resumed)

let unit_cases =
  [ Alcotest.test_case "state survives textually" `Quick (fun () ->
        let d =
          { F.name = "c";
            body = parse_formula "forall x. q(x) -> once[0,9] p(x)" }
        in
        let st = get_ok "create" (Incremental.create cat d) in
        let db =
          get_ok "ins"
            (Database.insert (Database.create cat) "p"
               (Tuple.make [ Value.Int 5 ]))
        in
        let st, _ = get_ok "s1" (Incremental.step st ~time:3 db) in
        let text = Incremental.to_text st in
        let st' = get_ok "restore" (Incremental.of_text cat d text) in
        Alcotest.(check int) "space preserved" (Incremental.space st)
          (Incremental.space st');
        Alcotest.(check int) "steps preserved" 1 (Incremental.steps_taken st');
        (* next step must still reject non-increasing timestamps *)
        Alcotest.(check bool) "clock restored" true
          (Result.is_error (Incremental.step st' ~time:3 db)));
    Alcotest.test_case "string values with tricky characters" `Quick (fun () ->
        let cat =
          Schema.Catalog.of_list
            [ Schema.make "s" [ ("v", Value.TStr) ] ]
        in
        let d =
          { F.name = "c";
            body = parse_formula "forall x. s(x) -> once[0,9] s(x)" }
        in
        let st = get_ok "create" (Incremental.create cat d) in
        let db =
          get_ok "ins"
            (Database.insert (Database.create cat) "s"
               (Tuple.make [ Value.Str "a, \"b\" @ 3" ]))
        in
        let st, _ = get_ok "s1" (Incremental.step st ~time:1 db) in
        let st' =
          get_ok "restore" (Incremental.of_text cat d (Incremental.to_text st))
        in
        Alcotest.(check int) "space" (Incremental.space st)
          (Incremental.space st'));
    Alcotest.test_case "rejects checkpoints of other constraints" `Quick
      (fun () ->
        let d1 = { F.name = "a"; body = parse_formula "e()" } in
        let d2 = { F.name = "b"; body = parse_formula "not e()" } in
        let st = get_ok "create" (Incremental.create cat d1) in
        let text = Incremental.to_text st in
        ignore (get_error "mismatch" (Incremental.of_text cat d2 text)));
    Alcotest.test_case "rejects garbage" `Quick (fun () ->
        let d = { F.name = "a"; body = parse_formula "e()" } in
        List.iter
          (fun text -> ignore (get_error "garbage" (Incremental.of_text cat d text)))
          [ ""; "hello world"; "rtic-checkpoint 2\nformula e()";
            "rtic-checkpoint 1\nformula e()\nrow 1" ]) ]

(* ---------------- Corrupt-checkpoint regression corpus ----------------

   Every mutation below must produce a clean [Error _]: the lenient restore
   this replaces accepted misspelled keys (silently dropping auxiliary
   data) and undetectably truncated files. *)

let corpus_constraint =
  { F.name = "c"; body = parse_formula "forall x. q(x) -> once[0,9] p(x)" }

(* A real checkpoint with window content, two steps taken. *)
let healthy_checkpoint () =
  let st = get_ok "create" (Incremental.create cat corpus_constraint) in
  let db =
    get_ok "ins"
      (Database.insert (Database.create cat) "p" (Tuple.make [ Value.Int 5 ]))
  in
  let st, _ = get_ok "s1" (Incremental.step st ~time:3 db) in
  let st, _ = get_ok "s2" (Incremental.step st ~time:5 db) in
  Incremental.to_text st

let lines_of t = String.split_on_char '\n' t |> List.filter (fun l -> l <> "")
let text_of ls = String.concat "\n" ls ^ "\n"

let map_lines f t = text_of (List.map f (lines_of t))

let starts_with prefix l =
  String.length l >= String.length prefix
  && String.sub l 0 (String.length prefix) = prefix

let corrupt_cases =
  [ Alcotest.test_case "healthy corpus checkpoint restores" `Quick (fun () ->
        let text = healthy_checkpoint () in
        ignore (get_ok "healthy" (Incremental.of_text cat corpus_constraint text)));
    Alcotest.test_case "misspelled row key is a hard error" `Quick (fun () ->
        let text =
          map_lines
            (fun l -> if starts_with "row " l then "rwo " ^ String.sub l 4 (String.length l - 4) else l)
            (healthy_checkpoint ())
        in
        ignore (get_error "rwo" (Incremental.of_text cat corpus_constraint text)));
    Alcotest.test_case "unknown extra key is a hard error" `Quick (fun () ->
        let text = healthy_checkpoint () ^ "futuristic_extension 42\n" in
        ignore
          (get_error "unknown" (Incremental.of_text cat corpus_constraint text)));
    Alcotest.test_case "truncation: missing end marker" `Quick (fun () ->
        let ls = lines_of (healthy_checkpoint ()) in
        let text = text_of (List.filteri (fun i _ -> i < List.length ls - 1) ls) in
        let m = get_error "trunc" (Incremental.of_text cat corpus_constraint text) in
        Alcotest.(check bool) "names truncation" true
          (String.length m > 0));
    Alcotest.test_case "truncation: row dropped but end kept" `Quick (fun () ->
        let dropped = ref false in
        let ls =
          List.filter
            (fun l ->
              if (not !dropped) && starts_with "row " l then begin
                dropped := true;
                false
              end
              else true)
            (lines_of (healthy_checkpoint ()))
        in
        Alcotest.(check bool) "corpus had a row to drop" true !dropped;
        ignore
          (get_error "count" (Incremental.of_text cat corpus_constraint (text_of ls))));
    Alcotest.test_case "content after the end marker" `Quick (fun () ->
        let text = healthy_checkpoint () ^ "row 7 @ 3\n" in
        ignore
          (get_error "after-end" (Incremental.of_text cat corpus_constraint text)));
    Alcotest.test_case "row for the wrong aux kind" `Quick (fun () ->
        let text =
          map_lines
            (fun l -> if starts_with "aux " l then "aux 0 prev 3" else l)
            (healthy_checkpoint ())
        in
        ignore
          (get_error "kind" (Incremental.of_text cat corpus_constraint text)));
    Alcotest.test_case "old version 1 checkpoints are refused" `Quick (fun () ->
        let text =
          map_lines
            (fun l ->
              if starts_with "rtic-checkpoint" l then "rtic-checkpoint 1" else l)
            (healthy_checkpoint ())
        in
        ignore (get_error "v1" (Incremental.of_text cat corpus_constraint text)));
    Alcotest.test_case "missing steps line" `Quick (fun () ->
        let text =
          text_of
            (List.filter
               (fun l -> not (starts_with "steps" l))
               (lines_of (healthy_checkpoint ())))
        in
        ignore (get_error "steps" (Incremental.of_text cat corpus_constraint text)));
    Alcotest.test_case "missing last_time line" `Quick (fun () ->
        let text =
          text_of
            (List.filter
               (fun l -> not (starts_with "last_time" l))
               (lines_of (healthy_checkpoint ())))
        in
        ignore
          (get_error "last_time" (Incremental.of_text cat corpus_constraint text)));
    Alcotest.test_case "steps 0 contradicting content" `Quick (fun () ->
        let text =
          map_lines
            (fun l -> if starts_with "steps" l then "steps 0" else l)
            (healthy_checkpoint ())
        in
        ignore (get_error "steps0" (Incremental.of_text cat corpus_constraint text)));
    Alcotest.test_case "last_time older than restored timestamps" `Quick
      (fun () ->
        let text =
          map_lines
            (fun l -> if starts_with "last_time" l then "last_time 1" else l)
            (healthy_checkpoint ())
        in
        ignore (get_error "stale" (Incremental.of_text cat corpus_constraint text)));
    Alcotest.test_case "last_time none contradicting content" `Quick (fun () ->
        let text =
          map_lines
            (fun l -> if starts_with "last_time" l then "last_time none" else l)
            (healthy_checkpoint ())
        in
        ignore (get_error "none" (Incremental.of_text cat corpus_constraint text))) ]

(* ---------------- Adversarial string values ----------------

   The checkpoint line format quotes string values (%S) and splits window
   rows on the last unquoted '@'; strings full of separators, quotes and
   escapes must survive a save/restore round-trip bit-exactly. *)

let adversarial_string =
  let gen =
    QCheck.Gen.(
      map
        (fun cs -> String.concat "" cs)
        (list_size (int_bound 12)
           (oneofl
              [ "@"; ","; " "; "\""; "\\"; "\n"; "\t"; "a"; "b"; "#"; "(";
                ")"; "\r"; "\000"; "\xff"; "4"; "."; "-"; "@ 3"; " @ " ])))
  in
  QCheck.make ~print:(Printf.sprintf "%S") gen

let string_roundtrip_property =
  let scat =
    Schema.Catalog.of_list [ Schema.make "s" [ ("v", Value.TStr) ] ]
  in
  let d =
    { F.name = "c"; body = parse_formula "forall x. s(x) -> once[0,9] s(x)" }
  in
  qtest ~count:300 "restore . to_text = id over adversarial strings"
    QCheck.(pair adversarial_string adversarial_string)
    (fun (s1, s2) ->
      let db =
        get_ok "ins"
          (Database.insert (Database.create scat) "s"
             (Tuple.make [ Value.Str s1 ]))
      in
      let db =
        if s1 = s2 then db
        else
          get_ok "ins2" (Database.insert db "s" (Tuple.make [ Value.Str s2 ]))
      in
      let st = get_ok "create" (Incremental.create scat d) in
      let st, _ = get_ok "step" (Incremental.step st ~time:7 db) in
      let text = Incremental.to_text st in
      match Incremental.of_text scat d text with
      | Error m -> QCheck.Test.fail_reportf "restore failed: %s" m
      | Ok st' -> Incremental.to_text st' = text)

(* Monitor-level checkpoints: database + all checkers. *)
let monitor_cases =
  [ Alcotest.test_case "monitor restore-and-continue" `Quick (fun () ->
        let sc = Scenarios.banking in
        let tr = sc.Scenarios.generate ~seed:17 ~steps:80 ~violation_rate:0.2 in
        let cut = 40 in
        let before = List.filteri (fun i _ -> i < cut) tr.Trace.steps in
        let after = List.filteri (fun i _ -> i >= cut) tr.Trace.steps in
        let feed m steps =
          List.fold_left
            (fun (m, out) (time, txn) ->
              let m, rs = get_ok "step" (Monitor.step m ~time txn) in
              (m, out @ rs))
            (m, []) steps
        in
        (* straight-through run *)
        let m0 =
          get_ok "create" (Monitor.create sc.Scenarios.catalog sc.Scenarios.constraints)
        in
        let m_all, reports_all = feed m0 tr.Trace.steps in
        (* checkpointed run *)
        let m1, reports_before =
          feed
            (get_ok "create"
               (Monitor.create sc.Scenarios.catalog sc.Scenarios.constraints))
            before
        in
        let text = Monitor.to_text m1 in
        let m2 =
          get_ok "restore"
            (Monitor.of_text sc.Scenarios.catalog sc.Scenarios.constraints text)
        in
        let m_res, reports_after = feed m2 after in
        let show r =
          Printf.sprintf "%s@%d" r.Monitor.constraint_name r.Monitor.time
        in
        Alcotest.(check (list string))
          "same reports"
          (List.map show reports_all)
          (List.map show (reports_before @ reports_after));
        Alcotest.(check bool) "same database" true
          (Database.equal (Monitor.database m_all) (Monitor.database m_res));
        Alcotest.(check int) "same space" (Monitor.space m_all)
          (Monitor.space m_res));
    Alcotest.test_case "monitor checkpoint rejects wrong constraint set" `Quick
      (fun () ->
        let cat = Gen.generic_catalog in
        let d1 = { Formula.name = "a"; body = parse_formula "e()" } in
        let d2 = { Formula.name = "b"; body = parse_formula "not e()" } in
        let m = get_ok "create" (Monitor.create cat [ d1 ]) in
        let text = Monitor.to_text m in
        ignore (get_error "count" (Monitor.of_text cat [ d1; d2 ] text));
        ignore (get_error "formula" (Monitor.of_text cat [ d2 ] text))) ]

(* Every-prefix property: for a whole scenario run, saving the monitor
   after EVERY prefix and resuming from the text must reproduce the
   uninterrupted run's report stream exactly.  This is the invariant the
   supervisor's auto-checkpointing leans on: no checkpoint position is
   privileged. *)
let every_prefix_property =
  let show r =
    Printf.sprintf "%s@%d/%d" r.Monitor.constraint_name r.Monitor.position
      r.Monitor.time
  in
  let feed m steps =
    List.fold_left
      (fun (m, out) (time, txn) ->
        let m, rs = get_ok "step" (Monitor.step m ~time txn) in
        (m, out @ List.map show rs))
      (m, []) steps
  in
  qtest ~count:25 "monitor save/restore agrees at every prefix"
    QCheck.(pair (int_bound 3) small_nat)
    (fun (sc_idx, seed) ->
      let sc = List.nth Scenarios.all sc_idx in
      let tr = sc.Scenarios.generate ~seed ~steps:14 ~violation_rate:0.2 in
      let fresh () =
        get_ok "create"
          (Monitor.create_with tr.Trace.init sc.Scenarios.constraints)
      in
      let _, straight = feed (fresh ()) tr.Trace.steps in
      let n = List.length tr.Trace.steps in
      List.for_all
        (fun cut ->
          let before = List.filteri (fun i _ -> i < cut) tr.Trace.steps in
          let after = List.filteri (fun i _ -> i >= cut) tr.Trace.steps in
          let m1, rs_before = feed (fresh ()) before in
          let m2 =
            get_ok "restore"
              (Monitor.of_text sc.Scenarios.catalog sc.Scenarios.constraints
                 (Monitor.to_text m1))
          in
          let _, rs_after = feed m2 after in
          rs_before @ rs_after = straight)
        (List.init (n + 1) (fun i -> i)))

let suite =
  [ ("checkpoint:roundtrip",
     [ roundtrip_property; string_roundtrip_property; every_prefix_property ]);
    ("checkpoint:unit", unit_cases);
    ("checkpoint:corrupt", corrupt_cases);
    ("checkpoint:monitor", monitor_cases) ]
