(* Cross-constraint subformula sharing: the shared monitor must report
   exactly what the per-constraint monitor reports, with fewer auxiliary
   relations when constraints overlap. *)

open Helpers
module Shared = Rtic_core.Shared
module F = Formula

let cat = Gen.generic_catalog

let def name body = { F.name; body = parse_formula body }

(* three constraints sharing the subformula once[0,30] p(x) *)
let overlapping =
  [ def "a" "forall x. q(x) -> once[0,30] p(x)";
    def "b" "forall x, y. r(x, y) -> once[0,30] p(x)";
    def "c" "not (exists x. ((once[0,30] p(x)) & (prev q(x)) & not q(x)))" ]

let sharing_cases =
  [ Alcotest.test_case "shared kernel is smaller" `Quick (fun () ->
        let m = get_ok "create" (Shared.create cat overlapping) in
        Alcotest.(check int) "three distinct subformulas" 2
          (Shared.shared_nodes m);
        Alcotest.(check int) "per-constraint would keep four" 4
          (Shared.unshared_nodes m));
    Alcotest.test_case "agrees with the per-constraint monitor" `Quick
      (fun () ->
        List.iter
          (fun seed ->
            let tr =
              Gen.random_trace ~seed { Gen.default_params with steps = 50 }
            in
            let shared = get_ok "shared" (Shared.run_trace overlapping tr) in
            let plain = get_ok "plain" (Monitor.run_trace overlapping tr) in
            let show r =
              Printf.sprintf "%s@%d/%d" r.Monitor.constraint_name
                r.Monitor.position r.Monitor.time
            in
            Alcotest.(check (list string))
              (Printf.sprintf "seed %d" seed)
              (List.map show plain) (List.map show shared))
          [ 1; 2; 3; 4 ]);
    Alcotest.test_case "shared space <= sum of per-constraint spaces" `Quick
      (fun () ->
        let tr = Gen.random_trace ~seed:5 { Gen.default_params with steps = 60 } in
        let h = get_ok "m" (Trace.materialize tr) in
        let m0 = get_ok "create" (Shared.create cat overlapping) in
        let final =
          List.fold_left
            (fun m (time, txn) -> fst (get_ok "step" (Shared.step m ~time txn)))
            m0 tr.Trace.steps
        in
        let per =
          List.fold_left
            (fun acc d ->
              let st =
                List.fold_left
                  (fun st (time, db) ->
                    fst (get_ok "step" (Incremental.step st ~time db)))
                  (get_ok "create" (Incremental.create cat d))
                  (History.snapshots h)
              in
              acc + Incremental.space st)
            0 overlapping
        in
        Alcotest.(check bool) "no larger" true (Shared.space final <= per)) ]

let agreement_property =
  qtest ~count:60 "shared monitor = per-constraint monitor on random batches"
    QCheck.small_nat
    (fun seed ->
      let defs =
        List.mapi
          (fun i f -> { F.name = Printf.sprintf "c%d" i; body = f })
          (Gen.random_formulas ~seed ~depth:3 ~count:3)
      in
      let tr = Gen.random_trace ~seed:(seed + 101) { Gen.default_params with steps = 30 } in
      match Shared.run_trace defs tr, Monitor.run_trace defs tr with
      | Ok a, Ok b ->
        List.map (fun r -> (r.Monitor.constraint_name, r.Monitor.position)) a
        = List.map (fun r -> (r.Monitor.constraint_name, r.Monitor.position)) b
      | Error _, Error _ -> true
      | _ -> false)

let suite =
  [ ("shared:unit", sharing_cases); ("shared:property", [ agreement_property ]) ]
