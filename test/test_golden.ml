(* Golden regression vectors: pinned violation reports for the catalog
   constraints on fixed scenario seeds. Generators and checkers are both
   deterministic, so any drift in either shows up here as a precise diff —
   the canary for silent semantic changes. Checked: the total count, the
   first six reports, and the per-constraint counts. *)

open Helpers
module Stats = Rtic_core.Stats

let run sc seed rate =
  let sc' = (sc : Scenarios.t) in
  let tr = sc'.generate ~seed ~steps:80 ~violation_rate:rate in
  let reports = get_ok "run" (Monitor.run_trace sc'.constraints tr) in
  let shown =
    List.filteri (fun i _ -> i < 6) reports
    |> List.map (fun (r : Monitor.report) ->
        Printf.sprintf "%s@%d" r.constraint_name r.position)
  in
  let by =
    List.fold_left
      (fun s (r : Monitor.report) ->
        Stats.observe s ~time:r.time ~space:0 ~reports:[ r ])
      Stats.empty reports
  in
  (List.length reports, shown, Stats.violations_by_constraint by)

let golden name sc seed rate ~total ~head ~by =
  Alcotest.test_case name `Quick (fun () ->
      let t, h, b = run sc seed rate in
      Alcotest.(check int) (name ^ " total") total t;
      Alcotest.(check (list string)) (name ^ " head") head h;
      Alcotest.(check (list (pair string int))) (name ^ " by-constraint") by b)

let suite_cases =
  [ golden "banking seed=100 rate=0.2" Scenarios.banking 100 0.2 ~total:50
      ~head:
        [ "withdraw_rate_limit@10"; "withdraw_rate_limit@21";
          "salary_monotone@32"; "salary_monotone@33"; "salary_monotone@34";
          "salary_monotone@35" ]
      ~by:[ ("salary_monotone", 48); ("withdraw_rate_limit", 2) ];
    golden "library seed=100 rate=0.2" Scenarios.library 100 0.2 ~total:22
      ~head:
        [ "member_borrow@4"; "member_borrow@18"; "no_double_borrow@19";
          "member_borrow@23"; "no_double_borrow@24"; "no_double_borrow@25" ]
      ~by:[ ("member_borrow", 12); ("no_double_borrow", 10) ];
    golden "monitoring seed=100 rate=0.2" Scenarios.monitoring 100 0.2
      ~total:56
      ~head:
        [ "ack_has_alarm@5"; "ack_has_alarm@15"; "sensor_range@19";
          "sensor_smooth@19"; "sensor_range@20"; "sensor_range@21" ]
      ~by:
        [ ("ack_has_alarm", 9); ("alarm_has_fault", 1); ("sensor_range", 38);
          ("sensor_smooth", 8) ];
    golden "logistics seed=100 rate=0.2" Scenarios.logistics 100 0.2 ~total:22
      ~head:
        [ "ship_has_order@4"; "no_ship_after_cancel@9"; "ship_has_order@14";
          "no_ship_after_cancel@14"; "ship_has_order@16"; "ship_has_order@21" ]
      ~by:[ ("no_ship_after_cancel", 7); ("ship_has_order", 15) ];
    (* clean traces must stay clean *)
    golden "banking clean seed=100" Scenarios.banking 100 0.0 ~total:0 ~head:[]
      ~by:[];
    golden "logistics clean seed=100" Scenarios.logistics 100 0.0 ~total:0
      ~head:[] ~by:[] ]

let suite = [ ("golden", suite_cases) ]
