(* Robustness: checkpoint mutation fuzzing, serialization fixpoints, and
   catalog-wide sanity. *)

open Helpers
module Shared = Rtic_core.Shared
module F = Formula

let cat = Gen.generic_catalog

let some_state seed =
  let d =
    { F.name = "c";
      body = parse_formula "forall x. q(x) -> once[0,9] p(x) & prev p(x)" }
  in
  let tr = Gen.random_trace ~seed { Gen.default_params with steps = 20 } in
  let h = get_ok "m" (Trace.materialize tr) in
  ( d,
    List.fold_left
      (fun st (time, db) -> fst (get_ok "s" (Incremental.step st ~time db)))
      (get_ok "create" (Incremental.create cat d))
      (History.snapshots h) )

(* Mutate a valid checkpoint by dropping, duplicating or truncating lines:
   restore must never raise, and must never silently produce a state with
   more steps than the original. *)
let checkpoint_mutation =
  qtest ~count:150 "mutated checkpoints never crash the restorer"
    QCheck.(triple small_nat small_nat (int_bound 2))
    (fun (seed, pos, kind) ->
      let d, st = some_state seed in
      let text = Incremental.to_text st in
      let lines = String.split_on_char '\n' text in
      let n = List.length lines in
      let pos = pos mod max 1 n in
      let mutated =
        match kind with
        | 0 -> List.filteri (fun i _ -> i <> pos) lines          (* drop *)
        | 1 ->
          List.concat (List.mapi (fun i l -> if i = pos then [ l; l ] else [ l ]) lines)
        | _ -> List.filteri (fun i _ -> i < pos) lines           (* truncate *)
      in
      match Incremental.of_text cat d (String.concat "\n" mutated) with
      | Ok st' -> Incremental.steps_taken st' <= Incremental.steps_taken st
      | Error _ -> true)

(* Serialization is a fixpoint after one round trip. *)
let checkpoint_fixpoint =
  qtest ~count:80 "to_text (of_text (to_text st)) = to_text st"
    QCheck.small_nat
    (fun seed ->
      let d, st = some_state seed in
      let text = Incremental.to_text st in
      let st' = get_ok "restore" (Incremental.of_text cat d text) in
      Incremental.to_text st' = text)

(* Monitor-level checkpoints are fixpoints too. *)
let monitor_fixpoint =
  qtest ~count:40 "monitor checkpoint round trip is a fixpoint"
    QCheck.small_nat
    (fun seed ->
      let sc = Scenarios.banking in
      let tr = sc.Scenarios.generate ~seed ~steps:30 ~violation_rate:0.2 in
      let m =
        List.fold_left
          (fun m (time, txn) -> fst (get_ok "step" (Monitor.step m ~time txn)))
          (get_ok "create"
             (Monitor.create sc.Scenarios.catalog sc.Scenarios.constraints))
          tr.Trace.steps
      in
      let text = Monitor.to_text m in
      let m' =
        get_ok "restore"
          (Monitor.of_text sc.Scenarios.catalog sc.Scenarios.constraints text)
      in
      Monitor.to_text m' = text)

(* The shared monitor agrees with the per-constraint monitor on every
   scenario's own constraint set. *)
let shared_scenarios =
  List.map
    (fun (sc : Scenarios.t) ->
      Alcotest.test_case (sc.name ^ ": shared = per-constraint") `Quick
        (fun () ->
          let tr = sc.generate ~seed:33 ~steps:80 ~violation_rate:0.25 in
          let a = get_ok "shared" (Shared.run_trace sc.constraints tr) in
          let b = get_ok "plain" (Monitor.run_trace sc.constraints tr) in
          let show r =
            Printf.sprintf "%s@%d" r.Monitor.constraint_name r.Monitor.position
          in
          Alcotest.(check (list string)) "reports" (List.map show b)
            (List.map show a)))
    Scenarios.all

(* The exported benchmark catalog is well-formed. *)
let catalog_sane =
  Alcotest.test_case "constraint catalog C1-C14 is well-formed" `Quick
    (fun () ->
      let entries = Scenarios.constraint_catalog in
      Alcotest.(check int) "fourteen constraints" 14 (List.length entries);
      let ids = List.map fst entries in
      Alcotest.(check int) "distinct ids" 14
        (List.length (List.sort_uniq String.compare ids));
      (* every catalog constraint is monitorable against its scenario *)
      List.iter
        (fun (sc : Scenarios.t) ->
          List.iter
            (fun d ->
              ignore (get_ok (sc.name ^ "/" ^ d.F.name) (Safety.monitorable sc.catalog d)))
            sc.constraints)
        Scenarios.all)

let suite =
  [ ( "robustness:checkpoint",
      [ checkpoint_mutation; checkpoint_fixpoint; monitor_fixpoint ] );
    ("robustness:shared-scenarios", shared_scenarios);
    ("robustness:catalog", [ catalog_sane ]) ]
