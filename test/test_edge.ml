(* Edge cases across the stack: degenerate inputs, 0-ary relations, empty
   transactions, parser totality under fuzzing, and exact window
   boundaries. *)

open Helpers
module F = Formula

let cat = Gen.generic_catalog

(* -- Parser totality: random garbage must produce Error, never raise. -- *)

let parser_total =
  qtest ~count:500 "parser never raises on garbage"
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 60) QCheck.Gen.printable)
    (fun s ->
      match Parser.formula_of_string s with
      | Ok _ | Error _ -> true)

let lexer_total =
  qtest ~count:500 "lexer never raises on arbitrary bytes"
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 60) QCheck.Gen.char)
    (fun s ->
      match Rtic_mtl.Lexer.tokenize s with
      | Ok _ | Error _ -> true)

let trace_parser_total =
  qtest ~count:300 "trace parser never raises on garbage"
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 80) QCheck.Gen.printable)
    (fun s ->
      match Trace.parse s with
      | Ok _ | Error _ -> true)

let checkpoint_parser_total =
  qtest ~count:300 "checkpoint restore never raises on garbage"
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 80) QCheck.Gen.printable)
    (fun s ->
      let d = { F.name = "c"; body = parse_formula "once[0,3] e()" } in
      match Incremental.of_text cat d s with
      | Ok _ | Error _ -> true)

(* -- Degenerate monitoring inputs. -- *)

let degenerate_cases =
  [ Alcotest.test_case "empty transactions still advance the clock" `Quick
      (fun () ->
        (* the constraint flips to violated purely by time passing *)
        let d = { F.name = "c"; body = parse_formula "once[0,3] e()" } in
        let h = generic_history "@0\n+e()\n@2\n-e()\n@3\n@10\n" in
        check_both_vectors "time-only flip" cat h d.F.body
          [ true; true; true; false ]);
    Alcotest.test_case "single-state history" `Quick (fun () ->
        let h = generic_history "@5\n+p(1)\n" in
        check_both_vectors "prev at lone state" cat h
          (parse_formula "not prev (exists x. p(x))")
          [ true ];
        check_both_vectors "since at lone state" cat h
          (parse_formula "(exists x. p(x)) since (exists x. p(x))")
          [ true ]);
    Alcotest.test_case "0-ary relation everywhere" `Quick (fun () ->
        let h = generic_history "@0\n+e()\n@1\n-e()\n@2\n+e()\n" in
        check_both_vectors "e flip-flop" cat h
          (parse_formula "e() since[0,2] (not e())")
          (* pos0: no j with not-e. pos1: not-e now -> T.
             pos2: witness at t1 (d1), e at t2 holds -> T *)
          [ false; true; true ]);
    Alcotest.test_case "interval [0,0] means 'this very state'" `Quick
      (fun () ->
        let h = generic_history "@0\n+e()\n@1\n-e()\n" in
        check_both_vectors "once now" cat h
          (parse_formula "once[0,0] e()")
          [ true; false ]);
    Alcotest.test_case "window boundary is inclusive on both ends" `Quick
      (fun () ->
        let h = generic_history "@0\n+e()\n@1\n-e()\n@5\n@6\n" in
        (* e at t=0; distance 5 at t=5, 6 at t=6 *)
        check_both_vectors "hi edge" cat h
          (parse_formula "once[5,5] e()")
          [ false; false; true; false ];
        check_both_vectors "lo edge" cat h
          (parse_formula "once[6,9] e()")
          [ false; false; false; true ]);
    Alcotest.test_case "duplicate constraint admission is idempotent" `Quick
      (fun () ->
        let d = { F.name = "c"; body = parse_formula "e() | not e()" } in
        let st1 = get_ok "c1" (Incremental.create cat d) in
        let st2 = get_ok "c2" (Incremental.create cat d) in
        Alcotest.(check int) "same space" (Incremental.space st1)
          (Incremental.space st2));
    Alcotest.test_case "monitor with zero constraints" `Quick (fun () ->
        let m = get_ok "create" (Monitor.create cat []) in
        let m, rs = get_ok "step" (Monitor.step m ~time:1 []) in
        Alcotest.(check int) "no reports" 0 (List.length rs);
        Alcotest.(check int) "no space" 0 (Monitor.space m));
    Alcotest.test_case "shared monitor with zero constraints" `Quick (fun () ->
        let m = get_ok "create" (Rtic_core.Shared.create cat []) in
        let m, rs = get_ok "step" (Rtic_core.Shared.step m ~time:1 []) in
        Alcotest.(check int) "no reports" 0 (List.length rs);
        Alcotest.(check int) "no nodes" 0 (Rtic_core.Shared.shared_nodes m)) ]

(* -- Large values and deep structures. -- *)

let stress_cases =
  [ Alcotest.test_case "wide disjunction" `Quick (fun () ->
        let src =
          "forall x. p(x) -> "
          ^ String.concat " | "
              (List.init 40 (fun i -> Printf.sprintf "x = %d" i))
        in
        let h = generic_history "@0\n+p(3)\n@1\n+p(99)\n" in
        check_both_vectors "wide or" cat h (parse_formula src) [ true; false ]);
    Alcotest.test_case "deep since chain" `Quick (fun () ->
        let rec chain k = if k = 0 then "e()" else
            Printf.sprintf "(%s) since e()" (chain (k - 1))
        in
        let f = parse_formula (chain 12) in
        let h = generic_history "@0\n+e()\n@1\n@2\n+q(1)\n" in
        (* all states satisfy every level while e() held at 0; once e()
           disappears the chain survives only through the left side *)
        let v = naive_vector h f in
        Alcotest.(check int) "three verdicts" 3 (List.length v);
        Alcotest.check bool_list "incremental agrees" v
          (incremental_vector cat h f));
    Alcotest.test_case "min_int/max_int values survive the pipeline" `Quick
      (fun () ->
        let db =
          get_ok "i"
            (Database.insert (Database.create cat) "p"
               (Tuple.make [ Value.Int max_int ]))
        in
        let db =
          get_ok "i2" (Database.insert db "p" (Tuple.make [ Value.Int min_int ]))
        in
        let d = { F.name = "c"; body = parse_formula "exists x. (p(x) & x > 0)" } in
        let st = get_ok "create" (Incremental.create cat d) in
        let _, v = get_ok "s" (Incremental.step st ~time:1 db) in
        Alcotest.(check bool) "max_int > 0" true v.Incremental.satisfied) ]

let suite =
  [ ( "edge:totality",
      [ parser_total; lexer_total; trace_parser_total; checkpoint_parser_total ] );
    ("edge:degenerate", degenerate_cases);
    ("edge:stress", stress_cases) ]
