(* The metrics recorder and its wiring through the engine layers. *)

open Helpers
module Metrics = Rtic_core.Metrics
module Stats = Rtic_core.Stats
module Json = Rtic_core.Json
module Shared = Rtic_core.Shared

let cat = Gen.generic_catalog

let recorder_cases =
  [ Alcotest.test_case "counters accumulate" `Quick (fun () ->
        let m = Metrics.create () in
        Metrics.incr_steps m;
        Metrics.incr_steps m;
        Metrics.add_violations m 3;
        Metrics.cache_hit m;
        Metrics.cache_miss m;
        Metrics.cache_hit m;
        Alcotest.(check int) "steps" 2 (Metrics.steps m);
        Alcotest.(check int) "violations" 3 (Metrics.violations m);
        Alcotest.(check int) "hits" 2 (Metrics.cache_hits m);
        Alcotest.(check int) "misses" 1 (Metrics.cache_misses m));
    Alcotest.test_case "node gauges track peak" `Quick (fun () ->
        let m = Metrics.create () in
        let base = Metrics.register_nodes m [ "a"; "b" ] in
        Alcotest.(check int) "base of first batch" 0 base;
        let base2 = Metrics.register_nodes m [ "c" ] in
        Alcotest.(check int) "base of second batch" 2 base2;
        Metrics.set_aux_size m 0 5;
        Metrics.set_aux_size m 0 2;
        Metrics.add_pruned m 1 4;
        Metrics.add_survival m 2 ~checked:10 ~kept:7;
        match Metrics.nodes m with
        | [ a; b; c ] ->
          Alcotest.(check string) "name" "a" a.Metrics.name;
          Alcotest.(check int) "size is current" 2 a.Metrics.size;
          Alcotest.(check int) "peak retained" 5 a.Metrics.peak_size;
          Alcotest.(check int) "pruned" 4 b.Metrics.prune_dropped;
          Alcotest.(check int) "checked" 10 c.Metrics.surv_checked;
          Alcotest.(check int) "kept" 7 c.Metrics.surv_kept
        | l -> Alcotest.failf "expected 3 nodes, got %d" (List.length l));
    Alcotest.test_case "latency summary is exact on few samples" `Quick
      (fun () ->
        let m = Metrics.create () in
        Alcotest.(check bool) "none before recording" true
          (Metrics.latency m = None);
        List.iter (Metrics.record_latency m) [ 1e-6; 3e-6; 2e-6 ];
        match Metrics.latency m with
        | None -> Alcotest.fail "expected a summary"
        | Some l ->
          Alcotest.(check int) "count" 3 l.Metrics.count;
          Alcotest.(check (float 0.5)) "min" 1000.0 l.Metrics.min_ns;
          Alcotest.(check (float 0.5)) "max" 3000.0 l.Metrics.max_ns;
          Alcotest.(check (float 0.5)) "mean" 2000.0 l.Metrics.mean_ns;
          (* percentiles are bucket midpoints: 2000 ns falls in the
             32-sub-bucket octave bucket [1984, 2015] *)
          Alcotest.(check (float 0.01)) "p50 is its bucket's midpoint"
            1999.5 l.Metrics.p50_ns;
          Alcotest.(check (float 0.5)) "total is the exact sum" 6000.0
            l.Metrics.total_ns;
          (* rank ceil(0.99*3)=3, the 3000 ns sample: bucket [2944, 3007] *)
          Alcotest.(check (float 0.01)) "p99 lands on the top sample's bucket"
            2975.5 l.Metrics.p99_ns);
    Alcotest.test_case "negative latency clamps to zero" `Quick (fun () ->
        (* a clock stepping backwards mid-measurement (NTP, VM migration)
           used to feed a negative duration into the histogram and poison
           min/mean; the recorder clamps it to zero instead *)
        let m = Metrics.create () in
        Metrics.record_latency m (-5e-6);
        Metrics.record_latency m 2e-6;
        match Metrics.latency m with
        | None -> Alcotest.fail "expected a summary"
        | Some l ->
          Alcotest.(check int) "both samples counted" 2 l.Metrics.count;
          Alcotest.(check (float 0.01)) "clamped to zero, not negative" 0.0
            l.Metrics.min_ns;
          Alcotest.(check (float 0.5)) "mean over the clamped pair" 1000.0
            l.Metrics.mean_ns);
    Alcotest.test_case "histogram keeps bucket resolution at any volume"
      `Quick (fun () ->
        let m = Metrics.create () in
        for i = 1 to 5000 do
          Metrics.record_latency m (float_of_int i *. 1e-9)
        done;
        match Metrics.latency m with
        | None -> Alcotest.fail "expected a summary"
        | Some l ->
          Alcotest.(check int) "count" 5000 l.Metrics.count;
          Alcotest.(check (float 0.01)) "exact min" 1.0 l.Metrics.min_ns;
          Alcotest.(check (float 0.01)) "exact max" 5000.0 l.Metrics.max_ns;
          (* every sample is counted, so percentiles are deterministic:
             rank 2500 falls in bucket [2496, 2559], midpoint 2527.5 —
             within the scheme's ~3.1% of the true 2500 *)
          Alcotest.(check (float 0.01)) "p50 deterministic" 2527.5
            l.Metrics.p50_ns;
          Alcotest.(check bool) "p50 <= p95" true (l.Metrics.p50_ns <= l.Metrics.p95_ns);
          Alcotest.(check bool) "p95 <= p99" true (l.Metrics.p95_ns <= l.Metrics.p99_ns);
          Alcotest.(check bool) "in range" true
            (l.Metrics.p50_ns >= 1.0 && l.Metrics.p99_ns <= 5000.0);
          Alcotest.(check (float 0.01)) "total stays exact at any volume"
            12502500.0 l.Metrics.total_ns);
    Alcotest.test_case "latency buckets cover every sample" `Quick (fun () ->
        let m = Metrics.create () in
        let samples_ns = [ 1; 5; 31; 32; 1000; 1_000_000; 987_654_321 ] in
        List.iter
          (fun ns -> Metrics.record_latency m (float_of_int ns *. 1e-9))
          samples_ns;
        let buckets = Metrics.latency_buckets m in
        Alcotest.(check int) "bucket counts sum to the sample count"
          (List.length samples_ns)
          (List.fold_left (fun acc b -> acc + b.Metrics.n) 0 buckets);
        List.iter
          (fun (b : Metrics.bucket) ->
            Alcotest.(check bool) "bounds ordered" true (b.lo_ns <= b.hi_ns))
          buckets;
        let rec ascending = function
          | (a : Metrics.bucket) :: (b :: _ as rest) ->
            a.hi_ns < b.lo_ns && ascending rest
          | _ -> true
        in
        Alcotest.(check bool) "disjoint ascending" true (ascending buckets);
        List.iter
          (fun ns ->
            Alcotest.(check bool)
              (Printf.sprintf "%d ns has a covering bucket" ns)
              true
              (List.exists
                 (fun (b : Metrics.bucket) -> b.lo_ns <= ns && ns <= b.hi_ns)
                 buckets);
            (* bucket relative width stays under ~3.1% past the unit range *)
            List.iter
              (fun (b : Metrics.bucket) ->
                if b.lo_ns >= 32 then
                  Alcotest.(check bool) "narrow bucket" true
                    (float_of_int (b.hi_ns - b.lo_ns)
                     /. float_of_int b.lo_ns
                     <= 0.04))
              buckets)
          samples_ns);
    Alcotest.test_case "txn rates over caller-supplied clocks" `Quick
      (fun () ->
        let m = Metrics.create () in
        Alcotest.(check (float 1e-9)) "empty recorder reads zero" 0.0
          (Metrics.txn_rate m ~now:100.0 10);
        List.iter
          (fun now -> Metrics.record_txn m ~now)
          [ 100.0; 100.2; 100.4; 100.6; 100.8; 101.5 ];
        Alcotest.(check int) "txn count" 6 (Metrics.txn_count m);
        Alcotest.(check (float 1e-9)) "1s window sees the current second"
          1.0
          (Metrics.txn_rate m ~now:101.9 1);
        Alcotest.(check (float 1e-9)) "10s window averages all six" 0.6
          (Metrics.txn_rate m ~now:101.9 10);
        Alcotest.(check (float 1e-9)) "60s window still covers them" 0.1
          (Metrics.txn_rate m ~now:159.0 60);
        Alcotest.(check (float 1e-9)) "idle minute zeroes the 10s window"
          0.0
          (Metrics.txn_rate m ~now:200.0 10);
        (match Metrics.txn_rates m ~now:300.0 with
         | [ (1, _); (10, _); (60, _) ] -> ()
         | l -> Alcotest.failf "unexpected windows (%d)" (List.length l));
        Alcotest.(check bool) "window must be within the ring" true
          (match Metrics.txn_rate m ~now:300.0 61 with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "named gauges" `Quick (fun () ->
        let m = Metrics.create () in
        Alcotest.(check int) "unset gauge reads 0" 0 (Metrics.gauge m "aux");
        Metrics.set_gauge m "wal" 2;
        Metrics.set_gauge m "aux" 7;
        Metrics.set_gauge m "wal" 5;
        Alcotest.(check int) "last write wins" 5 (Metrics.gauge m "wal");
        Alcotest.(check (list (pair string int))) "sorted listing"
          [ ("aux", 7); ("wal", 5) ]
          (Metrics.gauges m)) ]

(* Drive an instrumented checker and read the gauges back. *)
let feed ?metrics d text =
  let h = generic_history text in
  let st = get_ok "create" (Incremental.create ?metrics cat d) in
  List.fold_left
    (fun st (time, db) -> fst (get_ok "step" (Incremental.step st ~time db)))
    st (History.snapshots h)

let kernel_cases =
  [ Alcotest.test_case "per-node gauges from a once window" `Quick (fun () ->
        let m = Metrics.create () in
        let d =
          { Formula.name = "c";
            body = parse_formula "forall x. q(x) -> once[0,2] p(x)" }
        in
        (* p-events at 0,1,2,3; window width 2, so by t=10 all are pruned *)
        let _ =
          feed ~metrics:m d
            "@0\n+p(1)\n@1\n+p(2)\n-p(1)\n@2\n+p(3)\n-p(2)\n@3\n-p(3)\n@10\n+q(9)\n"
        in
        Alcotest.(check int) "steps" 5 (Metrics.steps m);
        let once_node =
          List.find
            (fun n ->
              String.length n.Metrics.name >= 4
              && String.sub n.Metrics.name 0 2 = "c:")
            (Metrics.nodes m)
        in
        Alcotest.(check int) "window emptied" 0 once_node.Metrics.size;
        Alcotest.(check bool) "peak saw entries" true
          (once_node.Metrics.peak_size >= 2);
        Alcotest.(check bool) "pruning was counted" true
          (once_node.Metrics.prune_dropped >= 3));
    Alcotest.test_case "formula cache hits recorded on repeated subformulas"
      `Quick (fun () ->
        let m = Metrics.create () in
        let d =
          { Formula.name = "c";
            body =
              parse_formula
                "(exists x. once[0,5] p(x)) & (exists y. once[0,5] p(y))" }
        in
        let _ = feed ~metrics:m d "@0\n+p(1)\n@1\n+e()\n" in
        (* the two once-subformulas are structurally equal: the second lookup
           per step must hit the per-step memo table *)
        Alcotest.(check bool) "hits recorded" true (Metrics.cache_hits m > 0));
    Alcotest.test_case "since-survival filter counted" `Quick (fun () ->
        let m = Metrics.create () in
        let d =
          { Formula.name = "c";
            body = parse_formula "exists x. p(x) since[0,8] q(x)" }
        in
        let _ = feed ~metrics:m d "@0\n+q(1)\n@1\n+p(1)\n-q(1)\n@2\n+e()\n" in
        let since_node =
          List.find (fun n -> n.Metrics.surv_checked > 0) (Metrics.nodes m)
        in
        Alcotest.(check bool) "some entries survived" true
          (since_node.Metrics.surv_kept > 0);
        Alcotest.(check bool) "kept <= checked" true
          (since_node.Metrics.surv_kept <= since_node.Metrics.surv_checked));
    Alcotest.test_case "violations and latency recorded by the monitor" `Quick
      (fun () ->
        let sc = Scenarios.banking in
        let tr = sc.Scenarios.generate ~seed:11 ~steps:40 ~violation_rate:0.2 in
        let m = Metrics.create () in
        let mon =
          get_ok "create"
            (Monitor.create ~metrics:m sc.Scenarios.catalog
               sc.Scenarios.constraints)
        in
        let _, reports =
          List.fold_left
            (fun (mon, out) (time, txn) ->
              let mon, rs = get_ok "step" (Monitor.step mon ~time txn) in
              (mon, out @ rs))
            (mon, []) tr.Trace.steps
        in
        Alcotest.(check int) "violations agree" (List.length reports)
          (Metrics.violations m);
        (match Metrics.latency m with
         | None -> Alcotest.fail "latency expected"
         | Some l ->
           Alcotest.(check int) "one sample per txn" (Trace.length tr)
             l.Metrics.count;
           Alcotest.(check bool) "positive" true (l.Metrics.min_ns > 0.0))) ]

(* Instrumentation must be observationally inert: same verdicts with and
   without a recorder, for every engine that accepts one. *)
let parity_property =
  qtest ~count:60 "metrics on/off verdict parity"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, tseed) ->
      let f = Gen.random_formula ~seed:fseed ~depth:4 in
      let tr =
        Gen.random_trace ~seed:tseed { Gen.default_params with steps = 25 }
      in
      let h = get_ok "m" (Trace.materialize tr) in
      let run metrics =
        let d = { Formula.name = "c"; body = f } in
        let st = get_ok "create" (Incremental.create ?metrics cat d) in
        let _, rev =
          List.fold_left
            (fun (st, acc) (time, db) ->
              let st, v = get_ok "step" (Incremental.step st ~time db) in
              (st, v.Incremental.satisfied :: acc))
            (st, []) (History.snapshots h)
        in
        List.rev rev
      in
      run None = run (Some (Metrics.create ())))

let shared_parity =
  Alcotest.test_case "shared monitor with metrics agrees" `Quick (fun () ->
      let defs =
        List.init 3 (fun i ->
            get_ok "def"
              (Parser.def_of_string
                 (Printf.sprintf
                    "constraint c%d: forall x. q(x) & x >= %d -> once[0,40] \
                     p(x) ;"
                    i i)))
      in
      let tr = Gen.random_trace ~seed:4 { Gen.default_params with steps = 60 } in
      let plain = get_ok "plain" (Shared.run_trace defs tr) in
      let m = Metrics.create () in
      let instrumented =
        get_ok "instrumented" (Shared.run_trace ~metrics:m defs tr)
      in
      Alcotest.(check int) "same report count" (List.length plain)
        (List.length instrumented);
      Alcotest.(check int) "one latency sample per txn" (Trace.length tr)
        (match Metrics.latency m with Some l -> l.Metrics.count | None -> 0))

let json_cases =
  [ Alcotest.test_case "stats JSON is valid and complete" `Quick (fun () ->
        let sc = Scenarios.banking in
        let tr = sc.Scenarios.generate ~seed:3 ~steps:30 ~violation_rate:0.15 in
        let m = Metrics.create () in
        let mon =
          get_ok "create"
            (Monitor.create ~metrics:m sc.Scenarios.catalog
               sc.Scenarios.constraints)
        in
        let _, stats =
          List.fold_left
            (fun (mon, stats) (time, txn) ->
              let mon, rs = get_ok "step" (Monitor.step mon ~time txn) in
              (mon, Stats.observe stats ~time ~space:(Monitor.space mon) ~reports:rs))
            (mon, Stats.empty) tr.Trace.steps
        in
        let text = Json.to_string ~indent:true (Stats.to_json ~metrics:m stats) in
        let doc = get_ok "parse emitted JSON" (Json.of_string text) in
        let str_field k =
          Option.bind (Json.member k doc) Json.to_str
        in
        let int_field k =
          Option.bind (Json.member k doc) Json.to_int
        in
        Alcotest.(check (option string)) "schema" (Some "rtic-stats/1")
          (str_field "schema");
        Alcotest.(check (option int)) "transactions" (Some (Trace.length tr))
          (int_field "transactions");
        Alcotest.(check (option int)) "violations"
          (Some (Stats.violations stats))
          (int_field "violations");
        let kernel = Json.member "kernel" doc in
        Alcotest.(check bool) "kernel section present" true (kernel <> None);
        let kernel = Option.get kernel in
        Alcotest.(check (option int)) "kernel steps"
          (Some (Metrics.steps m))
          (Option.bind (Json.member "steps" kernel) Json.to_int);
        let nodes =
          Option.bind (Json.member "nodes" kernel) Json.to_list
          |> Option.value ~default:[]
        in
        Alcotest.(check int) "one row per registered node"
          (List.length (Metrics.nodes m))
          (List.length nodes);
        Alcotest.(check bool) "latency object present" true
          (match Json.member "latency_ns" kernel with
           | Some (Json.Obj _) -> true
           | _ -> false));
    Alcotest.test_case "stats JSON without metrics has no kernel key" `Quick
      (fun () ->
        let doc = Stats.to_json Stats.empty in
        Alcotest.(check bool) "no kernel" true (Json.member "kernel" doc = None);
        (* still a valid document *)
        ignore
          (get_ok "parse" (Json.of_string (Json.to_string doc)))) ]

let suite =
  [ ("metrics:recorder", recorder_cases);
    ("metrics:kernel", kernel_cases);
    ("metrics:parity", [ parity_property; shared_parity ]);
    ("metrics:json", json_cases) ]
