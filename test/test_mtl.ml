(* Unit tests for the constraint language: AST utilities, parser,
   pretty-printer, rewriting, type checking, safety and closure. *)

open Helpers
module F = Formula

let formula_cases =
  [ Alcotest.test_case "free variables" `Quick (fun () ->
        let f = parse_formula "forall x. p(x) -> (exists y. r(x, y)) & q(z)" in
        Alcotest.(check (list string)) "fv" [ "z" ] (F.free_var_list f));
    Alcotest.test_case "subst respects binders" `Quick (fun () ->
        let f = parse_formula "p(x) & (exists x. q(x))" in
        let g = F.subst [ ("x", Value.Int 7) ] f in
        Alcotest.(check string) "substituted" "p(7) & (exists x. q(x))"
          (Pretty.to_string g));
    Alcotest.test_case "sizes and depths" `Quick (fun () ->
        let f = parse_formula "once[0,3] (p(x) since prev q(x))" in
        Alcotest.(check int) "temporal_count" 3 (F.temporal_count f);
        Alcotest.(check int) "temporal_depth" 3 (F.temporal_depth f));
    Alcotest.test_case "time_reach" `Quick (fun () ->
        let reach s = F.time_reach (parse_formula s) in
        Alcotest.(check (option int)) "fo" (Some 0) (reach "p(x)");
        Alcotest.(check (option int)) "once bounded" (Some 7)
          (reach "once[2,7] p(x)");
        Alcotest.(check (option int)) "nested" (Some 12)
          (reach "once[0,7] prev[0,5] p(x)");
        Alcotest.(check (option int)) "unbounded" None (reach "once p(x)");
        Alcotest.(check (option int)) "since takes max" (Some 9)
          (reach "(once[0,4] p(x)) since[0,5] q(x)"));
    Alcotest.test_case "map_intervals" `Quick (fun () ->
        let f = parse_formula "once[0,3] p(x)" in
        let g = F.map_intervals (fun _ -> Interval.bounded 0 9) f in
        Alcotest.(check (option int)) "widened" (Some 9) (F.time_reach g)) ]

let parser_cases =
  [ Alcotest.test_case "precedence" `Quick (fun () ->
        let cases =
          [ ("p(x) & q(x) | p(x)", "p(x) & q(x) | p(x)");
            ("not p(x) & q(x)", "not p(x) & q(x)");
            ("p(x) -> q(x) -> p(x)", "p(x) -> q(x) -> p(x)");
            ("once p(x) since q(x)", "once p(x) since q(x)");
            ("(p(x) | q(x)) & q(x)", "(p(x) | q(x)) & q(x)") ]
        in
        List.iter
          (fun (src, want) ->
            Alcotest.(check string) src want (Pretty.to_string (parse_formula src)))
          cases);
    Alcotest.test_case "since is left-assoc, arg levels" `Quick (fun () ->
        let f = parse_formula "e() since e() since e()" in
        (match f with
         | F.Since (_, F.Since _, F.Atom _) -> ()
         | _ -> Alcotest.fail "wrong associativity"));
    Alcotest.test_case "intervals" `Quick (fun () ->
        (match parse_formula "once[2,7] e()" with
         | F.Once (i, _) ->
           Alcotest.(check int) "lo" 2 (Interval.lo i);
           Alcotest.(check (option int)) "hi" (Some 7) (Interval.hi i)
         | _ -> Alcotest.fail "not a Once");
        (match parse_formula "e() since[3,inf] e()" with
         | F.Since (i, _, _) ->
           Alcotest.(check (option int)) "inf" None (Interval.hi i)
         | _ -> Alcotest.fail "not a Since"));
    Alcotest.test_case "errors are located" `Quick (fun () ->
        let m = get_error "parse" (Parser.formula_of_string "p(x) &") in
        Alcotest.(check bool) "mentions line" true
          (String.length m > 0 && String.sub m 0 4 = "line");
        List.iter
          (fun src ->
            ignore (get_error src (Parser.formula_of_string src)))
          [ "once[5,2] e()"; "once[-1,2] e()"; "p(x"; "p(x))"; "forall . p(x)";
            "p(x) q(x)"; "" ]);
    Alcotest.test_case "boolean constants vs comparisons" `Quick (fun () ->
        (match parse_formula "true" with
         | F.True -> ()
         | _ -> Alcotest.fail "expected True");
        (match parse_formula "x = true" with
         | F.Cmp (F.Eq, F.Var "x", F.Const (Value.Bool true)) -> ()
         | _ -> Alcotest.fail "expected comparison with bool literal"));
    Alcotest.test_case "spec files" `Quick (fun () ->
        let spec =
          get_ok "spec"
            (Parser.spec_of_string
               "schema p(a:int)\n\
                schema q(a:int)\n\
                constraint c1: forall x. p(x) -> q(x) ;\n\
                constraint c2: not (exists x. (p(x) & q(x))) ;")
        in
        Alcotest.(check int) "two constraints" 2 (List.length spec.Parser.defs);
        Alcotest.(check bool) "catalog has p" true
          (Schema.Catalog.mem "p" spec.Parser.catalog));
    Alcotest.test_case "duplicate constraint names rejected" `Quick (fun () ->
        ignore
          (get_error "dup"
             (Parser.spec_of_string
                "schema p(a:int)\n\
                 constraint c: exists x. p(x) ;\n\
                 constraint c: exists x. p(x) ;"))) ]

let roundtrip_property =
  qtest ~count:400 "parse (pretty f) = f"
    QCheck.(pair small_nat (int_bound 4))
    (fun (seed, depth) ->
      let f = Gen.random_formula ~seed ~depth in
      match Parser.formula_of_string (Pretty.to_string f) with
      | Ok f' -> F.equal f f'
      | Error m ->
        QCheck.Test.fail_reportf "did not re-parse: %s\n%s" (Pretty.to_string f) m)

let rewrite_cases =
  [ Alcotest.test_case "normalize eliminates sugar" `Quick (fun () ->
        List.iter
          (fun src ->
            let f = Rewrite.normalize (parse_formula src) in
            Alcotest.(check bool) (src ^ " is core") true (Rewrite.is_core f))
          [ "forall x. p(x) -> q(x)";
            "historically[0,3] e()";
            "p(x) <-> q(x)";
            "forall x. historically (p(x) -> once q(x))" ]);
    Alcotest.test_case "double negation cancels" `Quick (fun () ->
        let f = Rewrite.normalize (parse_formula "not not e()") in
        Alcotest.(check string) "plain" "e()" (Pretty.to_string f));
    Alcotest.test_case "negated comparisons flip" `Quick (fun () ->
        let f = Rewrite.normalize (parse_formula "not (x >= y)") in
        Alcotest.(check string) "flipped" "x < y" (Pretty.to_string f));
    Alcotest.test_case "guarded historically is monitorable" `Quick (fun () ->
        let f =
          Rewrite.normalize (parse_formula "p(x) & historically[0,5] (not q(x))")
        in
        Alcotest.(check string) "anti-join shape" "p(x) & not once[0,5] q(x)"
          (Pretty.to_string f));
    Alcotest.test_case "simplify constant folds" `Quick (fun () ->
        List.iter
          (fun (src, want) ->
            Alcotest.(check string) src want
              (Pretty.to_string (Rewrite.simplify (parse_formula src))))
          [ ("e() & true", "e()");
            ("e() & false", "false");
            ("e() | true", "true");
            ("once[0,3] false", "false");
            ("not not e()", "e()");
            ("prev (e() & false)", "false") ]) ]

let simplify_preserves =
  qtest ~count:100 "simplify preserves semantics"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, tseed) ->
      let f = Gen.random_formula ~seed:fseed ~depth:4 in
      let g = Rewrite.simplify (Rewrite.normalize f) in
      let tr = Gen.random_trace ~seed:tseed { Gen.default_params with steps = 25 } in
      let h = get_ok "materialize" (Trace.materialize tr) in
      (* simplify may fold to True/False which are trivially safe; evaluate
         both and compare verdict vectors. *)
      naive_vector h f = naive_vector h g)

let nnf_preserves =
  qtest ~count:100 "nnf preserves semantics"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, tseed) ->
      let f = Rewrite.normalize (Gen.random_formula ~seed:fseed ~depth:3) in
      let g = Rewrite.nnf_nontemporal f in
      let tr = Gen.random_trace ~seed:tseed { Gen.default_params with steps = 20 } in
      let h = get_ok "materialize" (Trace.materialize tr) in
      (* NNF can push negation into shapes that are no longer monitorable
         (e.g. lone negated atoms under Or); skip those instances. *)
      match Safety.check g with
      | Error _ -> QCheck.assume_fail ()
      | Ok () -> naive_vector h f = naive_vector h g)

let typecheck_cases =
  let cat = Scenarios.banking.Scenarios.catalog in
  let check_ok src =
    ignore (get_ok src (Typecheck.check cat (parse_formula src)))
  in
  let check_err src =
    ignore (get_error src (Typecheck.check cat (parse_formula src)))
  in
  [ Alcotest.test_case "accepts well-typed" `Quick (fun () ->
        check_ok "forall e, s. salary(e, s) -> s >= 0";
        check_ok "salary(\"amy\", 100)";
        check_ok "forall a, m. withdraw(a, m) -> account(a)");
    Alcotest.test_case "rejects ill-typed" `Quick (fun () ->
        check_err "salary(1, 2)";
        check_err "forall e, s. salary(e, s) -> salary(s, e)";
        check_err "salary(\"amy\")";
        check_err "zzz(1)";
        check_err "forall e, s. salary(e, s) & e > 2 -> true");
    Alcotest.test_case "infers variable types" `Quick (fun () ->
        let env =
          get_ok "env"
            (Typecheck.check cat (parse_formula "exists e, s. salary(e, s)"))
        in
        Alcotest.(check (option string)) "e is str" (Some "str")
          (Option.map Value.ty_name (List.assoc_opt "e" env));
        Alcotest.(check (option string)) "s is int" (Some "int")
          (Option.map Value.ty_name (List.assoc_opt "s" env)));
    Alcotest.test_case "comparison needs grounded type" `Quick (fun () ->
        ignore (get_error "ungrounded" (Typecheck.check cat (parse_formula "x < y"))));
    Alcotest.test_case "defs must be closed" `Quick (fun () ->
        ignore
          (get_error "open def"
             (Typecheck.check_def cat
                { F.name = "c"; body = parse_formula "salary(e, s)" }))) ]

let safety_cases =
  let ok src = ignore (get_ok src (Safety.check (parse_formula src))) in
  let err src = ignore (get_error src (Safety.check (parse_formula src))) in
  [ Alcotest.test_case "accepts the monitorable fragment" `Quick (fun () ->
        ok "forall x. p(x) -> q(x)";
        ok "forall x, y. r(x, y) & x < y -> once[0,3] p(x)";
        ok "not (exists x. (p(x) & not q(x)))";
        ok "forall x. p(x) -> not (x >= 1 & x <= 2)";
        ok "exists x. ((not q(x)) since p(x))";
        ok "forall x. p(x) -> historically[0,9] (not q(x))";
        ok "x = 3 & p(x)";
        ok "forall x. p(x) & prev once p(x) -> true";
        ok "e() since e()");
    Alcotest.test_case "rejects the unsafe" `Quick (fun () ->
        err "not p(x)";
        err "x < y";
        err "p(x) | q(y)";
        err "exists y. p(x)";
        err "forall x. p(x)";
        err "r(x, y) since q(y)";
        err "p(x) & (q(x) | x < 2)");
    Alcotest.test_case "subtle but safe" `Quick (fun () ->
        (* the left argument of since may have fewer variables ... *)
        ok "exists x, y. (q(y) since r(x, y))";
        (* ... and a disjunction with an equality constraint is finite *)
        ok "exists x. (p(x) & (q(x) | x = 2))") ]

let closure_cases =
  [ Alcotest.test_case "shared subformulas get one id" `Quick (fun () ->
        let f =
          Rewrite.normalize
            (parse_formula "(once[0,3] e()) & (once[0,3] e() | prev e())")
        in
        let c = Closure.build f in
        Alcotest.(check int) "two distinct nodes" 2 (Closure.count c));
    Alcotest.test_case "bottom-up order" `Quick (fun () ->
        let f = Rewrite.normalize (parse_formula "once prev e()") in
        let c = Closure.build f in
        Alcotest.(check int) "count" 2 (Closure.count c);
        (match (Closure.nodes c).(0) with
         | F.Prev _ -> ()
         | _ -> Alcotest.fail "child should come first"));
    Alcotest.test_case "rejects non-core" `Quick (fun () ->
        try
          ignore (Closure.build (parse_formula "historically e()"));
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ()) ]

let bounds_cases =
  [ Alcotest.test_case "node windows" `Quick (fun () ->
        Alcotest.(check (option int)) "bounded" (Some 9)
          (Bounds.node_window (parse_formula "once[2,9] e()"));
        Alcotest.(check (option int)) "unbounded" None
          (Bounds.node_window (parse_formula "e() since[3,inf] e()"));
        Alcotest.(check int) "per-valuation bounded" 10
          (Bounds.max_stored_timestamps_per_valuation (parse_formula "once[2,9] e()"));
        Alcotest.(check int) "per-valuation unbounded" 1
          (Bounds.max_stored_timestamps_per_valuation (parse_formula "once e()"))) ]

let suite =
  [ ("mtl:formula", formula_cases);
    ("mtl:parser", parser_cases);
    ("mtl:roundtrip", [ roundtrip_property ]);
    ("mtl:rewrite", rewrite_cases);
    ("mtl:rewrite-prop", [ simplify_preserves; nnf_preserves ]);
    ("mtl:typecheck", typecheck_cases);
    ("mtl:safety", safety_cases);
    ("mtl:closure", closure_cases);
    ("mtl:bounds", bounds_cases) ]
