(* The rtic-serve/1 protocol engine: reply shapes are pinned, admission
   control refuses (never drops) excess requests, and a served session is
   observationally identical to the batch monitor — same reports, same
   rtic-stats/1 document (modulo wall-clock latency and the supervisor's
   extra counters) — sequentially, under a pool, and across a
   kill-and-recover. *)

open Helpers
module Server = Rtic_core.Server
module Faults = Rtic_core.Faults
module Metrics = Rtic_core.Metrics
module Stats = Rtic_core.Stats
module Pool = Rtic_core.Pool
module Json = Rtic_core.Json

let json_testable =
  Alcotest.testable
    (fun ppf j -> Format.pp_print_string ppf (Json.to_string j))
    ( = )

let with_pool n f =
  let p = Pool.create n in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let op_line = function
  | Update.Insert (rel, t) -> "+" ^ Textio.fact_to_string rel t
  | Update.Delete (rel, t) -> "-" ^ Textio.fact_to_string rel t

let txn_lines session (time, txn) =
  Printf.sprintf "txn %s %d %d" session time (List.length txn)
  :: List.map op_line txn

(* A scenario's spec file, as drive.exe writes it for the server. *)
let spec_text (sc : Scenarios.t) =
  String.concat "\n"
    (List.map Textio.schema_to_string (Schema.Catalog.schemas sc.catalog)
     @ List.map Pretty.def_to_string sc.constraints)
  ^ "\n"

let server_with_spec ?pool ?config text =
  let fs = Faults.mem_fs () in
  (match fs.Faults.write_file "spec" text with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (fs, Server.create ~fs ?pool ?config ())

let one what = function
  | [ r ] -> r
  | rs -> Alcotest.failf "%s: expected 1 reply, got %d" what (List.length rs)

let ok_doc what reply =
  match Json.of_string reply with
  | Error m -> Alcotest.failf "%s: reply is not JSON (%s): %s" what m reply
  | Ok doc ->
    (match Json.member "ok" doc with
     | Some (Json.Bool true) -> doc
     | _ -> Alcotest.failf "%s: expected an ok reply: %s" what reply)

let error_code what reply =
  match Json.of_string reply with
  | Error m -> Alcotest.failf "%s: reply is not JSON (%s): %s" what m reply
  | Ok doc ->
    (match Json.member "ok" doc, Json.member "error" doc with
     | Some (Json.Bool false), Some (Json.Str code) -> code
     | _ -> Alcotest.failf "%s: expected an error reply: %s" what reply)

let show_report r =
  Printf.sprintf "%s@%d/%d" r.Monitor.constraint_name r.Monitor.position
    r.Monitor.time

let report_of_json what = function
  | Json.Obj _ as j ->
    (match
       ( Json.member "constraint" j,
         Json.member "position" j,
         Json.member "time" j )
     with
     | Some (Json.Str c), Some (Json.Int p), Some (Json.Int t) ->
       Printf.sprintf "%s@%d/%d" c p t
     | _ -> Alcotest.failf "%s: malformed report object" what)
  | _ -> Alcotest.failf "%s: report is not an object" what

(* A checked txn reply's reports, as show_report strings. *)
let checked_reports what reply =
  let doc = ok_doc what reply in
  (match Json.member "outcome" doc with
   | Some (Json.Str "checked") -> ()
   | _ -> Alcotest.failf "%s: expected a checked outcome: %s" what reply);
  (match Json.member "inconclusive" doc with
   | Some (Json.List []) -> ()
   | _ -> Alcotest.failf "%s: unexpected inconclusive set: %s" what reply);
  match Json.member "reports" doc with
  | Some (Json.List rs) -> List.map (report_of_json what) rs
  | _ -> Alcotest.failf "%s: missing reports: %s" what reply

(* Drop the two stats fields a supervised session legitimately differs on:
   wall-clock latency, and the supervisor's own named counters. *)
let rec scrub = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "latency_ns" || k = "counters" then None
           else Some (k, scrub v))
         fields)
  | Json.List items -> Json.List (List.map scrub items)
  | j -> j

let tiny_spec =
  "schema p(a:int)\n\
   schema q(a:int)\n\
   constraint a: forall x. q(x) -> once[0,5] p(x) ;\n"

(* ---------------- batched txn requests ---------------- *)

(* One outcome object per transaction, in request order. *)
let outcomes_of what reply =
  let doc = ok_doc what reply in
  match Json.member "outcomes" doc with
  | Some (Json.List outs) -> outs
  | _ -> Alcotest.failf "%s: missing outcomes: %s" what reply

let outcome_str what j =
  match Json.member "outcome" j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "%s: element lacks an outcome" what

let batch_cases =
  [ Alcotest.test_case "batched txn: one outcome per transaction, in order"
      `Quick (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let replies =
          Server.handle_lines srv
            [ "open s spec"; "txn s 1 1 2 1 3 0"; "+p(1)"; "+q(7)" ]
        in
        match replies with
        | [ _; batched ] ->
          (match outcomes_of "batch" batched with
           | [ o1; o2; o3 ] ->
             List.iter
               (fun (o, t) ->
                 Alcotest.(check string) "checked" "checked"
                   (outcome_str "batch" o);
                 Alcotest.(check (option json_testable)) "time"
                   (Some (Json.Int t)) (Json.member "time" o))
               [ (o1, 1); (o2, 2); (o3, 3) ];
             (match Json.member "reports" o2 with
              | Some (Json.List [ r ]) ->
                Alcotest.(check string) "the q(7) violation" "a@1/2"
                  (report_of_json "batch" r)
              | _ -> Alcotest.fail "second outcome should carry one report");
             (match Json.member "reports" o1 with
              | Some (Json.List []) -> ()
              | _ -> Alcotest.fail "first outcome should carry no reports");
             (* q(7) persists in the database, so the zero-op step at
                time 3 re-reports the standing violation *)
             (match Json.member "reports" o3 with
              | Some (Json.List [ r ]) ->
                Alcotest.(check string) "still standing" "a@2/3"
                  (report_of_json "batch" r)
              | _ -> Alcotest.fail "third outcome should re-report")
           | outs -> Alcotest.failf "expected 3 outcomes, got %d" (List.length outs))
        | _ -> Alcotest.failf "expected 2 replies, got %d" (List.length replies));
    Alcotest.test_case "batched txn under group commit flushes per request"
      `Quick (fun () ->
        (* group-commit 64 never fills on its own: the request-end flush
           must release every ack before the reply goes out *)
        let _, srv = server_with_spec tiny_spec in
        let replies =
          Server.handle_lines srv
            [ "open s spec group-commit=64";
              "txn s 1 1 2 1 3 1";
              "+p(1)"; "+p(2)"; "+p(3)";
              "txn s 4 1"; "+p(4)";
              "stats s" ]
        in
        match replies with
        | [ _; batched; single; stats ] ->
          Alcotest.(check int) "all three acks in the reply" 3
            (List.length (outcomes_of "batch" batched));
          Alcotest.(check (list string)) "classic single reply after" []
            (checked_reports "single" single);
          (match Json.member "stats" (ok_doc "stats" stats) with
           | Some st ->
             Alcotest.(check (option json_testable)) "four transactions"
               (Some (Json.Int 4)) (Json.member "transactions" st)
           | None -> Alcotest.fail "stats reply lacks a stats field")
        | _ -> Alcotest.failf "expected 4 replies, got %d" (List.length replies));
    Alcotest.test_case "malformed op in a batch is one invalid slot" `Quick
      (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let replies =
          Server.handle_lines srv
            [ "open s spec";
              "txn s 1 1 2 1";
              "+p(1)";
              "this is not an op";
              (* stream must still be on request-line footing *)
              "txn s 3 1"; "+p(2)";
              "stats s" ]
        in
        match replies with
        | [ _; batched; good; stats ] ->
          (match outcomes_of "batch" batched with
           | [ o1; o2 ] ->
             Alcotest.(check string) "first checked" "checked"
               (outcome_str "batch" o1);
             Alcotest.(check string) "second invalid" "invalid"
               (outcome_str "batch" o2)
           | outs -> Alcotest.failf "expected 2 outcomes, got %d" (List.length outs));
          Alcotest.(check (list string)) "next request fine" []
            (checked_reports "good" good);
          (match Json.member "stats" (ok_doc "stats" stats) with
           | Some st ->
             (* the invalid transaction was never stepped *)
             Alcotest.(check (option json_testable)) "two transactions"
               (Some (Json.Int 2)) (Json.member "transactions" st)
           | None -> Alcotest.fail "stats reply lacks a stats field")
        | _ -> Alcotest.failf "expected 4 replies, got %d" (List.length replies));
    Alcotest.test_case "halt mid-batch marks the rest halted" `Quick (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let replies =
          Server.handle_lines srv
            [ "open s spec";
              (* non-increasing time under the default halt policy *)
              "txn s 5 1 5 1 6 1";
              "+p(1)"; "+p(2)"; "+p(3)";
              "stats s" ]
        in
        match replies with
        | [ _; batched; stats ] ->
          (match outcomes_of "batch" batched with
           | [ o1; o2; o3 ] ->
             Alcotest.(check string) "first checked" "checked"
               (outcome_str "batch" o1);
             Alcotest.(check string) "regression halts" "halted"
               (outcome_str "batch" o2);
             Alcotest.(check string) "rest never stepped" "halted"
               (outcome_str "batch" o3)
           | outs -> Alcotest.failf "expected 3 outcomes, got %d" (List.length outs));
          (* the halted session is gone, as on a single-txn halt *)
          Alcotest.(check string) "session dropped" "unknown-session"
            (error_code "stats" stats)
        | _ -> Alcotest.failf "expected 3 replies, got %d" (List.length replies));
    Alcotest.test_case "odd txn header tail is a bad request" `Quick (fun () ->
        let _, srv = server_with_spec tiny_spec in
        ignore (one "open" (Server.handle_lines srv [ "open s spec" ]));
        Alcotest.(check string) "odd pairs" "bad-request"
          (error_code "odd"
             (one "odd" (Server.handle_lines srv [ "txn s 1 1 2" ])));
        (* the engine is still in sync afterwards *)
        let replies = Server.handle_lines srv [ "txn s 1 1"; "+p(1)" ] in
        Alcotest.(check (list string)) "still serving" []
          (checked_reports "after" (one "after" replies))) ]

(* ---------------- protocol: pinned replies and error codes ---------------- *)

let protocol_cases =
  [ Alcotest.test_case "happy path replies are pinned" `Quick (fun () ->
        let _, srv = server_with_spec tiny_spec in
        Alcotest.(check (list string))
          "replies"
          [ {|{"ok":true,"req":"open","session":"s","constraints":1,"recovered":false,"replayed":0,"steps":0}|};
            {|{"ok":true,"req":"txn","session":"s","time":1,"outcome":"checked","reports":[],"inconclusive":[]}|};
            {|{"ok":true,"req":"txn","session":"s","time":2,"outcome":"checked","reports":[],"inconclusive":[]}|};
            {|{"ok":true,"req":"close","session":"s","steps":2}|};
            {|{"ok":true,"req":"shutdown","sessions_closed":0}|} ]
          (Server.handle_lines srv
             [ "open s spec";
               "# comments and blank lines are ignored";
               "";
               "txn s 1 1";
               "+p(1)";
               "txn s 2 1";
               "  +q(1)  ";
               "close s";
               "shutdown" ]);
        Alcotest.(check bool) "stopped" true (Server.stopped srv));
    Alcotest.test_case "violations come back in the txn reply" `Quick
      (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let replies =
          Server.handle_lines srv [ "open s spec"; "txn s 1 1"; "+q(7)" ]
        in
        match replies with
        | [ _; txn ] ->
          (match checked_reports "txn" txn with
           | [ r ] ->
             Alcotest.(check bool)
               (r ^ " names constraint a") true
               (String.length r > 2 && String.sub r 0 2 = "a@")
           | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs))
        | _ -> Alcotest.fail "expected 2 replies");
    Alcotest.test_case "zero-op txn needs no body" `Quick (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let replies =
          Server.handle_lines srv [ "open s spec"; "txn s 4 0"; "stats s" ]
        in
        (match replies with
         | [ _; txn; stats ] ->
           Alcotest.(check (list string)) "no reports" []
             (checked_reports "txn" txn);
           (match Json.member "stats" (ok_doc "stats" stats) with
            | Some st ->
              Alcotest.(check (option json_testable)) "one transaction"
                (Some (Json.Int 1)) (Json.member "transactions" st)
            | None -> Alcotest.fail "stats reply lacks a stats field")
         | _ -> Alcotest.fail "expected 3 replies"));
    Alcotest.test_case "request errors carry the right codes" `Quick
      (fun () ->
        let check_code input code =
          let _, srv = server_with_spec tiny_spec in
          ignore (one "open" (Server.handle_lines srv [ "open s spec" ]));
          Alcotest.(check string) input code
            (error_code input (one input (Server.handle_lines srv [ input ])))
        in
        check_code "bogus stuff" "bad-request";
        check_code "txn s nan 0" "bad-request";
        check_code "txn s 1 -1" "bad-request";
        check_code "txn" "bad-request";
        check_code "open s% spec" "bad-request";
        check_code "open s2 spec wat=1" "bad-request";
        check_code "open s2 spec auto-checkpoint=-3" "bad-request";
        check_code "open s spec" "session-exists";
        check_code "open s2 nosuchfile" "io-error";
        check_code "stats nosuch" "unknown-session";
        check_code "checkpoint nosuch" "unknown-session";
        check_code "close nosuch" "unknown-session");
    Alcotest.test_case "future-operator specs are refused" `Quick (fun () ->
        let _, srv =
          server_with_spec
            "schema p(a:int)\n\
             constraint f: forall x. p(x) -> eventually[0,3] p(x) ;\n"
        in
        Alcotest.(check string) "bad-spec" "bad-spec"
          (error_code "open"
             (one "open" (Server.handle_lines srv [ "open s spec" ]))));
    Alcotest.test_case "malformed op line errors but keeps the stream in sync"
      `Quick (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let replies =
          Server.handle_lines srv
            [ "open s spec";
              "txn s 1 2";
              "+p(1)";
              "this is not an op";
              (* the server must still be on request-line footing here *)
              "txn s 2 1";
              "+p(2)";
              "stats s" ]
        in
        match replies with
        | [ _; bad; good; stats ] ->
          Alcotest.(check string) "bad txn" "bad-request"
            (error_code "bad txn" bad);
          Alcotest.(check (list string)) "good txn" []
            (checked_reports "good txn" good);
          (match Json.member "stats" (ok_doc "stats" stats) with
           | Some st ->
             (* the malformed txn was never stepped *)
             Alcotest.(check (option json_testable)) "one transaction"
               (Some (Json.Int 1)) (Json.member "transactions" st)
           | None -> Alcotest.fail "stats reply lacks a stats field")
        | _ -> Alcotest.failf "expected 4 replies, got %d" (List.length replies));
    Alcotest.test_case "overload refuses in order, never drops" `Quick
      (fun () ->
        let _, srv =
          server_with_spec ~config:{ Server.max_pending = 2; telemetry = true } tiny_spec
        in
        List.iter (Server.feed_line srv)
          [ "stats a"; "stats b"; "stats c"; "stats d" ];
        Alcotest.(check int) "pending" 2 (Server.pending srv);
        Alcotest.(check (list string))
          "codes"
          [ "unknown-session"; "unknown-session"; "overloaded"; "overloaded" ]
          (List.map (error_code "overload") (Server.drain srv));
        (* the queue drained: the next batch is admitted again *)
        Alcotest.(check string) "admitted after drain" "unknown-session"
          (error_code "after"
             (one "after" (Server.handle_lines srv [ "stats e" ]))));
    Alcotest.test_case "shutdown closes sessions and refuses the rest" `Quick
      (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let replies =
          Server.handle_lines srv [ "open s spec"; "shutdown"; "stats s" ]
        in
        (match replies with
         | [ _; sd; late ] ->
           Alcotest.(check string) "shutdown reply"
             {|{"ok":true,"req":"shutdown","sessions_closed":1}|} sd;
           Alcotest.(check string) "late request" "shutting-down"
             (error_code "late" late)
         | _ -> Alcotest.fail "expected 3 replies");
        Alcotest.(check bool) "stopped" true (Server.stopped srv);
        Alcotest.(check int) "sessions" 0 (Server.session_count srv);
        (* lines fed after the stop are refused too *)
        Alcotest.(check string) "fed after stop" "shutting-down"
          (error_code "fed after stop"
             (one "fed after stop" (Server.handle_lines srv [ "stats s" ])))) ]

(* ---------------- serve = batch ---------------- *)

(* Run a whole generated workload through an in-process server; returns the
   concatenated violation reports and the scrubbed rtic-stats/1 document. *)
let serve_run ?pool (sc : Scenarios.t) tr =
  let _, srv = server_with_spec ?pool (spec_text sc) in
  ignore (ok_doc "open" (one "open" (Server.handle_lines srv [ "open s spec" ])));
  let reports =
    List.concat_map
      (fun step ->
        checked_reports "txn"
          (one "txn" (Server.handle_lines srv (txn_lines "s" step))))
      tr.Trace.steps
  in
  let stats_doc = ok_doc "stats" (one "stats" (Server.handle_lines srv [ "stats s" ])) in
  match Json.member "stats" stats_doc with
  | Some st -> (reports, Json.to_string (scrub st))
  | None -> Alcotest.fail "stats reply lacks a stats field"

(* The batch reference: a plain Monitor fold over the same transactions
   from the same (empty) initial state, aggregating the same Stats. *)
let batch_run (sc : Scenarios.t) tr =
  let metrics = Metrics.create () in
  let m =
    get_ok "create"
      (Monitor.create_with ~metrics (Database.create sc.catalog)
         sc.constraints)
  in
  let stats = ref Stats.empty in
  let reports_rev = ref [] in
  ignore
    (List.fold_left
       (fun m (time, txn) ->
         let m, reports = get_ok "step" (Monitor.step m ~time txn) in
         stats :=
           Stats.observe !stats ~time ~space:(Monitor.space m) ~reports;
         reports_rev := List.rev_map show_report reports @ !reports_rev;
         m)
       m tr.Trace.steps);
  ( List.rev !reports_rev,
    Json.to_string (scrub (Stats.to_json ~metrics !stats)) )

let equivalence_cases =
  [ Alcotest.test_case "serve = batch (reports + stats), jobs 1/2/4" `Quick
      (fun () ->
        List.iter
          (fun (sc : Scenarios.t) ->
            let tr = sc.generate ~seed:13 ~steps:60 ~violation_rate:0.15 in
            let batch = batch_run sc tr in
            Alcotest.(check (pair (list string) string))
              (sc.name ^ " sequential") batch (serve_run sc tr);
            List.iter
              (fun jobs ->
                with_pool jobs (fun pool ->
                    Alcotest.(check (pair (list string) string))
                      (Printf.sprintf "%s jobs %d" sc.name jobs)
                      batch
                      (serve_run ~pool sc tr)))
              [ 2; 4 ])
          [ Scenarios.banking; Scenarios.monitoring ]) ]

let equivalence_property =
  qtest ~count:15 "serve = batch on random workloads"
    QCheck.(pair small_nat (int_bound (List.length Scenarios.all - 1)))
    (fun (seed, i) ->
      let sc = List.nth Scenarios.all i in
      let tr = sc.Scenarios.generate ~seed ~steps:25 ~violation_rate:0.2 in
      batch_run sc tr = serve_run sc tr)

(* ---------------- kill-and-recover ---------------- *)

let recovery_cases =
  [ Alcotest.test_case "kill-and-recover: replay answers, reports agree"
      `Quick (fun () ->
        let sc = Scenarios.banking in
        let tr = sc.Scenarios.generate ~seed:21 ~steps:60 ~violation_rate:0.15 in
        let batch_reports, _ = batch_run sc tr in
        let run pool =
          let fs = Faults.mem_fs () in
          (match fs.Faults.write_file "spec" (spec_text sc) with
           | Ok () -> ()
           | Error m -> Alcotest.fail m);
          let open_line = "open s spec state-dir=sd auto-checkpoint=7" in
          let steps = tr.Trace.steps in
          let half = List.length steps / 2 in
          let first = List.filteri (fun i _ -> i < half) steps in
          let srv1 = Server.create ~fs ?pool () in
          let open1 =
            ok_doc "open1" (one "open1" (Server.handle_lines srv1 [ open_line ]))
          in
          Alcotest.(check (option json_testable)) "fresh open"
            (Some (Json.Bool false)) (Json.member "recovered" open1);
          let head_reports =
            List.concat_map
              (fun st ->
                checked_reports "txn1"
                  (one "txn1" (Server.handle_lines srv1 (txn_lines "s" st))))
              first
          in
          (* crash: abandon srv1 mid-stream, no close, no final checkpoint *)
          let srv2 = Server.create ~fs ?pool () in
          let open2 =
            ok_doc "open2" (one "open2" (Server.handle_lines srv2 [ open_line ]))
          in
          Alcotest.(check (option json_testable)) "recovered"
            (Some (Json.Bool true)) (Json.member "recovered" open2);
          (* a crashed client just re-sends its whole stream *)
          let replayed = ref 0 in
          let tail_reports =
            List.concat_map
              (fun st ->
                let reply =
                  one "txn2" (Server.handle_lines srv2 (txn_lines "s" st))
                in
                match Json.member "outcome" (ok_doc "txn2" reply) with
                | Some (Json.Str "replayed") ->
                  incr replayed;
                  []
                | Some (Json.Str "checked") -> checked_reports "txn2" reply
                | _ -> Alcotest.failf "txn2: unexpected outcome: %s" reply)
              steps
          in
          Alcotest.(check int) "first half answered replayed" half !replayed;
          Alcotest.(check (list string))
            "reports across the crash" batch_reports
            (head_reports @ tail_reports)
        in
        run None;
        with_pool 4 (fun pool -> run (Some pool))) ]

(* ---------------- connections ---------------- *)

(* The multi-client contract (FORMATS.md §7): replies are in-order per
   connection only, sessions are server-global, and the max_pending
   admission budget is shared across every connection. *)
let connection_cases =
  [ Alcotest.test_case "interleaved connections answer in per-conn order"
      `Quick (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let a = Server.connect srv and b = Server.connect srv in
        List.iter (Server.conn_feed_line a) [ "open sa spec"; "txn sa 1 1" ];
        List.iter (Server.conn_feed_line b) [ "open sb spec"; "txn sb 1 1" ];
        Server.conn_feed_line b "+q(9)";
        Server.conn_feed_line a "+p(1)";
        Server.conn_feed_line a "stats sa";
        (* drain in the opposite order the lines were fed: each connection
           still sees its own requests answered in its own order *)
        (match Server.conn_drain b with
         | [ open_b; txn_b ] ->
           ignore (ok_doc "open sb" open_b);
           (match checked_reports "txn sb" txn_b with
            | [ _ ] -> ()
            | rs -> Alcotest.failf "sb: expected 1 report, got %d" (List.length rs))
         | rs -> Alcotest.failf "sb: expected 2 replies, got %d" (List.length rs));
        (match Server.conn_drain a with
         | [ open_a; txn_a; stats_a ] ->
           ignore (ok_doc "open sa" open_a);
           Alcotest.(check (list string)) "sa txn" []
             (checked_reports "txn sa" txn_a);
           ignore (ok_doc "stats sa" stats_a)
         | rs -> Alcotest.failf "sa: expected 3 replies, got %d" (List.length rs)));
    Alcotest.test_case "sessions are server-global across connections" `Quick
      (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let a = Server.connect srv in
        Server.conn_feed_line a "open s spec";
        ignore (ok_doc "open" (one "open" (Server.conn_drain a)));
        (* a different connection feeds the session opened on [a]... *)
        let b = Server.connect srv in
        List.iter (Server.conn_feed_line b) [ "txn s 1 1"; "+p(1)" ];
        Alcotest.(check (list string)) "txn from b" []
          (checked_reports "txn" (one "txn" (Server.conn_drain b)));
        (* ...and a third sees the combined state *)
        let c = Server.connect srv in
        Server.conn_feed_line c "stats s";
        match Json.member "stats" (ok_doc "stats" (one "stats" (Server.conn_drain c))) with
        | Some st ->
          Alcotest.(check (option json_testable)) "one transaction"
            (Some (Json.Int 1)) (Json.member "transactions" st)
        | None -> Alcotest.fail "stats reply lacks a stats field");
    Alcotest.test_case "admission budget is shared across connections" `Quick
      (fun () ->
        let _, srv =
          server_with_spec ~config:{ Server.max_pending = 2; telemetry = true } tiny_spec
        in
        let a = Server.connect srv and b = Server.connect srv in
        Server.conn_feed_line a "stats x";
        Server.conn_feed_line a "stats y";
        (* [a] holds the whole budget; [b]'s request is refused, in order,
           on [b]'s own connection *)
        Server.conn_feed_line b "stats z";
        Alcotest.(check int) "a pending" 2 (Server.conn_pending a);
        Alcotest.(check int) "b pending" 0 (Server.conn_pending b);
        Alcotest.(check string) "b refused" "overloaded"
          (error_code "b" (one "b" (Server.conn_drain b)));
        Alcotest.(check (list string)) "a drains"
          [ "unknown-session"; "unknown-session" ]
          (List.map (error_code "a") (Server.conn_drain a));
        (* the drain released the shared budget *)
        Server.conn_feed_line b "stats z";
        Alcotest.(check string) "b admitted" "unknown-session"
          (error_code "b2" (one "b2" (Server.conn_drain b))));
    Alcotest.test_case "conn_drain limit leaves the rest queued" `Quick
      (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let a = Server.connect srv in
        for _ = 1 to 5 do Server.conn_feed_line a "stats s" done;
        Alcotest.(check int) "queued" 5 (Server.conn_pending a);
        Alcotest.(check int) "first quantum" 2
          (List.length (Server.conn_drain ~limit:2 a));
        Alcotest.(check int) "still queued" 3 (Server.conn_pending a);
        Alcotest.(check int) "rest" 3 (List.length (Server.conn_drain a));
        Alcotest.(check int) "empty" 0 (Server.conn_pending a));
    Alcotest.test_case "disconnect releases the budget, abandons half a txn"
      `Quick (fun () ->
        let _, srv =
          server_with_spec ~config:{ Server.max_pending = 1; telemetry = true } tiny_spec
        in
        let a = Server.connect srv and b = Server.connect srv in
        (* [a] fills the budget and then dies holding it, mid-txn-body *)
        Server.conn_feed_line a "stats s";
        Server.conn_feed_line a "txn s 1 3";
        Server.conn_feed_line a "+p(1)";
        Server.conn_feed_line b "stats s";
        Alcotest.(check string) "b refused while a lives" "overloaded"
          (error_code "b" (one "b" (Server.conn_drain b)));
        Server.disconnect a;
        Alcotest.(check int) "budget released" 0 (Server.pending srv);
        Alcotest.(check (list string)) "a is silent after disconnect" []
          (Server.conn_drain a);
        Server.conn_feed_line a "stats s" (* ignored: closed *);
        Alcotest.(check int) "closed conn admits nothing" 0
          (Server.pending srv);
        Server.conn_feed_line b "stats s";
        Alcotest.(check string) "b admitted after disconnect" "unknown-session"
          (error_code "b2" (one "b2" (Server.conn_drain b))));
    Alcotest.test_case "shutdown on one connection refuses every other" `Quick
      (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let a = Server.connect srv and b = Server.connect srv in
        Server.conn_feed_line a "open s spec";
        ignore (ok_doc "open" (one "open" (Server.conn_drain a)));
        Server.conn_feed_line b "stats s" (* queued before the stop *);
        Server.conn_feed_line a "shutdown";
        Alcotest.(check string) "shutdown reply"
          {|{"ok":true,"req":"shutdown","sessions_closed":1}|}
          (one "shutdown" (Server.conn_drain a));
        Alcotest.(check string) "b's queued request" "shutting-down"
          (error_code "b" (one "b" (Server.conn_drain b)));
        Server.conn_feed_line b "stats s";
        Alcotest.(check string) "b after stop" "shutting-down"
          (error_code "b2" (one "b2" (Server.conn_drain b))));
    Alcotest.test_case "two connections, disjoint slices = batch per slice"
      `Quick (fun () ->
        let sc = Scenarios.banking in
        let tr = sc.Scenarios.generate ~seed:17 ~steps:40 ~violation_rate:0.2 in
        let half = List.length tr.Trace.steps / 2 in
        let s0 = List.filteri (fun i _ -> i < half) tr.Trace.steps in
        let s1 = List.filteri (fun i _ -> i >= half) tr.Trace.steps in
        let _, srv = server_with_spec (spec_text sc) in
        let conns = [| Server.connect srv; Server.connect srv |] in
        let sessions = [| "c0"; "c1" |] in
        Array.iteri
          (fun i c ->
            Server.conn_feed_line c
              (Printf.sprintf "open %s spec" sessions.(i));
            ignore (ok_doc "open" (one "open" (Server.conn_drain c))))
          conns;
        (* feed both whole slices, then drain round-robin with a small
           quantum — the transport loop's shape *)
        List.iteri
          (fun i slice ->
            List.iter
              (fun st ->
                List.iter (Server.conn_feed_line conns.(i))
                  (txn_lines sessions.(i) st))
              slice)
          [ s0; s1 ];
        let replies = [| []; [] |] in
        let continue = ref true in
        while !continue do
          continue := false;
          Array.iteri
            (fun i c ->
              match Server.conn_drain ~limit:3 c with
              | [] -> ()
              | rs ->
                continue := true;
                replies.(i) <- replies.(i) @ rs)
            conns
        done;
        List.iteri
          (fun i slice ->
            let reports =
              List.concat_map (checked_reports "txn") replies.(i)
            in
            let stats =
              Server.conn_feed_line conns.(i)
                (Printf.sprintf "stats %s" sessions.(i));
              match
                Json.member "stats"
                  (ok_doc "stats" (one "stats" (Server.conn_drain conns.(i))))
              with
              | Some st -> Json.to_string (scrub st)
              | None -> Alcotest.fail "stats reply lacks a stats field"
            in
            Alcotest.(check (pair (list string) string))
              (Printf.sprintf "slice %d = batch" i)
              (batch_run sc { tr with Trace.steps = slice })
              (reports, stats))
          [ s0; s1 ]) ]

(* ---------------- repair sessions ---------------- *)

let repair_spec =
  "schema p(a:int)\n\
   schema q(a:int)\n\
   constraint inv: forall x. q(x) -> p(x) ;\n"

let past_spec =
  "schema p(a:int)\nconstraint was: prev (exists x. p(x)) ;\n"

let repair_cases =
  [ Alcotest.test_case "repaired replies are pinned; the session keeps going"
      `Quick (fun () ->
        let _, srv = server_with_spec repair_spec in
        Alcotest.(check (list string))
          "replies"
          [ {|{"ok":true,"req":"open","session":"s","constraints":1,"recovered":false,"replayed":0,"steps":0}|};
            {|{"ok":true,"req":"txn","session":"s","time":1,"outcome":"repaired","actions":["-q(5)"],"witnesses":[{"action":"-q(5)","fired_by":"inv"}],"repaired":[{"constraint":"inv","position":0,"time":1}],"inconclusive":[]}|};
            {|{"ok":true,"req":"txn","session":"s","time":2,"outcome":"checked","reports":[],"inconclusive":[]}|} ]
          (Server.handle_lines srv
             [ "open s spec on-error=repair";
               "txn s 1 1";
               "+q(5)";
               (* the repair deleted q(5): supplying the missing p heals
                  the same update for good *)
               "txn s 2 2";
               "+q(7)";
               "+p(7)" ]));
    Alcotest.test_case "unrepairable replies are pinned; the session survives"
      `Quick (fun () ->
        let _, srv = server_with_spec past_spec in
        Alcotest.(check (list string))
          "replies"
          [ {|{"ok":true,"req":"open","session":"u","constraints":1,"recovered":false,"replayed":0,"steps":0}|};
            {|{"ok":true,"req":"txn","session":"u","time":1,"outcome":"unrepairable","reports":[{"constraint":"was","position":0,"time":1}],"unrepairable":[{"constraint":"was","offending":"prev (exists x. p(x))"}],"inconclusive":[]}|};
            (* one state later the past supplies the witness: clean *)
            {|{"ok":true,"req":"txn","session":"u","time":2,"outcome":"checked","reports":[],"inconclusive":[]}|} ]
          (Server.handle_lines srv
             [ "open u spec on-error=repair";
               "txn u 1 1";
               "+p(1)";
               "txn u 2 0" ]));
    Alcotest.test_case "kill-and-recover replays to the same repaired state"
      `Quick (fun () ->
        (* q(5) violates at t1 and is repaired away; at t4 it violates
           again only because the t1 repair really deleted it — a lost or
           half-applied repair would change the t4/t5 replies. *)
        let stream =
          [ [ "txn s 1 1"; "+q(5)" ];
            [ "txn s 2 1"; "+p(1)" ];
            [ "txn s 3 1"; "+q(6)" ];
            [ "txn s 4 1"; "+q(5)" ];
            [ "txn s 5 1"; "+p(9)" ] ]
        in
        let open_line = "open s spec state-dir=sd on-error=repair auto-checkpoint=2" in
        let run_uninterrupted () =
          let fs = Faults.mem_fs () in
          (match fs.Faults.write_file "spec" repair_spec with
           | Ok () -> ()
           | Error m -> Alcotest.fail m);
          let srv = Server.create ~fs () in
          ignore (ok_doc "open" (one "open" (Server.handle_lines srv [ open_line ])));
          List.map (fun ls -> one "txn" (Server.handle_lines srv ls)) stream
        in
        let reference = run_uninterrupted () in
        let fs = Faults.mem_fs () in
        (match fs.Faults.write_file "spec" repair_spec with
         | Ok () -> ()
         | Error m -> Alcotest.fail m);
        let srv1 = Server.create ~fs () in
        ignore (ok_doc "open1" (one "open1" (Server.handle_lines srv1 [ open_line ])));
        let head =
          List.map
            (fun ls -> one "txn1" (Server.handle_lines srv1 ls))
            (List.filteri (fun i _ -> i < 2) stream)
        in
        Alcotest.(check (list string)) "head matches the reference"
          (List.filteri (fun i _ -> i < 2) reference)
          head;
        (* crash: abandon srv1; a new server recovers and the client
           re-sends its whole stream *)
        let srv2 = Server.create ~fs () in
        let open2 = ok_doc "open2" (one "open2" (Server.handle_lines srv2 [ open_line ])) in
        Alcotest.(check (option json_testable)) "recovered"
          (Some (Json.Bool true)) (Json.member "recovered" open2);
        let replies =
          List.map (fun ls -> one "txn2" (Server.handle_lines srv2 ls)) stream
        in
        let replayed, live =
          List.partition
            (fun r ->
              Json.member "outcome" (ok_doc "txn2" r)
              = Some (Json.Str "replayed"))
            replies
        in
        Alcotest.(check int) "accepted prefix answered replayed" 2
          (List.length replayed);
        Alcotest.(check (list string)) "tail matches the reference"
          (List.filteri (fun i _ -> i >= 2) reference)
          live) ]

(* ---------------- telemetry: the metrics request ---------------- *)

module Telemetry = Rtic_core.Telemetry

let snapshot_of_reply what reply =
  let doc = ok_doc what reply in
  match Json.member "metrics" doc with
  | Some m ->
    (match Telemetry.of_json m with
     | Ok s -> s
     | Error e -> Alcotest.failf "%s: %s" what e)
  | None -> Alcotest.failf "%s: reply lacks a metrics field" what

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

let obj_keys what = function
  | Json.Obj fields -> List.map fst fields
  | _ -> Alcotest.failf "%s: expected an object" what

let metrics_cases =
  [ Alcotest.test_case "snapshot shape is pinned" `Quick (fun () ->
        let _, srv = server_with_spec tiny_spec in
        let replies =
          Server.handle_lines srv
            [ "open s spec"; "txn s 1 1"; "+p(1)"; "txn s 2 1"; "+q(1)";
              "metrics" ]
        in
        let raw =
          match Json.member "metrics" (ok_doc "metrics" (List.nth replies 3)) with
          | Some m -> m
          | None -> Alcotest.fail "reply lacks a metrics field"
        in
        Alcotest.(check (list string)) "top-level keys"
          [ "schema"; "server"; "sessions" ]
          (obj_keys "top" raw);
        Alcotest.(check (option json_testable)) "schema"
          (Some (Json.Str "rtic-metrics/1"))
          (Json.member "schema" raw);
        Alcotest.(check (list string)) "server keys"
          [ "sessions"; "queued"; "max_pending"; "stopped"; "transactions";
            "rates" ]
          (obj_keys "server" (Option.get (Json.member "server" raw)));
        let sess =
          match Json.member "sessions" raw with
          | Some (Json.List [ s ]) -> s
          | _ -> Alcotest.fail "expected exactly one session"
        in
        Alcotest.(check (list string)) "session keys"
          [ "session"; "health"; "transactions"; "violations"; "steps";
            "last_time"; "rates"; "gauges"; "counters"; "latency_ns";
            "latency_buckets" ]
          (obj_keys "session" sess);
        Alcotest.(check (list string)) "rate windows"
          [ "1s"; "10s"; "60s" ]
          (obj_keys "rates" (Option.get (Json.member "rates" sess)));
        Alcotest.(check (list string)) "gauges"
          [ "aux_size"; "degraded"; "quarantined";
            "wal_bytes_since_checkpoint" ]
          (obj_keys "gauges" (Option.get (Json.member "gauges" sess)));
        (* cumulative buckets: counts non-decreasing, ending at the
           latency count *)
        let count =
          Option.get
            (Option.bind
               (Json.member "count" (Option.get (Json.member "latency_ns" sess)))
               Json.to_int)
        in
        let cums =
          match Json.member "latency_buckets" sess with
          | Some (Json.List bs) ->
            List.map
              (fun b ->
                Option.get (Option.bind (Json.member "count" b) Json.to_int))
              bs
          | _ -> Alcotest.fail "latency_buckets missing"
        in
        Alcotest.(check bool) "buckets non-decreasing" true
          (List.for_all2 ( <= )
             (List.filteri (fun i _ -> i < List.length cums - 1) cums)
             (List.tl cums));
        Alcotest.(check int) "last cumulative equals count" count
          (List.nth cums (List.length cums - 1)));
    Alcotest.test_case "snapshot counters are mutually consistent" `Quick
      (fun () ->
        let _, srv = server_with_spec tiny_spec in
        ignore
          (Server.handle_lines srv
             [ "open a spec"; "open b spec";
               "txn a 1 1"; "+p(1)";
               "txn b 1 1"; "+q(5)";  (* violation in b *)
               "txn a 2 1"; "+q(1)" ]);
        let snap =
          snapshot_of_reply "metrics"
            (one "metrics" (Server.handle_lines srv [ "metrics" ]))
        in
        Alcotest.(check int) "session count" 2 snap.Telemetry.session_count;
        let by_name n =
          List.find (fun (s : Telemetry.session) -> s.name = n)
            snap.Telemetry.sessions
        in
        Alcotest.(check int) "a drove 2" 2 (by_name "a").Telemetry.transactions;
        Alcotest.(check int) "b drove 1" 1 (by_name "b").Telemetry.transactions;
        Alcotest.(check int) "b saw the violation" 1
          (by_name "b").Telemetry.violations;
        Alcotest.(check int) "server total = sum of sessions" 3
          snap.Telemetry.transactions;
        List.iter
          (fun (s : Telemetry.session) ->
            Alcotest.(check string) "healthy" "ok" s.Telemetry.health;
            Alcotest.(check int) "steps = transactions" s.Telemetry.transactions
              s.Telemetry.steps;
            let hist =
              List.fold_left (fun a (b : Rtic_core.Metrics.bucket) -> a + b.n)
                0 s.Telemetry.buckets
            in
            Alcotest.(check int) "histogram covers every txn"
              s.Telemetry.transactions hist)
          snap.Telemetry.sessions;
        (* the total survives a close: sessions are gone, the counter not *)
        ignore (Server.handle_lines srv [ "close a"; "close b" ]);
        let snap2 =
          snapshot_of_reply "metrics2"
            (one "metrics2" (Server.handle_lines srv [ "metrics" ]))
        in
        Alcotest.(check int) "no sessions" 0 snap2.Telemetry.session_count;
        Alcotest.(check int) "total retained" 3 snap2.Telemetry.transactions);
    Alcotest.test_case "snapshot JSON round-trips through of_json" `Quick
      (fun () ->
        let _, srv = server_with_spec tiny_spec in
        ignore
          (Server.handle_lines srv [ "open s spec"; "txn s 1 1"; "+p(1)" ]);
        let raw =
          match
            Json.member "metrics"
              (ok_doc "metrics"
                 (one "metrics" (Server.handle_lines srv [ "metrics" ])))
          with
          | Some m -> m
          | None -> Alcotest.fail "no metrics field"
        in
        let snap =
          match Telemetry.of_json raw with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        Alcotest.(check json_testable) "re-rendering is identical" raw
          (Telemetry.to_json snap));
    Alcotest.test_case "prometheus exposition escapes and stays monotone"
      `Quick (fun () ->
        let latency =
          { Rtic_core.Metrics.count = 2;
            total_ns = 300.0;
            min_ns = 98.0;
            mean_ns = 150.0;
            p50_ns = 97.5;
            p95_ns = 195.5;
            p99_ns = 195.5;
            max_ns = 199.0 }
        in
        let sess =
          { Telemetry.name = "s\"x\\y\nz";
            transactions = 3;
            violations = 1;
            steps = 3;
            last_time = Some 9;
            health = "ok";
            rates = [ (1, 2.0); (10, 0.2); (60, 0.05) ];
            latency = Some latency;
            buckets =
              [ { Rtic_core.Metrics.lo_ns = 96; hi_ns = 99; n = 1 };
                { Rtic_core.Metrics.lo_ns = 192; hi_ns = 199; n = 1 } ];
            gauges = [ ("aux size", 4) ];
            counters = [ ("wal_records_appended", 3) ] }
        in
        let snap =
          { Telemetry.sessions = [ sess ];
            session_count = 1;
            queued = 2;
            max_pending = 64;
            stopped = false;
            transactions = 3;
            rates = [ (1, 2.0); (10, 0.2); (60, 0.05) ] }
        in
        let text = Telemetry.to_prometheus snap in
        let esc = "s\\\"x\\\\y\\nz" in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("contains " ^ needle) true
              (contains text needle))
          [ "# TYPE rtic_session_txn_latency_ns histogram";
            "# TYPE rtic_transactions_total counter";
            "rtic_transactions_total 3";
            "rtic_txn_rate{window=\"1s\"} 2";
            Printf.sprintf "rtic_session_transactions_total{session=\"%s\"} 3"
              esc;
            (* gauge keys are sanitized into metric-name characters *)
            Printf.sprintf "rtic_session_aux_size{session=\"%s\"} 4" esc;
            Printf.sprintf
              "rtic_session_events_total{session=\"%s\",event=\"wal_records_appended\"} 3"
              esc;
            (* cumulative buckets, ending at +Inf = count *)
            Printf.sprintf
              "rtic_session_txn_latency_ns_bucket{session=\"%s\",le=\"99\"} 1"
              esc;
            Printf.sprintf
              "rtic_session_txn_latency_ns_bucket{session=\"%s\",le=\"199\"} 2"
              esc;
            Printf.sprintf
              "rtic_session_txn_latency_ns_bucket{session=\"%s\",le=\"+Inf\"} 2"
              esc;
            Printf.sprintf
              "rtic_session_txn_latency_ns_count{session=\"%s\"} 2" esc ];
        (* no raw newline may survive inside a label: every line is a
           comment, a sample, or blank *)
        List.iter
          (fun line ->
            Alcotest.(check bool) ("well-formed line: " ^ line) true
              (line = "" || line.[0] = '#'
              || String.length line > 5 && String.sub line 0 5 = "rtic_"))
          (String.split_on_char '\n' text)) ]

(* Counters in a snapshot taken between transactions always sum exactly:
   per-session transactions equal what was driven into that session, and
   the server total equals their sum — sequentially and under a pool. *)
let metrics_property =
  qtest ~count:8 "metrics counters sum exactly at any parallelism"
    QCheck.(pair small_nat bool)
    (fun (seed, par) ->
      let sc = Scenarios.banking in
      let tr = sc.Scenarios.generate ~seed ~steps:10 ~violation_rate:0.2 in
      let run pool =
        let _, srv = server_with_spec ?pool (spec_text sc) in
        ignore (Server.handle_lines srv [ "open a spec"; "open b spec" ]);
        let driven = [| 0; 0 |] in
        List.iteri
          (fun i step ->
            let which = i mod 2 in
            let session = if which = 0 then "a" else "b" in
            ignore (Server.handle_lines srv (txn_lines session step));
            driven.(which) <- driven.(which) + 1;
            let snap =
              snapshot_of_reply "metrics"
                (one "metrics" (Server.handle_lines srv [ "metrics" ]))
            in
            let by_name n =
              List.find (fun (s : Telemetry.session) -> s.name = n)
                snap.Telemetry.sessions
            in
            Alcotest.(check int) "a" driven.(0)
              (by_name "a").Telemetry.transactions;
            Alcotest.(check int) "b" driven.(1)
              (by_name "b").Telemetry.transactions;
            Alcotest.(check int) "total" (driven.(0) + driven.(1))
              snap.Telemetry.transactions)
          tr.Trace.steps;
        Alcotest.(check int) "sequential total" (Trace.length tr)
          (driven.(0) + driven.(1))
      in
      if par then with_pool 4 (fun p -> run (Some p)) else run None;
      true)

let suite =
  [ ("server:protocol", protocol_cases);
    ("server:batch", batch_cases);
    ("server:repair", repair_cases);
    ("server:connections", connection_cases);
    ("server:equivalence", equivalence_cases @ [ equivalence_property ]);
    ("server:metrics", metrics_cases @ [ metrics_property ]);
    ("server:recovery", recovery_cases) ]
