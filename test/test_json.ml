(* The hand-rolled JSON emitter/parser backing the observability surface. *)

open Helpers
module Json = Rtic_core.Json

let rec pp_json ppf = function
  | Json.Null -> Format.fprintf ppf "null"
  | Json.Bool b -> Format.fprintf ppf "%b" b
  | Json.Int i -> Format.fprintf ppf "%d" i
  | Json.Float f -> Format.fprintf ppf "%g" f
  | Json.Str s -> Format.fprintf ppf "%S" s
  | Json.List xs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
         pp_json)
      xs
  | Json.Obj kvs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
         (fun ppf (k, v) -> Format.fprintf ppf "%S:%a" k pp_json v))
      kvs

let json_t : Json.t Alcotest.testable =
  Alcotest.testable pp_json ( = )

let parse_ok s = get_ok ("parse " ^ s) (Json.of_string s)
let parse_err s = get_error ("parse " ^ s) (Json.of_string s)

let emit_cases =
  [ Alcotest.test_case "escapes control and quote characters" `Quick (fun () ->
        Alcotest.(check string) "escapes" "\"a\\\"b\\\\c\\n\\u0001\""
          (Json.to_string (Json.Str "a\"b\\c\n\001")));
    Alcotest.test_case "non-finite floats become null" `Quick (fun () ->
        Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
        Alcotest.(check string) "inf" "null"
          (Json.to_string (Json.Float Float.infinity)));
    Alcotest.test_case "floats keep a decimal point" `Quick (fun () ->
        Alcotest.(check string) "2.0" "2.0" (Json.to_string (Json.Float 2.0)));
    Alcotest.test_case "indent mode is parseable" `Quick (fun () ->
        let doc =
          Json.Obj
            [ ("a", Json.List [ Json.Int 1; Json.Null ]);
              ("b", Json.Obj [ ("c", Json.Bool true) ]) ]
        in
        Alcotest.check json_t "roundtrip"
          doc
          (parse_ok (Json.to_string ~indent:true doc))) ]

let parse_cases =
  [ Alcotest.test_case "accepts scalars" `Quick (fun () ->
        Alcotest.check json_t "int" (Json.Int 42) (parse_ok " 42 ");
        Alcotest.check json_t "neg float" (Json.Float (-2.5)) (parse_ok "-2.5");
        Alcotest.check json_t "bool" (Json.Bool false) (parse_ok "false");
        Alcotest.check json_t "null" Json.Null (parse_ok "null");
        Alcotest.check json_t "str" (Json.Str "hi\n") (parse_ok "\"hi\\n\""));
    Alcotest.test_case "decodes unicode escapes" `Quick (fun () ->
        Alcotest.check json_t "2-byte" (Json.Str "\xc3\xa9") (parse_ok "\"\\u00e9\"");
        Alcotest.check json_t "3-byte" (Json.Str "\xe2\x82\xac")
          (parse_ok "\"\\u20ac\""));
    Alcotest.test_case "rejects malformed documents" `Quick (fun () ->
        List.iter
          (fun s -> ignore (parse_err s))
          [ ""; "{"; "[1,"; "[1 2]"; "{\"a\":}"; "{\"a\" 1}"; "tru";
            "\"unterminated"; "\"raw\tcontrol\""; "\"bad \\q escape\"";
            "\"\\u12\""; "1 2"; "[1],"; "{} garbage"; "nan"; "+1"; "01a" ]);
    Alcotest.test_case "rejects trailing garbage specifically" `Quick (fun () ->
        let m = parse_err "{\"a\": 1} {\"b\": 2}" in
        Alcotest.(check bool) "mentions trailing" true
          (String.length m > 0)) ]

(* Emitter output always re-parses to the same tree (floats excepted: they
   go through a %.12g representation, so compare on a grid that's exact). *)
let roundtrip_property =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let scalar =
            oneof
              [ return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) int;
                map (fun f -> Json.Float (float_of_int f /. 4.0)) (int_bound 10000);
                map (fun s -> Json.Str s) (string_size (int_bound 12)) ]
          in
          if n = 0 then scalar
          else
            frequency
              [ (3, scalar);
                (1, map (fun xs -> Json.List xs)
                      (list_size (int_bound 4) (self (n / 2))));
                (1, map (fun kvs -> Json.Obj kvs)
                      (list_size (int_bound 4)
                         (pair (string_size (int_bound 6)) (self (n / 2))))) ]))
  in
  qtest ~count:500 "of_string (to_string j) = j"
    (QCheck.make gen)
    (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> j = j'
      | Error _ -> false)

let accessor_cases =
  [ Alcotest.test_case "member and coercions" `Quick (fun () ->
        let doc = parse_ok "{\"n\": 3, \"xs\": [1.5], \"s\": \"v\"}" in
        Alcotest.(check (option int)) "n" (Some 3)
          (Option.bind (Json.member "n" doc) Json.to_int);
        Alcotest.(check (option string)) "s" (Some "v")
          (Option.bind (Json.member "s" doc) Json.to_str);
        Alcotest.(check bool) "missing" true (Json.member "zzz" doc = None);
        Alcotest.(check (option (float 0.0))) "int as float" (Some 3.0)
          (Option.bind (Json.member "n" doc) Json.to_float)) ]

let suite =
  [ ("json:emit", emit_cases);
    ("json:parse", parse_cases);
    ("json:roundtrip", [ roundtrip_property ]);
    ("json:accessors", accessor_cases) ]
