(* Arithmetic terms in comparisons: parsing, typing, evaluation, and the
   bounded-change constraint idiom. *)

open Helpers
module F = Formula
module Codd = Rtic_eval.Codd

let parse_cases =
  [ Alcotest.test_case "precedence and associativity" `Quick (fun () ->
        (match parse_formula "x + 2 * y < 7" with
         | F.Cmp (F.Lt, F.Add (F.Var "x", F.Mul (F.Var "y", _)), _)
         | F.Cmp (F.Lt, F.Add (F.Var "x", F.Mul (_, F.Var "y")), _) -> ()
         | f -> Alcotest.failf "unexpected parse: %s" (Pretty.to_string f));
        (match parse_formula "x - 1 - 2 = y" with
         | F.Cmp (F.Eq, F.Sub (F.Sub (F.Var "x", _), _), F.Var "y") -> ()
         | f -> Alcotest.failf "unexpected parse: %s" (Pretty.to_string f)));
    Alcotest.test_case "parenthesized arithmetic" `Quick (fun () ->
        (match parse_formula "(x + 1) * 2 <= y" with
         | F.Cmp (F.Le, F.Mul (F.Add _, _), F.Var "y") -> ()
         | f -> Alcotest.failf "unexpected parse: %s" (Pretty.to_string f)));
    Alcotest.test_case "negative literals vs subtraction" `Quick (fun () ->
        (match parse_formula "x = -3" with
         | F.Cmp (F.Eq, F.Var "x", F.Const (Value.Int (-3))) -> ()
         | f -> Alcotest.failf "unexpected parse: %s" (Pretty.to_string f));
        (match parse_formula "x -3 < y" with
         | F.Cmp (F.Lt, F.Sub (F.Var "x", F.Const (Value.Int 3)), F.Var "y") -> ()
         | f -> Alcotest.failf "unexpected parse: %s" (Pretty.to_string f)));
    Alcotest.test_case "round-trips" `Quick (fun () ->
        List.iter
          (fun src ->
            let f = parse_formula src in
            let f' = parse_formula (Pretty.to_string f) in
            if not (F.equal f f') then
              Alcotest.failf "%s -> %s did not round-trip" src
                (Pretty.to_string f))
          [ "x + 1 < y"; "x - 1 - 2 = y"; "(x + 1) * 2 <= y";
            "x * 2 + 1 != y - 3"; "p(x) & x + x >= 4" ]) ]

let typecheck_cases =
  let cat = Gen.generic_catalog in
  [ Alcotest.test_case "numeric arithmetic accepted" `Quick (fun () ->
        ignore
          (get_ok "int arith"
             (Typecheck.check cat (parse_formula "forall x. p(x) -> x + 1 > 0"))));
    Alcotest.test_case "string arithmetic rejected" `Quick (fun () ->
        let cat =
          Schema.Catalog.of_list [ Schema.make "s" [ ("v", Value.TStr) ] ]
        in
        ignore
          (get_error "str arith"
             (Typecheck.check cat
                (parse_formula "forall x. s(x) -> x + x = x"))));
    Alcotest.test_case "arithmetic in atom arguments rejected" `Quick (fun () ->
        (* the concrete syntax rejects it outright ... *)
        ignore (get_error "parse" (Parser.formula_of_string "exists x. p(x + 1)"));
        (* ... and the type checker rejects API-built formulas *)
        let f =
          F.Exists
            ( [ "x" ],
              F.Atom ("p", [ F.Add (F.Var "x", F.Const (Value.Int 1)) ]) )
        in
        ignore (get_error "typecheck" (Typecheck.check cat f))) ]

(* semantics: r(a, b) holds pairs; check guards with arithmetic *)
let eval_cases =
  [ Alcotest.test_case "filter with arithmetic" `Quick (fun () ->
        let h =
          generic_history "@0\n+r(1, 10)\n+r(5, 10)\n+r(9, 10)\n+r(12, 10)\n"
        in
        (* pairs where a is within ±4 of b/2 = 5: a in [1..9] *)
        let f = parse_formula "r(x, y) & x * 2 <= y + 8 & x * 2 >= y - 8" in
        let v = get_ok "eval" (Naive.eval h 0 f) in
        Alcotest.(check int) "three rows" 3 (Valrel.cardinal v));
    Alcotest.test_case "negated arithmetic guard flips" `Quick (fun () ->
        let h = generic_history "@0\n+r(1, 10)\n+r(5, 10)\n" in
        let f = parse_formula "forall x, y. r(x, y) -> not (x + 9 <= y)" in
        Alcotest.(check bool) "violated by (1,10)" false
          (get_ok "eval" (Naive.holds_at h 0 f)));
    Alcotest.test_case "bounded-change constraint" `Quick (fun () ->
        let cat =
          Schema.Catalog.of_list
            [ Schema.make "sensor" [ ("id", Value.TStr); ("v", Value.TInt) ] ]
        in
        let d =
          { F.name = "smooth";
            body =
              parse_formula
                "forall i, v, w. sensor(i, v) & prev sensor(i, w) -> v <= w \
                 + 10 & v >= w - 10" }
        in
        let mk v = Tuple.make [ Value.Str "s"; Value.Int v ] in
        let db0 = Database.create cat in
        let db1 = get_ok "i" (Database.insert db0 "sensor" (mk 50)) in
        let db2 =
          get_ok "i"
            (Database.insert
               (get_ok "d" (Database.delete db1 "sensor" (mk 50)))
               "sensor" (mk 58))
        in
        let db3 =
          get_ok "i"
            (Database.insert
               (get_ok "d" (Database.delete db2 "sensor" (mk 58)))
               "sensor" (mk 90))
        in
        let st = get_ok "create" (Incremental.create cat d) in
        let st, v1 = get_ok "s1" (Incremental.step st ~time:1 db1) in
        let st, v2 = get_ok "s2" (Incremental.step st ~time:2 db2) in
        let _, v3 = get_ok "s3" (Incremental.step st ~time:3 db3) in
        Alcotest.(check (list bool)) "only the jump violates"
          [ true; true; false ]
          [ v1.Incremental.satisfied; v2.Incremental.satisfied;
            v3.Incremental.satisfied ]) ]

(* Codd compilation with arithmetic guards agrees with direct evaluation. *)
let codd_case =
  Alcotest.test_case "algebra evaluates arithmetic guards" `Quick (fun () ->
      let h = generic_history "@0\n+r(1, 3)\n+r(2, 4)\n+r(3, 4)\n" in
      let db = History.db h 0 in
      let f = parse_formula "r(x, y) & x + 1 >= y - 1" in
      let direct = get_ok "direct" (Naive.eval h 0 f) in
      let via = get_ok "via" (Codd.eval_via_algebra db f) in
      Alcotest.(check bool) "equal" true (Valrel.equal via direct))

let suite =
  [ ("arith:parse", parse_cases);
    ("arith:typecheck", typecheck_cases);
    ("arith:eval", eval_cases @ [ codd_case ]) ]
