(* Shared helpers for the test suite. *)

module Value = Rtic_relational.Value
module Tuple = Rtic_relational.Tuple
module Schema = Rtic_relational.Schema
module Relation = Rtic_relational.Relation
module Database = Rtic_relational.Database
module Update = Rtic_relational.Update
module Algebra = Rtic_relational.Algebra
module Textio = Rtic_relational.Textio
module Interval = Rtic_temporal.Interval
module History = Rtic_temporal.History
module Trace = Rtic_temporal.Trace
module Formula = Rtic_mtl.Formula
module Parser = Rtic_mtl.Parser
module Pretty = Rtic_mtl.Pretty
module Rewrite = Rtic_mtl.Rewrite
module Typecheck = Rtic_mtl.Typecheck
module Safety = Rtic_mtl.Safety
module Closure = Rtic_mtl.Closure
module Valrel = Rtic_eval.Valrel
module Naive = Rtic_eval.Naive
module Incremental = Rtic_core.Incremental
module Monitor = Rtic_core.Monitor
module Bounds = Rtic_core.Bounds
module Gen = Rtic_workload.Gen
module Scenarios = Rtic_workload.Scenarios

let get_ok what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

let get_error what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error m -> m

let parse_formula s = get_ok ("parse " ^ s) (Parser.formula_of_string s)

let generic_schemas =
  "schema p(a:int)\nschema q(a:int)\nschema r(a:int, b:int)\nschema e()\n"

let trace_of_text text = get_ok "parse trace" (Trace.parse text)

let history_of_text text =
  get_ok "materialize" (Trace.materialize (trace_of_text text))

let generic_history body = history_of_text (generic_schemas ^ body)

(* Run a closed formula at every position of a history with the naive
   evaluator, returning the satisfaction vector. *)
let naive_vector h f =
  List.init (History.length h) (fun i ->
      get_ok "naive eval" (Naive.holds_at h i f))

(* Same vector via the incremental checker. *)
let incremental_vector ?config cat h f =
  let d = { Formula.name = "t"; body = f } in
  let st = get_ok "create checker" (Incremental.create ?config cat d) in
  let _, rev =
    List.fold_left
      (fun (st, acc) (time, db) ->
        let st, v = get_ok "step" (Incremental.step st ~time db) in
        (st, v.Incremental.satisfied :: acc))
      (st, [])
      (History.snapshots h)
  in
  List.rev rev

let bool_list = Alcotest.(list bool)
let int_list = Alcotest.(list int)

let check_vector name h f expected =
  Alcotest.check bool_list (name ^ " (naive)") expected (naive_vector h f)

let check_both_vectors name cat h f expected =
  Alcotest.check bool_list (name ^ " (naive)") expected (naive_vector h f);
  Alcotest.check bool_list
    (name ^ " (incremental)")
    expected
    (incremental_vector cat h f);
  Alcotest.check bool_list
    (name ^ " (incremental, no pruning)")
    expected
    (incremental_vector ~config:{ Incremental.prune = false } cat h f)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name gen prop)
