(* Active repair (ISSUE 7): the bounded founded-repair search
   (Rtic_core.Repair), its sound unrepairability classification, the
   supervisor's on-error=repair policy across crash-recovery, and the
   QCheck soundness properties:

   - a Repaired result's database satisfies every monitored constraint at
     the current timestamp (checked with the real incremental checkers);
   - an Unrepairable classification never admits a counterexample: no
     current-state mutation flips the verdict of a constraint classified
     as current-insensitive. *)

open Helpers
module Repair = Rtic_core.Repair
module Supervisor = Rtic_core.Supervisor
module Faults = Rtic_core.Faults
module Chaos = Rtic_workload.Chaos

let cat = Gen.generic_catalog
let i n = Value.Int n

let checker name body =
  get_ok ("checker " ^ name)
    (Incremental.create cat { Formula.name; body = parse_formula body })

let db_of ops = get_ok "build db" (Update.apply (Database.create cat) ops)

let search ?budget ?skip ?txn ~time checkers db =
  get_ok "search" (Repair.search ?budget ~checkers ?skip ~time ?txn db)

let insensitive body =
  (* Go through a checker so the classifier sees exactly the normalized
     formula the engine monitors. *)
  Repair.current_insensitive (Incremental.formula (checker "t" body))

(* ---------------- classification ---------------- *)

let classification_cases =
  [ Alcotest.test_case "current-insensitivity, per connective" `Quick
      (fun () ->
        let sens body expected =
          Alcotest.(check bool) body expected (insensitive body)
        in
        (* current-state atoms are sensitive *)
        sens "p(1)" false;
        sens "not p(1)" false;
        sens "exists x. p(x)" false;
        sens "forall x. q(x) -> p(x)" false;
        (* prev shields the current state entirely *)
        sens "prev (exists x. p(x))" true;
        sens "not (prev (exists x. p(x)))" true;
        sens "prev (exists x. p(x)) and prev (exists x. q(x))" true;
        (* one sensitive conjunct spoils it *)
        sens "prev (exists x. p(x)) and (exists x. q(x))" false;
        (* once/since shield only with a strictly positive lower bound *)
        sens "once[1,9] (exists x. p(x))" true;
        sens "once[0,9] (exists x. p(x))" false;
        sens "prev (exists x. p(x)) since[2,9] (prev (exists x. q(x)))" true;
        sens "(exists x. p(x)) since[2,9] (prev (exists x. q(x)))" false;
        (* with lower bound 0 the right operand reaches the current state *)
        sens "prev (exists x. p(x)) since[0,9] (exists x. q(x))" false;
        (* constants don't depend on any state *)
        sens "false" true);
    Alcotest.test_case "offending subformula is the past anchor" `Quick
      (fun () ->
        let offending body =
          Pretty.to_string
            (Repair.offending_subformula
               (Incremental.formula (checker "t" body)))
        in
        Alcotest.(check string) "prev" "prev (exists x. p(x))"
          (offending "prev (exists x. p(x)) and prev (exists x. q(x))"))
  ]

(* ---------------- the search ---------------- *)

let action_strings actions =
  List.map (Format.asprintf "%a" Update.pp_op) actions

let search_cases =
  [ Alcotest.test_case "clean state needs no repair" `Quick (fun () ->
        match search ~time:0 [ checker "c" "not p(2)" ] (db_of []) with
        | Repair.Clean -> ()
        | _ -> Alcotest.fail "expected Clean");
    Alcotest.test_case "missing fact is repaired by an insert" `Quick
      (fun () ->
        match search ~time:0 [ checker "need1" "p(1)" ] (db_of []) with
        | Repair.Repaired r ->
          Alcotest.(check (list string)) "actions" [ "+p(1)" ]
            (action_strings r.actions);
          Alcotest.(check (list string)) "healed" [ "need1" ] r.healed;
          (match r.witnesses with
           | [ w ] ->
             Alcotest.(check string) "founded" "need1" w.Repair.fired_by
           | ws -> Alcotest.failf "expected 1 witness, got %d" (List.length ws));
          Alcotest.(check bool) "db has p(1)" true
            (Database.equal r.db (db_of [ Update.insert "p" [ i 1 ] ]))
        | _ -> Alcotest.fail "expected Repaired");
    Alcotest.test_case "forbidden fact is repaired by a delete" `Quick
      (fun () ->
        let db = db_of [ Update.insert "p" [ i 2 ] ] in
        match search ~time:0 [ checker "no2" "not p(2)" ] db with
        | Repair.Repaired r ->
          Alcotest.(check (list string)) "actions" [ "-p(2)" ]
            (action_strings r.actions);
          Alcotest.(check bool) "db emptied" true
            (Database.equal r.db (db_of []))
        | _ -> Alcotest.fail "expected Repaired");
    Alcotest.test_case "repairs have minimal cardinality" `Quick (fun () ->
        (* two independent violations need exactly two actions *)
        match search ~time:0 [ checker "both" "p(1) and p(2)" ] (db_of []) with
        | Repair.Repaired r ->
          Alcotest.(check int) "two actions" 2 (List.length r.actions)
        | _ -> Alcotest.fail "expected Repaired");
    Alcotest.test_case "depth budget exhaustion is Inconclusive, not a claim"
      `Quick (fun () ->
        let budget = { Repair.default_budget with Repair.max_depth = 1 } in
        match
          search ~budget ~time:0 [ checker "both" "p(1) and p(2)" ] (db_of [])
        with
        | Repair.Inconclusive c ->
          Alcotest.(check bool) "spent probes" true (c.oracle_steps > 0)
        | _ -> Alcotest.fail "expected Inconclusive");
    Alcotest.test_case "oracle step budget exhaustion is Inconclusive" `Quick
      (fun () ->
        let budget = { Repair.default_budget with Repair.max_steps = 2 } in
        match
          search ~budget ~time:0 [ checker "both" "p(1) and p(2)" ] (db_of [])
        with
        | Repair.Inconclusive c ->
          Alcotest.(check int) "probes capped" 2 c.oracle_steps
        | _ -> Alcotest.fail "expected Inconclusive");
    Alcotest.test_case "past-anchored violation is Unrepairable" `Quick
      (fun () ->
        match
          search ~time:0
            [ checker "was" "prev (exists x. p(x))" ]
            (db_of [])
        with
        | Repair.Unrepairable [ u ] ->
          Alcotest.(check string) "name" "was" u.Repair.constraint_name;
          Alcotest.(check string) "offending" "prev (exists x. p(x))"
            u.Repair.offending
        | _ -> Alcotest.fail "expected Unrepairable with one entry");
    Alcotest.test_case "one stuck constraint preempts a repairable one" `Quick
      (fun () ->
        let cs =
          [ checker "need1" "p(1)"; checker "was" "prev (exists x. p(x))" ]
        in
        (match search ~time:0 cs (db_of []) with
         | Repair.Unrepairable [ u ] ->
           Alcotest.(check string) "name" "was" u.Repair.constraint_name
         | _ -> Alcotest.fail "expected Unrepairable");
        (* skipping the stuck constraint (a quarantined one would be) lets
           the search repair the rest *)
        match search ~skip:(fun n -> n = "was") ~time:0 cs (db_of []) with
        | Repair.Repaired r ->
          Alcotest.(check (list string)) "actions" [ "+p(1)" ]
            (action_strings r.actions)
        | _ -> Alcotest.fail "expected Repaired with the stuck one skipped");
    Alcotest.test_case "the offending transaction seeds its own inverse"
      `Quick (fun () ->
        let txn = [ Update.insert "r" [ i 3; i 4 ] ] in
        let db = db_of txn in
        match
          search ~txn ~time:0
            [ checker "empty_r" "not (exists x. exists y. r(x, y))" ]
            db
        with
        | Repair.Repaired r ->
          Alcotest.(check (list string)) "actions" [ "-r(3, 4)" ]
            (action_strings r.actions)
        | _ -> Alcotest.fail "expected Repaired") ]

(* ---------------- the supervisor policy ---------------- *)

let repair_config =
  { Supervisor.default_config with Supervisor.on_error = Supervisor.Repair }

let q_in_p = { Formula.name = "q_in_p"; body = parse_formula "forall x. q(x) -> p(x)" }
let was_q = { Formula.name = "was_q"; body = parse_formula "prev (exists x. q(x))" }

let supervisor_cases =
  [ Alcotest.test_case "self-heal, then recover to the repaired state" `Quick
      (fun () ->
        let fs = Faults.mem_fs () in
        let sup =
          get_ok "create"
            (Supervisor.create ~fs ~config:repair_config ~state_dir:"sd" cat
               [ q_in_p ])
        in
        (match
           get_ok "step 1" (Supervisor.step sup ~time:1 [ Update.insert "q" [ i 5 ] ])
         with
         | Supervisor.Repaired r ->
           Alcotest.(check int) "one action" 1 (List.length r.actions);
           (match r.witnesses with
            | [ (_, by) ] -> Alcotest.(check string) "founded" "q_in_p" by
            | _ -> Alcotest.fail "expected one witness");
           (match r.repaired with
            | [ rep ] ->
              Alcotest.(check string) "healed" "q_in_p"
                rep.Monitor.constraint_name
            | _ -> Alcotest.fail "expected one healed report")
         | _ -> Alcotest.fail "expected Repaired");
        (* the healed state holds: no violation is pending *)
        (match
           get_ok "step 2" (Supervisor.step sup ~time:2 [ Update.insert "p" [ i 7 ] ])
         with
         | Supervisor.Checked { reports = []; _ } -> ()
         | _ -> Alcotest.fail "expected a clean Checked");
        (* recovery replays the repaired transaction as one WAL record *)
        let sup2, info =
          get_ok "recover"
            (Supervisor.recover ~fs ~config:repair_config ~state_dir:"sd" cat
               [ q_in_p ])
        in
        Alcotest.(check int) "steps survive" (Supervisor.steps sup)
          (Supervisor.steps sup2);
        Alcotest.(check bool) "replay is silent" true
          (info.Supervisor.replay_reports = []);
        Alcotest.(check bool) "identical repaired state" true
          (Database.equal (Supervisor.database sup) (Supervisor.database sup2)));
    Alcotest.test_case "unrepairable reports stand; the service continues"
      `Quick (fun () ->
        let fs = Faults.mem_fs () in
        let sup =
          get_ok "create"
            (Supervisor.create ~fs ~config:repair_config ~state_dir:"sd" cat
               [ was_q ])
        in
        (match
           get_ok "step 1" (Supervisor.step sup ~time:1 [ Update.insert "p" [ i 1 ] ])
         with
         | Supervisor.Unrepairable u ->
           Alcotest.(check int) "one report" 1 (List.length u.reports);
           (match u.unrepairable with
            | [ (name, offending) ] ->
              Alcotest.(check string) "name" "was_q" name;
              Alcotest.(check string) "offending" "prev (exists x. q(x))"
                offending
            | _ -> Alcotest.fail "expected one unrepairable entry")
         | _ -> Alcotest.fail "expected Unrepairable");
        (* still violated one step later (no q yet in the previous state) *)
        (match
           get_ok "step 2" (Supervisor.step sup ~time:2 [ Update.insert "q" [ i 1 ] ])
         with
         | Supervisor.Unrepairable _ -> ()
         | _ -> Alcotest.fail "expected a second Unrepairable");
        (* ...and satisfied once history provides the witness *)
        (match get_ok "step 3" (Supervisor.step sup ~time:3 []) with
         | Supervisor.Checked { reports = []; _ } -> ()
         | _ -> Alcotest.fail "expected a clean Checked");
        Alcotest.(check int) "all three accepted" 3 (Supervisor.steps sup)) ]

(* ---------------- soundness properties ---------------- *)

(* Deterministic one-op mutations of the current state: delete one existing
   tuple per relation, insert one fresh typed tuple per relation. *)
let mutations db =
  let dcat = Database.catalog db in
  let dels =
    Database.fold
      (fun rel r acc ->
        match Relation.to_list r with
        | t :: _ ->
          (match Update.apply db [ Update.Delete (rel, t) ] with
           | Ok db' -> db' :: acc
           | Error _ -> acc)
        | [] -> acc)
      db []
  in
  let ins =
    Database.fold
      (fun rel _ acc ->
        match Schema.Catalog.find rel dcat with
        | None -> acc
        | Some sch ->
          let fresh =
            Tuple.make
              (List.map
                 (function
                   | Value.TInt -> Value.Int 424242
                   | Value.TStr -> Value.Str "zz-fresh"
                   | Value.TBool -> Value.Bool true
                   | Value.TReal -> Value.Real 42.5)
                 (Array.to_list (Schema.attr_types sch)))
          in
          (match Update.apply db [ Update.Insert (rel, fresh) ] with
           | Ok db' -> db' :: acc
           | Error _ -> acc))
      db []
  in
  dels @ ins

(* Walk a violation-heavy scenario workload with plain functional checkers;
   whenever a transaction violates, run the search on the pre-transaction
   checkers and check the outcome's claim. *)
let sound_on (sc : Scenarios.t) ~seed =
  let tr = sc.Scenarios.generate ~seed ~steps:10 ~violation_rate:0.3 in
  let budget =
    { Repair.max_steps = 2048; max_candidates = 32; max_depth = 2 }
  in
  let checkers0 =
    List.map
      (fun d -> get_ok "checker" (Incremental.create sc.Scenarios.catalog d))
      sc.Scenarios.constraints
  in
  let _ =
    List.fold_left
      (fun (cs, db) (time, txn) ->
        let db' = get_ok "apply" (Update.apply db txn) in
        let stepped =
          List.map (fun c -> get_ok "step" (Incremental.step c ~time db')) cs
        in
        (if List.exists (fun (_, v) -> not v.Incremental.satisfied) stepped
         then
           match get_ok "search" (Repair.search ~budget ~checkers:cs ~time ~txn db') with
           | Repair.Repaired r ->
             (* every constraint holds at [time] on the repaired state *)
             List.iter
               (fun c ->
                 let _, v =
                   get_ok "re-step" (Incremental.step c ~time r.db)
                 in
                 if not v.Incremental.satisfied then
                   failwith "a Repaired state violates a constraint")
               cs;
             if
               not
                 (Database.equal r.db
                    (get_ok "apply repair" (Update.apply db' r.actions)))
             then failwith "Repaired db is not txn state + actions"
           | Repair.Unrepairable us ->
             (* no single-op counterexample repair may flip the verdict *)
             List.iter
               (fun (u : Repair.unrepairable) ->
                 let c =
                   List.find
                     (fun c ->
                       (Incremental.def c).Formula.name
                       = u.Repair.constraint_name)
                     cs
                 in
                 if not (Repair.current_insensitive (Incremental.formula c))
                 then failwith "Unrepairable but not current-insensitive";
                 let _, base =
                   get_ok "probe" (Incremental.step c ~time db')
                 in
                 List.iter
                   (fun mdb ->
                     let _, v =
                       get_ok "probe mutant" (Incremental.step c ~time mdb)
                     in
                     if v.Incremental.satisfied <> base.Incremental.satisfied
                     then failwith "a mutation flipped an Unrepairable verdict")
                   (mutations db'))
               us
           | Repair.Clean -> failwith "Clean on a violating state"
           | Repair.Inconclusive _ -> () (* honest non-answer *));
        (List.map fst stepped, db'))
      (checkers0, tr.Trace.init)
      tr.Trace.steps
  in
  true

let property_cases =
  [ qtest ~count:12 "repairs satisfy, unrepairables admit no counterexample"
      QCheck.(pair small_nat (int_bound (List.length Scenarios.all - 1)))
      (fun (seed, idx) -> sound_on (List.nth Scenarios.all idx) ~seed);
    qtest ~count:60 "current-insensitive verdicts ignore the current state"
      QCheck.small_nat
      (fun seed ->
        let f = Gen.random_formula ~seed ~depth:4 in
        match Incremental.create cat { Formula.name = "s"; body = f } with
        | Error _ -> true (* not monitorable; nothing to check *)
        | Ok c0 when not (Repair.current_insensitive (Incremental.formula c0))
          -> true
        | Ok c0 ->
          let tr =
            Gen.random_trace ~seed:(seed + 5000)
              { Gen.default_params with Gen.steps = 8 }
          in
          let h = get_ok "materialize" (Trace.materialize tr) in
          let _ =
            List.fold_left
              (fun c (time, db) ->
                let c', v = get_ok "step" (Incremental.step c ~time db) in
                List.iter
                  (fun mdb ->
                    let _, v' =
                      get_ok "step mutant" (Incremental.step c ~time mdb)
                    in
                    if v'.Incremental.satisfied <> v.Incremental.satisfied
                    then
                      failwith
                        "a current-state mutation changed an insensitive \
                         verdict")
                  (mutations db);
                c')
              c0 (History.snapshots h)
          in
          true) ]

(* ---------------- the chaos drill ---------------- *)

let chaos_cases =
  [ Alcotest.test_case "on-error=repair crash drill (atomic repairs)" `Quick
      (fun () ->
        match Chaos.run_repair ~seed:11 ~iters:6 with
        | Ok eps -> Alcotest.(check int) "episodes" 6 (List.length eps)
        | Error m -> Alcotest.fail m) ]

let suite =
  [ ("repair:classify", classification_cases);
    ("repair:search", search_cases);
    ("repair:supervisor", supervisor_cases);
    ("repair:soundness", property_cases);
    ("repair:chaos", chaos_cases) ]
