(* Run statistics aggregation. *)

open Helpers
module Stats = Rtic_core.Stats

let report name position time = { Monitor.constraint_name = name; position; time }

let unit_cases =
  [ Alcotest.test_case "accumulates" `Quick (fun () ->
        let s = Stats.empty in
        let s = Stats.observe s ~time:3 ~space:5 ~reports:[] in
        let s =
          Stats.observe s ~time:7 ~space:9
            ~reports:[ report "a" 1 7; report "b" 1 7 ]
        in
        let s = Stats.observe s ~time:12 ~space:2 ~reports:[ report "a" 2 12 ] in
        Alcotest.(check int) "transactions" 3 (Stats.transactions s);
        Alcotest.(check int) "violations" 3 (Stats.violations s);
        Alcotest.(check int) "peak space" 9 (Stats.peak_space s);
        Alcotest.(check (option int)) "first" (Some 3) (Stats.first_time s);
        Alcotest.(check (option int)) "last" (Some 12) (Stats.last_time s);
        Alcotest.(check (list (pair string int)))
          "per constraint"
          [ ("a", 2); ("b", 1) ]
          (Stats.violations_by_constraint s);
        Alcotest.(check (float 0.001)) "rate" 1.0 (Stats.violation_rate s));
    Alcotest.test_case "empty is quiet" `Quick (fun () ->
        Alcotest.(check int) "txns" 0 (Stats.transactions Stats.empty);
        Alcotest.(check (float 0.0)) "rate" 0.0
          (Stats.violation_rate Stats.empty);
        Alcotest.(check (option int)) "first" None (Stats.first_time Stats.empty));
    Alcotest.test_case "renders" `Quick (fun () ->
        let s =
          Stats.observe Stats.empty ~time:1 ~space:4
            ~reports:[ report "c" 0 1 ]
        in
        let text = Format.asprintf "%a" Stats.pp s in
        Alcotest.(check bool) "mentions constraint" true
          (String.length text > 0
           && Option.is_some (String.index_opt text 'c'))) ]

(* Statistics over a real monitoring run agree with the report stream. *)
let end_to_end =
  Alcotest.test_case "stats match the monitor's reports" `Quick (fun () ->
      let sc = Scenarios.monitoring in
      let tr = sc.Scenarios.generate ~seed:9 ~steps:100 ~violation_rate:0.2 in
      let m =
        get_ok "create"
          (Monitor.create sc.Scenarios.catalog sc.Scenarios.constraints)
      in
      let _, stats, all_reports =
        List.fold_left
          (fun (m, stats, all) (time, txn) ->
            let m, rs = get_ok "step" (Monitor.step m ~time txn) in
            ( m,
              Stats.observe stats ~time ~space:(Monitor.space m) ~reports:rs,
              all @ rs ))
          (m, Stats.empty, [])
          tr.Trace.steps
      in
      Alcotest.(check int) "violations" (List.length all_reports)
        (Stats.violations stats);
      Alcotest.(check int) "transactions" (Trace.length tr)
        (Stats.transactions stats);
      let by = Stats.violations_by_constraint stats in
      let total = List.fold_left (fun a (_, n) -> a + n) 0 by in
      Alcotest.(check int) "per-constraint sums" (Stats.violations stats) total)

let suite = [ ("stats", unit_cases @ [ end_to_end ]) ]
