(* key / reference declarations: desugaring into monitorable constraints. *)

open Helpers
module Sugar = Rtic_mtl.Sugar
module F = Formula

let cat =
  Schema.Catalog.of_list
    [ Schema.make "emp" [ ("name", Value.TStr); ("sal", Value.TInt);
                          ("dept", Value.TStr) ];
      Schema.make "dept" [ ("dname", Value.TStr); ("head", Value.TStr) ] ]

let desugar_cases =
  [ Alcotest.test_case "key constraint is generated and monitorable" `Quick
      (fun () ->
        let d = get_ok "key" (Sugar.key_constraint cat "emp" [ "name" ]) in
        Alcotest.(check string) "name" "key_emp" d.F.name;
        ignore (get_ok "monitorable" (Safety.monitorable cat d)));
    Alcotest.test_case "reference constraint is generated and monitorable"
      `Quick (fun () ->
        let d =
          get_ok "ref"
            (Sugar.reference_constraint cat "emp" [ "dept" ] "dept" [ "dname" ])
        in
        Alcotest.(check string) "name" "ref_emp_dept" d.F.name;
        ignore (get_ok "monitorable" (Safety.monitorable cat d)));
    Alcotest.test_case "bad declarations rejected" `Quick (fun () ->
        ignore (get_error "unknown rel" (Sugar.key_constraint cat "zzz" [ "a" ]));
        ignore (get_error "unknown attr" (Sugar.key_constraint cat "emp" [ "zzz" ]));
        ignore (get_error "dup attr" (Sugar.key_constraint cat "emp" [ "name"; "name" ]));
        ignore
          (get_error "whole-relation key"
             (Sugar.key_constraint cat "emp" [ "name"; "sal"; "dept" ]));
        ignore
          (get_error "length mismatch"
             (Sugar.reference_constraint cat "emp" [ "dept" ] "dept" []));
        ignore
          (get_error "type mismatch is caught by typecheck"
             (let d =
                Result.get_ok
                  (Sugar.reference_constraint cat "emp" [ "sal" ] "dept"
                     [ "dname" ])
              in
              Typecheck.check_def cat d))) ]

(* semantics: keys catch duplicates, references catch dangling tuples *)
let semantics_cases =
  [ Alcotest.test_case "key violation detected" `Quick (fun () ->
        let d = get_ok "key" (Sugar.key_constraint cat "emp" [ "name" ]) in
        let db = Database.create cat in
        let t1 = Tuple.make [ Value.Str "amy"; Value.Int 1; Value.Str "cs" ] in
        let t2 = Tuple.make [ Value.Str "amy"; Value.Int 2; Value.Str "cs" ] in
        let db1 = get_ok "i1" (Database.insert db "emp" t1) in
        let db2 = get_ok "i2" (Database.insert db1 "emp" t2) in
        let st = get_ok "create" (Incremental.create cat d) in
        let st, v1 = get_ok "s1" (Incremental.step st ~time:1 db1) in
        let _, v2 = get_ok "s2" (Incremental.step st ~time:2 db2) in
        Alcotest.(check (list bool)) "second state violates" [ true; false ]
          [ v1.Incremental.satisfied; v2.Incremental.satisfied ]);
    Alcotest.test_case "reference violation detected" `Quick (fun () ->
        let d =
          get_ok "ref"
            (Sugar.reference_constraint cat "emp" [ "dept" ] "dept" [ "dname" ])
        in
        let db = Database.create cat in
        let db1 =
          get_ok "i1"
            (Database.insert db "dept"
               (Tuple.make [ Value.Str "cs"; Value.Str "amy" ]))
        in
        let db2 =
          get_ok "i2"
            (Database.insert db1 "emp"
               (Tuple.make [ Value.Str "amy"; Value.Int 1; Value.Str "cs" ]))
        in
        let db3 =
          get_ok "i3"
            (Database.insert db2 "emp"
               (Tuple.make [ Value.Str "bob"; Value.Int 1; Value.Str "ee" ]))
        in
        let st = get_ok "create" (Incremental.create cat d) in
        let st, v1 = get_ok "s1" (Incremental.step st ~time:1 db2) in
        let _, v2 = get_ok "s2" (Incremental.step st ~time:2 db3) in
        ignore db1;
        Alcotest.(check (list bool)) "dangling dept violates" [ true; false ]
          [ v1.Incremental.satisfied; v2.Incremental.satisfied ]) ]

let spec_cases =
  [ Alcotest.test_case "declarations in spec files" `Quick (fun () ->
        let spec =
          get_ok "spec"
            (Parser.spec_of_string
               "schema emp(name:str, sal:int, dept:str)\n\
                schema dept(dname:str, head:str)\n\
                key emp(name)\n\
                reference emp(dept) -> dept(dname)\n\
                constraint salary_positive:\n\
               \  forall n, s, d. emp(n, s, d) -> s >= 0 ;")
        in
        Alcotest.(check (list string)) "three constraints"
          [ "key_emp"; "ref_emp_dept"; "salary_positive" ]
          (List.map (fun (d : F.def) -> d.F.name) spec.Parser.defs));
    Alcotest.test_case "declaration errors are located" `Quick (fun () ->
        ignore
          (get_error "unknown rel"
             (Parser.spec_of_string "key emp(name)"));
        ignore
          (get_error "bad arrow"
             (Parser.spec_of_string
                "schema p(a:int)\nreference p(a) p(a)"))) ]

let suite =
  [ ("sugar:desugar", desugar_cases);
    ("sugar:semantics", semantics_cases);
    ("sugar:spec", spec_cases) ]
