(* Behavioural tests of the incremental checker itself: the space bound
   (the paper's theorem), pruning, admission, and the monitor API. *)

open Helpers
module F = Formula

let cat = Gen.generic_catalog

let def name body = { F.name; body = parse_formula body }

let run_steps ?config d snaps =
  List.fold_left
    (fun st (time, db) -> fst (get_ok "step" (Incremental.step st ~time db)))
    (get_ok "create" (Incremental.create ?config cat d))
    snaps

let admission_cases =
  [ Alcotest.test_case "rejects open constraints" `Quick (fun () ->
        ignore
          (get_error "open" (Incremental.create cat (def "c" "p(x)"))));
    Alcotest.test_case "rejects unsafe constraints" `Quick (fun () ->
        ignore
          (get_error "unsafe"
             (Incremental.create cat (def "c" "forall x. not p(x) -> q(x)"))));
    Alcotest.test_case "rejects ill-typed constraints" `Quick (fun () ->
        ignore
          (get_error "ill-typed"
             (Incremental.create cat (def "c" "forall x. p(x) -> r(x)"))));
    Alcotest.test_case "rejects non-increasing time" `Quick (fun () ->
        let st = get_ok "create" (Incremental.create cat (def "c" "e() | not e()")) in
        let db = Database.create cat in
        let st, _ = get_ok "step" (Incremental.step st ~time:4 db) in
        Alcotest.(check bool) "equal time" true
          (Result.is_error (Incremental.step st ~time:4 db));
        Alcotest.(check bool) "past time" true
          (Result.is_error (Incremental.step st ~time:1 db))) ]

(* Feed n states, each carrying a single fresh p-event (inserted at step i,
   gone at step i+1): with a bounded window the auxiliary space must
   stabilize while the unpruned ablation grows with the history. *)
let growing_history n =
  let db0 = Database.create cat in
  let rec go i db acc =
    if i > n then List.rev acc
    else
      let db =
        get_ok "del"
          (Database.delete db "p" (Tuple.make [ Value.Int (i - 1) ]))
      in
      let db =
        get_ok "ins" (Database.insert db "p" (Tuple.make [ Value.Int i ]))
      in
      go (i + 1) db ((i, db) :: acc)
  in
  go 1 db0 []

let space_cases =
  [ Alcotest.test_case "bounded window => bounded space" `Quick (fun () ->
        let d = def "c" "forall x. q(x) -> once[0,10] p(x)" in
        let snaps = growing_history 200 in
        let st = run_steps d snaps in
        (* Only tuples inserted in the last 10 ticks may be remembered:
           at one insert per tick that is at most 11 valuations. *)
        Alcotest.(check bool) "space <= 11"
          true
          (Incremental.space st <= 11);
        Alcotest.(check int) "steps" 200 (Incremental.steps_taken st));
    Alcotest.test_case "ablation grows linearly" `Quick (fun () ->
        let d = def "c" "forall x. q(x) -> once[0,10] p(x)" in
        let snaps = growing_history 200 in
        let st =
          run_steps ~config:{ Incremental.prune = false } d snaps
        in
        (* every p-tuple ever seen is remembered *)
        Alcotest.(check int) "space = 200" 200 (Incremental.space st));
    Alcotest.test_case "unbounded once compresses to one timestamp" `Quick
      (fun () ->
        (* the same tuple is re-inserted every step; with min-compression the
           aux holds a single (valuation, timestamp) pair *)
        let d = def "c" "forall x. q(x) -> once p(x)" in
        let db =
          get_ok "ins"
            (Database.insert (Database.create cat) "p" (Tuple.make [ Value.Int 1 ]))
        in
        let snaps = List.init 50 (fun i -> (i + 1, db)) in
        let st = run_steps d snaps in
        Alcotest.(check int) "one pair" 1 (Incremental.space st));
    Alcotest.test_case "space_detail names subformulas" `Quick (fun () ->
        let d = def "c" "forall x. q(x) -> once[0,10] p(x) & prev p(x)" in
        let st = run_steps d (growing_history 5) in
        let detail = Incremental.space_detail st in
        Alcotest.(check int) "two temporal nodes" 2 (List.length detail);
        Alcotest.(check bool) "sums to space" true
          (List.fold_left (fun a (_, n) -> a + n) 0 detail = Incremental.space st)) ]

let monitor_cases =
  [ Alcotest.test_case "reports carry names, positions, times" `Quick (fun () ->
        let defs =
          [ def "no_p" "not (exists x. p(x))"; def "has_e" "e()" ]
        in
        let tr =
          trace_of_text (generic_schemas ^ "@2\n+e()\n@5\n+p(1)\n@9\n-e()\n")
        in
        let reports = get_ok "run" (Monitor.run_trace defs tr) in
        let show r =
          Format.asprintf "%a" Monitor.pp_report r
        in
        Alcotest.(check (list string)) "reports"
          [ "[5] constraint no_p violated at position 1";
            "[9] constraint no_p violated at position 2";
            "[9] constraint has_e violated at position 2" ]
          (List.map show reports));
    Alcotest.test_case "duplicate names rejected" `Quick (fun () ->
        ignore
          (get_error "dup"
             (Monitor.create cat [ def "c" "e()"; def "c" "not e()" ])));
    Alcotest.test_case "bad transaction rejected, state unchanged" `Quick
      (fun () ->
        let m = get_ok "create" (Monitor.create cat [ def "c" "true" ]) in
        let r =
          Monitor.step m ~time:1 [ Update.insert "zzz" [ Value.Int 1 ] ]
        in
        Alcotest.(check bool) "error" true (Result.is_error r));
    Alcotest.test_case "monitor space aggregates checkers" `Quick (fun () ->
        let defs =
          [ def "a" "forall x. q(x) -> once[0,5] p(x)";
            def "b" "forall x. q(x) -> once[0,5] p(x)" ]
        in
        let m = get_ok "create" (Monitor.create cat defs) in
        let m, _ =
          get_ok "step"
            (Monitor.step m ~time:1 [ Update.insert "p" [ Value.Int 1 ] ])
        in
        Alcotest.(check int) "two checkers, one pair each" 2 (Monitor.space m)) ]

(* The incremental checker must not care how a state was reached: a state
   rebuilt from scratch by inserting the same tuples gives the same
   verdicts as the state produced by the original update path. *)
let path_independence =
  qtest ~count:60 "verdicts depend only on snapshot contents"
    QCheck.small_nat
    (fun seed ->
      let tr = Gen.random_trace ~seed { Gen.default_params with steps = 30 } in
      let h = get_ok "m" (Trace.materialize tr) in
      let f = Gen.random_formula ~seed:(seed * 3) ~depth:2 in
      let rebuild db =
        Database.fold
          (fun name r acc ->
            Relation.fold
              (fun t acc -> get_ok "ins" (Database.insert acc name t))
              r acc)
          db (Database.create cat)
      in
      let verdicts snaps =
        let d = { F.name = "t"; body = f } in
        let st = get_ok "create" (Incremental.create cat d) in
        let _, acc =
          List.fold_left
            (fun (st, acc) (time, db) ->
              let st, v = get_ok "step" (Incremental.step st ~time db) in
              (st, v.Incremental.satisfied :: acc))
            (st, []) snaps
        in
        List.rev acc
      in
      let originals = History.snapshots h in
      let rebuilt = List.map (fun (t, db) -> (t, rebuild db)) originals in
      verdicts originals = verdicts rebuilt)

let suite =
  [ ("checker:admission", admission_cases);
    ("checker:space", space_cases);
    ("checker:monitor", monitor_cases);
    ("checker:path", [ path_independence ]) ]
