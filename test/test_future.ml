(* The bounded-future extension: verdict-delay monitoring must agree with
   the naive finite-trace semantics, and the buffer must stay bounded. *)

open Helpers
module Future = Rtic_core.Future
module F = Formula

let cat = Gen.generic_catalog

(* Run the Future monitor over a history; returns (index, satisfied) pairs in
   order, concatenating step verdicts and the finish flush. *)
let future_verdicts cat f h =
  let d = { F.name = "t"; body = f } in
  let st = get_ok "create" (Future.create cat d) in
  let st, out =
    List.fold_left
      (fun (st, out) (time, db) ->
        let st, vs = get_ok "step" (Future.step st ~time db) in
        (st, out @ vs))
      (st, [])
      (History.snapshots h)
  in
  out @ Future.finish st
  |> List.map (fun v -> (v.Future.index, v.Future.satisfied))

(* Handcrafted: t=0 {}, t=2 {e}, t=5 {}, t=6 {e}. *)
let h4 () = generic_history "@0\n@2\n+e()\n@5\n-e()\n@6\n+e()\n"

let semantics_cases =
  [ Alcotest.test_case "eventually" `Quick (fun () ->
        (* eventually[0,3] e(): pos0 (t0): e at t2 d2 <=3 -> T.
           pos1 (t2): e now -> T. pos2 (t5): e at t6 d1 -> T.
           pos3 (t6): e now -> T. *)
        Alcotest.(check (list (pair int bool)))
          "vector"
          [ (0, true); (1, true); (2, true); (3, true) ]
          (future_verdicts cat (parse_formula "eventually[0,3] e()") (h4 ())));
    Alcotest.test_case "eventually-narrow" `Quick (fun () ->
        (* eventually[3,4] e(): pos0: states at d in [3,4]? t2 no... none -> F.
           pos1 (t2): t5 d3 in [3,4], no e at t5; t6 d4, e -> T.
           pos2 (t5): no state in [8,9] -> F. pos3: none -> F. *)
        Alcotest.(check (list (pair int bool)))
          "vector"
          [ (0, false); (1, true); (2, false); (3, false) ]
          (future_verdicts cat (parse_formula "eventually[3,4] e()") (h4 ())));
    Alcotest.test_case "next" `Quick (fun () ->
        (* next[0,2] e(): pos0: gap 2, e at t2 -> T. pos1: gap 3 > 2 -> F.
           pos2: gap 1, e at t6 -> T. pos3: no next -> F. *)
        Alcotest.(check (list (pair int bool)))
          "vector"
          [ (0, true); (1, false); (2, true); (3, false) ]
          (future_verdicts cat (parse_formula "next[0,2] e()") (h4 ())));
    Alcotest.test_case "always" `Quick (fun () ->
        (* always[0,4] (not e()): pos0 (t0): states t0..t4: t2 has e -> F.
           pos1 (t2): t2 has e -> F. pos2 (t5): t5,t6: t6 has e -> F.
           pos3 (t6): t6 has e -> F. *)
        Alcotest.(check (list (pair int bool)))
          "vector"
          [ (0, false); (1, false); (2, false); (3, false) ]
          (future_verdicts cat (parse_formula "always[0,4] (not e())") (h4 ())));
    Alcotest.test_case "until with witness" `Quick (fun () ->
        (* (not e()) until[1,6] e() at pos0 (t0): witness e at t2, d2 in
           [1,6], not-e at k in [0, that): t0 ok -> T.
           pos2 (t5): witness t6 d1, not-e at t5 ok -> T. *)
        let v = future_verdicts cat (parse_formula "(not e()) until[1,6] e()") (h4 ()) in
        Alcotest.(check (pair int bool)) "pos0" (0, true) (List.nth v 0);
        Alcotest.(check (pair int bool)) "pos2" (2, true) (List.nth v 2));
    Alcotest.test_case "past and future mixed" `Quick (fun () ->
        (* once[0,2] e() -> eventually[1,4] e():
           pos0: premise F -> T. pos1 (t2): premise T (e now); witness e at
           t6 d4 -> T. pos2 (t5): premise: e at t2? d3 > 2... no e in
           [3,5] -> wait e at t2 distance 3 — premise F -> T.
           Actually once[0,2] at t5 looks at t>=3: t5 itself no e -> F
           premise -> T. pos3 (t6): premise T (e now); eventually[1,4]: no
           later state -> F. *)
        Alcotest.(check (list (pair int bool)))
          "vector"
          [ (0, true); (1, true); (2, true); (3, false) ]
          (future_verdicts cat
             (parse_formula "once[0,2] e() -> eventually[1,4] e()")
             (h4 ()))) ]

let admission_cases =
  [ Alcotest.test_case "rejects unbounded past" `Quick (fun () ->
        ignore
          (get_error "unbounded past"
             (Future.create cat
                { F.name = "c"; body = parse_formula "once e() -> true" })));
    Alcotest.test_case "rejects unbounded future via checker" `Quick (fun () ->
        (* an unbounded until cannot even be written with [l,inf]? It can.
           Verify it is rejected. *)
        ignore
          (get_error "unbounded future"
             (Future.create cat
                { F.name = "c"; body = parse_formula "e() until[0,inf] e()" })));
    Alcotest.test_case "incremental rejects future operators" `Quick (fun () ->
        ignore
          (get_error "future in past checker"
             (Incremental.create cat
                { F.name = "c"; body = parse_formula "eventually[0,3] e()" })));
    Alcotest.test_case "horizon computed" `Quick (fun () ->
        let st =
          get_ok "create"
            (Future.create cat
               { F.name = "c";
                 body = parse_formula "eventually[0,3] next[0,4] e()" })
        in
        Alcotest.(check int) "3+4" 7 (Future.horizon st)) ]

(* Agreement with the naive finite-trace semantics on random bounded
   formulas: every decided verdict matches, and after [finish] all
   positions are decided. *)
let agreement =
  qtest ~count:120 "future monitor = naive finite-trace semantics"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, tseed) ->
      let f = Gen.random_bounded_future_formula ~seed:fseed ~depth:4 in
      let tr =
        Gen.random_trace ~seed:tseed { Gen.default_params with steps = 30 }
      in
      let h = get_ok "m" (Trace.materialize tr) in
      let expected =
        List.mapi (fun i b -> (i, b)) (naive_vector h f)
      in
      future_verdicts cat f h = expected)

let buffer_bound =
  Alcotest.test_case "buffer stays within the window" `Quick (fun () ->
      let d =
        { F.name = "c";
          body = parse_formula "once[0,5] e() -> eventually[0,4] e()" }
      in
      let st = get_ok "create" (Future.create cat d) in
      let db = Database.create cat in
      let final =
        List.fold_left
          (fun st time ->
            let st, _ = get_ok "step" (Future.step st ~time db) in
            (* past 5 + horizon 4: at 1 tick per step at most ~11 states
               can be relevant at any point *)
            Alcotest.(check bool) "bounded buffer" true
              (Future.buffered_states st <= 12);
            st)
          st
          (List.init 300 (fun i -> i + 1))
      in
      Alcotest.(check int) "nothing pending at the end beyond horizon" 4
        (List.length (Future.finish final)))

let suite =
  [ ("future:semantics", semantics_cases);
    ("future:admission", admission_cases);
    ("future:agreement", [ agreement ]);
    ("future:buffer", [ buffer_bound ]) ]
