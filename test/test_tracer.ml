(* The tracing subsystem: Tracer's rtic-trace/1 stream and Profile's
   aggregation.

   The load-bearing properties: every emitted stream is a well-formed
   LIFO span forest (closes match the innermost open, children nest
   within their parents, exactly one root span per transaction), and
   Profile's self-time attribution conserves time exactly (the rows'
   self_ns sum to the root spans' total duration). *)

open Helpers
module Tracer = Rtic_core.Tracer
module Profile = Rtic_core.Profile
module Metrics = Rtic_core.Metrics
module Supervisor = Rtic_core.Supervisor
module Faults = Rtic_core.Faults

(* A tracer writing into a buffer on a deterministic clock (1us per
   reading), so tests see exact timestamps. *)
let buffer_tracer () =
  let buf = Buffer.create 4096 in
  let c = ref 0.0 in
  let clock () =
    c := !c +. 1e-6;
    !c
  in
  let t =
    Tracer.create ~clock
      ~emit:(fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      ()
  in
  (t, buf)

let parse_ok text = get_ok "parse trace stream" (Profile.parse_events text)
let profile_ok text = get_ok "profile" (Profile.of_string text)

let find_row p cat name =
  List.find_opt
    (fun (r : Profile.row) -> r.cat = cat && r.name = name)
    (Profile.rows p)

let row_exn what p cat name =
  match find_row p cat name with
  | Some r -> r
  | None -> Alcotest.failf "%s: no row (%s, %s)" what cat name

(* Root-span durations, by replaying opens/closes with a depth counter. *)
let root_durations events =
  let rec go depth open_at acc = function
    | [] -> List.rev acc
    | (e : Profile.event) :: rest ->
      (match e.ev with
       | `Point -> go depth open_at acc rest
       | `Open ->
         if depth = 0 then go 1 e.t_ns acc rest
         else go (depth + 1) open_at acc rest
       | `Close ->
         if depth = 1 then go 0 0 ((e.t_ns - open_at) :: acc) rest
         else go (depth - 1) open_at acc rest)
  in
  go 0 0 [] events

(* -- Tracer stream shape ----------------------------------------------- *)

let span_nesting () =
  let t, buf = buffer_tracer () in
  Tracer.span (Some t) ~cat:"txn" ~arg:"5" (fun () ->
      Tracer.span (Some t) ~cat:"apply" (fun () -> ());
      Tracer.span (Some t) ~cat:"constraint" ~name:"c" (fun () ->
          Tracer.span (Some t) ~cat:"node" ~name:"n" (fun () -> ())));
  Tracer.point (Some t) ~cat:"supervisor" ~name:"degraded" ~arg:"why" ();
  let p = profile_ok (Buffer.contents buf) in
  Alcotest.(check int) "spans" 4 (Profile.spans p);
  Alcotest.(check int) "points" 1 (Profile.points p);
  Alcotest.(check int) "unclosed" 0 (Profile.unclosed p);
  Alcotest.(check int) "events" 9 (Profile.events p);
  let txn = row_exn "txn" p "txn" "" in
  Alcotest.(check int) "txn count" 1 txn.count;
  (* deterministic clock: every span closes 2 readings after it opens
     except txn (8 readings inside), and self partitions the root. *)
  let sum_self =
    List.fold_left (fun a (r : Profile.row) -> a + r.self_ns) 0
      (Profile.rows p)
  in
  Alcotest.(check int) "conservation" txn.total_ns sum_self

let disabled_tracer_is_noop () =
  (* The None path must not emit or allocate a stream at all. *)
  let hits = ref 0 in
  let r = Tracer.span None ~cat:"txn" (fun () -> incr hits; 42) in
  Tracer.point None ~cat:"supervisor" ();
  Alcotest.(check int) "body ran" 1 !hits;
  Alcotest.(check int) "value through" 42 r

let span_closes_on_exception () =
  let t, buf = buffer_tracer () in
  (try
     Tracer.span (Some t) ~cat:"txn" (fun () ->
         Tracer.span (Some t) ~cat:"constraint" ~name:"c" (fun () ->
             failwith "boom"))
   with Failure _ -> ());
  let p = profile_ok (Buffer.contents buf) in
  Alcotest.(check int) "all spans closed" 0 (Profile.unclosed p);
  Alcotest.(check int) "both spans present" 2 (Profile.spans p)

(* -- Engine integration ------------------------------------------------ *)

let monitor_emits_txn_forest () =
  let spec =
    "constraint c1: forall x. q(x) -> once[0,20] p(x) ;\n\
     constraint c2: forall x. q(x) -> once[0,5] p(x) ;"
  in
  let defs =
    List.map
      (fun src -> get_ok "def" (Parser.def_of_string src))
      (String.split_on_char '\n' spec |> List.filter (fun s -> s <> ""))
  in
  let tr =
    Gen.random_trace ~seed:3 { Gen.default_params with steps = 12 }
  in
  let t, buf = buffer_tracer () in
  let _ = get_ok "run" (Monitor.run_trace ~tracer:t defs tr) in
  let events = parse_ok (Buffer.contents buf) in
  let p = get_ok "profile" (Profile.of_events events) in
  Alcotest.(check int) "no unclosed spans" 0 (Profile.unclosed p);
  let txn = row_exn "txn row" p "txn" "" in
  Alcotest.(check int) "one root span per transaction"
    (List.length tr.Trace.steps) txn.count;
  Alcotest.(check int) "same count of apply spans"
    (List.length tr.Trace.steps)
    (row_exn "apply row" p "apply" "").count;
  List.iter
    (fun name ->
      Alcotest.(check int)
        ("constraint " ^ name ^ " evaluated once per txn")
        (List.length tr.Trace.steps)
        (row_exn "constraint row" p "constraint" name).count)
    [ "c1"; "c2" ]

let supervisor_traces_durability () =
  let d = get_ok "def" (Parser.def_of_string
    "constraint c: forall x. q(x) -> once[0,20] p(x) ;") in
  let tr = Gen.random_trace ~seed:5 { Gen.default_params with steps = 6 } in
  let t, buf = buffer_tracer () in
  let fs = Faults.mem_fs () in
  let sup =
    get_ok "create"
      (Supervisor.create ~fs ~tracer:t
         ~config:{ Supervisor.default_config with auto_checkpoint = 2 }
         ~init:tr.Trace.init ~state_dir:"state" Gen.generic_catalog [ d ])
  in
  List.iter
    (fun (time, txn) -> ignore (get_ok "step" (Supervisor.step sup ~time txn)))
    tr.Trace.steps;
  let p = profile_ok (Buffer.contents buf) in
  Alcotest.(check int) "unclosed" 0 (Profile.unclosed p);
  Alcotest.(check int) "one wal append per accepted txn"
    (List.length tr.Trace.steps)
    (row_exn "wal" p "wal" "append").count;
  (* the initial snapshot create writes, plus one every 2 accepted txns *)
  Alcotest.(check int) "auto-checkpoint every 2 txns"
    (1 + (List.length tr.Trace.steps / 2))
    (row_exn "checkpoint" p "checkpoint" "write").count

(* -- The stream property ----------------------------------------------- *)

(* Validate the raw event stream invariants directly (not via Profile):
   ids unique and increasing, timestamps monotone, every close matches
   the innermost open, every open closes, opens record the then-innermost
   span as parent, and root spans are exactly the txn spans. *)
let well_formed_stream events ~txns =
  let seen_ids = Hashtbl.create 64 in
  let ok = ref true in
  let check b = if not b then ok := false in
  let last_t = ref min_int in
  let last_id = ref (-1) in
  let roots = ref 0 in
  let rec go stack = function
    | [] -> check (stack = [])
    | (e : Profile.event) :: rest ->
      check (e.t_ns >= !last_t);
      last_t := e.t_ns;
      (match e.ev with
       | `Open | `Point ->
         check (not (Hashtbl.mem seen_ids e.id));
         Hashtbl.replace seen_ids e.id ();
         check (e.id > !last_id);
         last_id := e.id;
         check
           (e.parent
           = match stack with [] -> None | (id, _) :: _ -> Some id);
         (match e.ev with
          | `Open ->
            if stack = [] then begin
              incr roots;
              check (e.cat = "txn")
            end;
            go ((e.id, e.cat) :: stack) rest
          | _ -> go stack rest)
       | `Close ->
         (match stack with
          | (id, _) :: stack' ->
            check (id = e.id);
            go stack' rest
          | [] -> check false))
  in
  go [] events;
  !ok && !roots = txns

let stream_property =
  qtest ~count:60 "every emitted stream is a well-formed span forest"
    QCheck.small_nat
    (fun seed ->
      let d =
        match Parser.def_of_string
                "constraint c: forall x. q(x) -> once[0,10] p(x) ;"
        with
        | Ok d -> d
        | Error m -> failwith m
      in
      let tr =
        Gen.random_trace ~seed { Gen.default_params with steps = 10 }
      in
      let t, buf = buffer_tracer () in
      (match Monitor.run_trace ~tracer:t [ d ] tr with
       | Ok _ -> ()
       | Error m -> failwith m);
      let events =
        match Profile.parse_events (Buffer.contents buf) with
        | Ok es -> es
        | Error m -> failwith m
      in
      let p =
        match Profile.of_events events with
        | Ok p -> p
        | Error m -> failwith m
      in
      let sum_self =
        List.fold_left (fun a (r : Profile.row) -> a + r.self_ns) 0
          (Profile.rows p)
      in
      let roots = root_durations events in
      well_formed_stream events ~txns:(List.length tr.Trace.steps)
      && Profile.unclosed p = 0
      && sum_self = List.fold_left ( + ) 0 roots)

(* -- Profile aggregation on a hand-written stream ---------------------- *)

let hand_trace =
  {|{"schema":"rtic-trace/1"}
{"ev":"open","id":0,"parent":null,"cat":"txn","arg":"5","t_ns":0}
{"ev":"open","id":1,"parent":0,"cat":"constraint","name":"c","t_ns":20}
{"ev":"close","id":1,"t_ns":50}
{"ev":"close","id":0,"t_ns":70}
{"ev":"point","id":2,"parent":null,"cat":"supervisor","name":"quarantine","arg":"c","t_ns":80}
|}

let profile_aggregation () =
  let p = profile_ok hand_trace in
  Alcotest.(check int) "events" 5 (Profile.events p);
  Alcotest.(check int) "spans" 2 (Profile.spans p);
  Alcotest.(check int) "points" 1 (Profile.points p);
  let txn = row_exn "txn" p "txn" "" in
  Alcotest.(check int) "txn total" 70 txn.total_ns;
  Alcotest.(check int) "txn self excludes the child" 40 txn.self_ns;
  let c = row_exn "c" p "constraint" "c" in
  Alcotest.(check int) "constraint total" 30 c.total_ns;
  Alcotest.(check int) "constraint self" 30 c.self_ns;
  let q = row_exn "quarantine" p "supervisor" "quarantine" in
  Alcotest.(check int) "points count but take no time" 0 q.total_ns;
  Alcotest.(check int) "point count" 1 q.count

let profile_collapsed () =
  let p = profile_ok hand_trace in
  Alcotest.(check string) "collapsed stacks"
    "txn 40\ntxn;constraint:c 30\n"
    (Profile.to_collapsed p)

let profile_json_shape () =
  let p = profile_ok hand_trace in
  let j = Profile.to_json p in
  let module Json = Rtic_core.Json in
  Alcotest.(check (option string)) "schema" (Some "rtic-profile/1")
    (Option.bind (Json.member "schema" j) Json.to_str);
  match Option.bind (Json.member "rows" j) Json.to_list with
  | Some rows -> Alcotest.(check int) "row count" 3 (List.length rows)
  | None -> Alcotest.fail "rows missing"

let profile_errors () =
  let err = get_error "mismatched close"
      (Profile.of_string
         {|{"ev":"open","id":0,"parent":null,"cat":"txn","t_ns":0}
{"ev":"open","id":1,"parent":0,"cat":"apply","t_ns":1}
{"ev":"close","id":0,"t_ns":2}
|})
  in
  Alcotest.(check bool) "names the offending span"
    true
    (String.length err > 0);
  let err =
    get_error "foreign schema"
      (Profile.parse_events {|{"schema":"rtic-stats/1"}|})
  in
  Alcotest.(check bool) "line number in parse errors" true
    (String.length err >= 12 && String.sub err 0 12 = "trace line 1");
  (* truncated capture: unclosed spans are counted, not errors *)
  let p =
    profile_ok
      {|{"ev":"open","id":0,"parent":null,"cat":"txn","t_ns":0}
{"ev":"open","id":1,"parent":0,"cat":"apply","t_ns":1}
{"ev":"close","id":1,"t_ns":3}
|}
  in
  Alcotest.(check int) "unclosed counted" 1 (Profile.unclosed p);
  let txn = find_row p "txn" "" in
  Alcotest.(check bool) "unclosed span contributes no row" true (txn = None)

let suite =
  [ ( "tracer",
      [ Alcotest.test_case "span nesting and conservation" `Quick span_nesting;
        Alcotest.test_case "disabled tracer is a no-op" `Quick
          disabled_tracer_is_noop;
        Alcotest.test_case "spans close on exception" `Quick
          span_closes_on_exception;
        Alcotest.test_case "monitor emits one txn root per transaction" `Quick
          monitor_emits_txn_forest;
        Alcotest.test_case "supervisor traces WAL and checkpoints" `Quick
          supervisor_traces_durability;
        stream_property ] );
    ( "profile",
      [ Alcotest.test_case "aggregation" `Quick profile_aggregation;
        Alcotest.test_case "collapsed stacks" `Quick profile_collapsed;
        Alcotest.test_case "json document" `Quick profile_json_shape;
        Alcotest.test_case "errors and truncation" `Quick profile_errors ] ) ]
