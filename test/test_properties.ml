(* Cross-cutting property tests: serialization fuzz round-trips, update
   inversion, interval algebra, closure sharing, and monitor/trace
   invariants that do not belong to any single module's suite. *)

open Helpers

(* -- Trace/Textio fuzz ------------------------------------------------- *)

let trace_roundtrip =
  qtest ~count:150 "trace to_string/parse preserves materialization"
    QCheck.small_nat
    (fun seed ->
      let tr =
        Gen.random_trace ~seed
          { Gen.default_params with steps = 15; txn_size = 4 }
      in
      let tr' = get_ok "reparse" (Trace.parse (Trace.to_string tr)) in
      let h = get_ok "m1" (Trace.materialize tr) in
      let h' = get_ok "m2" (Trace.materialize tr') in
      History.length h = History.length h'
      && List.for_all2
           (fun (t, d) (t', d') -> t = t' && Database.equal d d')
           (History.snapshots h) (History.snapshots h'))

let db_dump_roundtrip =
  qtest ~count:150 "database dump/parse round-trips"
    QCheck.small_nat
    (fun seed ->
      let tr = Gen.random_trace ~seed { Gen.default_params with steps = 10 } in
      let h = get_ok "m" (Trace.materialize tr) in
      let db = History.db h (History.last h) in
      let db' = get_ok "parse" (Textio.parse_database (Textio.dump_database db)) in
      Database.equal db db')

(* -- Updates ----------------------------------------------------------- *)

let update_inversion =
  qtest ~count:150 "applying a transaction then its inverse restores the state"
    QCheck.small_nat
    (fun seed ->
      let tr = Gen.random_trace ~seed { Gen.default_params with steps = 8 } in
      let h = get_ok "m" (Trace.materialize tr) in
      let db = History.db h (History.last h) in
      (* Build a random insert-only transaction of fresh tuples, apply it,
         invert it, and check we are back. (Inversion of a delete of an
         absent tuple would not round-trip, so use fresh inserts.) *)
      let rng = Random.State.make [| seed; 77 |] in
      let txn =
        List.init 4 (fun i ->
            Update.insert "r"
              [ Value.Int (1000 + i); Value.Int (Random.State.int rng 5) ])
      in
      let db' = get_ok "apply" (Update.apply db txn) in
      let db'' =
        get_ok "invert" (Update.apply db' (List.rev_map Update.invert txn))
      in
      Database.equal db db'')

(* -- Intervals --------------------------------------------------------- *)

let interval_gen =
  QCheck.make
    QCheck.Gen.(
      oneof
        [ map2 (fun l w -> Interval.bounded l (l + w)) (int_bound 10) (int_bound 10);
          map (fun l -> Interval.unbounded l) (int_bound 10) ])

let interval_laws =
  [ qtest ~count:300 "inter is the conjunction of memberships"
      QCheck.(pair (pair interval_gen interval_gen) (int_bound 30))
      (fun ((a, b), d) ->
        let both = Interval.mem d a && Interval.mem d b in
        match Interval.inter a b with
        | Some i -> Interval.mem d i = both
        | None -> not both);
    qtest ~count:300 "hull contains both arguments"
      QCheck.(pair (pair interval_gen interval_gen) (int_bound 30))
      (fun ((a, b), d) ->
        let h = Interval.hull a b in
        (not (Interval.mem d a || Interval.mem d b)) || Interval.mem d h);
    qtest ~count:300 "shift preserves width for positive shifts"
      QCheck.(pair interval_gen (int_bound 10))
      (fun (a, k) ->
        Interval.width (Interval.shift k a) = Interval.width a) ]

(* -- Closure ----------------------------------------------------------- *)

let closure_sharing =
  qtest ~count:150 "closure size <= temporal_count, children first"
    QCheck.small_nat
    (fun seed ->
      let f = Rewrite.normalize (Gen.random_formula ~seed ~depth:4) in
      let c = Closure.build f in
      let nodes = Closure.nodes c in
      Closure.count c <= Formula.temporal_count f
      && Array.for_all
           (fun n ->
             (* every temporal subformula strictly inside n has a smaller id *)
             let my_id = Closure.id_exn c n in
             let rec subs acc g =
               match (g : Formula.t) with
               | Prev (_, a) | Once (_, a) -> a :: acc
               | Since (_, a, b) -> a :: b :: acc
               | Not a | Exists (_, a) -> subs acc a
               | And (a, b) | Or (a, b) -> subs (subs acc a) b
               | _ -> acc
             in
             List.for_all
               (fun sub ->
                 match Closure.id c sub with
                 | Some i -> i < my_id
                 | None ->
                   (* non-temporal child: its own temporal descendants must
                      still be smaller *)
                   true)
               (subs [] n))
           nodes)

(* -- Monitor ----------------------------------------------------------- *)

let monitor_positions_increase =
  qtest ~count:60 "report positions are non-decreasing and in range"
    QCheck.small_nat
    (fun seed ->
      let sc = Scenarios.library in
      let tr = sc.Scenarios.generate ~seed ~steps:50 ~violation_rate:0.4 in
      let reports =
        get_ok "run" (Monitor.run_trace sc.Scenarios.constraints tr)
      in
      let rec ordered = function
        | a :: (b :: _ as rest) ->
          a.Monitor.position <= b.Monitor.position && ordered rest
        | _ -> true
      in
      ordered reports
      && List.for_all
           (fun r -> r.Monitor.position >= 0 && r.Monitor.position < 50)
           reports)

(* -- Valrel vs naive coherence ---------------------------------------- *)

let witnesses_satisfy =
  qtest ~count:100 "every witness of an open formula satisfies it when substituted"
    QCheck.(pair small_nat small_nat)
    (fun (fseed, tseed) ->
      let f = Gen.random_open_fo_formula ~seed:fseed ~depth:3 in
      let tr = Gen.random_trace ~seed:tseed { Gen.default_params with steps = 10 } in
      let h = get_ok "m" (Trace.materialize tr) in
      let i = History.last h in
      match Naive.eval h i f with
      | Error _ -> QCheck.assume_fail ()
      | Ok vr ->
        List.for_all
          (fun bindings ->
            let closed = Formula.subst bindings f in
            match Naive.holds_at h i closed with
            | Ok b -> b
            | Error _ -> false)
          (Valrel.bindings vr))

let suite =
  [ ("properties:serialization", [ trace_roundtrip; db_dump_roundtrip ]);
    ("properties:updates", [ update_inversion ]);
    ("properties:intervals", interval_laws);
    ("properties:closure", [ closure_sharing ]);
    ("properties:monitor", [ monitor_positions_increase ]);
    ("properties:witnesses", [ witnesses_satisfy ]) ]
