(* Regression pins for fixed performance and robustness bugs.

   The future monitor's state buffer used to be appended with [buffer @
   [entry]] (quadratic over a run), the scenario builders accumulated
   transactions the same way, and [Faults.real_fs.read_file] trusted
   [in_channel_length] and leaked its channel on error paths. Each fix
   gets a test that fails loudly if the bug comes back: the linearity
   tests time a 5k-element run against a 50k-element one — a linear
   implementation lands near 10x, a quadratic one near 100x, and the 40x
   bound leaves a wide margin for noise (same idiom as the WAL-recovery
   linearity test). *)

open Helpers
module Future = Rtic_core.Future
module Faults = Rtic_core.Faults

let cat = Gen.generic_catalog

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let check_linear what t_small t_big =
  let ratio = t_big /. Float.max t_small 1e-4 in
  if ratio > 40.0 then
    Alcotest.failf
      "10x more %s cost %.0fx the time (%.3fs -> %.3fs): no longer linear"
      what ratio t_small t_big

(* Every step lands inside the horizon, so nothing is ever decidable and
   the buffer grows to [n] states: exactly the regime where a quadratic
   append blows up. *)
let future_cases =
  [ Alcotest.test_case "50k-state buffer growth is linear" `Slow (fun () ->
        let d =
          { Formula.name = "f"; body = parse_formula "eventually[0,1000000] e()" }
        in
        let db = Database.create cat in
        let run n =
          let st = ref (get_ok "create" (Future.create cat d)) in
          for time = 1 to n do
            let st', verdicts = get_ok "step" (Future.step !st ~time db) in
            if verdicts <> [] then
              Alcotest.fail "no verdict should be decidable inside the horizon";
            st := st'
          done;
          Alcotest.(check int) "buffered" n (Future.buffered_states !st);
          Alcotest.(check int) "pending" n (Future.pending !st)
        in
        ignore (timed (fun () -> run 5_000)) (* warm-up *);
        let (), t_small = timed (fun () -> run 5_000) in
        let (), t_big = timed (fun () -> run 50_000) in
        check_linear "buffered states" t_small t_big) ]

let scenario_cases =
  [ Alcotest.test_case "50k-step workload generation is linear" `Slow
      (fun () ->
        let sc = Scenarios.banking in
        let run steps =
          let tr = sc.Scenarios.generate ~seed:5 ~steps ~violation_rate:0.1 in
          Alcotest.(check int) "steps" steps (List.length tr.Trace.steps)
        in
        ignore (timed (fun () -> run 5_000)) (* warm-up *);
        let (), t_small = timed (fun () -> run 5_000) in
        let (), t_big = timed (fun () -> run 50_000) in
        check_linear "workload steps" t_small t_big);
    Alcotest.test_case "50k-step library generation is linear" `Slow
      (fun () ->
        (* the library builder draws a random lendable book per borrow;
           a List.nth + List.length pair there made the draw scan the
           candidate list twice per step *)
        let sc = Scenarios.library in
        let run steps =
          let tr = sc.Scenarios.generate ~seed:5 ~steps ~violation_rate:0.1 in
          Alcotest.(check int) "steps" steps (List.length tr.Trace.steps)
        in
        ignore (timed (fun () -> run 5_000)) (* warm-up *);
        let (), t_small = timed (fun () -> run 5_000) in
        let (), t_big = timed (fun () -> run 50_000) in
        check_linear "library steps" t_small t_big) ]

(* [mem_fs.append_file] used to rebuild the whole file as a fresh string
   per append (read + concatenate + store), so appending n records cost
   O(n^2) bytes copied — exactly the WAL append path the chaos and soak
   sweeps hammer. The Buffer-backed store makes each append amortized
   O(record). *)
let mem_fs_cases =
  [ Alcotest.test_case "50k mem_fs appends are linear" `Slow (fun () ->
        let run n =
          let fs = Faults.mem_fs () in
          get_ok "create" (fs.Faults.write_file "log" "");
          for i = 1 to n do
            get_ok "append"
              (fs.Faults.append_file "log" (Printf.sprintf "record %d\n" i))
          done;
          Alcotest.(check bool) "content present" true
            (String.length (get_ok "read" (fs.Faults.read_file "log")) > n)
        in
        ignore (timed (fun () -> run 5_000)) (* warm-up *);
        let (), t_small = timed (fun () -> run 5_000) in
        let (), t_big = timed (fun () -> run 50_000) in
        check_linear "appended records" t_small t_big) ]

let read_file_cases =
  [ Alcotest.test_case "missing file is an Error, not an exception" `Quick
      (fun () ->
        ignore
          (get_error "missing"
             (Faults.(real_fs.read_file) "no-such-file-anywhere.spec")));
    Alcotest.test_case "directory reads error without leaking channels"
      `Quick (fun () ->
        (* hundreds of failed reads: a leaked fd per failure exhausts the
           default descriptor limit well within this loop *)
        for _ = 1 to 512 do
          ignore (get_error "directory" (Faults.(real_fs.read_file) "."))
        done);
    Alcotest.test_case "special files with length 0 read to end-of-file"
      `Quick (fun () ->
        (* /proc files report size 0; a length-based read returns "" *)
        let path = "/proc/self/cmdline" in
        if Sys.file_exists path then
          Alcotest.(check bool)
            "non-empty" true
            (String.length (get_ok "cmdline" (Faults.(real_fs.read_file) path))
             > 0)) ]

(* The algebra executor used to evaluate [Join] with a nested loop: joining
   two n-row relations on a shared key cost n^2 comparisons. The hash join
   builds an index on the smaller side, so an n-to-n equi-join is
   n log n. *)
let join_cases =
  [ Alcotest.test_case "50k-row equi-join is near-linear" `Slow (fun () ->
        let db = Database.create cat in
        let rel n =
          Relation.of_list 1 (List.init n (fun i -> [| Value.Int i |]))
        in
        let run (a, b) =
          let r =
            get_ok "join"
              (Algebra.eval db (Algebra.Join ([ (0, 0) ], Const a, Const b)))
          in
          Alcotest.(check int) "rows" (Relation.cardinal a)
            (Relation.cardinal r)
        in
        let small = (rel 5_000, rel 5_000) in
        let big = (rel 50_000, rel 50_000) in
        ignore (timed (fun () -> run small)) (* warm-up *);
        let (), t_small = timed (fun () -> run small) in
        let (), t_big = timed (fun () -> run big) in
        check_linear "joined rows" t_small t_big) ]

(* Window pruning used to [filter] every row's full timestamp set on every
   step. With one hot row and a window wide enough that nothing expires,
   that filter alone made a run quadratic; the [split]-based prune with its
   min-element fast path leaves each no-op step at O(log n). *)
let prune_cases =
  [ Alcotest.test_case "50k-step wide-window monitoring is linear" `Slow
      (fun () ->
        let d =
          { Formula.name = "w";
            body = parse_formula "exists x. once[0,100000000] p(x)" }
        in
        let db =
          get_ok "ins"
            (Database.insert (Database.create cat) "p"
               (Tuple.make [ Value.Int 0 ]))
        in
        let run n =
          let st = ref (get_ok "create" (Incremental.create cat d)) in
          for time = 1 to n do
            let st', v = get_ok "step" (Incremental.step !st ~time db) in
            if not v.Incremental.satisfied then
              Alcotest.fail "p(0) holds at every step";
            st := st'
          done
        in
        ignore (timed (fun () -> run 5_000)) (* warm-up *);
        let (), t_small = timed (fun () -> run 5_000) in
        let (), t_big = timed (fun () -> run 50_000) in
        check_linear "monitored steps" t_small t_big) ]

(* Compiling a conjunction used to look each shared column up with a linear
   [index_of] scan per column — quadratic in the schema width. The position
   tables keep wide-schema compilation near-linear. *)
let wide_schema_cases =
  let vars k = List.init k (fun i -> "x" ^ string_of_int i) in
  [ Alcotest.test_case "2000-column join compiles in near-linear time" `Slow
      (fun () ->
        let compile k =
          let attrs = List.map (fun v -> (v, Value.TInt)) (vars k) in
          let wide_cat =
            Schema.Catalog.of_list
              [ Schema.make "w1" attrs; Schema.make "w2" attrs ]
          in
          let args = List.map (fun v -> Formula.Var v) (vars k) in
          let f = Formula.And (Atom ("w1", args), Atom ("w2", args)) in
          let c = get_ok "compile" (Rtic_eval.Codd.compile wide_cat f) in
          Alcotest.(check int) "cols" k (List.length c.Rtic_eval.Codd.columns)
        in
        ignore (timed (fun () -> compile 200)) (* warm-up *);
        let (), t_small = timed (fun () -> compile 200) in
        let (), t_big = timed (fun () -> compile 2_000) in
        check_linear "schema columns" t_small t_big);
    Alcotest.test_case "5000-column valuation build is near-linear" `Slow
      (fun () ->
        let build k =
          let row = Tuple.make (List.init k (fun i -> Value.Int i)) in
          let vr = Valrel.make (vars k) (List.init 50 (fun _ -> row)) in
          Alcotest.(check int) "rows" 1 (List.length (Valrel.rows vr))
        in
        ignore (timed (fun () -> build 500)) (* warm-up *);
        let (), t_small = timed (fun () -> build 500) in
        let (), t_big = timed (fun () -> build 5_000) in
        check_linear "valuation columns" t_small t_big) ]

let suite =
  [ ("regressions:future-buffer", future_cases);
    ("regressions:scenarios", scenario_cases);
    ("regressions:hash-join", join_cases);
    ("regressions:window-prune", prune_cases);
    ("regressions:wide-schema", wide_schema_cases);
    ("regressions:mem-fs", mem_fs_cases);
    ("regressions:read-file", read_file_cases) ]
