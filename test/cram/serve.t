The rtic serve subcommand: the rtic-serve/1 protocol over stdin/stdout.

A small past-only spec:

  $ cat > tiny.spec <<'EOF'
  > schema p(a:int)
  > schema q(a:int)
  > constraint seen_before:
  >   forall x. q(x) -> once[0,5] p(x) ;
  > EOF

Happy path: greeting, open, transactions (one violating), close, shutdown.
Every request gets exactly one single-line JSON reply, in order:

  $ rtic serve <<'EOF'
  > # comments and blank lines between requests are ignored
  > open s tiny.spec
  > txn s 1 1
  > +p(1)
  > txn s 2 1
  > +q(1)
  > txn s 9 1
  > +q(7)
  > close s
  > shutdown
  > EOF
  {"schema":"rtic-serve/1"}
  {"ok":true,"req":"open","session":"s","constraints":1,"recovered":false,"replayed":0,"steps":0}
  {"ok":true,"req":"txn","session":"s","time":1,"outcome":"checked","reports":[],"inconclusive":[]}
  {"ok":true,"req":"txn","session":"s","time":2,"outcome":"checked","reports":[],"inconclusive":[]}
  {"ok":true,"req":"txn","session":"s","time":9,"outcome":"checked","reports":[{"constraint":"seen_before","position":2,"time":9}],"inconclusive":[]}
  {"ok":true,"req":"close","session":"s","steps":3}
  {"ok":true,"req":"shutdown","sessions_closed":0}

Malformed requests are answered with an error reply, never a crash, and
the stream stays usable; a malformed op line consumes the announced body
so the next request is still parsed as a request:

  $ rtic serve <<'EOF'
  > open s tiny.spec
  > frobnicate s
  > txn s nan 0
  > txn s 1 1
  > not an op line
  > txn s 2 0
  > shutdown
  > EOF
  {"schema":"rtic-serve/1"}
  {"ok":true,"req":"open","session":"s","constraints":1,"recovered":false,"replayed":0,"steps":0}
  {"ok":false,"req":"?","error":"bad-request","message":"unknown request: frobnicate"}
  {"ok":false,"req":"txn","error":"bad-request","message":"time must be an integer: nan"}
  {"ok":false,"req":"txn","error":"bad-request","message":"malformed op line: op line must start with + or -: not an op line"}
  {"ok":true,"req":"txn","session":"s","time":2,"outcome":"checked","reports":[],"inconclusive":[]}
  {"ok":true,"req":"shutdown","sessions_closed":1}

Admission control: with --max-pending 2, a burst arriving in one chunk is
refused past the bound with explicit overloaded replies — still in request
order, never silently dropped (a file redirect makes the whole burst one
read chunk):

  $ cat > burst.txt <<'EOF'
  > stats a
  > stats b
  > stats c
  > shutdown
  > EOF
  $ rtic serve --max-pending 2 < burst.txt
  {"schema":"rtic-serve/1"}
  {"ok":false,"req":"stats","error":"unknown-session","message":"no session named a"}
  {"ok":false,"req":"stats","error":"unknown-session","message":"no session named b"}
  {"ok":false,"req":"stats","error":"overloaded","message":"pending-request queue is full (max-pending 2); retry after the server catches up"}
  {"ok":false,"req":"shutdown","error":"overloaded","message":"pending-request queue is full (max-pending 2); retry after the server catches up"}

Bad usage is rejected before serving:

  $ rtic serve --max-pending 0
  rtic: --max-pending must be at least 1
  [2]

A session opened with on-error=repair self-heals violating transactions
(outcome "repaired", with the committed actions and their foundedness
witnesses) and reports past-anchored violations as "unrepairable"
without halting — the session keeps accepting either way:

  $ cat > heal.spec <<'EOF'
  > schema p(a:int)
  > schema q(a:int)
  > constraint inv: forall x. q(x) -> p(x) ;
  > EOF
  $ cat > past.spec <<'EOF'
  > schema p(a:int)
  > constraint was: prev (exists x. p(x)) ;
  > EOF
  $ rtic serve <<'EOF'
  > open h heal.spec on-error=repair
  > txn h 1 1
  > +q(5)
  > txn h 2 2
  > +q(7)
  > +p(7)
  > open u past.spec on-error=repair
  > txn u 1 1
  > +p(1)
  > txn u 2 0
  > shutdown
  > EOF
  {"schema":"rtic-serve/1"}
  {"ok":true,"req":"open","session":"h","constraints":1,"recovered":false,"replayed":0,"steps":0}
  {"ok":true,"req":"txn","session":"h","time":1,"outcome":"repaired","actions":["-q(5)"],"witnesses":[{"action":"-q(5)","fired_by":"inv"}],"repaired":[{"constraint":"inv","position":0,"time":1}],"inconclusive":[]}
  {"ok":true,"req":"txn","session":"h","time":2,"outcome":"checked","reports":[],"inconclusive":[]}
  {"ok":true,"req":"open","session":"u","constraints":1,"recovered":false,"replayed":0,"steps":0}
  {"ok":true,"req":"txn","session":"u","time":1,"outcome":"unrepairable","reports":[{"constraint":"was","position":0,"time":1}],"unrepairable":[{"constraint":"was","offending":"prev (exists x. p(x))"}],"inconclusive":[]}
  {"ok":true,"req":"txn","session":"u","time":2,"outcome":"checked","reports":[],"inconclusive":[]}
  {"ok":true,"req":"shutdown","sessions_closed":2}
