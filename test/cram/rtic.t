The rtic command-line tool, end to end.

A small spec and trace:

  $ cat > loans.spec <<'EOF'
  > schema member(patron:str)
  > schema borrow(patron:str, book:str)
  > schema return(patron:str, book:str)
  > constraint member_borrow:
  >   forall p, b. borrow(p, b) -> member(p) ;
  > constraint loan_expiry:
  >   not (exists b. ((not (exists q. return(q, b))) since[29,inf]
  >                   (exists p. borrow(p, b)))) ;
  > EOF

  $ cat > loans.trace <<'EOF'
  > schema member(patron:str)
  > schema borrow(patron:str, book:str)
  > schema return(patron:str, book:str)
  > @0
  > +member("ann")
  > @2
  > +borrow("ann", "b1")
  > @3
  > -borrow("ann", "b1")
  > +borrow("zed", "b2")
  > @40
  > -borrow("zed", "b2")
  > EOF

parse reports monitorability and windows:

  $ rtic parse loans.spec
  catalog: 3 relation(s)
    borrow(patron:str, book:str)
    member(patron:str)
    return(patron:str, book:str)
  constraints: 2
  
  constraint member_borrow:
    forall p, b. borrow(p, b) -> member(p)
    normalized:   not (exists p, b. borrow(p, b) & not member(p))
    past window:  0 ticks
    future horizon: 0 (pure past)
  
  constraint loan_expiry:
    not (exists b. not (exists q. return(q, b)) since[29,inf] (exists p. borrow(p, b)))
    normalized:   not (exists b. not (exists q. return(q, b)) since[29,inf] (exists p. borrow(p, b)))
    past window:  unbounded
    future horizon: 0 (pure past)



check finds the two violations (zed is not a member; b2 expires):

  $ rtic check loans.spec loans.trace
  [3] constraint member_borrow violated at position 2
  [40] constraint loan_expiry violated at position 3
  4 transaction(s), 2 violation(s)
  [1]

the three engines agree:

  $ rtic check -q --engine naive loans.spec loans.trace
  4 transaction(s), 2 violation(s)
  [1]
  $ rtic check -q --engine active loans.spec loans.trace
  4 transaction(s), 2 violation(s)
  [1]
  $ rtic check -q --no-prune loans.spec loans.trace
  4 transaction(s), 2 violation(s)
  [1]

--jobs shards the constraint set across a fixed pool of worker domains;
reports, stats and exit codes are identical to the sequential run (only
the wall-clock latency block differs):

  $ rtic check --jobs 4 loans.spec loans.trace
  [3] constraint member_borrow violated at position 2
  [40] constraint loan_expiry violated at position 3
  4 transaction(s), 2 violation(s)
  [1]
  $ rtic check -q --engine shared --jobs 2 loans.spec loans.trace
  4 transaction(s), 2 violation(s)
  [1]
  $ rtic check --json loans.spec loans.trace | sed '/"latency_ns": {/,/}/d' > seq-stats.json
  $ rtic check --json --jobs 4 loans.spec loans.trace | sed '/"latency_ns": {/,/}/d' > par-stats.json
  $ diff seq-stats.json par-stats.json

and the flag is validated:

  $ rtic check --jobs 0 loans.spec loans.trace
  rtic: --jobs must be at least 1
  [2]
  $ rtic check -q --engine naive --jobs 2 loans.spec loans.trace
  rtic: --jobs requires --engine incremental or shared
  [2]

explain names the culprits:

  $ rtic explain loans.spec loans.trace member_borrow
  
  violated at position 2 (time 3)
    witness: b = "b2", p = "zed"
  [1]


rules shows the compiled maintenance rules:

  $ rtic rules loans.spec | head -4
  constraint member_borrow:
  constraint loan_expiry:
    table _aux0(b:str, _ts:int)
    rule maintain__aux0 (for not (exists q. return(q, b)) since[29,inf] (exists p. borrow(p, b))):

gen produces a trace the checker accepts:

  $ rtic gen --scenario monitoring --steps 20 --seed 4 -o m.trace --spec-out m.spec
  $ rtic check -q m.spec m.trace
  20 transaction(s), 0 violation(s)

errors are reported with locations:

  $ cat > bad.spec <<'EOF'
  > schema p(a:int)
  > constraint broken: exists x, y. (p(x) & x < y) ;
  > EOF
  $ rtic parse bad.spec
  catalog: 1 relation(s)
    p(a:int)
  constraints: 1
  
  constraint broken:
    exists x, y. p(x) & x < y
    NOT MONITORABLE: constraint broken is not monitorable: comparison variables not bound by the safe conjuncts: x < y


checkpointing: run the first half, save, resume with the second half:

  $ cat > part1.trace <<'TRACE'
  > schema member(patron:str)
  > schema borrow(patron:str, book:str)
  > schema return(patron:str, book:str)
  > @0
  > +member("ann")
  > @2
  > +borrow("ann", "b1")
  > TRACE
  $ cat > part2.trace <<'TRACE'
  > schema member(patron:str)
  > schema borrow(patron:str, book:str)
  > schema return(patron:str, book:str)
  > @3
  > -borrow("ann", "b1")
  > +borrow("zed", "b2")
  > @40
  > -borrow("zed", "b2")
  > TRACE
  $ rtic check -q --save-state state.ck loans.spec part1.trace
  2 transaction(s), 0 violation(s)
  $ rtic check --load-state state.ck loans.spec part2.trace
  [3] constraint member_borrow violated at position 2
  [40] constraint loan_expiry violated at position 3
  2 transaction(s), 2 violation(s)
  [1]

statistics (the step-latency line is timing-dependent, so it is masked):

  $ rtic check -q --stats loans.spec loans.trace | sed 's/^step latency:.*/step latency:    [masked]/'
  transactions:    4
  clock range:     0 .. 40 (40 ticks)
  violations:      2 (0.500 per transaction)
  peak aux space:  2 stored pairs
  by constraint:
    loan_expiry                    1
    member_borrow                  1
  kernel steps:    8
  formula cache:   4 hit / 4 miss (50.0%)
  step latency:    [masked]
  per-node auxiliary state:
    loan_expiry: not (exists q. return(q, b)) since[29,inf] (exists p. borrow(p, b)) size 2      peak 2      pruned 0      survival 3/3
  4 transaction(s), 2 violation(s)

--json emits machine-readable statistics only; the document must survive
the bundled linter, and a generated workload round-trips end to end:

  $ rtic check -q --stats --json loans.spec loans.trace > stats.json
  [1]
  $ rtic lint-json stats.json
  valid JSON
  $ grep -c '"schema": "rtic-stats/1"' stats.json
  1
  $ rtic gen --scenario monitoring --steps 10 --seed 7 -o g.trace --spec-out g.spec
  $ rtic check -q --stats --json g.spec g.trace | rtic lint-json
  valid JSON

the linter rejects what is not JSON:

  $ echo 'not json {' | rtic lint-json
  rtic: invalid JSON: bad literal at offset 0
  [1]

--trace narrates every transaction on stderr:

  $ rtic check -q --trace loans.spec loans.trace 2>&1
  rtic: [INFO] [0] txn: 0 violation(s), aux space 0
  rtic: [INFO] [2] txn: 0 violation(s), aux space 1
  rtic: [INFO] [3] txn: 1 violation(s), aux space 2
  rtic: [INFO] [40] txn: 1 violation(s), aux space 2
  4 transaction(s), 2 violation(s)
  [1]

stats require the incremental engine:

  $ rtic check -q --stats --engine naive loans.spec loans.trace
  rtic: --stats/--json require --engine incremental
  [2]

corrupt checkpoints are refused rather than silently accepted:

  $ sed 's/^row /rwo /' state.ck > broken.ck
  $ rtic check --load-state broken.ck loans.spec part2.trace
  rtic: checkpoint: unknown key rwo
  [2]
  $ head -n 5 state.ck > truncated.ck
  $ rtic check --load-state truncated.ck loans.spec part2.trace 2>&1 | head -1
  rtic: monitor checkpoint holds 0 checker(s), 2 constraint(s) given

ad-hoc queries (open formulas print witnesses; transition atoms work):

  $ rtic query loans.spec loans.trace 'borrow(p, b)' --at 2
  at position 2 (time 3): 1 witness(es)
    b = "b2", p = "zed"
  $ rtic query loans.spec loans.trace '+borrow(p, b)' --at 2
  at position 2 (time 3): 1 witness(es)
    b = "b2", p = "zed"
  $ rtic query loans.spec loans.trace 'exists p, b. -borrow(p, b)' --at 2
  at position 2 (time 3): true
  $ rtic query loans.spec loans.trace 'member(p) & not (exists b. (once borrow(p, b)))'
  at position 3 (time 40): 0 witness(es)
  [1]

the planner escape hatch changes the evaluation path, never the answer:

  $ rtic query --no-plan loans.spec loans.trace 'borrow(p, b)' --at 2
  at position 2 (time 3): 1 witness(es)
    b = "b2", p = "zed"
  $ rtic query --no-plan loans.spec loans.trace 'member(p) & borrow(p, b)' --at 2
  at position 2 (time 3): 0 witness(es)
  [1]
  $ rtic query loans.spec loans.trace 'member(p) & borrow(p, b)' --at 2
  at position 2 (time 3): 0 witness(es)
  [1]

the shared-kernel engine agrees too:

  $ rtic check -q --engine shared loans.spec loans.trace
  4 transaction(s), 2 violation(s)
  [1]

exit codes follow one convention everywhere: 0 when every constraint
holds, 1 when a violation (or unrecoverable state) is reported, 2 for
usage and internal errors.  A few pins:

  $ echo 'schema p(' > mangled.spec
  $ rtic check -q mangled.spec loans.trace
  rtic: line 2, column 1: expected an attribute name, found end of input
  [2]
  $ rtic explain loans.spec loans.trace nosuch
  rtic: no constraint named nosuch
  [2]
  $ rtic gen --scenario nosuch
  rtic: unknown scenario nosuch (expected banking, library, monitoring or generic)
  [2]

span tracing: --trace-out streams an rtic-trace/1 JSONL event log of the
run; with - it owns stdout (human output moves to stderr) and pipes
straight into rtic profile. Span durations are timing-dependent, so the
nanosecond fields are scrubbed; the span counts are exact:

  $ rtic check -q --trace-out - loans.spec loans.trace 2>/dev/null \
  >   | head -3 | sed -E 's/"t_ns":[0-9]+/"t_ns":_/'
  {"schema":"rtic-trace/1"}
  {"ev":"open","id":0,"parent":null,"cat":"parse","name":"spec","arg":"loans.spec","t_ns":_}
  {"ev":"close","id":0,"t_ns":_}
  $ rtic check -q --trace-out - loans.spec loans.trace 2>&1 >/dev/null
  4 transaction(s), 2 violation(s)
  [1]
  $ rtic check -q --trace-out - loans.spec loans.trace 2>/dev/null | rtic profile --json | rtic lint-json
  valid JSON
  $ rtic check -q --trace-out - loans.spec loans.trace 2>/dev/null \
  >   | rtic profile --json | sed -E 's/"(total|self)_ns": [0-9]+/"\1_ns": _/'
  {
    "schema": "rtic-profile/1",
    "events": 44,
    "spans": 22,
    "points": 0,
    "unclosed": 0,
    "rows": [
      {
        "cat": "apply",
        "name": "",
        "count": 4,
        "total_ns": _,
        "self_ns": _
      },
      {
        "cat": "constraint",
        "name": "loan_expiry",
        "count": 4,
        "total_ns": _,
        "self_ns": _
      },
      {
        "cat": "constraint",
        "name": "member_borrow",
        "count": 4,
        "total_ns": _,
        "self_ns": _
      },
      {
        "cat": "node",
        "name": "loan_expiry: not (exists q. return(q, b)) since[29,inf] (exists p. borrow(p, b))",
        "count": 4,
        "total_ns": _,
        "self_ns": _
      },
      {
        "cat": "parse",
        "name": "spec",
        "count": 1,
        "total_ns": _,
        "self_ns": _
      },
      {
        "cat": "parse",
        "name": "trace",
        "count": 1,
        "total_ns": _,
        "self_ns": _
      },
      {
        "cat": "txn",
        "name": "",
        "count": 4,
        "total_ns": _,
        "self_ns": _
      }
    ]
  }

collapsed stacks for flamegraph tools, and the human table's header line:

  $ rtic check -q --trace-out trace.jsonl loans.spec loans.trace
  4 transaction(s), 2 violation(s)
  [1]
  $ rtic profile --collapsed trace.jsonl | sed -E 's/ [0-9]+$/ _/'
  parse:spec _
  parse:trace _
  txn _
  txn;apply _
  txn;constraint:loan_expiry _
  txn;constraint:loan_expiry;node:loan_expiry: not (exists q. return(q, b)) since[29,inf] (exists p. borrow(p, b)) _
  txn;constraint:member_borrow _
  $ rtic profile trace.jsonl | head -1
  trace: 44 event(s), 22 span(s), 0 point(s)

the tracing flags validate their combinations:

  $ rtic check -q --engine naive --trace-out - loans.spec loans.trace
  rtic: --trace-out requires --engine incremental, shared or future
  [2]
  $ rtic check -q --trace-out - --json loans.spec loans.trace
  rtic: --trace-out - conflicts with --json (both claim stdout)
  [2]
  $ rtic profile --json --collapsed trace.jsonl
  rtic: --json and --collapsed are mutually exclusive
  [2]

a mangled trace stream is a usage error with a line number:

  $ echo 'not json' | rtic profile
  rtic: bad trace: trace line 1: bad literal at offset 0
  [2]

supervised mode: --state-dir turns check into a crash-safe service
that journals every accepted transaction to a WAL and checkpoints
periodically; the supervised flags require it, and it requires the
incremental engine:

  $ rtic check -q --on-error skip loans.spec loans.trace
  rtic: --on-error/--auto-checkpoint/--aux-budget/--group-commit/--wal-format require --state-dir
  [2]
  $ rtic check -q --state-dir svc --engine naive loans.spec loans.trace
  rtic: --state-dir requires --engine incremental
  [2]

a fresh run creates the state directory (checkpoint 0 plus one per
--auto-checkpoint transactions, retaining the newest two):

  $ rtic check -q --state-dir svc --auto-checkpoint 2 loans.spec part1.trace
  2 transaction(s), 0 violation(s)
  $ ls svc
  checkpoint-000000000.ck
  checkpoint-000000002.ck
  wal.log

re-running over the full trace recovers, skips the prefix it already
processed, and reports only the new transactions:

  $ rtic check --state-dir svc --auto-checkpoint 2 loans.spec loans.trace 2>recover.log
  [3] constraint member_borrow violated at position 2
  [40] constraint loan_expiry violated at position 3
  2 transaction(s), 2 violation(s)
  [1]
  $ cat recover.log
  rtic: recovered 2 transaction(s) from svc (checkpoint 2, 0 replayed)
  rtic: 2 trace transaction(s) already processed

supervised runs compose with --json: the stats document (covering the
transactions processed after any recovery) is the only stdout output,
diagnostics stay on stderr, and the document survives the linter:

  $ rtic check -q --state-dir svcjson --json loans.spec loans.trace > svc-stats.json
  [1]
  $ rtic lint-json svc-stats.json
  valid JSON
  $ grep -cE '"schema": "rtic-stats/1"|"wal_records_appended": 4' svc-stats.json
  2
  $ rtic check -q --state-dir svcjson --json loans.spec loans.trace 2>resume.log | grep '"transactions"'
    "transactions": 0,
  $ cat resume.log
  rtic: recovered 4 transaction(s) from svcjson (checkpoint 0, 4 replayed)
  rtic: 4 trace transaction(s) already processed

recover inspects a damaged directory: tear the WAL tail and corrupt
the older checkpoint, and it falls back to the newest intact snapshot:

  $ printf '12345678 999 torn' >> svc/wal.log
  $ sed -i 's/^row /rwo /' svc/checkpoint-000000002.ck
  $ rtic recover loans.spec svc
  wal: start 2, 2 record(s), torn tail (record 2 (index 4): unterminated final line (torn write))
  checkpoint 4: ok
  checkpoint 2: corrupt (checkpoint: crc mismatch (stored e76c78de, computed 8766c385))
  recoverable: 4 transaction(s) (checkpoint 4, 0 replayed)

--repair rewrites a fresh checkpoint and compacts the WAL, healing
the torn tail (the corrupt old snapshot is merely reported):

  $ rtic recover --repair loans.spec svc
  wal: start 2, 2 record(s), torn tail (record 2 (index 4): unterminated final line (torn write))
  checkpoint 4: ok
  checkpoint 2: corrupt (checkpoint: crc mismatch (stored e76c78de, computed 8766c385))
  recoverable: 4 transaction(s) (checkpoint 4, 0 replayed); repaired
  $ rtic recover loans.spec svc | head -1
  wal: start 2, 2 record(s)

a directory without a WAL is not a state directory (usage error), and
a destroyed WAL header is unrecoverable (violation-class exit):

  $ mkdir not-a-state-dir
  $ rtic recover loans.spec not-a-state-dir
  rtic: not-a-state-dir holds no WAL; not a supervisor state directory
  [2]
  $ mkdir destroyed && printf 'xtic-wal/1 0\n' > destroyed/wal.log
  $ rtic recover loans.spec destroyed
  wal: corrupt header (wal: missing rtic-wal/1|2 header)
  unrecoverable: wal: missing rtic-wal/1|2 header
  [1]

group commit takes durability off the critical path: --group-commit N
makes accepted transactions durable in batches of up to N records per
write+sync (verdicts released only once their batch is on disk), and
--wal-format 2 journals them in the binary record format; outcomes are
identical either way:

  $ rtic check --state-dir gc --group-commit 8 --wal-format 2 loans.spec loans.trace
  [3] constraint member_borrow violated at position 2
  [40] constraint loan_expiry violated at position 3
  4 transaction(s), 2 violation(s)
  [1]

`rtic wal dump` renders either WAL format as rtic-wal/1 text — the
binary frames carry exactly the v1 record bodies, so the conversion is
lossless (and recovery reads both, so the v2 directory restarts fine):

  $ rtic wal dump gc/wal.log
  rtic-wal/1
  start 0
  txn 0 1 fe02a8ff
  +member("ann")
  txn 2 1 b9d10666
  +borrow("ann", "b1")
  txn 3 2 d507eb55
  -borrow("ann", "b1")
  +borrow("zed", "b2")
  txn 40 1 c09cd0a4
  -borrow("zed", "b2")
  $ rtic wal dump svc/wal.log | head -2
  rtic-wal/1
  start 2
  $ rtic wal dump no-such.log
  rtic: no-such.log: No such file or directory
  [1]

constraint repair: --on-error repair turns a violating transaction into
a self-healing one — the supervisor searches for a founded minimal
repair and journals transaction + repair as a single WAL record.  A run
that succeeds only via repairs exits with the distinct code 3 (clean 0,
standing violations 1, usage 2):

  $ cat > rep.spec <<'EOF'
  > schema member(patron:str)
  > schema borrow(patron:str, book:str)
  > constraint member_borrow:
  >   forall p, b. borrow(p, b) -> member(p) ;
  > EOF
  $ cat > rep.trace <<'EOF'
  > schema member(patron:str)
  > schema borrow(patron:str, book:str)
  > @0
  > +member("ann")
  > @2
  > +borrow("zed", "b2")
  > @3
  > +borrow("ann", "b1")
  > @5
  > +member("zed")
  > EOF
  $ rtic check --state-dir healed --on-error repair rep.spec rep.trace
  repaired at time 2: -borrow("zed", "b2") (fired by member_borrow)
  4 transaction(s), 0 violation(s), 1 repaired
  [3]

recovery replays the journaled repair together with its transaction, so
the healed state survives a restart as if it had never been violated:

  $ rtic check --state-dir healed --on-error repair rep.spec rep.trace 2>replay.log
  0 transaction(s), 0 violation(s)
  $ cat replay.log
  rtic: recovered 4 transaction(s) from healed (checkpoint 0, 4 replayed)
  rtic: 4 trace transaction(s) already processed

`rtic repair` proposes (and with --apply commits) a repair for a state
directory at rest.  This heals constraint violations in the *data* —
distinct from `rtic recover --repair`, which salvages damaged *storage*
(torn WAL tails, corrupt checkpoints):

  $ cat > bad.trace <<'EOF'
  > schema member(patron:str)
  > schema borrow(patron:str, book:str)
  > @0
  > +member("ann")
  > @1
  > +borrow("zed", "b2")
  > EOF
  $ rtic check -q --state-dir broken rep.spec bad.trace
  2 transaction(s), 1 violation(s)
  [1]
  $ rtic repair rep.spec broken
  repair: -borrow("zed", "b2") (fired by member_borrow)
  heals: member_borrow
  proposal only; re-run with --apply to commit at time 2
  [3]

the machine-readable proposal is an rtic-repair/1 document:

  $ rtic repair --json rep.spec broken > proposal.json
  [3]
  $ rtic lint-json proposal.json
  valid JSON
  $ grep -cE '"schema": "rtic-repair/1"|"applied": false' proposal.json
  2

--apply commits the repair through the WAL and the state comes back
clean; budgets must be sensible:

  $ rtic repair --apply rep.spec broken
  repair: -borrow("zed", "b2") (fired by member_borrow)
  heals: member_borrow
  applied 1 action(s) at time 2 (journaled in broken/wal.log)
  [3]
  $ rtic repair rep.spec broken
  clean: every constraint holds at time 3
  $ rtic repair --max-depth 0 rep.spec broken
  rtic: --max-steps/--max-candidates/--max-depth must be at least 1
  [2]

violations anchored entirely in past states are unrepairable: no
current-state update can change the verdict, and the monitor says so
instead of burning its search budget — the service keeps running:

  $ cat > past.spec <<'EOF'
  > schema p(a:int)
  > constraint was_nonempty: prev (exists x. p(x)) ;
  > EOF
  $ cat > past.trace <<'EOF'
  > schema p(a:int)
  > @0
  > +p(1)
  > @1
  > +p(2)
  > EOF
  $ rtic check --state-dir pd --on-error repair past.spec past.trace
  [0] constraint was_nonempty violated at position 0
  2 transaction(s), 1 violation(s)
  rtic: constraint was_nonempty is unrepairable at time 0 (verdict anchored in past states by prev (exists x. p(x)))
  [1]
  $ cat > gone.spec <<'EOF'
  > schema p(a:int)
  > constraint was_empty: prev (not (exists x. p(x))) ;
  > EOF
  $ rtic check -q --state-dir gone gone.spec past.trace > /dev/null 2>&1
  [1]
  $ rtic repair gone.spec gone
  unrepairable: was_empty (offending subformula: prev not (exists x. p(x)))
  [1]
