The rtic serve subcommand over a Unix-domain socket (--socket): the
socket-file lifecycle and multi-client serving, driven end-to-end with
the rtic-drive load client.

Lifecycle: a regular file in the way is refused — and never deleted:

  $ touch busy.sock
  $ rtic serve --socket busy.sock
  rtic: busy.sock already exists and is not a socket; remove it or pick another socket path
  [2]
  $ test -f busy.sock && echo still-here
  still-here

A live server's socket is refused too.  Start one, wait for it to
listen, then try to claim its path from a second process:

  $ rtic serve --socket live.sock 2>live.log &
  $ SERVER=$!
  $ for i in $(seq 1 200); do test -S live.sock && break; sleep 0.05; done
  $ rtic serve --socket live.sock
  rtic: live.sock already has a live server; pick another socket path
  [2]

A clean SIGTERM shutdown exits 0 and removes the socket file:

  $ kill -TERM $SERVER
  $ wait $SERVER
  $ cat live.log
  rtic: serving on live.sock
  rtic: terminated, shutting down
  $ test -e live.sock || echo gone
  gone

A crashed server (SIGKILL gets no chance to clean up) leaves a stale
socket file behind; the next start probes it, finds nothing answering,
reclaims the path and serves — no manual rm needed:

  $ rtic serve --socket stale.sock 2>/dev/null &
  $ SERVER=$!
  $ for i in $(seq 1 200); do test -S stale.sock && break; sleep 0.05; done
  $ kill -KILL $SERVER
  $ wait $SERVER
  [137]
  $ test -S stale.sock && echo stale-file-left
  stale-file-left
  $ rtic serve --socket stale.sock 2>restart.log &
  $ SERVER=$!
  $ for i in $(seq 1 200); do grep -q "serving on" restart.log && break; sleep 0.05; done
  $ kill -TERM $SERVER
  $ wait $SERVER
  $ cat restart.log
  rtic: removing stale socket stale.sock
  rtic: serving on stale.sock
  rtic: terminated, shutting down
  $ test -e stale.sock || echo gone
  gone

Multi-client serving: rtic-drive spawns a server, drives four concurrent
connections over disjoint slices of one seeded workload, cross-checks
every slice against the in-process batch monitor (same reports, same
scrubbed stats), and shuts the server down over a control connection.
Latency lines are timing-dependent, so pin the deterministic ones:

  $ rtic-drive --spawn "$(command -v rtic)" --scenario banking --steps 40 \
  >   --seed 3 --clients 4 2>/dev/null | grep -E "^drive:|^violations" \
  >   | sed 's/ in .* s .*//'
  drive: banking scenario, 40 txn(s) over 4 client(s)
  violations reported: 1

A client reconnecting mid-run resumes the same session with no fresh
open — sessions belong to the server, not the connection:

  $ rtic-drive --spawn "$(command -v rtic)" --scenario banking --steps 30 \
  >   --seed 3 --reconnect-at 10 2>/dev/null | grep -o "(reconnected x1)"
  (reconnected x1)

One client dying abruptly mid-transaction (connection dropped with a
half-sent txn body) leaves the other three undisturbed: they still pass
the batch cross-check, and the server still shuts down cleanly —
rtic-drive exits non-zero if any of that fails:

  $ rtic-drive --spawn "$(command -v rtic)" --scenario banking --steps 40 \
  >   --seed 3 --clients 4 --kill-after 5 2>/dev/null \
  >   | grep -E "^drive:|^client 0|^violations" | sed 's/ in .* s .*//'
  drive: banking scenario, 35 txn(s) over 4 client(s)
  client 0: killed after 5 txn(s) (drill)
  violations reported: 1

No server socket survives any of those runs (busy.sock is the plain
file from the first test, deliberately left untouched):

  $ rm busy.sock
  $ ls *.sock
  ls: cannot access '*.sock': No such file or directory
  [2]
