Live telemetry: the rtic-metrics/1 snapshot over the metrics side
socket, Prometheus text exposition, and the rtic top dashboard.

--metrics-socket needs a select loop to ride, so it requires --socket:

  $ rtic serve --metrics-socket met.sock
  rtic: --metrics-socket requires --socket (the stdin/stdout transport has no select loop to serve it from)
  [2]
  $ rtic serve --socket same.sock --metrics-socket same.sock
  rtic: --metrics-socket must differ from --socket
  [2]

Start a server with both sockets and wait for the side channel:

  $ rtic serve --socket live.sock --metrics-socket met.sock 2>serve.log &
  $ SERVER=$!
  $ for i in $(seq 1 200); do test -S met.sock && break; sleep 0.05; done

Drive a deterministic workload.  --latency-out makes the client keep its
session open, reconcile its own transaction count against the server's
`metrics` request, close up, and write its client-side histogram:

  $ rtic-drive --socket live.sock --scenario banking --steps 40 --seed 3 \
  >   --latency-out lat.json | grep -E "^drive:" | sed 's/ in .* s .*//'
  drive: wrote client-side latency histogram (40 sample(s)) to lat.json; server metrics agree
  drive: banking scenario, 40 txn(s) over 1 client(s)

The artifact is a valid rtic-metrics/1 document, cumulative buckets and
all:

  $ rtic lint-json lat.json
  valid JSON
  $ grep -c '"schema":"rtic-metrics/1"' lat.json
  1

rtic top polls the side socket.  The drive run closed its sessions, but
the server-lifetime transaction total survives them — that figure is
deterministic, unlike the rates below it:

  $ rtic top met.sock --once | head -1
  rtic top - sessions 0  queue 0/64  transactions 40

--once --json is the scripting interface (a raw snapshot document):

  $ rtic top met.sock --once --json | grep -c '"transactions":40'
  1

--once --prom scrapes the same socket in Prometheus text exposition:

  $ rtic top met.sock --once --prom | grep -E "^# TYPE|^rtic_transactions_total"
  # TYPE rtic_up gauge
  # TYPE rtic_sessions gauge
  # TYPE rtic_queued_requests gauge
  # TYPE rtic_max_pending gauge
  # TYPE rtic_transactions_total counter
  rtic_transactions_total 40
  # TYPE rtic_txn_rate gauge

Scrapes keep answering while protocol clients run transactions — a
second drive run and a concurrent scrape both succeed, and the total
advances by exactly the new run's 40 transactions:

  $ rtic-drive --socket live.sock --scenario banking --steps 40 --seed 3 \
  >   > /dev/null 2>&1 &
  $ DRIVE=$!
  $ rtic top met.sock --once --json > mid.json
  $ wait $DRIVE
  $ rtic top met.sock --once --prom | grep "^rtic_transactions_total"
  rtic_transactions_total 80

A clean SIGTERM shutdown removes both socket files:

  $ kill -TERM $SERVER
  $ wait $SERVER
  $ cat serve.log
  rtic: serving on live.sock
  rtic: metrics on met.sock
  rtic: terminated, shutting down
  $ test -e live.sock || echo gone
  gone
  $ test -e met.sock || echo gone
  gone
