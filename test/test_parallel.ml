(* Parallel sharding (--jobs): a pooled run must be observationally
   identical to the sequential one — same reports, same error strings,
   same synced metrics document (modulo wall-clock latency) — and the
   pool itself must be a well-behaved fixed-size worker set. *)

open Helpers
module Shared = Rtic_core.Shared
module Pool = Rtic_core.Pool
module Metrics = Rtic_core.Metrics
module Supervisor = Rtic_core.Supervisor
module Faults = Rtic_core.Faults
module Wal = Rtic_core.Wal
module Json = Rtic_core.Json
module F = Formula

let cat = Gen.generic_catalog

let def name body = { F.name; body = parse_formula body }

let with_pool n f =
  let p = Pool.create n in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* Five constraints: two sharing once[0,30] p(x) (one sharing component),
   three with private subformulas — so a pooled Shared run really shards. *)
let mixed_defs =
  [ def "a" "forall x. q(x) -> once[0,30] p(x)";
    def "b" "forall x, y. r(x, y) -> once[0,30] p(x)";
    def "c" "forall x. q(x) -> once[0,11] p(x)";
    def "d" "forall x. q(x) -> once[0,12] p(x)";
    def "e" "forall x. q(x) -> once[0,13] p(x)" ]

let show_report r =
  Printf.sprintf "%s@%d/%d" r.Monitor.constraint_name r.Monitor.position
    r.Monitor.time

(* The one field allowed to differ between a sequential and a pooled run. *)
let scrub_latency = function
  | Json.Obj fields ->
    Json.Obj (List.filter (fun (k, _) -> k <> "latency_ns") fields)
  | j -> j

let metrics_doc run =
  let m = Metrics.create () in
  let reports = get_ok "run" (run m) in
  (List.map show_report reports, Json.to_string (scrub_latency (Metrics.to_json m)))

let pool_cases =
  [ Alcotest.test_case "create rejects size < 1" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Pool.create: size must be >= 1") (fun () ->
            ignore (Pool.create 0)));
    Alcotest.test_case "map_array over more items than workers" `Quick
      (fun () ->
        with_pool 3 (fun p ->
            let xs = Array.init 100 Fun.id in
            Alcotest.(check (array int))
              "squares"
              (Array.map (fun x -> x * x) xs)
              (Pool.map_array (fun x -> x * x) xs p)));
    Alcotest.test_case "size-1 pool is the sequential path" `Quick (fun () ->
        with_pool 1 (fun p ->
            Alcotest.(check int) "size" 1 (Pool.size p);
            Alcotest.(check (array int))
              "identity" [| 1; 2; 3 |]
              (Pool.map_array Fun.id [| 1; 2; 3 |] p)));
    Alcotest.test_case "lowest-index exception wins deterministically" `Quick
      (fun () ->
        with_pool 4 (fun p ->
            List.iter
              (fun _ ->
                match
                  Pool.run p
                    (Array.init 8 (fun i () ->
                         if i >= 2 then failwith (string_of_int i) else i))
                with
                | _ -> Alcotest.fail "expected an exception"
                | exception Failure m ->
                  Alcotest.(check string) "first failing task" "2" m)
              [ 1; 2; 3 ])) ]

let equality_cases =
  let traces =
    List.map
      (fun seed ->
        Gen.random_trace ~seed { Gen.default_params with steps = 60 })
      [ 3; 4; 5 ]
  in
  [ Alcotest.test_case "monitor: jobs N = sequential (reports + metrics)"
      `Quick (fun () ->
        List.iter
          (fun tr ->
            let seq =
              metrics_doc (fun m -> Monitor.run_trace ~metrics:m mixed_defs tr)
            in
            List.iter
              (fun jobs ->
                with_pool jobs (fun pool ->
                    let par =
                      metrics_doc (fun m ->
                          Monitor.run_trace ~metrics:m ~pool mixed_defs tr)
                    in
                    Alcotest.(check (pair (list string) string))
                      (Printf.sprintf "jobs %d" jobs)
                      seq par))
              [ 2; 4 ])
          traces);
    Alcotest.test_case "shared: jobs N = sequential (reports + metrics)"
      `Quick (fun () ->
        List.iter
          (fun tr ->
            let seq =
              metrics_doc (fun m -> Shared.run_trace ~metrics:m mixed_defs tr)
            in
            List.iter
              (fun jobs ->
                with_pool jobs (fun pool ->
                    let par =
                      metrics_doc (fun m ->
                          Shared.run_trace ~metrics:m ~pool mixed_defs tr)
                    in
                    Alcotest.(check (pair (list string) string))
                      (Printf.sprintf "jobs %d" jobs)
                      seq par))
              [ 2; 4 ])
          traces) ]

(* Random constraints, random traces: pooled and sequential runs agree on
   the full verdict stream for both engines. *)
let agreement_property =
  qtest ~count:40 "pooled run = sequential run on random batches"
    QCheck.(pair small_nat (oneofl [ 2; 4 ]))
    (fun (seed, jobs) ->
      let defs =
        List.mapi
          (fun i f -> { F.name = Printf.sprintf "c%d" i; body = f })
          (Gen.random_formulas ~seed ~depth:3 ~count:4)
      in
      let tr =
        Gen.random_trace ~seed:(seed + 77) { Gen.default_params with steps = 25 }
      in
      let show rs = List.map show_report rs in
      with_pool jobs (fun pool ->
          let mon_ok =
            match Monitor.run_trace defs tr, Monitor.run_trace ~pool defs tr with
            | Ok a, Ok b -> show a = show b
            | Error a, Error b -> a = b
            | _ -> false
          in
          let shared_ok =
            match Shared.run_trace defs tr, Shared.run_trace ~pool defs tr with
            | Ok a, Ok b -> show a = show b
            | Error a, Error b -> a = b
            | _ -> false
          in
          mon_ok && shared_ok))

(* The non-increasing-timestamp guard must use one error string across the
   sequential and sharded engines (the parallel-equality tests above
   compare error strings verbatim); the supervisor's clock-regression
   message is intentionally distinct — it names the policy-relevant event,
   not the kernel invariant. These pins fail loudly if either drifts. *)
let error_string_cases =
  let d = def "a" "forall x. q(x) -> once[0,5] p(x)" in
  let step2 step st =
    let st = fst (get_ok "step 1" (step st ~time:5)) in
    get_error "step 2" (step st ~time:5)
  in
  [ Alcotest.test_case "incremental and shared agree on the error string"
      `Quick (fun () ->
        let db = Database.create cat in
        let inc =
          step2
            (fun st ~time -> Incremental.step st ~time db)
            (get_ok "create" (Incremental.create cat d))
        in
        let shared =
          step2
            (fun m ~time -> Shared.step m ~time [])
            (get_ok "create" (Shared.create cat [ d ]))
        in
        Alcotest.(check string)
          "pinned" "non-increasing timestamp: 5 after 5" inc;
        Alcotest.(check string) "shared matches incremental" inc shared;
        with_pool 2 (fun pool ->
            let sharded =
              step2
                (fun m ~time -> Shared.step m ~time [])
                (get_ok "create" (Shared.create ~pool cat mixed_defs))
            in
            Alcotest.(check string) "sharded matches too" inc sharded));
    Alcotest.test_case "supervisor clock-regression string is pinned" `Quick
      (fun () ->
        let fs = Faults.mem_fs () in
        let sup =
          get_ok "create"
            (Supervisor.create ~fs ~state_dir:"s" cat [ d ])
        in
        ignore (get_ok "step 1" (Supervisor.step sup ~time:5 []));
        Alcotest.(check string)
          "pinned" "clock regression: time 5 after 5"
          (get_error "step 2" (Supervisor.step sup ~time:5 []))) ]

(* Supervised service under a pool: outcomes, quarantine decisions and
   recovery must match the sequential service exactly. *)
let supervised_cases =
  [ Alcotest.test_case "pooled supervisor = sequential supervisor" `Quick
      (fun () ->
        let sc = Scenarios.banking in
        let tr = sc.Scenarios.generate ~seed:9 ~steps:80 ~violation_rate:0.1 in
        let config =
          { Supervisor.default_config with auto_checkpoint = 16;
            aux_budget = Some 40 }
        in
        let run pool =
          let fs = Faults.mem_fs () in
          let sup =
            get_ok "create"
              (Supervisor.create ~fs ?pool ~config ~init:tr.Trace.init
                 ~state_dir:"s" sc.Scenarios.catalog sc.Scenarios.constraints)
          in
          let outs =
            List.map
              (fun (time, txn) ->
                match get_ok "step" (Supervisor.step sup ~time txn) with
                | Supervisor.Checked { reports; inconclusive } ->
                  Printf.sprintf "checked %s | %s"
                    (String.concat "," (List.map show_report reports))
                    (String.concat "," inconclusive)
                | Supervisor.Skipped r -> "skipped " ^ r
                | Supervisor.Rejected r -> "rejected " ^ r
                | Supervisor.Repaired _ | Supervisor.Unrepairable _ ->
                  Alcotest.fail "repair outcome without the repair policy")
              tr.Trace.steps
          in
          (outs, Supervisor.quarantined sup, Supervisor.steps sup, fs)
        in
        let seq_outs, seq_q, seq_steps, _ = run None in
        with_pool 2 (fun pool ->
            let par_outs, par_q, par_steps, par_fs = run (Some pool) in
            Alcotest.(check (list string)) "outcomes" seq_outs par_outs;
            Alcotest.(check (list (pair string string)))
              "quarantine" seq_q par_q;
            Alcotest.(check int) "steps" seq_steps par_steps;
            (* And a pooled recovery of the pooled service replays to the
               same state a sequential recovery reaches. *)
            let recover pool fs =
              let sup, info =
                get_ok "recover"
                  (Supervisor.recover ~fs ?pool ~config ~init:tr.Trace.init
                     ~repair:false ~state_dir:"s" sc.Scenarios.catalog
                     sc.Scenarios.constraints)
              in
              ( Supervisor.steps sup,
                Supervisor.last_time sup,
                Supervisor.space sup,
                Supervisor.quarantined sup,
                List.map show_report info.Supervisor.replay_reports )
            in
            let a = recover None par_fs in
            let b = recover (Some pool) par_fs in
            if a <> b then Alcotest.fail "pooled recovery diverged")) ]

(* WAL recovery must be linear in the number of records: the decoder used
   to recompute List.length per record, which made a 50k-record log take
   quadratic time. A quadratic decoder shows a ~100x blowup between 5k
   and 50k records; a linear one ~10x. The bound leaves a wide margin for
   noise. *)
let wal_cases =
  [ Alcotest.test_case "50k-record recovery is linear" `Slow (fun () ->
        let log n = Wal.encode ~start:0 (List.init n (fun i -> (i + 1, []))) in
        let time_recover text =
          let t0 = Unix.gettimeofday () in
          let w = get_ok "recover" (Wal.recover text) in
          let dt = Unix.gettimeofday () -. t0 in
          (List.length w.Wal.records, dt)
        in
        let small = log 5_000 and big = log 50_000 in
        ignore (time_recover small) (* warm-up *);
        let n_small, t_small = time_recover small in
        let n_big, t_big = time_recover big in
        Alcotest.(check int) "small decoded" 5_000 n_small;
        Alcotest.(check int) "big decoded" 50_000 n_big;
        let ratio = t_big /. Float.max t_small 1e-4 in
        if ratio > 40.0 then
          Alcotest.failf
            "10x more records cost %.0fx the time (%.3fs -> %.3fs): recovery \
             is no longer linear"
            ratio t_small t_big) ]

let suite =
  [ ("parallel:pool", pool_cases);
    ("parallel:equality", equality_cases);
    ("parallel:property", [ agreement_property ]);
    ("parallel:errors", error_string_cases);
    ("parallel:supervised", supervised_cases);
    ("parallel:wal", wal_cases) ]
