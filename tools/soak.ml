(* Deep differential + chaos soak testing.

   Differential mode (default): high-volume agreement checks across all
   engines.  Opt-in and slow at full size:
     dune exec tools/soak.exe -- --iters 1200

   Chaos mode: seeded crash-recovery equivalence sweep (Chaos.run) —
   every episode crashes a supervised monitor, damages its state
   directory and checks the recovered run is observationally identical:
     dune exec tools/soak.exe -- --chaos --iters 200 --seed 42

   Both modes are pure functions of --seed, so a CI failure line is
   enough to replay the exact run locally. *)
module Trace = Rtic_temporal.Trace
module History = Rtic_temporal.History
module F = Rtic_mtl.Formula
module Naive = Rtic_eval.Naive
module Incremental = Rtic_core.Incremental
module Future = Rtic_core.Future
module Compile = Rtic_active.Compile
module Faults = Rtic_core.Faults
module Gen = Rtic_workload.Gen
module Chaos = Rtic_workload.Chaos

let ok = function Ok v -> v | Error m -> failwith m
let cat = Gen.generic_catalog

let naive_vec h f =
  List.init (History.length h) (fun i -> ok (Naive.holds_at h i f))

let inc_vec ?metrics ?config h f =
  let d = { F.name = "s"; body = f } in
  let st = ok (Incremental.create ?metrics ?config cat d) in
  List.fold_left
    (fun (st, acc) (t, db) ->
      let st, v = ok (Incremental.step st ~time:t db) in
      (st, v.Incremental.satisfied :: acc))
    (st, []) (History.snapshots h)
  |> snd |> List.rev

let active_vec h f =
  let prog = ok (Compile.compile cat { F.name = "s"; body = f }) in
  List.fold_left
    (fun (e, acc) (t, db) ->
      let e, b = ok (Compile.step e ~time:t db) in
      (e, b :: acc))
    (Compile.start prog, [])
    (History.snapshots h)
  |> snd |> List.rev

let future_vec h f =
  let st = ok (Future.create cat { F.name = "s"; body = f }) in
  let st, out =
    List.fold_left
      (fun (st, out) (t, db) ->
        let st, vs = ok (Future.step st ~time:t db) in
        (st, out @ vs))
      (st, []) (History.snapshots h)
  in
  List.map (fun v -> v.Future.satisfied) (out @ Future.finish st)

let run_differential ~seed ~iters =
  let fails = ref 0 in
  let n_past = iters and n_future = max 1 (iters / 3) in
  let base = seed * 1000 in
  for i = 1 to n_past do
    let f = Gen.random_formula ~seed:(base + i) ~depth:5 in
    let tr =
      Gen.random_trace ~seed:(base + 2000 + i)
        { Gen.default_params with steps = 35 }
    in
    let h = ok (Trace.materialize tr) in
    let nv = naive_vec h f in
    if inc_vec h f <> nv then (incr fails; Printf.printf "INC mismatch seed %d\n" i);
    if inc_vec ~metrics:(Rtic_core.Metrics.create ()) h f <> nv then
      (incr fails; Printf.printf "METRICS mismatch seed %d\n" i);
    if inc_vec ~config:{ Incremental.prune = false } h f <> nv then
      (incr fails; Printf.printf "NOPRUNE mismatch seed %d\n" i);
    if active_vec h f <> nv then (incr fails; Printf.printf "ACTIVE mismatch seed %d\n" i)
  done;
  for i = 1 to n_future do
    let f = Gen.random_bounded_future_formula ~seed:(base + 4000 + i) ~depth:4 in
    let tr =
      Gen.random_trace ~seed:(base + 6000 + i)
        { Gen.default_params with steps = 30 }
    in
    let h = ok (Trace.materialize tr) in
    if future_vec h f <> naive_vec h f then
      (incr fails; Printf.printf "FUTURE mismatch seed %d\n" i)
  done;
  Printf.printf "soak: %d past-engine runs x4 + %d future runs, %d failures\n"
    n_past n_future !fails;
  !fails = 0

let run_repair_chaos ~seed ~iters =
  match Chaos.run_repair ~seed ~iters with
  | Error m ->
    Printf.printf "repair chaos FAILED: %s\n" m;
    false
  | Ok episodes ->
    Printf.printf
      "  repair drill: %d episode(s), %d record(s) replayed, %d torn tail(s)\n"
      (List.length episodes)
      (List.fold_left (fun a e -> a + e.Chaos.replayed) 0 episodes)
      (List.length (List.filter (fun e -> e.Chaos.torn) episodes));
    true

let run_chaos ~seed ~iters =
  match Chaos.run ~seed ~iters with
  | Error m ->
    Printf.printf "chaos FAILED: %s\n" m;
    false
  | Ok episodes ->
    let count p = List.length (List.filter p episodes) in
    let by_plan plan = count (fun e -> e.Chaos.plan = plan) in
    List.iter
      (fun p ->
        Printf.printf "  %-15s %3d episode(s)\n" (Faults.plan_name p)
          (by_plan p))
      Faults.all_plans;
    Printf.printf
      "  torn tails %d, corrupt checkpoints skipped %d, records replayed %d\n"
      (count (fun e -> e.Chaos.torn))
      (List.fold_left (fun a e -> a + e.Chaos.skipped_checkpoints) 0 episodes)
      (List.fold_left (fun a e -> a + e.Chaos.replayed) 0 episodes);
    let lost = count (fun e -> e.Chaos.unrecoverable) in
    if lost > 0 then
      Printf.printf "  detected (reported) data loss in %d episode(s)\n" lost;
    Printf.printf
      "chaos soak: %d episode(s), seed %d, all crash-recovery equivalent\n"
      (List.length episodes) seed;
    (* The on_error=repair drill rides along at half width: repaired
       transactions are journaled as one WAL record, so every crash site
       must see them fully applied or fully absent. *)
    run_repair_chaos ~seed ~iters:(max 2 (iters / 2))

let () =
  let seed = ref 7 and iters = ref 1200 and chaos = ref false in
  let usage = "soak.exe [--chaos] [--seed N] [--iters N]" in
  let specs =
    [ ("--seed", Arg.Set_int seed, "N  base seed (default 7)");
      ("--iters", Arg.Set_int iters,
       "N  iterations: differential runs or chaos episodes (default 1200)");
      ("--chaos", Arg.Set chaos,
       "  crash-recovery equivalence sweep instead of engine differential") ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  let passed =
    if !chaos then run_chaos ~seed:!seed ~iters:!iters
    else run_differential ~seed:!seed ~iters:!iters
  in
  exit (if passed then 0 else 1)
