(* Deep differential verification, opt-in (slow): dune exec tools/soak.exe *)
(* One-off soak: high-volume differential testing of all engines. *)
module Trace = Rtic_temporal.Trace
module History = Rtic_temporal.History
module F = Rtic_mtl.Formula
module Naive = Rtic_eval.Naive
module Incremental = Rtic_core.Incremental
module Future = Rtic_core.Future
module Compile = Rtic_active.Compile
module Gen = Rtic_workload.Gen

let ok = function Ok v -> v | Error m -> failwith m
let cat = Gen.generic_catalog

let naive_vec h f =
  List.init (History.length h) (fun i -> ok (Naive.holds_at h i f))

let inc_vec ?metrics ?config h f =
  let d = { F.name = "s"; body = f } in
  let st = ok (Incremental.create ?metrics ?config cat d) in
  List.fold_left
    (fun (st, acc) (t, db) ->
      let st, v = ok (Incremental.step st ~time:t db) in
      (st, v.Incremental.satisfied :: acc))
    (st, []) (History.snapshots h)
  |> snd |> List.rev

let active_vec h f =
  let prog = ok (Compile.compile cat { F.name = "s"; body = f }) in
  List.fold_left
    (fun (e, acc) (t, db) ->
      let e, b = ok (Compile.step e ~time:t db) in
      (e, b :: acc))
    (Compile.start prog, [])
    (History.snapshots h)
  |> snd |> List.rev

let future_vec h f =
  let st = ok (Future.create cat { F.name = "s"; body = f }) in
  let st, out =
    List.fold_left
      (fun (st, out) (t, db) ->
        let st, vs = ok (Future.step st ~time:t db) in
        (st, out @ vs))
      (st, []) (History.snapshots h)
  in
  List.map (fun v -> v.Future.satisfied) (out @ Future.finish st)

let () =
  let fails = ref 0 in
  let n_past = 1200 and n_future = 400 in
  for i = 1 to n_past do
    let f = Gen.random_formula ~seed:(7000 + i) ~depth:5 in
    let tr = Gen.random_trace ~seed:(9000 + i) { Gen.default_params with steps = 35 } in
    let h = ok (Trace.materialize tr) in
    let nv = naive_vec h f in
    if inc_vec h f <> nv then (incr fails; Printf.printf "INC mismatch seed %d\n" i);
    if inc_vec ~metrics:(Rtic_core.Metrics.create ()) h f <> nv then
      (incr fails; Printf.printf "METRICS mismatch seed %d\n" i);
    if inc_vec ~config:{ Incremental.prune = false } h f <> nv then
      (incr fails; Printf.printf "NOPRUNE mismatch seed %d\n" i);
    if active_vec h f <> nv then (incr fails; Printf.printf "ACTIVE mismatch seed %d\n" i)
  done;
  for i = 1 to n_future do
    let f = Gen.random_bounded_future_formula ~seed:(300 + i) ~depth:4 in
    let tr = Gen.random_trace ~seed:(500 + i) { Gen.default_params with steps = 30 } in
    let h = ok (Trace.materialize tr) in
    if future_vec h f <> naive_vec h f then
      (incr fails; Printf.printf "FUTURE mismatch seed %d\n" i)
  done;
  Printf.printf "soak: %d past-engine runs x4 + %d future runs, %d failures\n"
    n_past n_future !fails;
  exit (if !fails = 0 then 0 else 1)
