(* Load client for the rtic-serve/1 protocol (FORMATS.md §7).

   Replays a generated scenario workload against a running server's
   Unix-domain socket and reports aggregate throughput plus per-client
   request-latency percentiles.  With --clients N the workload splits
   into N disjoint contiguous slices, each replayed over its own
   connection (one domain per client) against its own session
   ("<session>-<i>"); every surviving client cross-checks its replies
   against an in-process batch monitor run over the same slice — same
   reports, same scrubbed rtic-stats/1 document — so a passing run is a
   serve = batch equivalence check, not just a smoke:

     dune exec tools/drive.exe -- --socket /tmp/rtic.sock --steps 500
     dune exec tools/drive.exe -- --spawn _build/default/bin/rtic.exe --clients 4

   With --spawn BIN it owns the whole lifecycle: spawns `BIN serve
   --socket <tmp>`, waits for the socket, drives the workload, requests a
   clean shutdown over a control connection and reaps the child — the
   shape of the bounded smoke that runs under `dune runtest`.

   With --batch K each client packs K transactions into one batched txn
   request (FORMATS.md §7) and unpacks the per-transaction outcomes from
   the reply — the round-trip amortization that makes group commit pay
   on the server side.  Latency percentiles are then per {e request},
   not per transaction.

   Fault drills: --kill-after K makes client 0 die abruptly after K
   replies — mid-transaction, with a txn header promising ops that never
   arrive — and the run only passes if every other client still finishes
   and checks out; --reconnect-at K makes client 0 drop its connection
   before its Kth transaction and reconnect, resuming the same session
   without a fresh open (sessions are server-global, FORMATS.md §7).

   Exit codes: 0 success, 1 protocol/equivalence failure, 2 usage. *)

module Schema = Rtic_relational.Schema
module Textio = Rtic_relational.Textio
module Update = Rtic_relational.Update
module Database = Rtic_relational.Database
module Trace = Rtic_temporal.Trace
module Pretty = Rtic_mtl.Pretty
module Json = Rtic_core.Json
module Monitor = Rtic_core.Monitor
module Metrics = Rtic_core.Metrics
module Stats = Rtic_core.Stats
module Telemetry = Rtic_core.Telemetry
module Scenarios = Rtic_workload.Scenarios

let socket_path = ref ""
let spawn_bin = ref ""
let scenario = ref "banking"
let steps = ref 200
let seed = ref 1
let rate = ref 0.1
let session = ref "load"
let jobs = ref 1
let clients = ref 1
let kill_after = ref (-1)
let reconnect_at = ref (-1)
let batch = ref 1
let latency_out = ref ""

let usage = "drive.exe [--socket PATH | --spawn RTIC_BIN] [options]"

let args =
  [ ("--socket", Arg.Set_string socket_path,
     "PATH  connect to a server already listening on PATH");
    ("--spawn", Arg.Set_string spawn_bin,
     "BIN  spawn `BIN serve --socket <tmp>` and shut it down afterwards");
    ("--scenario", Arg.Set_string scenario,
     "NAME  workload scenario (banking, library, monitoring, logistics)");
    ("--steps", Arg.Set_int steps, "N  transactions to drive (default 200)");
    ("--seed", Arg.Set_int seed, "N  workload PRNG seed (default 1)");
    ("--violation-rate", Arg.Set_float rate,
     "R  injected violation probability per step (default 0.1)");
    ("--session", Arg.Set_string session,
     "NAME  session name to open, suffixed -<i> per client (default load)");
    ("--jobs", Arg.Set_int jobs,
     "N  worker domains for a --spawn'ed server (default 1)");
    ("--clients", Arg.Set_int clients,
     "N  concurrent connections over disjoint workload slices (default 1)");
    ("--batch", Arg.Set_int batch,
     "K  pack K transactions per batched txn request (default 1)");
    ("--kill-after", Arg.Set_int kill_after,
     "K  client 0 dies abruptly mid-transaction after K replies");
    ("--reconnect-at", Arg.Set_int reconnect_at,
     "K  client 0 reconnects before its Kth transaction, same session");
    ("--latency-out", Arg.Set_string latency_out,
     "FILE  write the client-side latency histogram as an rtic-metrics/1 \
      snapshot, cross-checked against the server's `metrics` totals") ]

let die code fmt =
  Printf.ksprintf (fun m -> prerr_endline ("drive: " ^ m); exit code) fmt

(* Client-side failures raise; each client domain catches and reports. *)
exception Client_error of string

let failf fmt = Printf.ksprintf (fun m -> raise (Client_error m)) fmt

let op_line = function
  | Update.Insert (rel, t) -> "+" ^ Textio.fact_to_string rel t
  | Update.Delete (rel, t) -> "-" ^ Textio.fact_to_string rel t

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))

(* One request/reply round trip; replies are single lines, in order. *)
let roundtrip oc ic text =
  output_string oc text;
  flush oc;
  input_line ic

let expect_ok what reply =
  match Json.of_string reply with
  | Error m -> failf "%s: reply is not JSON (%s): %s" what m reply
  | Ok doc ->
    (match Json.member "ok" doc with
     | Some (Json.Bool true) -> doc
     | _ -> failf "%s failed: %s" what reply)

(* ---------------- serve = batch equivalence ---------------- *)

(* Reports are compared as "constraint@position/time" strings, the
   server's from its txn replies, the reference's from Monitor.step. *)
let report_of_json what = function
  | Json.Obj _ as j ->
    (match
       ( Json.member "constraint" j,
         Json.member "position" j,
         Json.member "time" j )
     with
     | Some (Json.Str c), Some (Json.Int p), Some (Json.Int t) ->
       Printf.sprintf "%s@%d/%d" c p t
     | _ -> failf "%s: malformed report object" what)
  | _ -> failf "%s: report is not an object" what

let show_report r =
  Printf.sprintf "%s@%d/%d" r.Monitor.constraint_name r.Monitor.position
    r.Monitor.time

(* Drop the two stats fields a supervised session legitimately differs
   on: wall-clock latency, and the supervisor's own named counters. *)
let rec scrub = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "latency_ns" || k = "counters" then None
           else Some (k, scrub v))
         fields)
  | Json.List items -> Json.List (List.map scrub items)
  | j -> j

(* The batch reference: a plain Monitor fold over this client's slice
   from the same (empty) initial state, aggregating the same Stats. *)
let batch_reference (sc : Scenarios.t) slice =
  let metrics = Metrics.create () in
  let m =
    match
      Monitor.create_with ~metrics (Database.create sc.catalog) sc.constraints
    with
    | Ok m -> m
    | Error e -> failf "batch monitor: %s" e
  in
  let stats = ref Stats.empty in
  let reports_rev = ref [] in
  ignore
    (List.fold_left
       (fun m (time, txn) ->
         match Monitor.step m ~time txn with
         | Error e -> failf "batch step at time %d: %s" time e
         | Ok (m, reports) ->
           stats :=
             Stats.observe !stats ~time ~space:(Monitor.space m) ~reports;
           reports_rev := List.rev_map show_report reports @ !reports_rev;
           m)
       m slice);
  (List.rev !reports_rev, Json.to_string (scrub (Stats.to_json ~metrics !stats)))

(* ---------------- one client ---------------- *)

type outcome =
  | Finished of
      { driven : int;
        violations : int;
        latencies : float array;
        reconnects : int }
  | Killed of { driven : int; violations : int }
  | Failed of string

let connect_client path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
   | () -> ()
   | exception e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let hello = input_line ic in
  (match Json.of_string hello with
   | Ok doc when Json.member "schema" doc = Some (Json.Str "rtic-serve/1") ->
     ()
   | _ -> failf "unexpected greeting: %s" hello);
  (fd, ic, oc)

let run_client ~path ~spec_file ~session ~kill_at ~reconnect_at ~batch
    ~keep_open (sc : Scenarios.t) slice =
  try
    let fd0, ic0, oc0 = connect_client path in
    let fd = ref fd0 and ic = ref ic0 and oc = ref oc0 in
    ignore
      (expect_ok "open"
         (roundtrip !oc !ic (Printf.sprintf "open %s %s\n" session spec_file)));
    let n = List.length slice in
    let lat_rev = ref [] in
    let violations = ref 0 in
    let reports_rev = ref [] in
    let driven = ref 0 in
    let reconnects = ref 0 in
    let killed = ref false in
    (* Shared per-transaction reply handling: must be "checked", and its
       reports feed the serve = batch cross-check. *)
    let check_outcome ~reply time doc =
      (match Json.member "outcome" doc with
       | Some (Json.Str "checked") -> ()
       | _ -> failf "txn at time %d not checked: %s" time reply);
      (match Json.member "reports" doc with
       | Some (Json.List rs) ->
         violations := !violations + List.length rs;
         reports_rev := List.rev_map (report_of_json "txn") rs @ !reports_rev
       | _ -> ());
      incr driven
    in
    (try
       if batch <= 1 then
         List.iteri
           (fun idx (time, txn) ->
             if kill_at = Some idx then begin
               (* die mid-transaction: the header promises ops that never
                  arrive, so the server is left holding a half-received
                  body when the connection drops *)
               output_string !oc
                 (Printf.sprintf "txn %s %d %d\n" session time
                    (List.length txn));
               (match txn with
                | op :: _ -> output_string !oc (op_line op ^ "\n")
                | [] -> ());
               flush !oc;
               Unix.close !fd;
               killed := true;
               raise Exit
             end;
             if reconnect_at = Some idx then begin
               Unix.close !fd;
               let fd', ic', oc' = connect_client path in
               fd := fd';
               ic := ic';
               oc := oc';
               incr reconnects
             end;
             let buf = Buffer.create 256 in
             Buffer.add_string buf
               (Printf.sprintf "txn %s %d %d\n" session time
                  (List.length txn));
             List.iter
               (fun op ->
                 Buffer.add_string buf (op_line op);
                 Buffer.add_char buf '\n')
               txn;
             let t0 = Unix.gettimeofday () in
             let reply = roundtrip !oc !ic (Buffer.contents buf) in
             lat_rev := ((Unix.gettimeofday () -. t0) *. 1e6) :: !lat_rev;
             check_outcome ~reply time (expect_ok "txn" reply))
           slice
       else begin
         (* Batched: up to [batch] transactions per request, one header
            line carrying every TIME NOPS pair, bodies concatenated in
            order.  A single-transaction tail gets the classic reply. *)
         let rec chunks = function
           | [] -> []
           | l ->
             let take = List.filteri (fun j _ -> j < batch) l in
             let rest = List.filteri (fun j _ -> j >= batch) l in
             take :: chunks rest
         in
         List.iter
           (fun group ->
             let buf = Buffer.create 512 in
             Buffer.add_string buf (Printf.sprintf "txn %s" session);
             List.iter
               (fun (time, txn) ->
                 Buffer.add_string buf
                   (Printf.sprintf " %d %d" time (List.length txn)))
               group;
             Buffer.add_char buf '\n';
             List.iter
               (fun (_, txn) ->
                 List.iter
                   (fun op ->
                     Buffer.add_string buf (op_line op);
                     Buffer.add_char buf '\n')
                   txn)
               group;
             let t0 = Unix.gettimeofday () in
             let reply = roundtrip !oc !ic (Buffer.contents buf) in
             lat_rev := ((Unix.gettimeofday () -. t0) *. 1e6) :: !lat_rev;
             let doc = expect_ok "txn" reply in
             match group with
             | [ (time, _) ] -> check_outcome ~reply time doc
             | _ ->
               (match Json.member "outcomes" doc with
                | Some (Json.List outs) ->
                  if List.length outs <> List.length group then
                    failf "batched txn: %d outcome(s) for %d transaction(s)"
                      (List.length outs) (List.length group);
                  List.iter2
                    (fun (time, _) out -> check_outcome ~reply time out)
                    group outs
                | _ -> failf "batched txn reply lacks outcomes: %s" reply))
           (chunks slice)
       end
     with Exit -> ());
    let latencies = Array.of_list (List.rev !lat_rev) in
    if !killed then Killed { driven = !driven; violations = !violations }
    else begin
      (* Cross-check the server's account of the run against ours... *)
      let stats_doc =
        expect_ok "stats"
          (roundtrip !oc !ic (Printf.sprintf "stats %s\n" session))
      in
      let server_stats =
        match Json.member "stats" stats_doc with
        | Some st ->
          (match Json.member "transactions" st, Json.member "violations" st with
           | Some (Json.Int txns), Some (Json.Int viols) ->
             if txns <> n then
               failf "server counted %d transactions, drove %d" txns n;
             if viols <> !violations then
               failf "server counted %d violations, replies carried %d" viols
                 !violations
           | _ -> failf "stats reply lacks transactions/violations");
          Json.to_string (scrub st)
        | None -> failf "stats reply lacks a stats field"
      in
      (* ...and both against the batch reference over the same slice. *)
      let batch_reports, batch_stats = batch_reference sc slice in
      let serve_reports = List.rev !reports_rev in
      if serve_reports <> batch_reports then
        failf "serve/batch report mismatch: serve [%s] batch [%s]"
          (String.concat "; " serve_reports)
          (String.concat "; " batch_reports);
      if server_stats <> batch_stats then
        failf "serve/batch stats mismatch:\n  serve %s\n  batch %s"
          server_stats batch_stats;
      (* with --latency-out the session stays open: the post-run metrics
         snapshot must still list it (sessions are server-global, so
         dropping the connection does not close it) *)
      if not keep_open then
        ignore
          (expect_ok "close"
             (roundtrip !oc !ic (Printf.sprintf "close %s\n" session)));
      close_out_noerr !oc;
      Finished
        { driven = !driven;
          violations = !violations;
          latencies;
          reconnects = !reconnects }
    end
  with
  | Client_error m -> Failed m
  | End_of_file -> Failed "server closed the connection"
  | Unix.Unix_error (e, fn, _) ->
    Failed (Printf.sprintf "%s: %s" fn (Unix.error_message e))

(* ---------------- main ---------------- *)

let () =
  Arg.parse args (fun a -> die 2 "unexpected argument %s" a) usage;
  if (!socket_path = "") = (!spawn_bin = "") then
    die 2 "exactly one of --socket or --spawn is required";
  if !steps < 1 then die 2 "--steps must be at least 1";
  if !clients < 1 then die 2 "--clients must be at least 1";
  if !steps < !clients then
    die 2 "--steps %d cannot cover %d clients (empty slices)" !steps !clients;
  if !kill_after >= 0 && !reconnect_at >= 0 then
    die 2 "--kill-after and --reconnect-at are mutually exclusive";
  if !batch < 1 then die 2 "--batch must be at least 1";
  if !batch > 1 && (!kill_after >= 0 || !reconnect_at >= 0) then
    die 2 "--batch cannot be combined with --kill-after or --reconnect-at";
  let sc =
    match
      List.find_opt (fun (s : Scenarios.t) -> s.name = !scenario) Scenarios.all
    with
    | Some sc -> sc
    | None ->
      die 2 "unknown scenario %s (want %s)" !scenario
        (String.concat ", " (List.map (fun (s : Scenarios.t) -> s.name) Scenarios.all))
  in
  (* Spawn the server if asked, and wait for its socket to appear. *)
  let path, child =
    if !spawn_bin = "" then (!socket_path, None)
    else begin
      let path =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "rtic-drive-%d.sock" (Unix.getpid ()))
      in
      if Sys.file_exists path then Sys.remove path;
      let argv =
        [| !spawn_bin; "serve"; "--socket"; path |]
        |> Array.to_list
        |> (fun l -> if !jobs > 1 then l @ [ "--jobs"; string_of_int !jobs ] else l)
        |> Array.of_list
      in
      let pid =
        Unix.create_process !spawn_bin argv Unix.stdin Unix.stdout Unix.stderr
      in
      let rec wait_sock n =
        if Sys.file_exists path then ()
        else if n = 0 then die 1 "server did not create %s" path
        else begin
          (match Unix.waitpid [ Unix.WNOHANG ] pid with
           | 0, _ -> ()
           | _, st ->
             die 1 "server exited before listening (%s)"
               (match st with
                | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
          Unix.sleepf 0.01;
          wait_sock (n - 1)
        end
      in
      wait_sock 1000;
      (path, Some pid)
    end
  in
  (* One workload, split into disjoint contiguous slices: client i gets
     steps [offset_i, offset_i + size_i) of the same generated trace. *)
  let tr = sc.generate ~seed:!seed ~steps:!steps ~violation_rate:!rate in
  let slices =
    let all = tr.Trace.steps in
    let total = List.length all in
    let base = total / !clients and extra = total mod !clients in
    let rec split i rest =
      if i = !clients then []
      else begin
        let size = base + if i < extra then 1 else 0 in
        let slice = List.filteri (fun j _ -> j < size) rest in
        let rest = List.filteri (fun j _ -> j >= size) rest in
        slice :: split (i + 1) rest
      end
    in
    split 0 all
  in
  (match slices with
   | first :: _ ->
     if !kill_after >= 0 && !kill_after >= List.length first then
       die 2 "--kill-after %d is past client 0's %d-step slice" !kill_after
         (List.length first);
     if !reconnect_at >= 0 && !reconnect_at >= List.length first then
       die 2 "--reconnect-at %d is past client 0's %d-step slice"
         !reconnect_at (List.length first)
   | [] -> ());
  let spec_text =
    String.concat "\n"
      (List.map Textio.schema_to_string (Schema.Catalog.schemas sc.catalog)
       @ List.map Pretty.def_to_string sc.constraints)
    ^ "\n"
  in
  let spec_file = Filename.temp_file "rtic-drive" ".spec" in
  Out_channel.with_open_bin spec_file (fun oc ->
      Out_channel.output_string oc spec_text);
  (* Drive every slice concurrently, one domain per client. *)
  let t_start = Unix.gettimeofday () in
  let domains =
    List.mapi
      (fun i slice ->
        let session =
          if !clients = 1 then !session
          else Printf.sprintf "%s-%d" !session i
        in
        let kill_at = if i = 0 && !kill_after >= 0 then Some !kill_after else None in
        let reconnect_at =
          if i = 0 && !reconnect_at >= 0 then Some !reconnect_at else None
        in
        Domain.spawn (fun () ->
            run_client ~path ~spec_file ~session ~kill_at ~reconnect_at
              ~batch:!batch ~keep_open:(!latency_out <> "") sc slice))
      slices
  in
  let results = List.map Domain.join domains in
  let elapsed = Unix.gettimeofday () -. t_start in
  let failures = ref 0 in
  let driven_total = ref 0 in
  let violations_total = ref 0 in
  List.iteri
    (fun i r ->
      match r with
      | Finished f ->
        driven_total := !driven_total + f.driven;
        violations_total := !violations_total + f.violations
      | Killed k ->
        driven_total := !driven_total + k.driven;
        violations_total := !violations_total + k.violations
      | Failed m ->
        incr failures;
        Printf.eprintf "drive: client %d: %s\n" i m)
    results;
  (* --latency-out: reconcile our count against the server's telemetry,
     close the sessions the clients left open, and write the client-side
     histogram. Runs before shutdown (the snapshot needs a live server)
     and only on a clean run — a failed client makes counts meaningless. *)
  if !latency_out <> "" && !failures = 0 then begin
    let our_sessions =
      List.mapi
        (fun i _ ->
          if !clients = 1 then !session else Printf.sprintf "%s-%d" !session i)
        slices
    in
    (try
       let _, ic, oc = connect_client path in
       let doc = expect_ok "metrics" (roundtrip oc ic "metrics\n") in
       let snap =
         match Json.member "metrics" doc with
         | Some m ->
           (match Telemetry.of_json m with
            | Ok s -> s
            | Error e -> failf "metrics snapshot: %s" e)
         | None -> failf "metrics reply lacks a metrics field"
       in
       let server_sum =
         List.fold_left
           (fun acc (s : Telemetry.session) ->
             if List.mem s.name our_sessions then acc + s.transactions
             else acc)
           0 snap.Telemetry.sessions
       in
       if server_sum <> !driven_total then
         failf
           "metrics cross-check: server counted %d transaction(s) across \
            our sessions, clients drove %d"
           server_sum !driven_total;
       List.iter
         (fun name ->
           ignore
             (expect_ok "close"
                (roundtrip oc ic (Printf.sprintf "close %s\n" name))))
         our_sessions;
       close_out_noerr oc
     with
     | Client_error m -> die 1 "metrics cross-check: %s" m
     | End_of_file -> die 1 "metrics cross-check: server closed the connection");
    let m = Metrics.create () in
    List.iter
      (function
        | Finished f ->
          Array.iter (fun us -> Metrics.record_latency m (us *. 1e-6))
            f.latencies
        | Killed _ | Failed _ -> ())
      results;
    let hist_count =
      match Metrics.latency m with Some l -> l.Metrics.count | None -> 0
    in
    let snap =
      { Telemetry.sessions =
          [ { Telemetry.name = "drive";
              transactions = hist_count;
              violations = !violations_total;
              steps = hist_count;
              last_time = None;
              health = "ok";
              rates = [];
              latency = Metrics.latency m;
              buckets = Metrics.latency_buckets m;
              gauges = [];
              counters = [] } ];
        session_count = 1;
        queued = 0;
        max_pending = 0;
        stopped = false;
        transactions = !driven_total;
        rates = [] }
    in
    Out_channel.with_open_bin !latency_out (fun oc ->
        Out_channel.output_string oc
          (Json.to_string (Telemetry.to_json snap) ^ "\n"));
    Printf.printf
      "drive: wrote client-side latency histogram (%d sample(s)) to %s; \
       server metrics agree\n"
      hist_count !latency_out
  end;
  (* Shut the spawned server down over a control connection — proof the
     server survived whatever the drills did to the client fleet. *)
  (match child with
   | None -> ()
   | Some pid ->
     (try
        let _, ic, oc = connect_client path in
        ignore (expect_ok "shutdown" (roundtrip oc ic "shutdown\n"));
        close_out_noerr oc
      with Client_error m -> die 1 "control connection: %s" m);
     (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, st ->
        die 1 "server did not shut down cleanly (%s)"
          (match st with
           | Unix.WEXITED c -> Printf.sprintf "exit %d" c
           | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
           | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s)));
  Sys.remove spec_file;
  (* Report: aggregate throughput, then one line per client. *)
  Printf.printf
    "drive: %s scenario, %d txn(s) over %d client(s) in %.3f s — %.1f txn/s\n"
    sc.name !driven_total !clients elapsed
    (float_of_int !driven_total /. elapsed);
  List.iteri
    (fun i r ->
      match r with
      | Finished f ->
        let sorted = Array.copy f.latencies in
        Array.sort compare sorted;
        Printf.printf
          "client %d: %d txn(s)  p50 %.1f us  p95 %.1f us  p99 %.1f us  max %.1f us%s\n"
          i f.driven (percentile sorted 0.50) (percentile sorted 0.95)
          (percentile sorted 0.99) (percentile sorted 1.0)
          (if f.reconnects > 0 then
             Printf.sprintf "  (reconnected x%d)" f.reconnects
           else "")
      | Killed k ->
        Printf.printf "client %d: killed after %d txn(s) (drill)\n" i k.driven
      | Failed _ -> Printf.printf "client %d: FAILED\n" i)
    results;
  Printf.printf "violations reported: %d\n" !violations_total;
  if !failures > 0 then exit 1
