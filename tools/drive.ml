(* Load client for the rtic-serve/1 protocol (FORMATS.md §7).

   Replays a generated scenario workload against a running server's
   Unix-domain socket and reports throughput and request-latency
   percentiles:

     dune exec tools/drive.exe -- --socket /tmp/rtic.sock --steps 500

   With --spawn BIN it owns the whole lifecycle: spawns `BIN serve
   --socket <tmp>`, waits for the socket, drives the workload, requests a
   clean shutdown and reaps the child — the shape of the bounded smoke
   that runs under `dune runtest`:

     dune exec tools/drive.exe -- --spawn _build/default/bin/rtic.exe

   Exit codes: 0 success, 1 protocol/equivalence failure, 2 usage. *)

module Schema = Rtic_relational.Schema
module Textio = Rtic_relational.Textio
module Update = Rtic_relational.Update
module Trace = Rtic_temporal.Trace
module Pretty = Rtic_mtl.Pretty
module Json = Rtic_core.Json
module Scenarios = Rtic_workload.Scenarios

let socket_path = ref ""
let spawn_bin = ref ""
let scenario = ref "banking"
let steps = ref 200
let seed = ref 1
let rate = ref 0.1
let session = ref "load"
let jobs = ref 1

let usage = "drive.exe [--socket PATH | --spawn RTIC_BIN] [options]"

let args =
  [ ("--socket", Arg.Set_string socket_path,
     "PATH  connect to a server already listening on PATH");
    ("--spawn", Arg.Set_string spawn_bin,
     "BIN  spawn `BIN serve --socket <tmp>` and shut it down afterwards");
    ("--scenario", Arg.Set_string scenario,
     "NAME  workload scenario (banking, library, monitoring, logistics)");
    ("--steps", Arg.Set_int steps, "N  transactions to drive (default 200)");
    ("--seed", Arg.Set_int seed, "N  workload PRNG seed (default 1)");
    ("--violation-rate", Arg.Set_float rate,
     "R  injected violation probability per step (default 0.1)");
    ("--session", Arg.Set_string session,
     "NAME  session name to open (default load)");
    ("--jobs", Arg.Set_int jobs,
     "N  worker domains for a --spawn'ed server (default 1)") ]

let die code fmt = Printf.ksprintf (fun m -> prerr_endline ("drive: " ^ m); exit code) fmt

let op_line = function
  | Update.Insert (rel, t) -> "+" ^ Textio.fact_to_string rel t
  | Update.Delete (rel, t) -> "-" ^ Textio.fact_to_string rel t

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))

(* One request/reply round trip; replies are single lines, in order. *)
let roundtrip oc ic text =
  output_string oc text;
  flush oc;
  input_line ic

let expect_ok what reply =
  match Json.of_string reply with
  | Error m -> die 1 "%s: reply is not JSON (%s): %s" what m reply
  | Ok doc ->
    (match Json.member "ok" doc with
     | Some (Json.Bool true) -> doc
     | _ -> die 1 "%s failed: %s" what reply)

let () =
  Arg.parse args (fun a -> die 2 "unexpected argument %s" a) usage;
  if (!socket_path = "") = (!spawn_bin = "") then
    die 2 "exactly one of --socket or --spawn is required";
  if !steps < 1 then die 2 "--steps must be at least 1";
  let sc =
    match
      List.find_opt (fun (s : Scenarios.t) -> s.name = !scenario) Scenarios.all
    with
    | Some sc -> sc
    | None ->
      die 2 "unknown scenario %s (want %s)" !scenario
        (String.concat ", " (List.map (fun (s : Scenarios.t) -> s.name) Scenarios.all))
  in
  (* Spawn the server if asked, and wait for its socket to appear. *)
  let path, child =
    if !spawn_bin = "" then (!socket_path, None)
    else begin
      let path =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "rtic-drive-%d.sock" (Unix.getpid ()))
      in
      if Sys.file_exists path then Sys.remove path;
      let argv =
        [| !spawn_bin; "serve"; "--socket"; path |]
        |> Array.to_list
        |> (fun l -> if !jobs > 1 then l @ [ "--jobs"; string_of_int !jobs ] else l)
        |> Array.of_list
      in
      let pid =
        Unix.create_process !spawn_bin argv Unix.stdin Unix.stdout Unix.stderr
      in
      let rec wait_sock n =
        if Sys.file_exists path then ()
        else if n = 0 then die 1 "server did not create %s" path
        else begin
          (match Unix.waitpid [ Unix.WNOHANG ] pid with
           | 0, _ -> ()
           | _, st ->
             die 1 "server exited before listening (%s)"
               (match st with
                | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
          Unix.sleepf 0.01;
          wait_sock (n - 1)
        end
      in
      wait_sock 1000;
      (path, Some pid)
    end
  in
  (* Generate the workload and write its spec where the server can read it. *)
  let tr = sc.generate ~seed:!seed ~steps:!steps ~violation_rate:!rate in
  let spec_text =
    String.concat "\n"
      (List.map Textio.schema_to_string (Schema.Catalog.schemas sc.catalog)
       @ List.map Pretty.def_to_string sc.constraints)
    ^ "\n"
  in
  let spec_file = Filename.temp_file "rtic-drive" ".spec" in
  Out_channel.with_open_bin spec_file (fun oc ->
      Out_channel.output_string oc spec_text);
  (* Connect and drive. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let hello = input_line ic in
  (match Json.of_string hello with
   | Ok doc when Json.member "schema" doc = Some (Json.Str "rtic-serve/1") ->
     ()
   | _ -> die 1 "unexpected greeting: %s" hello);
  ignore
    (expect_ok "open"
       (roundtrip oc ic
          (Printf.sprintf "open %s %s\n" !session spec_file)));
  let latencies = Array.make (List.length tr.Trace.steps) 0.0 in
  let violations = ref 0 in
  let t_start = Unix.gettimeofday () in
  List.iteri
    (fun i (time, txn) ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "txn %s %d %d\n" !session time (List.length txn));
      List.iter
        (fun op ->
          Buffer.add_string buf (op_line op);
          Buffer.add_char buf '\n')
        txn;
      let t0 = Unix.gettimeofday () in
      let reply = roundtrip oc ic (Buffer.contents buf) in
      latencies.(i) <- (Unix.gettimeofday () -. t0) *. 1e6;
      let doc = expect_ok "txn" reply in
      (match Json.member "outcome" doc with
       | Some (Json.Str "checked") -> ()
       | _ -> die 1 "txn at time %d not checked: %s" time reply);
      match Json.member "reports" doc with
      | Some (Json.List rs) -> violations := !violations + List.length rs
      | _ -> ())
    tr.Trace.steps;
  let elapsed = Unix.gettimeofday () -. t_start in
  let stats_doc =
    expect_ok "stats" (roundtrip oc ic (Printf.sprintf "stats %s\n" !session))
  in
  (* Cross-check the server's account of the run against ours. *)
  (match Json.member "stats" stats_doc with
   | Some st ->
     (match Json.member "transactions" st, Json.member "violations" st with
      | Some (Json.Int txns), Some (Json.Int viols) ->
        if txns <> !steps then
          die 1 "server counted %d transactions, drove %d" txns !steps;
        if viols <> !violations then
          die 1 "server counted %d violations, replies carried %d" viols
            !violations
      | _ -> die 1 "stats reply lacks transactions/violations")
   | None -> die 1 "stats reply lacks a stats field");
  ignore
    (expect_ok "close" (roundtrip oc ic (Printf.sprintf "close %s\n" !session)));
  (match child with
   | None -> ()
   | Some pid ->
     ignore (expect_ok "shutdown" (roundtrip oc ic "shutdown\n"));
     (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, st ->
        die 1 "server did not shut down cleanly (%s)"
          (match st with
           | Unix.WEXITED c -> Printf.sprintf "exit %d" c
           | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
           | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s)));
  close_out_noerr oc;
  Sys.remove spec_file;
  Array.sort compare latencies;
  Printf.printf "drive: %s scenario, %d txn(s) in %.3f s — %.1f txn/s\n"
    sc.name !steps elapsed
    (float_of_int !steps /. elapsed);
  Printf.printf
    "latency: p50 %.1f us  p95 %.1f us  p99 %.1f us  max %.1f us\n"
    (percentile latencies 0.50)
    (percentile latencies 0.95)
    (percentile latencies 0.99)
    (percentile latencies 1.0);
  Printf.printf "violations reported: %d\n" !violations
