(* Bench regression guard: compare fresh BENCH_*.json artifacts (schema
   rtic-bench/1) against the checked-in baselines and fail when a timing
   metric regressed past its tolerance.

     bench_diff --baseline-dir bench/baselines [--default-tol 0.05]
                [--tol ns_per_run=0.35] BENCH_MICRO.json ...

   Series entries are matched by their "name" field when present, by
   position otherwise; within a matched pair every numeric leaf with a
   time-like key (ns_per_run, ms, or a *_ns/*_ms/*_us suffix) is compared.
   A fresh value above baseline * (1 + tol) is a regression. Faster runs,
   metrics new in the fresh artifact, and non-timing fields never fail.
   Speedup-like keys (speedup, or a *_speedup suffix — the BENCH_PAR
   family) and throughput-like keys (txns_per_sec, or a *_per_sec suffix —
   the BENCH_SERVE family) invert the rule: higher is better, and a fresh
   value below baseline * (1 - tol) is the regression.
   Exit 0 when clean, 1 on any regression, 2 on usage or parse errors. *)

module Json = Rtic_core.Json

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("bench_diff: " ^ m); exit 2) fmt

let read_json path =
  let text =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error m -> die "%s" m
  in
  match Json.of_string text with
  | Ok j -> j
  | Error m -> die "%s: %s" path m

let time_like key =
  key = "ns_per_run" || key = "ms"
  || List.exists
       (fun suffix ->
         String.length key > String.length suffix
         && String.ends_with ~suffix key)
       [ "_ns"; "_ms"; "_us" ]

(* Metrics where LOWER is the regression: parallel speedups and service
   throughput. *)
let inverted_like key =
  key = "speedup"
  || (String.length key > 8 && String.ends_with ~suffix:"_speedup" key)
  || (String.length key > 8 && String.ends_with ~suffix:"_per_sec" key)

let watched key = time_like key || inverted_like key

(* Every time-like numeric leaf under [j], with a dotted path for display
   and the bare key for tolerance lookup. *)
let rec metrics prefix j =
  match j with
  | Json.Obj fields ->
    List.concat_map
      (fun (k, v) ->
        let path = if prefix = "" then k else prefix ^ "." ^ k in
        match v with
        | (Json.Int _ | Json.Float _) when watched k ->
          [ (path, k, Option.get (Json.to_float v)) ]
        | _ -> metrics path v)
      fields
  | Json.List items ->
    List.concat (List.mapi (fun i v -> metrics (Printf.sprintf "%s[%d]" prefix i) v) items)
  | _ -> []

let series_of path j =
  (match Json.member "schema" j |> Option.map Json.to_str with
   | Some (Some "rtic-bench/1") -> ()
   | _ -> die "%s: not an rtic-bench/1 artifact" path);
  match Json.member "series" j |> Option.map Json.to_list with
  | Some (Some items) -> items
  | _ -> die "%s: missing series list" path

let entry_name i j =
  match Json.member "name" j |> Option.map Json.to_str with
  | Some (Some n) -> n
  | _ -> Printf.sprintf "#%d" i

let () =
  let baseline_dir = ref None in
  let default_tol = ref 0.05 in
  let tols : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let fresh_files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--baseline-dir" :: dir :: rest ->
      baseline_dir := Some dir;
      parse rest
    | "--default-tol" :: r :: rest ->
      (match float_of_string_opt r with
       | Some f when f >= 0.0 -> default_tol := f
       | _ -> die "--default-tol wants a non-negative number, got %s" r);
      parse rest
    | "--tol" :: kv :: rest ->
      (match String.index_opt kv '=' with
       | Some i ->
         let key = String.sub kv 0 i in
         let r = String.sub kv (i + 1) (String.length kv - i - 1) in
         (match float_of_string_opt r with
          | Some f when f >= 0.0 -> Hashtbl.replace tols key f
          | _ -> die "--tol %s: bad ratio" kv)
       | None -> die "--tol wants KEY=RATIO, got %s" kv);
      parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      die "unknown option %s" arg
    | file :: rest ->
      fresh_files := file :: !fresh_files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_dir =
    match !baseline_dir with
    | Some d -> d
    | None -> die "--baseline-dir is required"
  in
  let fresh_files = List.rev !fresh_files in
  if fresh_files = [] then die "no fresh artifacts given";
  let regressions = ref 0 in
  List.iter
    (fun fresh_path ->
      let base_path = Filename.concat baseline_dir (Filename.basename fresh_path) in
      if not (Sys.file_exists base_path) then
        Printf.printf "%-24s no baseline (%s), skipped\n"
          (Filename.basename fresh_path) base_path
      else begin
        let fresh = series_of fresh_path (read_json fresh_path) in
        let base = series_of base_path (read_json base_path) in
        let base_by_name =
          List.mapi (fun i j -> (entry_name i j, j)) base
        in
        List.iteri
          (fun i fj ->
            let name = entry_name i fj in
            match List.assoc_opt name base_by_name with
            | None ->
              Printf.printf "%-28s new series (no baseline)\n" name
            | Some bj ->
              let base_metrics = metrics "" bj in
              List.iter
                (fun (path, key, fv) ->
                  match
                    List.find_opt (fun (p, _, _) -> p = path) base_metrics
                  with
                  | None ->
                    Printf.printf "%-28s %-24s new metric (no baseline)\n"
                      name path
                  | Some (_, _, bv) ->
                    let tol =
                      Option.value ~default:!default_tol
                        (Hashtbl.find_opt tols key)
                    in
                    let ratio = if bv = 0.0 then 0.0 else fv /. bv in
                    let bad =
                      if inverted_like key then fv < bv *. (1.0 -. tol)
                      else fv > bv *. (1.0 +. tol)
                    in
                    if bad then incr regressions;
                    Printf.printf
                      "%-28s %-24s %12.1f -> %12.1f  (%+.1f%%, tol %.0f%%)%s\n"
                      name path bv fv
                      (100.0 *. (ratio -. 1.0))
                      (100.0 *. tol)
                      (if bad then "  REGRESSION" else ""))
                (metrics "" fj))
          fresh
      end)
    fresh_files;
  if !regressions > 0 then begin
    Printf.printf "%d regression(s)\n" !regressions;
    exit 1
  end
  else print_endline "no regressions"
