module Database = Rtic_relational.Database

type t = {
  snaps : (int * Database.t) array;  (* non-empty, strictly increasing times *)
}

let initial ~time db = { snaps = [| (time, db) |] }

let last_time h = fst h.snaps.(Array.length h.snaps - 1)

let extend h ~time db =
  if time <= last_time h then
    Error
      (Printf.sprintf "non-increasing timestamp: %d after %d" time (last_time h))
  else Ok { snaps = Array.append h.snaps [| (time, db) |] }

let extend_exn h ~time db =
  match extend h ~time db with
  | Ok h -> h
  | Error m -> invalid_arg ("History.extend_exn: " ^ m)

let of_snapshots = function
  | [] -> Error "empty history"
  | (t0, d0) :: rest ->
    List.fold_left
      (fun acc (t, d) ->
        match acc with
        | Error _ as e -> e
        | Ok h -> extend h ~time:t d)
      (Ok (initial ~time:t0 d0))
      rest

let length h = Array.length h.snaps
let last h = Array.length h.snaps - 1

let check_pos h i =
  if i < 0 || i >= Array.length h.snaps then
    invalid_arg (Printf.sprintf "History: position %d out of range" i)

let time h i =
  check_pos h i;
  fst h.snaps.(i)

let db h i =
  check_pos h i;
  snd h.snaps.(i)

let snapshots h = Array.to_list h.snaps

let stored_tuples h =
  Array.fold_left (fun acc (_, d) -> acc + Database.cardinal d) 0 h.snaps

let pp ppf h =
  Array.iteri
    (fun i (t, d) ->
      if i > 0 then Format.pp_print_newline ppf ();
      Format.fprintf ppf "@[<v>@%d@,%a@]" t Database.pp d)
    h.snaps
