(** Metric intervals for real-time temporal operators.

    An interval [[l, u]] constrains the distance (in clock ticks) between the
    current state and a past state: [l] is a natural number, [u] is a natural
    number or infinity, and [l <= u]. Intervals decorate every temporal
    operator of the constraint language; the special interval [[0, ∞]]
    recovers the qualitative (non-real-time) operators. *)

type t
(** A metric interval. Abstract to preserve the invariants [0 <= lo] and
    [lo <= hi] when the upper bound is finite. *)

val make : int -> int option -> t
(** [make l u] is [[l, u]]; [u = None] means infinity.
    Raises [Invalid_argument] if [l < 0] or [u < l]. *)

val bounded : int -> int -> t
(** [bounded l u] is [make l (Some u)]. *)

val unbounded : int -> t
(** [unbounded l] is [[l, ∞]]. *)

val full : t
(** [[0, ∞]] — the qualitative interval. *)

val point : int -> t
(** [point k] is [[k, k]]. *)

val lo : t -> int
(** Lower bound. *)

val hi : t -> int option
(** Upper bound; [None] for infinity. *)

val is_bounded : t -> bool
(** [true] iff the upper bound is finite. *)

val is_full : t -> bool
(** [true] iff the interval is [[0, ∞]]. *)

val mem : int -> t -> bool
(** [mem d i] is [true] iff distance [d] lies in [i]. Distances are never
    negative in well-formed histories, but negative [d] simply yields
    [false]. *)

val width : t -> int option
(** [width [l,u]] is [Some (u - l)], or [None] when unbounded. *)

val inter : t -> t -> t option
(** Intersection, or [None] when disjoint. *)

val hull : t -> t -> t
(** Smallest interval containing both arguments. *)

val shift : int -> t -> t
(** [shift k i] adds [k] to both bounds, clamping the lower bound at 0.
    Used when composing nested operator windows. *)

val equal : t -> t -> bool
(** Structural equality. *)

val compare : t -> t -> int
(** Total order (by lower bound, then upper, with ∞ greatest). *)

val pp : Format.formatter -> t -> unit
(** Prints as [[l,u]] or [[l,inf]]; prints nothing for the full interval
    (matching the concrete syntax where [once p] means [once[0,inf] p]). *)

val pp_always : Format.formatter -> t -> unit
(** Like {!pp} but prints the full interval explicitly as [[0,inf]]. *)
