type t = {
  lo : int;
  hi : int option;
}

let make l u =
  if l < 0 then invalid_arg "Interval.make: negative lower bound";
  (match u with
   | Some u when u < l -> invalid_arg "Interval.make: upper bound below lower"
   | _ -> ());
  { lo = l; hi = u }

let bounded l u = make l (Some u)
let unbounded l = make l None
let full = { lo = 0; hi = None }
let point k = make k (Some k)
let lo i = i.lo
let hi i = i.hi
let is_bounded i = i.hi <> None
let is_full i = i.lo = 0 && i.hi = None

let mem d i =
  d >= i.lo && (match i.hi with None -> true | Some u -> d <= u)

let width i =
  match i.hi with
  | None -> None
  | Some u -> Some (u - i.lo)

let inter a b =
  let l = max a.lo b.lo in
  let u =
    match a.hi, b.hi with
    | None, x | x, None -> x
    | Some x, Some y -> Some (min x y)
  in
  match u with
  | Some u when u < l -> None
  | _ -> Some { lo = l; hi = u }

let hull a b =
  let l = min a.lo b.lo in
  let u =
    match a.hi, b.hi with
    | None, _ | _, None -> None
    | Some x, Some y -> Some (max x y)
  in
  { lo = l; hi = u }

let shift k i =
  { lo = max 0 (i.lo + k); hi = Option.map (fun u -> max 0 (u + k)) i.hi }

let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  let c = Stdlib.compare a.lo b.lo in
  if c <> 0 then c
  else
    match a.hi, b.hi with
    | None, None -> 0
    | None, Some _ -> 1
    | Some _, None -> -1
    | Some x, Some y -> Stdlib.compare x y

let pp_always ppf i =
  match i.hi with
  | None -> Format.fprintf ppf "[%d,inf]" i.lo
  | Some u -> Format.fprintf ppf "[%d,%d]" i.lo u

let pp ppf i = if is_full i then () else pp_always ppf i
