(** Update traces: the input stream of a constraint monitor.

    A trace is a catalog, an (unstamped) initial database, and a non-empty
    sequence of timestamped transactions. Materializing a trace yields the
    timed history whose snapshot [i] is the state after transaction [i],
    stamped with that transaction's commit time. The incremental checker
    consumes traces one transaction at a time; the naive checker materializes
    them in full.

    Concrete text syntax (see {!parse}):
    {v
    schema emp(name:str, sal:int)
    @0
    +emp("alice", 100)
    @5
    -emp("alice", 100)
    +emp("alice", 120)
    v}
    Each [@t] opens a transaction committed at time [t]; [+fact] and [-fact]
    lines are its inserts and deletes. Timestamps must strictly increase. *)

type t = {
  cat : Rtic_relational.Schema.Catalog.t;
  init : Rtic_relational.Database.t;
      (** State before the first transaction; not itself a snapshot. *)
  steps : (int * Rtic_relational.Update.transaction) list;
      (** Timestamped transactions, strictly increasing times, non-empty. *)
}

val make :
  Rtic_relational.Schema.Catalog.t ->
  ?init:Rtic_relational.Database.t ->
  (int * Rtic_relational.Update.transaction) list ->
  (t, string) result
(** [make cat ~init steps] validates that [steps] is non-empty, timestamps
    strictly increase, and every transaction applies cleanly from [init]
    (types, known relations). [init] defaults to the empty database over
    [cat]. *)

val make_exn :
  Rtic_relational.Schema.Catalog.t ->
  ?init:Rtic_relational.Database.t ->
  (int * Rtic_relational.Update.transaction) list ->
  t
(** Like {!make} but raises [Invalid_argument]. *)

val length : t -> int
(** Number of transactions. *)

val materialize : t -> (History.t, string) result
(** Replay all transactions into a full timed history. *)

val materialize_exn : t -> History.t
(** Like {!materialize} but raises [Failure]. *)

val parse : string -> (t, string) result
(** Parse the text syntax described above. *)

val to_string : t -> string
(** Render in the text syntax; [parse (to_string tr)] succeeds and yields a
    trace with the same materialization whenever [tr.init] is empty (an
    initial database is rendered as an extra leading transaction only if
    non-empty, in which case it is folded into the first snapshot). *)

val pp : Format.formatter -> t -> unit
(** Same output as {!to_string}. *)
