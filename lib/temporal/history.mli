(** Timed database histories.

    A history is a finite sequence of snapshots
    [(D_0, t_0), (D_1, t_1), ..., (D_n, t_n)] with strictly increasing
    integer timestamps: each snapshot is the database state committed by one
    transaction, stamped by the real-time clock. Histories are what the
    {i naive} checker stores in full and what the paper's incremental checker
    avoids storing.

    Positions are 0-based indices into the sequence. *)

type t
(** A non-empty timed history. *)

val initial : time:int -> Rtic_relational.Database.t -> t
(** [initial ~time db] is the one-snapshot history [(db, time)]. *)

val extend : t -> time:int -> Rtic_relational.Database.t -> (t, string) result
(** [extend h ~time db] appends a snapshot; fails unless [time] is strictly
    greater than the last timestamp. *)

val extend_exn : t -> time:int -> Rtic_relational.Database.t -> t
(** Like {!extend} but raises [Invalid_argument]. *)

val of_snapshots : (int * Rtic_relational.Database.t) list -> (t, string) result
(** Build from an explicit snapshot list; fails on an empty list or
    non-increasing timestamps. *)

val length : t -> int
(** Number of snapshots (at least 1). *)

val last : t -> int
(** Index of the last snapshot, i.e. [length h - 1]. *)

val time : t -> int -> int
(** [time h i] is the timestamp of snapshot [i].
    Raises [Invalid_argument] when out of range. *)

val db : t -> int -> Rtic_relational.Database.t
(** [db h i] is the database of snapshot [i].
    Raises [Invalid_argument] when out of range. *)

val snapshots : t -> (int * Rtic_relational.Database.t) list
(** All snapshots in order. *)

val stored_tuples : t -> int
(** Total number of tuples stored across all snapshots — the space cost of
    keeping the full history, measured by the benchmarks. *)

val pp : Format.formatter -> t -> unit
(** One snapshot per block: [@time] followed by the database. *)
