module R = Rtic_relational

type t = {
  cat : R.Schema.Catalog.t;
  init : R.Database.t;
  steps : (int * R.Update.transaction) list;
}

let ( let* ) r f = Result.bind r f

let validate cat init steps =
  if steps = [] then Error "trace has no transactions"
  else
    let rec go prev_time db = function
      | [] -> Ok ()
      | (time, txn) :: rest ->
        (match prev_time with
         | Some p when time <= p ->
           Error (Printf.sprintf "non-increasing timestamp: %d after %d" time p)
         | _ ->
           let* db = R.Update.apply db txn in
           go (Some time) db rest)
    in
    let* () = go None init steps in
    ignore cat;
    Ok ()

let make cat ?init steps =
  let init = match init with Some db -> db | None -> R.Database.create cat in
  let* () = validate cat init steps in
  Ok { cat; init; steps }

let make_exn cat ?init steps =
  match make cat ?init steps with
  | Ok t -> t
  | Error m -> invalid_arg ("Trace.make_exn: " ^ m)

let length t = List.length t.steps

let materialize t =
  match t.steps with
  | [] -> Error "trace has no transactions"
  | (t0, txn0) :: rest ->
    let* d0 = R.Update.apply t.init txn0 in
    List.fold_left
      (fun acc (time, txn) ->
        let* h, db = acc in
        let* db = R.Update.apply db txn in
        let* h = History.extend h ~time db in
        Ok (h, db))
      (Ok (History.initial ~time:t0 d0, d0))
      rest
    |> Result.map fst

let materialize_exn t =
  match materialize t with
  | Ok h -> h
  | Error m -> failwith ("Trace.materialize: " ^ m)

let parse text =
  let lines = String.split_on_char '\n' text in
  (* First pass: schemas, then blocks. *)
  let rec go lineno cat blocks current = function
    | [] ->
      let blocks =
        match current with
        | None -> List.rev blocks
        | Some (time, ops) -> List.rev ((time, List.rev ops) :: blocks)
      in
      let steps = blocks in
      (match make cat steps with
       | Ok t -> Ok t
       | Error m -> Error m)
    | line :: rest ->
      let body = R.Textio.strip_comment line in
      if body = "" then go (lineno + 1) cat blocks current rest
      else if String.length body >= 7 && String.sub body 0 7 = "schema " then
        match R.Textio.parse_schema_line body with
        | Ok s -> go (lineno + 1) (R.Schema.Catalog.add s cat) blocks current rest
        | Error m -> Error (Printf.sprintf "line %d: %s" lineno m)
      else if body.[0] = '@' then
        let time_s = String.sub body 1 (String.length body - 1) in
        (match int_of_string_opt (String.trim time_s) with
         | None -> Error (Printf.sprintf "line %d: bad timestamp %S" lineno body)
         | Some time ->
           let blocks =
             match current with
             | None -> blocks
             | Some (t, ops) -> (t, List.rev ops) :: blocks
           in
           go (lineno + 1) cat blocks (Some (time, [])) rest)
      else if body.[0] = '+' || body.[0] = '-' then
        let sign = body.[0] in
        let fact_s = String.sub body 1 (String.length body - 1) in
        (match R.Textio.parse_fact fact_s with
         | Error m -> Error (Printf.sprintf "line %d: %s" lineno m)
         | Ok (rel, tup) ->
           let op =
             if sign = '+' then R.Update.Insert (rel, tup)
             else R.Update.Delete (rel, tup)
           in
           (match current with
            | None ->
              Error
                (Printf.sprintf "line %d: update before any '@time' marker"
                   lineno)
            | Some (t, ops) -> go (lineno + 1) cat blocks (Some (t, op :: ops)) rest))
      else Error (Printf.sprintf "line %d: unrecognized line %S" lineno body)
  in
  go 1 R.Schema.Catalog.empty [] None lines

let to_string t =
  let buf = Buffer.create 512 in
  List.iter
    (fun s ->
      Buffer.add_string buf (R.Textio.schema_to_string s);
      Buffer.add_char buf '\n')
    (R.Schema.Catalog.schemas t.cat);
  let init_ops =
    R.Database.fold
      (fun name r acc ->
        R.Relation.fold (fun tup acc -> R.Update.Insert (name, tup) :: acc) r acc)
      t.init []
    |> List.rev
  in
  let steps =
    match t.steps, init_ops with
    | (t0, txn0) :: rest, _ :: _ -> (t0, init_ops @ txn0) :: rest
    | steps, _ -> steps
  in
  List.iter
    (fun (time, txn) ->
      Buffer.add_string buf (Printf.sprintf "@%d\n" time);
      List.iter
        (fun op ->
          let sign, rel, tup =
            match op with
            | R.Update.Insert (rel, tup) -> '+', rel, tup
            | R.Update.Delete (rel, tup) -> '-', rel, tup
          in
          Buffer.add_char buf sign;
          Buffer.add_string buf (R.Textio.fact_to_string rel tup);
          Buffer.add_char buf '\n')
        txn)
    steps;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
