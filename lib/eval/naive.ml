module Interval = Rtic_temporal.Interval
module History = Rtic_temporal.History
module Formula = Rtic_mtl.Formula
module Rewrite = Rtic_mtl.Rewrite
open Formula

(* [eval_core h i f] — f is core and monitorable. Raises Fo.Error. *)
let rec eval_core h i f =
  if i = 0 then Fo.eval ~db:(History.db h i) ~temporal:(eval_temporal h i) f
  else
    Fo.eval ~db:(History.db h i)
      ~prev:(History.db h (i - 1))
      ~temporal:(eval_temporal h i) f

and eval_temporal h i f =
  match f with
  | Prev (iv, a) ->
    if i = 0 then Valrel.none (free_var_list a)
    else
      let gap = History.time h i - History.time h (i - 1) in
      if Interval.mem gap iv then eval_core h (i - 1) a
      else Valrel.none (free_var_list a)
  | Once (iv, a) ->
    let now = History.time h i in
    let acc = ref (Valrel.none (free_var_list a)) in
    let j = ref i in
    let continue = ref true in
    while !continue && !j >= 0 do
      let d = now - History.time h !j in
      (match Interval.hi iv with
       | Some u when d > u -> continue := false
       | _ ->
         if Interval.mem d iv then acc := Valrel.union !acc (eval_core h !j a));
      decr j
    done;
    !acc
  | Since (iv, a, b) ->
    let now = History.time h i in
    let fv_since =
      Var_set.union (free_vars a) (free_vars b) |> Var_set.elements
    in
    (* Positive left argument: maintain [constr], the join of the left
       argument's relations at positions (j, i]; a candidate from the right
       argument at j survives iff it joins with [constr].
       Negated left argument [not a']: maintain [bad], the union of a''s
       relations at positions (j, i]; a candidate survives iff it anti-joins. *)
    let negated, left =
      match a with
      | Not a' -> (true, a')
      | _ -> (false, a)
    in
    let acc = ref (Valrel.none fv_since) in
    let constr = ref Valrel.unit in
    let bad = ref (Valrel.none (free_var_list left)) in
    let j = ref i in
    let continue = ref true in
    while !continue && !j >= 0 do
      let d = now - History.time h !j in
      (match Interval.hi iv with
       | Some u when d > u -> continue := false
       | _ ->
         if Interval.mem d iv then begin
           let cand = eval_core h !j b in
           let surviving =
             if negated then Valrel.antijoin cand !bad
             else Valrel.join cand !constr
           in
           acc := Valrel.union !acc surviving
         end;
         (* Extend the survivor condition with position j before moving to
            j-1 (the left argument must hold strictly after the witness). *)
         if !continue && !j >= 1 then begin
           let lv = eval_core h !j left in
           if negated then bad := Valrel.union !bad lv
           else begin
             constr := Valrel.join !constr lv;
             (* An empty survivor condition kills every older candidate. *)
             if Valrel.is_empty !constr then continue := false
           end
         end);
      decr j
    done;
    !acc
  | Next (iv, a) ->
    if i = History.last h then Valrel.none (free_var_list a)
    else
      let gap = History.time h (i + 1) - History.time h i in
      if Interval.mem gap iv then eval_core h (i + 1) a
      else Valrel.none (free_var_list a)
  | Until (iv, a, b) ->
    (* Mirror image of Since, walking forward: a witness for the right
       argument at j >= i within the interval, with the left argument
       holding at every k with i <= k < j. *)
    let now = History.time h i in
    let fv_until =
      Var_set.union (free_vars a) (free_vars b) |> Var_set.elements
    in
    let negated, left =
      match a with
      | Not a' -> (true, a')
      | _ -> (false, a)
    in
    let acc = ref (Valrel.none fv_until) in
    let constr = ref Valrel.unit in
    let bad = ref (Valrel.none (free_var_list left)) in
    let j = ref i in
    let continue = ref true in
    let last = History.last h in
    while !continue && !j <= last do
      let d = History.time h !j - now in
      (match Interval.hi iv with
       | Some u when d > u -> continue := false
       | _ ->
         if Interval.mem d iv then begin
           let cand = eval_core h !j b in
           let surviving =
             if negated then Valrel.antijoin cand !bad
             else Valrel.join cand !constr
           in
           acc := Valrel.union !acc surviving
         end;
         (* the left argument must hold from i up to just before the
            witness: record position j before moving to j+1 *)
         if !continue && !j < last then begin
           let lv = eval_core h !j left in
           if negated then bad := Valrel.union !bad lv
           else begin
             constr := Valrel.join !constr lv;
             if Valrel.is_empty !constr then continue := false
           end
         end);
      incr j
    done;
    !acc
  | _ -> invalid_arg "Naive.eval_temporal: not a temporal formula"

let eval h i f =
  let f = Rewrite.normalize f in
  match Rtic_mtl.Safety.check f with
  | Error m -> Error m
  | Ok () ->
    (try Ok (eval_core h i f) with
     | Fo.Error m -> Error m
     | Invalid_argument m -> Error m)

let holds_at h i f = Result.map Valrel.holds (eval h i f)

let violations h (d : def) =
  let f = Rewrite.normalize d.body in
  match Rtic_mtl.Safety.check f with
  | Error m -> Error m
  | Ok () ->
    (try
       let out = ref [] in
       for i = 0 to History.last h do
         if not (Valrel.holds (eval_core h i f)) then out := i :: !out
       done;
       Ok (List.rev !out)
     with
     | Fo.Error m -> Error m
     | Invalid_argument m -> Error m)
