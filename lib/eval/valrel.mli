(** Valuation relations: finite sets of variable valuations.

    A valuation relation is the denotation of an open formula at one history
    position — a finite set of assignments of values to the formula's free
    variables. It is a relation with {e named, canonically sorted} columns;
    the closed formula case is the zero-column relation, which is either
    empty ([false]) or the single empty row ([true]).

    All operations are purely functional. Natural join, anti-join, union and
    projection are exactly the operations the two checkers need. *)

type t
(** A valuation relation. Columns are distinct and sorted; every row has one
    value per column. *)

val make : string list -> Rtic_relational.Tuple.t list -> t
(** [make cols rows] builds a relation. [cols] need not be sorted; rows are
    given in the order of [cols] as written and are re-ordered internally.
    Raises [Invalid_argument] on duplicate columns or arity mismatch. *)

val none : string list -> t
(** The empty relation over the given columns. *)

val unit : t
(** The zero-column relation containing the empty row — "true". *)

val falsehood : t
(** The zero-column empty relation — "false". *)

val of_bool : bool -> t
(** [of_bool true] is {!unit}; [of_bool false] is {!falsehood}. *)

val singleton : (string * Rtic_relational.Value.t) list -> t
(** The one-row relation binding each variable to the given value. *)

val cols : t -> string array
(** Column names, sorted. *)

val cardinal : t -> int
(** Number of rows. *)

val is_empty : t -> bool
(** [true] iff the relation has no row. *)

val holds : t -> bool
(** Truth value of a zero-column relation; for convenience defined on any
    relation as "has at least one row". *)

val mem : Rtic_relational.Tuple.t -> t -> bool
(** Membership of a row (given in column order). *)

val rows : t -> Rtic_relational.Tuple.t list
(** All rows, sorted, each aligned with {!cols}. *)

val bindings : t -> (string * Rtic_relational.Value.t) list list
(** All rows as association lists — convenient for reporting witnesses. *)

val lookup : t -> Rtic_relational.Tuple.t -> string -> Rtic_relational.Value.t
(** [lookup r row c] is the value of column [c] in [row] (a row of [r]).
    Raises [Invalid_argument] on unknown columns. *)

val equal : t -> t -> bool
(** Same columns and same rows. *)

val compare : t -> t -> int
(** Total order consistent with {!equal}. *)

val union : t -> t -> t
(** Set union. Raises [Invalid_argument] unless the column sets agree. *)

val inter : t -> t -> t
(** Set intersection over identical columns. *)

val diff : t -> t -> t
(** Set difference over identical columns. *)

val join : t -> t -> t
(** Natural join: the result's columns are the union of the arguments'
    columns; a pair of rows combines when it agrees on the shared columns. *)

val antijoin : t -> t -> t
(** [antijoin a b] keeps the rows of [a] whose projection onto the shared
    columns does {e not} appear in [b]'s projection onto those columns. When
    [cols b ⊆ cols a] this is the relational anti-join used for guarded
    negation. *)

val project : string list -> t -> t
(** [project keep r] restricts to the columns in [keep] (ignoring names not
    present), collapsing duplicate rows. *)

val project_away : string list -> t -> t
(** [project_away drop r] removes the given columns — existential
    quantification. *)

val filter : (Rtic_relational.Tuple.t -> bool) -> t -> t
(** Keep the rows satisfying the predicate (rows are in column order). *)

val fold : (Rtic_relational.Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over rows in increasing order. *)

val of_atom :
  Rtic_relational.Relation.t ->
  Rtic_mtl.Formula.term list ->
  (t, string) result
(** [of_atom rel args] is the valuation relation of the atom [R(args)] given
    the instance [rel] of [R]: constants must match, repeated variables must
    be bound consistently, and the result's columns are the distinct
    variables of [args]. Errors on arity mismatch. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{x=1, y=2; x=3, y=4}]. *)
