module Value = Rtic_relational.Value
module Tuple = Rtic_relational.Tuple
module Schema = Rtic_relational.Schema
module Relation = Rtic_relational.Relation
module Database = Rtic_relational.Database
module A = Rtic_relational.Algebra
module Formula = Rtic_mtl.Formula
module Safety = Rtic_mtl.Safety
module Pretty = Rtic_mtl.Pretty
open Formula

type compiled = {
  expr : A.t;
  columns : string list;
}

let ( let* ) r f = Result.bind r f

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let unit_expr = A.Const (Relation.of_list 0 [ [||] ])
let empty0_expr = A.Const (Relation.empty 0)

let index_of cols v =
  let rec go i = function
    | [] -> None
    | c :: rest -> if c = v then Some i else go (i + 1) rest
  in
  go 0 cols

module Sset = Set.Make (String)

(* Position table of a (distinct) column list: one pass, O(1) lookups.
   The naive [index_of] per column is quadratic in the schema width. *)
let position_tbl cols =
  let t = Hashtbl.create 16 in
  List.iteri (fun i v -> if not (Hashtbl.mem t v) then Hashtbl.add t v i) cols;
  t

let position_exn tbl v =
  match Hashtbl.find_opt tbl v with
  | Some i -> i
  | None -> invalid_arg ("Codd: unbound column " ^ v)

let cmp_to_algebra = function
  | Eq -> A.Eq
  | Ne -> A.Ne
  | Lt -> A.Lt
  | Le -> A.Le
  | Gt -> A.Gt
  | Ge -> A.Ge

(* Natural join of two compiled results; output columns are the sorted
   union of the inputs'. *)
let join (ea, ca) (eb, cb) =
  let pa = position_tbl ca and pb = position_tbl cb in
  let in_b = Sset.of_list cb in
  let shared = List.filter (fun v -> Sset.mem v in_b) ca in
  let pairs =
    List.map (fun v -> (position_exn pa v, position_exn pb v)) shared
  in
  let union_cols = List.sort_uniq String.compare (ca @ cb) in
  let na = List.length ca in
  let positions =
    List.map
      (fun v ->
        match Hashtbl.find_opt pa v with
        | Some i -> i
        | None -> na + position_exn pb v)
      union_cols
  in
  (A.Project (Array.of_list positions, A.Join (pairs, ea, eb)), union_cols)

(* Anti-join: rows of [a] whose shared-column projection does not match
   [b]. Encoded as a \ semijoin(a, b). Requires cols(b) ⊆ cols(a). *)
let antijoin (ea, ca) (eb, cb) =
  let pa = position_tbl ca and pb = position_tbl cb in
  let pairs =
    List.map (fun v -> (position_exn pa v, position_exn pb v)) cb
  in
  let keep = Array.init (List.length ca) (fun i -> i) in
  let semi = A.Project (keep, A.Join (pairs, ea, eb)) in
  (A.Diff (ea, semi), ca)

(* A comparison-only guard over bound columns, as a selection predicate. *)
let rec guard_pred cols = function
  | True -> Ok A.True_p
  | False -> Ok (A.Not_p A.True_p)
  | Cmp (c, l, r) ->
    let rec operand = function
      | Const v -> Ok (A.Lit v)
      | Var x ->
        (match index_of cols x with
         | Some i -> Ok (A.Col i)
         | None -> err "guard variable %s not bound" x)
      | Add (a, b) ->
        let* a = operand a in
        let* b = operand b in
        Ok (A.Add_op (a, b))
      | Sub (a, b) ->
        let* a = operand a in
        let* b = operand b in
        Ok (A.Sub_op (a, b))
      | Mul (a, b) ->
        let* a = operand a in
        let* b = operand b in
        Ok (A.Mul_op (a, b))
    in
    let* l = operand l in
    let* r = operand r in
    Ok (A.Compare (cmp_to_algebra c, l, r))
  | Not a ->
    let* p = guard_pred cols a in
    Ok (A.Not_p p)
  | And (a, b) ->
    let* pa = guard_pred cols a in
    let* pb = guard_pred cols b in
    Ok (A.And_p (pa, pb))
  | Or (a, b) ->
    let* pa = guard_pred cols a in
    let* pb = guard_pred cols b in
    Ok (A.Or_p (pa, pb))
  | f -> err "not a guard formula: %s" (Pretty.to_string f)

let rec compile_core cat f =
  match f with
  | True -> Ok (unit_expr, [])
  | False -> Ok (empty0_expr, [])
  | Atom (rel, args) ->
    (match Schema.Catalog.find rel cat with
     | None -> err "unknown relation: %s" rel
     | Some s ->
       if Schema.arity s <> List.length args then
         err "relation %s expects %d arguments, got %d" rel (Schema.arity s)
           (List.length args)
       else begin
         (* constants and repeated variables become selections *)
         let first_pos = Hashtbl.create 8 in
         let preds = ref [] in
         let arith = ref false in
         List.iteri
           (fun i t ->
             match t with
             | Const v ->
               preds := A.Compare (A.Eq, A.Col i, A.Lit v) :: !preds
             | Var x ->
               (match Hashtbl.find_opt first_pos x with
                | None -> Hashtbl.add first_pos x i
                | Some j ->
                  preds := A.Compare (A.Eq, A.Col i, A.Col j) :: !preds)
             | Add _ | Sub _ | Mul _ -> arith := true)
           args;
         if !arith then
           err "arithmetic is not allowed as a relation argument (in %s)" rel
         else
         let selected =
           List.fold_left
             (fun e p -> A.Select (p, e))
             (A.Scan rel) !preds
         in
         let cols =
           Hashtbl.fold (fun v _ acc -> v :: acc) first_pos []
           |> List.sort String.compare
         in
         let positions =
           Array.of_list (List.map (fun v -> Hashtbl.find first_pos v) cols)
         in
         Ok (A.Project (positions, selected), cols)
       end)
  | Cmp (Eq, Var x, Const v) | Cmp (Eq, Const v, Var x) ->
    Ok (A.Const (Relation.of_list 1 [ [| v |] ]), [ x ])
  | Cmp (c, Const a, Const b) ->
    (* decidable at compile time were values comparable; emit a selection
       over the unit relation so evaluation errors surface uniformly *)
    Ok (A.Select (A.Compare (cmp_to_algebra c, A.Lit a, A.Lit b), unit_expr), [])
  | Cmp _ -> err "unguarded comparison: %s" (Pretty.to_string f)
  | Not a ->
    if Var_set.is_empty (free_vars a) then
      let* ea, _ = compile_core cat a in
      Ok (A.Diff (unit_expr, ea), [])
    else err "unguarded negation: %s" (Pretty.to_string f)
  | And _ ->
    let* steps = Safety.plan_conjunction (Safety.flatten_and f) in
    List.fold_left
      (fun acc step ->
        let* acc = acc in
        match step with
        | Safety.Join g ->
          let* cg = compile_core cat g in
          Ok (join acc cg)
        | Safety.Guard g ->
          let e, cols = acc in
          let* p = guard_pred cols g in
          Ok (A.Select (p, e), cols)
        | Safety.Antijoin g ->
          let* cg = compile_core cat g in
          Ok (antijoin acc cg))
      (Ok (unit_expr, []))
      steps
  | Or (a, b) ->
    let* ea, ca = compile_core cat a in
    let* eb, cb = compile_core cat b in
    if ca <> cb then
      err "disjuncts have different free variables: %s" (Pretty.to_string f)
    else Ok (A.Union (ea, eb), ca)
  | Exists (vs, a) ->
    let* ea, ca = compile_core cat a in
    let drop = Sset.of_list vs in
    let keep = List.filter (fun v -> not (Sset.mem v drop)) ca in
    let pa = position_tbl ca in
    let positions = Array.of_list (List.map (position_exn pa) keep) in
    Ok (A.Project (positions, ea), keep)
  | Inserted _ | Deleted _ ->
    err "transition atom in a single-state query: %s" (Pretty.to_string f)
  | Prev _ | Once _ | Since _ | Next _ | Until _ ->
    err "temporal operator in a single-state query: %s" (Pretty.to_string f)
  | Implies _ | Iff _ | Forall _ | Historically _ | Eventually _ | Always _ ->
    err "non-core formula (normalize first): %s" (Pretty.to_string f)

let compile ?(plan = true) ?stats cat f =
  let f = Rtic_mtl.Rewrite.normalize f in
  let* () = Safety.check f in
  let* expr, columns =
    try compile_core cat f with Invalid_argument m -> Error m
  in
  let expr =
    if plan then Rtic_relational.Planner.plan ?stats cat expr else expr
  in
  (* sanity: the expression must be statically well-formed *)
  let* _arity = A.arity_of cat expr in
  Ok { expr; columns }

let eval_via_algebra ?plan db f =
  let* { expr; columns } =
    compile ?plan
      ~stats:(Rtic_relational.Planner.db_stats db)
      (Database.catalog db) f
  in
  let* rel = A.eval db expr in
  Ok (Valrel.make columns (Relation.to_list rel))
