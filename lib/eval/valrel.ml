module Value = Rtic_relational.Value
module Tuple = Rtic_relational.Tuple
module Formula = Rtic_mtl.Formula

module Tuple_set = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type t = {
  cols : string array;     (* sorted, distinct *)
  rows : Tuple_set.t;      (* every row has [Array.length cols] fields *)
}

let sorted_distinct cols =
  let sorted = List.sort_uniq String.compare cols in
  if List.length sorted <> List.length cols then
    invalid_arg "Valrel: duplicate column names";
  Array.of_list sorted

let none cols = { cols = sorted_distinct cols; rows = Tuple_set.empty }

let make cols rows =
  let order = sorted_distinct cols in
  let k = Array.length order in
  (* position of each sorted column in the given order, via a one-pass
     position table — a linear scan per column is O(k^2) per construction,
     and [make] sits on the per-transaction read path *)
  let given_pos = Hashtbl.create (max 8 k) in
  List.iteri
    (fun i c -> if not (Hashtbl.mem given_pos c) then Hashtbl.add given_pos c i)
    cols;
  let perm =
    Array.map
      (fun c ->
        match Hashtbl.find_opt given_pos c with
        | Some i -> i
        | None ->
          invalid_arg
            (Printf.sprintf
               "Valrel.make: column %s is not among the given columns" c))
      order
  in
  let reorder row =
    if Tuple.arity row <> k then
      invalid_arg "Valrel.make: row arity mismatch"
    else Array.map (fun i -> row.(i)) perm
  in
  { cols = order;
    rows = List.fold_left (fun s r -> Tuple_set.add (reorder r) s) Tuple_set.empty rows }

let unit = { cols = [||]; rows = Tuple_set.singleton [||] }
let falsehood = { cols = [||]; rows = Tuple_set.empty }
let of_bool b = if b then unit else falsehood

let singleton bindings =
  let bindings =
    List.sort (fun (a, _) (b, _) -> String.compare a b) bindings
  in
  let cols = Array.of_list (List.map fst bindings) in
  Array.iteri
    (fun i c ->
      if i > 0 && cols.(i - 1) = c then
        invalid_arg "Valrel.singleton: duplicate column names")
    cols;
  { cols; rows = Tuple_set.singleton (Array.of_list (List.map snd bindings)) }

let cols r = r.cols
let cardinal r = Tuple_set.cardinal r.rows
let is_empty r = Tuple_set.is_empty r.rows
let holds r = not (is_empty r)
let mem row r = Tuple_set.mem row r.rows
let rows r = Tuple_set.elements r.rows

let bindings r =
  List.map
    (fun row -> Array.to_list (Array.mapi (fun i v -> (r.cols.(i), v)) row))
    (rows r)

let col_index r c =
  let rec go lo hi =
    if lo >= hi then invalid_arg ("Valrel: unknown column " ^ c)
    else
      let mid = (lo + hi) / 2 in
      let d = String.compare c r.cols.(mid) in
      if d = 0 then mid else if d < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length r.cols)

let lookup r row c = row.(col_index r c)

let same_cols op a b =
  if a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Valrel.%s: column mismatch" op)

let equal a b = a.cols = b.cols && Tuple_set.equal a.rows b.rows

let compare a b =
  let c = Stdlib.compare a.cols b.cols in
  if c <> 0 then c else Tuple_set.compare a.rows b.rows

let union a b =
  same_cols "union" a b;
  { a with rows = Tuple_set.union a.rows b.rows }

let inter a b =
  same_cols "inter" a b;
  { a with rows = Tuple_set.inter a.rows b.rows }

let diff a b =
  same_cols "diff" a b;
  { a with rows = Tuple_set.diff a.rows b.rows }

(* Positions of [sub]'s columns inside [sup]'s columns; None if not subset. *)
let embedding sub sup =
  let k = Array.length sub in
  let out = Array.make k 0 in
  let n = Array.length sup in
  let rec go i j =
    if i >= k then true
    else if j >= n then false
    else
      let c = String.compare sub.(i) sup.(j) in
      if c = 0 then begin
        out.(i) <- j;
        go (i + 1) (j + 1)
      end
      else if c > 0 then go i (j + 1)
      else false
  in
  if go 0 0 then Some out else None

let shared_cols a b =
  Array.to_list a.cols
  |> List.filter (fun c -> Array.exists (String.equal c) b.cols)
  |> Array.of_list

let join a b =
  if a.cols = b.cols then inter a b
  else
    let shared = shared_cols a b in
    let union_cols =
      Array.to_list a.cols @ Array.to_list b.cols
      |> List.sort_uniq String.compare |> Array.of_list
    in
    let ea = Option.get (embedding shared a.cols) in
    let eb = Option.get (embedding shared b.cols) in
    (* For each output column, whether it comes from a (Left i) or b. *)
    let source =
      Array.map
        (fun c ->
          match embedding [| c |] a.cols with
          | Some [| i |] -> `Left i
          | _ ->
            (match embedding [| c |] b.cols with
             | Some [| i |] -> `Right i
             | _ -> assert false))
        union_cols
    in
    (* Hash b's rows on the shared key. *)
    let index = Hashtbl.create (max 16 (Tuple_set.cardinal b.rows)) in
    Tuple_set.iter
      (fun row ->
        let key = Array.map (fun i -> row.(i)) eb in
        let prev = try Hashtbl.find index key with Not_found -> [] in
        Hashtbl.replace index key (row :: prev))
      b.rows;
    let out = ref Tuple_set.empty in
    Tuple_set.iter
      (fun ra ->
        let key = Array.map (fun i -> ra.(i)) ea in
        match Hashtbl.find_opt index key with
        | None -> ()
        | Some matches ->
          List.iter
            (fun rb ->
              let merged =
                Array.map
                  (function `Left i -> ra.(i) | `Right i -> rb.(i))
                  source
              in
              out := Tuple_set.add merged !out)
            matches)
      a.rows;
    { cols = union_cols; rows = !out }

let antijoin a b =
  let shared = shared_cols a b in
  let eb = Option.get (embedding shared b.cols) in
  let ea = Option.get (embedding shared a.cols) in
  let keys = Hashtbl.create (max 16 (Tuple_set.cardinal b.rows)) in
  Tuple_set.iter
    (fun row -> Hashtbl.replace keys (Array.map (fun i -> row.(i)) eb) ())
    b.rows;
  { a with
    rows =
      Tuple_set.filter
        (fun ra -> not (Hashtbl.mem keys (Array.map (fun i -> ra.(i)) ea)))
        a.rows }

let project keep r =
  let keep_cols =
    Array.to_list r.cols |> List.filter (fun c -> List.mem c keep)
  in
  let idx =
    Array.of_list
      (List.map (fun c -> col_index r c) keep_cols)
  in
  { cols = Array.of_list keep_cols;
    rows =
      Tuple_set.fold
        (fun row acc -> Tuple_set.add (Array.map (fun i -> row.(i)) idx) acc)
        r.rows Tuple_set.empty }

let project_away drop r =
  let keep =
    Array.to_list r.cols |> List.filter (fun c -> not (List.mem c drop))
  in
  project keep r

let filter p r = { r with rows = Tuple_set.filter p r.rows }
let fold f r acc = Tuple_set.fold f r.rows acc

let of_atom rel args =
  let k = List.length args in
  if Rtic_relational.Relation.arity rel <> k then
    Error
      (Printf.sprintf "atom arity %d does not match relation arity %d" k
         (Rtic_relational.Relation.arity rel))
  else begin
    (* Distinct variables of args, with the positions where each occurs. *)
    let var_positions = Hashtbl.create 8 in
    let arith = ref false in
    List.iteri
      (fun i t ->
        match t with
        | Formula.Var x ->
          let prev = try Hashtbl.find var_positions x with Not_found -> [] in
          Hashtbl.replace var_positions x (i :: prev)
        | Formula.Const _ -> ()
        | Formula.Add _ | Formula.Sub _ | Formula.Mul _ -> arith := true)
      args;
    if !arith then Error "arithmetic is not allowed as a relation argument"
    else begin
    let vars =
      Hashtbl.fold (fun x _ acc -> x :: acc) var_positions []
      |> List.sort String.compare
    in
    let var_arr = Array.of_list vars in
    let args_arr = Array.of_list args in
    let rows = ref Tuple_set.empty in
    Rtic_relational.Relation.iter
      (fun tup ->
        let ok = ref true in
        (* constants must match *)
        Array.iteri
          (fun i t ->
            match t with
            | Formula.Const v -> if not (Value.equal tup.(i) v) then ok := false
            | Formula.Var _ -> ()
            | Formula.Add _ | Formula.Sub _ | Formula.Mul _ -> ok := false)
          args_arr;
        if !ok then begin
          (* repeated variables must agree *)
          Hashtbl.iter
            (fun _ positions ->
              match positions with
              | [] | [ _ ] -> ()
              | p0 :: rest ->
                List.iter
                  (fun p ->
                    if not (Value.equal tup.(p0) tup.(p)) then ok := false)
                  rest)
            var_positions;
          if !ok then begin
            let row =
              Array.map
                (fun x -> tup.(List.hd (Hashtbl.find var_positions x)))
                var_arr
            in
            rows := Tuple_set.add row !rows
          end
        end)
      rel;
      Ok { cols = var_arr; rows = !rows }
    end
  end

let pp ppf r =
  let pp_row ppf row =
    if Array.length r.cols = 0 then Format.pp_print_string ppf "()"
    else
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
        (fun ppf (c, v) -> Format.fprintf ppf "%s=%a" c Value.pp v)
        ppf
        (Array.to_list (Array.mapi (fun i v -> (r.cols.(i), v)) row))
  in
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_row)
    (rows r)
