(** The naive reference evaluator (full-history baseline).

    This is the semantics of the constraint language, implemented directly:
    to evaluate a temporal operator at position [i] it walks backward over
    the {e complete stored history}, exactly as the paper's strawman does.
    Its cost per check grows with the history length — it is both the
    baseline that the bounded-history-encoding checker is measured against
    (experiments E1–E3) and the oracle that the incremental checker is
    tested against.

    Input formulas are normalized internally; they must be monitorable
    ({!Rtic_mtl.Safety.check}). *)

val eval :
  Rtic_temporal.History.t ->
  int ->
  Rtic_mtl.Formula.t ->
  (Valrel.t, string) result
(** [eval h i f] is the valuation relation of [f] at position [i] of [h]
    (over [f]'s free variables). *)

val holds_at :
  Rtic_temporal.History.t -> int -> Rtic_mtl.Formula.t -> (bool, string) result
(** [holds_at h i f] for closed [f]: does [f] hold at position [i]? *)

val violations :
  Rtic_temporal.History.t -> Rtic_mtl.Formula.def -> (int list, string) result
(** [violations h d] is the list of positions of [h] at which the constraint
    body does {e not} hold — the naive checker's verdict on a whole history.
    Positions are returned in increasing order. *)
