module Value = Rtic_relational.Value
module Database = Rtic_relational.Database
module Formula = Rtic_mtl.Formula
module Safety = Rtic_mtl.Safety
module Pretty = Rtic_mtl.Pretty
open Formula

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let rec eval_term lookup = function
  | Var x -> lookup x
  | Const v -> v
  | Add (a, b) -> arith "+" ( + ) ( +. ) lookup a b
  | Sub (a, b) -> arith "-" ( - ) ( -. ) lookup a b
  | Mul (a, b) -> arith "*" ( * ) ( *. ) lookup a b

and arith name int_op real_op lookup a b =
  match eval_term lookup a, eval_term lookup b with
  | Value.Int x, Value.Int y -> Value.Int (int_op x y)
  | Value.Real x, Value.Real y -> Value.Real (real_op x y)
  | x, y ->
    error "arithmetic '%s' on non-numeric or mixed values %s, %s" name
      (Value.to_string x) (Value.to_string y)

let cmp_values c a b =
  match c with
  | Eq -> Value.equal a b
  | Ne -> not (Value.equal a b)
  | Lt | Le | Gt | Ge ->
    (match Value.numeric a, Value.numeric b with
     | Some x, Some y ->
       (match c with
        | Lt -> x < y
        | Le -> x <= y
        | Gt -> x > y
        | Ge -> x >= y
        | Eq | Ne -> assert false)
     | _ ->
       error "order comparison on non-numeric values %s, %s"
         (Value.to_string a) (Value.to_string b))

let rec eval ~db ?prev ~temporal f =
  match f with
  | True -> Valrel.unit
  | False -> Valrel.falsehood
  | Atom (rel, args) ->
    (match Database.relation db rel with
     | None -> error "unknown relation: %s" rel
     | Some r ->
       (match Valrel.of_atom r args with
        | Ok v -> v
        | Error m -> error "%s: %s" rel m))
  | Inserted (rel, args) | Deleted (rel, args) ->
    let cur =
      match Database.relation db rel with
      | Some r -> r
      | None -> error "unknown relation: %s" rel
    in
    let old =
      match prev with
      | None -> Rtic_relational.Relation.empty (Rtic_relational.Relation.arity cur)
      | Some p -> Database.relation_exn p rel
    in
    let delta =
      match f with
      | Inserted _ -> Rtic_relational.Relation.diff cur old
      | _ -> Rtic_relational.Relation.diff old cur
    in
    (match Valrel.of_atom delta args with
     | Ok v -> v
     | Error m -> error "%s: %s" rel m)
  | Cmp (Eq, Var x, Const v) | Cmp (Eq, Const v, Var x) ->
    Valrel.singleton [ (x, v) ]
  | Cmp (c, Const a, Const b) -> Valrel.of_bool (cmp_values c a b)
  | Cmp _ ->
    error "unguarded comparison reached the evaluator: %s" (Pretty.to_string f)
  | Not a ->
    if Var_set.is_empty (free_vars a) then
      Valrel.of_bool (not (Valrel.holds (eval ~db ?prev ~temporal a)))
    else
      error "unguarded negation reached the evaluator: %s" (Pretty.to_string f)
  | And _ ->
    (match Safety.plan_conjunction (Safety.flatten_and f) with
     | Error m -> error "%s" m
     | Ok steps -> exec_plan ~db ?prev ~temporal steps)
  | Or (a, b) ->
    Valrel.union (eval ~db ?prev ~temporal a) (eval ~db ?prev ~temporal b)
  | Exists (vs, a) -> Valrel.project_away vs (eval ~db ?prev ~temporal a)
  | Prev _ | Once _ | Since _ | Next _ | Until _ -> temporal f
  | Implies _ | Iff _ | Forall _ | Historically _ | Eventually _ | Always _ ->
    error "non-core formula reached the evaluator (normalize first): %s"
      (Pretty.to_string f)

and exec_plan ~db ?prev ~temporal steps =
  List.fold_left
    (fun acc step ->
      match step with
      | Safety.Join g -> Valrel.join acc (eval ~db ?prev ~temporal g)
      | Safety.Guard g ->
        let value row t = eval_term (Valrel.lookup acc row) t in
        let rec guard row = function
          | True -> true
          | False -> false
          | Cmp (c, l, r) -> cmp_values c (value row l) (value row r)
          | Not a -> not (guard row a)
          | And (a, b) -> guard row a && guard row b
          | Or (a, b) -> guard row a || guard row b
          | g ->
            error "non-comparison formula in a guard: %s" (Pretty.to_string g)
        in
        Valrel.filter (fun row -> guard row g) acc
      | Safety.Antijoin g -> Valrel.antijoin acc (eval ~db ?prev ~temporal g))
    Valrel.unit steps
