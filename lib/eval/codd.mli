(** Compilation of first-order (non-temporal) formulas to relational algebra.

    The classical Codd translation, restricted to the monitorable fragment:
    a safe non-temporal formula compiles to a positional
    {!Rtic_relational.Algebra} expression whose evaluation over any snapshot
    yields exactly the formula's valuation relation. Conjunction becomes
    equi-join + projection, guarded negation becomes the
    semijoin/difference encoding of anti-join, guards become selections.

    This is how the single-state part of a constraint would execute on a
    plain relational engine; the property suite checks
    [eval (compile f) = Fo.eval f] on random formulas and databases. *)

type compiled = {
  expr : Rtic_relational.Algebra.t;
  columns : string list;
      (** Output column names: the formula's free variables, sorted — the
          [i]-th column of the result holds the [i]-th variable. *)
}

val compile :
  ?plan:bool ->
  ?stats:(string -> int option) ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.t ->
  (compiled, string) result
(** Compile a formula. Fails on temporal operators, non-core connectives
    (run {!Rtic_mtl.Rewrite.normalize} first) and non-monitorable shapes.
    Unless [plan] is [false] the compiled expression is run through
    {!Rtic_relational.Planner.plan} (selection pushdown, join-operand
    reordering); [stats] supplies base-relation cardinalities for the
    reordering estimates. The planned and unplanned expressions evaluate
    to the same relation on every snapshot. *)

val eval_via_algebra :
  ?plan:bool ->
  Rtic_relational.Database.t ->
  Rtic_mtl.Formula.t ->
  (Valrel.t, string) result
(** [compile] against the database's catalog (with the snapshot's relation
    sizes as planner statistics), evaluate the algebra, and repackage the
    result as a valuation relation (for direct comparison with
    {!Fo.eval}). *)
