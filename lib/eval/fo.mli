(** First-order (single-state) evaluation core.

    Evaluates the non-temporal structure of a core formula over one database
    snapshot, delegating every temporal subformula ([Prev], [Once], [Since])
    to a caller-supplied oracle. Both the naive evaluator (whose oracle
    recurses into the history) and the incremental checker (whose oracle
    reads auxiliary relations) are built on this module, which guarantees the
    two implement {e the same} first-order semantics.

    Formulas must be in the core fragment ({!Rtic_mtl.Rewrite.normalize}) and
    monitorable ({!Rtic_mtl.Safety.check}); violations raise {!Error}. *)

exception Error of string
(** Raised on non-monitorable input, unknown relations, or ill-typed
    comparisons (all prevented by the static checks). *)

val eval_term :
  (string -> Rtic_relational.Value.t) ->
  Rtic_mtl.Formula.term ->
  Rtic_relational.Value.t
(** Evaluate a term under a variable lookup: constants, variables and
    arithmetic over one numeric type ([Int] with [Int], [Real] with [Real];
    {!Error} otherwise, which the type checker prevents). *)

val cmp_values :
  Rtic_mtl.Formula.cmp ->
  Rtic_relational.Value.t ->
  Rtic_relational.Value.t ->
  bool
(** Comparison semantics shared by the whole system: [Eq]/[Ne] are defined on
    all values; order comparisons on numeric values ({!Error} otherwise). *)

val eval :
  db:Rtic_relational.Database.t ->
  ?prev:Rtic_relational.Database.t ->
  temporal:(Rtic_mtl.Formula.t -> Valrel.t) ->
  Rtic_mtl.Formula.t ->
  Valrel.t
(** [eval ~db ?prev ~temporal f] is the valuation relation of [f] over [db],
    where [temporal g] must return the valuation relation of the temporal
    subformula [g] (over exactly [g]'s sorted free variables) at the current
    history position. [prev] is the previous committed state, used by the
    transition atoms [+R]/[-R]; omitting it means "no previous state"
    (position 0), where [+R] is all of [R] and [-R] is empty. *)
