(* Fixed worker pool on OCaml 5 domains. One pool is created per run (the
   CLI's --jobs N) and shared by every fan-out site; workers are spawned
   once and live until [shutdown], so the per-transaction cost of a
   parallel step is one enqueue + one latch wait, not a domain spawn.

   The caller participates: [run] enqueues every task and then drains the
   queue itself alongside the workers, so a pool of size N applies N
   domains to the task set (the calling domain plus N-1 workers) and a
   pool of size 1 degenerates to a plain sequential loop with no
   synchronization at all. *)

type task = unit -> unit

type t = {
  size : int;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when a task is enqueued or on shutdown *)
  mutable queue : task list;  (* pending tasks, LIFO (order is irrelevant:
                                 every task writes to its own slot) *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

(* Pop one task, or None after shutdown. Workers block here when idle. *)
let next_task t =
  Mutex.lock t.lock;
  let rec wait () =
    match t.queue with
    | task :: rest ->
      t.queue <- rest;
      Mutex.unlock t.lock;
      Some task
    | [] ->
      if t.stop then begin
        Mutex.unlock t.lock;
        None
      end
      else begin
        Condition.wait t.work t.lock;
        wait ()
      end
  in
  wait ()

let worker t =
  let rec loop () =
    match next_task t with
    | None -> ()
    | Some task ->
      task ();
      loop ()
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    { size = n;
      lock = Mutex.create ();
      work = Condition.create ();
      queue = [];
      stop = false;
      domains = [] }
  in
  (* The calling domain is worker 0; spawn the other n-1. *)
  t.domains <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Tasks store into their own result slot; completion is observed through
   [remaining], an atomic the caller re-checks under the lock. The final
   decrement broadcasts so the caller never sleeps past the last task. *)
let map_array f xs t =
  let n = Array.length xs in
  if t.size = 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = Atomic.make n in
    let task i () =
      (match f xs.(i) with
       | v -> results.(i) <- Some v
       | exception e -> errors.(i) <- Some e);
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock t.lock;
        Condition.broadcast t.work;
        Mutex.unlock t.lock
      end
    in
    Mutex.lock t.lock;
    for i = n - 1 downto 0 do
      t.queue <- task i :: t.queue
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* Help drain our own batch (the queue may also hold nothing of ours
       anymore if workers grabbed everything; then we just wait). *)
    let rec help () =
      Mutex.lock t.lock;
      match t.queue with
      | task :: rest ->
        t.queue <- rest;
        Mutex.unlock t.lock;
        task ();
        help ()
      | [] ->
        if Atomic.get remaining > 0 then begin
          Condition.wait t.work t.lock;
          Mutex.unlock t.lock;
          help ()
        end
        else Mutex.unlock t.lock
    in
    help ();
    (* Deterministic failure: re-raise the lowest-index task's exception
       regardless of which domain ran it or finished first. *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let run t thunks = map_array (fun f -> f ()) thunks t
