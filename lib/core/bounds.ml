module Formula = Rtic_mtl.Formula
module Interval = Rtic_temporal.Interval

let node_interval = function
  | Formula.Prev (i, _) | Formula.Once (i, _) | Formula.Since (i, _, _) -> i
  | _ -> invalid_arg "Bounds: not a temporal formula"

let node_window f = Interval.hi (node_interval f)

let time_reach = Formula.time_reach

let max_stored_timestamps_per_valuation f =
  match node_window f with
  | Some u -> u + 1
  | None -> 1
