(** Multi-constraint monitoring with cross-constraint subformula sharing.

    The plain {!Monitor} gives each constraint its own checker: a temporal
    subformula mentioned by several constraints (say,
    [once\[0,30\] fault(i)] appearing in three alarm policies) is maintained
    once {e per constraint}. This monitor registers all constraints in a
    single {!Kernel}, where structurally equal temporal subformulas share
    one auxiliary relation fleet-wide — the sharing optimization of the
    active-DBMS implementations.

    Verdicts are identical to the per-constraint monitor (property-tested);
    space and per-transaction time drop in proportion to the overlap
    (experiment E9 in the bench harness). *)

type t
(** Monitor state. Functional: {!step} returns a new state. *)

val create :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?pool:Pool.t ->
  ?config:Incremental.config ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def list ->
  (t, string) result
(** Admit all constraints (same admission rules as {!Incremental.create};
    names must be distinct) into one shared kernel, over an initially empty
    database. With [?metrics], the shared kernel's nodes are registered
    once (reflecting the sharing) and {!step} records latency and
    violation counts. With [?tracer], each {!step} emits a [txn] root span
    with [apply], per-constraint and per-node child spans; a shared node's
    update is attributed to whichever constraint forced it first.

    With [?pool] of size > 1, the constraint set is {e sharded} across the
    pool's domains: the sharing components (constraints connected through
    a common temporal subformula) are computed, kept whole, and spread
    round-robin over [min size components] per-domain kernels. {!step}
    then fans each transaction out to every shard and merges the verdicts
    in registration order — reports, error strings and (synced) metrics
    are identical to the sequential run; only step latencies and the trace
    stream differ (per-shard [shard] spans replace the per-constraint and
    per-node spans, which would race on the tracer). A pool of size 1 (or
    a constraint set with fewer than two components) uses the sequential
    single-kernel path, bit-for-bit. *)

val step :
  t ->
  time:int ->
  Rtic_relational.Update.transaction ->
  (t * Monitor.report list, string) result
(** Apply a transaction, update every shared auxiliary relation exactly
    once, evaluate every constraint, and report the violated ones (in
    registration order). *)

val run_trace :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?pool:Pool.t ->
  ?config:Incremental.config ->
  Rtic_mtl.Formula.def list ->
  Rtic_temporal.Trace.t ->
  (Monitor.report list, string) result
(** Run a whole trace; report order matches {!Monitor.run_trace}. *)

val space : t -> int
(** Stored pairs across the shared auxiliary relations. Under a sharded
    run, a retained previous-state snapshot (transition atoms) is counted
    once per shard that needs it. *)

val shard_count : t -> int
(** Number of kernels the constraint set runs on (1 = sequential). *)

val shared_nodes : t -> int
(** Distinct temporal subformulas maintained. *)

val unshared_nodes : t -> int
(** What the per-constraint monitor would maintain: the sum of each
    constraint's own distinct subformula count. *)
