(** Multi-constraint monitoring with cross-constraint subformula sharing.

    The plain {!Monitor} gives each constraint its own checker: a temporal
    subformula mentioned by several constraints (say,
    [once\[0,30\] fault(i)] appearing in three alarm policies) is maintained
    once {e per constraint}. This monitor registers all constraints in a
    single {!Kernel}, where structurally equal temporal subformulas share
    one auxiliary relation fleet-wide — the sharing optimization of the
    active-DBMS implementations.

    Verdicts are identical to the per-constraint monitor (property-tested);
    space and per-transaction time drop in proportion to the overlap
    (experiment E9 in the bench harness). *)

type t
(** Monitor state. Functional: {!step} returns a new state. *)

val create :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?config:Incremental.config ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def list ->
  (t, string) result
(** Admit all constraints (same admission rules as {!Incremental.create};
    names must be distinct) into one shared kernel, over an initially empty
    database. With [?metrics], the shared kernel's nodes are registered
    once (reflecting the sharing) and {!step} records latency and
    violation counts. With [?tracer], each {!step} emits a [txn] root span
    with [apply], per-constraint and per-node child spans; a shared node's
    update is attributed to whichever constraint forced it first. *)

val step :
  t ->
  time:int ->
  Rtic_relational.Update.transaction ->
  (t * Monitor.report list, string) result
(** Apply a transaction, update every shared auxiliary relation exactly
    once, evaluate every constraint, and report the violated ones (in
    registration order). *)

val run_trace :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?config:Incremental.config ->
  Rtic_mtl.Formula.def list ->
  Rtic_temporal.Trace.t ->
  (Monitor.report list, string) result
(** Run a whole trace; report order matches {!Monitor.run_trace}. *)

val space : t -> int
(** Stored pairs across the shared auxiliary relations. *)

val shared_nodes : t -> int
(** Distinct temporal subformulas maintained. *)

val unshared_nodes : t -> int
(** What the per-constraint monitor would maintain: the sum of each
    constraint's own distinct subformula count. *)
