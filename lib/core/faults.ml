(* Deterministic fault injection: a swappable filesystem record plus
   seeded corruption plans. All variability comes from the caller's seed
   through a private xorshift64* stream so failures replay exactly. *)

type handle = {
  h_write : string -> (unit, string) result;
  h_sync : unit -> (unit, string) result;
  h_close : unit -> unit;
}

type fs = {
  read_file : string -> (string, string) result;
  write_file : string -> string -> (unit, string) result;
  append_file : string -> string -> (unit, string) result;
  rename : string -> string -> (unit, string) result;
  remove : string -> (unit, string) result;
  list_dir : string -> (string list, string) result;
  mkdir : string -> (unit, string) result;
  exists : string -> bool;
  sync : string -> (unit, string) result;
  open_append : string -> (handle, string) result;
}

let wrap f =
  try Ok (f ()) with
  | Sys_error m -> Error m
  | End_of_file -> Error "unexpected end of file"
  | Unix.Unix_error (e, op, p) ->
    Error (Printf.sprintf "%s %s: %s" op p (Unix.error_message e))

let real_fs =
  { read_file =
      (fun path ->
        wrap (fun () ->
            let ic = open_in_bin path in
            (* Read to EOF rather than trusting [in_channel_length]: a file
               that shrinks between the size probe and the read, or a
               special file reporting length 0, must not raise or come back
               empty. [Fun.protect] closes the channel on every path. *)
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> In_channel.input_all ic)));
    write_file =
      (fun path text ->
        wrap (fun () ->
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc text)));
    append_file =
      (fun path text ->
        wrap (fun () ->
            let oc =
              open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
            in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc text)));
    rename = (fun src dst -> wrap (fun () -> Sys.rename src dst));
    remove = (fun path -> wrap (fun () -> Sys.remove path));
    list_dir =
      (fun dir ->
        wrap (fun () ->
            let names = Array.to_list (Sys.readdir dir) in
            List.sort String.compare
              (List.filter
                 (fun n -> not (Sys.is_directory (Filename.concat dir n)))
                 names)));
    mkdir =
      (fun dir ->
        try
          Unix.mkdir dir 0o755;
          Ok ()
        with
        | Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
        | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e));
    exists = Sys.file_exists;
    sync =
      (fun path ->
        wrap (fun () ->
            let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> Unix.fsync fd)));
    open_append =
      (fun path ->
        wrap (fun () ->
            let oc =
              open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
            in
            { h_write = (fun text -> wrap (fun () -> output_string oc text));
              h_sync =
                (fun () ->
                  wrap (fun () ->
                      flush oc;
                      Unix.fsync (Unix.descr_of_out_channel oc)));
              h_close = (fun () -> close_out_noerr oc) })) }

(* ---------------- In-memory filesystem ---------------- *)

(* Files are growable buffers so that appends are amortized O(append
   size): a string-typed table rebuilt with [old ^ text] made every long
   WAL quadratic in the record count, which dominated hermetic chaos and
   server tests. *)
let mem_fs () =
  let files : (string, Buffer.t) Hashtbl.t = Hashtbl.create 16 in
  let dirs : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let append_file path text =
    let buf =
      match Hashtbl.find_opt files path with
      | Some buf -> buf
      | None ->
        let buf = Buffer.create (String.length text + 64) in
        Hashtbl.replace files path buf;
        buf
    in
    Buffer.add_string buf text;
    Ok ()
  in
  { read_file =
      (fun path ->
        match Hashtbl.find_opt files path with
        | Some buf -> Ok (Buffer.contents buf)
        | None -> Error (path ^ ": no such file"));
    write_file =
      (fun path text ->
        let buf = Buffer.create (String.length text + 64) in
        Buffer.add_string buf text;
        Hashtbl.replace files path buf;
        Ok ());
    append_file;
    rename =
      (fun src dst ->
        match Hashtbl.find_opt files src with
        | None -> Error (src ^ ": no such file")
        | Some buf ->
          Hashtbl.remove files src;
          Hashtbl.replace files dst buf;
          Ok ());
    remove =
      (fun path ->
        if Hashtbl.mem files path then begin
          Hashtbl.remove files path;
          Ok ()
        end
        else Error (path ^ ": no such file"));
    list_dir =
      (fun dir ->
        let under =
          Hashtbl.fold
            (fun path _ acc ->
              if Filename.dirname path = dir then Filename.basename path :: acc
              else acc)
            files []
        in
        if under = [] && not (Hashtbl.mem dirs dir) then
          Error (dir ^ ": no such directory")
        else Ok (List.sort String.compare under));
    mkdir =
      (fun dir ->
        Hashtbl.replace dirs dir ();
        Ok ());
    exists =
      (fun path -> Hashtbl.mem files path || Hashtbl.mem dirs path);
    sync = (fun _ -> Ok ());
    open_append =
      (fun path ->
        (* Route every write through [append_file] at call time rather
           than capturing the buffer: a [write_file] or [rename] swaps
           the backing buffer, and the handle must keep appending to
           whatever the path names now. (Real fds don't follow renames —
           the supervisor closes its handle around compaction — but the
           in-memory fs need not reproduce that hazard.) *)
        Ok { h_write = (fun text -> append_file path text);
             h_sync = (fun () -> Ok ());
             h_close = (fun () -> ()) }) }

(* ---------------- Seeded randomness, xorshift64-star ---------------- *)

type rng = { mutable state : int64 }

let make_rng seed =
  (* Avoid the all-zeros fixed point; fold the seed into a large odd salt. *)
  { state =
      Int64.logor 1L
        (Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L) }

let next r =
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.state <- x;
  x

let next_int r bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.unsigned_rem (next r) (Int64.of_int bound))

let next_float r =
  Int64.to_float (Int64.shift_right_logical (next r) 11) /. 9007199254740992.0

(* ---------------- Injected write failures ---------------- *)

let with_write_failures ~seed ~rate fs =
  let r = make_rng seed in
  let maybe_fail k = if next_float r < rate then Error "injected write failure" else k () in
  { fs with
    write_file = (fun p t -> maybe_fail (fun () -> fs.write_file p t));
    append_file = (fun p t -> maybe_fail (fun () -> fs.append_file p t));
    rename = (fun s d -> maybe_fail (fun () -> fs.rename s d));
    sync = (fun p -> maybe_fail (fun () -> fs.sync p));
    open_append =
      (fun p ->
        (* Opening itself can fail, and so can every write or sync made
           through the returned handle — group commit must survive a
           durability point that dies mid-batch. *)
        maybe_fail (fun () ->
            match fs.open_append p with
            | Error _ as e -> e
            | Ok h ->
              Ok { h with
                   h_write = (fun t -> maybe_fail (fun () -> h.h_write t));
                   h_sync = (fun () -> maybe_fail (fun () -> h.h_sync ())) })) }

(* ---------------- Corruption primitives ---------------- *)

let ( let* ) r f = Result.bind r f

let bit_flip_file fs ~seed ?(min_pos = 0) path =
  let* text = fs.read_file path in
  if String.length text <= min_pos then
    Error (path ^ ": nothing to flip past the protected prefix")
  else
    let r = make_rng seed in
    let pos = min_pos + next_int r (String.length text - min_pos) in
    let bit = next_int r 8 in
    let bytes = Bytes.of_string text in
    Bytes.set bytes pos
      (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl bit)));
    let* () = fs.write_file path (Bytes.to_string bytes) in
    Ok (Printf.sprintf "flipped bit %d of byte %d in %s" bit pos path)

let truncate_file_tail fs ~seed ?(max_bytes = 80) ?(keep = 1) path =
  let* text = fs.read_file path in
  let len = String.length text in
  if len <= keep then Error (path ^ ": too short to truncate")
  else
    let r = make_rng seed in
    let cut = 1 + next_int r (min max_bytes (len - keep)) in
    let* () = fs.write_file path (String.sub text 0 (len - cut)) in
    Ok (Printf.sprintf "truncated %d byte(s) from %s" cut path)

let perturb_times ~seed ~rate entries =
  let r = make_rng seed in
  match entries with
  | [] -> []
  | first :: rest ->
    let _, out =
      List.fold_left
        (fun (prev_time, acc) (time, x) ->
          if next_float r < rate then
            (* A clock regression: stamp at or before the predecessor. *)
            let bad = prev_time - next_int r 3 in
            (prev_time, (bad, x) :: acc)
          else (time, (time, x) :: acc))
        (fst first, [ first ])
        rest
    in
    List.rev out

(* ---------------- Fault plans ---------------- *)

type plan = Kill | Flip_checkpoint | Torn_wal | Flip_wal

let all_plans = [ Kill; Flip_checkpoint; Torn_wal; Flip_wal ]

let plan_name = function
  | Kill -> "kill"
  | Flip_checkpoint -> "flip-checkpoint"
  | Torn_wal -> "torn-wal"
  | Flip_wal -> "flip-wal"

(* Offset just past the two WAL header lines. Plans simulate damage done
   by crashed appends or bit rot in the record area; the header is written
   once, atomically, so it stays out of bounds (Wal.recover treats header
   damage as a hard error, not a torn tail). *)
let wal_body_offset text =
  match String.index_opt text '\n' with
  | None -> String.length text
  | Some i ->
    (match String.index_from_opt text (i + 1) '\n' with
     | None -> String.length text
     | Some j -> j + 1)

let apply_plan fs ~seed ~wal ~checkpoints plan =
  match plan with
  | Kill -> Ok "killed without touching any file"
  | Flip_checkpoint ->
    (match checkpoints with
     | [] -> Ok "no checkpoint to corrupt; killed only"
     | newest :: _ -> bit_flip_file fs ~seed newest)
  | Torn_wal ->
    (match fs.read_file wal with
     | Error _ -> Ok "no WAL to tear; killed only"
     | Ok text ->
       let keep = wal_body_offset text in
       if String.length text <= keep then Ok "WAL has no records; killed only"
       else truncate_file_tail fs ~seed ~keep wal)
  | Flip_wal ->
    (match fs.read_file wal with
     | Error _ -> Ok "no WAL to flip; killed only"
     | Ok text ->
       let min_pos = wal_body_offset text in
       if String.length text <= min_pos then
         Ok "WAL has no records; killed only"
       else bit_flip_file fs ~seed ~min_pos wal)
