(* Write-ahead transaction log: rtic-wal/1 (text records) and rtic-wal/2
   (binary length-prefixed records, same recovery contract). Pure
   encode/decode; the Supervisor does the file I/O through a Faults.fs
   record. *)

module Update = Rtic_relational.Update
module Textio = Rtic_relational.Textio

let version_line = "rtic-wal/1"
let version_line_v2 = "rtic-wal/2"

(* ---------------- CRC-32 (IEEE 802.3, reflected) ---------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ---------------- Encoding ---------------- *)

let header ?(version = 1) ~start () =
  Printf.sprintf "%s\nstart %d\n"
    (if version = 2 then version_line_v2 else version_line)
    start

let op_line = function
  | Update.Insert (rel, t) -> "+" ^ Textio.fact_to_string rel t
  | Update.Delete (rel, t) -> "-" ^ Textio.fact_to_string rel t

(* The CRC covers the commit time and the op lines, so a flipped bit in
   any of them (or in the time echoed on the txn line) is detected. Both
   formats checksum the same body bytes, so a record's CRC is identical
   in rtic-wal/1 and rtic-wal/2. *)
let record_body ~time op_lines =
  string_of_int time ^ "\n"
  ^ String.concat "" (List.map (fun l -> l ^ "\n") op_lines)

(* v2 framing: 4-byte little-endian body length, 4-byte little-endian
   CRC-32 of the body, then the body — the same text bytes a v1 record
   carries after its txn line, so converting between the formats never
   touches record content. *)
let le32 n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 (n land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 3 ((n lsr 24) land 0xff);
  Bytes.unsafe_to_string b

let read_le32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let encode_record ?(version = 1) ~time txn =
  let ops = List.map op_line txn in
  let body = record_body ~time ops in
  if version = 2 then le32 (String.length body) ^ le32 (crc32 body) ^ body
  else
    Printf.sprintf "txn %d %d %08x\n%s" time (List.length ops) (crc32 body)
      (String.concat "" (List.map (fun l -> l ^ "\n") ops))

let encode ?(version = 1) ~start records =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header ~version ~start ());
  List.iter
    (fun (time, txn) ->
      Buffer.add_string buf (encode_record ~version ~time txn))
    records;
  Buffer.contents buf

(* ---------------- Decoding ---------------- *)

type recovery = {
  start : int;
  records : (int * Update.transaction) list;
  torn : string option;
  version : int;
}

let parse_txn_line l =
  match Scanf.sscanf l "txn %d %d %x%!" (fun t n c -> (t, n, c)) with
  | tnc -> Some tnc
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

let parse_op line =
  if line = "" then Error "empty op line"
  else
    let rest = String.sub line 1 (String.length line - 1) in
    match line.[0] with
    | '+' ->
      Result.map (fun (rel, t) -> Update.Insert (rel, t)) (Textio.parse_fact rest)
    | '-' ->
      Result.map (fun (rel, t) -> Update.Delete (rel, t)) (Textio.parse_fact rest)
    | _ -> Error ("op line must start with + or -: " ^ line)

let rec parse_ops acc_ops = function
  | [] -> Ok (List.rev acc_ops)
  | l :: rest ->
    (match parse_op l with
     | Ok op -> parse_ops (op :: acc_ops) rest
     | Error m -> Error m)

let recover_v1 text =
  let len = String.length text in
  let ends_nl = text.[len - 1] = '\n' in
  let lines = Array.of_list (String.split_on_char '\n' text) in
  (* split_on_char leaves a final "" when the text is newline-terminated;
     otherwise the final element is an unterminated (possibly torn) line. *)
  let nlines = Array.length lines in
  let nlines = if ends_nl then nlines - 1 else nlines in
  (* Index of the first line NOT terminated by a newline (= nlines when
     the file ends cleanly). Only the final line can be unterminated. *)
  let complete = if ends_nl then nlines else nlines - 1 in
  if complete < 2 then Error "wal: truncated header"
  else
    match
      Scanf.sscanf lines.(1) "start %d%!" (fun s -> s)
    with
    | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
      Error ("wal: bad start line: " ^ lines.(1))
    | start when start < 0 -> Error "wal: negative start index"
    | start ->
      (* [nrec] is carried through the recursion — recomputing it with
         List.length per record would make recovery quadratic in the
         log length. *)
      let rec go i prev_time acc nrec =
        let torn reason =
          { start;
            records = List.rev acc;
            torn = Some (Printf.sprintf "record %d (index %d): %s" nrec
                           (start + nrec) reason);
            version = 1 }
        in
        if i >= nlines then
          { start; records = List.rev acc; torn = None; version = 1 }
        else if i >= complete then torn "unterminated final line (torn write)"
        else
          match parse_txn_line lines.(i) with
          | None -> torn ("malformed txn line: " ^ lines.(i))
          | Some (_, nops, _) when nops < 0 -> torn "negative op count"
          | Some (time, nops, crc) ->
            (* op lines i+1 .. i+nops must all exist and be
               newline-terminated *)
            if nops > 0 && i + nops >= complete then
              torn "ops cut short by end of file"
            else
              let ops_raw = Array.to_list (Array.sub lines (i + 1) nops) in
              if crc32 (record_body ~time ops_raw) <> crc then
                torn "CRC mismatch"
              else if
                (match prev_time with
                 | Some p -> time <= p
                 | None -> false)
              then torn "non-increasing commit time"
              else
                (match parse_ops [] ops_raw with
                 | Error m -> torn ("bad op: " ^ m)
                 | Ok txn ->
                   go (i + nops + 1) (Some time) ((time, txn) :: acc)
                     (nrec + 1))
      in
      Ok (go 2 None [] 0)

(* The v2 header is the same two text lines (so fault plans and header
   checks are format-agnostic); everything after the second newline is a
   sequence of binary-framed records. *)
let recover_v2 text =
  let len = String.length text in
  let hdr_start = String.length version_line_v2 + 1 in
  match String.index_from_opt text hdr_start '\n' with
  | None -> Error "wal: truncated header"
  | Some j ->
    let start_line = String.sub text hdr_start (j - hdr_start) in
    (match Scanf.sscanf start_line "start %d%!" (fun s -> s) with
     | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
       Error ("wal: bad start line: " ^ start_line)
     | start when start < 0 -> Error "wal: negative start index"
     | start ->
       let rec go off prev_time acc nrec =
         let torn reason =
           { start;
             records = List.rev acc;
             torn = Some (Printf.sprintf "record %d (index %d): %s" nrec
                            (start + nrec) reason);
             version = 2 }
         in
         if off >= len then
           { start; records = List.rev acc; torn = None; version = 2 }
         else if len - off < 8 then torn "torn length prefix"
         else
           let blen = read_le32 text off in
           let crc = read_le32 text (off + 4) in
           if blen < 2 then torn "bad record length"
           else if blen > len - off - 8 then
             torn "record body cut short by end of file"
           else
             let body = String.sub text (off + 8) blen in
             if crc32 body <> crc then torn "CRC mismatch"
             else if body.[blen - 1] <> '\n' then torn "malformed record body"
             else
               (* body = "<time>\n" then one op line per op, each
                  newline-terminated — exactly [record_body]. *)
               let lines =
                 String.split_on_char '\n' (String.sub body 0 (blen - 1))
               in
               (match lines with
                | [] -> torn "malformed record body"
                | time_str :: ops_raw ->
                  (match int_of_string_opt time_str with
                   | None -> torn ("malformed record body: bad time line: "
                                   ^ time_str)
                   | Some time ->
                     if
                       (match prev_time with
                        | Some p -> time <= p
                        | None -> false)
                     then torn "non-increasing commit time"
                     else
                       (match parse_ops [] ops_raw with
                        | Error m -> torn ("bad op: " ^ m)
                        | Ok txn ->
                          go (off + 8 + blen) (Some time)
                            ((time, txn) :: acc) (nrec + 1))))
       in
       Ok (go (j + 1) None [] 0))

let recover text =
  let len = String.length text in
  if len = 0 then Error "wal: empty file"
  else if String.starts_with ~prefix:(version_line ^ "\n") text then
    recover_v1 text
  else if String.starts_with ~prefix:(version_line_v2 ^ "\n") text then
    recover_v2 text
  else Error "wal: missing rtic-wal/1|2 header"
