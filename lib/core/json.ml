type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- Emission ---------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* JSON has no representation for non-finite numbers. *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec emit buf ~indent level j =
  let nl k =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * k) ' ')
    end
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        emit buf ~indent (level + 1) x)
      xs;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        escape_to buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        emit buf ~indent (level + 1) v)
      kvs;
    nl level;
    Buffer.add_char buf '}'

let to_string ?(indent = false) j =
  let buf = Buffer.create 256 in
  emit buf ~indent 0 j;
  Buffer.contents buf

(* ---------------- Parsing ---------------- *)

exception Fail of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c at offset %d, found %c" c !pos c'
    | None -> fail "expected %c at offset %d, found end of input" c !pos
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string at offset %d" !pos
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "dangling escape at offset %d" !pos;
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if !pos + 4 > n then fail "bad \\u escape at offset %d" !pos;
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape %S" hex
              | Some code ->
                (* Encode the code point as UTF-8 (BMP only; surrogate
                   pairs are passed through as two 3-byte sequences). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end)
           | c -> fail "bad escape \\%c at offset %d" c !pos);
          go ()
        | c when Char.code c < 0x20 ->
          fail "raw control character in string at offset %d" (!pos - 1)
        | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt tok with
       | Some f -> Float f
       | None -> fail "bad number %S at offset %d" tok start)
  in
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input at offset %d" !pos
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' at offset %d" !pos
        in
        items []
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}' at offset %d" !pos
        in
        members []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C at offset %d" c !pos
  in
  try
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Fail m -> Error m

(* ---------------- Accessors (for tests and consumers) ---------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function
  | Int i -> Some i
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_list = function
  | List xs -> Some xs
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None
