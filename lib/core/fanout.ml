(* Round-robin fan-out plan for per-constraint checkers (Monitor and
   Supervisor). The constraint set is partitioned checker-by-checker
   across the pool's shards; each shard records into a private Metrics
   recorder (the main recorder is not thread-safe), and after every
   parallel step the coordinator copies the shard rows back onto the main
   recorder's sequential-order rows, so the main recorder's document is
   identical to what a sequential run would have produced. *)

type entry = {
  e_shard : int;
  e_src : int;  (* first row in the shard recorder *)
  e_dst : int;  (* first row in the main recorder *)
  e_count : int;
}

type t = {
  pool : Pool.t;
  main : Metrics.t option;
  nshards : int;
  shard_of : int array;  (* checker index -> shard *)
  groups : int array array;  (* checker indices per shard, ascending *)
  recorders : Metrics.t array;  (* [||] when [main] is [None] *)
  mutable entries : entry list;  (* newest first *)
  src_next : int array;  (* rows accounted so far, per shard recorder *)
}

let make ?metrics pool n =
  let nshards = min (Pool.size pool) n in
  let shard_of = Array.init n (fun i -> i mod nshards) in
  let groups =
    Array.init nshards (fun s ->
        Array.of_list
          (List.filter (fun i -> shard_of.(i) = s)
             (List.init n (fun i -> i))))
  in
  { pool;
    main = metrics;
    nshards;
    shard_of;
    groups;
    recorders =
      (match metrics with
       | None -> [||]
       | Some _ -> Array.init nshards (fun _ -> Metrics.create ()));
    entries = [];
    src_next = Array.make nshards 0 }

let pool t = t.pool
let nshards t = t.nshards
let groups t = t.groups

let shard_metrics t i =
  if Array.length t.recorders = 0 then None
  else Some t.recorders.(t.shard_of.(i))

(* Mirror checker [i]'s shard-recorder registration into the main
   recorder: the checker just appended [names] rows to its shard recorder
   (via Kernel.create), and the main recorder now gets the same rows at
   the position a sequential run would have put them. *)
let register t i names =
  match t.main with
  | None -> ()
  | Some main ->
    let s = t.shard_of.(i) in
    let count = List.length names in
    let e_src = t.src_next.(s) in
    t.src_next.(s) <- e_src + count;
    let e_dst = Metrics.register_nodes main names in
    t.entries <- { e_shard = s; e_src; e_dst; e_count = count } :: t.entries

let sync t =
  match t.main with
  | None -> ()
  | Some main ->
    List.iter
      (fun e ->
        let src = t.recorders.(e.e_shard) in
        for j = 0 to e.e_count - 1 do
          Metrics.copy_node ~src (e.e_src + j) ~dst:main (e.e_dst + j)
        done)
      t.entries;
    let sum f = Array.fold_left (fun acc r -> acc + f r) 0 t.recorders in
    Metrics.set_steps main (sum Metrics.steps);
    Metrics.set_cache_counts main ~hits:(sum Metrics.cache_hits)
      ~misses:(sum Metrics.cache_misses)
