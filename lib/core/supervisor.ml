(* Crash-safe monitoring service. See supervisor.mli for the design; the
   invariants the code below maintains are:

   - WAL write + sync happen before verdict *delivery* (the durability
     point): with group commit the record is buffered and the outcome
     queued, and no outcome is released to the caller until the batch
     holding its record has been written and synced;
   - at most [group_commit - 1] accepted-but-unreleased transactions can
     be lost by a clean crash (the unflushed window); an outcome the
     caller has seen is never lost by a clean crash;
   - checkpoint files only ever appear complete (temp-then-rename) and
     carry a whole-file CRC trailer;
   - the WAL only loses records from the front, and only after a newer
     checkpoint is durable;
   - record indices in the WAL are contiguous: once an append fails the
     supervisor stops appending (degraded) until a successful checkpoint
     re-establishes a consistent log, rather than leaving a silent gap
     that would make replay attribute wrong indices;
   - the persistent append handle is closed before compaction renames a
     fresh log into place (a held descriptor would keep appending to the
     unlinked inode) and reopened lazily afterwards;
   - quarantine is a pure function of checker space vs the budget, so it
     never needs persisting. *)

module Database = Rtic_relational.Database
module Update = Rtic_relational.Update
module Formula = Rtic_mtl.Formula

let ( let* ) r f = Result.bind r f

type policy = Halt | Skip | Reject | Repair

let policy_of_string = function
  | "halt" -> Ok Halt
  | "skip" -> Ok Skip
  | "reject" -> Ok Reject
  | "repair" -> Ok Repair
  | s ->
    Error (Printf.sprintf "unknown error policy %S (halt|skip|reject|repair)" s)

let policy_to_string = function
  | Halt -> "halt"
  | Skip -> "skip"
  | Reject -> "reject"
  | Repair -> "repair"

type config = {
  auto_checkpoint : int;
  retain : int;
  on_error : policy;
  aux_budget : int option;
  group_commit : int;  (* records per write+sync batch; 1 = every txn *)
  flush_ms : int;  (* release a short batch once this old; 0 = never *)
  wal_format : int;  (* WAL version written at creation: 1 | 2 *)
}

let default_config =
  { auto_checkpoint = 64;
    retain = 2;
    on_error = Halt;
    aux_budget = None;
    group_commit = 1;
    flush_ms = 0;
    wal_format = 1 }

type outcome =
  | Checked of {
      reports : Monitor.report list;
      inconclusive : string list;
    }
  | Skipped of string
  | Rejected of string
  | Repaired of {
      actions : Update.op list;
      witnesses : (Update.op * string) list;
      repaired : Monitor.report list;
      inconclusive : string list;
    }
  | Unrepairable of {
      reports : Monitor.report list;
      unrepairable : (string * string) list;
      inconclusive : string list;
    }

type t = {
  fs : Faults.fs;
  cfg : config;
  dir : string;
  metrics : Metrics.t option;
  tracer : Tracer.t option;
  fan : Fanout.t option;  (* parallel checker fan-out; None = sequential *)
  mutable db : Database.t;
  mutable checkers : Incremental.t list;  (* registration order *)
  mutable quarantine : (string * string) list;  (* registration order *)
  mutable accepted : int;  (* global WAL index of the next record *)
  mutable last : int option;  (* commit time of the last accepted txn *)
  mutable since_ck : int;
  mutable wal_bytes : int;  (* appended since the last checkpoint/recovery *)
  mutable degraded : bool;
  wal_version : int;  (* sticky per directory: set at create/recover *)
  mutable wal_out : Faults.handle option;  (* persistent append handle *)
  pending_buf : Buffer.t;  (* encoded records awaiting write+sync *)
  mutable pending_records : int;
  mutable pending_outs_rev : outcome list;  (* acks awaiting release *)
  mutable batch_t0 : float;  (* wall clock at the first buffered record *)
}

let bump ?by t name = Option.iter (fun m -> Metrics.bump ?by m name) t.metrics

(* Durability suspension is a state transition worth a trace event; only
   the entry edge is emitted, re-failures while already degraded are not. *)
let enter_degraded t ~why =
  if not t.degraded then
    Tracer.point t.tracer ~cat:"supervisor" ~name:"degraded" ~arg:why ();
  t.degraded <- true

(* ---------------- Paths ---------------- *)

let wal_path dir = Filename.concat dir "wal.log"

let checkpoint_path dir step =
  Filename.concat dir (Printf.sprintf "checkpoint-%09d.ck" step)

let checkpoint_step_of_name name =
  let pre = "checkpoint-" and suf = ".ck" in
  let lp = String.length pre and ls = String.length suf in
  let ln = String.length name in
  if
    ln > lp + ls
    && String.sub name 0 lp = pre
    && String.sub name (ln - ls) ls = suf
  then int_of_string_opt (String.sub name lp (ln - lp - ls))
  else None

let checkpoint_files (fs : Faults.fs) dir =
  match fs.list_dir dir with
  | Error _ -> []
  | Ok names ->
    List.filter_map
      (fun n ->
        Option.map
          (fun step -> (step, Filename.concat dir n))
          (checkpoint_step_of_name n))
      names
    |> List.sort (fun (a, _) (b, _) -> compare b a)

let state_exists (fs : Faults.fs) dir = fs.exists (wal_path dir)

(* ---------------- Checkpoint files ----------------

   A supervisor-written checkpoint is Monitor.to_text followed by a
   trailer of "# "-prefixed lines:

     # accepted <N>
     # last_time <T|none>
     # crc32 <8 hex digits>      (always last; covers everything above)

   The CRC turns any bit flip anywhere in the file into a load error —
   Monitor.of_text's structural checks alone cannot see a flipped digit
   inside a stored value. Files without a trailer (plain --save-state
   output) are still accepted; their step comes from the filename and
   their last_time from the restored checkers. *)

type snapshot = {
  snap_step : int;
  snap_monitor : Monitor.t;
  snap_last_time : int option;
}

let checkpoint_text mon ~accepted ~last =
  let body =
    Printf.sprintf "%s# accepted %d\n# last_time %s\n" (Monitor.to_text mon)
      accepted
      (match last with Some t -> string_of_int t | None -> "none")
  in
  Printf.sprintf "%s# crc32 %08x\n" body (Wal.crc32 body)

let load_checkpoint_text ?metrics ?tracer ?pool cat defs ~step text =
  let fail fmt = Printf.ksprintf (fun m -> Error ("checkpoint: " ^ m)) fmt in
  let lines = String.split_on_char '\n' text in
  let rev = match List.rev lines with "" :: r -> r | r -> r in
  let is_meta l = String.length l >= 2 && String.sub l 0 2 = "# " in
  let rec take_meta meta = function
    | l :: rest when is_meta l -> take_meta (l :: meta) rest
    | rest -> (meta, rest)
  in
  let meta, body_rev = take_meta [] rev in
  (* Verify the CRC first: it covers the exact bytes before its own line. *)
  let* meta =
    match List.rev meta with
    | last :: rest_rev when String.length last > 8 && String.sub last 0 8 = "# crc32 "
      ->
      let rest = List.rev rest_rev in
      (match int_of_string_opt ("0x" ^ String.sub last 8 (String.length last - 8)) with
       | None -> fail "malformed crc32 trailer %S" last
       | Some claimed ->
         let covered =
           String.concat "\n" (List.rev_append body_rev rest) ^ "\n"
         in
         if Wal.crc32 covered <> claimed then
           fail "crc mismatch (stored %08x, computed %08x)" claimed
             (Wal.crc32 covered)
         else Ok rest)
    | meta ->
      (* No CRC trailer: tolerate (plain --save-state output), but then a
         supervisor meta line without its protecting CRC is suspicious. *)
      if meta = [] then Ok [] else fail "trailer lines without a crc32 line"
  in
  let* accepted, last =
    List.fold_left
      (fun acc l ->
        let* accepted, last = acc in
        match String.index_from_opt l 2 ' ' with
        | None -> fail "malformed trailer line %S" l
        | Some sp ->
          let key = String.sub l 2 (sp - 2) in
          let arg = String.sub l (sp + 1) (String.length l - sp - 1) in
          (match key with
           | "accepted" ->
             (match int_of_string_opt arg with
              | Some n when n >= 0 -> Ok (Some n, last)
              | _ -> fail "bad accepted %s" arg)
           | "last_time" ->
             if arg = "none" then Ok (accepted, None)
             else
               (match int_of_string_opt arg with
                | Some v -> Ok (accepted, Some v)
                | None -> fail "bad last_time %s" arg)
           | _ -> fail "unknown trailer key %s" key))
      (Ok (None, None))
      meta
  in
  let* () =
    match accepted with
    | Some n when n <> step ->
      fail "trailer says accepted %d but filename says %d" n step
    | _ -> Ok ()
  in
  let body = String.concat "\n" (List.rev body_rev) ^ "\n" in
  let* mon = Monitor.of_text ?metrics ?tracer ?pool cat defs body in
  let last =
    match last with
    | Some _ as l -> l
    | None ->
      (* No trailer: the freshest checker timestamp is the best bound. *)
      List.fold_left
        (fun acc c ->
          match (acc, Incremental.last_time c) with
          | None, l | l, None -> l
          | Some a, Some b -> Some (max a b))
        None
        (snd (Monitor.parts mon))
  in
  Ok { snap_step = step; snap_monitor = mon; snap_last_time = last }

let load_checkpoint ?metrics ?tracer ?pool ~(fs : Faults.fs) cat defs path =
  match checkpoint_step_of_name (Filename.basename path) with
  | None -> Error (Printf.sprintf "checkpoint: unrecognized filename %s" path)
  | Some step ->
    let* text = fs.read_file path in
    load_checkpoint_text ?metrics ?tracer ?pool cat defs ~step text

(* ---------------- Stepping ---------------- *)

let checker_name c = (Incremental.def c).Formula.name

let is_quarantined t name = List.mem_assoc name t.quarantine

(* Derive the quarantine set from checker spaces alone — used at recovery
   so the checkpoint is the whole state. *)
let derive_quarantine cfg checkers =
  match cfg.aux_budget with
  | None -> []
  | Some budget ->
    List.filter_map
      (fun c ->
        let sp = Incremental.space c in
        if sp > budget then
          Some
            ( checker_name c,
              Printf.sprintf "auxiliary space %d exceeds budget %d" sp budget
            )
        else None)
      checkers

(* Step every active checker on the already-updated database; freeze any
   whose space crosses the budget (its crossing verdict is still
   delivered — from the next transaction on it reports inconclusive). *)
let step_checkers_seq t ~time db =
  let* checkers_rev, reports_rev =
    List.fold_left
      (fun acc c ->
        let* cs, rs = acc in
        let name = checker_name c in
        if is_quarantined t name then Ok (c :: cs, rs)
        else
          let* c, v = Incremental.step c ~time db in
          let rs =
            if v.Incremental.satisfied then rs
            else
              { Monitor.constraint_name = name;
                position = v.Incremental.index;
                time }
              :: rs
          in
          (match t.cfg.aux_budget with
           | Some budget when Incremental.space c > budget ->
             t.quarantine <-
               t.quarantine
               @ [ ( name,
                     Printf.sprintf "auxiliary space %d exceeds budget %d"
                       (Incremental.space c) budget ) ];
             bump t "constraints_quarantined";
             Tracer.point t.tracer ~cat:"supervisor" ~name:"quarantine"
               ~arg:name ()
           | _ -> ());
          Ok (c :: cs, rs))
      (Ok ([], []))
      t.checkers
  in
  t.checkers <- List.rev checkers_rev;
  t.db <- db;
  t.accepted <- t.accepted + 1;
  t.last <- Some time;
  t.since_ck <- t.since_ck + 1;
  let reports = List.rev reports_rev in
  (match t.metrics with
   | None -> ()
   | Some m -> Metrics.add_violations m (List.length reports));
  Ok reports

(* Parallel variant: each shard steps its non-quarantined checkers in
   ascending order and stops at its first error; the coordinator then
   replays the budget/quarantine accounting in global registration order —
   on an error, only for the checkers a sequential run would have stepped
   before halting — so quarantine decisions, counters, trace points and
   reports are exactly the sequential ones. Workers read [t.quarantine]
   but never write it; the pool's join orders those reads before the
   coordinator's mutations below. *)
let step_checkers_par t fan ~time db =
  let cs = Array.of_list t.checkers in
  let timed = t.tracer <> None in
  let outs =
    Pool.run (Fanout.pool fan)
      (Array.map
         (fun idxs () ->
           let w0 = if timed then Unix.gettimeofday () else 0.0 in
           let rec go acc = function
             | [] -> Ok (List.rev acc)
             | i :: rest ->
               let c = cs.(i) in
               if is_quarantined t (checker_name c) then go acc rest
               else
                 (match Incremental.step c ~time db with
                  | Error e -> Error (i, e)
                  | Ok (c, v) -> go ((i, c, v) :: acc) rest)
           in
           let r = go [] (Array.to_list idxs) in
           (r, w0, if timed then Unix.gettimeofday () else 0.0))
         (Fanout.groups fan))
  in
  (match t.tracer with
   | None -> ()
   | Some tr ->
     Array.iteri
       (fun s ((_, w0, w1) : _ * float * float) ->
         Tracer.timed_span t.tracer ~cat:"shard" ~name:(string_of_int s)
           ~arg:(string_of_int (Array.length (Fanout.groups fan).(s)))
           ~t0_ns:(Tracer.stamp tr w0) ~t1_ns:(Tracer.stamp tr w1) ())
       outs);
  let err =
    Array.fold_left
      (fun acc (r, _, _) ->
        match r with
        | Error (i, e) ->
          (match acc with
           | Some (j, _) when j <= i -> acc
           | _ -> Some (i, e))
        | Ok _ -> acc)
      None outs
  in
  let stepped = Array.make (Array.length cs) None in
  Array.iter
    (fun (r, _, _) ->
      match r with
      | Ok entries ->
        List.iter (fun (i, c, v) -> stepped.(i) <- Some (c, v)) entries
      | Error _ -> ())
    outs;
  let stop = match err with Some (i, _) -> i | None -> Array.length cs in
  let reports_rev = ref [] in
  for i = 0 to stop - 1 do
    match stepped.(i) with
    | None -> ()
    | Some (c, v) ->
      cs.(i) <- c;
      let name = checker_name c in
      if not v.Incremental.satisfied then
        reports_rev :=
          { Monitor.constraint_name = name;
            position = v.Incremental.index;
            time }
          :: !reports_rev;
      (match t.cfg.aux_budget with
       | Some budget when Incremental.space c > budget ->
         t.quarantine <-
           t.quarantine
           @ [ ( name,
                 Printf.sprintf "auxiliary space %d exceeds budget %d"
                   (Incremental.space c) budget ) ];
         bump t "constraints_quarantined";
         Tracer.point t.tracer ~cat:"supervisor" ~name:"quarantine" ~arg:name
           ()
       | _ -> ())
  done;
  match err with
  | Some (_, e) -> Error e
  | None ->
    t.checkers <- Array.to_list cs;
    t.db <- db;
    t.accepted <- t.accepted + 1;
    t.last <- Some time;
    t.since_ck <- t.since_ck + 1;
    Fanout.sync fan;
    let reports = List.rev !reports_rev in
    (match t.metrics with
     | None -> ()
     | Some m -> Metrics.add_violations m (List.length reports));
    Ok reports

let step_checkers t ~time db =
  match t.fan with
  | None -> step_checkers_seq t ~time db
  | Some fan -> step_checkers_par t fan ~time db

(* ---------------- The commit queue ---------------- *)

let get_handle t =
  match t.wal_out with
  | Some h -> Ok h
  | None ->
    (match t.fs.open_append (wal_path t.dir) with
     | Ok h ->
       t.wal_out <- Some h;
       Ok h
     | Error _ as e -> e)

let close_handle t =
  match t.wal_out with
  | Some h ->
    h.Faults.h_close ();
    t.wal_out <- None
  | None -> ()

(* Buffer one record for the current batch. Nothing is written here —
   the durability point moved to [flush_records] — but a degraded
   supervisor must not buffer either, or a later recovery point would
   append records with a gap before them. *)
let append_wal t ~time txn =
  if not t.degraded then begin
    if t.pending_records = 0 then t.batch_t0 <- Unix.gettimeofday ();
    Buffer.add_string t.pending_buf
      (Wal.encode_record ~version:t.wal_version ~time txn);
    t.pending_records <- t.pending_records + 1
  end

(* Durability point: one write + one sync for the whole batch. On any
   failure the batch is dropped, the handle discarded (it may hold a
   half-written record) and the supervisor degrades — exactly the old
   per-record contract, at batch granularity. *)
let flush_records t =
  if t.pending_records > 0 then begin
    let data = Buffer.contents t.pending_buf in
    let n = t.pending_records in
    Buffer.clear t.pending_buf;
    t.pending_records <- 0;
    let res =
      Tracer.span t.tracer ~cat:"wal" ~name:"append" ~arg:(string_of_int n)
        (fun () ->
          let* h = get_handle t in
          let* () = h.Faults.h_write data in
          h.Faults.h_sync ())
    in
    match res with
    | Ok () ->
      bump ~by:n t "wal_records_appended";
      t.wal_bytes <- t.wal_bytes + String.length data
    | Error e ->
      bump t "wal_append_failures";
      close_handle t;
      enter_degraded t ~why:("wal append failed: " ^ e)
  end

(* Release every queued ack, oldest first. Only called once the records
   backing them are flushed (or dropped into degraded mode, where
   verdict delivery continues unlogged, as before). *)
let release_outs t =
  let outs = List.rev t.pending_outs_rev in
  t.pending_outs_rev <- [];
  outs

let flush t =
  flush_records t;
  release_outs t

(* Release the queue when it is due: the batch reached [group_commit]
   records, aged past [flush_ms], or there is nothing awaiting
   durability at all (policy outcomes with no record of their own). *)
let maybe_release t =
  let due =
    t.pending_records >= max 1 t.cfg.group_commit
    || (t.cfg.flush_ms > 0
        && t.pending_records > 0
        && (Unix.gettimeofday () -. t.batch_t0) *. 1000.0
           >= float_of_int t.cfg.flush_ms)
  in
  if due then flush_records t;
  if t.pending_records = 0 then release_outs t else []

(* ---------------- Checkpointing ---------------- *)

let oldest_retained t =
  match checkpoint_files t.fs t.dir with
  | [] -> t.accepted
  | files ->
    let keep = min t.cfg.retain (List.length files) in
    fst (List.nth files (keep - 1))

(* Rewrite the WAL so it holds exactly the records for
   [oldest retained checkpoint, accepted) — or, if the on-disk log cannot
   supply them (torn tail, or appends lost while degraded), an empty log
   starting at [accepted]: the fresh checkpoint alone carries the state,
   and a log with a silent gap must never be left behind. *)
let compact_wal t =
  let oldest = oldest_retained t in
  let version = t.wal_version in
  let give_up () = Wal.encode ~version ~start:t.accepted [] in
  let text =
    match t.fs.read_file (wal_path t.dir) with
    | Error _ -> give_up ()
    | Ok text ->
      (match Wal.recover text with
       | Error _ -> give_up ()
       | Ok w ->
         let e = w.Wal.start + List.length w.Wal.records in
         if w.Wal.start <= oldest && e >= t.accepted then
           let rec drop n l =
             if n <= 0 then l
             else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
           in
           Wal.encode ~version ~start:oldest
             (drop (oldest - w.Wal.start) w.Wal.records)
         else give_up ())
  in
  let tmp = Filename.concat t.dir ".wal.tmp" in
  let* () = t.fs.write_file tmp text in
  (* The held append fd (if any) points at the file being replaced; keep
     it across the rename and later appends would land on the unlinked
     inode. Close now, reopen lazily at the next flush. *)
  close_handle t;
  let* () = t.fs.rename tmp (wal_path t.dir) in
  bump t "wal_compactions";
  Ok ()

let checkpoint t =
  (* Records only — the checkpoint covers every accepted transaction, so
     their records must be on disk before compaction rewrites the log.
     Queued acks stay queued until their group boundary. *)
  flush_records t;
  let result =
    Tracer.span t.tracer ~cat:"checkpoint" ~name:"write"
      ~arg:(string_of_int t.accepted)
    @@ fun () ->
    let mon =
      Monitor.of_parts ?metrics:t.metrics ?tracer:t.tracer t.db t.checkers
    in
    let text = checkpoint_text mon ~accepted:t.accepted ~last:t.last in
    let tmp = Filename.concat t.dir ".checkpoint.tmp" in
    let* () = t.fs.write_file tmp text in
    let* () = t.fs.rename tmp (checkpoint_path t.dir t.accepted) in
    bump t "checkpoints_written";
    t.since_ck <- 0;
    t.wal_bytes <- 0;
    (* Prune, then compact: the WAL may only shrink once the snapshots
       that replace its prefix are durable. Pruning is best-effort. *)
    let files = checkpoint_files t.fs t.dir in
    List.iteri
      (fun i (_, path) ->
        if i >= t.cfg.retain then ignore (t.fs.remove path))
      files;
    compact_wal t
  in
  match result with
  | Ok () ->
    t.degraded <- false;
    Ok ()
  | Error e ->
    bump t "checkpoint_failures";
    Error e

(* ---------------- Feeding transactions ---------------- *)

let reject t reason =
  match t.cfg.on_error with
  | Halt -> Error reason
  | Skip ->
    bump t "txns_skipped";
    Tracer.point t.tracer ~cat:"supervisor" ~name:"txn-skipped" ~arg:reason ();
    Ok (Skipped reason)
  | Reject | Repair ->
    (* Repair heals constraint violations; a transaction that is not even
       well formed (or time-travels) has nothing to heal — report it. *)
    bump t "txns_rejected";
    Tracer.point t.tracer ~cat:"supervisor" ~name:"txn-rejected" ~arg:reason ();
    Ok (Rejected reason)

let finish t ~t0 =
  (match t.metrics with
   | None -> ()
   | Some m -> Metrics.record_latency m (Unix.gettimeofday () -. t0));
  if t.cfg.auto_checkpoint > 0 && t.since_ck >= t.cfg.auto_checkpoint
  then begin
    match checkpoint t with
    | Ok () -> ()
    | Error e -> enter_degraded t ~why:("checkpoint failed: " ^ e)
  end

(* Self-healing path (on_error = Repair). Unlike the eager path, the WAL
   append is deferred until the final transaction is known: a repaired
   transaction is journaled as ONE record [(time, txn @ actions)], so
   recovery replays straight to the repaired state and a torn append loses
   the repair and its trigger together (never a half-repaired state).
   Durability still precedes verdict delivery. *)
let step_repair t ~t0 ~time ~txn db =
  let pre_checkers = t.checkers in
  let pre_db = t.db and pre_q = t.quarantine in
  let pre_accepted = t.accepted and pre_last = t.last in
  let pre_ck = t.since_ck in
  let inconclusive = List.map fst pre_q in
  let* reports = step_checkers t ~time db in
  if reports = [] then begin
    append_wal t ~time txn;
    finish t ~t0;
    Ok (Checked { reports; inconclusive })
  end
  else begin
    let skip name = List.mem_assoc name pre_q in
    let res =
      Tracer.span t.tracer ~cat:"repair" ~name:"search"
        ~arg:(string_of_int (List.length reports)) (fun () ->
          Repair.search ~checkers:pre_checkers ~skip ~time ~txn db)
    in
    match res with
    | Error e -> Error ("repair: " ^ e)
    | Ok (Repair.Unrepairable stuck) ->
      (* The violating state stays committed — there is nothing a
         current-state update could do about it. *)
      bump t "txns_unrepairable";
      Tracer.point t.tracer ~cat:"repair" ~name:"unrepairable"
        ~arg:(String.concat "," (List.map (fun u -> u.Repair.constraint_name) stuck))
        ();
      append_wal t ~time txn;
      finish t ~t0;
      Ok
        (Unrepairable
           { reports;
             unrepairable =
               List.map
                 (fun u -> (u.Repair.constraint_name, u.Repair.offending))
                 stuck;
             inconclusive })
    | Ok (Repair.Inconclusive { reason; _ }) ->
      (* Honest non-answer: the violation stands, exactly as under Halt's
         Checked outcome, and the budget exhaustion is counted. *)
      bump t "repairs_inconclusive";
      Tracer.point t.tracer ~cat:"repair" ~name:"inconclusive" ~arg:reason ();
      append_wal t ~time txn;
      finish t ~t0;
      Ok (Checked { reports; inconclusive })
    | Ok Repair.Clean ->
      (* Oracle and committed step disagree — defensive, should not happen. *)
      append_wal t ~time txn;
      finish t ~t0;
      Ok (Checked { reports; inconclusive })
    | Ok (Repair.Repaired { actions; witnesses; db = rdb; _ }) ->
      (* Roll the violating step back and commit the repaired state
         instead. Violations recorded by the first step stand in the
         metrics as detected-then-repaired. *)
      t.checkers <- pre_checkers;
      t.db <- pre_db;
      t.quarantine <- pre_q;
      t.accepted <- pre_accepted;
      t.last <- pre_last;
      t.since_ck <- pre_ck;
      append_wal t ~time (txn @ actions);
      let* reports' = step_checkers t ~time rdb in
      bump t "txns_repaired";
      bump ~by:(List.length actions) t "repair_actions_applied";
      Tracer.point t.tracer ~cat:"repair" ~name:"applied"
        ~arg:(string_of_int (List.length actions)) ();
      finish t ~t0;
      if reports' = [] then
        Ok
          (Repaired
             { actions;
               witnesses =
                 List.map
                   (fun w -> (w.Repair.action, w.Repair.fired_by))
                   witnesses;
               repaired = reports;
               inconclusive })
      else
        (* Defensive: the committed re-step disagrees with the probe. *)
        Ok (Checked { reports = reports'; inconclusive })
  end

(* Feed one transaction through the commit queue: the transaction is
   fully processed (applied, checked, its record buffered) but its
   outcome is only {e released} once the batch holding its record is
   durable. Returns the outcomes whose batch this call flushed — [] when
   the batch is still open, possibly several when it just closed. A
   [Halt]-policy error still flushes the records of everything accepted
   so far (their acks are lost with the run — crash semantics). *)
let submit t ~time txn =
  let t0 =
    match t.metrics with None -> 0.0 | Some _ -> Unix.gettimeofday ()
  in
  let queue o = t.pending_outs_rev <- o :: t.pending_outs_rev in
  let queued r =
    match r with
    | Error e ->
      flush_records t;
      Error e
    | Ok o ->
      queue o;
      Ok (maybe_release t)
  in
  match t.last with
  | Some t1 when time <= t1 ->
    bump t "clock_regressions";
    Tracer.point t.tracer ~cat:"supervisor" ~name:"clock-regression" ();
    queued
      (reject t (Printf.sprintf "clock regression: time %d after %d" time t1))
  | _ ->
    Tracer.span t.tracer ~cat:"txn" ~arg:(string_of_int time) @@ fun () ->
    (match
       Tracer.span t.tracer ~cat:"apply" (fun () -> Update.apply t.db txn)
     with
     | Error e ->
       bump t "malformed_txns";
       queued (reject t ("malformed transaction: " ^ e))
     | Ok db when t.cfg.on_error = Repair ->
       queued (step_repair t ~t0 ~time ~txn db)
     | Ok db ->
       (* Accepted: buffer the record, then verdicts, then maybe flush —
          [finish] last so the measured latency covers the durability
          work exactly when this transaction closed its batch. *)
       append_wal t ~time txn;
       let inconclusive = List.map fst t.quarantine in
       (match step_checkers t ~time db with
        | Error e ->
          flush_records t;
          Error e
        | Ok reports ->
          queue (Checked { reports; inconclusive });
          let released = maybe_release t in
          finish t ~t0;
          Ok released))

let step t ~time txn =
  let* released = submit t ~time txn in
  match List.rev (flush t) @ List.rev released with
  | o :: _ -> Ok o
  | [] -> Error "internal: transaction produced no outcome"

(* ---------------- Lifecycle ---------------- *)

let create ?(fs = Faults.real_fs) ?metrics ?tracer ?pool
    ?(config = default_config) ?init ~state_dir:dir cat defs =
  let* () =
    if config.wal_format = 1 || config.wal_format = 2 then Ok ()
    else
      Error
        (Printf.sprintf "unknown WAL format %d (known: 1, 2)"
           config.wal_format)
  in
  let* () = fs.mkdir dir in
  if state_exists fs dir then
    Error
      (Printf.sprintf
         "%s already holds a WAL; refusing to overwrite live state (use \
          recover)"
         dir)
  else
    let db = match init with Some db -> db | None -> Database.create cat in
    let* mon = Monitor.create_with ?metrics ?tracer ?pool db defs in
    let db, checkers = Monitor.parts mon in
    let t =
      { fs;
        cfg = config;
        dir;
        metrics;
        tracer;
        fan = Monitor.fanout mon;
        db;
        checkers;
        quarantine = [];
        accepted = 0;
        last = None;
        since_ck = 0;
        wal_bytes = 0;
        degraded = false;
        wal_version = config.wal_format;
        wal_out = None;
        pending_buf = Buffer.create 1024;
        pending_records = 0;
        pending_outs_rev = [];
        batch_t0 = 0.0 }
    in
    let* () =
      fs.write_file (wal_path dir)
        (Wal.header ~version:config.wal_format ~start:0 ())
    in
    let* () = checkpoint t in
    Ok t

(* ---------------- Recovery ---------------- *)

type recovery_info = {
  checkpoint_step : int option;
  checkpoints_skipped : (string * string) list;
  wal_start : int;
  replayed : int;
  replay_reports : Monitor.report list;
  torn_tail : string option;
  repaired : bool;
}

let recover ?(fs = Faults.real_fs) ?metrics ?tracer ?pool
    ?(config = default_config) ?init ?(repair = true) ~state_dir:dir cat defs =
  if not (state_exists fs dir) then
    Error (Printf.sprintf "%s holds no WAL; not a supervisor state directory" dir)
  else
    let* wal_text = fs.read_file (wal_path dir) in
    let* w = Wal.recover wal_text in
    Option.iter
      (fun why ->
        Tracer.point tracer ~cat:"recovery" ~name:"torn-tail" ~arg:why ())
      w.Wal.torn;
    (* Newest checkpoint that loads cleanly; collect skip reasons. *)
    let rec pick skipped = function
      | [] -> (None, List.rev skipped)
      | (step, path) :: rest ->
        let name = Filename.basename path in
        (match fs.read_file path with
         | Error e -> pick ((name, e) :: skipped) rest
         | Ok text ->
           (match
            load_checkpoint_text ?metrics ?tracer ?pool cat defs ~step text
          with
            | Error e -> pick ((name, e) :: skipped) rest
            | Ok snap -> (Some snap, List.rev skipped)))
    in
    let picked, skipped =
      Tracer.span tracer ~cat:"recovery" ~name:"load-checkpoint" (fun () ->
          pick [] (checkpoint_files fs dir))
    in
    List.iter
      (fun (name, _) ->
        Tracer.point tracer ~cat:"recovery" ~name:"checkpoint-skipped"
          ~arg:name ())
      skipped;
    Option.iter
      (fun m -> Metrics.bump ~by:(List.length skipped) m "checkpoints_skipped")
      (if skipped = [] then None else metrics);
    let* base_step, mon =
      match picked with
      | Some snap ->
        if snap.snap_step < w.Wal.start then
          Error
            (Printf.sprintf
               "newest valid checkpoint (step %d) predates the WAL (start \
                %d): records needed to reach it were compacted away; \
                unrecoverable"
               snap.snap_step w.Wal.start)
        else Ok (Some snap, snap.snap_monitor)
      | None ->
        if w.Wal.start = 0 then
          (* No usable snapshot but the full history is in the log. *)
          let db =
            match init with Some db -> db | None -> Database.create cat
          in
          let* mon = Monitor.create_with ?metrics ?tracer ?pool db defs in
          Ok (None, mon)
        else
          Error
            (Printf.sprintf
               "no valid checkpoint and the WAL starts at record %d; \
                unrecoverable"
               w.Wal.start)
    in
    let db, checkers = Monitor.parts mon in
    let accepted, last =
      match base_step with
      | Some snap -> (snap.snap_step, snap.snap_last_time)
      | None -> (0, None)
    in
    let t =
      { fs;
        cfg = config;
        dir;
        metrics;
        tracer;
        fan = Monitor.fanout mon;
        db;
        checkers;
        quarantine = [];
        accepted;
        last;
        since_ck = 0;
        wal_bytes = 0;
        (* Never append after damaged bytes; repair (below) clears this. *)
        degraded = w.Wal.torn <> None;
        (* The directory's format wins over cfg.wal_format: a log is never
           silently migrated mid-life (compaction rewrites it in its own
           version). *)
        wal_version = w.Wal.version;
        wal_out = None;
        pending_buf = Buffer.create 1024;
        pending_records = 0;
        pending_outs_rev = [];
        batch_t0 = 0.0 }
    in
    t.quarantine <- derive_quarantine config t.checkers;
    (* Replay the WAL suffix past the checkpoint. Replayed records are not
       re-appended; they go through the same stepping (and quarantine)
       logic as live traffic. *)
    let rec drop n l =
      if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
    in
    let suffix = drop (accepted - w.Wal.start) w.Wal.records in
    let* replay_reports_rev =
      Tracer.span tracer ~cat:"recovery" ~name:"replay"
        ~arg:(string_of_int (List.length suffix))
      @@ fun () ->
      List.fold_left
        (fun acc (time, txn) ->
          let* rs = acc in
          match Update.apply t.db txn with
          | Error e ->
            Error ("recovery replay: WAL record does not apply: " ^ e)
          | Ok db ->
            bump t "wal_records_replayed";
            let* reports = step_checkers t ~time db in
            Ok (List.rev_append reports rs))
        (Ok []) suffix
    in
    let repaired =
      repair && (match checkpoint t with Ok () -> true | Error _ -> false)
    in
    Ok
      ( t,
        { checkpoint_step = Option.map (fun s -> s.snap_step) base_step;
          checkpoints_skipped = skipped;
          wal_start = w.Wal.start;
          replayed = List.length suffix;
          replay_reports = List.rev replay_reports_rev;
          torn_tail = w.Wal.torn;
          repaired } )

(* ---------------- Introspection ---------------- *)

let database t = t.db
let checkers t = t.checkers
let steps t = t.accepted
let last_time t = t.last
let space t = List.fold_left (fun a c -> a + Incremental.space c) 0 t.checkers
let quarantined t = t.quarantine
let degraded t = t.degraded
let wal_bytes_since_checkpoint t = t.wal_bytes
let state_dir t = t.dir
let wal_version t = t.wal_version
let pending_records t = t.pending_records
let pending_outcomes t = List.length t.pending_outs_rev
