(** Crash-safe monitoring service: the resilience layer around {!Monitor}.

    A supervisor owns a {e state directory} and keeps the monitor
    recoverable at all times:

    - every accepted transaction is appended to a CRC-per-record
      write-ahead log ({!Wal}) {e before} its verdicts are delivered, so a
      crash at any point loses no accepted transaction;
    - every [auto_checkpoint] accepted transactions the full monitor state
      is written to a fresh checkpoint file — write-temp-then-rename, so a
      crash mid-write never damages an existing snapshot — the newest
      [retain] checkpoints are kept, and the WAL is compacted to the
      oldest retained one;
    - {!recover} restarts from the newest checkpoint that loads cleanly
      (corrupt ones are skipped and reported, using {!Monitor.of_text}'s
      strict errors plus a whole-file CRC trailer) and replays the WAL
      suffix, yielding a state observationally identical to the
      uninterrupted run — the crash-recovery equivalence property of
      [test/test_resilience.ml].

    Ill-formed input — a clock regression or a malformed transaction — is
    handled per the configured {!policy} instead of killing the service,
    and a per-constraint auxiliary-space budget {e quarantines} a
    constraint whose bounded history encoding outgrows it: monitoring of
    the other constraints continues and the quarantined constraint's
    verdicts become explicitly inconclusive rather than the process dying
    of memory exhaustion.

    All file I/O goes through a {!Faults.fs} record, so the whole layer
    runs hermetically against {!Faults.mem_fs} and under injected write
    failures. Write failures degrade rather than kill: verdicts keep
    flowing, durability is suspended ({!degraded}), and the next
    successful checkpoint restores it.

    State directory layout (FORMATS.md §5): [wal.log] plus
    [checkpoint-NNNNNNNNN.ck] files, where [NNNNNNNNN] is the zero-padded
    count of transactions accepted when the snapshot was taken. *)

(** What to do with a transaction the monitor cannot process — a clock
    regression (commit time not past the last accepted one) or a malformed
    transaction (an update {!Rtic_relational.Update.apply} refuses). *)
type policy =
  | Halt  (** Return [Error]: stop the service (the conservative default). *)
  | Skip  (** Drop it silently and keep monitoring; only counted. *)
  | Reject  (** Drop it and tell the caller via {!outcome}[.Rejected]. *)
  | Repair
      (** Like {!Reject} for ill-formed transactions — but a {e well}-formed
          transaction that violates constraints triggers a bounded
          {!Repair.search} for a founded minimal repair. If one is found,
          the transaction commits {e with} the repair actions (journaled as
          one WAL record, so recovery replays the repaired state
          atomically) and the caller sees {!outcome.Repaired}; violations
          anchored entirely in past states are reported
          {!outcome.Unrepairable} and the violating state stands; an
          exhausted search budget falls back to a plain
          {!outcome.Checked} with its violations. *)

val policy_of_string : string -> (policy, string) result
(** ["halt"], ["skip"], ["reject"] or ["repair"]. *)

val policy_to_string : policy -> string

type config = {
  auto_checkpoint : int;
      (** Checkpoint every N accepted transactions; [0] disables automatic
          checkpointing (explicit {!checkpoint} still works). *)
  retain : int;  (** Keep the newest K checkpoint files, K ≥ 1. *)
  on_error : policy;
  aux_budget : int option;
      (** Per-constraint auxiliary-space budget ({!Incremental.space});
          [None] = unlimited. Crossing it quarantines the constraint. *)
  group_commit : int;
      (** Group commit: accepted records per WAL write+sync batch. [1]
          (the default) syncs every transaction — the classic contract.
          With N > 1, up to N−1 accepted-but-unacknowledged transactions
          can be lost by a crash; an outcome that has been {e released}
          to the caller is never lost. *)
  flush_ms : int;
      (** With group commit, also release a short batch once its oldest
          record is this many wall-clock milliseconds old (checked at the
          next {!submit}); [0] disables the age trigger. *)
  wal_format : int;
      (** WAL version written by {!create}: [1] (text records) or [2]
          (binary frames, FORMATS.md §5). {!recover} ignores this and
          keeps the directory's existing format. *)
}

val default_config : config
(** [{ auto_checkpoint = 64; retain = 2; on_error = Halt;
      aux_budget = None; group_commit = 1; flush_ms = 0;
      wal_format = 1 }]. *)

(** The result of feeding one transaction. *)
type outcome =
  | Checked of {
      reports : Monitor.report list;
          (** Violations at the new state, as {!Monitor.step}. *)
      inconclusive : string list;
          (** Constraints quarantined {e before} this transaction, in
              registration order: their verdicts are unknown, not "holds". *)
    }
  | Skipped of string  (** Dropped under {!Skip}; the reason. *)
  | Rejected of string
      (** Dropped under {!Reject} (or ill-formed under {!Repair}); the
          reason. *)
  | Repaired of {
      actions : Rtic_relational.Update.op list;
          (** The repair committed on top of the transaction, in order. *)
      witnesses : (Rtic_relational.Update.op * string) list;
          (** Foundedness: each action with the violated constraint that
              fired it, same order as [actions]. *)
      repaired : Monitor.report list;
          (** The violations the original transaction would have caused
              (and the repair healed). *)
      inconclusive : string list;
    }
  | Unrepairable of {
      reports : Monitor.report list;  (** Violations that stand. *)
      unrepairable : (string * string) list;
          (** [(constraint, offending subformula)]: the violated
              constraints whose verdict is anchored entirely in past
              states — no current-state update can heal them. *)
      inconclusive : string list;
    }

type t
(** A running supervised monitor. Mutable: {!step} updates it in place
    (unlike {!Monitor.step}) because it also owns on-disk state that
    cannot be forked. *)

(** {2 Lifecycle} *)

val create :
  ?fs:Faults.fs ->
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?pool:Pool.t ->
  ?config:config ->
  ?init:Rtic_relational.Database.t ->
  state_dir:string ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def list ->
  (t, string) result
(** Start a fresh supervised monitor: create [state_dir] if needed, admit
    the constraints over [?init] (default: empty database), write the
    initial checkpoint ([checkpoint-000000000.ck]) and the WAL header.
    Fails if the directory already holds a WAL — an existing service state
    must go through {!recover} instead, never be silently overwritten.

    With [?tracer], the service's durability work becomes visible in the
    trace stream alongside the engine spans: {!step} wraps the WAL append
    in a [wal:append] span and {!checkpoint} the snapshot write in a
    [checkpoint:write] span, while quarantine decisions, degraded-mode
    entry, policy drops and clock regressions are emitted as [supervisor]
    point events (see {!Tracer}).

    With [?pool] of size > 1, the checkers are sharded across the pool's
    domains exactly as in {!Monitor.create}: every {!step} fans the
    transaction out to all shards and replays the per-constraint
    quarantine/budget accounting in registration order afterwards, so
    outcomes, quarantine decisions, counters and synced metrics are
    identical to the sequential service; per-constraint tracer spans are
    replaced by per-shard [shard] spans. All durability work (WAL append,
    checkpointing) stays on the calling domain. *)

val step :
  t ->
  time:int ->
  Rtic_relational.Update.transaction ->
  (outcome, string) result
(** Feed one transaction and force its outcome out: [submit] followed by
    {!flush}, returning this transaction's own outcome. Accepted
    transactions are durable (written + synced) before the outcome is
    returned; ill-formed ones take the {!policy} path and are {e not}
    logged, so re-feeding the same input after a crash skips them again
    deterministically. [Error] means the service must stop: {!Halt}
    policy, or an internal failure. With [group_commit = 1] this is the
    classic one-sync-per-transaction service loop; callers that want
    batched durability use {!submit}/{!flush} instead. *)

val submit :
  t ->
  time:int ->
  Rtic_relational.Update.transaction ->
  (outcome list, string) result
(** Feed one transaction through the commit queue. The transaction is
    fully processed immediately (applied, checked, its WAL record
    buffered), but its outcome is queued and only {e released} once the
    batch holding its record has been written and synced — when the batch
    reaches [config.group_commit] records or ages past [config.flush_ms].
    Returns the outcomes released by this call, oldest first: usually
    [[]] (batch still open) or a whole batch. Outcomes without a WAL
    record of their own ({!Skipped}/{!Rejected}) queue behind any pending
    records so release order always matches submission order. [Error]
    (Halt policy or internal failure) still flushes the buffered records
    first — their queued outcomes are lost with the run, exactly as a
    crash would lose them. *)

val flush : t -> outcome list
(** Force the current batch down now: write + sync any buffered records
    and release every queued outcome, oldest first. A failed write
    degrades the supervisor (see {!degraded}) but the outcomes are
    released regardless — verdicts keep flowing without durability,
    matching the per-record contract. *)

val pending_records : t -> int
(** Accepted transactions whose WAL records are buffered but not yet
    written + synced (the at-risk window; < [config.group_commit]). *)

val pending_outcomes : t -> int
(** Outcomes queued awaiting release (≥ {!pending_records} — policy
    outcomes queue too, to preserve order). *)

val checkpoint : t -> (unit, string) result
(** Snapshot now: write the full state to a fresh checkpoint file
    (temp-then-rename), prune to the newest [retain] snapshots, and
    compact the WAL to the oldest retained one. On success durability is
    (re-)established: {!degraded} becomes [false]. *)

(** {2 Recovery} *)

type recovery_info = {
  checkpoint_step : int option;
      (** Step count of the checkpoint restored from; [None] when no
          checkpoint was usable and recovery replayed from scratch. *)
  checkpoints_skipped : (string * string) list;
      (** Corrupt or unreadable snapshots: [(basename, reason)]. *)
  wal_start : int;  (** Global index of the WAL's first record. *)
  replayed : int;  (** WAL records re-applied on top of the checkpoint. *)
  replay_reports : Monitor.report list;
      (** Violations re-observed during replay (already delivered before
          the crash; useful for audit). *)
  torn_tail : string option;
      (** Why the WAL's tail was dropped, if it was ({!Wal.recovery}). *)
  repaired : bool;
      (** A post-recovery checkpoint was written (and the WAL compacted,
          clearing any torn tail). *)
}

val recover :
  ?fs:Faults.fs ->
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?pool:Pool.t ->
  ?config:config ->
  ?init:Rtic_relational.Database.t ->
  ?repair:bool ->
  state_dir:string ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def list ->
  (t * recovery_info, string) result
(** Restart from [state_dir]: load the newest checkpoint that passes its
    CRC trailer and {!Monitor.of_text}'s strict checks (skipping corrupt
    ones), then replay every WAL record past it. With no usable
    checkpoint, falls back to replaying the whole WAL from scratch — but
    only if the WAL actually starts at record 0; a compacted WAL with no
    valid checkpoint is unrecoverable ([Error]). With [?tracer], the
    snapshot probe and the WAL replay run inside [recovery:load-checkpoint]
    and [recovery:replay] spans, with torn tails and skipped checkpoints
    as [recovery] point events.

    [?repair] (default [true]) writes a fresh checkpoint immediately
    after recovery, compacting the WAL and clearing any torn tail. With
    [~repair:false] the directory is left untouched (inspection mode);
    if the WAL had a torn tail the returned supervisor starts
    {!degraded} so it never appends after damaged bytes.

    [?init] must be the same pre-history database given to {!create} —
    it is only used by the replay-from-scratch fallback.

    Quarantine is not persisted separately: it is re-derived from the
    restored checker spaces against [config.aux_budget] (a frozen
    checker's space exceeds the budget by construction), so the
    checkpoint alone is the whole state. *)

(** {2 Introspection} *)

val database : t -> Rtic_relational.Database.t

val checkers : t -> Incremental.t list
(** The live checker states, registration order (quarantined included).
    Functional values: stepping them (as [rtic repair]'s standalone search
    does) never disturbs the supervisor. *)

val steps : t -> int
(** Transactions accepted so far (the global WAL index). *)

val last_time : t -> int option
(** Commit time of the last accepted transaction. *)

val space : t -> int
(** Total auxiliary space across all checkers, quarantined included. *)

val quarantined : t -> (string * string) list
(** Quarantined constraints: [(name, reason)], registration order. *)

val degraded : t -> bool
(** [true] while durability is suspended — a WAL append or checkpoint
    failed, or recovery found a torn tail and was told not to repair.
    Verdicts still flow; a successful {!checkpoint} clears it. *)

val wal_bytes_since_checkpoint : t -> int
(** Bytes appended to the WAL since the last successful {!checkpoint}
    (0 right after one, and right after {!create}/{!recover} — recovery
    replays the suffix without re-appending it). The telemetry layer
    exposes this as a per-session gauge: together with [auto_checkpoint]
    it tells an operator how much replay a crash right now would cost. *)

val state_dir : t -> string

val wal_version : t -> int
(** The WAL format this directory is running: 1 or 2. Set from
    [config.wal_format] at {!create} and from the on-disk log at
    {!recover}; compaction preserves it. *)

(** {2 State-directory helpers} (used by [rtic recover] and the tests) *)

val wal_path : string -> string
(** [state_dir/wal.log]. *)

val checkpoint_path : string -> int -> string
(** [state_dir/checkpoint-NNNNNNNNN.ck]. *)

val checkpoint_files :
  Faults.fs -> string -> (int * string) list
(** The checkpoint files present, [(step, path)], newest first. *)

val state_exists : Faults.fs -> string -> bool
(** Whether [state_dir] holds a WAL (i.e. {!create} would refuse). *)

type snapshot = {
  snap_step : int;  (** From the filename; cross-checked vs the trailer. *)
  snap_monitor : Monitor.t;
  snap_last_time : int option;
}

val load_checkpoint :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?pool:Pool.t ->
  fs:Faults.fs ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def list ->
  string ->
  (snapshot, string) result
(** Load and fully validate one checkpoint file: verify the [# crc32]
    trailer when present (supervisor-written snapshots always carry one;
    plain [--save-state] files without it are still accepted), then
    restore through {!Monitor.of_text}. *)
