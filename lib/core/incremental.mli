(** The incremental real-time constraint checker — the paper's contribution.

    One checker instance monitors one constraint over an evolving database.
    Instead of storing the history, it maintains a {e bounded history
    encoding}: for every temporal subformula α of the (normalized) constraint
    an auxiliary relation holding (valuation, timestamp) pairs —

    - for [once[l,u] f]: the valuations under which [f] held at some past or
      current state, with the timestamps of those states;
    - for [f since[l,u] g]: the valuations and timestamps of past [g]-states
      such that [f] has held (under the same valuation) at every state since;
    - for [prev[l,u] f]: the previous state's relation for [f] and its
      timestamp.

    After each transaction the checker updates every auxiliary relation from
    the {e current state only} (one bottom-up pass), prunes entries older
    than the operator's upper bound — they can never satisfy the interval
    again — and compresses unbounded operators to one minimal timestamp per
    valuation. The space held is therefore independent of the history length
    (see {!Bounds}), and so is the per-transaction time.

    Pruning can be disabled ([~config:{ prune = false }]) to obtain the
    ablation of experiment E8: verdicts are unchanged, space grows. *)

type config = Kernel.config = {
  prune : bool;  (** [true] (default): bounded history encoding. *)
}

val default_config : config
(** [{ prune = true }]. *)

type t
(** Checker state. Functional: {!step} returns a new state. *)

type verdict = {
  index : int;      (** 0-based position of the checked state. *)
  time : int;       (** Its timestamp. *)
  satisfied : bool; (** Whether the constraint holds at that state. *)
}

val create :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?config:config ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def ->
  (t, string) result
(** Admit a constraint: type-check it against the catalog, require it closed
    and monitorable, normalize it, build the temporal closure, and return the
    pre-history checker state. With [?metrics], the underlying kernel
    registers its temporal nodes (labelled with the constraint name) and
    records per-step gauges and counters into the recorder. With [?tracer],
    each {!step} emits a [constraint] span named after the constraint with
    the per-node update spans nested inside (see {!Tracer}). *)

val def : t -> Rtic_mtl.Formula.def
(** The constraint as admitted. *)

val formula : t -> Rtic_mtl.Formula.t
(** The normalized body actually monitored. *)

val steps_taken : t -> int
(** Number of states processed so far. *)

val last_time : t -> int option
(** Commit time of the last processed state; [None] before the first
    {!step}. The next {!step}'s time must be strictly greater. *)

val step : t -> time:int -> Rtic_relational.Database.t -> (t * verdict, string) result
(** [step st ~time db] processes the next committed state. Fails if [time]
    does not strictly increase. The database is only read during the call;
    no reference to it is retained. *)

val space : t -> int
(** Stored (valuation, timestamp) pairs plus stored previous-state rows,
    across all auxiliary relations — the space measure of experiments E1/E4/E8. *)

val space_detail : t -> (string * int) list
(** Same measure, per temporal subformula (pretty-printed). *)

val node_names : t -> string list
(** The checker's metrics gauge-row names (constraint-prefixed temporal
    subformulas), in registration order; empty unless the checker was
    created with [?metrics] or [?tracer]. The parallel fan-out uses this
    to mirror a shard-recorder registration into the main recorder. *)

(** {2 Checkpointing}

    The whole point of the bounded history encoding is that it {e is} the
    state: persisting it allows a monitor to restart after a crash without
    replaying the history. [to_text] serializes the auxiliary relations (a
    line-oriented text format); [of_text] restores them after re-admitting
    the same constraint against the same catalog. Restoring and continuing
    is observationally identical to never having stopped (property-tested). *)

val to_text : t -> string
(** Serialize the checker state. *)

val of_text :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?config:config ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def ->
  string ->
  (t, string) result
(** [of_text cat d text] re-admits [d] and restores the auxiliary state
    saved by {!to_text}. Strict: fails if the checkpoint was taken for a
    different constraint (detected via the normalized formula), has the
    wrong version, is missing its [steps]/[last_time]/[end] lines, contains
    an unknown key, or makes claims inconsistent with its own content
    ([last_time] older than a restored timestamp, [steps 0] with a
    non-empty window, …). Corrupt input yields [Error _], never a state
    with silently missing auxiliary data. *)
