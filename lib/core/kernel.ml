module Value = Rtic_relational.Value
module Tuple = Rtic_relational.Tuple
module Schema = Rtic_relational.Schema
module Database = Rtic_relational.Database
module Interval = Rtic_temporal.Interval
module Formula = Rtic_mtl.Formula
module Closure = Rtic_mtl.Closure
module Pretty = Rtic_mtl.Pretty
module Valrel = Rtic_eval.Valrel
module Fo = Rtic_eval.Fo

type config = {
  prune : bool;
}

module Ts_set = Set.Make (Int)

module Row_map = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

module Formula_map = Map.Make (struct
  type t = Formula.t

  let compare = Formula.compare
end)

type kind =
  | KPrev of Interval.t * Formula.t
  | KOnce of Interval.t * Formula.t
  | KSince of Interval.t * bool * Formula.t * Formula.t * int array
      (** interval, negated-left?, left (unwrapped), right, and the positions
          of the left argument's columns inside the node's columns. *)

type node_info = {
  node : Formula.t;
  node_cols : string list;  (* sorted free variables of the node *)
  kind : kind;
}

type aux =
  | Prev_aux of (int * Valrel.t) option
  | Window_aux of Ts_set.t Row_map.t

type t = {
  cfg : config;
  root_list : Formula.t list;
  closure : Closure.t;
  infos : node_info array;
  aux : aux array;
  needs_prev : bool;
  prev_db : Database.t option;
  instr : (Metrics.t * int) option;
      (* recorder and this kernel's base node index; None = no overhead *)
  tracer : Tracer.t option;
  span_names : string array;  (* per-node span names; [||] when untraced *)
  root_names : string array;  (* per-root constraint names for spans *)
}

(* Positions of the (sorted) [sub] columns inside the (sorted) [sup]
   columns. All callers guarantee sub ⊆ sup. *)
let embed sub sup =
  let sup = Array.of_list sup in
  Array.of_list
    (List.map
       (fun c ->
         let rec find i =
           if i >= Array.length sup then
             invalid_arg "Kernel: column embedding failure"
           else if sup.(i) = c then i
           else find (i + 1)
         in
         find 0)
       sub)

let info_of_node node =
  let node_cols = Formula.free_var_list node in
  let kind =
    match node with
    | Formula.Prev (iv, a) -> KPrev (iv, a)
    | Formula.Once (iv, a) -> KOnce (iv, a)
    | Formula.Since (iv, a, b) ->
      let negated, left =
        match a with
        | Formula.Not a' -> (true, a')
        | _ -> (false, a)
      in
      let proj = embed (Formula.free_var_list left) node_cols in
      KSince (iv, negated, left, b, proj)
    | _ -> invalid_arg "Kernel: closure produced a non-temporal node"
  in
  { node; node_cols; kind }

let initial_aux = function
  | { kind = KPrev _; _ } -> Prev_aux None
  | { kind = KOnce _ | KSince _; _ } -> Window_aux Row_map.empty

let create ?metrics ?tracer ?(label = "") ?(root_names = []) cfg roots =
  (* Chain the roots under a synthetic conjunction so a single closure
     traversal registers every temporal subformula, shared structurally. *)
  let combined =
    List.fold_left (fun acc f -> Formula.And (acc, f)) Formula.True roots
  in
  let closure = Closure.build combined in
  let infos = Array.map info_of_node (Closure.nodes closure) in
  let names =
    (* Node display names serve both the metrics gauges and the tracer's
       per-node spans; only computed when an instrument is attached. *)
    if metrics = None && tracer = None then [||]
    else
      Array.map
        (fun info ->
          let s = Pretty.to_string info.node in
          if label = "" then s else label ^ ": " ^ s)
        infos
  in
  let instr =
    match metrics with
    | None -> None
    | Some m -> Some (m, Metrics.register_nodes m (Array.to_list names))
  in
  { cfg;
    root_list = roots;
    closure;
    infos;
    aux = Array.map initial_aux infos;
    needs_prev = List.exists Formula.has_transition_atoms roots;
    prev_db = None;
    instr;
    tracer;
    span_names = names;
    root_names = Array.of_list root_names }

let roots st = st.root_list

let window_of = function
  | Window_aux m -> m
  | Prev_aux _ -> assert false

(* Drop timestamps that can never satisfy the interval again; with an
   unbounded upper bound keep only the oldest witness per valuation.
   Expiry is a range drop: every stale timestamp sits below [time - u], so
   [Ts_set.split] removes the whole prefix in O(log n + dropped) instead of
   re-filtering each stored timestamp. Untouched valuations keep their
   physical sets, and a step that expires nothing returns [m] itself. *)
let prune_map cfg iv ~time m =
  if not cfg.prune then m
  else
    match Interval.hi iv with
    | Some u ->
      let cutoff = time - u in
      (* keep t iff t >= cutoff; a step that expires nothing — the common
         case in live monitoring — returns [m] itself without rebuilding *)
      if
        not
          (Row_map.exists
             (fun _ ts ->
               match Ts_set.min_elt_opt ts with
               | None -> true
               | Some t0 -> t0 < cutoff)
             m)
      then m
      else
        Row_map.filter_map
          (fun _ ts ->
            match Ts_set.min_elt_opt ts with
            | None -> None
            | Some t0 when t0 >= cutoff -> Some ts
            | Some _ ->
              let _stale, at_cutoff, fresh = Ts_set.split cutoff ts in
              let fresh =
                if at_cutoff then Ts_set.add cutoff fresh else fresh
              in
              if Ts_set.is_empty fresh then None else Some fresh)
          m
    | None ->
      if
        not
          (Row_map.exists
             (fun _ ts -> Ts_set.min_elt ts <> Ts_set.max_elt ts)
             m)
      then m (* every valuation already holds a single witness *)
      else Row_map.map (fun ts -> Ts_set.singleton (Ts_set.min_elt ts)) m

(* Valuations with a witness timestamp inside the interval, as a Valrel.
   The witness probe is a single ordered lookup (find_first), O(log n) per
   valuation — never a scan of the stored timestamps. *)
let read_map iv ~time ~cols m =
  let lo_t =
    match Interval.hi iv with
    | Some u -> time - u
    | None -> min_int
  in
  let hi_t = time - Interval.lo iv in
  let rows =
    Row_map.fold
      (fun row ts acc ->
        match Ts_set.find_first_opt (fun t -> t >= lo_t) ts with
        | Some t when t <= hi_t -> row :: acc
        | _ -> acc)
      m []
  in
  Valrel.make cols rows

let add_witnesses ~time vr m =
  Valrel.fold
    (fun row m ->
      let ts = try Row_map.find row m with Not_found -> Ts_set.empty in
      Row_map.add row (Ts_set.add time ts) m)
    vr m

(* Stored (valuation, timestamp) pairs of a window map. *)
let window_pairs m = Row_map.fold (fun _ ts acc -> acc + Ts_set.cardinal ts) m 0

let aux_size = function
  | Prev_aux None -> 0
  | Prev_aux (Some (_, v)) -> Valrel.cardinal v
  | Window_aux m -> window_pairs m

let step st ~time db =
  let new_aux = Array.copy st.aux in
  let cache = ref Formula_map.empty in
  (* Window pruning, with the dropped-entry count recorded per node when a
     metrics recorder is attached (the counting pass only runs then). *)
  let prune idx iv m =
    match st.instr with
    | None -> prune_map st.cfg iv ~time m
    | Some (mx, base) ->
      let m' = prune_map st.cfg iv ~time m in
      Metrics.add_pruned mx (base + idx) (window_pairs m - window_pairs m');
      m'
  in
  let rec now f = Fo.eval ~db ?prev:st.prev_db ~temporal:temporal_now f
  and temporal_now g =
    match Formula_map.find_opt g !cache with
    | Some v ->
      (match st.instr with Some (mx, _) -> Metrics.cache_hit mx | None -> ());
      v
    | None ->
      (match st.instr with Some (mx, _) -> Metrics.cache_miss mx | None -> ());
      let idx = Closure.id_exn st.closure g in
      let info = st.infos.(idx) in
      let compute () =
        match info.kind with
        | KPrev (iv, a) ->
          (* Compute the child now, for the benefit of the next step. *)
          let na = now a in
          let res =
            match st.aux.(idx) with
            | Prev_aux None -> Valrel.none (Formula.free_var_list a)
            | Prev_aux (Some (pt, pv)) ->
              if Interval.mem (time - pt) iv then pv
              else Valrel.none (Formula.free_var_list a)
            | Window_aux _ -> assert false
          in
          new_aux.(idx) <- Prev_aux (Some (time, na));
          res
        | KOnce (iv, a) ->
          let na = now a in
          let m = window_of st.aux.(idx) in
          let m = add_witnesses ~time na m in
          let m = prune idx iv m in
          new_aux.(idx) <- Window_aux m;
          read_map iv ~time ~cols:info.node_cols m
        | KSince (iv, negated, left, right, proj) ->
          let nl = now left in
          let nr = now right in
          let m = window_of st.aux.(idx) in
          (* Survival: the left argument must hold now (or fail to hold,
             for a negated left) under the entry's valuation. *)
          let before = Row_map.cardinal m in
          let m =
            Row_map.filter
              (fun row _ ->
                let lrow = Array.map (fun i -> row.(i)) proj in
                let holds_left = Valrel.mem lrow nl in
                if negated then not holds_left else holds_left)
              m
          in
          (match st.instr with
           | Some (mx, base) ->
             Metrics.add_survival mx (base + idx) ~checked:before
               ~kept:(Row_map.cardinal m)
           | None -> ());
          let m = add_witnesses ~time nr m in
          let m = prune idx iv m in
          new_aux.(idx) <- Window_aux m;
          read_map iv ~time ~cols:info.node_cols m
      in
      let v =
        match st.tracer with
        | None -> compute ()
        | Some _ ->
          Tracer.span st.tracer ~cat:"node" ~name:st.span_names.(idx) compute
      in
      cache := Formula_map.add g v !cache;
      v
  in
  let results =
    match st.tracer with
    | None -> List.map now st.root_list
    | Some _ ->
      (* One span per root evaluation: with per-root names (supplied by the
         wrappers) this is the per-constraint attribution level. Node spans
         nest under whichever constraint forced the update first. *)
      List.mapi
        (fun i f ->
          let name =
            if i < Array.length st.root_names then st.root_names.(i) else ""
          in
          Tracer.span st.tracer ~cat:"constraint" ~name (fun () -> now f))
        st.root_list
  in
  (* Every auxiliary relation must advance this step even if no root's
     evaluation happened to touch it (cannot happen with the combined
     closure, but guard against future refactors). *)
  Array.iter (fun info -> ignore (temporal_now info.node)) st.infos;
  (match st.instr with
   | Some (mx, base) ->
     Metrics.incr_steps mx;
     Array.iteri (fun i a -> Metrics.set_aux_size mx (base + i) (aux_size a)) new_aux
   | None -> ());
  ( { st with
      aux = new_aux;
      prev_db = (if st.needs_prev then Some db else None) },
    results )

let node_count st = Array.length st.infos

let node_formulas st = Array.map (fun info -> info.node) st.infos

let node_names st = Array.to_list st.span_names

let space st =
  let prev =
    match st.prev_db with
    | Some db -> Database.cardinal db
    | None -> 0
  in
  prev + Array.fold_left (fun acc a -> acc + aux_size a) 0 st.aux

let space_detail st =
  Array.to_list
    (Array.mapi
       (fun i a -> (Pretty.to_string st.infos.(i).node, aux_size a))
       st.aux)

(* ---------------- Serialization ---------------- *)

let render_row row =
  Array.to_list row |> List.map Value.to_string |> String.concat ", "

let parse_row ~arity s =
  let ( let* ) r f = Result.bind r f in
  let* fields = Rtic_relational.Textio.split_values s in
  let* values =
    List.fold_left
      (fun acc f ->
        let* acc = acc in
        let* v = Value.of_string f in
        Ok (v :: acc))
      (Ok []) fields
  in
  let row = Array.of_list (List.rev values) in
  if Array.length row <> arity then
    Error
      (Printf.sprintf "checkpoint row has arity %d, expected %d"
         (Array.length row) arity)
  else Ok row

let to_text st =
  let buf = Buffer.create 1024 in
  let count = ref 0 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        incr count;
        Buffer.add_string buf (s ^ "\n"))
      fmt
  in
  (match st.prev_db with
   | None -> ()
   | Some db ->
     Database.fold
       (fun rel r () ->
         Rtic_relational.Relation.iter
           (fun tup ->
             line "prev_fact %s" (Rtic_relational.Textio.fact_to_string rel tup))
           r)
       db ());
  Array.iteri
    (fun i aux ->
      match aux with
      | Prev_aux None -> line "aux %d prev none" i
      | Prev_aux (Some (t, v)) ->
        line "aux %d prev %d" i t;
        Valrel.fold (fun row () -> line "row %s" (render_row row)) v ()
      | Window_aux m ->
        line "aux %d window" i;
        Row_map.iter
          (fun row ts ->
            line "row %s @ %s" (render_row row)
              (Ts_set.elements ts |> List.map string_of_int |> String.concat " "))
          m)
    st.aux;
  (* Trailing marker carrying the number of kernel-owned lines above it, so
     a truncated checkpoint can never restore successfully. *)
  Buffer.add_string buf (Printf.sprintf "end %d\n" !count);
  Buffer.contents buf

(* Largest timestamp recorded anywhere in the auxiliary state; lets the
   wrapper cross-check its [last_time] header against the restored body. *)
let max_timestamp st =
  Array.fold_left
    (fun acc a ->
      let keep t = function
        | Some best when best >= t -> Some best
        | _ -> Some t
      in
      match a with
      | Prev_aux None -> acc
      | Prev_aux (Some (t, _)) -> keep t acc
      | Window_aux m ->
        Row_map.fold (fun _ ts acc -> keep (Ts_set.max_elt ts) acc) m acc)
    None st.aux

(* Position of the last '@' outside string quotes (the values/timestamps
   separator of a window row); -1 if none. Quote-aware so a '@' inside a
   quoted string value can never be mistaken for the separator. *)
let split_at arg =
  let n = String.length arg in
  let at = ref (-1) in
  let i = ref 0 in
  let in_string = ref false in
  while !i < n do
    (match arg.[!i] with
     | '"' -> in_string := not !in_string
     | '\\' when !in_string -> incr i
     | '@' when not !in_string -> at := !i
     | _ -> ());
    incr i
  done;
  !at

let restore cat st text =
  let ( let* ) r f = Result.bind r f in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let aux = Array.copy st.aux in
  let current = ref None in
  let prev_db = ref None in
  let fail fmt = Printf.ksprintf (fun m -> Error ("checkpoint: " ^ m)) fmt in
  let node_arity i = List.length st.infos.(i).node_cols in
  let steps_seen = ref 0 in
  (* Truncation detection: kernel-owned lines are counted and checked
     against the mandatory trailing [end N] marker. *)
  let kernel_lines = ref 0 in
  let end_seen = ref None in
  let rec go = function
    | [] ->
      let* () =
        match !end_seen with
        | None -> fail "truncated checkpoint: missing end marker"
        | Some n when n <> !kernel_lines ->
          fail "truncated checkpoint: end marker says %d line(s), found %d" n
            !kernel_lines
        | Some _ -> Ok ()
      in
      Ok
        { st with
          aux;
          prev_db =
            (if st.needs_prev then
               match !prev_db with
               | Some db -> Some db
               | None ->
                 if !steps_seen > 0 then Some (Database.create cat) else None
             else None) }
    | l :: rest ->
      let* () =
        let key, arg =
          match String.index_opt l ' ' with
          | None -> (l, "")
          | Some sp ->
            (String.sub l 0 sp, String.sub l (sp + 1) (String.length l - sp - 1))
        in
        let* () =
          match key, !end_seen with
          | ("prev_fact" | "aux" | "row" | "end"), Some _ ->
            fail "content after end marker"
          | _ -> Ok ()
        in
        if key = "prev_fact" || key = "aux" || key = "row" then
          incr kernel_lines;
        (match key with
         | "steps" ->
           (match int_of_string_opt (String.trim arg) with
            | Some n -> steps_seen := n
            | None -> ());
           Ok ()
         | "end" ->
           (match int_of_string_opt (String.trim arg) with
            | Some n ->
              end_seen := Some n;
              Ok ()
            | None -> fail "bad end marker %S" arg)
         | "prev_fact" ->
           (match Rtic_relational.Textio.parse_fact arg with
            | Error m -> fail "bad prev_fact: %s" m
            | Ok (rel, tup) ->
              let db =
                match !prev_db with
                | Some db -> db
                | None -> Database.create cat
              in
              (match Database.insert db rel tup with
               | Ok db ->
                 prev_db := Some db;
                 Ok ()
               | Error m -> fail "bad prev_fact: %s" m))
         | "aux" ->
           (match String.split_on_char ' ' arg with
            | id_s :: kind ->
              (match int_of_string_opt id_s with
               | Some i when i >= 0 && i < Array.length aux ->
                 (match kind, st.infos.(i).kind with
                  | [ "prev"; "none" ], KPrev _ ->
                    aux.(i) <- Prev_aux None;
                    current := None;
                    Ok ()
                  | [ "prev"; t_s ], KPrev (_, a) ->
                    (match int_of_string_opt t_s with
                     | Some t ->
                       aux.(i) <-
                         Prev_aux (Some (t, Valrel.none (Formula.free_var_list a)));
                       current := Some i;
                       Ok ()
                     | None -> fail "bad prev time %s" t_s)
                  | [ "window" ], (KOnce _ | KSince _) ->
                    aux.(i) <- Window_aux Row_map.empty;
                    current := Some i;
                    Ok ()
                  | _ -> fail "aux kind mismatch on node %d" i)
               | _ -> fail "bad aux id %s" id_s)
            | [] -> fail "malformed aux line")
         | "row" ->
           (match !current with
            | None -> fail "row outside any aux section"
            | Some i ->
              (match st.infos.(i).kind, aux.(i) with
               | KPrev (_, a), Prev_aux (Some (t, v)) ->
                 let cols = Formula.free_var_list a in
                 let* row = parse_row ~arity:(List.length cols) arg in
                 aux.(i) <- Prev_aux (Some (t, Valrel.union v (Valrel.make cols [ row ])));
                 Ok ()
               | (KOnce _ | KSince _), Window_aux m ->
                 (match split_at arg with
                  | -1 -> fail "window row lacks '@': %S" arg
                  | at ->
                    let vals_s = String.sub arg 0 at in
                    let ts_s = String.sub arg (at + 1) (String.length arg - at - 1) in
                    let* row = parse_row ~arity:(node_arity i) vals_s in
                    let* ts =
                      String.split_on_char ' ' (String.trim ts_s)
                      |> List.filter (fun s -> s <> "")
                      |> List.fold_left
                           (fun acc s ->
                             let* acc = acc in
                             match int_of_string_opt s with
                             | Some t -> Ok (Ts_set.add t acc)
                             | None -> fail "bad timestamp %s" s)
                           (Ok Ts_set.empty)
                    in
                    if Ts_set.is_empty ts then fail "empty timestamp set"
                    else begin
                      aux.(i) <- Window_aux (Row_map.add row ts m);
                      Ok ()
                    end)
               | _ -> fail "row in mismatched aux section"))
         (* Wrapper-owned keys, whitelisted explicitly: everything else is a
            hard error — a misspelled [row]/[aux] line must never restore
            "successfully" with silently missing auxiliary data. *)
         | "rtic-checkpoint" | "constraint" | "formula" | "last_time" -> Ok ()
         | _ -> fail "unknown key %S" key)
      in
      go rest
  in
  go lines
