(* Structured span tracer: emits the rtic-trace/1 JSONL event stream.
   One mutable recorder per run, threaded through the engines as a
   [t option] so the disabled path costs one None check per site. *)

type t = {
  clock : unit -> float;
  emit : string -> unit;
  t0 : float;
  mutable next_id : int;
  mutable stack : int list;  (* open span ids, innermost first *)
}

let now_ns t = int_of_float ((t.clock () -. t.t0) *. 1e9)

let event t fields = t.emit (Json.to_string (Json.Obj fields))

let create ?(clock = Unix.gettimeofday) ~emit () =
  let t = { clock; emit; t0 = clock (); next_id = 0; stack = [] } in
  event t [ ("schema", Json.Str "rtic-trace/1") ];
  t

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let parent_field t =
  match t.stack with
  | [] -> Json.Null
  | p :: _ -> Json.Int p

(* [name]/[arg] are omitted from the event when empty, keeping the
   stream compact: most spans have no per-instance argument. *)
let open_fields t ~ev ~id ~cat ~name ~arg =
  [ ("ev", Json.Str ev); ("id", Json.Int id); ("parent", parent_field t);
    ("cat", Json.Str cat) ]
  @ (if name = "" then [] else [ ("name", Json.Str name) ])
  @ (if arg = "" then [] else [ ("arg", Json.Str arg) ])
  @ [ ("t_ns", Json.Int (now_ns t)) ]

let open_span t ~cat ~name ~arg =
  let id = fresh_id t in
  event t (open_fields t ~ev:"open" ~id ~cat ~name ~arg);
  t.stack <- id :: t.stack;
  id

let close_span t id =
  (* Spans close LIFO by construction ({!span} brackets the body); popping
     past [id] only happens if an emit raised mid-open — drop the strays
     rather than corrupt the parent chain of later spans. *)
  let rec pop = function
    | [] -> []
    | x :: rest -> if x = id then rest else pop rest
  in
  t.stack <- pop t.stack;
  event t
    [ ("ev", Json.Str "close"); ("id", Json.Int id);
      ("t_ns", Json.Int (now_ns t)) ]

let span tr ~cat ?(name = "") ?(arg = "") f =
  match tr with
  | None -> f ()
  | Some t ->
    let id = open_span t ~cat ~name ~arg in
    Fun.protect ~finally:(fun () -> close_span t id) f

(* Timestamp conversion for events measured off the tracer's thread: a
   worker domain samples wall-clock seconds itself (it must not touch the
   tracer) and the coordinator stamps them into the stream after the join.
   Reads only the immutable [t0], so it is safe to call from anywhere. *)
let stamp t wall = int_of_float ((wall -. t.t0) *. 1e9)

let timed_span tr ~cat ?(name = "") ?(arg = "") ~t0_ns ~t1_ns () =
  match tr with
  | None -> ()
  | Some t ->
    let id = fresh_id t in
    (* A leaf open/close pair with explicit timestamps: nothing is pushed
       on the stack, so the stream stays well-formed (LIFO) even though
       the span's interval may overlap a sibling's — which happens when
       the spans describe genuinely concurrent shard work. *)
    event t
      ([ ("ev", Json.Str "open"); ("id", Json.Int id);
         ("parent", parent_field t); ("cat", Json.Str cat) ]
       @ (if name = "" then [] else [ ("name", Json.Str name) ])
       @ (if arg = "" then [] else [ ("arg", Json.Str arg) ])
       @ [ ("t_ns", Json.Int t0_ns) ]);
    event t
      [ ("ev", Json.Str "close"); ("id", Json.Int id);
        ("t_ns", Json.Int t1_ns) ]

let point tr ~cat ?(name = "") ?(arg = "") () =
  match tr with
  | None -> ()
  | Some t ->
    let id = fresh_id t in
    event t (open_fields t ~ev:"point" ~id ~cat ~name ~arg)
