(** Mutable per-run metrics recorder — the observability layer.

    A recorder is created by the embedding application (or the CLI's
    [--stats]/[--trace] flags) and passed to {!Monitor.create},
    {!Shared.create}, {!Incremental.create} or {!Future.create} via their
    [?metrics] argument; the engines then record into it imperatively on
    every step. When no recorder is given the instrumentation is off and
    the hot path pays only a [None] check (≤5% on the MICRO bench —
    asserted by the bench harness's baselines).

    It collects five families of measurements:

    - {b cumulative counters}: kernel steps, violations, formula-cache
      hits/misses ({!Kernel.step}'s per-step memo table);
    - {b per-temporal-node gauges}: auxiliary relation cardinality (current
      and peak), entries dropped by window pruning, and the since-survival
      filter's checked/kept counts — one row per registered node, in
      registration order ({!register_nodes});
    - {b step latency}: wall-clock per transaction, recorded by the driving
      layer; summarized as min/mean/p50/p95/p99/max over an exact running
      aggregate plus an exact log-bucket histogram (see {!record_latency});
    - {b transaction rates}: txn/s over sliding 1 s / 10 s / 60 s windows,
      fed by caller-supplied clocks ({!record_txn} — the recorder itself
      never reads a clock);
    - {b named counters and gauges}: free-form bags for event counts
      ({!bump}) and point-in-time values ({!set_gauge}).

    The recorder is shared mutable state: one recorder may serve many
    checkers (a {!Monitor} registers every constraint's kernel into the
    same recorder). Not thread-safe. *)

type t

type node_view = {
  name : string;          (** Pretty-printed temporal subformula (with an
                              owning-constraint prefix when registered by a
                              wrapper that knows it). *)
  size : int;             (** Auxiliary cardinality after the last step. *)
  peak_size : int;        (** Largest cardinality seen after any step. *)
  prune_dropped : int;    (** Cumulative entries dropped by pruning. *)
  surv_checked : int;     (** Since-survival: entries tested, cumulative. *)
  surv_kept : int;        (** Since-survival: entries that survived. *)
}

(** Step-latency summary. All fields are {e nanoseconds} (see
    {!record_latency} for the unit convention): [count], [min_ns], [max_ns],
    [mean_ns] and the cumulative [total_ns] are exact over every recorded
    sample; [p50_ns]/[p95_ns]/[p99_ns] are nearest-rank percentiles read
    off the exact log-bucket histogram (bucket midpoint, clamped into
    [[min_ns, max_ns]]), so they carry the bucket scheme's ≤ ~3.1%
    relative quantization error — but never sampling error. *)
type latency_summary = {
  count : int;
  total_ns : float;
  min_ns : float;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

(** One occupied histogram bucket: [n] samples fell in the inclusive
    nanosecond range [[lo_ns, hi_ns]]. *)
type bucket = { lo_ns : int; hi_ns : int; n : int }

val create : unit -> t
(** A fresh recorder with no nodes and zeroed counters. *)

(** {2 Recording (engine-facing)} *)

val register_nodes : t -> string list -> int
(** [register_nodes m names] appends one gauge row per name and returns the
    base index of the first; a kernel addresses its node [j] as [base + j]. *)

val incr_steps : t -> unit
val add_violations : t -> int -> unit
val cache_hit : t -> unit
val cache_miss : t -> unit
val set_aux_size : t -> int -> int -> unit
val add_pruned : t -> int -> int -> unit
val add_survival : t -> int -> checked:int -> kept:int -> unit

val copy_node : src:t -> int -> dst:t -> int -> unit
(** [copy_node ~src i ~dst j] overwrites gauge row [j] of [dst] with row
    [i] of [src] (size, peak, pruned, survival counts). Used by the
    parallel fan-out: shard kernels record into private per-shard
    recorders (the main recorder is not thread-safe), and the coordinator
    copies each shard row to its sequential-order slot in the main
    recorder after the join, so the main document is byte-identical to a
    sequential run's. *)

val set_steps : t -> int -> unit
(** Overwrite the kernel-step count. Parallel fan-out only: the
    coordinator sets the main recorder to the sum over shard recorders. *)

val set_cache_counts : t -> hits:int -> misses:int -> unit
(** Overwrite the formula-cache counters. Parallel fan-out only, like
    {!set_steps}. *)

val record_latency : t -> float -> unit
(** [record_latency m seconds] records one step's wall-clock duration.

    {b Unit convention — seconds in, nanoseconds out}: the argument is in
    {e seconds} (what subtracting two [Unix.gettimeofday] readings gives
    the recording layer), while every reading-side surface — the
    [latency_summary] fields, [to_json]'s [latency_ns] object and {!pp} —
    reports {e nanoseconds}, the scale at which per-transaction costs are
    legible. The conversion (× 1e9) happens once, here.

    {b Bucket scheme} (log-linear, HdrHistogram-style): the sample is
    counted into a histogram with 32 linear sub-buckets per power-of-two
    octave — values 0–31 ns get exact unit buckets, and each octave
    [[2{^k}, 2{^k+1})] splits into 32 equal sub-buckets of width
    2{^k-5}, so the relative width of any bucket is ≤ 1/32 (~3.1%).
    Every sample is counted (no reservoir, no sampling): percentiles are
    exact up to that bucket resolution, deterministically, however many
    samples arrive. *)

val record_txn : t -> now:float -> unit
(** [record_txn m ~now] ticks the sliding-window transaction-rate ring
    once at wall-clock time [now] (seconds, e.g. a [Unix.gettimeofday]
    reading — the {e caller} supplies the clock; the recorder performs no
    syscalls). The ring keeps one counter per second, enough seconds to
    answer every {!txn_rates} window. *)

(** {2 Reading} *)

val steps : t -> int
val violations : t -> int
val cache_hits : t -> int
val cache_misses : t -> int
val nodes : t -> node_view list

val bump : ?by:int -> t -> string -> unit
(** [bump m name] increments the named event counter [name] (created at 0 on
    first use). The resilience layer counts its events here — checkpoints
    written/skipped, WAL records appended/replayed, transactions
    skipped/rejected by error policy, constraints quarantined — without the
    recorder needing a schema change per event family. *)

val counter : t -> string -> int
(** The named counter's value; [0] if never bumped. *)

val counters : t -> (string * int) list
(** All named counters, sorted by name. *)

val set_gauge : t -> string -> int -> unit
(** [set_gauge m name v] sets the named gauge [name] to the point-in-time
    value [v]. The server's telemetry snapshot records per-session gauges
    here (auxiliary cardinality, WAL bytes since checkpoint, quarantined
    constraint count, degraded status) as it assembles each
    [rtic-metrics/1] document. *)

val gauge : t -> string -> int
(** The named gauge's last value; [0] if never set. *)

val gauges : t -> (string * int) list
(** All named gauges, sorted by name. *)

val txn_count : t -> int
(** Cumulative {!record_txn} ticks. *)

val txn_rate : t -> now:float -> int -> float
(** [txn_rate m ~now w] is the transactions per second over the last [w]
    seconds ending at [now] (the [w] most recent one-second slots,
    including the current partial second, divided by [w]). [w] must lie in
    [[1, 60]]. Reading advances the ring like {!record_txn} does. *)

val txn_rates : t -> now:float -> (int * float) list
(** {!txn_rate} over the standard windows: [[1; 10; 60]] seconds. *)

val latency : t -> latency_summary option
(** [None] until the first {!record_latency}. Percentiles carry the
    histogram's ≤ ~3.1% bucket-resolution error; min/max/mean/total are
    always exact. *)

val latency_buckets : t -> bucket list
(** The occupied histogram buckets in ascending nanosecond order; the
    [n] fields sum to [latency]'s [count]. The Prometheus exposition and
    the [rtic-metrics/1] document render their cumulative form. *)

val to_json : t -> Json.t
(** The [kernel] section of the [--stats --json] schema (FORMATS.md).
    Named gauges and rate windows are {e not} part of this document (it
    must stay equal between a served session and a batch run); they
    surface through {!Telemetry} instead. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable summary (the [--stats] extension). *)
