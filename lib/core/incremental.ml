module Schema = Rtic_relational.Schema
module Database = Rtic_relational.Database
module Formula = Rtic_mtl.Formula
module Rewrite = Rtic_mtl.Rewrite
module Safety = Rtic_mtl.Safety
module Pretty = Rtic_mtl.Pretty
module Valrel = Rtic_eval.Valrel
module Fo = Rtic_eval.Fo

type config = Kernel.config = {
  prune : bool;
}

let default_config = { prune = true }

type verdict = {
  index : int;
  time : int;
  satisfied : bool;
}

type t = {
  d : Formula.def;
  norm : Formula.t;
  kernel : Kernel.t;
  count : int;
  last_time : int option;
}

let create ?metrics ?tracer ?(config = default_config) cat (d : Formula.def) =
  match Safety.monitorable cat d with
  | Error _ as e -> e
  | Ok () when not (Formula.past_only d.body) ->
    Error
      (Printf.sprintf
         "constraint %s uses future operators; monitor it with Rtic_core.Future \
          (verdict delay) instead of the past-only incremental checker"
         d.name)
  | Ok () ->
    let norm = Rewrite.normalize d.body in
    Ok
      { d;
        norm;
        kernel =
          Kernel.create ?metrics ?tracer ~label:d.name
            ~root_names:[ d.name ] config [ norm ];
        count = 0;
        last_time = None }

let def st = st.d
let formula st = st.norm
let steps_taken st = st.count
let last_time st = st.last_time

let step st ~time db =
  match st.last_time with
  | Some t0 when time <= t0 ->
    Error (Printf.sprintf "non-increasing timestamp: %d after %d" time t0)
  | _ ->
    (try
       let kernel, results = Kernel.step st.kernel ~time db in
       let satisfied =
         match results with
         | [ v ] -> Valrel.holds v
         | _ -> invalid_arg "Incremental: kernel root mismatch"
       in
       Ok
         ( { st with kernel; count = st.count + 1; last_time = Some time },
           { index = st.count; time; satisfied } )
     with Fo.Error m -> Error m)

let space st = Kernel.space st.kernel
let space_detail st = Kernel.space_detail st.kernel
let node_names st = Kernel.node_names st.kernel

(* ---------------- Checkpointing ---------------- *)

let to_text st =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "rtic-checkpoint 2";
  line "constraint %s" st.d.Formula.name;
  line "formula %s" (Pretty.to_string st.norm);
  line "steps %d" st.count;
  (match st.last_time with
   | Some t -> line "last_time %d" t
   | None -> line "last_time none");
  Buffer.add_string buf (Kernel.to_text st.kernel);
  Buffer.contents buf

type header = {
  header_seen : bool;
  formula_seen : bool;
  steps_line : int option;
  last_time_seen : bool;
  lt : int option;
}

let of_text ?metrics ?tracer ?config cat d text =
  let ( let* ) r f = Result.bind r f in
  let* st = create ?metrics ?tracer ?config cat d in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let fail fmt = Printf.ksprintf (fun m -> Error ("checkpoint: " ^ m)) fmt in
  (* wrapper-owned header lines *)
  let* steps, last_time =
    List.fold_left
      (fun acc l ->
        let* h = acc in
        let key, arg =
          match String.index_opt l ' ' with
          | None -> (l, "")
          | Some sp ->
            (String.sub l 0 sp, String.sub l (sp + 1) (String.length l - sp - 1))
        in
        match key with
        | "rtic-checkpoint" ->
          if String.trim arg = "2" then Ok { h with header_seen = true }
          else fail "unsupported version %s" arg
        | "constraint" -> Ok h
        | "formula" ->
          if String.trim arg = Pretty.to_string st.norm then
            Ok { h with formula_seen = true }
          else fail "checkpoint is for a different constraint (%s)" arg
        | "steps" ->
          (match int_of_string_opt (String.trim arg) with
           | Some n when n >= 0 -> Ok { h with steps_line = Some n }
           | _ -> fail "bad steps %s" arg)
        | "last_time" ->
          if String.trim arg = "none" then Ok { h with last_time_seen = true }
          else
            (match int_of_string_opt (String.trim arg) with
             | Some t -> Ok { h with last_time_seen = true; lt = Some t }
             | None -> fail "bad last_time %s" arg)
        | "aux" | "row" | "prev_fact" | "end" -> Ok h
        | _ -> fail "unknown key %s" key)
      (Ok
         { header_seen = false;
           formula_seen = false;
           steps_line = None;
           last_time_seen = false;
           lt = None })
      lines
    |> fun r ->
    let* h = r in
    if not h.header_seen then fail "missing header"
    else if not h.formula_seen then fail "missing formula line"
    else
      match h.steps_line with
      | None -> fail "missing steps line"
      | Some steps ->
        if not h.last_time_seen then fail "missing last_time line"
        else Ok (steps, h.lt)
  in
  let* kernel = Kernel.restore cat st.kernel text in
  (* Cross-check the wrapper's claims against the restored kernel content:
     inconsistencies here mean the file was hand-edited or corrupted in a
     way the line-level parser cannot see. *)
  let* () =
    match last_time, Kernel.max_timestamp kernel with
    | None, Some mx ->
      fail "last_time is none but restored state holds timestamp %d" mx
    | Some t, Some mx when t < mx ->
      fail "last_time %d is older than restored timestamp %d" t mx
    | Some _, _ when steps = 0 ->
      fail "steps is 0 but last_time is set"
    | None, _ when steps > 0 ->
      fail "steps is %d but last_time is none" steps
    | _ -> Ok ()
  in
  Ok { st with kernel; count = steps; last_time }
