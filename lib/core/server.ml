(* The rtic-serve/1 protocol engine: parse request lines, queue them under
   an admission bound, execute them against named Supervisor-backed
   sessions, and render single-line JSON replies. Transport-agnostic; see
   server.mli and FORMATS.md §7. *)

module Formula = Rtic_mtl.Formula
module Parser = Rtic_mtl.Parser
module Update = Rtic_relational.Update

type config = {
  max_pending : int;
  telemetry : bool;
      (* tick the transaction-rate rings (one clock read per executed
         txn); off only for overhead measurement (the MET bench) *)
}

let default_config = { max_pending = 64; telemetry = true }

let hello = Json.to_string (Json.Obj [ ("schema", Json.Str "rtic-serve/1") ])

type request =
  | Open of {
      session : string;
      spec_path : string;
      opts : (string * string) list;
    }
  | Txn of {
      session : string;
      (* one or more (time, ops) segments — a batched request carries
         several transactions. Parse errors in an op body are carried to
         execution time so the reply still comes out in request order. *)
      txns : (int * (Rtic_relational.Update.transaction, string) result) list;
    }
  | Stats of string
  | Checkpoint of string
  | Close of string
  | Metrics_req
  | Shutdown

let request_name = function
  | Open _ -> "open"
  | Txn _ -> "txn"
  | Stats _ -> "stats"
  | Checkpoint _ -> "checkpoint"
  | Close _ -> "close"
  | Metrics_req -> "metrics"
  | Shutdown -> "shutdown"

let request_arg = function
  | Open { session; _ } | Txn { session; _ } | Stats session
  | Checkpoint session | Close session ->
    Some session
  | Metrics_req | Shutdown -> None

(* A queued entry: a parsed request awaiting execution, or a reply already
   decided at feed time (refused for overload / shutdown) kept in the queue
   so replies stay in request order. *)
type entry =
  | Exec of request
  | Canned of Json.t

(* A half-received txn request: the header told us how many op lines
   follow for each (time, nops) segment. The first malformed op in a
   segment is remembered but the remaining body lines are still consumed,
   keeping the stream in sync. *)
type collecting = {
  c_session : string;
  mutable c_time : int;  (* current segment's commit time *)
  mutable c_want : int;  (* op lines left in the current segment *)
  mutable c_ops_rev : Rtic_relational.Update.op list;
  mutable c_err : string option;
  mutable c_rest : (int * int) list;  (* (time, nops) still to collect *)
  mutable c_done_rev :
    (int * (Rtic_relational.Update.transaction, string) result) list;
}

type session = {
  sup : Supervisor.t;
  metrics : Metrics.t;
  mutable stats : Stats.t;
  recovered_through : int option;
      (* last accepted commit time restored by recovery: txns at or before
         it are answered "replayed", mirroring rtic check --state-dir *)
}

(* Sessions and the admission budget are server-global; the parser state
   (a possibly half-received txn body) and the reply queue are
   per-connection, so interleaved clients each keep their own in-order
   reply stream while sharing one engine. The mutex guards every mutation
   of shared state and the whole execute path: requests from different
   connections serialize, so per-connection ordering is the only ordering
   guarantee (FORMATS.md §7). *)
type t = {
  fs : Faults.fs;
  tracer : Tracer.t option;
  pool : Pool.t option;
  cfg : config;
  lock : Mutex.t;
  sessions : (string, session) Hashtbl.t;
  srv_metrics : Metrics.t;
      (* server-lifetime telemetry (rates, txn total): outlives sessions,
         so the scrape total covers closed sessions too *)
  mutable queued_total : int;
  mutable is_stopped : bool;
  mutable primary : conn option;
      (* lazily-created connection backing the [t]-level feed/drain API *)
}

and conn = {
  server : t;
  mutable queue_rev : entry list;
  mutable queued : int;  (* admitted [Exec] entries in [queue_rev] *)
  mutable collecting : collecting option;
  mutable closed : bool;
}

let create ?(fs = Faults.real_fs) ?tracer ?pool ?(config = default_config) ()
    =
  if config.max_pending < 1 then
    invalid_arg "Server.create: max_pending must be at least 1";
  { fs;
    tracer;
    pool;
    cfg = config;
    lock = Mutex.create ();
    sessions = Hashtbl.create 8;
    srv_metrics = Metrics.create ();
    queued_total = 0;
    is_stopped = false;
    primary = None }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let connect t =
  { server = t; queue_rev = []; queued = 0; collecting = None; closed = false }

let disconnect c =
  with_lock c.server (fun () ->
      if not c.closed then begin
        c.closed <- true;
        c.server.queued_total <- c.server.queued_total - c.queued;
        c.queue_rev <- [];
        c.queued <- 0;
        c.collecting <- None
      end)

let pending t = with_lock t (fun () -> t.queued_total)
let conn_pending c = with_lock c.server (fun () -> c.queued)
let stopped t = t.is_stopped
let session_count t = Hashtbl.length t.sessions

(* ---------------- replies ---------------- *)

let err ~req ~code msg =
  Json.Obj
    [ ("ok", Json.Bool false);
      ("req", Json.Str req);
      ("error", Json.Str code);
      ("message", Json.Str msg) ]

let ok ~req fields =
  Json.Obj (("ok", Json.Bool true) :: ("req", Json.Str req) :: fields)

let report_json (r : Monitor.report) =
  Json.Obj
    [ ("constraint", Json.Str r.Monitor.constraint_name);
      ("position", Json.Int r.Monitor.position);
      ("time", Json.Int r.Monitor.time) ]

(* ---------------- request-line parsing ---------------- *)

let session_name_ok name =
  name <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
         | _ -> false)
       name

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_opts ~req pairs =
  let known =
    [ "state-dir"; "auto-checkpoint"; "on-error"; "aux-budget";
      "group-commit"; "wal-format" ]
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | kv :: rest ->
      (match String.index_opt kv '=' with
       | None ->
         Error (err ~req ~code:"bad-request" ("malformed option: " ^ kv))
       | Some i ->
         let k = String.sub kv 0 i in
         let v = String.sub kv (i + 1) (String.length kv - i - 1) in
         if not (List.mem k known) then
           Error (err ~req ~code:"bad-request" ("unknown option: " ^ k))
         else if v = "" then
           Error (err ~req ~code:"bad-request" ("empty value for option " ^ k))
         else go ((k, v) :: acc) rest)
  in
  go [] pairs

let int_of ~req what s k =
  match int_of_string_opt s with
  | Some n -> k n
  | None ->
    Error (err ~req ~code:"bad-request" (what ^ " must be an integer: " ^ s))

(* Parse one request line into either a request, a canned error reply, or
   a txn body to start collecting. *)
type parsed =
  | P_request of request
  | P_collect of collecting
  | P_error of Json.t

let check_session ~req name k =
  if session_name_ok name then k ()
  else
    Error
      (err ~req ~code:"bad-request"
         ("invalid session name (want [A-Za-z0-9_.-]+): " ^ name))

let parse_request_line line =
  let fail = function Ok p -> p | Error j -> P_error j in
  match tokens line with
  | [] -> P_error (err ~req:"?" ~code:"bad-request" "empty request")
  | "open" :: session :: spec_path :: opts ->
    fail
      (check_session ~req:"open" session @@ fun () ->
       match parse_opts ~req:"open" opts with
       | Error j -> Error j
       | Ok opts -> Ok (P_request (Open { session; spec_path; opts })))
  | "txn" :: session :: (_ :: _ as rest) ->
    fail
      (check_session ~req:"txn" session @@ fun () ->
       (* one or more TIME NOPS pairs; an odd tail is malformed *)
       let rec pairs acc = function
         | [] -> Ok (List.rev acc)
         | [ _ ] ->
           Error (err ~req:"txn" ~code:"bad-request" "malformed txn request")
         | time :: nops :: more ->
           int_of ~req:"txn" "time" time @@ fun time ->
           int_of ~req:"txn" "op count" nops @@ fun nops ->
           if nops < 0 then
             Error
               (err ~req:"txn" ~code:"bad-request" "op count must be >= 0")
           else pairs ((time, nops) :: acc) more
       in
       match pairs [] rest with
       | Error j -> Error j
       | Ok segs ->
         (* Segments without a body complete immediately; the first one
            that wants op lines starts the collector. *)
         let rec build done_rev = function
           | [] ->
             Ok (P_request (Txn { session; txns = List.rev done_rev }))
           | (time, 0) :: more -> build ((time, Ok []) :: done_rev) more
           | (time, nops) :: more ->
             Ok
               (P_collect
                  { c_session = session;
                    c_time = time;
                    c_want = nops;
                    c_ops_rev = [];
                    c_err = None;
                    c_rest = more;
                    c_done_rev = done_rev })
         in
         build [] segs)
  | [ "stats"; session ] ->
    fail (check_session ~req:"stats" session @@ fun () ->
          Ok (P_request (Stats session)))
  | [ "checkpoint"; session ] ->
    fail (check_session ~req:"checkpoint" session @@ fun () ->
          Ok (P_request (Checkpoint session)))
  | [ "close"; session ] ->
    fail (check_session ~req:"close" session @@ fun () ->
          Ok (P_request (Close session)))
  | [ "metrics" ] -> P_request Metrics_req
  | [ "shutdown" ] -> P_request Shutdown
  | cmd :: _ ->
    let req =
      if List.mem cmd [ "open"; "txn"; "stats"; "checkpoint"; "close";
                        "metrics"; "shutdown" ]
      then cmd
      else "?"
    in
    P_error
      (err ~req ~code:"bad-request"
         (if req = "?" then "unknown request: " ^ cmd
          else "malformed " ^ cmd ^ " request"))

(* ---------------- admission ---------------- *)

(* The admission budget is shared: [max_pending] bounds the parsed
   requests awaiting execution across ALL connections, so total queued
   work (and the memory behind it) stays bounded however many clients
   pipeline at once. Canned (already-refused) replies are queued outside
   the budget — they cost no execution. *)

let enqueue_canned c j =
  c.queue_rev <- Canned j :: c.queue_rev

let submit c rq =
  let t = c.server in
  let req = request_name rq in
  if t.is_stopped then
    enqueue_canned c
      (err ~req ~code:"shutting-down" "server is shutting down")
  else if t.queued_total >= t.cfg.max_pending then
    enqueue_canned c
      (err ~req ~code:"overloaded"
         (Printf.sprintf
            "pending-request queue is full (max-pending %d); retry after \
             the server catches up"
            t.cfg.max_pending))
  else begin
    c.queue_rev <- Exec rq :: c.queue_rev;
    c.queued <- c.queued + 1;
    t.queued_total <- t.queued_total + 1
  end

let conn_feed_line c line =
  with_lock c.server @@ fun () ->
  if c.closed then ()
  else
    match c.collecting with
    | Some col ->
      (match Wal.parse_op (String.trim line) with
       | Ok op -> col.c_ops_rev <- op :: col.c_ops_rev
       | Error m -> if col.c_err = None then col.c_err <- Some m);
      col.c_want <- col.c_want - 1;
      if col.c_want = 0 then begin
        col.c_done_rev <-
          ( col.c_time,
            match col.c_err with
            | Some m -> Error m
            | None -> Ok (List.rev col.c_ops_rev) )
          :: col.c_done_rev;
        (* Advance past body-less segments to the next one wanting op
           lines; with none left the whole request is complete. *)
        let rec advance () =
          match col.c_rest with
          | [] ->
            c.collecting <- None;
            submit c
              (Txn
                 { session = col.c_session;
                   txns = List.rev col.c_done_rev })
          | (time, 0) :: more ->
            col.c_done_rev <- (time, Ok []) :: col.c_done_rev;
            col.c_rest <- more;
            advance ()
          | (time, nops) :: more ->
            col.c_time <- time;
            col.c_want <- nops;
            col.c_ops_rev <- [];
            col.c_err <- None;
            col.c_rest <- more
        in
        advance ()
      end
    | None ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        (match parse_request_line line with
         | P_request rq -> submit c rq
         | P_collect col -> c.collecting <- Some col
         | P_error j -> enqueue_canned c j)

(* ---------------- execution ---------------- *)

let with_session t ~req name k =
  match Hashtbl.find_opt t.sessions name with
  | Some s -> k s
  | None -> err ~req ~code:"unknown-session" ("no session named " ^ name)

let supervisor_config opts =
  let base = Supervisor.default_config in
  let ( let* ) = Result.bind in
  let* auto_checkpoint =
    match List.assoc_opt "auto-checkpoint" opts with
    | None -> Ok base.Supervisor.auto_checkpoint
    | Some v ->
      (match int_of_string_opt v with
       | Some n when n >= 0 -> Ok n
       | _ -> Error ("auto-checkpoint must be a non-negative integer: " ^ v))
  in
  let* on_error =
    match List.assoc_opt "on-error" opts with
    | None -> Ok base.Supervisor.on_error
    | Some v -> Supervisor.policy_of_string v
  in
  let* aux_budget =
    match List.assoc_opt "aux-budget" opts with
    | None -> Ok base.Supervisor.aux_budget
    | Some v ->
      (match int_of_string_opt v with
       | Some n when n > 0 -> Ok (Some n)
       | _ -> Error ("aux-budget must be a positive integer: " ^ v))
  in
  let* group_commit =
    match List.assoc_opt "group-commit" opts with
    | None -> Ok base.Supervisor.group_commit
    | Some v ->
      (match int_of_string_opt v with
       | Some n when n >= 1 -> Ok n
       | _ -> Error ("group-commit must be a positive integer: " ^ v))
  in
  let* wal_format =
    match List.assoc_opt "wal-format" opts with
    | None -> Ok base.Supervisor.wal_format
    | Some v ->
      (match int_of_string_opt v with
       | Some ((1 | 2) as n) -> Ok n
       | _ -> Error ("wal-format must be 1 or 2: " ^ v))
  in
  Ok
    { base with
      Supervisor.auto_checkpoint;
      on_error;
      aux_budget;
      group_commit;
      wal_format }

let exec_open t session spec_path opts =
  let req = "open" in
  if Hashtbl.mem t.sessions session then
    err ~req ~code:"session-exists" ("session already open: " ^ session)
  else
    match t.fs.Faults.read_file spec_path with
    | Error m -> err ~req ~code:"io-error" m
    | Ok text ->
      (match Parser.spec_of_string text with
       | Error m -> err ~req ~code:"bad-spec" m
       | Ok spec ->
         (match
            List.find_opt
              (fun (d : Formula.def) -> not (Formula.past_only d.body))
              spec.Parser.defs
          with
          | Some d ->
            err ~req ~code:"bad-spec"
              (Printf.sprintf
                 "constraint %s uses future operators; sessions are \
                  past-only (check such constraints in batch with rtic \
                  check --engine future)"
                 d.Formula.name)
          | None ->
            (match supervisor_config opts with
             | Error m -> err ~req ~code:"bad-request" m
             | Ok config ->
               (* durable sessions live in the server's fs under state-dir=;
                  ephemeral ones get a private in-memory fs *)
               let fs, state_dir, durable =
                 match List.assoc_opt "state-dir" opts with
                 | Some dir -> (t.fs, dir, true)
                 | None -> (Faults.mem_fs (), "state", false)
               in
               let metrics = Metrics.create () in
               let fresh () =
                 match
                   Supervisor.create ~fs ~metrics ?tracer:t.tracer
                     ?pool:t.pool ~config ~state_dir spec.Parser.catalog
                     spec.Parser.defs
                 with
                 | Error m -> Error (err ~req ~code:"bad-spec" m)
                 | Ok sup -> Ok (sup, None, 0)
               in
               let recovered () =
                 match
                   Supervisor.recover ~fs ~metrics ?tracer:t.tracer
                     ?pool:t.pool ~config ~state_dir spec.Parser.catalog
                     spec.Parser.defs
                 with
                 | Error m -> Error (err ~req ~code:"io-error" m)
                 | Ok (sup, info) ->
                   Ok (sup, Supervisor.last_time sup, info.Supervisor.replayed)
               in
               (match
                  if durable && Supervisor.state_exists fs state_dir then
                    Result.map (fun x -> (x, true)) (recovered ())
                  else Result.map (fun x -> (x, false)) (fresh ())
                with
                | Error j -> j
                | Ok ((sup, recovered_through, replayed), was_recovered) ->
                  Hashtbl.replace t.sessions session
                    { sup; metrics; stats = Stats.empty; recovered_through };
                  ok ~req
                    [ ("session", Json.Str session);
                      ("constraints",
                       Json.Int (List.length spec.Parser.defs));
                      ("recovered", Json.Bool was_recovered);
                      ("replayed", Json.Int replayed);
                      ("steps", Json.Int (Supervisor.steps sup)) ]))))

(* One executed (checked/repaired/unrepairable) transaction: advance the
   session's and the server's rate rings with a single clock read. *)
let tick_txn t s =
  if t.cfg.telemetry then begin
    let now = Unix.gettimeofday () in
    Metrics.record_txn s.metrics ~now;
    Metrics.record_txn t.srv_metrics ~now
  end

(* The per-transaction reply fields — everything after "session" — shared
   by the classic single-transaction reply and the elements of a batched
   reply's "outcomes" array. Also the accounting point: each delivered
   outcome advances the session's stats and rate rings exactly once. *)
let outcome_fields t s time outcome =
  let base = [ ("time", Json.Int time) ] in
  match outcome with
  | Supervisor.Checked { reports; inconclusive } ->
    s.stats <-
      Stats.observe s.stats ~time ~space:(Supervisor.space s.sup) ~reports;
    tick_txn t s;
    base
    @ [ ("outcome", Json.Str "checked");
        ("reports", Json.List (List.map report_json reports));
        ("inconclusive",
         Json.List (List.map (fun c -> Json.Str c) inconclusive)) ]
  | Supervisor.Skipped reason ->
    base @ [ ("outcome", Json.Str "skipped"); ("reason", Json.Str reason) ]
  | Supervisor.Rejected reason ->
    base @ [ ("outcome", Json.Str "rejected"); ("reason", Json.Str reason) ]
  | Supervisor.Repaired { actions; witnesses; repaired; inconclusive } ->
    (* the repaired state is violation-free: observe zero reports *)
    s.stats <-
      Stats.observe s.stats ~time ~space:(Supervisor.space s.sup) ~reports:[];
    tick_txn t s;
    let op_str o = Format.asprintf "%a" Update.pp_op o in
    base
    @ [ ("outcome", Json.Str "repaired");
        ("actions",
         Json.List (List.map (fun o -> Json.Str (op_str o)) actions));
        ("witnesses",
         Json.List
           (List.map
              (fun (o, c) ->
                Json.Obj
                  [ ("action", Json.Str (op_str o));
                    ("fired_by", Json.Str c) ])
              witnesses));
        ("repaired", Json.List (List.map report_json repaired));
        ("inconclusive",
         Json.List (List.map (fun c -> Json.Str c) inconclusive)) ]
  | Supervisor.Unrepairable { reports; unrepairable; inconclusive } ->
    s.stats <-
      Stats.observe s.stats ~time ~space:(Supervisor.space s.sup) ~reports;
    tick_txn t s;
    base
    @ [ ("outcome", Json.Str "unrepairable");
        ("reports", Json.List (List.map report_json reports));
        ("unrepairable",
         Json.List
           (List.map
              (fun (c, off) ->
                Json.Obj
                  [ ("constraint", Json.Str c);
                    ("offending", Json.Str off) ])
              unrepairable));
        ("inconclusive",
         Json.List (List.map (fun c -> Json.Str c) inconclusive)) ]

let replayed_before s time =
  (* recovery already covered this commit time; answer without
     re-checking, as the batch CLI skips replayed trace steps *)
  match s.recovered_through with Some l -> time <= l | None -> false

let exec_txn t session txns =
  let req = "txn" in
  match txns with
  | [ (_, Error m) ] ->
    err ~req ~code:"bad-request" ("malformed op line: " ^ m)
  | [ (time, Ok txn) ] ->
    (* Single-transaction request: the classic reply, unchanged. *)
    with_session t ~req session @@ fun s ->
    if replayed_before s time then
      ok ~req
        [ ("session", Json.Str session);
          ("time", Json.Int time);
          ("outcome", Json.Str "replayed") ]
    else
      (match Supervisor.step s.sup ~time txn with
       | Error m ->
         (* Halt policy or internal failure: the session is dead; drop it
            so the state dir can be recovered by a fresh open. *)
         Hashtbl.remove t.sessions session;
         err ~req ~code:"halted"
           (Printf.sprintf "session %s halted: %s" session m)
       | Ok outcome ->
         ok ~req
           (("session", Json.Str session) :: outcome_fields t s time outcome))
  | txns ->
    (* Batched request: feed every transaction through the commit queue
       and flush once at the end, so a group-commit session pays one
       write+sync per batch boundary instead of one per transaction. One
       element per transaction, in request order; outcomes released by a
       later submission are zipped back to their slots FIFO — the release
       order the supervisor guarantees. *)
    with_session t ~req session @@ fun s ->
    let n = List.length txns in
    let slots = Array.make n None in
    let pending = Queue.create () in
    let fill outs =
      List.iter
        (fun o ->
          if not (Queue.is_empty pending) then begin
            let i, time = Queue.pop pending in
            slots.(i) <- Some (Json.Obj (outcome_fields t s time o))
          end)
        outs
    in
    let halted = ref None in
    List.iteri
      (fun i (time, ops) ->
        if !halted = None then
          match ops with
          | Error m ->
            slots.(i) <-
              Some
                (Json.Obj
                   [ ("time", Json.Int time);
                     ("outcome", Json.Str "invalid");
                     ("message", Json.Str ("malformed op line: " ^ m)) ])
          | Ok txn ->
            if replayed_before s time then
              slots.(i) <-
                Some
                  (Json.Obj
                     [ ("time", Json.Int time);
                       ("outcome", Json.Str "replayed") ])
            else begin
              Queue.push (i, time) pending;
              match Supervisor.submit s.sup ~time txn with
              | Ok outs -> fill outs
              | Error m -> halted := Some m
            end)
      txns;
    (match !halted with
     | None -> fill (Supervisor.flush s.sup)
     | Some _ ->
       (* The session is dead (Halt policy mid-batch); its unreleased
          acks are lost exactly as a crash would lose them. *)
       Hashtbl.remove t.sessions session);
    let elems =
      Array.to_list
        (Array.mapi
           (fun i slot ->
             match slot with
             | Some j -> j
             | None ->
               let time, _ = List.nth txns i in
               Json.Obj
                 [ ("time", Json.Int time);
                   ("outcome", Json.Str "halted");
                   ("message",
                    Json.Str
                      (match !halted with
                       | Some m ->
                         Printf.sprintf "session %s halted: %s" session m
                       | None -> "internal: outcome not released")) ])
           slots)
    in
    ok ~req [ ("session", Json.Str session); ("outcomes", Json.List elems) ]

let exec_stats t session =
  with_session t ~req:"stats" session @@ fun s ->
  ok ~req:"stats"
    [ ("session", Json.Str session);
      ("stats", Stats.to_json ~metrics:s.metrics s.stats) ]

let exec_checkpoint t session =
  with_session t ~req:"checkpoint" session @@ fun s ->
  match Supervisor.checkpoint s.sup with
  | Ok () ->
    ok ~req:"checkpoint"
      [ ("session", Json.Str session);
        ("steps", Json.Int (Supervisor.steps s.sup)) ]
  | Error m -> err ~req:"checkpoint" ~code:"io-error" m

let exec_close t session =
  with_session t ~req:"close" session @@ fun s ->
  Hashtbl.remove t.sessions session;
  ok ~req:"close"
    [ ("session", Json.Str session);
      ("steps", Json.Int (Supervisor.steps s.sup)) ]

(* ---------------- telemetry snapshot ---------------- *)

(* Assemble the rtic-metrics/1 snapshot. The caller holds the lock
   ([execute] runs under it; [snapshot] below wraps for external pollers),
   so the document is a consistent cut: no transaction executes between
   reading two sessions. Point-in-time supervisor figures are written into
   each session's recorder as gauges first, so the recorder and the
   document always agree. *)
let snapshot_locked t ~now =
  let session_row name s =
    let sup = s.sup in
    let quarantined = List.length (Supervisor.quarantined sup) in
    let degraded = Supervisor.degraded sup in
    Metrics.set_gauge s.metrics "aux_size" (Supervisor.space sup);
    Metrics.set_gauge s.metrics "wal_bytes_since_checkpoint"
      (Supervisor.wal_bytes_since_checkpoint sup);
    Metrics.set_gauge s.metrics "quarantined" quarantined;
    Metrics.set_gauge s.metrics "degraded" (if degraded then 1 else 0);
    { Telemetry.name;
      transactions = Stats.transactions s.stats;
      violations = Stats.violations s.stats;
      steps = Supervisor.steps sup;
      last_time = Supervisor.last_time sup;
      health =
        (if degraded then "degraded"
         else if quarantined > 0 then "quarantined"
         else "ok");
      rates = Metrics.txn_rates s.metrics ~now;
      latency = Metrics.latency s.metrics;
      buckets = Metrics.latency_buckets s.metrics;
      gauges = Metrics.gauges s.metrics;
      counters = Metrics.counters s.metrics }
  in
  let sessions =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.sessions []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, s) -> session_row name s)
  in
  { Telemetry.sessions;
    session_count = Hashtbl.length t.sessions;
    queued = t.queued_total;
    max_pending = t.cfg.max_pending;
    stopped = t.is_stopped;
    transactions = Metrics.txn_count t.srv_metrics;
    rates = Metrics.txn_rates t.srv_metrics ~now }

let snapshot t =
  let now = Unix.gettimeofday () in
  with_lock t (fun () -> snapshot_locked t ~now)

let exec_metrics t =
  let now = Unix.gettimeofday () in
  ok ~req:"metrics"
    [ ("metrics", Telemetry.to_json (snapshot_locked t ~now)) ]

let exec_shutdown t =
  let n = Hashtbl.length t.sessions in
  Hashtbl.reset t.sessions;
  t.is_stopped <- true;
  ok ~req:"shutdown" [ ("sessions_closed", Json.Int n) ]

let execute t rq =
  let req = request_name rq in
  if t.is_stopped then
    err ~req ~code:"shutting-down" "server is shutting down"
  else
    Tracer.span t.tracer ~cat:"serve" ~name:req ?arg:(request_arg rq)
    @@ fun () ->
    match rq with
    | Open { session; spec_path; opts } -> exec_open t session spec_path opts
    | Txn { session; txns } -> exec_txn t session txns
    | Stats session -> exec_stats t session
    | Checkpoint session -> exec_checkpoint t session
    | Close session -> exec_close t session
    | Metrics_req -> exec_metrics t
    | Shutdown -> exec_shutdown t

let conn_drain ?limit c =
  with_lock c.server @@ fun () ->
  let t = c.server in
  let entries = List.rev c.queue_rev in
  let now, later =
    match limit with
    | None -> (entries, [])
    | Some n ->
      if n < 0 then invalid_arg "Server.conn_drain: negative limit";
      let rec split i acc = function
        | rest when i = n -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | e :: rest -> split (i + 1) (e :: acc) rest
      in
      split 0 [] entries
  in
  c.queue_rev <- List.rev later;
  List.map
    (fun e ->
      match e with
      | Canned j -> Json.to_string j
      | Exec rq ->
        c.queued <- c.queued - 1;
        t.queued_total <- t.queued_total - 1;
        Json.to_string (execute t rq))
    now

(* ---------------- single-stream convenience API ---------------- *)

(* The [t]-level feed/drain operate on one lazily-created primary
   connection: the stdin/stdout transport, the bench harness and the
   protocol tests all drive a single stream. *)

let primary t =
  match t.primary with
  | Some c -> c
  | None ->
    let c = connect t in
    t.primary <- Some c;
    c

let feed_line t line = conn_feed_line (primary t) line
let drain t = conn_drain (primary t)

let handle_lines t lines =
  List.iter (feed_line t) lines;
  drain t
