(** The streaming monitor service — the [rtic-serve/1] protocol engine.

    The paper's bounded-history encoding exists so a monitor can run {e
    forever} over an unbounded transaction stream in constant space; this
    module turns the batch checker into a resident service. A server
    multiplexes any number of {e named sessions}, each backed by a
    {!Supervisor} — so the WAL, auto-checkpointing, [on-error] policies and
    aux-budget quarantine compose unchanged — and optionally sharded across
    a {!Pool} ([rtic serve --jobs]).

    The protocol (FORMATS.md §7) is line-oriented: requests are single
    lines ([open] / [txn] / [stats] / [checkpoint] / [close] / [metrics] /
    [shutdown], a [txn] followed by one op line per update in the WAL op
    syntax), and
    every request gets exactly one single-line JSON reply, in request
    order. This module is {e transport-agnostic}: it consumes lines and
    produces reply lines, while [rtic serve] owns the actual stdin/stdout
    or Unix-domain-socket pump (and [tools/drive.exe] is the matching load
    client).

    {b Admission control.} Feeding a line may complete a request, which is
    queued until a drain executes it. At most [max_pending] requests may
    be queued {e across all connections}; a request parsed beyond that is
    answered with an [overloaded] error reply — in order on its own
    connection, never silently dropped. A transport that reads a chunk,
    feeds its lines and then drains thus bounds both its memory and the
    burst a pipelining client (or a fleet of them) can land.

    Sessions opened without a [state-dir=] option are {e ephemeral}: they
    run against a private {!Faults.mem_fs} and disappear with the server.
    Sessions opened with [state-dir=] are durable in that directory; when
    the directory already holds service state the open {e recovers} it
    (checkpoint + WAL replay), and re-fed transactions recovery already
    covered are answered with outcome ["replayed"] — so a client can
    simply re-send its stream after a server crash, exactly like
    re-running [rtic check --state-dir]. *)

type config = {
  max_pending : int;  (** Queued-request bound, ≥ 1. *)
  telemetry : bool;
      (** Tick the transaction-rate rings (one wall-clock read per
          executed transaction). On by default; the MET bench turns it off
          to measure the overhead, which must stay ≤ 5%. The [metrics]
          request itself always works — with telemetry off its rates and
          server transaction total just read 0. *)
}

val default_config : config
(** [{ max_pending = 64; telemetry = true }]. *)

val hello : string
(** The greeting line a transport emits when a stream opens:
    [{"schema":"rtic-serve/1"}]. *)

type t
(** A running server: the session table, the shared admission budget and
    any number of {!conn} handles. Sessions are {e server-global} — every
    connection sees the same namespace, so a client can reconnect (or a
    different client connect) and keep feeding a session opened earlier.
    The request path is mutex-guarded: requests from different connections
    serialize in whatever order the transport drains them, so the only
    ordering guarantee is {e per-connection} (replies come back in that
    connection's request order — FORMATS.md §7). *)

type conn
(** One client connection's view of the server: its own parser state (a
    possibly half-received [txn] body) and its own in-order reply queue.
    Connections share the server's sessions and its [max_pending]
    admission budget. *)

val create :
  ?fs:Faults.fs ->
  ?tracer:Tracer.t ->
  ?pool:Pool.t ->
  ?config:config ->
  unit ->
  t
(** [?fs] (default {!Faults.real_fs}) backs spec-file reads and durable
    ([state-dir=]) sessions — tests pass {!Faults.mem_fs} for hermetic
    runs. With [?tracer], every executed request runs inside a
    [serve:<request>] span in the [rtic-trace/1] stream. With [?pool],
    each session's supervisor shards its checkers across the pool
    ({!Supervisor.create}). *)

val connect : t -> conn
(** A fresh connection handle. Cheap; make one per accepted client. *)

val disconnect : conn -> unit
(** Drop a connection: its queued requests are discarded (their replies
    could never be delivered), their share of the admission budget is
    released, and a half-received [txn] body is abandoned. Sessions are
    untouched — they belong to the server, not the connection. Idempotent;
    a disconnected connection ignores further feeds. *)

val conn_feed_line : conn -> string -> unit
(** Consume one input line (without its newline) on this connection.
    Either it advances the connection's half-received [txn] body, or it is
    parsed as a request line and the completed request is queued (or
    refused [overloaded] when the {e shared} budget is full). Blank lines
    and [#] comments between requests are ignored. Never raises on
    malformed input — errors become error replies at the next drain. *)

val conn_drain : ?limit:int -> conn -> string list
(** Execute this connection's queued requests — at most [limit] of them
    when given, all of them otherwise — and return one single-line JSON
    reply per request, in arrival order; the remainder stays queued. A
    transport serving many connections drains them round-robin with a
    small [limit] so one client's pipelined burst cannot starve the rest.
    Executing [shutdown] (from any connection) closes all sessions and
    marks the server {!stopped}; queued and later requests on {e every}
    connection are answered with a [shutting-down] error. *)

val conn_pending : conn -> int
(** Requests queued on this connection and not yet drained (refused ones
    excluded). *)

val feed_line : t -> string -> unit
(** {!conn_feed_line} on a lazily-created primary connection — the
    single-stream (stdin/stdout) convenience API. *)

val drain : t -> string list
(** {!conn_drain} (no limit) on the primary connection. *)

val pending : t -> int
(** Requests queued across all connections and not yet drained (refused
    ones excluded). *)

val stopped : t -> bool
(** [shutdown] has been executed; the transport should stop pumping. *)

val session_count : t -> int

val snapshot : t -> Telemetry.snapshot
(** A lock-consistent [rtic-metrics/1] snapshot of the server, stamped at
    a wall-clock reading taken now: no transaction executes between
    reading two sessions, so counters in the document are mutually
    consistent (the server transaction total equals the sum of per-session
    outcomes over all sessions ever opened). This is what the [metrics]
    request renders as JSON, and what [rtic serve --metrics-socket] serves
    to external pollers ([rtic top], Prometheus scrapers) without going
    through the request queue. *)

val handle_lines : t -> string list -> string list
(** [handle_lines t lines] = feed every line, then {!drain} — the
    per-chunk step of a transport, and the whole pump for a test that
    wants request/reply semantics. *)
