module Database = Rtic_relational.Database
module Update = Rtic_relational.Update
module Trace = Rtic_temporal.Trace
module Formula = Rtic_mtl.Formula
module Naive = Rtic_eval.Naive

type report = {
  constraint_name : string;
  position : int;
  time : int;
}

type t = {
  db : Database.t;
  checkers : Incremental.t list;  (* in registration order *)
  metrics : Metrics.t option;
  tracer : Tracer.t option;
  fan : Fanout.t option;  (* parallel plan; None = sequential *)
}

let ( let* ) r f = Result.bind r f

(* Build the checkers in registration order. With a pool of size > 1 the
   checkers are partitioned round-robin (Fanout): each is created against
   its shard's private recorder and without a tracer (both are
   single-threaded recorders), and the main recorder receives the same
   gauge rows in the same order a sequential run would have registered
   them. [mk] admits one checker from its def plus a per-def payload
   (unit for [create], the checkpoint section for [of_text]). *)
let build ?metrics ?tracer ?pool ~db defs payloads mk =
  let names = List.map (fun (d : Formula.def) -> d.name) defs in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then Error "duplicate constraint names"
  else begin
    let fan =
      match pool with
      | Some p when Pool.size p > 1 && List.length defs > 1 ->
        Some (Fanout.make ?metrics p (List.length defs))
      | _ -> None
    in
    let* checkers =
      List.fold_left2
        (fun acc d payload ->
          let* i, acc = acc in
          let* c =
            match fan with
            | None -> mk ?metrics ?tracer d payload
            | Some fan -> mk ?metrics:(Fanout.shard_metrics fan i) ?tracer:None d payload
          in
          (match fan with
           | Some fan -> Fanout.register fan i (Incremental.node_names c)
           | None -> ());
          Ok (i + 1, c :: acc))
        (Ok (0, []))
        defs payloads
      |> Result.map (fun (_, cs) -> List.rev cs)
    in
    Ok { db; checkers; metrics; tracer; fan }
  end

let create_with ?metrics ?tracer ?pool ?config db defs =
  build ?metrics ?tracer ?pool ~db defs
    (List.map (fun _ -> ()) defs)
    (fun ?metrics ?tracer d () ->
      Incremental.create ?metrics ?tracer ?config (Database.catalog db) d)

let create ?metrics ?tracer ?pool ?config cat defs =
  create_with ?metrics ?tracer ?pool ?config (Database.create cat) defs

let database m = m.db

(* The resilience layer (Supervisor) steps checkers individually so it can
   quarantine one without stopping the rest; it re-enters through these. *)
let parts m = (m.db, m.checkers)
let fanout m = m.fan
let of_parts ?metrics ?tracer db checkers =
  { db; checkers; metrics; tracer; fan = None }

let step_seq m ~time db =
  let* checkers, reports =
    List.fold_left
      (fun acc c ->
        let* checkers, reports = acc in
        let* c, v = Incremental.step c ~time db in
        let reports =
          if v.Incremental.satisfied then reports
          else
            { constraint_name = (Incremental.def c).Formula.name;
              position = v.Incremental.index;
              time }
            :: reports
        in
        Ok (c :: checkers, reports))
      (Ok ([], []))
      m.checkers
  in
  Ok (List.rev checkers, List.rev reports)

(* One parallel step: each shard steps its checkers in ascending order;
   verdicts are scattered back to registration order, and if any checker
   failed the error of the lowest-index one is returned — the same error a
   sequential run would have stopped on. *)
let step_par m fan ~time db =
  let cs = Array.of_list m.checkers in
  let timed = m.tracer <> None in
  let outs =
    Pool.run (Fanout.pool fan)
      (Array.map
         (fun idxs () ->
           let w0 = if timed then Unix.gettimeofday () else 0.0 in
           let rec go acc = function
             | [] -> Ok (List.rev acc)
             | i :: rest ->
               (match Incremental.step cs.(i) ~time db with
                | Error e -> Error (i, e)
                | Ok (c, v) -> go ((i, c, v) :: acc) rest)
           in
           let r = go [] (Array.to_list idxs) in
           (r, w0, if timed then Unix.gettimeofday () else 0.0))
         (Fanout.groups fan))
  in
  (match m.tracer with
   | None -> ()
   | Some tr ->
     Array.iteri
       (fun s ((_, w0, w1) : _ * float * float) ->
         Tracer.timed_span m.tracer ~cat:"shard" ~name:(string_of_int s)
           ~arg:(string_of_int (Array.length (Fanout.groups fan).(s)))
           ~t0_ns:(Tracer.stamp tr w0) ~t1_ns:(Tracer.stamp tr w1) ())
       outs);
  let err =
    Array.fold_left
      (fun acc (r, _, _) ->
        match r with
        | Error (i, e) ->
          (match acc with
           | Some (j, _) when j <= i -> acc
           | _ -> Some (i, e))
        | Ok _ -> acc)
      None outs
  in
  match err with
  | Some (_, e) -> Error e
  | None ->
    let verdicts = Array.make (Array.length cs) None in
    Array.iter
      (fun (r, _, _) ->
        match r with
        | Ok entries ->
          List.iter
            (fun (i, c, v) ->
              cs.(i) <- c;
              verdicts.(i) <- Some v)
            entries
        | Error _ -> ())
      outs;
    let reports = ref [] in
    for i = Array.length cs - 1 downto 0 do
      match verdicts.(i) with
      | Some v when not v.Incremental.satisfied ->
        reports :=
          { constraint_name = (Incremental.def cs.(i)).Formula.name;
            position = v.Incremental.index;
            time }
          :: !reports
      | _ -> ()
    done;
    Fanout.sync fan;
    Ok (Array.to_list cs, !reports)

let step m ~time txn =
  Tracer.span m.tracer ~cat:"txn" ~arg:(string_of_int time) @@ fun () ->
  let t0 =
    match m.metrics with None -> 0.0 | Some _ -> Unix.gettimeofday ()
  in
  let* db =
    Tracer.span m.tracer ~cat:"apply" (fun () -> Update.apply m.db txn)
  in
  let* checkers, reports =
    match m.fan with
    | None -> step_seq m ~time db
    | Some fan -> step_par m fan ~time db
  in
  (match m.metrics with
   | None -> ()
   | Some mx ->
     Metrics.record_latency mx (Unix.gettimeofday () -. t0);
     Metrics.add_violations mx (List.length reports));
  Ok ({ m with db; checkers }, reports)

let space m =
  List.fold_left (fun acc c -> acc + Incremental.space c) 0 m.checkers

let run_trace ?metrics ?tracer ?pool ?config defs (tr : Trace.t) =
  let* m = create_with ?metrics ?tracer ?pool ?config tr.Trace.init defs in
  let* _, reports =
    List.fold_left
      (fun acc (time, txn) ->
        let* m, reports = acc in
        let* m, rs = step m ~time txn in
        Ok (m, List.rev_append rs reports))
      (Ok (m, []))
      tr.Trace.steps
  in
  Ok (List.rev reports)

let run_trace_naive defs (tr : Trace.t) =
  let* h = Trace.materialize tr in
  let module History = Rtic_temporal.History in
  let* per_def =
    List.fold_left
      (fun acc (d : Formula.def) ->
        let* acc = acc in
        let* vs = Naive.violations h d in
        Ok ((d.name, vs) :: acc))
      (Ok []) defs
    |> Result.map List.rev
  in
  (* Order by position, then by registration order. *)
  let out = ref [] in
  for i = History.last h downto 0 do
    List.iter
      (fun (name, vs) ->
        if List.mem i vs then
          out :=
            { constraint_name = name; position = i; time = History.time h i }
            :: !out)
      (List.rev per_def)
  done;
  (* The loops above already produce ascending positions with constraints in
     registration order within each position. *)
  Ok !out

let pp_report ppf r =
  Format.fprintf ppf "[%d] constraint %s violated at position %d" r.time
    r.constraint_name r.position

(* ---------------- Checkpointing ---------------- *)

let to_text m =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "rtic-monitor-checkpoint 2\n";
  Buffer.add_string buf "-- database\n";
  Buffer.add_string buf (Rtic_relational.Textio.dump_database m.db);
  List.iter
    (fun c ->
      Buffer.add_string buf "-- checker\n";
      Buffer.add_string buf (Incremental.to_text c))
    m.checkers;
  Buffer.contents buf

let of_text ?metrics ?tracer ?pool ?config cat defs text =
  let lines = String.split_on_char '\n' text in
  (* Split into the database section and one section per checker. *)
  let rec split sections current header_ok = function
    | [] -> Ok (header_ok, List.rev (List.rev current :: sections))
    | l :: rest ->
      let t = String.trim l in
      if t = "rtic-monitor-checkpoint 2" then split sections current true rest
      else if t = "-- database" || t = "-- checker" then
        split (List.rev current :: sections) [] header_ok rest
      else split sections (l :: current) header_ok rest
  in
  let* header_ok, sections = split [] [] false lines in
  if not header_ok then Error "monitor checkpoint: missing header"
  else
    match sections with
    | _prefix :: db_section :: checker_sections ->
      if List.length checker_sections <> List.length defs then
        Error
          (Printf.sprintf
             "monitor checkpoint holds %d checker(s), %d constraint(s) given"
             (List.length checker_sections) (List.length defs))
      else
        let* db =
          Rtic_relational.Textio.parse_database
            (String.concat "\n" db_section)
        in
        build ?metrics ?tracer ?pool ~db defs checker_sections
          (fun ?metrics ?tracer d section ->
            Incremental.of_text ?metrics ?tracer ?config cat d
              (String.concat "\n" section))
    | _ -> Error "monitor checkpoint: missing database section"
