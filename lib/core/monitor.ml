module Database = Rtic_relational.Database
module Update = Rtic_relational.Update
module Trace = Rtic_temporal.Trace
module Formula = Rtic_mtl.Formula
module Naive = Rtic_eval.Naive

type report = {
  constraint_name : string;
  position : int;
  time : int;
}

type t = {
  db : Database.t;
  checkers : Incremental.t list;  (* in registration order *)
  metrics : Metrics.t option;
  tracer : Tracer.t option;
}

let ( let* ) r f = Result.bind r f

let create_with ?metrics ?tracer ?config db defs =
  let names = List.map (fun (d : Formula.def) -> d.name) defs in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then Error "duplicate constraint names"
  else
    let* checkers =
      List.fold_left
        (fun acc d ->
          let* acc = acc in
          let* c =
            Incremental.create ?metrics ?tracer ?config (Database.catalog db) d
          in
          Ok (c :: acc))
        (Ok []) defs
    in
    Ok { db; checkers = List.rev checkers; metrics; tracer }

let create ?metrics ?tracer ?config cat defs =
  create_with ?metrics ?tracer ?config (Database.create cat) defs

let database m = m.db

(* The resilience layer (Supervisor) steps checkers individually so it can
   quarantine one without stopping the rest; it re-enters through these. *)
let parts m = (m.db, m.checkers)
let of_parts ?metrics ?tracer db checkers = { db; checkers; metrics; tracer }

let step m ~time txn =
  Tracer.span m.tracer ~cat:"txn" ~arg:(string_of_int time) @@ fun () ->
  let t0 =
    match m.metrics with None -> 0.0 | Some _ -> Unix.gettimeofday ()
  in
  let* db =
    Tracer.span m.tracer ~cat:"apply" (fun () -> Update.apply m.db txn)
  in
  let* checkers, reports =
    List.fold_left
      (fun acc c ->
        let* checkers, reports = acc in
        let* c, v = Incremental.step c ~time db in
        let reports =
          if v.Incremental.satisfied then reports
          else
            { constraint_name = (Incremental.def c).Formula.name;
              position = v.Incremental.index;
              time }
            :: reports
        in
        Ok (c :: checkers, reports))
      (Ok ([], []))
      m.checkers
  in
  let reports = List.rev reports in
  (match m.metrics with
   | None -> ()
   | Some mx ->
     Metrics.record_latency mx (Unix.gettimeofday () -. t0);
     Metrics.add_violations mx (List.length reports));
  Ok ({ m with db; checkers = List.rev checkers }, reports)

let space m =
  List.fold_left (fun acc c -> acc + Incremental.space c) 0 m.checkers

let run_trace ?metrics ?tracer ?config defs (tr : Trace.t) =
  let* m = create_with ?metrics ?tracer ?config tr.Trace.init defs in
  let* _, reports =
    List.fold_left
      (fun acc (time, txn) ->
        let* m, reports = acc in
        let* m, rs = step m ~time txn in
        Ok (m, List.rev_append rs reports))
      (Ok (m, []))
      tr.Trace.steps
  in
  Ok (List.rev reports)

let run_trace_naive defs (tr : Trace.t) =
  let* h = Trace.materialize tr in
  let module History = Rtic_temporal.History in
  let* per_def =
    List.fold_left
      (fun acc (d : Formula.def) ->
        let* acc = acc in
        let* vs = Naive.violations h d in
        Ok ((d.name, vs) :: acc))
      (Ok []) defs
    |> Result.map List.rev
  in
  (* Order by position, then by registration order. *)
  let out = ref [] in
  for i = History.last h downto 0 do
    List.iter
      (fun (name, vs) ->
        if List.mem i vs then
          out :=
            { constraint_name = name; position = i; time = History.time h i }
            :: !out)
      (List.rev per_def)
  done;
  (* The loops above already produce ascending positions with constraints in
     registration order within each position. *)
  Ok !out

let pp_report ppf r =
  Format.fprintf ppf "[%d] constraint %s violated at position %d" r.time
    r.constraint_name r.position

(* ---------------- Checkpointing ---------------- *)

let to_text m =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "rtic-monitor-checkpoint 2\n";
  Buffer.add_string buf "-- database\n";
  Buffer.add_string buf (Rtic_relational.Textio.dump_database m.db);
  List.iter
    (fun c ->
      Buffer.add_string buf "-- checker\n";
      Buffer.add_string buf (Incremental.to_text c))
    m.checkers;
  Buffer.contents buf

let of_text ?metrics ?tracer ?config cat defs text =
  let lines = String.split_on_char '\n' text in
  (* Split into the database section and one section per checker. *)
  let rec split sections current header_ok = function
    | [] -> Ok (header_ok, List.rev (List.rev current :: sections))
    | l :: rest ->
      let t = String.trim l in
      if t = "rtic-monitor-checkpoint 2" then split sections current true rest
      else if t = "-- database" || t = "-- checker" then
        split (List.rev current :: sections) [] header_ok rest
      else split sections (l :: current) header_ok rest
  in
  let* header_ok, sections = split [] [] false lines in
  if not header_ok then Error "monitor checkpoint: missing header"
  else
    match sections with
    | _prefix :: db_section :: checker_sections ->
      if List.length checker_sections <> List.length defs then
        Error
          (Printf.sprintf
             "monitor checkpoint holds %d checker(s), %d constraint(s) given"
             (List.length checker_sections) (List.length defs))
      else
        let* db =
          Rtic_relational.Textio.parse_database
            (String.concat "\n" db_section)
        in
        let* checkers =
          List.fold_left2
            (fun acc d section ->
              let* acc = acc in
              let* c =
                Incremental.of_text ?metrics ?tracer ?config cat d
                  (String.concat "\n" section)
              in
              Ok (c :: acc))
            (Ok []) defs checker_sections
        in
        Ok { db; checkers = List.rev checkers; metrics; tracer }
    | _ -> Error "monitor checkpoint: missing database section"
