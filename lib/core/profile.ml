(* rtic-trace/1 stream analysis: parse events, replay the span stack,
   aggregate (cat, name) groups and collapsed stacks. *)

type event = {
  ev : [ `Open | `Close | `Point ];
  id : int;
  parent : int option;
  cat : string;
  name : string;
  arg : string;
  t_ns : int;
}

type row = {
  cat : string;
  name : string;
  count : int;
  total_ns : int;
  self_ns : int;
}

type t = {
  p_events : int;
  p_spans : int;
  p_points : int;
  p_unclosed : int;
  p_rows : row list;                   (* sorted by (cat, name) *)
  p_collapsed : (string * int) list;   (* stack path -> self ns, sorted *)
}

let ( let* ) = Result.bind

(* ---------- parsing ---------- *)

let str_field j key =
  match Json.member key j with
  | None -> Ok ""
  | Some v ->
    (match Json.to_str v with
     | Some s -> Ok s
     | None -> Error (Printf.sprintf "field %S is not a string" key))

let int_field j key =
  match Option.bind (Json.member key j) Json.to_int with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "missing or non-integer field %S" key)

let parent_of j =
  match Json.member "parent" j with
  | None | Some Json.Null -> Ok None
  | Some v ->
    (match Json.to_int v with
     | Some n -> Ok (Some n)
     | None -> Error "field \"parent\" is not an integer or null")

let event_of_json j =
  let* ev_name = str_field j "ev" in
  let* ev =
    match ev_name with
    | "open" -> Ok `Open
    | "close" -> Ok `Close
    | "point" -> Ok `Point
    | "" -> Error "missing field \"ev\""
    | other -> Error (Printf.sprintf "unknown event type %S" other)
  in
  let* id = int_field j "id" in
  let* t_ns = int_field j "t_ns" in
  let* parent = parent_of j in
  let* cat = str_field j "cat" in
  let* name = str_field j "name" in
  let* arg = str_field j "arg" in
  match ev with
  | `Close -> Ok { ev; id; parent = None; cat = ""; name = ""; arg = ""; t_ns }
  | `Open | `Point ->
    if cat = "" then Error "missing field \"cat\""
    else Ok { ev; id; parent; cat; name; arg; t_ns }

let parse_events text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let err msg = Error (Printf.sprintf "trace line %d: %s" lineno msg) in
      if String.trim line = "" then go (lineno + 1) acc rest
      else
        (match Json.of_string line with
         | Error e -> err e
         | Ok j ->
           (match Json.member "schema" j with
            | Some (Json.Str "rtic-trace/1") -> go (lineno + 1) acc rest
            | Some (Json.Str other) ->
              err (Printf.sprintf "unsupported trace schema %S" other)
            | Some _ -> err "schema field is not a string"
            | None ->
              (match event_of_json j with
               | Ok ev -> go (lineno + 1) (ev :: acc) rest
               | Error e -> err e)))
  in
  go 1 [] lines

(* ---------- replay ---------- *)

type frame = {
  f_id : int;
  f_cat : string;
  f_name : string;
  f_open : int;
  f_path : string;
  mutable f_child_ns : int;
}

let frame_label cat name = if name = "" then cat else cat ^ ":" ^ name

let of_events events =
  let groups : (string * string, int ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let group cat name =
    let key = (cat, name) in
    match Hashtbl.find_opt groups key with
    | Some g -> g
    | None ->
      let g = (ref 0, ref 0, ref 0) in
      Hashtbl.add groups key g;
      g
  in
  let stacks : (string, int ref) Hashtbl.t = Hashtbl.create 32 in
  let spans = ref 0 and points = ref 0 and n = ref 0 in
  let rec replay stack = function
    | [] -> Ok (List.length stack)
    | e :: rest ->
      incr n;
      (match e.ev with
       | `Open ->
         incr spans;
         let path =
           match stack with
           | [] -> frame_label e.cat e.name
           | parent :: _ -> parent.f_path ^ ";" ^ frame_label e.cat e.name
         in
         let fr =
           { f_id = e.id; f_cat = e.cat; f_name = e.name; f_open = e.t_ns;
             f_path = path; f_child_ns = 0 }
         in
         replay (fr :: stack) rest
       | `Point ->
         incr points;
         let count, _, _ = group e.cat e.name in
         incr count;
         replay stack rest
       | `Close ->
         (match stack with
          | [] ->
            Error
              (Printf.sprintf "close event for span %d with no span open" e.id)
          | fr :: stack' when fr.f_id = e.id ->
            let dur = e.t_ns - fr.f_open in
            let self = dur - fr.f_child_ns in
            let count, total, self_acc = group fr.f_cat fr.f_name in
            incr count;
            total := !total + dur;
            self_acc := !self_acc + self;
            (match Hashtbl.find_opt stacks fr.f_path with
             | Some r -> r := !r + self
             | None -> Hashtbl.add stacks fr.f_path (ref self));
            (match stack' with
             | parent :: _ -> parent.f_child_ns <- parent.f_child_ns + dur
             | [] -> ());
            replay stack' rest
          | fr :: _ ->
            Error
              (Printf.sprintf
                 "close event for span %d does not match innermost open span %d"
                 e.id fr.f_id)))
  in
  let* unclosed = replay [] events in
  let rows =
    Hashtbl.fold
      (fun (cat, name) (count, total, self) acc ->
        { cat; name; count = !count; total_ns = !total; self_ns = !self } :: acc)
      groups []
    |> List.sort (fun a b -> compare (a.cat, a.name) (b.cat, b.name))
  in
  let collapsed =
    Hashtbl.fold (fun path self acc -> (path, !self) :: acc) stacks []
    |> List.sort compare
  in
  Ok
    { p_events = !n; p_spans = !spans; p_points = !points;
      p_unclosed = unclosed; p_rows = rows; p_collapsed = collapsed }

let of_string text =
  let* events = parse_events text in
  of_events events

(* ---------- views ---------- *)

let events t = t.p_events
let spans t = t.p_spans
let points t = t.p_points
let unclosed t = t.p_unclosed
let rows t = t.p_rows

let to_json t =
  Json.Obj
    [ ("schema", Json.Str "rtic-profile/1");
      ("events", Json.Int t.p_events);
      ("spans", Json.Int t.p_spans);
      ("points", Json.Int t.p_points);
      ("unclosed", Json.Int t.p_unclosed);
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [ ("cat", Json.Str r.cat); ("name", Json.Str r.name);
                   ("count", Json.Int r.count);
                   ("total_ns", Json.Int r.total_ns);
                   ("self_ns", Json.Int r.self_ns) ])
             t.p_rows) ) ]

let to_collapsed t =
  t.p_collapsed
  |> List.map (fun (path, self) -> Printf.sprintf "%s %d\n" path self)
  |> String.concat ""

let pp ppf t =
  Format.fprintf ppf "trace: %d event(s), %d span(s), %d point(s)" t.p_events
    t.p_spans t.p_points;
  if t.p_unclosed > 0 then Format.fprintf ppf ", %d unclosed" t.p_unclosed;
  Format.fprintf ppf "@.";
  let by_self =
    List.sort
      (fun a b ->
        match compare b.self_ns a.self_ns with
        | 0 -> compare (a.cat, a.name) (b.cat, b.name)
        | c -> c)
      t.p_rows
  in
  Format.fprintf ppf "%12s %12s %7s  %s@." "SELF(us)" "TOTAL(us)" "COUNT"
    "SPAN";
  List.iter
    (fun r ->
      Format.fprintf ppf "%12.1f %12.1f %7d  %s@."
        (float_of_int r.self_ns /. 1e3)
        (float_of_int r.total_ns /. 1e3)
        r.count
        (frame_label r.cat r.name))
    by_self
