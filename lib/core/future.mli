(** Monitoring constraints with bounded-future operators by verdict delay.

    The paper's checker is past-only; its future-work remark observes that
    {e bounded} future operators ([next], [until], [eventually], [always]
    with finite upper bounds) can be handled by delaying the verdict: the
    truth of such a constraint at state [i] depends only on states within
    the constraint's {e horizon} ([Formula.future_reach]) after [τ_i], so
    once the clock passes [τ_i + horizon] the verdict at [i] is final.

    This monitor keeps a sliding buffer of recent states — bounded by the
    constraint's past window plus its future horizon, in the same
    window-bounded spirit as the bounded history encoding — and emits each
    position's verdict as soon as it becomes decidable. Admission requires
    the constraint to be typed, closed, monitorable, and to have {e finite
    past and future reach} (an unbounded [once] cannot be buffered; use the
    past-only checker for pure-past constraints, which has no such
    restriction). *)

type t
(** Monitor state. Functional: {!step} returns a new state. *)

type verdict = {
  index : int;      (** Position the verdict is about. *)
  time : int;       (** That position's timestamp. *)
  satisfied : bool;
}

val create :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def ->
  (t, string) result
(** Admit a constraint with (possibly) bounded-future operators. With
    [?metrics], {!step} records step counts, per-step wall-clock latency
    and unsatisfied-verdict counts (this monitor has no kernel, so no
    per-node gauges are registered). With [?tracer], each {!step} emits a
    [txn] root span with a [constraint] span around the verdicts that
    became decidable. *)

val horizon : t -> int
(** The verdict delay in ticks: a position is decided once the clock is more
    than this far past it. *)

val step : t -> time:int -> Rtic_relational.Database.t -> (t * verdict list, string) result
(** Feed the next committed state; returns the verdicts that became final,
    in increasing position order. A pure-past constraint (horizon 0) yields
    its verdict immediately. *)

val finish : t -> verdict list
(** End of monitoring: decide all still-pending positions against the finite
    trace seen so far (no further witnesses can arrive), in increasing
    position order. *)

val pending : t -> int
(** Number of positions whose verdict is still delayed. *)

val buffered_states : t -> int
(** Number of states currently buffered (bounded by the states within the
    past window + horizon). *)
