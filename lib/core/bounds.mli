(** Lookback windows and the space bound of the bounded history encoding.

    Each temporal subformula α with interval [I = [l,u]] only ever needs
    witness timestamps [t] with [now - t <= u]: once a witness falls out of
    that window it can never re-enter it (timestamps increase), so the
    incremental checker prunes it — this is the {e bounded history encoding}.
    When [u = ∞] a single (minimal) timestamp per valuation suffices.

    Consequently the number of (valuation, timestamp) pairs stored for α is
    at most [V(α) × (u + 1)] where [V(α)] is the number of valuations of α's
    free variables active inside the window — a quantity independent of the
    history length, which is the paper's central theorem and the subject of
    experiments E1 and E4. *)

val node_window : Rtic_mtl.Formula.t -> int option
(** The pruning horizon of one temporal node: [Some u] for a node with
    finite upper bound [u]; [None] when unbounded (min-compression applies
    instead). Raises [Invalid_argument] on non-temporal formulas. *)

val time_reach : Rtic_mtl.Formula.t -> int option
(** Re-export of {!Rtic_mtl.Formula.time_reach}: how far back in time the
    whole formula can see ([None] = unbounded). *)

val max_stored_timestamps_per_valuation : Rtic_mtl.Formula.t -> int
(** Upper bound on the timestamps stored per valuation for one temporal
    node, under an integer clock that advances by at least one tick per
    transaction: [u + 1] for a node with finite upper bound [u], [1] for an
    unbounded node (min-compression). *)
