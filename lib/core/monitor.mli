(** Multi-constraint monitoring over update traces.

    A monitor owns one {!Incremental} checker per registered constraint and
    drives them over a stream of transactions, collecting violation reports.
    It is the integration point an application uses: register constraints,
    feed transactions, receive violations.

    For benchmarking and testing, {!run_trace_naive} produces the same
    reports with the naive full-history evaluator — the two must agree on
    every trace (the correctness theorem; property-tested in the suite). *)

type report = {
  constraint_name : string;
  position : int;  (** 0-based index of the violating state. *)
  time : int;      (** Timestamp of the violating state. *)
}

type t
(** Monitor state: the current database plus every checker's state. *)

val create :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?pool:Pool.t ->
  ?config:Incremental.config ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def list ->
  (t, string) result
(** Admit all constraints (each must pass {!Incremental.create}) over an
    initially empty database. Constraint names must be distinct. With
    [?metrics], every checker's kernel registers into the shared recorder
    and {!step} additionally records per-transaction wall-clock latency and
    the violation count. With [?tracer], every {!step} emits a [txn] root
    span containing an [apply] span and one [constraint] span per checker
    (see {!Tracer}).

    With [?pool] of size > 1, the checkers are partitioned round-robin
    across the pool's domains ({!Fanout}) and every {!step} fans the
    transaction out to all shards, merging verdicts (and any error) back
    in registration order — reports, error strings and synced metrics are
    identical to the sequential run; per-constraint tracer spans are
    replaced by per-shard [shard] spans. A pool of size 1 is the
    sequential path, bit-for-bit. *)

val create_with :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?pool:Pool.t ->
  ?config:Incremental.config ->
  Rtic_relational.Database.t ->
  Rtic_mtl.Formula.def list ->
  (t, string) result
(** Like {!create} but starting from a given (pre-history) database. *)

val database : t -> Rtic_relational.Database.t
(** The current database state. *)

val parts : t -> Rtic_relational.Database.t * Incremental.t list
(** The database and the per-constraint checkers, in registration order.
    Used by the resilience layer ({!Supervisor}), which steps checkers
    individually so it can quarantine one without stopping the rest. *)

val fanout : t -> Fanout.t option
(** The parallel fan-out plan, when the monitor was created with a pool of
    size > 1. The resilience layer reuses it to step its checker shards in
    parallel with the same metrics synchronisation. *)

val of_parts :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  Rtic_relational.Database.t ->
  Incremental.t list ->
  t
(** Reassemble a monitor from {!parts}. The caller is responsible for the
    checkers matching the database's catalog; intended only for the
    resilience layer's checkpoint plumbing. *)

val step :
  t ->
  time:int ->
  Rtic_relational.Update.transaction ->
  (t * report list, string) result
(** Apply one transaction at the given commit time, check every constraint
    on the resulting state, and report the constraints it violates. *)

val space : t -> int
(** Total auxiliary space across all checkers ({!Incremental.space}). *)

val run_trace :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?pool:Pool.t ->
  ?config:Incremental.config ->
  Rtic_mtl.Formula.def list ->
  Rtic_temporal.Trace.t ->
  (report list, string) result
(** Run a whole trace through a fresh monitor; reports are ordered by
    position, then by constraint registration order. *)

val run_trace_naive :
  Rtic_mtl.Formula.def list ->
  Rtic_temporal.Trace.t ->
  (report list, string) result
(** The baseline: materialize the trace into a full history and evaluate
    every constraint at every position with {!Rtic_eval.Naive}. Produces
    reports in the same order as {!run_trace}. *)

val pp_report : Format.formatter -> report -> unit
(** Prints as [\[time\] constraint NAME violated at position P]. *)

(** {2 Checkpointing}

    A whole monitor — current database plus every checker's bounded history
    encoding — serializes to text and restores exactly
    (see {!Incremental.to_text}). Restoring and continuing a trace is
    observationally identical to never having stopped. *)

val to_text : t -> string
(** Serialize the monitor state. *)

val of_text :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?pool:Pool.t ->
  ?config:Incremental.config ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def list ->
  string ->
  (t, string) result
(** [of_text cat defs text] re-admits [defs] (same constraints, same order
    as when the checkpoint was written) and restores the saved state.
    Strict on corrupt input: see {!Incremental.of_text}. *)
