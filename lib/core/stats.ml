module String_map = Map.Make (String)

type t = {
  transactions : int;
  violations : int;
  by_constraint : int String_map.t;
  peak_space : int;
  first_time : int option;
  last_time : int option;
}

let empty =
  { transactions = 0;
    violations = 0;
    by_constraint = String_map.empty;
    peak_space = 0;
    first_time = None;
    last_time = None }

let observe t ~time ~space ~reports =
  let by_constraint =
    List.fold_left
      (fun m (r : Monitor.report) ->
        String_map.update r.constraint_name
          (function Some n -> Some (n + 1) | None -> Some 1)
          m)
      t.by_constraint reports
  in
  { transactions = t.transactions + 1;
    violations = t.violations + List.length reports;
    by_constraint;
    peak_space = max t.peak_space space;
    first_time = (match t.first_time with None -> Some time | some -> some);
    last_time = Some time }

let transactions t = t.transactions
let violations t = t.violations
let violations_by_constraint t = String_map.bindings t.by_constraint
let peak_space t = t.peak_space
let first_time t = t.first_time
let last_time t = t.last_time

let violation_rate t =
  if t.transactions = 0 then 0.0
  else float_of_int t.violations /. float_of_int t.transactions

let to_json ?metrics t =
  let opt_time = function
    | Some v -> Json.Int v
    | None -> Json.Null
  in
  let by_constraint =
    String_map.bindings t.by_constraint
    |> List.map (fun (name, n) ->
           Json.Obj [ ("constraint", Json.Str name); ("violations", Json.Int n) ])
  in
  let base =
    [ ("schema", Json.Str "rtic-stats/1");
      ("transactions", Json.Int t.transactions);
      ("violations", Json.Int t.violations);
      ("violation_rate", Json.Float (violation_rate t));
      ("first_time", opt_time t.first_time);
      ("last_time", opt_time t.last_time);
      ("peak_aux_space", Json.Int t.peak_space);
      ("by_constraint", Json.List by_constraint) ]
  in
  match metrics with
  | None -> Json.Obj base
  | Some m -> Json.Obj (base @ [ ("kernel", Metrics.to_json m) ])

let pp ppf t =
  Format.fprintf ppf "@[<v>transactions:    %d" t.transactions;
  (match t.first_time, t.last_time with
   | Some a, Some b -> Format.fprintf ppf "@,clock range:     %d .. %d (%d ticks)" a b (b - a)
   | _ -> ());
  Format.fprintf ppf "@,violations:      %d (%.3f per transaction)"
    t.violations (violation_rate t);
  Format.fprintf ppf "@,peak aux space:  %d stored pairs" t.peak_space;
  if not (String_map.is_empty t.by_constraint) then begin
    Format.fprintf ppf "@,by constraint:";
    String_map.iter
      (fun name n -> Format.fprintf ppf "@,  %-30s %d" name n)
      t.by_constraint
  end;
  Format.fprintf ppf "@]"
