(* The rtic-metrics/1 telemetry surface: a pure data snapshot of a
   running server plus its renderings — one JSON document (FORMATS.md §9)
   and one Prometheus text exposition. The server assembles a [snapshot]
   under its lock (Server.snapshot); everything here is pure, so the
   renderings and the parser are testable without a server. *)

type session = {
  name : string;
  transactions : int;
  violations : int;
  steps : int;
  last_time : int option;
  health : string;
  rates : (int * float) list;
  latency : Metrics.latency_summary option;
  buckets : Metrics.bucket list;
  gauges : (string * int) list;
  counters : (string * int) list;
}

type snapshot = {
  sessions : session list;
  session_count : int;
  queued : int;
  max_pending : int;
  stopped : bool;
  transactions : int;
  rates : (int * float) list;
}

let schema = "rtic-metrics/1"

(* ---------------- JSON rendering ---------------- *)

let rates_json rates =
  Json.Obj
    (List.map (fun (w, r) -> (Printf.sprintf "%ds" w, Json.Float r)) rates)

let latency_json = function
  | None -> Json.Null
  | Some (l : Metrics.latency_summary) ->
    Json.Obj
      [ ("count", Json.Int l.count);
        ("total_ns", Json.Float l.total_ns);
        ("min_ns", Json.Float l.min_ns);
        ("mean_ns", Json.Float l.mean_ns);
        ("p50_ns", Json.Float l.p50_ns);
        ("p95_ns", Json.Float l.p95_ns);
        ("p99_ns", Json.Float l.p99_ns);
        ("max_ns", Json.Float l.max_ns) ]

(* Buckets are rendered cumulatively (Prometheus-style): each entry is
   "count of samples at or below le_ns", so consumers need no knowledge
   of the bucket scheme to compute quantiles. *)
let buckets_json buckets =
  let _, rev =
    List.fold_left
      (fun (cum, acc) (b : Metrics.bucket) ->
        let cum = cum + b.n in
        ( cum,
          Json.Obj [ ("le_ns", Json.Int b.hi_ns); ("count", Json.Int cum) ]
          :: acc ))
      (0, []) buckets
  in
  Json.List (List.rev rev)

let int_bag_json bag =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) bag)

let session_json s =
  Json.Obj
    [ ("session", Json.Str s.name);
      ("health", Json.Str s.health);
      ("transactions", Json.Int s.transactions);
      ("violations", Json.Int s.violations);
      ("steps", Json.Int s.steps);
      ("last_time",
       match s.last_time with Some t -> Json.Int t | None -> Json.Null);
      ("rates", rates_json s.rates);
      ("gauges", int_bag_json s.gauges);
      ("counters", int_bag_json s.counters);
      ("latency_ns", latency_json s.latency);
      ("latency_buckets", buckets_json s.buckets) ]

let to_json snap =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("server",
       Json.Obj
         [ ("sessions", Json.Int snap.session_count);
           ("queued", Json.Int snap.queued);
           ("max_pending", Json.Int snap.max_pending);
           ("stopped", Json.Bool snap.stopped);
           ("transactions", Json.Int snap.transactions);
           ("rates", rates_json snap.rates) ]);
      ("sessions", Json.List (List.map session_json snap.sessions)) ]

(* ---------------- JSON parsing ---------------- *)

let ( let* ) r f = Result.bind r f

let fail fmt = Printf.ksprintf (fun m -> Error ("rtic-metrics: " ^ m)) fmt

let get_int what j k =
  match Option.bind (Json.member k j) Json.to_int with
  | Some n -> Ok n
  | None -> fail "%s: missing integer field %s" what k

let get_str what j k =
  match Option.bind (Json.member k j) Json.to_str with
  | Some s -> Ok s
  | None -> fail "%s: missing string field %s" what k

let rates_of_json j =
  match j with
  | Some (Json.Obj fields) ->
    Ok
      (List.filter_map
         (fun (k, v) ->
           let w =
             if String.length k > 1 && k.[String.length k - 1] = 's' then
               int_of_string_opt (String.sub k 0 (String.length k - 1))
             else None
           in
           match (w, Json.to_float v) with
           | Some w, Some r -> Some (w, r)
           | _ -> None)
         fields)
  | _ -> Ok []

let bag_of_json j =
  match j with
  | Some (Json.Obj fields) ->
    List.filter_map
      (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v))
      fields
  | _ -> []

let latency_of_json j =
  match j with
  | Some (Json.Obj _ as l) ->
    let f k = Option.bind (Json.member k l) Json.to_float in
    (match
       ( Option.bind (Json.member "count" l) Json.to_int,
         f "total_ns", f "min_ns", f "mean_ns", f "p50_ns", f "p95_ns",
         f "p99_ns", f "max_ns" )
     with
     | ( Some count, Some total_ns, Some min_ns, Some mean_ns, Some p50_ns,
         Some p95_ns, Some p99_ns, Some max_ns ) ->
       Ok
         (Some
            { Metrics.count; total_ns; min_ns; mean_ns; p50_ns; p95_ns;
              p99_ns; max_ns })
     | _ -> fail "malformed latency_ns object")
  | _ -> Ok None

(* Cumulative entries back to per-bucket counts; each bucket's lower
   bound is one past the previous bucket's upper bound (0 for the first),
   which brackets the true bucket without knowing the scheme. *)
let buckets_of_json j =
  match j with
  | Some (Json.List items) ->
    let _, _, rev =
      List.fold_left
        (fun (prev_le, prev_cum, acc) item ->
          match
            ( Option.bind (Json.member "le_ns" item) Json.to_int,
              Option.bind (Json.member "count" item) Json.to_int )
          with
          | Some le, Some cum ->
            ( le,
              cum,
              { Metrics.lo_ns = prev_le + 1; hi_ns = le; n = cum - prev_cum }
              :: acc )
          | _ -> (prev_le, prev_cum, acc))
        (-1, 0, []) items
    in
    List.rev rev
  | _ -> []

let session_of_json j =
  let what = "session" in
  let* name = get_str what j "session" in
  let* health = get_str what j "health" in
  let* transactions = get_int what j "transactions" in
  let* violations = get_int what j "violations" in
  let* steps = get_int what j "steps" in
  let last_time = Option.bind (Json.member "last_time" j) Json.to_int in
  let* rates = rates_of_json (Json.member "rates" j) in
  let* latency = latency_of_json (Json.member "latency_ns" j) in
  Ok
    { name;
      health;
      transactions;
      violations;
      steps;
      last_time;
      rates;
      latency;
      buckets = buckets_of_json (Json.member "latency_buckets" j);
      gauges = bag_of_json (Json.member "gauges" j);
      counters = bag_of_json (Json.member "counters" j) }

let of_json j =
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_str with
    | Some s when s = schema -> Ok ()
    | Some s -> fail "unexpected schema %s" s
    | None -> fail "missing schema field"
  in
  let* srv =
    match Json.member "server" j with
    | Some s -> Ok s
    | None -> fail "missing server section"
  in
  let* session_count = get_int "server" srv "sessions" in
  let* queued = get_int "server" srv "queued" in
  let* max_pending = get_int "server" srv "max_pending" in
  let* transactions = get_int "server" srv "transactions" in
  let stopped = Json.member "stopped" srv = Some (Json.Bool true) in
  let* rates = rates_of_json (Json.member "rates" srv) in
  let* sessions =
    match Json.member "sessions" j with
    | Some (Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* s = session_of_json item in
          Ok (s :: acc))
        (Ok []) items
      |> Result.map List.rev
    | _ -> fail "missing sessions list"
  in
  Ok { sessions; session_count; queued; max_pending; stopped; transactions;
       rates }

let of_string text =
  let* j = Json.of_string text in
  of_json j

(* ---------------- Prometheus text exposition ---------------- *)

(* Label values escape backslash, double-quote and newline; metric-name
   fragments built from gauge keys are sanitized to [a-zA-Z0-9_]. *)
let escape_label v =
  let b = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let sanitize_name n =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    n

let fnum f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_prometheus snap =
  let b = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let family name typ help = line "# HELP %s %s" name help; line "# TYPE %s %s" name typ in
  family "rtic_up" "gauge" "1 while the server accepts requests, 0 once shutdown executed.";
  line "rtic_up %d" (if snap.stopped then 0 else 1);
  family "rtic_sessions" "gauge" "Open sessions.";
  line "rtic_sessions %d" snap.session_count;
  family "rtic_queued_requests" "gauge"
    "Parsed requests awaiting execution, across all connections.";
  line "rtic_queued_requests %d" snap.queued;
  family "rtic_max_pending" "gauge" "Shared admission budget (--max-pending).";
  line "rtic_max_pending %d" snap.max_pending;
  family "rtic_transactions_total" "counter"
    "Transactions executed, across all sessions including closed ones.";
  line "rtic_transactions_total %d" snap.transactions;
  family "rtic_txn_rate" "gauge"
    "Server transactions per second over a sliding window.";
  List.iter
    (fun (w, r) -> line "rtic_txn_rate{window=\"%ds\"} %s" w (fnum r))
    snap.rates;
  if snap.sessions <> [] then begin
    let per name typ help sample =
      family name typ help;
      List.iter
        (fun s ->
          match sample s with
          | Some v ->
            line "%s{session=\"%s\"} %s" name (escape_label s.name) v
          | None -> ())
        snap.sessions
    in
    per "rtic_session_transactions_total" "counter"
      "Transactions checked in this session."
      (fun s -> Some (string_of_int s.transactions));
    per "rtic_session_violations_total" "counter"
      "Constraint violations reported in this session."
      (fun s -> Some (string_of_int s.violations));
    per "rtic_session_steps_total" "counter"
      "Transactions accepted by the session's supervisor (its WAL clock)."
      (fun s -> Some (string_of_int s.steps));
    per "rtic_session_health" "gauge"
      "1 ok, 2 quarantined, 3 degraded."
      (fun s ->
        Some
          (match s.health with
           | "ok" -> "1"
           | "quarantined" -> "2"
           | _ -> "3"));
    family "rtic_session_txn_rate" "gauge"
      "Session transactions per second over a sliding window.";
    List.iter
      (fun s ->
        List.iter
          (fun (w, r) ->
            line "rtic_session_txn_rate{session=\"%s\",window=\"%ds\"} %s"
              (escape_label s.name) w (fnum r))
          s.rates)
      snap.sessions;
    (* one fixed-name family per gauge key present in any session *)
    let gauge_keys =
      List.sort_uniq String.compare
        (List.concat_map (fun s -> List.map fst s.gauges) snap.sessions)
    in
    List.iter
      (fun key ->
        let name = "rtic_session_" ^ sanitize_name key in
        per name "gauge" (Printf.sprintf "Per-session gauge %s." key)
          (fun s ->
            Option.map string_of_int (List.assoc_opt key s.gauges)))
      gauge_keys;
    if List.exists (fun s -> s.counters <> []) snap.sessions then begin
      family "rtic_session_events_total" "counter"
        "Named supervisor event counters (WAL appends, checkpoints, ...).";
      List.iter
        (fun s ->
          List.iter
            (fun (k, v) ->
              line "rtic_session_events_total{session=\"%s\",event=\"%s\"} %d"
                (escape_label s.name) (escape_label k) v)
            s.counters)
        snap.sessions
    end;
    if List.exists (fun s -> s.latency <> None) snap.sessions then begin
      family "rtic_session_txn_latency_ns" "histogram"
        "Per-transaction check latency, nanoseconds (log-bucket).";
      List.iter
        (fun s ->
          match s.latency with
          | None -> ()
          | Some l ->
            let cum = ref 0 in
            List.iter
              (fun (bk : Metrics.bucket) ->
                cum := !cum + bk.n;
                line
                  "rtic_session_txn_latency_ns_bucket{session=\"%s\",le=\"%d\"} %d"
                  (escape_label s.name) bk.hi_ns !cum)
              s.buckets;
            line
              "rtic_session_txn_latency_ns_bucket{session=\"%s\",le=\"+Inf\"} %d"
              (escape_label s.name) l.count;
            line "rtic_session_txn_latency_ns_sum{session=\"%s\"} %s"
              (escape_label s.name) (fnum l.total_ns);
            line "rtic_session_txn_latency_ns_count{session=\"%s\"} %d"
              (escape_label s.name) l.count)
        snap.sessions
    end
  end;
  Buffer.contents b
