(** Write-ahead transaction log — the durability half of the resilience
    layer ([rtic-wal/1] and [rtic-wal/2], FORMATS.md §5).

    A WAL file is an append-only log of the transactions a {!Supervisor}
    has {e accepted}: a two-line text header naming the format and the
    global index of the first record, then one record per transaction —
    text records in [rtic-wal/1], length-prefixed binary frames in
    [rtic-wal/2] (each frame carries the {e same} body bytes a v1 record
    does, so the formats convert losslessly; [rtic wal dump] renders
    either back to v1 text). Each record carries a CRC-32 of its own body,
    so recovery can tell a record that was written completely from one
    torn by a crash mid-write or damaged by bit rot.

    Recovery is {e valid-prefix} in both formats: records are replayed
    from the front until the first record that is structurally malformed,
    fails its CRC, or is cut short by the end of the file (a torn final
    write — an unterminated line in v1, a truncated length prefix or body
    in v2). Everything before that point is trusted; everything from it on
    is dropped and reported, never half-applied.

    This module is pure — it encodes and decodes strings. All file I/O is
    done by the {!Supervisor} through a {!Faults.fs} record so tests can
    inject write failures and corruption deterministically. *)

val version_line : string
(** ["rtic-wal/1"] — the first line of every v1 WAL file. *)

val version_line_v2 : string
(** ["rtic-wal/2"] — the first line of every v2 WAL file. The v2 header
    is still text (the same two lines), so header-protection logic is
    format-agnostic; only the records after it are binary. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, reflected) of a string, in [0, 0xFFFFFFFF]. *)

val header : ?version:int -> start:int -> unit -> string
(** The two header lines ([rtic-wal/1] or [rtic-wal/2], then [start N]),
    newline-terminated. [version] is 1 (default) or 2. [start] is the
    global index of the first record in the file; it moves forward when
    the {!Supervisor} compacts the log after a checkpoint. *)

val encode_record :
  ?version:int -> time:int -> Rtic_relational.Update.transaction -> string
(** One record. In v1 (default), newline-terminated text: a
    [txn <time> <nops> <crc>] line followed by one [+rel(...)]/[-rel(...)]
    line per update (trace-file op syntax). In v2, a binary frame: 4-byte
    little-endian body length, 4-byte little-endian CRC-32 of the body,
    then the body ([<time>\n] followed by the op lines — the bytes the v1
    CRC covers, so the checksum is identical across formats). Either way
    the CRC covers the time and the op lines, so a flipped bit anywhere in
    the record is detected. *)

val parse_op : string -> (Rtic_relational.Update.op, string) result
(** Parse one [+rel(...)]/[-rel(...)] op line — the record op syntax, also
    used verbatim by the [rtic-serve/1] protocol's [txn] request body
    ({!Server}, FORMATS.md §7). *)

val encode :
  ?version:int ->
  start:int -> (int * Rtic_relational.Update.transaction) list -> string
(** A whole WAL file in the given format (1, the default, or 2):
    {!header} plus the given [(time, txn)] records. Used for compaction
    and repair; [recover (encode ~version ~start rs)] yields exactly [rs]
    with no torn tail, in either format. *)

type recovery = {
  start : int;  (** Global index of the first record in the file. *)
  records : (int * Rtic_relational.Update.transaction) list;
      (** The valid prefix, in file order; record [i] of this list has
          global index [start + i]. *)
  torn : string option;
      (** [Some reason] when a suffix of the file was dropped (torn tail,
          CRC mismatch, malformed record); [None] for a clean log. *)
  version : int;  (** The file's format: 1 or 2. *)
}

val recover : string -> (recovery, string) result
(** Decode a WAL file, dispatching on its header line ([rtic-wal/1] and
    [rtic-wal/2] logs are both readable). A damaged or missing {e header}
    is a hard [Error] (the header is written once, atomically, so it
    cannot be torn by an append); damage anywhere after it is reported via
    [torn] with the valid prefix in [records]. *)
