(** Write-ahead transaction log — the durability half of the resilience
    layer ([rtic-wal/1], FORMATS.md §5).

    A WAL file is an append-only text log of the transactions a
    {!Supervisor} has {e accepted}: a two-line header naming the format and
    the global index of the first record, then one record per transaction.
    Each record carries a CRC-32 of its own body, so recovery can tell a
    record that was written completely from one torn by a crash mid-write
    or damaged by bit rot.

    Recovery is {e valid-prefix}: records are replayed from the front until
    the first record that is structurally malformed, fails its CRC, is cut
    short by the end of the file, or sits in a file that does not end in a
    newline (a torn final write). Everything before that point is trusted;
    everything from it on is dropped and reported, never half-applied.

    This module is pure — it encodes and decodes strings. All file I/O is
    done by the {!Supervisor} through a {!Faults.fs} record so tests can
    inject write failures and corruption deterministically. *)

val version_line : string
(** ["rtic-wal/1"] — the first line of every WAL file. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, reflected) of a string, in [0, 0xFFFFFFFF]. *)

val header : start:int -> string
(** The two header lines ([rtic-wal/1] and [start N]), newline-terminated.
    [start] is the global index of the first record in the file; it moves
    forward when the {!Supervisor} compacts the log after a checkpoint. *)

val encode_record :
  time:int -> Rtic_relational.Update.transaction -> string
(** One record, newline-terminated: a [txn <time> <nops> <crc>] line
    followed by one [+rel(...)]/[-rel(...)] line per update (trace-file op
    syntax). The CRC covers the time and the op lines, so a flipped bit
    anywhere in the record is detected. *)

val parse_op : string -> (Rtic_relational.Update.op, string) result
(** Parse one [+rel(...)]/[-rel(...)] op line — the record op syntax, also
    used verbatim by the [rtic-serve/1] protocol's [txn] request body
    ({!Server}, FORMATS.md §7). *)

val encode :
  start:int -> (int * Rtic_relational.Update.transaction) list -> string
(** A whole WAL file: {!header} plus the given [(time, txn)] records.
    Used for compaction and repair; [recover (encode ~start rs)] yields
    exactly [rs] with no torn tail. *)

type recovery = {
  start : int;  (** Global index of the first record in the file. *)
  records : (int * Rtic_relational.Update.transaction) list;
      (** The valid prefix, in file order; record [i] of this list has
          global index [start + i]. *)
  torn : string option;
      (** [Some reason] when a suffix of the file was dropped (torn tail,
          CRC mismatch, malformed record); [None] for a clean log. *)
}

val recover : string -> (recovery, string) result
(** Decode a WAL file. A damaged or missing {e header} is a hard [Error]
    (the header is written once, atomically, so it cannot be torn by an
    append); damage anywhere after it is reported via [torn] with the
    valid prefix in [records]. *)
