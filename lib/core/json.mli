(** Minimal JSON tree, emitter and strict parser.

    Used for the machine-readable observability surface ([rtic check --stats
    --json], the [BENCH_*.json] artifacts) without adding a dependency. The
    emitter escapes control characters; non-finite floats become [null]. The
    parser is strict RFC-8259: it rejects trailing garbage, raw control
    characters in strings, and malformed escapes, so it doubles as a
    validator ([rtic lint-json]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize. [~indent:true] pretty-prints with two-space indentation. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing key or non-object. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_list : t -> t list option
val to_str : t -> string option
