(** Round-robin fan-out plan for per-constraint checkers.

    {!Monitor} and {!Supervisor} run one {!Incremental} checker per
    constraint; with a {!Pool} of size N > 1 the checkers are partitioned
    round-robin into [min N count] shards (checker [i] lands in shard
    [i mod nshards]) and each shard is stepped by one domain.

    Because {!Metrics.t} is not thread-safe, each shard records into a
    {e private} recorder created here; after every parallel step the
    coordinator calls {!sync}, which copies every shard gauge row onto its
    sequential-order slot in the main recorder and overwrites the shared
    step/cache counters with the shard sums — making the main recorder's
    stats document identical to a sequential run's (latencies excepted;
    they are timing). *)

type t

val make : ?metrics:Metrics.t -> Pool.t -> int -> t
(** [make ?metrics pool n] plans a fan-out of [n] checkers over the pool.
    [?metrics] is the {e main} recorder the caller reports from; when
    given, one private recorder per shard is created for the checkers to
    record into. Callers should only build a plan when [Pool.size pool > 1]
    and [n > 1] — otherwise the sequential path is both correct and
    cheaper. *)

val pool : t -> Pool.t
val nshards : t -> int

val groups : t -> int array array
(** Checker indices per shard, ascending within each shard. *)

val shard_metrics : t -> int -> Metrics.t option
(** The private recorder checker [i] must be created with ([None] when the
    plan has no main recorder). *)

val register : t -> int -> string list -> unit
(** [register t i names] — call right after creating checker [i] (which
    appended [names] rows to its shard recorder): appends the same rows to
    the main recorder, in checker order, and remembers the row mapping for
    {!sync}. No-op without a main recorder. *)

val sync : t -> unit
(** Copy every shard gauge row to the main recorder and overwrite its
    step/cache counters with the shard sums. Call after each parallel
    step, from the coordinator only. *)
