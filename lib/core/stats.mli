(** Run statistics for monitoring sessions.

    A lightweight aggregator an application (or the CLI's [--stats] flag)
    threads through a monitoring run: it accumulates per-constraint violation
    counts, the peak auxiliary space observed, transaction counts, and clock
    coverage, and renders a one-screen summary. Purely functional. *)

type t
(** Accumulated statistics. *)

val empty : t
(** No observations yet. *)

val observe :
  t ->
  time:int ->
  space:int ->
  reports:Monitor.report list ->
  t
(** Record one processed transaction: its commit time, the monitor's
    auxiliary space after the step, and the violations it raised. *)

val transactions : t -> int
(** Number of transactions observed. *)

val violations : t -> int
(** Total violations observed. *)

val violations_by_constraint : t -> (string * int) list
(** Violation counts per constraint name, sorted by name. *)

val peak_space : t -> int
(** Largest auxiliary space seen after any step. *)

val first_time : t -> int option
(** Commit time of the first observed transaction. *)

val last_time : t -> int option
(** Commit time of the last observed transaction. *)

val violation_rate : t -> float
(** [violations / transactions] (0 when nothing was observed). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable summary. *)

val to_json : ?metrics:Metrics.t -> t -> Json.t
(** The [rtic-stats/1] document emitted by [rtic check --stats --json]
    (schema in FORMATS.md). With [?metrics], a [kernel] section is included
    ({!Metrics.to_json}): cumulative counters, step-latency percentiles and
    per-temporal-node gauges. *)
