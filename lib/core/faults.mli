(** Deterministic fault injection for the resilience layer.

    Two facilities, both seeded and reproducible:

    - a {b swappable file-ops record} ({!fs}): every byte the
      {!Supervisor} reads or writes goes through one of these, so tests
      can run against a real directory ({!real_fs}), an in-memory
      filesystem ({!mem_fs}, hermetic and fast), or a wrapper that fails
      writes at seeded points ({!with_write_failures});
    - {b seeded fault plans} ({!plan}): deterministic corruptions of a
      supervisor state directory — bit-flip a checkpoint, truncate the WAL
      mid-record, flip a WAL byte — used by the crash-recovery-equivalence
      property ([test/test_resilience.ml]) and the chaos soak
      ([tools/soak.ml --chaos]).

    Nothing here is random at run time: all variability derives from the
    caller's seed via a private xorshift64* stream, so every failure a
    chaos run finds is replayable from its seed. *)

(** A persistent append handle, as returned by {!field-open_append}: the
    group-commit durability point. [h_write] appends bytes (buffered),
    [h_sync] makes everything written so far durable (fsync on the real
    filesystem), [h_close] releases the handle and never fails. A real
    handle keeps one file descriptor open across calls, so it must be
    closed before the file is renamed over and reopened after. *)
type handle = {
  h_write : string -> (unit, string) result;
  h_sync : unit -> (unit, string) result;
  h_close : unit -> unit;
}

(** A minimal filesystem interface. All functions report failures as
    [Error message]; none raises. Paths are plain strings; directories are
    flat (the supervisor never nests below its state dir). *)
type fs = {
  read_file : string -> (string, string) result;
  write_file : string -> string -> (unit, string) result;
      (** Create or truncate, then write the whole contents. *)
  append_file : string -> string -> (unit, string) result;
      (** Append to (creating if absent) a file. *)
  rename : string -> string -> (unit, string) result;
      (** [rename src dst] atomically replaces [dst]. *)
  remove : string -> (unit, string) result;
  list_dir : string -> (string list, string) result;
      (** Basenames of the files in a directory, sorted. *)
  mkdir : string -> (unit, string) result;
      (** Create a directory; succeeds if it already exists. *)
  exists : string -> bool;
  sync : string -> (unit, string) result;
      (** Force the file's contents durable (fsync). A no-op on
          {!mem_fs}, where abandoning the instance {e is} the crash. *)
  open_append : string -> (handle, string) result;
      (** Open a persistent append {!handle} (creating the file if
          absent). *)
}

val real_fs : fs
(** The actual filesystem. [read_file] reads to end-of-file (robust
    against files that shrink mid-read and against special files whose
    reported length is 0) and closes its channel on every path, including
    errors. *)

val mem_fs : unit -> fs
(** A fresh, empty in-memory filesystem (a path → growable-buffer table,
    so appends are amortized O(appended bytes), not O(file size)). Each
    call returns an independent instance; handy for hermetic tests and for
    simulating a crash by simply abandoning the supervisor that wrote to
    it. *)

val with_write_failures : seed:int -> rate:float -> fs -> fs
(** Wrap [fs] so that each [write_file]/[append_file]/[rename]/[sync]/
    [open_append] call — and each write or sync through a handle obtained
    from the wrapper — fails with ["injected write failure"] with
    probability [rate], deterministic in [seed] and the call sequence.
    Reads are never failed. *)

(** {2 Corruption primitives} *)

val bit_flip_file :
  fs -> seed:int -> ?min_pos:int -> string -> (string, string) result
(** Flip one seeded bit at or after byte [min_pos] (default 0); returns a
    description of what was flipped. Errors if the file is missing or has
    nothing past the protected prefix. *)

val truncate_file_tail :
  fs -> seed:int -> ?max_bytes:int -> ?keep:int -> string ->
  (string, string) result
(** Drop between 1 and [max_bytes] (default 80) seeded bytes from the end
    of the file, never cutting into the first [keep] bytes (default 1) —
    the shape a torn final write leaves behind. Returns a description. *)

val perturb_times :
  seed:int -> rate:float -> (int * 'a) list -> (int * 'a) list
(** Break clock monotonicity: each timestamped entry after the first is,
    with probability [rate], re-stamped at or before its predecessor's
    time (a clock regression). Deterministic in [seed]. *)

(** {2 Fault plans}

    A plan is one crash-site shape applied to a state directory. The
    caller points the plan at the concrete WAL file and checkpoint files
    (newest first) so this module stays ignorant of the directory
    layout. *)

type plan =
  | Kill  (** Lose only the in-memory state; touch no file. *)
  | Flip_checkpoint  (** Flip one bit of the newest checkpoint. *)
  | Torn_wal  (** Truncate the WAL inside its last record(s). *)
  | Flip_wal  (** Flip one bit somewhere in the WAL body. *)

val all_plans : plan list

val plan_name : plan -> string

val apply_plan :
  fs ->
  seed:int ->
  wal:string ->
  checkpoints:string list ->
  plan ->
  (string, string) result
(** Apply one plan to the given files ([checkpoints] newest first);
    returns a human-readable description of the damage done. A plan whose
    target is absent (e.g. [Flip_checkpoint] with no checkpoints) degrades
    to [Kill] and says so. *)
