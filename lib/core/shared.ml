module Database = Rtic_relational.Database
module Update = Rtic_relational.Update
module Trace = Rtic_temporal.Trace
module Formula = Rtic_mtl.Formula
module Rewrite = Rtic_mtl.Rewrite
module Safety = Rtic_mtl.Safety
module Closure = Rtic_mtl.Closure
module Valrel = Rtic_eval.Valrel
module Fo = Rtic_eval.Fo

type t = {
  names : string list;  (* registration order, aligned with kernel roots *)
  kernel : Kernel.t;
  db : Database.t;
  count : int;
  last_time : int option;
  metrics : Metrics.t option;
  tracer : Tracer.t option;
}

let ( let* ) r f = Result.bind r f

let create ?metrics ?tracer ?(config = Incremental.default_config) cat defs =
  let names = List.map (fun (d : Formula.def) -> d.name) defs in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then Error "duplicate constraint names"
  else
    let* norms =
      List.fold_left
        (fun acc (d : Formula.def) ->
          let* acc = acc in
          let* () = Safety.monitorable cat d in
          if not (Formula.past_only d.body) then
            Error
              (Printf.sprintf
                 "constraint %s uses future operators; the shared monitor is \
                  past-only"
                 d.name)
          else Ok (Rewrite.normalize d.body :: acc))
        (Ok []) defs
      |> Result.map List.rev
    in
    Ok
      { names;
        kernel = Kernel.create ?metrics ?tracer ~root_names:names config norms;
        db = Database.create cat;
        count = 0;
        last_time = None;
        metrics;
        tracer }

let step m ~time txn =
  match m.last_time with
  | Some t0 when time <= t0 ->
    Error (Printf.sprintf "non-increasing timestamp: %d after %d" time t0)
  | _ ->
    Tracer.span m.tracer ~cat:"txn" ~arg:(string_of_int time) @@ fun () ->
    let t0 =
      match m.metrics with None -> 0.0 | Some _ -> Unix.gettimeofday ()
    in
    let* db =
      Tracer.span m.tracer ~cat:"apply" (fun () -> Update.apply m.db txn)
    in
    (try
       let kernel, results = Kernel.step m.kernel ~time db in
       let reports =
         List.filter_map
           (fun (name, v) ->
             if Valrel.holds v then None
             else
               Some
                 { Monitor.constraint_name = name;
                   position = m.count;
                   time })
           (List.combine m.names results)
       in
       (match m.metrics with
        | None -> ()
        | Some mx ->
          Metrics.record_latency mx (Unix.gettimeofday () -. t0);
          Metrics.add_violations mx (List.length reports));
       Ok
         ( { m with kernel; db; count = m.count + 1; last_time = Some time },
           reports )
     with Fo.Error msg -> Error msg)

let run_trace ?metrics ?tracer ?config defs (tr : Trace.t) =
  let* m =
    create ?metrics ?tracer ?config (Database.catalog tr.Trace.init) defs
  in
  let m = { m with db = tr.Trace.init } in
  let* _, reports =
    List.fold_left
      (fun acc (time, txn) ->
        let* m, out = acc in
        let* m, rs = step m ~time txn in
        Ok (m, out @ rs))
      (Ok (m, []))
      tr.Trace.steps
  in
  Ok reports

let space m = Kernel.space m.kernel
let shared_nodes m = Kernel.node_count m.kernel

let unshared_nodes m =
  List.fold_left
    (fun acc root -> acc + Closure.count (Closure.build root))
    0
    (Kernel.roots m.kernel)
