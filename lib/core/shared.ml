module Database = Rtic_relational.Database
module Update = Rtic_relational.Update
module Trace = Rtic_temporal.Trace
module Formula = Rtic_mtl.Formula
module Rewrite = Rtic_mtl.Rewrite
module Safety = Rtic_mtl.Safety
module Closure = Rtic_mtl.Closure
module Pretty = Rtic_mtl.Pretty
module Valrel = Rtic_eval.Valrel
module Fo = Rtic_eval.Fo

(* One shard of a parallel run: a subset of the constraints, whole
   sharing-components at a time, with its own kernel and (when the run is
   instrumented) its own private metrics recorder. *)
type part = {
  p_indices : int array;  (* global constraint indices, ascending *)
  p_metrics : Metrics.t option;
  p_slots : int array;  (* shard node j -> main-recorder row; [||] bare *)
}

type body =
  | Single of Kernel.t
  | Sharded of {
      pool : Pool.t;
      parts : part array;
      kernels : Kernel.t array;  (* aligned with [parts] *)
    }

type t = {
  names : string list;  (* registration order *)
  body : body;
  db : Database.t;
  count : int;
  last_time : int option;
  metrics : Metrics.t option;
  tracer : Tracer.t option;
}

let ( let* ) r f = Result.bind r f

module Fmap = Map.Make (struct
  type t = Formula.t

  let compare = Formula.compare
end)

(* Sharing components: constraints i and j are connected iff their
   temporal closures intersect (share an auxiliary relation). Keeping a
   component within one shard preserves the sharing optimization — and
   with it the exact per-node statistics of the sequential run: every
   auxiliary relation is still maintained exactly once. Returns the
   components as index lists, ordered by their smallest member. *)
let components norms =
  let n = List.length norms in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  let seen = ref Fmap.empty in
  List.iteri
    (fun i norm ->
      Array.iter
        (fun f ->
          match Fmap.find_opt f !seen with
          | Some j -> union i j
          | None -> seen := Fmap.add f i !seen)
        (Closure.nodes (Closure.build norm)))
    norms;
  let tbl = Hashtbl.create 8 in
  for i = n - 1 downto 0 do
    let r = find i in
    Hashtbl.replace tbl r
      (i :: Option.value ~default:[] (Hashtbl.find_opt tbl r))
  done;
  Hashtbl.fold (fun r members acc -> (r, members) :: acc) tbl []
  |> List.sort compare
  |> List.map snd

(* Exactly the combination Kernel.create performs — the global closure
   built here must enumerate the same nodes in the same order as the
   sequential run's kernel, because its order is the main recorder's
   gauge-row order. *)
let combined_closure norms =
  Closure.build
    (List.fold_left (fun acc f -> Formula.And (acc, f)) Formula.True norms)

let build_sharded ?metrics pool config names norms =
  let comps = components norms in
  let k = min (Pool.size pool) (List.length comps) in
  if k < 2 then None
  else begin
    let names_arr = Array.of_list names in
    let norms_arr = Array.of_list norms in
    (* The main recorder gets the global node rows up front, in the order
       the sequential single-kernel run would have registered them. *)
    let reg =
      Option.map
        (fun main ->
          let gcl = combined_closure norms in
          let gnames =
            Array.to_list (Array.map Pretty.to_string (Closure.nodes gcl))
          in
          (gcl, Metrics.register_nodes main gnames))
        metrics
    in
    let groups = Array.make k [] in
    List.iteri
      (fun c members -> groups.(c mod k) <- List.rev_append members groups.(c mod k))
      comps;
    let parts_kernels =
      Array.map
        (fun members ->
          let idx = Array.of_list (List.sort compare members) in
          let p_metrics = Option.map (fun _ -> Metrics.create ()) metrics in
          let kernel =
            Kernel.create ?metrics:p_metrics
              ~root_names:(Array.to_list (Array.map (fun i -> names_arr.(i)) idx))
              config
              (Array.to_list (Array.map (fun i -> norms_arr.(i)) idx))
          in
          let p_slots =
            match reg with
            | None -> [||]
            | Some (gcl, base) ->
              Array.map
                (fun f -> base + Closure.id_exn gcl f)
                (Kernel.node_formulas kernel)
          in
          ({ p_indices = idx; p_metrics; p_slots }, kernel))
        groups
    in
    Some
      (Sharded
         { pool;
           parts = Array.map fst parts_kernels;
           kernels = Array.map snd parts_kernels })
  end

let create ?metrics ?tracer ?pool ?(config = Incremental.default_config) cat
    defs =
  let names = List.map (fun (d : Formula.def) -> d.name) defs in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then Error "duplicate constraint names"
  else
    let* norms =
      List.fold_left
        (fun acc (d : Formula.def) ->
          let* acc = acc in
          let* () = Safety.monitorable cat d in
          if not (Formula.past_only d.body) then
            Error
              (Printf.sprintf
                 "constraint %s uses future operators; the shared monitor is \
                  past-only"
                 d.name)
          else Ok (Rewrite.normalize d.body :: acc))
        (Ok []) defs
      |> Result.map List.rev
    in
    let body =
      match pool with
      | Some p when Pool.size p > 1 && List.length defs > 1 ->
        (match build_sharded ?metrics p config names norms with
         | Some body -> body
         | None ->
           Single (Kernel.create ?metrics ?tracer ~root_names:names config norms))
      | _ ->
        Single (Kernel.create ?metrics ?tracer ~root_names:names config norms)
    in
    Ok
      { names;
        body;
        db = Database.create cat;
        count = 0;
        last_time = None;
        metrics;
        tracer }

(* Merge one parallel fan-out: scatter per-shard verdicts back to global
   registration order; on failure, the lowest-index shard's error wins —
   deterministic whatever the domains' interleaving was. *)
let step_sharded m pool parts kernels ~time db =
  let timed = m.tracer <> None in
  let outs =
    Pool.run pool
      (Array.init (Array.length parts) (fun s () ->
           let w0 = if timed then Unix.gettimeofday () else 0.0 in
           let r =
             try Ok (Kernel.step kernels.(s) ~time db)
             with Fo.Error e -> Error e
           in
           (r, w0, if timed then Unix.gettimeofday () else 0.0)))
  in
  (match m.tracer with
   | None -> ()
   | Some tr ->
     Array.iteri
       (fun s ((_, w0, w1) : _ * float * float) ->
         Tracer.timed_span m.tracer ~cat:"shard" ~name:(string_of_int s)
           ~arg:(string_of_int (Array.length parts.(s).p_indices))
           ~t0_ns:(Tracer.stamp tr w0) ~t1_ns:(Tracer.stamp tr w1) ())
       outs);
  let err =
    Array.fold_left
      (fun acc (r, _, _) ->
        match acc, r with
        | None, Error e -> Some e
        | acc, _ -> acc)
      None outs
  in
  match err with
  | Some e -> Error e
  | None ->
    let names_arr = Array.of_list m.names in
    let n = Array.length names_arr in
    let verdicts = Array.make n None in
    let kernels' = Array.copy kernels in
    Array.iteri
      (fun s (r, _, _) ->
        match r with
        | Ok (k', results) ->
          kernels'.(s) <- k';
          List.iteri
            (fun j v -> verdicts.(parts.(s).p_indices.(j)) <- Some v)
            results
        | Error _ -> ())
      outs;
    let reports = ref [] in
    for i = n - 1 downto 0 do
      match verdicts.(i) with
      | Some v when not (Valrel.holds v) ->
        reports :=
          { Monitor.constraint_name = names_arr.(i);
            position = m.count;
            time }
          :: !reports
      | _ -> ()
    done;
    (match m.metrics with
     | None -> ()
     | Some main ->
       Array.iter
         (fun part ->
           match part.p_metrics with
           | None -> ()
           | Some src ->
             Array.iteri
               (fun j row -> Metrics.copy_node ~src j ~dst:main row)
               part.p_slots)
         parts;
       let sum f =
         Array.fold_left
           (fun acc part ->
             match part.p_metrics with
             | Some r -> acc + f r
             | None -> acc)
           0 parts
       in
       (* One logical kernel step per transaction, exactly as the single
          shared kernel counts; cache totals are the shard sums (every
          lookup happens in the shard maintaining the node, so the sums
          equal the sequential counts). *)
       Metrics.incr_steps main;
       Metrics.set_cache_counts main ~hits:(sum Metrics.cache_hits)
         ~misses:(sum Metrics.cache_misses));
    Ok (kernels', !reports)

let step m ~time txn =
  match m.last_time with
  | Some t0 when time <= t0 ->
    Error (Printf.sprintf "non-increasing timestamp: %d after %d" time t0)
  | _ ->
    Tracer.span m.tracer ~cat:"txn" ~arg:(string_of_int time) @@ fun () ->
    let t0 =
      match m.metrics with None -> 0.0 | Some _ -> Unix.gettimeofday ()
    in
    let* db =
      Tracer.span m.tracer ~cat:"apply" (fun () -> Update.apply m.db txn)
    in
    let finish body reports =
      (match m.metrics with
       | None -> ()
       | Some mx ->
         Metrics.record_latency mx (Unix.gettimeofday () -. t0);
         Metrics.add_violations mx (List.length reports));
      Ok
        ( { m with body; db; count = m.count + 1; last_time = Some time },
          reports )
    in
    (match m.body with
     | Single kernel ->
       (try
          let kernel, results = Kernel.step kernel ~time db in
          let reports =
            List.filter_map
              (fun (name, v) ->
                if Valrel.holds v then None
                else
                  Some
                    { Monitor.constraint_name = name;
                      position = m.count;
                      time })
              (List.combine m.names results)
          in
          finish (Single kernel) reports
        with Fo.Error msg -> Error msg)
     | Sharded sh ->
       let* kernels, reports =
         step_sharded m sh.pool sh.parts sh.kernels ~time db
       in
       finish (Sharded { sh with kernels }) reports)

let run_trace ?metrics ?tracer ?pool ?config defs (tr : Trace.t) =
  let* m =
    create ?metrics ?tracer ?pool ?config (Database.catalog tr.Trace.init) defs
  in
  let m = { m with db = tr.Trace.init } in
  let* _, reports_rev =
    List.fold_left
      (fun acc (time, txn) ->
        let* m, out = acc in
        let* m, rs = step m ~time txn in
        Ok (m, List.rev_append rs out))
      (Ok (m, []))
      tr.Trace.steps
  in
  Ok (List.rev reports_rev)

let kernels m =
  match m.body with
  | Single k -> [ k ]
  | Sharded sh -> Array.to_list sh.kernels

let space m = List.fold_left (fun acc k -> acc + Kernel.space k) 0 (kernels m)

let shard_count m =
  match m.body with Single _ -> 1 | Sharded sh -> Array.length sh.parts

let shared_nodes m =
  List.fold_left (fun acc k -> acc + Kernel.node_count k) 0 (kernels m)

let unshared_nodes m =
  List.fold_left
    (fun acc k ->
      List.fold_left
        (fun acc root -> acc + Closure.count (Closure.build root))
        acc (Kernel.roots k))
    0 (kernels m)
