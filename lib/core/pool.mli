(** Fixed worker pool on OCaml 5 domains.

    A pool of size N applies N domains to a batch of independent tasks:
    the calling domain participates, so [create n] spawns only n-1 worker
    domains, and a pool of size 1 runs every batch sequentially in the
    caller with no synchronization at all — the property the engines rely
    on for [--jobs 1] being bit-for-bit identical to the sequential path.

    Tasks in one batch must be independent (they run concurrently in any
    order); results are returned positionally, and a failing batch
    re-raises the {e lowest-index} task's exception whatever the execution
    order was, so error behaviour is deterministic too.

    The pool is itself thread-safe, but one batch at a time is the
    intended discipline (the engines fan out from a single coordinator).
    Always {!shutdown} a pool when done: worker domains otherwise idle
    until process exit. *)

type t

val create : int -> t
(** [create n] spawns a pool of [n] domains total ([n-1] workers plus the
    caller). Raises [Invalid_argument] when [n < 1]. *)

val size : t -> int
(** The total parallelism, as given to {!create}. *)

val run : t -> (unit -> 'a) array -> 'a array
(** [run t thunks] runs every thunk (concurrently for pools of size > 1)
    and returns their results positionally. If any thunk raised, re-raises
    the exception of the lowest-index failing thunk after the whole batch
    has finished. *)

val map_array : ('a -> 'b) -> 'a array -> t -> 'b array
(** [map_array f xs t] is [run t] over [fun () -> f xs.(i)]. *)

val shutdown : t -> unit
(** Stop and join the worker domains. The pool must not be used after. *)
