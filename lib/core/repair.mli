(** Constraint repair — from detection to correction.

    Where the rest of the core {e detects} violations, this module proposes
    (bounded, founded, minimal) {e corrections}: transactions over the
    current database state that restore every constraint at the current
    timestamp. The design follows Active Integrity Constraints (Caroprese
    & Truszczyński) and chase-style fixpoint repair, with the temporal
    twist neither source covers — under past-time operators some
    violations are {e unrepairable} in the current state, because their
    truth value is anchored entirely in history that no present-day update
    can reach.

    {2 The search}

    Candidate repair actions (inserts and deletes of current-state facts)
    are derived from the atoms of each violated constraint: deletes of the
    tuples its atoms currently match, inserts of its atoms grounded over a
    deterministic value pool (the active domain, the offending
    transaction's values and the constraint's own constants), and inverses
    of the offending transaction's updates. The search is a breadth-first
    chase: a node is a candidate database; its successors each fire one
    candidate action of a constraint {e violated at that node} — so every
    accepted repair is {b founded} (each action carries the violated
    constraint that fired it as a witness) — and the first violation-free
    node found has {b minimal cardinality} within the explored candidate
    universe.

    The oracle deciding "violated at this node" is the real checker:
    {!Incremental.step} applied to metric-free clones of the
    pre-transaction checker states ({!Incremental.t} is functional, so one
    clone per constraint serves every probe). Verdicts therefore agree
    exactly with what the monitor itself would report.

    {2 Honesty}

    Everything is bounded by an explicit {!budget}; exhausting it yields
    {!outcome.Inconclusive} — never a claim. The {!outcome.Unrepairable}
    classification, by contrast, is {e sound}: it is derived purely
    syntactically ({!current_insensitive}) and holds for every possible
    current-state repair, not just the ones the search would have tried. *)

type budget = {
  max_steps : int;
      (** Oracle budget: total {!Incremental.step} probes allowed (each
          candidate state costs one step per monitored constraint). *)
  max_candidates : int;
      (** Candidate-set budget: candidate actions generated per search
          node; generation past it is truncated (and reported). *)
  max_depth : int;  (** Largest repair cardinality considered. *)
}

val default_budget : budget
(** [{ max_steps = 4096; max_candidates = 64; max_depth = 3 }]. *)

(** Foundedness witness: [action] was fired by [fired_by], a constraint
    violated at the search node the action was applied to. *)
type witness = {
  action : Rtic_relational.Update.op;
  fired_by : string;
}

(** Why one violated constraint cannot be repaired in the current state. *)
type unrepairable = {
  constraint_name : string;
  offending : string;
      (** Pretty-printed past-anchored subformula that pins the verdict
          to history (concrete syntax, re-parseable). *)
  reason : string;  (** Human-readable explanation. *)
}

type outcome =
  | Clean  (** No constraint is violated; nothing to repair. *)
  | Repaired of {
      actions : Rtic_relational.Update.transaction;
          (** The repair, in firing order. Applying it to the searched
              state yields [db] below. *)
      witnesses : witness list;  (** One per action, same order. *)
      healed : string list;
          (** Names of the constraints that were violated and now hold. *)
      oracle_steps : int;  (** {!Incremental.step} probes spent. *)
      db : Rtic_relational.Database.t;  (** The repaired state. *)
    }
  | Unrepairable of unrepairable list
      (** At least one violated constraint is current-insensitive: no
          insert or delete of current-state facts can change its verdict
          at this timestamp. One entry per such constraint. *)
  | Inconclusive of {
      reason : string;  (** Which budget ran out, or why the space dried up. *)
      oracle_steps : int;
      candidates : int;  (** Candidate actions generated in total. *)
    }
      (** The bounded search neither found a repair nor proved there is
          none. Honest non-answer — never treated as unrepairable. *)

val current_insensitive : Rtic_mtl.Formula.t -> bool
(** [true] iff the (normalized, past-only) formula's truth value at the
    current state provably does not depend on the current database — every
    atom it evaluates lies under a temporal operator that only inspects
    strictly-past states ([prev f]; [once[l,_] f] / [f since[l,_] g] with
    [l > 0] shield only their reach into the current state). Sound, not
    complete: [false] means "might be repairable". Future operators are
    conservatively sensitive. *)

val offending_subformula : Rtic_mtl.Formula.t -> Rtic_mtl.Formula.t
(** For a {!current_insensitive} formula: the leftmost-outermost temporal
    subformula anchoring the verdict to the strict past (the formula
    itself when it has no temporal operator — e.g. a constant). *)

val search :
  ?budget:budget ->
  checkers:Incremental.t list ->
  ?skip:(string -> bool) ->
  time:int ->
  ?txn:Rtic_relational.Update.transaction ->
  Rtic_relational.Database.t ->
  (outcome, string) result
(** [search ~checkers ~time db] looks for a repair of [db] at commit time
    [time]. [checkers] are the {e pre-transaction} checker states (their
    {!Incremental.last_time} strictly below [time]); they are cloned via
    {!Incremental.to_text}/{!Incremental.of_text}, so the callers'
    checkers, metrics and traces are never touched by search probes.
    [?skip] names constraints to leave out of the oracle (quarantined
    ones, whose verdicts are inconclusive anyway). [?txn] is the
    transaction that produced [db], used to seed candidate actions (its
    inverses and its values); omit it when repairing a state at rest.
    [Error] is an internal failure (a clone or probe refused), not a
    search verdict. Deterministic: same inputs, same outcome. *)
