(** The bounded-history-encoding engine kernel.

    The machinery shared by the single-constraint checker
    ({!Incremental}) and the multi-constraint sharing monitor ({!Shared}):
    the temporal-subformula closure over one {e or many} constraint bodies,
    the auxiliary relations with window pruning and min-compression, the
    retained previous snapshot for transition atoms, and the per-transaction
    bottom-up pass. Admission checks (typing, closedness, monitorability)
    are the wrappers' responsibility; the kernel expects normalized,
    past-only, monitorable core formulas.

    Because structurally equal temporal subformulas share one auxiliary
    relation {e across all roots}, registering several constraints in one
    kernel is exactly the cross-constraint sharing optimization: a
    subformula like [once\[0,30\] fault(i)] mentioned by three constraints
    is maintained once. *)

type config = {
  prune : bool;  (** [true]: bounded history encoding; [false]: ablation. *)
}

type t
(** Kernel state. Functional: {!step} returns a new state. *)

val create :
  ?metrics:Metrics.t ->
  ?tracer:Tracer.t ->
  ?label:string ->
  ?root_names:string list ->
  config ->
  Rtic_mtl.Formula.t list ->
  t
(** [create config roots] builds the combined closure of the given
    (normalized, past-only, core) formulas and empty auxiliary state.
    Raises [Invalid_argument] on non-core input — wrappers validate first.
    When [?metrics] is given, every temporal node is registered as a gauge
    row (prefixed with [label] when non-empty) and {!step} records counters,
    per-node gauges and cache statistics into the recorder; without it the
    instrumentation is compiled to a [None] check. When [?tracer] is given,
    {!step} wraps each root evaluation in a [constraint] span named by the
    corresponding entry of [root_names] (aligned with [roots]; unnamed when
    absent) and each auxiliary-node update in a [node] span named like the
    metrics gauge row; without it tracing costs one [None] check per site. *)

val roots : t -> Rtic_mtl.Formula.t list
(** The registered formulas, in registration order. *)

val step :
  t ->
  time:int ->
  Rtic_relational.Database.t ->
  t * Rtic_eval.Valrel.t list
(** One transaction: update every auxiliary relation bottom-up (each exactly
    once, however many roots mention it), and evaluate every root. The
    result list is aligned with {!roots}. Timestamp monotonicity is the
    wrapper's responsibility. Raises [Rtic_eval.Fo.Error] on evaluation
    failures (prevented by admission checks). *)

val node_count : t -> int
(** Number of distinct temporal subformulas maintained. *)

val node_formulas : t -> Rtic_mtl.Formula.t array
(** The maintained temporal subformulas, in closure (registration) order —
    the order of this kernel's gauge rows in its metrics recorder. Used by
    the parallel fan-out to map a shard kernel's rows onto the global
    sequential-order rows. *)

val node_names : t -> string list
(** The display names of {!node_formulas} (metrics gauge rows / tracer
    node spans), in the same order. Empty unless the kernel was created
    with [?metrics] or [?tracer] — the names are only computed when an
    instrument is attached. *)

val space : t -> int
(** Stored (valuation, timestamp) pairs + previous-state rows. *)

val space_detail : t -> (string * int) list
(** Per-subformula space, pretty-printed keys. *)

val max_timestamp : t -> int option
(** Largest timestamp stored anywhere in the auxiliary state ([None] when
    no timestamps are stored). Used by wrappers to cross-check a restored
    checkpoint's [last_time] claim against its actual content. *)

val to_text : t -> string
(** Serialize the auxiliary state (see {!Incremental.to_text} for the
    format; the kernel writes the [aux]/[row]/[prev_fact] sections and a
    trailing [end N] marker, where [N] counts the kernel-owned lines — the
    truncation guard checked by {!restore}). *)

val restore :
  Rtic_relational.Schema.Catalog.t ->
  t ->
  string ->
  (t, string) result
(** Restore the [aux]/[row]/[prev_fact] sections of a checkpoint into a
    freshly created kernel with the same roots. Strict: wrapper-owned keys
    ([rtic-checkpoint], [constraint], [formula], [steps], [last_time]) are
    whitelisted explicitly; any other key is a hard error, as is a missing
    or mismatched [end] marker (truncation) or content after it. *)
