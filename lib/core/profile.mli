(** Trace-stream analysis: turns an [rtic-trace/1] event stream (emitted
    by {!Tracer}, FORMATS.md §6) into a per-constraint / per-node time
    breakdown. This is the library behind [rtic profile].

    The stream is replayed with a span stack; each closed span contributes
    its duration ([close.t_ns - open.t_ns]) to its [(cat, name)] group and
    its {e self} time (duration minus time spent in child spans) both to
    that group and to its stack path for collapsed-stack output. [arg]
    fields carry per-instance detail (e.g. a commit timestamp) and never
    split groups. Self times partition wall time exactly: the sum of
    [self_ns] over all rows equals the sum of root-span durations. *)

type event = {
  ev : [ `Open | `Close | `Point ];
  id : int;
  parent : int option;  (** [None] for root spans and on [`Close] events *)
  cat : string;         (** empty on [`Close] events *)
  name : string;
  arg : string;
  t_ns : int;
}

val parse_events : string -> (event list, string) result
(** Parse a whole trace stream (JSONL text). Blank lines and
    [{"schema":"rtic-trace/1"}] header lines are skipped; any other
    schema header, non-JSON line, or event with missing/ill-typed
    required fields is an error naming the offending line number. *)

type row = {
  cat : string;
  name : string;
  count : int;     (** closed spans + points in this group *)
  total_ns : int;  (** sum of span durations; points contribute 0 *)
  self_ns : int;   (** total minus time inside child spans *)
}

type t

val of_events : event list -> (t, string) result
(** Replay the events. Errors on a [close] that does not match the
    innermost open span (the stream is not a well-formed LIFO forest).
    Spans still open at end-of-stream (truncated capture) are counted in
    {!unclosed} and contribute nothing to any row. *)

val of_string : string -> (t, string) result
(** {!parse_events} followed by {!of_events}. *)

val events : t -> int
(** Total events consumed, header excluded. *)

val spans : t -> int
(** Spans opened. *)

val points : t -> int

val unclosed : t -> int
(** Spans never closed (truncated stream). *)

val rows : t -> row list
(** Aggregated groups, sorted by [(cat, name)]. *)

val to_json : t -> Json.t
(** The [rtic-profile/1] document: summary counts plus {!rows}. *)

val to_collapsed : t -> string
(** Flamegraph-compatible collapsed stacks: one [path self_ns] line per
    distinct span stack, where a frame is [cat] or [cat:name] and frames
    are joined with [;]. Lines are sorted by path; feed to flamegraph.pl
    or speedscope. *)

val pp : Format.formatter -> t -> unit
(** Human-readable breakdown table, heaviest self-time first. *)
