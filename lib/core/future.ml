module Database = Rtic_relational.Database
module History = Rtic_temporal.History
module Formula = Rtic_mtl.Formula
module Rewrite = Rtic_mtl.Rewrite
module Safety = Rtic_mtl.Safety
module Naive = Rtic_eval.Naive

type verdict = {
  index : int;
  time : int;
  satisfied : bool;
}

type t = {
  d : Formula.def;
  norm : Formula.t;
  transitions : bool;  (* +R/-R atoms: keep one extra state when pruning *)
  past : int;     (* finite past reach *)
  hz : int;       (* finite future horizon *)
  (* The buffer of (index, time, db) states is a two-list deque: [front]
     holds the oldest states in order, [back_rev] the newest in reverse, so
     appending is O(1) and pruning pops from the front — both amortized
     constant, where a single `buffer @ [x]` list was quadratic over a run.
     Invariant: [front = []] implies [back_rev = []]. *)
  front : (int * int * Database.t) list;
  back_rev : (int * int * Database.t) list;
  next_index : int;
  first_undecided : int;
  last_time : int option;
  metrics : Metrics.t option;
  tracer : Tracer.t option;
}

let create ?metrics ?tracer cat (d : Formula.def) =
  match Safety.monitorable cat d with
  | Error _ as e -> e
  | Ok () ->
    (match Formula.time_reach d.body, Formula.future_reach d.body with
     | None, _ ->
       Error
         (Printf.sprintf
            "constraint %s has an unbounded past window and cannot be \
             buffer-monitored; use the past-only incremental checker"
            d.name)
     | _, None ->
       Error
         (Printf.sprintf
            "constraint %s has an unbounded future horizon; only bounded \
             future operators can be monitored by verdict delay"
            d.name)
     | Some past, Some hz ->
       let norm = Rewrite.normalize d.body in
       Ok
         { d;
           norm;
           transitions = Formula.has_transition_atoms norm;
           past;
           hz;
           front = [];
           back_rev = [];
           next_index = 0;
           first_undecided = 0;
           last_time = None;
           metrics;
           tracer })

let horizon st = st.hz
let pending st = st.next_index - st.first_undecided
let buffered_states st = List.length st.front + List.length st.back_rev
let buffer st = st.front @ List.rev st.back_rev

let append st entry =
  match st.front with
  | [] -> { st with front = [ entry ] }
  | _ -> { st with back_rev = entry :: st.back_rev }

(* Evaluate the (closed, monitorable) constraint at absolute position [j]
   against the buffered window. The buffer always contains every state
   within the past window of any undecided position, so truncation cannot
   change the verdict. *)
let decide st j =
  match buffer st with
  | [] -> invalid_arg "Future.decide: empty buffer"
  | (first_idx, _, _) :: _ as buf ->
    let h =
      match History.of_snapshots (List.map (fun (_, t, db) -> (t, db)) buf) with
      | Ok h -> h
      | Error m -> invalid_arg ("Future.decide: " ^ m)
    in
    let local = j - first_idx in
    (match Naive.holds_at h local st.norm with
     | Ok sat -> { index = j; time = History.time h local; satisfied = sat }
     | Error m -> invalid_arg ("Future.decide: " ^ m))

let buffer_time st j =
  match st.front with
  | [] -> invalid_arg "Future.buffer_time: empty buffer"
  | (first_idx, _, _) :: _ ->
    let rec nth_time k = function
      | (_, t, _) :: rest -> if k = 0 then Some t else nth_time (k - 1) rest
      | [] -> None
    in
    let off = j - first_idx in
    (match nth_time off st.front with
     | Some t -> t
     | None ->
       (match
          nth_time (off - List.length st.front) (List.rev st.back_rev)
        with
        | Some t -> t
        | None -> invalid_arg "Future.buffer_time: index out of buffer"))

let prune st =
  match st.front with
  | [] -> st
  | _ ->
    let keep_from =
      if pending st > 0 then buffer_time st st.first_undecided - st.past
      else
        (* no pending positions: keep only what future positions may need *)
        (match st.last_time with
         | Some now -> now - st.past
         | None -> min_int)
    in
    (* Timestamps are strictly increasing, so everything to drop is a prefix
       of the deque: pop from the front only, refilling it from [back_rev]
       when it runs dry. Each state is dropped at most once over the whole
       run, making pruning amortized O(1) per step. *)
    let rec drop newest_dropped front back_rev =
      match front with
      | ((_, t, _) as e) :: rest when t < keep_from ->
        drop (Some e) rest back_rev
      | [] ->
        (match back_rev with
         | [] -> (newest_dropped, [], [])
         | _ -> drop newest_dropped (List.rev back_rev) [])
      | _ -> (newest_dropped, front, back_rev)
    in
    let newest_dropped, front, back_rev =
      drop None st.front st.back_rev
    in
    let front =
      (* transition atoms read the immediately preceding state, however old
         it is: retain the newest dropped state as well *)
      match newest_dropped with
      | Some e when st.transitions -> e :: front
      | _ -> front
    in
    (* restore the invariant: a non-empty buffer has a non-empty front *)
    let front, back_rev =
      match front with [] -> (List.rev back_rev, []) | _ -> (front, back_rev)
    in
    { st with front; back_rev }

let step st ~time db =
  match st.last_time with
  | Some t0 when time <= t0 ->
    Error (Printf.sprintf "non-increasing timestamp: %d after %d" time t0)
  | _ ->
    Tracer.span st.tracer ~cat:"txn" ~arg:(string_of_int time) @@ fun () ->
    let t0 =
      match st.metrics with None -> 0.0 | Some _ -> Unix.gettimeofday ()
    in
    let st =
      append
        { st with next_index = st.next_index + 1; last_time = Some time }
        (st.next_index, time, db)
    in
    (try
       (* Decide every pending position whose horizon has fully passed:
          future witnesses for position j need a timestamp <= τ_j + hz, and
          all timestamps <= time have arrived. *)
       let rec go st acc =
         if pending st = 0 then (st, List.rev acc)
         else
           let j = st.first_undecided in
           if time - buffer_time st j >= st.hz then
             let v = decide st j in
             go { st with first_undecided = j + 1 } (v :: acc)
           else (st, List.rev acc)
       in
       let st, verdicts =
         Tracer.span st.tracer ~cat:"constraint" ~name:st.d.Formula.name
           (fun () -> go st [])
       in
       (match st.metrics with
        | None -> ()
        | Some mx ->
          Metrics.incr_steps mx;
          Metrics.record_latency mx (Unix.gettimeofday () -. t0);
          Metrics.add_violations mx
            (List.fold_left
               (fun n v -> if v.satisfied then n else n + 1)
               0 verdicts));
       Ok (prune st, verdicts)
     with Invalid_argument m -> Error m)

let finish st =
  let rec go st acc =
    if pending st = 0 then List.rev acc
    else
      let j = st.first_undecided in
      let v = decide st j in
      go { st with first_undecided = j + 1 } (v :: acc)
  in
  go st []
