module Database = Rtic_relational.Database
module History = Rtic_temporal.History
module Formula = Rtic_mtl.Formula
module Rewrite = Rtic_mtl.Rewrite
module Safety = Rtic_mtl.Safety
module Naive = Rtic_eval.Naive

type verdict = {
  index : int;
  time : int;
  satisfied : bool;
}

type t = {
  d : Formula.def;
  norm : Formula.t;
  transitions : bool;  (* +R/-R atoms: keep one extra state when pruning *)
  past : int;     (* finite past reach *)
  hz : int;       (* finite future horizon *)
  buffer : (int * int * Database.t) list;  (* (index, time, db), oldest first *)
  next_index : int;
  first_undecided : int;
  last_time : int option;
  metrics : Metrics.t option;
  tracer : Tracer.t option;
}

let create ?metrics ?tracer cat (d : Formula.def) =
  match Safety.monitorable cat d with
  | Error _ as e -> e
  | Ok () ->
    (match Formula.time_reach d.body, Formula.future_reach d.body with
     | None, _ ->
       Error
         (Printf.sprintf
            "constraint %s has an unbounded past window and cannot be \
             buffer-monitored; use the past-only incremental checker"
            d.name)
     | _, None ->
       Error
         (Printf.sprintf
            "constraint %s has an unbounded future horizon; only bounded \
             future operators can be monitored by verdict delay"
            d.name)
     | Some past, Some hz ->
       let norm = Rewrite.normalize d.body in
       Ok
         { d;
           norm;
           transitions = Formula.has_transition_atoms norm;
           past;
           hz;
           buffer = [];
           next_index = 0;
           first_undecided = 0;
           last_time = None;
           metrics;
           tracer })

let horizon st = st.hz
let pending st = st.next_index - st.first_undecided
let buffered_states st = List.length st.buffer

(* Evaluate the (closed, monitorable) constraint at absolute position [j]
   against the buffered window. The buffer always contains every state
   within the past window of any undecided position, so truncation cannot
   change the verdict. *)
let decide st j =
  match st.buffer with
  | [] -> invalid_arg "Future.decide: empty buffer"
  | (first_idx, _, _) :: _ ->
    let h =
      match
        History.of_snapshots (List.map (fun (_, t, db) -> (t, db)) st.buffer)
      with
      | Ok h -> h
      | Error m -> invalid_arg ("Future.decide: " ^ m)
    in
    let local = j - first_idx in
    (match Naive.holds_at h local st.norm with
     | Ok sat -> { index = j; time = History.time h local; satisfied = sat }
     | Error m -> invalid_arg ("Future.decide: " ^ m))

let buffer_time st j =
  match st.buffer with
  | (first_idx, _, _) :: _ ->
    let _, t, _ = List.nth st.buffer (j - first_idx) in
    t
  | [] -> invalid_arg "Future.buffer_time: empty buffer"

let prune st =
  match st.buffer with
  | [] -> st
  | _ ->
    let keep_from =
      if pending st > 0 then buffer_time st st.first_undecided - st.past
      else
        (* no pending positions: keep only what future positions may need *)
        (match st.last_time with
         | Some now -> now - st.past
         | None -> min_int)
    in
    let kept = List.filter (fun (_, t, _) -> t >= keep_from) st.buffer in
    let kept =
      (* transition atoms read the immediately preceding state, however old
         it is: retain the newest dropped state as well *)
      if st.transitions then
        match
          List.filter (fun (_, t, _) -> t < keep_from) st.buffer
          |> List.rev
        with
        | newest_dropped :: _ -> newest_dropped :: kept
        | [] -> kept
      else kept
    in
    { st with buffer = kept }

let step st ~time db =
  match st.last_time with
  | Some t0 when time <= t0 ->
    Error (Printf.sprintf "non-increasing timestamp: %d after %d" time t0)
  | _ ->
    Tracer.span st.tracer ~cat:"txn" ~arg:(string_of_int time) @@ fun () ->
    let t0 =
      match st.metrics with None -> 0.0 | Some _ -> Unix.gettimeofday ()
    in
    let st =
      { st with
        buffer = st.buffer @ [ (st.next_index, time, db) ];
        next_index = st.next_index + 1;
        last_time = Some time }
    in
    (try
       (* Decide every pending position whose horizon has fully passed:
          future witnesses for position j need a timestamp <= τ_j + hz, and
          all timestamps <= time have arrived. *)
       let rec go st acc =
         if pending st = 0 then (st, List.rev acc)
         else
           let j = st.first_undecided in
           if time - buffer_time st j >= st.hz then
             let v = decide st j in
             go { st with first_undecided = j + 1 } (v :: acc)
           else (st, List.rev acc)
       in
       let st, verdicts =
         Tracer.span st.tracer ~cat:"constraint" ~name:st.d.Formula.name
           (fun () -> go st [])
       in
       (match st.metrics with
        | None -> ()
        | Some mx ->
          Metrics.incr_steps mx;
          Metrics.record_latency mx (Unix.gettimeofday () -. t0);
          Metrics.add_violations mx
            (List.length (List.filter (fun v -> not v.satisfied) verdicts)));
       Ok (prune st, verdicts)
     with Invalid_argument m -> Error m)

let finish st =
  let rec go st acc =
    if pending st = 0 then List.rev acc
    else
      let j = st.first_undecided in
      let v = decide st j in
      go { st with first_undecided = j + 1 } (v :: acc)
  in
  go st []
