module Database = Rtic_relational.Database
module Relation = Rtic_relational.Relation
module Schema = Rtic_relational.Schema
module Tuple = Rtic_relational.Tuple
module Update = Rtic_relational.Update
module Value = Rtic_relational.Value
module Formula = Rtic_mtl.Formula
module Pretty = Rtic_mtl.Pretty
module Interval = Rtic_temporal.Interval

type budget = {
  max_steps : int;
  max_candidates : int;
  max_depth : int;
}

let default_budget = { max_steps = 4096; max_candidates = 64; max_depth = 3 }

type witness = {
  action : Update.op;
  fired_by : string;
}

type unrepairable = {
  constraint_name : string;
  offending : string;
  reason : string;
}

type outcome =
  | Clean
  | Repaired of {
      actions : Update.transaction;
      witnesses : witness list;
      healed : string list;
      oracle_steps : int;
      db : Database.t;
    }
  | Unrepairable of unrepairable list
  | Inconclusive of {
      reason : string;
      oracle_steps : int;
      candidates : int;
    }

(* ------------------------------------------------------------------ *)
(* Unrepairability: current-state insensitivity                        *)
(* ------------------------------------------------------------------ *)

(* A subformula position is shielded from the current state when every
   path from the root to an atom passes through a temporal operator that
   only ever evaluates its argument at strictly-past states:

   - [prev f] evaluates [f] at the previous state only;
   - [once[l,u] f] (and its dual [hist]) evaluates [f] at states at
     distance >= l, so l > 0 excludes the current one;
   - [f since[l,u] g] anchors [g] at distance >= l (shielded when
     l > 0), but [f] is evaluated at every state after the anchor up to
     and including the current one, so [f] must shield itself.

   Comparisons and constants never read the database. Everything else —
   in particular every atom and transition atom, and conservatively all
   future operators — is sensitive. *)
let rec current_insensitive (f : Formula.t) =
  match f with
  | True | False | Cmp _ -> true
  | Atom _ | Inserted _ | Deleted _ -> false
  | Not a -> current_insensitive a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
      current_insensitive a && current_insensitive b
  | Exists (_, a) | Forall (_, a) -> current_insensitive a
  | Prev _ -> true
  | Once (i, a) | Historically (i, a) ->
      Interval.lo i > 0 || current_insensitive a
  | Since (i, a, b) ->
      current_insensitive a && (Interval.lo i > 0 || current_insensitive b)
  | Next _ | Until _ | Eventually _ | Always _ -> false

(* Leftmost-outermost temporal operator that anchors the verdict to the
   strict past. Only meaningful on formulas [current_insensitive] accepts,
   where one exists whenever the formula mentions the database at all. *)
let offending_subformula (f : Formula.t) =
  let rec find (f : Formula.t) =
    match f with
    | True | False | Cmp _ | Atom _ | Inserted _ | Deleted _ -> None
    | Not a | Exists (_, a) | Forall (_, a) -> find a
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> (
        match find a with Some _ as r -> r | None -> find b)
    | Prev _ -> Some f
    | (Once (i, _) | Historically (i, _)) when Interval.lo i > 0 -> Some f
    | Once (_, a) | Historically (_, a) -> find a
    | Since (i, _, _) when Interval.lo i > 0 -> Some f
    | Since (_, a, b) -> (
        match find a with Some _ as r -> r | None -> find b)
    | Next _ | Until _ | Eventually _ | Always _ -> None
  in
  match find f with Some g -> g | None -> f

(* ------------------------------------------------------------------ *)
(* The oracle: probe candidate states through cloned checkers          *)
(* ------------------------------------------------------------------ *)

exception Fail of string
exception Out_of_steps

(* One clone per monitored constraint, made once and reused for every
   probe: [Incremental.step] is functional, so stepping a clone never
   advances it. Cloning through to_text/of_text strips the callers'
   metrics and tracer — probes must not pollute the monitor's telemetry. *)
type oracle = {
  clones : (string * Formula.t * Incremental.t) list;  (* registration order *)
  mutable steps : int;
  max_steps : int;
}

let make_oracle ~(budget : budget) ~skip ~cat checkers =
  let clones =
    List.filter_map
      (fun c ->
        let def = Incremental.def c in
        if skip def.Formula.name then None
        else
          match Incremental.of_text cat def (Incremental.to_text c) with
          | Ok clone -> Some (def.Formula.name, Incremental.formula c, clone)
          | Error e ->
              raise
                (Fail
                   (Printf.sprintf "cloning checker %S for repair: %s"
                      def.Formula.name e)))
      checkers
  in
  { clones; steps = 0; max_steps = budget.max_steps }

(* Violated constraints of [db] at [time], in registration order. *)
let probe o ~time db =
  let violated =
    List.fold_left
      (fun acc (name, norm, clone) ->
        if o.steps >= o.max_steps then raise_notrace Out_of_steps;
        o.steps <- o.steps + 1;
        match Incremental.step clone ~time db with
        | Error e ->
            raise (Fail (Printf.sprintf "probing constraint %S: %s" name e))
        | Ok (_, v) ->
            if v.Incremental.satisfied then acc else (name, norm) :: acc)
      [] o.clones
  in
  List.rev violated

(* ------------------------------------------------------------------ *)
(* Candidate repair actions                                            *)
(* ------------------------------------------------------------------ *)

let op_key op = Format.asprintf "%a" Update.pp_op op

(* The relational atoms (current-state and transition) of a normalized
   formula, in syntactic order. Transition atoms resolve to their
   underlying relation: inserting into or deleting from it changes what
   [+R]/[-R] see at the current position. *)
let repair_atoms (f : Formula.t) =
  let rec go acc (f : Formula.t) =
    match f with
    | True | False | Cmp _ -> acc
    | Atom (r, ts) | Inserted (r, ts) | Deleted (r, ts) -> (r, ts) :: acc
    | Not a | Exists (_, a) | Forall (_, a) -> go acc a
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> go (go acc a) b
    | Prev (_, a) | Once (_, a) | Historically (_, a)
    | Next (_, a) | Eventually (_, a) | Always (_, a) -> go acc a
    | Since (_, a, b) | Until (_, a, b) -> go (go acc a) b
  in
  List.rev (go [] f)

let formula_constants (f : Formula.t) =
  let rec term acc = function
    | Formula.Var _ -> acc
    | Formula.Const v -> v :: acc
    | Formula.Add (a, b) | Formula.Sub (a, b) | Formula.Mul (a, b) ->
        term (term acc a) b
  in
  let rec go acc (f : Formula.t) =
    match f with
    | True | False -> acc
    | Atom (_, ts) | Inserted (_, ts) | Deleted (_, ts) ->
        List.fold_left term acc ts
    | Cmp (_, a, b) -> term (term acc a) b
    | Not a | Exists (_, a) | Forall (_, a)
    | Prev (_, a) | Once (_, a) | Historically (_, a)
    | Next (_, a) | Eventually (_, a) | Always (_, a) -> go acc a
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b)
    | Since (_, a, b) | Until (_, a, b) -> go (go acc a) b
  in
  go [] f

(* Does [t] match the atom pattern [terms]? Constants must coincide and
   repeated variables must agree; arithmetic never appears as a relation
   argument, but treat it as a wildcard defensively. *)
let tuple_matches terms t =
  let n = Tuple.arity t in
  if List.length terms <> n then false
  else
    let bind = Hashtbl.create 4 in
    let rec go i = function
      | [] -> true
      | Formula.Const v :: rest ->
          Value.equal v (Tuple.get t i) && go (i + 1) rest
      | Formula.Var x :: rest -> (
          let v = Tuple.get t i in
          match Hashtbl.find_opt bind x with
          | Some v' -> Value.equal v v' && go (i + 1) rest
          | None ->
              Hashtbl.add bind x v;
              go (i + 1) rest)
      | _ :: rest -> go (i + 1) rest
    in
    go 0 terms

(* Per-search-node candidate generation, bounded by [max_candidates].
   For each violated constraint, in order of preference:
   1. inverses of the offending transaction's updates on relations the
      constraint mentions (undo what just broke it);
   2. deletes of the tuples its atoms currently match (retract support);
   3. inserts of its atoms grounded over the deterministic value pool
      (supply missing support).
   Everything is emitted in a deterministic order; no-op actions and
   inverses of actions already on the path are skipped. *)
let candidates ~max_candidates ~txn ~pool ~path_keys db violated =
  let out = ref [] and count = ref 0 and truncated = ref false in
  let emitted = Hashtbl.create 16 in
  let path = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace path k ()) path_keys;
  let exception Full in
  let emit fired_by op =
    let k = op_key op in
    let noop =
      match op with
      | Update.Insert (r, t) -> (
          match Database.relation db r with
          | Some rel -> Relation.mem t rel
          | None -> true)
      | Update.Delete (r, t) -> (
          match Database.relation db r with
          | Some rel -> not (Relation.mem t rel)
          | None -> true)
    in
    let undoes_path = Hashtbl.mem path (op_key (Update.invert op)) in
    if (not noop) && (not undoes_path) && not (Hashtbl.mem emitted k) then begin
      Hashtbl.replace emitted k ();
      if !count >= max_candidates then begin
        truncated := true;
        raise_notrace Full
      end;
      incr count;
      out := (op, { action = op; fired_by }) :: !out
    end
  in
  (try
     List.iter
       (fun (name, norm) ->
         let atoms = repair_atoms norm in
         let rels =
           List.sort_uniq String.compare (List.map fst atoms)
         in
         (* 1. undo the transaction where it touches this constraint *)
         List.iter
           (fun op ->
             let rel =
               match op with
               | Update.Insert (r, _) | Update.Delete (r, _) -> r
             in
             if List.mem rel rels then emit name (Update.invert op))
           txn;
         (* 2. retract currently-matching support *)
         List.iter
           (fun (rel, terms) ->
             match Database.relation db rel with
             | None -> ()
             | Some r ->
                 Relation.iter
                   (fun t ->
                     if tuple_matches terms t then
                       emit name (Update.Delete (rel, t)))
                   r)
           atoms;
         (* 3. supply missing support *)
         List.iter
           (fun (rel, terms) ->
             match Schema.Catalog.find rel (Database.catalog db) with
             | None -> ()
             | Some schema ->
                 let tys = Schema.attr_types schema in
                 if Array.length tys = List.length terms then begin
                   let columns =
                     List.mapi
                       (fun i term ->
                         match term with
                         | Formula.Const v -> [ v ]
                         | _ ->
                             List.filter
                               (fun v -> Value.type_of v = tys.(i))
                               pool)
                       terms
                   in
                   let rec ground rev = function
                     | [] ->
                         emit name (Update.insert rel (List.rev rev))
                     | col :: rest ->
                         List.iter (fun v -> ground (v :: rev) rest) col
                   in
                   if List.for_all (fun c -> c <> []) columns then
                     ground [] columns
                 end)
           atoms)
       violated
   with Full -> ());
  (List.rev !out, !truncated)

(* ------------------------------------------------------------------ *)
(* The search: breadth-first chase over candidate states               *)
(* ------------------------------------------------------------------ *)

type node = {
  ndb : Database.t;
  acts_rev : Update.op list;
  wits_rev : witness list;
  keys : string list;  (* op_key of each action on the path *)
  nviolated : (string * Formula.t) list;
}

let search ?(budget = default_budget) ~checkers ?(skip = fun _ -> false)
    ~time ?(txn = []) db =
  let cat = Database.catalog db in
  match make_oracle ~budget ~skip ~cat checkers with
  | exception Fail msg -> Error msg
  | oracle -> (
    let generated = ref 0 in
    let any_truncated = ref false in
    let inconclusive reason =
      Inconclusive
        {
          reason =
            (if !any_truncated then
               reason ^ "; candidate generation truncated"
             else reason);
          oracle_steps = oracle.steps;
          candidates = !generated;
        }
    in
    try
    match probe oracle ~time db with
    | [] -> Ok Clean
    | violated -> (
        match
          List.filter_map
            (fun (name, norm) ->
              if current_insensitive norm then
                Some
                  {
                    constraint_name = name;
                    offending = Pretty.to_string (offending_subformula norm);
                    reason =
                      "verdict at the current state is determined entirely \
                       by past states; no insert or delete of current facts \
                       can change it";
                  }
              else None)
            violated
        with
        | _ :: _ as stuck -> Ok (Unrepairable stuck)
        | [] -> (
            let healed = List.map fst violated in
            (* Deterministic grounding pool: values the repair may write. *)
            let pool =
              List.sort_uniq Value.compare
                (Database.active_domain db
                @ List.concat_map
                    (fun op ->
                      match op with
                      | Update.Insert (_, t) | Update.Delete (_, t) ->
                          Array.to_list t)
                    txn
                @ List.concat_map (fun (_, f) -> formula_constants f) violated)
            in
            let seen = Hashtbl.create 64 in
            let node_seen n =
              let k = String.concat ";" (List.sort String.compare n.keys) in
              if Hashtbl.mem seen k then true
              else begin
                Hashtbl.replace seen k ();
                false
              end
            in
            let root =
              { ndb = db; acts_rev = []; wits_rev = []; keys = [];
                nviolated = violated }
            in
            let expand n =
              let cands, truncated =
                candidates ~max_candidates:budget.max_candidates ~txn ~pool
                  ~path_keys:n.keys n.ndb n.nviolated
              in
              if truncated then any_truncated := true;
              generated := !generated + List.length cands;
              List.filter_map
                (fun (op, wit) ->
                  match Update.apply_op n.ndb op with
                  | Error _ -> None
                  | Ok ndb ->
                      Some
                        {
                          ndb;
                          acts_rev = op :: n.acts_rev;
                          wits_rev = wit :: n.wits_rev;
                          keys = op_key op :: n.keys;
                          nviolated = [];  (* probed below *)
                        })
                cands
            in
            let exception Found of node in
            try
              let frontier = ref [ root ] in
              let depth = ref 0 in
              while !frontier <> [] && !depth < budget.max_depth do
                incr depth;
                let next = ref [] in
                List.iter
                  (fun n ->
                    List.iter
                      (fun child ->
                        if not (node_seen child) then
                          match probe oracle ~time child.ndb with
                          | [] -> raise_notrace (Found child)
                          | v ->
                              next :=
                                { child with nviolated = v } :: !next)
                      (expand n))
                  !frontier;
                frontier := List.rev !next
              done;
              if !frontier = [] then
                Ok
                  (inconclusive
                     (Printf.sprintf
                        "candidate space exhausted at depth %d without a \
                         repair"
                        !depth))
              else
                Ok
                  (inconclusive
                     (Printf.sprintf
                        "no repair within depth budget %d"
                        budget.max_depth))
            with Found n ->
              Ok
                (Repaired
                   {
                     actions = List.rev n.acts_rev;
                     witnesses = List.rev n.wits_rev;
                     healed;
                     oracle_steps = oracle.steps;
                     db = n.ndb;
                   })))
    with
    | Fail msg -> Error msg
    | Out_of_steps ->
        Ok
          (inconclusive
             (Printf.sprintf "oracle step budget %d exhausted"
                budget.max_steps)))
