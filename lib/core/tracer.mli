(** Structured span tracing — the time-attribution side of observability.

    Where {!Metrics} aggregates counters and gauges, a tracer records {e
    where the time goes}: a stream of nested spans (transaction → parse /
    apply → per-constraint evaluation → per-temporal-node update → WAL
    append → checkpoint / recovery) with clock timestamps, emitted as one
    JSON object per line — the [rtic-trace/1] event stream specified in
    FORMATS.md §6 and consumed by [rtic profile] (via {!Profile}).

    A tracer is created by the embedding application (or [rtic check
    --trace-out]) and passed to {!Monitor.create}, {!Shared.create},
    {!Incremental.create}, {!Future.create} or {!Supervisor.create} via
    their [?tracer] argument. Every instrumentation site takes the whole
    [t option]: when no tracer is given ({!span} / {!point} on [None]) the
    hot path pays only a [None] check plus one closure, the same zero-cost
    discipline as [?metrics] (asserted against the MICRO baseline by
    [tools/bench_diff.exe]).

    Span discipline is strictly LIFO per tracer — {!span} opens, runs the
    body, and closes even when the body raises — so a well-formed stream
    has every [close] matching the most recent unclosed [open], children
    fully inside their parents, and one root per top-level operation
    (property-tested in [test/test_tracer.ml]).

    Timestamps are nanoseconds relative to the tracer's creation, read
    from an injectable clock (defaults to [Unix.gettimeofday]; pass
    [?clock] for a deterministic fake in tests). The recorder is shared
    mutable state and not thread-safe, like {!Metrics}. *)

type t

val create : ?clock:(unit -> float) -> emit:(string -> unit) -> unit -> t
(** [create ~emit ()] starts a tracer: emits the [{"schema":"rtic-trace/1"}]
    header line and returns a recorder with an empty span stack. [emit] is
    called once per event with a complete single-line JSON document (no
    trailing newline). [?clock] returns seconds (monotone for meaningful
    profiles); it is sampled once at creation for the time origin. *)

val span : t option -> cat:string -> ?name:string -> ?arg:string -> (unit -> 'a) -> 'a
(** [span tr ~cat f] runs [f ()] inside a fresh span: emits an [open]
    event (id, parent = innermost open span, category, name, timestamp),
    runs [f], and emits the matching [close] event even if [f] raises.
    On [None] it is just [f ()].

    [cat] is the aggregation family ([txn], [apply], [constraint], [node],
    [wal], [checkpoint], [recovery], [parse]); [name] identifies the
    instance {e class} within it (constraint name, pretty-printed temporal
    node) and is what [rtic profile] groups by; [arg] carries per-instance
    detail that must not split aggregation groups (a commit timestamp, a
    file name). *)

val stamp : t -> float -> int
(** [stamp t wall] converts an absolute wall-clock reading (seconds, as
    from [Unix.gettimeofday]) into this tracer's relative nanosecond
    timestamp. Reads only immutable state, so worker domains may sample
    wall-clock times themselves and the coordinator stamps them after the
    join (see {!timed_span}). *)

val timed_span :
  t option ->
  cat:string ->
  ?name:string ->
  ?arg:string ->
  t0_ns:int ->
  t1_ns:int ->
  unit ->
  unit
(** [timed_span tr ~cat ~t0_ns ~t1_ns ()] emits a retrospective span: an
    [open]/[close] pair with the given explicit timestamps, parented under
    the innermost open span, without touching the span stack. This is how
    the parallel fan-out reports per-shard work ([cat = "shard"]): workers
    measure their own wall-clock interval and the single-threaded
    coordinator emits the spans after the join, keeping the stream
    well-formed. Note the intervals of sibling [shard] spans may overlap
    (they describe concurrent work); see FORMATS.md §6. No-op on [None]. *)

val point : t option -> cat:string -> ?name:string -> ?arg:string -> unit -> unit
(** [point tr ~cat ()] emits a zero-duration event (a thing that happened,
    not a region of time): quarantine decisions, degraded-mode entry,
    policy drops. Parented like {!span}; no-op on [None]. *)
