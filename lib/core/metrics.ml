(* Mutable metrics recorder shared by every engine layer. One recorder is
   created by the embedding application (or the CLI) and threaded through
   Monitor/Shared/Future down to the kernel; every engine records into it
   imperatively so the hot path pays nothing when no recorder is given. *)

type node = {
  node_name : string;
  mutable aux_size : int;
  mutable peak_aux_size : int;
  mutable pruned : int;
  mutable survival_checked : int;
  mutable survival_kept : int;
}

type node_view = {
  name : string;
  size : int;
  peak_size : int;
  prune_dropped : int;
  surv_checked : int;
  surv_kept : int;
}

type latency_summary = {
  count : int;
  total_ns : float;
  min_ns : float;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

let reservoir_size = 1024

type t = {
  mutable steps : int;
  mutable violations : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable nodes : node array;
  (* step latency: exact running aggregates plus a uniform reservoir for
     percentiles, deterministic across runs (own xorshift state). *)
  mutable lat_count : int;
  mutable lat_sum : float;
  mutable lat_min : float;
  mutable lat_max : float;
  reservoir : float array;
  mutable rng : int64;
  (* named counters: the resilience layer's event counts (checkpoints
     written/failed, WAL appends/replays, skipped/rejected transactions,
     quarantines). A bag, so new event families need no schema change. *)
  named : (string, int) Hashtbl.t;
}

let create () =
  { steps = 0;
    violations = 0;
    cache_hits = 0;
    cache_misses = 0;
    nodes = [||];
    lat_count = 0;
    lat_sum = 0.0;
    lat_min = infinity;
    lat_max = neg_infinity;
    reservoir = Array.make reservoir_size 0.0;
    rng = 0x9e3779b97f4a7c15L;
    named = Hashtbl.create 8 }

let register_nodes m names =
  let base = Array.length m.nodes in
  let fresh =
    Array.of_list
      (List.map
         (fun name ->
           { node_name = name;
             aux_size = 0;
             peak_aux_size = 0;
             pruned = 0;
             survival_checked = 0;
             survival_kept = 0 })
         names)
  in
  m.nodes <- Array.append m.nodes fresh;
  base

let incr_steps m = m.steps <- m.steps + 1
let add_violations m n = m.violations <- m.violations + n
let cache_hit m = m.cache_hits <- m.cache_hits + 1
let cache_miss m = m.cache_misses <- m.cache_misses + 1

(* Parallel-shard synchronisation (see Fanout): a coordinator copies a
   shard recorder's gauges into the main recorder after the join, so the
   main recorder's document equals the sequential run's exactly. *)
let copy_node ~src i ~dst j =
  let s = src.nodes.(i) and d = dst.nodes.(j) in
  d.aux_size <- s.aux_size;
  d.peak_aux_size <- s.peak_aux_size;
  d.pruned <- s.pruned;
  d.survival_checked <- s.survival_checked;
  d.survival_kept <- s.survival_kept

let set_steps m n = m.steps <- n

let set_cache_counts m ~hits ~misses =
  m.cache_hits <- hits;
  m.cache_misses <- misses

let set_aux_size m i size =
  let nd = m.nodes.(i) in
  nd.aux_size <- size;
  if size > nd.peak_aux_size then nd.peak_aux_size <- size

let add_pruned m i n = m.nodes.(i).pruned <- m.nodes.(i).pruned + n

let add_survival m i ~checked ~kept =
  let nd = m.nodes.(i) in
  nd.survival_checked <- nd.survival_checked + checked;
  nd.survival_kept <- nd.survival_kept + kept

(* xorshift64*: deterministic reservoir sampling, no Random dependency. *)
let next_int m bound =
  let x = m.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  m.rng <- x;
  Int64.to_int (Int64.unsigned_rem x (Int64.of_int bound))

let record_latency m seconds =
  let ns = seconds *. 1e9 in
  if m.lat_count < reservoir_size then m.reservoir.(m.lat_count) <- ns
  else begin
    let j = next_int m (m.lat_count + 1) in
    if j < reservoir_size then m.reservoir.(j) <- ns
  end;
  m.lat_count <- m.lat_count + 1;
  m.lat_sum <- m.lat_sum +. ns;
  if ns < m.lat_min then m.lat_min <- ns;
  if ns > m.lat_max then m.lat_max <- ns

let bump ?(by = 1) m name =
  Hashtbl.replace m.named name
    (by + Option.value ~default:0 (Hashtbl.find_opt m.named name))

let counter m name = Option.value ~default:0 (Hashtbl.find_opt m.named name)

let counters m =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.named [])

let steps m = m.steps
let violations m = m.violations
let cache_hits m = m.cache_hits
let cache_misses m = m.cache_misses

let nodes m =
  Array.to_list
    (Array.map
       (fun nd ->
         { name = nd.node_name;
           size = nd.aux_size;
           peak_size = nd.peak_aux_size;
           prune_dropped = nd.pruned;
           surv_checked = nd.survival_checked;
           surv_kept = nd.survival_kept })
       m.nodes)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float rank in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let latency m =
  if m.lat_count = 0 then None
  else begin
    let filled = min m.lat_count reservoir_size in
    let sorted = Array.sub m.reservoir 0 filled in
    Array.sort compare sorted;
    Some
      { count = m.lat_count;
        total_ns = m.lat_sum;
        min_ns = m.lat_min;
        mean_ns = m.lat_sum /. float_of_int m.lat_count;
        p50_ns = percentile sorted 0.50;
        p95_ns = percentile sorted 0.95;
        p99_ns = percentile sorted 0.99;
        max_ns = m.lat_max }
  end

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let to_json m =
  let node_json nd =
    Json.Obj
      [ ("node", Json.Str nd.node_name);
        ("aux_size", Json.Int nd.aux_size);
        ("peak_aux_size", Json.Int nd.peak_aux_size);
        ("prune_dropped", Json.Int nd.pruned);
        ("survival_checked", Json.Int nd.survival_checked);
        ("survival_kept", Json.Int nd.survival_kept);
        ("survival_hit_rate",
         Json.Float (ratio nd.survival_kept nd.survival_checked)) ]
  in
  let latency_json =
    match latency m with
    | None -> Json.Null
    | Some l ->
      Json.Obj
        [ ("count", Json.Int l.count);
          ("total_ns", Json.Float l.total_ns);
          ("min_ns", Json.Float l.min_ns);
          ("mean_ns", Json.Float l.mean_ns);
          ("p50_ns", Json.Float l.p50_ns);
          ("p95_ns", Json.Float l.p95_ns);
          ("p99_ns", Json.Float l.p99_ns);
          ("max_ns", Json.Float l.max_ns) ]
  in
  let counters_json =
    match counters m with
    | [] -> []
    | cs ->
      [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) cs)) ]
  in
  Json.Obj
    ([ ("steps", Json.Int m.steps);
       ("violations", Json.Int m.violations);
       ("cache_hits", Json.Int m.cache_hits);
       ("cache_misses", Json.Int m.cache_misses);
       ("cache_hit_rate", Json.Float (ratio m.cache_hits (m.cache_hits + m.cache_misses)));
       ("latency_ns", latency_json);
       ("nodes", Json.List (Array.to_list (Array.map node_json m.nodes))) ]
     @ counters_json)

let pp ppf m =
  Format.fprintf ppf "@[<v>kernel steps:    %d" m.steps;
  Format.fprintf ppf "@,formula cache:   %d hit / %d miss (%.1f%%)"
    m.cache_hits m.cache_misses
    (100.0 *. ratio m.cache_hits (m.cache_hits + m.cache_misses));
  (match latency m with
   | None -> ()
   | Some l ->
     Format.fprintf ppf
       "@,step latency:    min %.1fus  mean %.1fus  p50 %.1fus  p95 %.1fus  \
        p99 %.1fus  max %.1fus  total %.1fms (%d samples)"
       (l.min_ns /. 1e3) (l.mean_ns /. 1e3) (l.p50_ns /. 1e3) (l.p95_ns /. 1e3)
       (l.p99_ns /. 1e3) (l.max_ns /. 1e3) (l.total_ns /. 1e6) l.count);
  if Array.length m.nodes > 0 then begin
    Format.fprintf ppf "@,per-node auxiliary state:";
    Array.iter
      (fun nd ->
        Format.fprintf ppf "@,  %-44s size %-6d peak %-6d pruned %-6d"
          nd.node_name nd.aux_size nd.peak_aux_size nd.pruned;
        if nd.survival_checked > 0 then
          Format.fprintf ppf " survival %d/%d" nd.survival_kept
            nd.survival_checked)
      m.nodes
  end;
  (match counters m with
   | [] -> ()
   | cs ->
     Format.fprintf ppf "@,event counters:";
     List.iter (fun (k, v) -> Format.fprintf ppf "@,  %-44s %d" k v) cs);
  Format.fprintf ppf "@]"
