(* Mutable metrics recorder shared by every engine layer. One recorder is
   created by the embedding application (or the CLI) and threaded through
   Monitor/Shared/Future down to the kernel; every engine records into it
   imperatively so the hot path pays nothing when no recorder is given. *)

type node = {
  node_name : string;
  mutable aux_size : int;
  mutable peak_aux_size : int;
  mutable pruned : int;
  mutable survival_checked : int;
  mutable survival_kept : int;
}

type node_view = {
  name : string;
  size : int;
  peak_size : int;
  prune_dropped : int;
  surv_checked : int;
  surv_kept : int;
}

type latency_summary = {
  count : int;
  total_ns : float;
  min_ns : float;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

type bucket = { lo_ns : int; hi_ns : int; n : int }

(* ---------------- log-linear latency histogram ----------------

   Every sample is counted exactly (no sampling): a sample of n
   nanoseconds lands in a bucket whose width grows with n, so the
   relative quantization error is bounded by 1/hist_sub everywhere.

   Scheme (HdrHistogram-style log-linear, hist_sub = 2^hist_sub_bits
   linear sub-buckets per power-of-two octave):
   - buckets 0 .. hist_sub-1 hold the exact values 0 .. hist_sub-1 ns;
   - past that, the octave [2^k, 2^(k+1)) splits into hist_sub equal
     sub-buckets of width 2^(k - hist_sub_bits).

   Index arithmetic: shift n right until it lies in
   [hist_sub, 2*hist_sub); with s shifts the index is
   (s+1)*hist_sub + (shifted - hist_sub), which is continuous with the
   linear range (s = 0 gives index n for n in [hist_sub, 2*hist_sub)).
   The inverse recovers the inclusive bounds
   [ (hist_sub + off) << s , lo + 2^s - 1 ]. *)

let hist_sub_bits = 5
let hist_sub = 1 lsl hist_sub_bits (* 32: ≤ ~3.1% relative error *)

(* 60 octaves cover every positive int63 nanosecond value. *)
let hist_buckets = hist_sub * 60

let bucket_index ns =
  let n = if ns < 0 then 0 else ns in
  if n < hist_sub then n
  else begin
    let v = ref n and shift = ref 0 in
    while !v >= 2 * hist_sub do
      v := !v lsr 1;
      incr shift
    done;
    min (hist_buckets - 1) (((!shift + 1) * hist_sub) + (!v - hist_sub))
  end

let bucket_lo i =
  if i < hist_sub then i
  else
    let shift = (i / hist_sub) - 1 in
    (hist_sub + (i mod hist_sub)) lsl shift

let bucket_hi i =
  if i < hist_sub then i
  else
    let shift = (i / hist_sub) - 1 in
    bucket_lo i + (1 lsl shift) - 1

(* ---------------- sliding-window transaction rates ----------------

   One slot per wall-clock second in a ring sized for the widest window
   plus the current (partial) second. The recorder never reads a clock:
   callers pass [~now] (their own gettimeofday / monotonic reading), so
   the hot path stays syscall-free and tests drive synthetic clocks. *)

let rate_windows = [ 1; 10; 60 ]
let rate_slots = 61

type t = {
  mutable steps : int;
  mutable violations : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable nodes : node array;
  (* step latency: exact running aggregates plus the exact log-linear
     bucket histogram for percentiles. *)
  mutable lat_count : int;
  mutable lat_sum : float;
  mutable lat_min : float;
  mutable lat_max : float;
  hist : int array;
  (* txn-rate ring: counts per absolute second *)
  ring : int array;
  mutable ring_sec : int;  (* absolute second of the head slot; -1 empty *)
  mutable ring_head : int; (* ring position of [ring_sec] *)
  mutable txns : int;      (* cumulative ticks, across all windows *)
  (* named counters: the resilience layer's event counts (checkpoints
     written/failed, WAL appends/replays, skipped/rejected transactions,
     quarantines). A bag, so new event families need no schema change. *)
  named : (string, int) Hashtbl.t;
  (* named gauges: point-in-time values (aux cardinality, WAL bytes since
     checkpoint, quarantine/degraded status) set by whoever assembles a
     telemetry snapshot. A bag, like [named]. *)
  gauged : (string, int) Hashtbl.t;
}

let create () =
  { steps = 0;
    violations = 0;
    cache_hits = 0;
    cache_misses = 0;
    nodes = [||];
    lat_count = 0;
    lat_sum = 0.0;
    lat_min = infinity;
    lat_max = neg_infinity;
    hist = Array.make hist_buckets 0;
    ring = Array.make rate_slots 0;
    ring_sec = -1;
    ring_head = 0;
    txns = 0;
    named = Hashtbl.create 8;
    gauged = Hashtbl.create 8 }

let register_nodes m names =
  let base = Array.length m.nodes in
  let fresh =
    Array.of_list
      (List.map
         (fun name ->
           { node_name = name;
             aux_size = 0;
             peak_aux_size = 0;
             pruned = 0;
             survival_checked = 0;
             survival_kept = 0 })
         names)
  in
  m.nodes <- Array.append m.nodes fresh;
  base

let incr_steps m = m.steps <- m.steps + 1
let add_violations m n = m.violations <- m.violations + n
let cache_hit m = m.cache_hits <- m.cache_hits + 1
let cache_miss m = m.cache_misses <- m.cache_misses + 1

(* Parallel-shard synchronisation (see Fanout): a coordinator copies a
   shard recorder's gauges into the main recorder after the join, so the
   main recorder's document equals the sequential run's exactly. *)
let copy_node ~src i ~dst j =
  let s = src.nodes.(i) and d = dst.nodes.(j) in
  d.aux_size <- s.aux_size;
  d.peak_aux_size <- s.peak_aux_size;
  d.pruned <- s.pruned;
  d.survival_checked <- s.survival_checked;
  d.survival_kept <- s.survival_kept

let set_steps m n = m.steps <- n

let set_cache_counts m ~hits ~misses =
  m.cache_hits <- hits;
  m.cache_misses <- misses

let set_aux_size m i size =
  let nd = m.nodes.(i) in
  nd.aux_size <- size;
  if size > nd.peak_aux_size then nd.peak_aux_size <- size

let add_pruned m i n = m.nodes.(i).pruned <- m.nodes.(i).pruned + n

let add_survival m i ~checked ~kept =
  let nd = m.nodes.(i) in
  nd.survival_checked <- nd.survival_checked + checked;
  nd.survival_kept <- nd.survival_kept + kept

let record_latency m seconds =
  (* Durations come from wall-clock subtraction; a clock stepping back
     mid-measurement hands us a negative interval. Clamp at zero — one
     sample in the lowest bucket — instead of poisoning the running sum
     and minimum with a negative reading. *)
  let ns = Float.max 0.0 (seconds *. 1e9) in
  let b = bucket_index (int_of_float ns) in
  m.hist.(b) <- m.hist.(b) + 1;
  m.lat_count <- m.lat_count + 1;
  m.lat_sum <- m.lat_sum +. ns;
  if ns < m.lat_min then m.lat_min <- ns;
  if ns > m.lat_max then m.lat_max <- ns

(* Advance the ring head to [sec], zeroing the slots of every skipped
   second. A reading older than the head (a caller's clock stepping back)
   folds into the current head rather than corrupting history. *)
let ring_advance m sec =
  if m.ring_sec < 0 then m.ring_sec <- sec
  else if sec > m.ring_sec then begin
    let skip = min (sec - m.ring_sec) rate_slots in
    for _ = 1 to skip do
      m.ring_head <- (m.ring_head + 1) mod rate_slots;
      m.ring.(m.ring_head) <- 0
    done;
    m.ring_sec <- sec
  end

let record_txn m ~now =
  ring_advance m (int_of_float now);
  m.ring.(m.ring_head) <- m.ring.(m.ring_head) + 1;
  m.txns <- m.txns + 1

let txn_count m = m.txns

let txn_rate m ~now window =
  if window < 1 || window > rate_slots - 1 then
    invalid_arg "Metrics.txn_rate: window out of range";
  ring_advance m (int_of_float now);
  if m.ring_sec < 0 then 0.0
  else begin
    let sum = ref 0 in
    for k = 0 to window - 1 do
      sum := !sum + m.ring.((m.ring_head - k + rate_slots) mod rate_slots)
    done;
    float_of_int !sum /. float_of_int window
  end

let txn_rates m ~now = List.map (fun w -> (w, txn_rate m ~now w)) rate_windows

let bump ?(by = 1) m name =
  Hashtbl.replace m.named name
    (by + Option.value ~default:0 (Hashtbl.find_opt m.named name))

let counter m name = Option.value ~default:0 (Hashtbl.find_opt m.named name)

let sorted_bindings tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters m = sorted_bindings m.named

let set_gauge m name v = Hashtbl.replace m.gauged name v
let gauge m name = Option.value ~default:0 (Hashtbl.find_opt m.gauged name)
let gauges m = sorted_bindings m.gauged

let steps m = m.steps
let violations m = m.violations
let cache_hits m = m.cache_hits
let cache_misses m = m.cache_misses

let nodes m =
  Array.to_list
    (Array.map
       (fun nd ->
         { name = nd.node_name;
           size = nd.aux_size;
           peak_size = nd.peak_aux_size;
           prune_dropped = nd.pruned;
           surv_checked = nd.survival_checked;
           surv_kept = nd.survival_kept })
       m.nodes)

let latency_buckets m =
  let acc = ref [] in
  for i = hist_buckets - 1 downto 0 do
    if m.hist.(i) > 0 then
      acc := { lo_ns = bucket_lo i; hi_ns = bucket_hi i; n = m.hist.(i) } :: !acc
  done;
  !acc

(* Nearest-rank percentile over the exact bucket counts: the bucket
   holding the ceil(p * count)-th smallest sample, reported as its
   midpoint and clamped into the exact [min, max] envelope. *)
let hist_percentile m p =
  let rank =
    let r = int_of_float (ceil (p *. float_of_int m.lat_count)) in
    max 1 (min m.lat_count r)
  in
  let i = ref 0 and seen = ref 0 in
  while !seen < rank && !i < hist_buckets do
    seen := !seen + m.hist.(!i);
    incr i
  done;
  let b = max 0 (!i - 1) in
  let mid = (float_of_int (bucket_lo b) +. float_of_int (bucket_hi b)) /. 2.0 in
  Float.min m.lat_max (Float.max m.lat_min mid)

let latency m =
  if m.lat_count = 0 then None
  else
    Some
      { count = m.lat_count;
        total_ns = m.lat_sum;
        min_ns = m.lat_min;
        mean_ns = m.lat_sum /. float_of_int m.lat_count;
        p50_ns = hist_percentile m 0.50;
        p95_ns = hist_percentile m 0.95;
        p99_ns = hist_percentile m 0.99;
        max_ns = m.lat_max }

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let to_json m =
  let node_json nd =
    Json.Obj
      [ ("node", Json.Str nd.node_name);
        ("aux_size", Json.Int nd.aux_size);
        ("peak_aux_size", Json.Int nd.peak_aux_size);
        ("prune_dropped", Json.Int nd.pruned);
        ("survival_checked", Json.Int nd.survival_checked);
        ("survival_kept", Json.Int nd.survival_kept);
        ("survival_hit_rate",
         Json.Float (ratio nd.survival_kept nd.survival_checked)) ]
  in
  let latency_json =
    match latency m with
    | None -> Json.Null
    | Some l ->
      Json.Obj
        [ ("count", Json.Int l.count);
          ("total_ns", Json.Float l.total_ns);
          ("min_ns", Json.Float l.min_ns);
          ("mean_ns", Json.Float l.mean_ns);
          ("p50_ns", Json.Float l.p50_ns);
          ("p95_ns", Json.Float l.p95_ns);
          ("p99_ns", Json.Float l.p99_ns);
          ("max_ns", Json.Float l.max_ns) ]
  in
  let counters_json =
    match counters m with
    | [] -> []
    | cs ->
      [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) cs)) ]
  in
  Json.Obj
    ([ ("steps", Json.Int m.steps);
       ("violations", Json.Int m.violations);
       ("cache_hits", Json.Int m.cache_hits);
       ("cache_misses", Json.Int m.cache_misses);
       ("cache_hit_rate", Json.Float (ratio m.cache_hits (m.cache_hits + m.cache_misses)));
       ("latency_ns", latency_json);
       ("nodes", Json.List (Array.to_list (Array.map node_json m.nodes))) ]
     @ counters_json)

let pp ppf m =
  Format.fprintf ppf "@[<v>kernel steps:    %d" m.steps;
  Format.fprintf ppf "@,formula cache:   %d hit / %d miss (%.1f%%)"
    m.cache_hits m.cache_misses
    (100.0 *. ratio m.cache_hits (m.cache_hits + m.cache_misses));
  (match latency m with
   | None -> ()
   | Some l ->
     Format.fprintf ppf
       "@,step latency:    min %.1fus  mean %.1fus  p50 %.1fus  p95 %.1fus  \
        p99 %.1fus  max %.1fus  total %.1fms (%d samples)"
       (l.min_ns /. 1e3) (l.mean_ns /. 1e3) (l.p50_ns /. 1e3) (l.p95_ns /. 1e3)
       (l.p99_ns /. 1e3) (l.max_ns /. 1e3) (l.total_ns /. 1e6) l.count);
  if Array.length m.nodes > 0 then begin
    Format.fprintf ppf "@,per-node auxiliary state:";
    Array.iter
      (fun nd ->
        Format.fprintf ppf "@,  %-44s size %-6d peak %-6d pruned %-6d"
          nd.node_name nd.aux_size nd.peak_aux_size nd.pruned;
        if nd.survival_checked > 0 then
          Format.fprintf ppf " survival %d/%d" nd.survival_kept
            nd.survival_checked)
      m.nodes
  end;
  (match counters m with
   | [] -> ()
   | cs ->
     Format.fprintf ppf "@,event counters:";
     List.iter (fun (k, v) -> Format.fprintf ppf "@,  %-44s %d" k v) cs);
  Format.fprintf ppf "@]"
