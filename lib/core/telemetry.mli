(** The [rtic-metrics/1] telemetry surface (FORMATS.md §9).

    A {!snapshot} is a pure, lock-consistent picture of a running server:
    one {!session} per open session plus server-wide admission and
    throughput figures. {!Server.snapshot} assembles it under the server
    mutex; everything in this module is pure data and rendering, so the
    JSON document, its parser and the Prometheus exposition are testable
    without a server (and usable client-side — [rtic top] and
    [rtic-drive]'s cross-check parse snapshots with {!of_string}).

    Two renderings of the same snapshot:

    - {!to_json}: the versioned [rtic-metrics/1] JSON document, answered
      by the [metrics] request on the main socket and by [json] on the
      [--metrics-socket] side channel;
    - {!to_prometheus}: Prometheus text exposition format (version
      0.0.4) — [# HELP]/[# TYPE] headers, counters/gauges, and the
      latency histogram with cumulative [le] buckets ending at [+Inf]. *)

(** Per-session figures. Counters ([transactions], [violations], [steps],
    [counters]) are cumulative since the session opened (or since the
    state it recovered from); [rates], [gauges] and [health] are
    point-in-time. *)
type session = {
  name : string;
  transactions : int;  (** Transactions checked (includes rejected). *)
  violations : int;  (** Violation reports delivered. *)
  steps : int;  (** Supervisor-accepted transactions (the WAL clock). *)
  last_time : int option;  (** Commit time of the last accepted txn. *)
  health : string;  (** ["ok"], ["quarantined"] or ["degraded"]. *)
  rates : (int * float) list;  (** [(window_s, txn/s)], {!Metrics.txn_rates}. *)
  latency : Metrics.latency_summary option;
  buckets : Metrics.bucket list;  (** Occupied latency buckets, ascending. *)
  gauges : (string * int) list;  (** {!Metrics.gauges}: aux size, WAL bytes… *)
  counters : (string * int) list;  (** {!Metrics.counters}: supervisor events. *)
}

type snapshot = {
  sessions : session list;
  session_count : int;
  queued : int;  (** Parsed requests awaiting execution (all connections). *)
  max_pending : int;  (** The shared admission budget. *)
  stopped : bool;
  transactions : int;
      (** Server-lifetime transactions, closed sessions included — the
          figure [rtic-drive]'s cross-check reconciles against. *)
  rates : (int * float) list;  (** Server-wide txn/s per window. *)
}

val schema : string
(** ["rtic-metrics/1"]. *)

val to_json : snapshot -> Json.t
(** The versioned snapshot document. Latency buckets are rendered
    cumulatively ([{le_ns; count}], counts non-decreasing, last [count]
    equal to the latency [count]) so consumers need no knowledge of the
    bucket scheme. *)

val of_json : Json.t -> (snapshot, string) result
(** Parse a document produced by {!to_json}. Cumulative buckets are
    de-accumulated; each bucket's [lo_ns] is reconstructed as one past the
    previous [le_ns], which brackets the original bucket. Unknown fields
    are ignored (forward compatibility); missing required fields are
    errors mentioning the field. *)

val of_string : string -> (snapshot, string) result
(** {!Json.of_string} composed with {!of_json}. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition (format version 0.0.4) of the snapshot:
    server-level families ([rtic_up], [rtic_sessions],
    [rtic_queued_requests], [rtic_max_pending], [rtic_transactions_total],
    [rtic_txn_rate{window}]) and per-session families labelled
    [{session="…"}] — transaction/violation/step counters, health and
    rate gauges, one gauge family per {!Metrics.gauges} key, supervisor
    event counters as [rtic_session_events_total{session,event}], and the
    latency histogram [rtic_session_txn_latency_ns] with cumulative [le]
    buckets ending at [+Inf] plus [_sum]/[_count]. Label values escape
    backslash, double quote and newline per the format spec; gauge keys
    are sanitized into metric-name characters. *)
