(** Realistic workloads: the paper's motivating application domains.

    Four scenarios, each bundling a schema, a set of named real-time
    constraints (the benchmark catalog C1–C13), and a deterministic trace
    generator that can be asked to produce clean traces or to inject
    violations at a given rate.

    - {b Banking}: salaries and withdrawals. Salaries must never decrease;
      large withdrawals must be rate-limited; audited accounts must have a
      recent audit event.
    - {b Library}: book loans. Borrowing requires membership; a book cannot
      be borrowed while it is out; loans expire after 28 ticks.
    - {b Monitoring}: sensors, faults and alarms. Alarms must be preceded by
      a recent fault; acknowledgements must follow recent alarms; alarms
      must not flap; sensor readings must stay in range.
    - {b Logistics}: order fulfilment. A shipment needs a recent order; a
      cancelled order is never shipped; every order is shipped or cancelled
      within 21 ticks. *)

type t = {
  name : string;
  catalog : Rtic_relational.Schema.Catalog.t;
  constraints : Rtic_mtl.Formula.def list;
  generate : seed:int -> steps:int -> violation_rate:float -> Rtic_temporal.Trace.t;
      (** [generate ~seed ~steps ~violation_rate] produces [steps]
          transactions; with rate 0.0 the trace satisfies every constraint of
          the scenario, and with a positive rate each step may instead
          perform a violating update with that probability. *)
}

val banking : t
val library : t
val monitoring : t
val logistics : t

val all : t list
(** The four scenarios. *)

val constraint_catalog : (string * Rtic_mtl.Formula.def) list
(** The benchmark constraints C1–C13 with their experiment ids, drawn from
    the four scenarios (used by E7). *)
