module Supervisor = Rtic_core.Supervisor
module Faults = Rtic_core.Faults
module Monitor = Rtic_core.Monitor
module Database = Rtic_relational.Database
module Update = Rtic_relational.Update
module Trace = Rtic_temporal.Trace

let ( let* ) r f = Result.bind r f

type episode = {
  plan : Faults.plan;
  crash_at : int;
  accepted_at_crash : int;
  acked_at_crash : int;
  group : int;
  recovered_step : int;
  resumed_at : int;
  replayed : int;
  torn : bool;
  skipped_checkpoints : int;
  unrecoverable : bool;
  damage : string;
}

(* Outcomes are compared by rendering: two runs are equivalent iff every
   verdict, report, inconclusive marker and drop reason coincides. *)
let outcome_repr = function
  | Supervisor.Checked { reports; inconclusive } ->
    Printf.sprintf "checked{%s}{%s}"
      (String.concat ";"
         (List.map
            (fun r ->
              Printf.sprintf "%s@%d/%d" r.Monitor.constraint_name
                r.Monitor.position r.Monitor.time)
            reports))
      (String.concat ";" inconclusive)
  | Supervisor.Skipped reason -> "skipped{" ^ reason ^ "}"
  | Supervisor.Rejected reason -> "rejected{" ^ reason ^ "}"
  | Supervisor.Repaired { actions; witnesses; repaired; inconclusive } ->
    Printf.sprintf "repaired{%s}{%s}{%s}{%s}"
      (String.concat ";"
         (List.map (fun o -> Format.asprintf "%a" Update.pp_op o) actions))
      (String.concat ";" (List.map snd witnesses))
      (String.concat ";"
         (List.map
            (fun r ->
              Printf.sprintf "%s@%d/%d" r.Monitor.constraint_name
                r.Monitor.position r.Monitor.time)
            repaired))
      (String.concat ";" inconclusive)
  | Supervisor.Unrepairable { reports; unrepairable; inconclusive } ->
    Printf.sprintf "unrepairable{%s}{%s}{%s}"
      (String.concat ";"
         (List.map
            (fun r ->
              Printf.sprintf "%s@%d/%d" r.Monitor.constraint_name
                r.Monitor.position r.Monitor.time)
            reports))
      (String.concat ";"
         (List.map (fun (c, off) -> c ^ ":" ^ off) unrepairable))
      (String.concat ";" inconclusive)

let feed sup inputs =
  List.fold_left
    (fun acc (time, txn) ->
      let* outs = acc in
      let* o = Supervisor.step sup ~time txn in
      Ok (o :: outs))
    (Ok []) inputs
  |> Result.map List.rev

(* Feed through the commit queue, keeping only the outcomes actually
   released before the crash point. Deliberately no final flush: buffered
   records and queued acks are left in memory, which is exactly what a
   crash finds with group commit. *)
let feed_submit sup inputs =
  List.fold_left
    (fun acc (time, txn) ->
      let* outs = acc in
      let* released = Supervisor.submit sup ~time txn in
      Ok (List.rev_append released outs))
    (Ok []) inputs
  |> Result.map List.rev

let accepted_count outcomes =
  List.fold_left
    (fun n o ->
      match o with
      | Supervisor.Checked _ | Supervisor.Repaired _
      | Supervisor.Unrepairable _ -> n + 1
      | Supervisor.Skipped _ | Supervisor.Rejected _ -> n)
    0 outcomes

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let rec take n l =
  if n <= 0 then []
  else match l with [] -> [] | x :: tl -> x :: take (n - 1) tl

(* Input index just past the [s]-th accepted transaction: everything the
   recovered supervisor already holds; the resumed run re-feeds the rest
   (including any inputs that were skipped or lost to the damage). *)
let resume_pos outcomes s =
  let rec go seen i l =
    if seen >= s then Some i
    else
      match l with
      | [] -> None
      | o :: tl ->
        let seen =
          match o with
          | Supervisor.Checked _ | Supervisor.Repaired _
          | Supervisor.Unrepairable _ -> seen + 1
          | Supervisor.Skipped _ | Supervisor.Rejected _ -> seen
        in
        go seen (i + 1) tl
  in
  go 0 0 outcomes

let state_dir = "state"

let run_episode ?init ?(group = 1) ~config cat defs ~inputs ~seed ~plan
    ~crash_at =
  let crash_at = max 0 (min crash_at (List.length inputs)) in
  let config = { config with Supervisor.group_commit = group } in
  (* Uninterrupted reference run. *)
  let fs_a = Faults.mem_fs () in
  let* sup_a = Supervisor.create ~fs:fs_a ~config ?init ~state_dir cat defs in
  let* base = feed sup_a inputs in
  (* Crashed run: same inputs, fresh filesystem. With group commit the
     prefix goes through the commit queue, so the crash lands with a
     partially filled batch in memory — [pre] holds only the outcomes the
     caller actually saw (a prefix of the full sequence). *)
  let fs_b = Faults.mem_fs () in
  let* sup_b = Supervisor.create ~fs:fs_b ~config ?init ~state_dir cat defs in
  let* pre =
    if group <= 1 then feed sup_b (take crash_at inputs)
    else feed_submit sup_b (take crash_at inputs)
  in
  let accepted_at_crash = Supervisor.steps sup_b in
  let acked_at_crash = List.length pre in
  (* Determinism sanity: the crashed run's released outcomes must match
     the reference run's — otherwise the oracle itself is unsound. *)
  let* () =
    let mismatch =
      List.exists2
        (fun a b -> outcome_repr a <> outcome_repr b)
        pre (take acked_at_crash base)
    in
    if mismatch then Error "non-deterministic prefix (oracle unsound)"
    else Ok ()
  in
  (* The crash: abandon sup_b, then damage the abandoned state dir. *)
  let checkpoints =
    List.map snd (Supervisor.checkpoint_files fs_b state_dir)
  in
  let* damage =
    Faults.apply_plan fs_b ~seed ~wal:(Supervisor.wal_path state_dir)
      ~checkpoints plan
  in
  match Supervisor.recover ~fs:fs_b ~config ?init ~state_dir cat defs with
  | Error e when plan <> Faults.Kill ->
    (* Destructive plans can legitimately obliterate the only retained
       snapshot (retain = 1) or the WAL header itself.  Detected,
       reported data loss is an acceptable outcome — a silent wrong
       answer is not, and a clean kill must always recover. *)
    Ok
      { plan;
        crash_at;
        accepted_at_crash;
        acked_at_crash;
        group;
        recovered_step = 0;
        resumed_at = 0;
        replayed = 0;
        torn = false;
        skipped_checkpoints = 0;
        unrecoverable = true;
        damage = Printf.sprintf "%s; unrecoverable: %s" damage e }
  | Error e -> Error ("recovery failed after a clean kill: " ^ e)
  | Ok (sup_c, info) ->
  let s = Supervisor.steps sup_c in
  let* () =
    if s > accepted_at_crash then
      Error
        (Printf.sprintf "recovered %d transactions but only %d were accepted"
           s accepted_at_crash)
    else if plan = Faults.Kill && group = 1 && s <> accepted_at_crash then
      Error
        (Printf.sprintf
           "clean kill lost transactions: accepted %d, recovered %d"
           accepted_at_crash s)
    else if plan = Faults.Kill && accepted_at_crash - s > group - 1 then
      (* The acked-loss window: a clean kill may only lose the unflushed
         batch, which group commit bounds at group - 1 records. *)
      Error
        (Printf.sprintf
           "clean kill lost %d transactions, more than the group-commit \
            window of %d (accepted %d, recovered %d)"
           (accepted_at_crash - s) (group - 1) accepted_at_crash s)
    else if plan = Faults.Kill && s < accepted_count pre then
      (* The other half of the contract: an outcome that was released to
         the caller is backed by a synced record, so a clean kill can
         never lose it. *)
      Error
        (Printf.sprintf
           "clean kill lost an acknowledged transaction: %d acked accepted, \
            only %d recovered"
           (accepted_count pre) s)
    else Ok ()
  in
  let* p =
    (* With group commit [pre] stops at the last released outcome, so the
       resume point is found on the reference run's (repr-identical)
       prefix instead. *)
    match resume_pos (take crash_at base) s with
    | Some p -> Ok p
    | None -> Error "recovered step count exceeds accepted prefix"
  in
  let* post = feed sup_c (drop p inputs) in
  let expected = drop p base in
  let* () =
    if List.length post <> List.length expected then
      Error "resumed run produced a different number of outcomes"
    else
      let rec first_diff i a b =
        match (a, b) with
        | [], [] -> Ok ()
        | x :: xs, y :: ys ->
          let rx = outcome_repr x and ry = outcome_repr y in
          if rx <> ry then
            Error
              (Printf.sprintf
                 "divergence at input %d after %s crash at %d (seed %d):\n\
                  \  resumed:       %s\n\
                  \  uninterrupted: %s"
                 i (Faults.plan_name plan) crash_at seed rx ry)
          else first_diff (i + 1) xs ys
        | _ -> Error "unequal lengths"
      in
      first_diff p post expected
  in
  (* Stronger than outcome equivalence: the two end states must coincide
     extensionally. A half-applied repair (some journaled actions lost)
     would slip past the outcome check whenever the remaining inputs don't
     touch the damaged tuples — the database comparison catches it. *)
  let* () =
    if Database.equal (Supervisor.database sup_c) (Supervisor.database sup_a)
    then Ok ()
    else
      Error
        (Printf.sprintf
           "final database diverges from the uninterrupted run after %s \
            crash at %d (seed %d)"
           (Faults.plan_name plan) crash_at seed)
  in
  Ok
    { plan;
      crash_at;
      accepted_at_crash;
      acked_at_crash;
      group;
      recovered_step = s;
      resumed_at = p;
      replayed = info.Supervisor.replayed;
      torn = info.Supervisor.torn_tail <> None;
      skipped_checkpoints = List.length info.Supervisor.checkpoints_skipped;
      unrecoverable = false;
      damage }

(* ---------------- Seeded sweep ---------------- *)

(* Local xorshift64* stream, same idiom as Faults/Metrics: the sweep's
   shape is a pure function of the seed. *)
type rng = { mutable state : int64 }

let make_rng seed =
  { state =
      Int64.logor 1L
        (Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L) }

let next_int r bound =
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.state <- x;
  if bound <= 0 then 0
  else Int64.to_int (Int64.unsigned_rem x (Int64.of_int bound))

let policies = [| Supervisor.Halt; Supervisor.Skip; Supervisor.Reject |]

let run ~seed ~iters =
  let r = make_rng seed in
  let rec go i acc =
    if i >= iters then Ok (List.rev acc)
    else
      let episode_seed = (seed * 7919) + i in
      let plan =
        List.nth Faults.all_plans (i mod List.length Faults.all_plans)
      in
      let policy = policies.(next_int r 3) in
      (* Half the episodes run a scenario workload, half a random one. *)
      let cat, defs, init, inputs =
        if i mod 2 = 0 then begin
          let sc =
            List.nth Scenarios.all (next_int r (List.length Scenarios.all))
          in
          let tr =
            sc.Scenarios.generate ~seed:episode_seed ~steps:(20 + next_int r 25)
              ~violation_rate:0.15
          in
          (sc.Scenarios.catalog, sc.Scenarios.constraints, tr.Trace.init,
           tr.Trace.steps)
        end
        else begin
          let tr =
            Gen.random_trace ~seed:episode_seed
              { Gen.default_params with steps = 20 + next_int r 25 }
          in
          let defs =
            List.mapi
              (fun j body ->
                { Rtic_mtl.Formula.name = Printf.sprintf "g%d" j; body })
              (Gen.random_formulas ~seed:episode_seed ~depth:2 ~count:2)
          in
          (Gen.generic_catalog, defs, tr.Trace.init, tr.Trace.steps)
        end
      in
      (* Clock regressions only under a policy that tolerates them. *)
      let inputs =
        if policy <> Supervisor.Halt && next_int r 2 = 0 then
          Faults.perturb_times ~seed:episode_seed ~rate:0.1 inputs
        else inputs
      in
      let config =
        { Supervisor.default_config with
          auto_checkpoint = 3 + next_int r 8;
          retain = 1 + next_int r 3;
          on_error = policy;
          (* A small budget now and then exercises quarantine. *)
          aux_budget = (if next_int r 3 = 0 then Some (10 + next_int r 40) else None) }
      in
      let crash_at = next_int r (List.length inputs + 1) in
      match
        run_episode ~init ~config cat defs ~inputs ~seed:episode_seed ~plan
          ~crash_at
      with
      | Error e ->
        Error
          (Printf.sprintf "episode %d (seed %d, plan %s): %s" i episode_seed
             (Faults.plan_name plan) e)
      | Ok ep -> go (i + 1) (ep :: acc)
  in
  go 0 []

(* The repair drill: every episode runs under [on_error = Repair] over a
   violation-heavy scenario workload, so crash sites land before, during
   and after repaired transactions. A repaired transaction is journaled as
   one WAL record; every fault plan must therefore leave it fully applied
   or fully absent — outcome equivalence plus the final-database
   comparison in [run_episode] verify exactly that. *)
let run_repair ~seed ~iters =
  let r = make_rng seed in
  let rec go i acc =
    if i >= iters then Ok (List.rev acc)
    else
      let episode_seed = (seed * 6271) + i in
      let plan =
        List.nth Faults.all_plans (i mod List.length Faults.all_plans)
      in
      let sc =
        List.nth Scenarios.all (next_int r (List.length Scenarios.all))
      in
      let tr =
        sc.Scenarios.generate ~seed:episode_seed ~steps:(20 + next_int r 25)
          ~violation_rate:0.25
      in
      let config =
        { Supervisor.default_config with
          auto_checkpoint = 3 + next_int r 8;
          retain = 1 + next_int r 3;
          on_error = Supervisor.Repair }
      in
      let inputs = tr.Trace.steps in
      let crash_at = next_int r (List.length inputs + 1) in
      match
        run_episode ~init:tr.Trace.init ~config sc.Scenarios.catalog
          sc.Scenarios.constraints ~inputs ~seed:episode_seed ~plan ~crash_at
      with
      | Error e ->
        Error
          (Printf.sprintf "repair episode %d (seed %d, plan %s, %s): %s" i
             episode_seed (Faults.plan_name plan) sc.Scenarios.name e)
      | Ok ep -> go (i + 1) (ep :: acc)
  in
  go 0 []

(* The group-commit drill: the crashed prefix goes through
   [Supervisor.submit] with batches of 2-8 records, over both WAL formats,
   so crash sites land with a partially filled batch in memory.
   [run_episode] then checks the acked-loss contract on top of the usual
   equivalence: a clean kill loses at most [group - 1] accepted
   transactions and never one whose outcome was released. *)
let run_group ~seed ~iters =
  let r = make_rng seed in
  let rec go i acc =
    if i >= iters then Ok (List.rev acc)
    else
      let episode_seed = (seed * 4099) + i in
      let plan =
        List.nth Faults.all_plans (i mod List.length Faults.all_plans)
      in
      let policy = policies.(next_int r 3) in
      let sc =
        List.nth Scenarios.all (next_int r (List.length Scenarios.all))
      in
      let tr =
        sc.Scenarios.generate ~seed:episode_seed ~steps:(20 + next_int r 25)
          ~violation_rate:0.15
      in
      let group = 2 + next_int r 7 in
      let config =
        { Supervisor.default_config with
          auto_checkpoint = 3 + next_int r 8;
          retain = 1 + next_int r 3;
          on_error = policy;
          wal_format = 1 + next_int r 2 }
      in
      let inputs = tr.Trace.steps in
      let crash_at = next_int r (List.length inputs + 1) in
      match
        run_episode ~init:tr.Trace.init ~group ~config sc.Scenarios.catalog
          sc.Scenarios.constraints ~inputs ~seed:episode_seed ~plan ~crash_at
      with
      | Error e ->
        Error
          (Printf.sprintf
             "group episode %d (seed %d, plan %s, group %d, %s): %s" i
             episode_seed (Faults.plan_name plan) group sc.Scenarios.name e)
      | Ok ep -> go (i + 1) (ep :: acc)
  in
  go 0 []
