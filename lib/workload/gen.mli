(** Deterministic synthetic workload generation.

    All generators are pure functions of their [seed]: the same parameters
    always produce the same trace, so tests and benchmarks are reproducible.

    The generic catalog used by random traces and formulas:
    {v
    p(a:int)   q(a:int)   r(a:int, b:int)   e()
    v}
    [p], [q], [r] are state relations (tuples persist until deleted); [e] is
    a 0-ary event relation toggled at random. *)

val generic_catalog : Rtic_relational.Schema.Catalog.t
(** The four-relation catalog above. *)

(** Parameters of the generic random trace. *)
type params = {
  steps : int;        (** number of transactions (>= 1) *)
  domain : int;       (** values are drawn from [0, domain) *)
  txn_size : int;     (** updates per transaction (>= 1) *)
  max_gap : int;      (** clock advance per transaction is uniform in [1, max_gap] *)
  delete_bias : float;(** probability that an update is a deletion of an
                          existing tuple rather than an insertion *)
}

val default_params : params
(** [{ steps = 100; domain = 8; txn_size = 3; max_gap = 3; delete_bias = 0.4 }] *)

val random_trace : seed:int -> params -> Rtic_temporal.Trace.t
(** A random update stream over {!generic_catalog}. Deletions target tuples
    currently in the database when possible, so relations keep a bounded
    population. *)

val random_formula : seed:int -> depth:int -> Rtic_mtl.Formula.t
(** A random {e closed, well-typed, monitorable} constraint body over
    {!generic_catalog}, with temporal operators nested up to [depth]. Safety
    holds by construction; the generator covers atoms, conjunction, guarded
    negation and comparisons, disjunction, quantifiers and all three
    temporal operators (including the negated-left [since] idiom). *)

val random_formulas : seed:int -> depth:int -> count:int -> Rtic_mtl.Formula.t list
(** [count] independent formulas derived from [seed]. *)

val random_bounded_future_formula : seed:int -> depth:int -> Rtic_mtl.Formula.t
(** Like {!random_formula} but every interval is bounded and the bounded
    future operators ([next], [until], [eventually], [always]) may appear —
    the fragment monitored by {!Rtic_core.Future} via verdict delay. *)

val random_fo_formula : seed:int -> depth:int -> Rtic_mtl.Formula.t
(** A random closed monitorable formula with {e no} temporal operators —
    used to test the first-order query compiler ({!Rtic_eval.Codd}). *)

val random_open_fo_formula : seed:int -> depth:int -> Rtic_mtl.Formula.t
(** Like {!random_fo_formula} but open: exactly the free variables [x] (or
    [x] and [y]); evaluates to a non-trivial valuation relation. *)
