module Value = Rtic_relational.Value
module Schema = Rtic_relational.Schema
module Database = Rtic_relational.Database
module Update = Rtic_relational.Update
module Trace = Rtic_temporal.Trace
module F = Rtic_mtl.Formula
module Parser = Rtic_mtl.Parser

type t = {
  name : string;
  catalog : Schema.Catalog.t;
  constraints : F.def list;
  generate : seed:int -> steps:int -> violation_rate:float -> Trace.t;
}

let def_exn src =
  match Parser.def_of_string src with
  | Ok d -> d
  | Error m -> failwith (Printf.sprintf "Scenarios: bad constraint %S: %s" src m)

let str s = Value.Str s
let int n = Value.Int n

(* Shared helper: each step consists of deletions of the previous step's
   event facts, then the step's own operations. *)
module Event_queue = struct
  type t = Update.op list ref

  let create () : t = ref []

  let flush (q : t) =
    let deletions = List.map Update.invert !q in
    q := [];
    deletions

  let emit (q : t) op =
    q := op :: !q;
    op
end

(* ---------------------------------------------------------------- *)
(* Banking                                                           *)
(* ---------------------------------------------------------------- *)

let banking_catalog =
  Schema.Catalog.of_list
    [ Schema.make "salary" [ ("emp", Value.TStr); ("amt", Value.TInt) ];
      Schema.make "account" [ ("acct", Value.TStr) ];
      Schema.make "withdraw" [ ("acct", Value.TStr); ("amt", Value.TInt) ];
      Schema.make "audit" [ ("acct", Value.TStr) ] ]

let banking_constraints =
  [ def_exn
      "constraint salary_monotone: forall e, s, t. salary(e, s) & prev once \
       salary(e, t) -> s >= t ;";
    def_exn
      "constraint withdraw_rate_limit: forall a, m. withdraw(a, m) & m > 500 \
       -> not once[1,10] (exists n. (withdraw(a, n) & n > 500)) ;";
    def_exn
      "constraint big_withdraw_audited: forall a, m. withdraw(a, m) & m > \
       900 -> once[0,20] audit(a) ;" ]

let banking_generate ~seed ~steps ~violation_rate =
  let rng = Random.State.make [| seed; 0xba7b |] in
  let employees = [| "amy"; "bob"; "cho"; "dee"; "eli" |] in
  let accounts = [| "a1"; "a2"; "a3"; "a4" |] in
  let salaries = Hashtbl.create 8 in
  let last_big = Hashtbl.create 8 in
  let last_audit = Hashtbl.create 8 in
  let events = Event_queue.create () in
  let time = ref 0 in
  let out = ref [] in
  for _ = 1 to steps do
    time := !time + 1 + Random.State.int rng 3;
    let now = !time in
    (* accumulate reversed; one [List.rev] at commit keeps this linear *)
    let txn_rev = ref (List.rev (Event_queue.flush events)) in
    let add op = txn_rev := op :: !txn_rev in
    let violate = Random.State.float rng 1.0 < violation_rate in
    if violate then begin
      match Random.State.int rng 3 with
      | 0 ->
        (* salary decrease *)
        let e = employees.(Random.State.int rng (Array.length employees)) in
        (match Hashtbl.find_opt salaries e with
         | Some s when s > 10 ->
           add (Update.Delete ("salary", [| str e; int s |]));
           add (Update.Insert ("salary", [| str e; int (s - 10) |]));
           Hashtbl.replace salaries e (s - 10)
         | _ ->
           Hashtbl.replace salaries e 10;
           add (Update.Insert ("salary", [| str e; int 10 |])))
      | 1 ->
        (* two big withdrawals within the rate-limit window *)
        let a = accounts.(Random.State.int rng (Array.length accounts)) in
        add (Event_queue.emit events (Update.Insert ("withdraw", [| str a; int 800 |])));
        Hashtbl.replace last_big a now
        (* the violation manifests on the *next* big withdrawal; force one
           soon by resetting the tracker into the window *)
      | _ ->
        (* large withdrawal with no recent audit *)
        let a = accounts.(Random.State.int rng (Array.length accounts)) in
        if (match Hashtbl.find_opt last_audit a with
            | Some t -> now - t > 20
            | None -> true)
        then
          add
            (Event_queue.emit events (Update.Insert ("withdraw", [| str a; int 950 |])))
        else
          add (Event_queue.emit events (Update.Insert ("withdraw", [| str a; int 990 |])))
    end
    else begin
      (* normal activity *)
      (match Random.State.int rng 5 with
       | 0 ->
         (* raise somebody's salary *)
         let e = employees.(Random.State.int rng (Array.length employees)) in
         let old = Hashtbl.find_opt salaries e in
         let s = (match old with Some s -> s | None -> 50) in
         let s' = s + 1 + Random.State.int rng 20 in
         (match old with
          | Some s -> add (Update.Delete ("salary", [| str e; int s |]))
          | None -> ());
         add (Update.Insert ("salary", [| str e; int s' |]));
         Hashtbl.replace salaries e s'
       | 1 ->
         let a = accounts.(Random.State.int rng (Array.length accounts)) in
         add (Update.Insert ("account", [| str a |]))
       | 2 ->
         (* small withdrawal, always legal *)
         let a = accounts.(Random.State.int rng (Array.length accounts)) in
         let m = 1 + Random.State.int rng 400 in
         add (Event_queue.emit events (Update.Insert ("withdraw", [| str a; int m |])))
       | 3 ->
         (* audited large withdrawal, spaced beyond the rate limit *)
         let a = accounts.(Random.State.int rng (Array.length accounts)) in
         let spaced =
           match Hashtbl.find_opt last_big a with
           | Some t -> now - t > 10
           | None -> true
         in
         if spaced then begin
           add (Event_queue.emit events (Update.Insert ("audit", [| str a |])));
           Hashtbl.replace last_audit a now;
           add
             (Event_queue.emit events
                (Update.Insert ("withdraw", [| str a; int (901 + Random.State.int rng 99) |])));
           Hashtbl.replace last_big a now
         end
         else begin
           let m = 1 + Random.State.int rng 400 in
           add (Event_queue.emit events (Update.Insert ("withdraw", [| str a; int m |])))
         end
       | _ ->
         let a = accounts.(Random.State.int rng (Array.length accounts)) in
         add (Event_queue.emit events (Update.Insert ("audit", [| str a |])));
         Hashtbl.replace last_audit a now)
    end;
    out := (now, List.rev !txn_rev) :: !out
  done;
  Trace.make_exn banking_catalog (List.rev !out)

let banking =
  { name = "banking";
    catalog = banking_catalog;
    constraints = banking_constraints;
    generate = banking_generate }

(* ---------------------------------------------------------------- *)
(* Library loans                                                     *)
(* ---------------------------------------------------------------- *)

let library_catalog =
  Schema.Catalog.of_list
    [ Schema.make "member" [ ("patron", Value.TStr) ];
      Schema.make "borrow" [ ("patron", Value.TStr); ("book", Value.TStr) ];
      Schema.make "return" [ ("patron", Value.TStr); ("book", Value.TStr) ] ]

let library_constraints =
  [ def_exn
      "constraint member_borrow: forall p, b. borrow(p, b) -> member(p) ;";
    def_exn
      "constraint no_double_borrow: forall p, b. borrow(p, b) -> not prev \
       ((not (exists q. return(q, b))) since (exists q. borrow(q, b))) ;";
    def_exn
      "constraint loan_expiry: not (exists b. ((not (exists q. return(q, \
       b))) since[29,inf] (exists p. borrow(p, b)))) ;" ]

let library_generate ~seed ~steps ~violation_rate =
  let rng = Random.State.make [| seed; 0x11bb |] in
  let patrons = [| "ann"; "ben"; "cat"; "dan" |] in
  let books = [| "b1"; "b2"; "b3"; "b4"; "b5"; "b6" |] in
  let members = Hashtbl.create 8 in
  let out_books = Hashtbl.create 8 in (* book -> (patron, borrow time) *)
  let events = Event_queue.create () in
  let time = ref 0 in
  let out = ref [] in
  for _ = 1 to steps do
    time := !time + 1 + Random.State.int rng 3;
    let now = !time in
    (* accumulate reversed; one [List.rev] at commit keeps this linear *)
    let txn_rev = ref (List.rev (Event_queue.flush events)) in
    let add op = txn_rev := op :: !txn_rev in
    (* A return only clears the "since borrowed" chain at states strictly
       after the borrow witness, so a book returned in this very step must
       not be lent again before the next step. *)
    let returned_this_step = Hashtbl.create 4 in
    let do_return patron book =
      add (Event_queue.emit events (Update.Insert ("return", [| str patron; str book |])));
      Hashtbl.remove out_books book;
      Hashtbl.replace returned_this_step book ()
    in
    let lendable b =
      (not (Hashtbl.mem out_books b)) && not (Hashtbl.mem returned_this_step b)
    in
    (* Forced returns: books about to exceed the 28-tick loan period. *)
    Hashtbl.iter
      (fun book (patron, t0) -> if now - t0 >= 22 then do_return patron book)
      (Hashtbl.copy out_books);
    let violate = Random.State.float rng 1.0 < violation_rate in
    if violate then begin
      match Random.State.int rng 2 with
      | 0 ->
        (* borrow by a non-member *)
        let p = "zed" in
        let avail = Array.to_list books |> List.filter lendable in
        (match avail with
         | b :: _ ->
           add (Event_queue.emit events (Update.Insert ("borrow", [| str p; str b |])));
           Hashtbl.replace out_books b (p, now)
         | [] -> ())
      | _ ->
        (* double borrow: borrow a book that is already out *)
        let outs = Hashtbl.fold (fun b _ acc -> b :: acc) out_books [] in
        (match outs with
         | b :: _ ->
           let p = patrons.(Random.State.int rng (Array.length patrons)) in
           if not (Hashtbl.mem members p) then begin
             Hashtbl.replace members p ();
             add (Update.Insert ("member", [| str p |]))
           end;
           add (Event_queue.emit events (Update.Insert ("borrow", [| str p; str b |])))
         | [] -> ())
    end
    else begin
      match Random.State.int rng 4 with
      | 0 ->
        let p = patrons.(Random.State.int rng (Array.length patrons)) in
        if not (Hashtbl.mem members p) then begin
          Hashtbl.replace members p ();
          add (Update.Insert ("member", [| str p |]))
        end
      | 1 | 2 ->
        (* legal borrow: a member takes an available book *)
        let p = patrons.(Random.State.int rng (Array.length patrons)) in
        if not (Hashtbl.mem members p) then begin
          Hashtbl.replace members p ();
          add (Update.Insert ("member", [| str p |]))
        end;
        (* one array of the candidates, one O(1) draw: the List.nth +
           List.length pair traversed them twice per borrow (quadratic as
           the library grows); RNG consumption is unchanged, so the golden
           pins stay byte-identical *)
        let avail = Array.of_list (List.filter lendable (Array.to_list books)) in
        (match Array.length avail with
         | 0 -> ()
         | n ->
           let b = avail.(Random.State.int rng n) in
           add (Event_queue.emit events (Update.Insert ("borrow", [| str p; str b |])));
           Hashtbl.replace out_books b (p, now))
      | _ ->
        (* voluntary early return *)
        let outs = Hashtbl.fold (fun b pt acc -> (b, pt) :: acc) out_books [] in
        (match outs with
         | (b, (p, _)) :: _ -> do_return p b
         | [] -> ())
    end;
    out := (now, List.rev !txn_rev) :: !out
  done;
  Trace.make_exn library_catalog (List.rev !out)

let library =
  { name = "library";
    catalog = library_catalog;
    constraints = library_constraints;
    generate = library_generate }

(* ---------------------------------------------------------------- *)
(* Process monitoring                                                *)
(* ---------------------------------------------------------------- *)

let monitoring_catalog =
  Schema.Catalog.of_list
    [ Schema.make "sensor" [ ("id", Value.TStr); ("val", Value.TInt) ];
      Schema.make "fault" [ ("id", Value.TStr) ];
      Schema.make "alarm" [ ("id", Value.TStr) ];
      Schema.make "ack" [ ("id", Value.TStr) ] ]

let monitoring_constraints =
  [ def_exn
      "constraint alarm_has_fault: forall i. alarm(i) -> once[0,30] fault(i) ;";
    def_exn "constraint ack_has_alarm: forall i. ack(i) -> once[0,5] alarm(i) ;";
    def_exn
      "constraint no_flapping: forall i. alarm(i) -> not once[1,20] alarm(i) ;";
    def_exn
      "constraint sensor_range: forall i, v. sensor(i, v) -> v >= 0 & v <= \
       100 ;";
    def_exn
      "constraint sensor_smooth: forall i, v, w. sensor(i, v) & prev \
       sensor(i, w) -> v <= w + 10 & v >= w - 10 ;" ]

let monitoring_generate ~seed ~steps ~violation_rate =
  let rng = Random.State.make [| seed; 0x5e45 |] in
  let ids = [| "s1"; "s2"; "s3" |] in
  let sensor_vals = Hashtbl.create 8 in
  let last_alarm = Hashtbl.create 8 in
  let recent_fault = Hashtbl.create 8 in (* id -> fault time *)
  let events = Event_queue.create () in
  let time = ref 0 in
  let out = ref [] in
  for _ = 1 to steps do
    time := !time + 1 + Random.State.int rng 3;
    let now = !time in
    (* accumulate reversed; one [List.rev] at commit keeps this linear *)
    let txn_rev = ref (List.rev (Event_queue.flush events)) in
    let add op = txn_rev := op :: !txn_rev in
    let violate = Random.State.float rng 1.0 < violation_rate in
    let pick_id () = ids.(Random.State.int rng (Array.length ids)) in
    if violate then begin
      match Random.State.int rng 3 with
      | 0 ->
        (* alarm with no recent fault *)
        let i = pick_id () in
        if (match Hashtbl.find_opt recent_fault i with
            | Some t -> now - t > 30
            | None -> true)
        then add (Event_queue.emit events (Update.Insert ("alarm", [| str i |])))
        else add (Event_queue.emit events (Update.Insert ("ack", [| str i |])))
      | 1 ->
        (* out-of-range (and discontinuous) sensor value *)
        let i = pick_id () in
        (match Hashtbl.find_opt sensor_vals i with
         | Some v -> add (Update.Delete ("sensor", [| str i; int v |]))
         | None -> ());
        let bad = 101 + Random.State.int rng 100 in
        add (Update.Insert ("sensor", [| str i; int bad |]));
        Hashtbl.replace sensor_vals i bad
      | _ ->
        (* stray acknowledgement *)
        let i = pick_id () in
        if (match Hashtbl.find_opt last_alarm i with
            | Some t -> now - t > 5
            | None -> true)
        then add (Event_queue.emit events (Update.Insert ("ack", [| str i |])))
        else add (Event_queue.emit events (Update.Insert ("fault", [| str i |])))
    end
    else begin
      match Random.State.int rng 4 with
      | 0 ->
        (* sensor update: bounded random walk within range *)
        let i = pick_id () in
        let old = Hashtbl.find_opt sensor_vals i in
        (match old with
         | Some v -> add (Update.Delete ("sensor", [| str i; int v |]))
         | None -> ());
        let v =
          match old with
          | None -> Random.State.int rng 101
          | Some w -> max 0 (min 100 (w - 10 + Random.State.int rng 21))
        in
        add (Update.Insert ("sensor", [| str i; int v |]));
        Hashtbl.replace sensor_vals i v
      | 1 ->
        (* a fault occurs *)
        let i = pick_id () in
        add (Event_queue.emit events (Update.Insert ("fault", [| str i |])));
        Hashtbl.replace recent_fault i now
      | 2 ->
        (* alarm for a recent fault, respecting the flap limit;
           acknowledge immediately *)
        let i = pick_id () in
        let fault_ok =
          match Hashtbl.find_opt recent_fault i with
          | Some t -> now - t <= 30
          | None -> false
        in
        let flap_ok =
          match Hashtbl.find_opt last_alarm i with
          | Some t -> now - t > 20
          | None -> true
        in
        if fault_ok && flap_ok then begin
          add (Event_queue.emit events (Update.Insert ("alarm", [| str i |])));
          Hashtbl.replace last_alarm i now;
          if Random.State.bool rng then
            add (Event_queue.emit events (Update.Insert ("ack", [| str i |])))
        end
        else begin
          add (Event_queue.emit events (Update.Insert ("fault", [| str i |])));
          Hashtbl.replace recent_fault i now
        end
      | _ ->
        (* quiet step: fresh fault to keep the pipeline busy *)
        let i = pick_id () in
        add (Event_queue.emit events (Update.Insert ("fault", [| str i |])));
        Hashtbl.replace recent_fault i now
    end;
    out := (now, List.rev !txn_rev) :: !out
  done;
  Trace.make_exn monitoring_catalog (List.rev !out)

let monitoring =
  { name = "monitoring";
    catalog = monitoring_catalog;
    constraints = monitoring_constraints;
    generate = monitoring_generate }

(* ---------------------------------------------------------------- *)
(* Order fulfillment (logistics)                                     *)
(* ---------------------------------------------------------------- *)

let logistics_catalog =
  Schema.Catalog.of_list
    [ Schema.make "order" [ ("id", Value.TStr) ];
      Schema.make "ship" [ ("id", Value.TStr) ];
      Schema.make "cancel" [ ("id", Value.TStr) ] ]

let logistics_constraints =
  [ def_exn
      "constraint ship_has_order: forall i. ship(i) -> once[0,15] order(i) ;";
    def_exn
      "constraint no_ship_after_cancel: forall i. ship(i) -> not once \
       cancel(i) ;";
    def_exn
      "constraint order_fulfilled: not (exists i. ((not (ship(i) | \
       cancel(i))) since[21,inf] order(i))) ;" ]

let logistics_generate ~seed ~steps ~violation_rate =
  let rng = Random.State.make [| seed; 0x10c5 |] in
  let events = Event_queue.create () in
  let open_orders = Hashtbl.create 16 in  (* id -> order time *)
  let cancelled = Hashtbl.create 16 in
  let neglected = Hashtbl.create 4 in     (* injected expiry violations *)
  let next_id = ref 0 in
  let fresh_id () =
    incr next_id;
    Printf.sprintf "o%d" !next_id
  in
  let time = ref 0 in
  let out = ref [] in
  for _ = 1 to steps do
    time := !time + 1 + Random.State.int rng 3;
    let now = !time in
    (* accumulate reversed; one [List.rev] at commit keeps this linear *)
    let txn_rev = ref (List.rev (Event_queue.flush events)) in
    let add op = txn_rev := op :: !txn_rev in
    (* Deadline handling: open orders must be shipped or cancelled before
       the 21-tick fulfilment limit, except those deliberately neglected. *)
    Hashtbl.iter
      (fun id t0 ->
        (* neglected orders are left to expire (an injected violation), but
           even those are cancelled eventually so one injection does not
           violate at every later state *)
        let deadline = if Hashtbl.mem neglected id then 50 else 16 in
        if now - t0 >= deadline then begin
          add (Event_queue.emit events (Update.Insert ("cancel", [| str id |])));
          Hashtbl.replace cancelled id ();
          Hashtbl.remove open_orders id;
          Hashtbl.remove neglected id
        end)
      (Hashtbl.copy open_orders);
    let violate = Random.State.float rng 1.0 < violation_rate in
    if violate then begin
      match Random.State.int rng 3 with
      | 0 ->
        (* ship something that was never ordered *)
        add (Event_queue.emit events (Update.Insert ("ship", [| str (fresh_id () ^ "x") |])))
      | 1 ->
        (* ship a cancelled order *)
        let ids = Hashtbl.fold (fun id () acc -> id :: acc) cancelled [] in
        (match ids with
         | id :: _ ->
           add (Event_queue.emit events (Update.Insert ("ship", [| str id |])))
         | [] ->
           add (Event_queue.emit events (Update.Insert ("ship", [| str (fresh_id () ^ "y") |]))))
      | _ ->
        (* neglect an open order so that it expires unfulfilled *)
        let ids = Hashtbl.fold (fun id _ acc -> id :: acc) open_orders [] in
        (match ids with
         | id :: _ -> Hashtbl.replace neglected id ()
         | [] ->
           let id = fresh_id () in
           add (Event_queue.emit events (Update.Insert ("order", [| str id |])));
           Hashtbl.replace open_orders id now;
           Hashtbl.replace neglected id ())
    end
    else begin
      match Random.State.int rng 3 with
      | 0 ->
        (* place a new order *)
        let id = fresh_id () in
        add (Event_queue.emit events (Update.Insert ("order", [| str id |])));
        Hashtbl.replace open_orders id now
      | 1 ->
        (* ship an open, recent, never-cancelled order *)
        let candidates =
          Hashtbl.fold
            (fun id t0 acc ->
              if now - t0 <= 15 && not (Hashtbl.mem cancelled id)
                 && not (Hashtbl.mem neglected id)
              then id :: acc
              else acc)
            open_orders []
        in
        (match candidates with
         | id :: _ ->
           add (Event_queue.emit events (Update.Insert ("ship", [| str id |])));
           Hashtbl.remove open_orders id
         | [] ->
           let id = fresh_id () in
           add (Event_queue.emit events (Update.Insert ("order", [| str id |])));
           Hashtbl.replace open_orders id now)
      | _ ->
        (* voluntary cancellation *)
        let ids =
          Hashtbl.fold
            (fun id _ acc ->
              if Hashtbl.mem neglected id then acc else id :: acc)
            open_orders []
        in
        (match ids with
         | id :: _ ->
           add (Event_queue.emit events (Update.Insert ("cancel", [| str id |])));
           Hashtbl.replace cancelled id ();
           Hashtbl.remove open_orders id
         | [] ->
           let id = fresh_id () in
           add (Event_queue.emit events (Update.Insert ("order", [| str id |])));
           Hashtbl.replace open_orders id now)
    end;
    out := (now, List.rev !txn_rev) :: !out
  done;
  Trace.make_exn logistics_catalog (List.rev !out)

let logistics =
  { name = "logistics";
    catalog = logistics_catalog;
    constraints = logistics_constraints;
    generate = logistics_generate }

let all = [ banking; library; monitoring; logistics ]

let constraint_catalog =
  let tagged prefix scenario =
    List.mapi
      (fun i d -> (Printf.sprintf "C%s%d" prefix (i + 1), d))
      scenario.constraints
  in
  List.mapi
    (fun i (_, d) -> (Printf.sprintf "C%d" (i + 1), d))
    (tagged "b" banking @ tagged "l" library @ tagged "m" monitoring
     @ tagged "o" logistics)
