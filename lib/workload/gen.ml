module Value = Rtic_relational.Value
module Schema = Rtic_relational.Schema
module Database = Rtic_relational.Database
module Relation = Rtic_relational.Relation
module Update = Rtic_relational.Update
module Trace = Rtic_temporal.Trace
module Interval = Rtic_temporal.Interval
module F = Rtic_mtl.Formula

let generic_catalog =
  Schema.Catalog.of_list
    [ Schema.make "p" [ ("a", Value.TInt) ];
      Schema.make "q" [ ("a", Value.TInt) ];
      Schema.make "r" [ ("a", Value.TInt); ("b", Value.TInt) ];
      Schema.make "e" [] ]

type params = {
  steps : int;
  domain : int;
  txn_size : int;
  max_gap : int;
  delete_bias : float;
}

let default_params =
  { steps = 100; domain = 8; txn_size = 3; max_gap = 3; delete_bias = 0.4 }

(* Draw one element with a single length lookup and O(1) indexing. The
   list version ([List.nth xs (Random.State.int rng (List.length xs))])
   traversed the candidates twice per draw — quadratic once the candidate
   set scales with the workload. The RNG consumption is identical (one
   [int] draw over the same cardinality), so generator output is
   byte-for-byte unchanged (pinned by test_golden.ml). *)
let pick rng xs = xs.(Random.State.int rng (Array.length xs))

let pick_list rng xs = pick rng (Array.of_list xs)

let update_rels = [| "p"; "q"; "r"; "r"; "e" |]

let random_tuple rng domain = function
  | "p" | "q" -> [ Value.Int (Random.State.int rng domain) ]
  | "r" ->
    [ Value.Int (Random.State.int rng domain);
      Value.Int (Random.State.int rng domain) ]
  | "e" -> []
  | rel -> invalid_arg ("Gen.random_tuple: unknown relation " ^ rel)

let random_trace ~seed params =
  if params.steps < 1 then invalid_arg "Gen.random_trace: steps must be >= 1";
  if params.txn_size < 1 then invalid_arg "Gen.random_trace: txn_size must be >= 1";
  let rng = Random.State.make [| seed; 0x7a5e |] in
  let db = ref (Database.create generic_catalog) in
  let time = ref 0 in
  let steps = ref [] in
  for _ = 1 to params.steps do
    time := !time + 1 + Random.State.int rng params.max_gap;
    let txn = ref [] in
    for _ = 1 to params.txn_size do
      let rel = pick rng update_rels in
      let existing = Database.relation_exn !db rel in
      let deletable = not (Relation.is_empty existing) in
      let op =
        if deletable && Random.State.float rng 1.0 < params.delete_bias then
          Update.Delete (rel, pick_list rng (Relation.to_list existing))
        else
          Update.Insert (rel, Array.of_list (random_tuple rng params.domain rel))
      in
      (match Update.apply_op !db op with
       | Ok db' ->
         db := db';
         txn := op :: !txn
       | Error _ -> ())
    done;
    steps := (!time, List.rev !txn) :: !steps
  done;
  Trace.make_exn generic_catalog (List.rev !steps)

(* --- Random monitorable formulas ------------------------------------- *)

let x = F.Var "x"
let y = F.Var "y"

type cfg = {
  rng : Random.State.t;
  bounded_only : bool;  (* forbid [l,inf] intervals (buffer monitoring) *)
  future : bool;        (* allow bounded future operators *)
  fo_only : bool;       (* no temporal operators at all *)
}

let random_interval cfg =
  let rng = cfg.rng in
  match Random.State.int rng (if cfg.bounded_only then 3 else 4) with
  | 0 -> if cfg.bounded_only then Interval.bounded 0 6 else Interval.full
  | 1 -> Interval.bounded 0 (Random.State.int rng 7)
  | 2 ->
    let l = Random.State.int rng 4 in
    Interval.bounded l (l + Random.State.int rng 6)
  | _ -> Interval.unbounded (Random.State.int rng 4)

(* Future intervals must always be bounded. *)
let random_future_interval cfg =
  let rng = cfg.rng in
  if Random.State.bool rng then Interval.bounded 0 (Random.State.int rng 7)
  else
    let l = Random.State.int rng 4 in
    Interval.bounded l (l + Random.State.int rng 6)

let cmps = F.[| Eq; Ne; Lt; Le; Gt; Ge |]

let random_cmp rng = pick rng cmps

(* Open formulas with exactly the target free variables, safe by
   construction. [budget] bounds temporal nesting. When [cfg.future] is set
   the generator also emits bounded future operators (always with bounded
   intervals); when [cfg.bounded_only] is set, past intervals are bounded
   too, so the result is buffer-monitorable. *)
let rec gen_x cfg budget =
  let rng = cfg.rng in
  let leaf () =
    (* transition atoms are multi-state: not in fo_only mode *)
    match Random.State.int rng (if cfg.fo_only then 3 else 5) with
    | 0 -> F.Atom ("p", [ x ])
    | 1 -> F.Atom ("q", [ x ])
    | 2 when not cfg.fo_only -> F.Inserted ("p", [ x ])
    | 3 when not cfg.fo_only -> F.Deleted ("q", [ x ])
    | _ -> F.Exists ([ "y" ], F.Atom ("r", [ x; y ]))
  in
  if budget <= 0 || Random.State.int rng 3 = 0 then leaf ()
  else
    match
      (if cfg.fo_only then Random.State.int rng 4
       else Random.State.int rng (if cfg.future then 11 else 8))
    with
    | 0 -> F.And (gen_x cfg (budget - 1), gen_x cfg (budget - 1))
    | 1 -> F.Or (gen_x cfg (budget - 1), gen_x cfg (budget - 1))
    | 2 ->
      let lhs =
        if Random.State.int rng 3 = 0 then
          F.Add (x, F.Const (Value.Int (Random.State.int rng 4)))
        else x
      in
      F.And
        ( gen_x cfg (budget - 1),
          F.Cmp (random_cmp rng, lhs, F.Const (Value.Int (Random.State.int rng 8))) )
    | 3 -> F.And (gen_x cfg (budget - 1), F.Not (gen_x cfg (budget - 1)))
    | 4 -> F.Once (random_interval cfg, gen_x cfg (budget - 1))
    | 5 -> F.Prev (random_interval cfg, gen_x cfg (budget - 1))
    | 6 ->
      F.Since (random_interval cfg, gen_x cfg (budget - 1), gen_x cfg (budget - 1))
    | 7 ->
      F.Since
        ( random_interval cfg,
          F.Not (gen_x cfg (budget - 1)),
          gen_x cfg (budget - 1) )
    | 8 -> F.Eventually (random_future_interval cfg, gen_x cfg (budget - 1))
    | 9 -> F.Next (random_future_interval cfg, gen_x cfg (budget - 1))
    | _ ->
      F.Until
        (random_future_interval cfg, gen_x cfg (budget - 1), gen_x cfg (budget - 1))

and gen_xy cfg budget =
  let rng = cfg.rng in
  let leaf () =
    match Random.State.int rng (if cfg.fo_only then 3 else 4) with
    | 0 -> F.Atom ("r", [ x; y ])
    | 1 -> F.And (F.Atom ("p", [ x ]), F.Atom ("q", [ y ]))
    | 2 when not cfg.fo_only -> F.Inserted ("r", [ x; y ])
    | _ -> F.And (F.Atom ("q", [ x ]), F.Atom ("p", [ y ]))
  in
  if budget <= 0 || Random.State.int rng 3 = 0 then leaf ()
  else
    match
      (if cfg.fo_only then Random.State.int rng 4
       else Random.State.int rng (if cfg.future then 10 else 8))
    with
    | 0 -> F.And (gen_xy cfg (budget - 1), gen_x cfg (budget - 1))
    | 1 -> F.Or (gen_xy cfg (budget - 1), gen_xy cfg (budget - 1))
    | 2 ->
      let rhs =
        match Random.State.int rng 3 with
        | 0 -> y
        | 1 -> F.Add (y, F.Const (Value.Int (Random.State.int rng 5)))
        | _ -> F.Sub (F.Mul (y, F.Const (Value.Int 2)), F.Const (Value.Int (Random.State.int rng 5)))
      in
      F.And (gen_xy cfg (budget - 1), F.Cmp (random_cmp rng, x, rhs))
    | 3 ->
      let g =
        if Random.State.bool rng then gen_x cfg (budget - 1)
        else gen_xy cfg (budget - 1)
      in
      F.And (gen_xy cfg (budget - 1), F.Not g)
    | 4 -> F.Once (random_interval cfg, gen_xy cfg (budget - 1))
    | 5 -> F.Prev (random_interval cfg, gen_xy cfg (budget - 1))
    | 6 ->
      let left =
        if Random.State.bool rng then gen_x cfg (budget - 1)
        else gen_xy cfg (budget - 1)
      in
      F.Since (random_interval cfg, left, gen_xy cfg (budget - 1))
    | 7 ->
      let left =
        if Random.State.bool rng then gen_x cfg (budget - 1)
        else gen_xy cfg (budget - 1)
      in
      F.Since (random_interval cfg, F.Not left, gen_xy cfg (budget - 1))
    (* Always over an open positive operand normalizes to an unguardable
       negation (like historically); only closed/negated operands are
       monitorable, so the open generators stick to eventually. *)
    | 8 -> F.Eventually (random_future_interval cfg, gen_xy cfg (budget - 1))
    | _ ->
      let left =
        if Random.State.bool rng then gen_x cfg (budget - 1)
        else gen_xy cfg (budget - 1)
      in
      F.Until (random_future_interval cfg, left, gen_xy cfg (budget - 1))

and gen_closed cfg budget =
  let rng = cfg.rng in
  match
    (if cfg.fo_only then [| 0; 5; 6; 7; 8; 9 |].(Random.State.int rng 6)
     else Random.State.int rng (if cfg.future then 13 else 10))
  with
  | 0 ->
    if cfg.fo_only || Random.State.bool rng then F.Atom ("e", [])
    else F.Inserted ("e", [])
  | 1 when budget > 0 -> F.Once (random_interval cfg, gen_closed cfg (budget - 1))
  | 2 when budget > 0 -> F.Prev (random_interval cfg, gen_closed cfg (budget - 1))
  | 3 when budget > 0 ->
    F.Since
      (random_interval cfg, gen_closed cfg (budget - 1), gen_closed cfg (budget - 1))
  | 4 when budget > 0 ->
    F.Historically (random_interval cfg, gen_closed cfg (budget - 1))
  | 5 -> F.Not (gen_closed cfg (budget - 1))
  | 6 -> F.And (gen_closed cfg (budget - 1), gen_closed cfg (budget - 1))
  | 7 -> F.Or (gen_closed cfg (budget - 1), gen_closed cfg (budget - 1))
  | 8 -> F.Exists ([ "x" ], gen_x cfg budget)
  | 9 -> F.Forall ([ "x"; "y" ], F.Implies (gen_xy cfg budget, gen_xy cfg budget))
  | 10 when budget > 0 ->
    F.Eventually (random_future_interval cfg, gen_closed cfg (budget - 1))
  | 11 when budget > 0 ->
    F.Always (random_future_interval cfg, gen_closed cfg (budget - 1))
  | 12 when budget > 0 ->
    F.Until
      (random_future_interval cfg, gen_closed cfg (budget - 1),
       gen_closed cfg (budget - 1))
  | _ -> F.Atom ("e", [])

let random_formula ~seed ~depth =
  let cfg =
    { rng = Random.State.make [| seed; 0x0f0f |];
      bounded_only = false;
      future = false;
      fo_only = false }
  in
  gen_closed cfg depth

let random_formulas ~seed ~depth ~count =
  List.init count (fun i -> random_formula ~seed:(seed + (1000 * i)) ~depth)

let random_bounded_future_formula ~seed ~depth =
  let cfg =
    { rng = Random.State.make [| seed; 0xf07e |];
      bounded_only = true;
      future = true;
      fo_only = false }
  in
  gen_closed cfg depth

let random_fo_formula ~seed ~depth =
  let cfg =
    { rng = Random.State.make [| seed; 0xf0f0 |];
      bounded_only = true;
      future = false;
      fo_only = true }
  in
  gen_closed cfg depth

let random_open_fo_formula ~seed ~depth =
  let cfg =
    { rng = Random.State.make [| seed; 0x0ff0 |];
      bounded_only = true;
      future = false;
      fo_only = true }
  in
  if Random.State.bool cfg.rng then gen_x cfg depth else gen_xy cfg depth
