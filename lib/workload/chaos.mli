(** Chaos episodes: the crash-recovery equivalence harness.

    One {e episode} runs the same input stream twice through a supervised
    monitor ({!Rtic_core.Supervisor}) over hermetic in-memory filesystems:

    + {b uninterrupted}: feed every input, record every {!outcome};
    + {b crashed}: feed a prefix, abandon the supervisor (the crash),
      damage its state directory with a seeded {!Rtic_core.Faults.plan},
      {!Rtic_core.Supervisor.recover}, and feed the rest — resuming from
      the input position matching the recovered transaction count.

    The episode passes iff the crashed run's outcome sequence — skipped
    and rejected transactions, every violation report, every inconclusive
    marker — is byte-identical to the uninterrupted run's from the resume
    position on. This is the paper-level claim that checkpoint + WAL
    replay is observationally equivalent to never having crashed, under
    every crash site and every supported corruption.

    Everything is deterministic in the caller's seed; a failing episode
    reports enough to replay it exactly. Used by [test/test_resilience.ml]
    (small fixed sweep) and [tools/soak.ml --chaos] (wide sweep). *)

(** What one episode did; all fields are observable facts for logging. *)
type episode = {
  plan : Rtic_core.Faults.plan;
  crash_at : int;  (** Input index at which the first run was abandoned. *)
  accepted_at_crash : int;
  acked_at_crash : int;
      (** Outcomes actually released to the caller before the crash: all
          of them with [group = 1]; with group commit, submissions whose
          batch had not flushed are accepted but unacknowledged. *)
  group : int;  (** The group-commit batch size the episode ran with. *)
  recovered_step : int;
      (** Transactions the recovered supervisor believes were accepted;
          less than [accepted_at_crash] when the damage lost a WAL tail
          (or, with group commit, an unflushed batch — bounded by
          [group - 1] under a clean kill). *)
  resumed_at : int;  (** Input index the second run resumed from. *)
  replayed : int;  (** WAL records replayed during recovery. *)
  torn : bool;  (** The WAL had a torn tail. *)
  skipped_checkpoints : int;  (** Corrupt snapshots skipped. *)
  unrecoverable : bool;
      (** Recovery correctly refused: the damage destroyed every valid
          snapshot (or the WAL header) and the loss was detected and
          reported.  Only possible under a destructive plan — after a
          clean {!Rtic_core.Faults.Kill} this is an episode failure. *)
  damage : string;  (** The fault plan's description of what it did. *)
}

val run_episode :
  ?init:Rtic_relational.Database.t ->
  ?group:int ->
  config:Rtic_core.Supervisor.config ->
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def list ->
  inputs:(int * Rtic_relational.Update.transaction) list ->
  seed:int ->
  plan:Rtic_core.Faults.plan ->
  crash_at:int ->
  (episode, string) result
(** Run one episode. [?group] (default 1) sets the group-commit batch
    size; with [group > 1] the crashed prefix is fed through
    {!Rtic_core.Supervisor.submit}, leaving any unflushed batch in memory
    at the crash, and the episode additionally asserts the acked-loss
    contract: a clean kill loses at most [group - 1] accepted
    transactions and never one whose outcome was released. [Error] is an
    equivalence violation (or an internal failure), with a message naming
    the first diverging position. *)

val run :
  seed:int -> iters:int -> (episode list, string) result
(** A seeded sweep of [iters] episodes over varied workloads — the four
    {!Scenarios} and random {!Gen} formulas — cycling through every fault
    plan, error policy, crash position, small auxiliary budgets
    (exercising quarantine) and occasional clock regressions. Stops at
    the first failing episode. *)

val run_repair :
  seed:int -> iters:int -> (episode list, string) result
(** The [on_error = repair] crash drill: [iters] episodes over
    violation-heavy scenario workloads with the self-healing policy,
    cycling through every fault plan and crash position — including
    crashes that land on repaired transactions. Since a repaired
    transaction is journaled as a single WAL record, every episode
    asserts (via outcome equivalence {e and} final-database equality
    against the uninterrupted run) that a journaled repair is either
    fully applied after recovery or fully absent — never half-applied. *)

val run_group :
  seed:int -> iters:int -> (episode list, string) result
(** The group-commit crash drill: [iters] episodes over scenario
    workloads with batch sizes 2-8 and both WAL formats, cycling through
    every fault plan and crash position, so crashes land with partially
    filled batches in memory. Each episode checks the usual equivalence
    plus the acked-loss window (see {!run_episode}). *)
