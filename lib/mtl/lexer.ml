type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | KW of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | COLON
  | SEMI
  | AMP
  | BAR
  | BANG
  | ARROW
  | IFFARROW
  | EQUAL
  | NOTEQUAL
  | LESS
  | LESSEQ
  | GREATER
  | GREATEREQ
  | PLUS
  | MINUS
  | STAR
  | EOF

type spanned = {
  tok : token;
  line : int;
  col : int;
}

let keywords =
  [ "forall"; "exists"; "not"; "and"; "or"; "since"; "once"; "historically";
    "prev"; "next"; "until"; "eventually"; "always"; "true"; "false"; "inf";
    "constraint"; "schema"; "key"; "reference" ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | REAL f -> Printf.sprintf "real %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | KW s -> Printf.sprintf "keyword '%s'" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | COLON -> "':'"
  | SEMI -> "';'"
  | AMP -> "'&'"
  | BAR -> "'|'"
  | BANG -> "'!'"
  | ARROW -> "'->'"
  | IFFARROW -> "'<->'"
  | EQUAL -> "'='"
  | NOTEQUAL -> "'!='"
  | LESS -> "'<'"
  | LESSEQ -> "'<='"
  | GREATER -> "'>'"
  | GREATEREQ -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | EOF -> "end of input"

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let error i msg =
    Error (Printf.sprintf "line %d, column %d: %s" !line (i - !bol + 1) msg)
  in
  let emit i tok = toks := { tok; line = !line; col = i - !bol + 1 } :: !toks in
  let prev_ends_term () =
    match !toks with
    | { tok = IDENT _ | INT _ | REAL _ | RPAREN; _ } :: _ -> true
    | _ -> false
  in
  let peek i = if i < n then Some src.[i] else None in
  let rec skip_line i = if i < n && src.[i] <> '\n' then skip_line (i + 1) else i in
  let number i =
    (* already at a digit or '-' followed by digit *)
    let start = i in
    let i = if src.[i] = '-' then i + 1 else i in
    let rec digits j = if j < n && is_digit src.[j] then digits (j + 1) else j in
    let j = digits i in
    let j, is_real =
      if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then
        (digits (j + 1), true)
      else (j, false)
    in
    let j, is_real =
      if j < n && (src.[j] = 'e' || src.[j] = 'E') then
        let k = j + 1 in
        let k = if k < n && (src.[k] = '+' || src.[k] = '-') then k + 1 else k in
        if k < n && is_digit src.[k] then (digits k, true) else (j, is_real)
      else (j, is_real)
    in
    let text = String.sub src start (j - start) in
    if is_real then
      match float_of_string_opt text with
      | Some f ->
        emit start (REAL f);
        Ok j
      | None -> error start ("bad real literal " ^ text)
    else
      match int_of_string_opt text with
      | Some v ->
        emit start (INT v);
        Ok j
      | None -> error start ("bad integer literal " ^ text)
  in
  let string_lit i =
    let buf = Buffer.create 16 in
    let rec go j =
      if j >= n then error i "unterminated string literal"
      else
        match src.[j] with
        | '"' ->
          emit i (STRING (Buffer.contents buf));
          Ok (j + 1)
        | '\\' ->
          if j + 1 >= n then error i "unterminated escape"
          else begin
            (match src.[j + 1] with
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | '\\' -> Buffer.add_char buf '\\'
             | '"' -> Buffer.add_char buf '"'
             | c -> Buffer.add_char buf c);
            go (j + 2)
          end
        | '\n' -> error i "newline in string literal"
        | c ->
          Buffer.add_char buf c;
          go (j + 1)
    in
    go (i + 1)
  in
  let rec loop i =
    if i >= n then begin
      emit i EOF;
      Ok (List.rev !toks)
    end
    else
      let c = src.[i] in
      match c with
      | ' ' | '\t' | '\r' -> loop (i + 1)
      | '\n' ->
        incr line;
        bol := i + 1;
        loop (i + 1)
      | '#' -> loop (skip_line i)
      | '/' when peek (i + 1) = Some '/' -> loop (skip_line i)
      | '(' -> emit i LPAREN; loop (i + 1)
      | ')' -> emit i RPAREN; loop (i + 1)
      | '[' -> emit i LBRACKET; loop (i + 1)
      | ']' -> emit i RBRACKET; loop (i + 1)
      | ',' -> emit i COMMA; loop (i + 1)
      | '.' -> emit i DOT; loop (i + 1)
      | ':' -> emit i COLON; loop (i + 1)
      | ';' -> emit i SEMI; loop (i + 1)
      | '&' -> emit i AMP; loop (i + 1)
      | '|' -> emit i BAR; loop (i + 1)
      | '"' -> (match string_lit i with Ok j -> loop j | Error _ as e -> e)
      | '!' ->
        if peek (i + 1) = Some '=' then begin
          emit i NOTEQUAL;
          loop (i + 2)
        end
        else begin
          emit i BANG;
          loop (i + 1)
        end
      | '=' -> emit i EQUAL; loop (i + 1)
      | '<' ->
        (match peek (i + 1), peek (i + 2) with
         | Some '-', Some '>' ->
           emit i IFFARROW;
           loop (i + 3)
         | Some '=', _ ->
           emit i LESSEQ;
           loop (i + 2)
         | _ ->
           emit i LESS;
           loop (i + 1))
      | '>' ->
        if peek (i + 1) = Some '=' then begin
          emit i GREATEREQ;
          loop (i + 2)
        end
        else begin
          emit i GREATER;
          loop (i + 1)
        end
      | '+' -> emit i PLUS; loop (i + 1)
      | '*' -> emit i STAR; loop (i + 1)
      | '-' ->
        (match peek (i + 1) with
         | Some '>' ->
           emit i ARROW;
           loop (i + 2)
         | Some d when is_digit d && not (prev_ends_term ()) ->
           (match number i with Ok j -> loop j | Error _ as e -> e)
         | _ ->
           emit i MINUS;
           loop (i + 1))
      | c when is_digit c ->
        (match number i with Ok j -> loop j | Error _ as e -> e)
      | c when is_ident_start c ->
        let rec stop j = if j < n && is_ident_char src.[j] then stop (j + 1) else j in
        let j = stop i in
        let word = String.sub src i (j - i) in
        if List.mem word keywords then emit i (KW word) else emit i (IDENT word);
        loop j
      | c -> error i (Printf.sprintf "unexpected character %C" c)
  in
  loop 0
