(** Type checking of constraint formulas against a catalog.

    Checks that every relational atom names a catalog relation with the right
    arity, that constants match the attribute types, that each variable is
    used at a single type throughout the formula (variable names are typed
    globally, so reusing a name at two types — even in disjoint scopes — is
    rejected with a clear message), and that order comparisons
    ([<], [<=], [>], [>=]) are applied to numeric operands only. *)

type env = (string * Rtic_relational.Value.ty) list
(** Inferred variable typing, sorted by variable name. *)

val check :
  Rtic_relational.Schema.Catalog.t -> Formula.t -> (env, string) result
(** [check cat f] type-checks [f] and returns the inferred type of every
    variable (free or bound). *)

val check_def :
  Rtic_relational.Schema.Catalog.t -> Formula.def -> (env, string) result
(** Like {!check}; additionally requires the constraint body to be a closed
    formula. *)
