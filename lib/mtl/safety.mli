(** Safe-range (monitorability) analysis.

    First-order logic over an infinite value domain is not evaluable in
    general: formulas such as [not p(x)] or [x < y] denote infinite sets of
    valuations. This module checks that a formula lies in the {e monitorable
    fragment} — the effectively domain-independent class both checkers can
    evaluate to finite relations — and produces the {e conjunction plans}
    the evaluators execute.

    The fragment (over {!Rewrite.normalize}d formulas):
    - atoms are safe and bind their variables;
    - [x = c] is safe (it binds [x]); all other comparisons must appear in a
      conjunction whose safe conjuncts bind their variables;
    - a negation must be closed, or appear in a conjunction whose safe
      conjuncts bind the negated formula's variables (anti-join);
    - both sides of a disjunction must be safe with equal free variables;
    - existentially quantified variables must occur in the body;
    - [Once]/[Prev] of safe formulas are safe;
    - [f since g] requires [g] safe and either [f] safe with
      [fv f ⊆ fv g], or [f = not f'] with [f'] safe and [fv f' ⊆ fv g]
      (the "absence since" idiom, e.g. [not returned(b) since borrowed(b)]).

    Because the checked formula must also hold under every catalog, the
    analysis is purely syntactic. *)

(** One step of a conjunction plan, to be executed left to right. *)
type step =
  | Join of Formula.t
      (** A standalone-safe conjunct: evaluate and natural-join. *)
  | Guard of Formula.t
      (** A comparison-only conjunct (boolean combination of comparisons,
          see {!constraint_only}) whose variables are bound by earlier
          steps: filter row by row. *)
  | Antijoin of Formula.t
      (** A negated conjunct [not f] with [fv f] bound by earlier steps:
          remove the valuations that satisfy [f]. *)

val constraint_only : Formula.t -> bool
(** [true] iff the formula is built only from comparisons, [true]/[false]
    and boolean connectives — evaluable row by row once its variables are
    bound. *)

val flatten_and : Formula.t -> Formula.t list
(** Conjuncts of a right-or-left-nested conjunction, in syntactic order. *)

val plan_conjunction : Formula.t list -> (step list, string) result
(** Order the conjuncts of a conjunction into an executable plan: safe
    conjuncts first (joins), then filters and anti-joins as their variables
    become bound. Fails if some conjunct can never be applied. *)

val check : Formula.t -> (unit, string) result
(** [check f] normalizes [f] (see {!Rewrite.normalize}) and verifies it is in
    the monitorable fragment. *)

val check_def : Formula.def -> (unit, string) result
(** {!check} plus the requirement that the body is closed. *)

val monitorable :
  Rtic_relational.Schema.Catalog.t -> Formula.def -> (unit, string) result
(** Full admission check for a constraint: well-typed ({!Typecheck}), closed,
    and in the monitorable fragment. *)
