(** Lexer for the constraint concrete syntax.

    Produces the token stream consumed by {!Parser}. Comments start with [#]
    or [//] and extend to the end of the line. *)

(** Tokens. *)
type token =
  | IDENT of string      (** identifiers: [[A-Za-z_][A-Za-z0-9_']*], minus keywords *)
  | INT of int           (** integer literals, possibly negative *)
  | REAL of float        (** floating literals (contain ['.'] or exponent) *)
  | STRING of string     (** double-quoted, with escapes *)
  | KW of string         (** keywords: forall exists not and or since until once
                             historically prev next eventually always true
                             false inf constraint schema key reference *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | COLON
  | SEMI
  | AMP                  (** [&] *)
  | BAR                  (** [|] *)
  | BANG                 (** [!] *)
  | ARROW                (** [->] *)
  | IFFARROW             (** [<->] *)
  | EQUAL                (** [=] *)
  | NOTEQUAL             (** [!=] *)
  | LESS                 (** [<] *)
  | LESSEQ               (** [<=] *)
  | GREATER              (** [>] *)
  | GREATEREQ            (** [>=] *)
  | PLUS                 (** [+] *)
  | MINUS                (** binary [-]; [-3] lexes as a negative literal
                             except right after a term-ending token *)
  | STAR                 (** [*] *)
  | EOF

type spanned = {
  tok : token;
  line : int;   (** 1-based *)
  col : int;    (** 1-based *)
}

val keywords : string list
(** The reserved words. *)

val tokenize : string -> (spanned list, string) result
(** Lex a whole input; the result always ends with an [EOF] token. Errors
    mention line and column. *)

val describe : token -> string
(** Human-readable token name for error messages. *)
