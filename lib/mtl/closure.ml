open Formula

module Formula_map = Map.Make (struct
  type nonrec t = Formula.t

  let compare = Formula.compare
end)

type t = {
  nodes : Formula.t array;
  index : int Formula_map.t;
}

let build f =
  let index = ref Formula_map.empty in
  let acc = ref [] in
  let register g =
    if not (Formula_map.mem g !index) then begin
      index := Formula_map.add g (Formula_map.cardinal !index) !index;
      acc := g :: !acc
    end
  in
  let rec go g =
    match g with
    | True | False | Atom _ | Inserted _ | Deleted _ | Cmp _ -> ()
    | Not a | Exists (_, a) ->
      go a
    | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Prev (_, a) | Once (_, a) ->
      go a;
      register g
    | Since (_, a, b) ->
      go a;
      go b;
      register g
    | Next _ | Until _ ->
      invalid_arg
        "Closure.build: future operator (use Rtic_core.Future to monitor \
         bounded-future constraints)"
    | Implies _ | Iff _ | Forall _ | Historically _ | Eventually _
    | Always _ ->
      invalid_arg "Closure.build: formula not in core fragment (normalize first)"
  in
  go f;
  { nodes = Array.of_list (List.rev !acc); index = !index }

let count t = Array.length t.nodes
let nodes t = t.nodes
let id t g = Formula_map.find_opt g t.index

let id_exn t g =
  match id t g with
  | Some i -> i
  | None ->
    invalid_arg
      ("Closure.id_exn: not a temporal subformula of this closure: "
       ^ Pretty.to_string g)
