(** Temporal subformula closure.

    The incremental checker maintains one auxiliary relation per {e distinct}
    temporal subformula ([Prev], [Once] or [Since] node) of the normalized
    constraint. This module enumerates those subformulas bottom-up (children
    before parents) and assigns each a stable integer id. Structurally equal
    subformulas share an id, so a formula mentioning [once p(x)] twice gets a
    single auxiliary relation. *)

type t
(** The closure of one formula. *)

val build : Formula.t -> t
(** [build f] enumerates the temporal subformulas of [f]. [f] is expected to
    be in the core fragment (see {!Rewrite.normalize}); non-core operators
    are rejected with [Invalid_argument]. *)

val count : t -> int
(** Number of distinct temporal subformulas. *)

val nodes : t -> Formula.t array
(** The temporal subformulas, indexed by id, children before parents. *)

val id : t -> Formula.t -> int option
(** The id of a temporal subformula, if it occurs in the closure. *)

val id_exn : t -> Formula.t -> int
(** Like {!id} but raises [Invalid_argument] for foreign subformulas. *)
