(** Recursive-descent parser for the constraint concrete syntax.

    Formula grammar (precedence increases downward; [I] is an optional
    metric interval [\[l,u\]] with [u] a natural or [inf], defaulting to
    [\[0,inf\]]):

    {v
    formula   ::= ('forall' | 'exists') x1, ..., xk '.' formula
                | iff
    iff       ::= implies ('<->' implies)*            (left-assoc)
    implies   ::= or ('->' implies)?                  (right-assoc)
    or        ::= and (('|' | 'or') and)*
    and       ::= since (('&' | 'and') since)*
    since     ::= unary ('since' I unary)*            (left-assoc)
    unary     ::= ('not' | '!') unary
                | 'once' I unary | 'historically' I unary | 'prev' I unary
                | atom
    atom      ::= 'true' | 'false'
                | ident '(' term, ... ')'
                | term cmp term
                | '(' formula ')'
    term      ::= ident | integer | real | string | 'true' | 'false'
    cmp       ::= '=' | '!=' | '<' | '<=' | '>' | '>='
    v}

    A specification file is a sequence of schema declarations and named
    constraints:

    {v
    schema emp(name:str, sal:int)
    constraint salary_known:
      forall e, s. emp(e, s) -> s >= 0 ;
    v} *)

type spec = {
  catalog : Rtic_relational.Schema.Catalog.t;
  defs : Formula.def list;
}
(** A parsed specification: declared schemas and constraints, in file
    order. *)

val formula_of_string : string -> (Formula.t, string) result
(** Parse a single formula (the whole input must be consumed). *)

val def_of_string : string -> (Formula.def, string) result
(** Parse a single [constraint name: body ;] declaration. *)

val spec_of_string : string -> (spec, string) result
(** Parse a specification file. Constraint names must be distinct. *)
