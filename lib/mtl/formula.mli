(** Abstract syntax of real-time integrity constraints.

    The constraint language is first-order logic over the current database
    state, closed under the {e metric past} temporal operators of the paper:

    - [Prev i f]           — ⊖{_I} f: f held at the previous state and the
                             clock advance since then lies in [i];
    - [Since (i, f, g)]    — f S{_I} g: g held at some past (or current)
                             state within distance [i], and f held at every
                             state since (strictly after that state);
    - [Once (i, f)]        — ◆{_I} f ≡ ⊤ S{_I} f;
    - [Historically (i,f)] — ■{_I} f ≡ ¬◆{_I}¬f.

    A {e constraint} is a named closed formula required to hold at every
    state of the timed history. *)

type term =
  | Var of string
  | Const of Rtic_relational.Value.t
  | Add of term * term
      (** Arithmetic is allowed in comparisons only (never as a relation
          argument), over operands of one numeric type. *)
  | Sub of term * term
  | Mul of term * term

(** Comparison operators usable in formulas. [Lt]/[Le]/[Gt]/[Ge] are defined
    on numeric values only. *)
type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | True
  | False
  | Atom of string * term list   (** [R(t1, ..., tk)] over the current state. *)
  | Inserted of string * term list
      (** [+R(t1, ..., tk)] — transition atom: the tuples of [R] present in
          the current state but not in the previous one (at position 0:
          everything in [R]). The active-DBMS "inserted" transition table. *)
  | Deleted of string * term list
      (** [-R(t1, ..., tk)] — the tuples of [R] present in the previous
          state but no longer in the current one (empty at position 0). *)
  | Cmp of cmp * term * term
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists of string list * t
  | Forall of string list * t
  | Prev of Rtic_temporal.Interval.t * t
  | Since of Rtic_temporal.Interval.t * t * t
  | Once of Rtic_temporal.Interval.t * t
  | Historically of Rtic_temporal.Interval.t * t
  | Next of Rtic_temporal.Interval.t * t
      (** ⊕{_I} f — bounded future: f holds at the next state and the clock
          advance lies in [I]. Checked by verdict delay (see
          {!Rtic_core.Future}); the upper bound must be finite. *)
  | Until of Rtic_temporal.Interval.t * t * t
      (** f U{_I} g — bounded future: g holds at some state at distance in
          [I], f holds at every state from now until just before it. *)
  | Eventually of Rtic_temporal.Interval.t * t
      (** ◇{_I} f ≡ ⊤ U{_I} f. *)
  | Always of Rtic_temporal.Interval.t * t
      (** □{_I} f ≡ ¬◇{_I}¬f. *)

(** A named constraint. *)
type def = {
  name : string;
  body : t;
}

val compare : t -> t -> int
(** Structural total order. *)

val equal : t -> t -> bool
(** Structural equality. *)

module Var_set : Set.S with type elt = string
(** Sets of variable names. *)

val term_vars : term -> Var_set.t
(** Variables of a term. *)

val free_vars : t -> Var_set.t
(** Free variables. *)

val free_var_list : t -> string list
(** Free variables as a sorted list. *)

val is_closed : t -> bool
(** [true] iff the formula has no free variable. *)

val atoms : t -> (string * term list) list
(** All relational atoms, in syntactic order, with duplicates. *)

val relations : t -> string list
(** Names of relations mentioned, sorted, distinct. *)

val subst : (string * Rtic_relational.Value.t) list -> t -> t
(** [subst bindings f] replaces free occurrences of each bound variable by
    the given constant. Quantifiers shadow as expected. *)

val size : t -> int
(** Number of AST nodes. *)

val temporal_depth : t -> int
(** Maximal nesting depth of temporal operators. *)

val temporal_count : t -> int
(** Number of temporal operator occurrences. *)

val time_reach : t -> int option
(** How far back in time the truth of the formula can depend on the history:
    [Some d] if states older than [d] ticks can never matter, [None] if the
    dependency is unbounded. [Prev] contributes its upper bound (it reaches
    one state back, but that state can be up to [hi] ticks away — [None] for
    an unbounded previous). Future operators contribute the past reach of
    their arguments only. This is the paper's {e lookback window}; the
    bounded-history encoding prunes against it. *)

val future_reach : t -> int option
(** How far {e forward} in time the truth of the formula can depend on the
    history: [Some 0] for pure-past formulas, [Some d] when states more than
    [d] ticks ahead can never matter, [None] when some future interval is
    unbounded (such formulas cannot be monitored). The horizon of the
    verdict delay in {!Rtic_core.Future}. *)

val past_only : t -> bool
(** [true] iff the formula contains no future operator — the fragment the
    paper's incremental checker accepts directly. *)

val map_intervals : (Rtic_temporal.Interval.t -> Rtic_temporal.Interval.t) -> t -> t
(** Rewrite every operator interval (used by tests and benchmarks to sweep
    window widths). *)

val has_transition_atoms : t -> bool
(** [true] iff the formula mentions [Inserted]/[Deleted] atoms — the
    incremental checker then retains the previous snapshot to answer them. *)
