open Formula

type step =
  | Join of Formula.t
  | Guard of Formula.t
  | Antijoin of Formula.t

let rec constraint_only = function
  | True | False | Cmp _ -> true
  | Not a -> constraint_only a
  | And (a, b) | Or (a, b) -> constraint_only a && constraint_only b
  | Atom _ | Inserted _ | Deleted _ | Exists _ | Prev _ | Once _ | Since _
  | Next _ | Until _ | Implies _ | Iff _ | Forall _ | Historically _
  | Eventually _ | Always _ -> false

let ( let* ) r f = Result.bind r f

let rec flatten_and = function
  | And (a, b) -> flatten_and a @ flatten_and b
  | f -> [ f ]

let unsafe what f =
  Error (Printf.sprintf "%s: %s" what (Pretty.to_string f))

(* [safe f] holds when [f] evaluates standalone to a finite relation over
   exactly its free variables. Defined on core formulas. *)
let rec safe f =
  match f with
  | True | False | Atom _ | Inserted _ | Deleted _ -> Ok ()
  | Cmp (Eq, Var _, Const _) | Cmp (Eq, Const _, Var _) -> Ok ()
  | Cmp (_, Const _, Const _) -> Ok ()
  | Cmp _ ->
    unsafe "comparison must be guarded by a conjunct binding its variables" f
  | Not a ->
    if Var_set.is_empty (free_vars a) then safe a
    else unsafe "negation of a formula with free variables must be guarded" f
  | And _ ->
    let* _ = plan_conjunction (flatten_and f) in
    Ok ()
  | Or (a, b) ->
    let* () = safe a in
    let* () = safe b in
    if Var_set.equal (free_vars a) (free_vars b) then Ok ()
    else
      unsafe "disjuncts must have identical free variables" f
  | Exists (vs, a) ->
    let* () = safe a in
    let fv = free_vars a in
    let missing = List.filter (fun v -> not (Var_set.mem v fv)) vs in
    if missing = [] then Ok ()
    else
      Error
        (Printf.sprintf "quantified variable%s %s do%s not occur in %s"
           (if List.length missing > 1 then "s" else "")
           (String.concat ", " missing)
           (if List.length missing > 1 then "" else "es")
           (Pretty.to_string a))
  | Prev (_, a) | Once (_, a) | Next (_, a) -> safe a
  | Since (_, a, b) | Until (_, a, b) ->
    let* () = safe b in
    let fvb = free_vars b in
    let sub name g =
      if Var_set.subset (free_vars g) fvb then Ok ()
      else
        unsafe
          (Printf.sprintf
             "free variables of the %s argument of 'since' must be among \
              those of the right argument"
             name)
          f
    in
    (match a with
     | Not a' ->
       let* () = safe a' in
       sub "negated left" a'
     | _ ->
       let* () = safe a in
       sub "left" a)
  | Implies _ | Iff _ | Forall _ | Historically _ | Eventually _ | Always _ ->
    unsafe "internal error: formula not normalized" f

and plan_conjunction conjuncts =
  (* Phase 1: all standalone-safe conjuncts become joins. *)
  let standalone, pending =
    List.partition (fun c -> Result.is_ok (safe c)) conjuncts
  in
  if standalone = [] then
    Error
      (Printf.sprintf "conjunction has no safe conjunct to bind variables: %s"
         (Pretty.to_string
            (match conjuncts with
             | [ c ] -> c
             | c :: rest -> List.fold_left (fun a b -> And (a, b)) c rest
             | [] -> True)))
  else
    let bound =
      List.fold_left
        (fun acc c -> Var_set.union acc (free_vars c))
        Var_set.empty standalone
    in
    let steps = List.map (fun c -> Join c) standalone in
    (* Phase 2: guarded conjuncts, in any order that validates. *)
    let applicable bound c =
      if constraint_only c then Var_set.subset (free_vars c) bound
      else
        match c with
        | Not a -> Result.is_ok (safe a) && Var_set.subset (free_vars a) bound
        | _ -> false
    in
    let rec drain steps bound pending =
      match pending with
      | [] -> Ok (List.rev steps)
      | _ ->
        (match List.partition (applicable bound) pending with
         | [], stuck ->
           let culprit = List.hd stuck in
           (match culprit with
            | Not a -> unsafe "guarded negation not coverable by the safe conjuncts" (Not a)
            | c -> unsafe "comparison variables not bound by the safe conjuncts" c)
         | ready, rest ->
           let new_steps =
             List.map
               (fun c ->
                 if constraint_only c then Guard c
                 else
                   match c with
                   | Not a -> Antijoin a
                   | _ -> assert false)
               ready
           in
           drain (List.rev_append new_steps steps) bound rest)
    in
    drain (List.rev steps) bound pending

let check f =
  let f = Rewrite.normalize f in
  safe f

let check_def (d : def) =
  if not (is_closed d.body) then
    Error
      (Printf.sprintf "constraint %s has free variables: %s" d.name
         (String.concat ", " (free_var_list d.body)))
  else
    match check d.body with
    | Ok () -> Ok ()
    | Error m -> Error (Printf.sprintf "constraint %s is not monitorable: %s" d.name m)

let monitorable cat d =
  let* _env = Typecheck.check_def cat d in
  check_def d
