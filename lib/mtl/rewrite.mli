(** Normalization and simplification of constraint formulas.

    Both evaluators (the naive reference and the incremental checker) operate
    on the {e core} fragment produced by {!normalize}:
    [True], [False], [Atom], [Cmp], [Not], [And], [Or], [Exists], [Prev],
    [Since], [Once] — i.e. without [Implies], [Iff], [Forall] and
    [Historically], which are definable:

    - [Implies (a, b)]      ⟶ [Not (And (a, Not b))]
    - [Iff (a, b)]          ⟶ [And (Implies (a, b), Implies (b, a))]
    - [Forall (vs, a)]      ⟶ [Not (Exists (vs, Not a))]
    - [Historically (i, a)] ⟶ [Not (Once (i, Not a))]

    Double negations introduced by these rules are cancelled, and negated
    comparisons flip ([not (s >= t)] ⟶ [s < t]), so e.g. a guarded
    [Historically (i, Not p)] normalizes to the directly monitorable
    [Not (Once (i, p))]. *)

val normalize : Formula.t -> Formula.t
(** Translate to the core fragment (see above) and cancel double negations.
    Free variables and the semantics are preserved. *)

val is_core : Formula.t -> bool
(** [true] iff the formula is already in the core fragment. *)

val simplify : Formula.t -> Formula.t
(** Constant folding on the core fragment: propagates [True]/[False] through
    connectives, quantifiers and temporal operators (e.g.
    [And (True, f) = f], [Once (i, False) = False]). Produces a formula
    equivalent over every history. Also cancels double negation. *)

val nnf_nontemporal : Formula.t -> Formula.t
(** Push negations inward through the boolean connectives and quantifiers of
    a core formula, stopping at atoms, comparisons and temporal operators
    (negation is {e not} pushed through [Since]/[Once]/[Prev], which have no
    dual in the language). Used by tests as a semantics-preserving shuffle. *)
