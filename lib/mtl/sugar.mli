(** Declaration sugar: classical static dependencies as generated constraints.

    Specification files may declare keys and inclusion dependencies; both
    desugar into ordinary (non-temporal) constraints checked by the same
    machinery as everything else:

    {v
    key salary(emp)                       # emp functionally determines the rest
    reference borrow(patron) -> member(patron)
    v}

    - [key R(a1, ..., ak)]: no two tuples of [R] agree on [a1..ak] but
      differ elsewhere. Generated name: [key_R].
    - [reference R(a) -> S(b)]: the projection of [R] on [a...] is contained
      in the projection of [S] on [b...]. Generated name: [ref_R_S]. *)

type decl =
  | Key of string * string list
      (** Relation name and key attribute names. *)
  | Reference of string * string list * string * string list
      (** [(r, r_attrs, s, s_attrs)] — [R(r_attrs) ⊆ S(s_attrs)]. *)

val key_constraint :
  Rtic_relational.Schema.Catalog.t ->
  string ->
  string list ->
  (Formula.def, string) result
(** [key_constraint cat rel attrs] builds the uniqueness constraint.
    Fails on unknown relations/attributes, duplicate attributes, or a key
    covering every attribute of a relation of arity > 0 (trivially true —
    almost certainly a mistake, reported as such). *)

val reference_constraint :
  Rtic_relational.Schema.Catalog.t ->
  string ->
  string list ->
  string ->
  string list ->
  (Formula.def, string) result
(** [reference_constraint cat r r_attrs s s_attrs] builds the inclusion
    dependency. The two attribute lists must have equal length and matching
    types. *)

val desugar :
  Rtic_relational.Schema.Catalog.t ->
  decl ->
  (Formula.def, string) result
(** Dispatch over {!decl}. *)
