module Value = Rtic_relational.Value
module Interval = Rtic_temporal.Interval
open Formula

(* Term precedence: 1 = additive, 2 = multiplicative, 3 = primary.
   Left operands print at the operator's own level (left associativity),
   right operands one level up. *)
let rec term_go lvl ppf t =
  let level = match t with
    | Var _ | Const _ -> 3
    | Mul _ -> 2
    | Add _ | Sub _ -> 1
  in
  let wrap body =
    if level < lvl then begin
      Format.pp_print_char ppf '(';
      body ();
      Format.pp_print_char ppf ')'
    end
    else body ()
  in
  match t with
  | Var x -> Format.pp_print_string ppf x
  | Const v -> Value.pp ppf v
  | Add (a, b) ->
    wrap (fun () ->
        Format.fprintf ppf "%a + %a" (term_go 1) a (term_go 2) b)
  | Sub (a, b) ->
    wrap (fun () ->
        Format.fprintf ppf "%a - %a" (term_go 1) a (term_go 2) b)
  | Mul (a, b) ->
    wrap (fun () ->
        Format.fprintf ppf "%a * %a" (term_go 2) a (term_go 3) b)

let pp_term ppf t = term_go 1 ppf t

let cmp_name = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_cmp ppf c = Format.pp_print_string ppf (cmp_name c)

(* Precedence levels, higher binds tighter:
   0 quantifiers  1 iff  2 implies  3 or  4 and  5 since  6 unary  7 atoms.
   [go min_level] parenthesizes any construct whose level is below
   [min_level]. Binary operators print their "continuing" side at their own
   level and the other side one level up, so that re-parsing rebuilds the
   same tree ('&' and '|' and 'since' associate left, '->' right). *)
let rec go min_level ppf f =
  let level =
    match f with
    | Exists _ | Forall _ -> 0
    | Iff _ -> 1
    | Implies _ -> 2
    | Or _ -> 3
    | And _ -> 4
    | Since _ | Until _ -> 5
    | Not _ | Once _ | Historically _ | Prev _ | Next _ | Eventually _
    | Always _ -> 6
    | True | False | Atom _ | Inserted _ | Deleted _ | Cmp _ -> 7
  in
  let atomic fmt = Format.fprintf ppf fmt in
  let wrap body =
    if level < min_level then begin
      Format.pp_print_char ppf '(';
      body ();
      Format.pp_print_char ppf ')'
    end
    else body ()
  in
  match f with
  | True -> atomic "true"
  | False -> atomic "false"
  | Atom (r, ts) | Inserted (r, ts) | Deleted (r, ts) ->
    let sign =
      match f with Inserted _ -> "+" | Deleted _ -> "-" | _ -> ""
    in
    Format.fprintf ppf "%s%s(%a)" sign r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_term)
      ts
  | Cmp (c, l, r) ->
    Format.fprintf ppf "%a %s %a" pp_term l (cmp_name c) pp_term r
  | Not a -> wrap (fun () -> Format.fprintf ppf "not %a" (go 6) a)
  | Once (i, a) ->
    wrap (fun () -> Format.fprintf ppf "once%a %a" Interval.pp i (go 6) a)
  | Historically (i, a) ->
    wrap (fun () ->
        Format.fprintf ppf "historically%a %a" Interval.pp i (go 6) a)
  | Prev (i, a) ->
    wrap (fun () -> Format.fprintf ppf "prev%a %a" Interval.pp i (go 6) a)
  | Since (i, a, b) ->
    wrap (fun () ->
        Format.fprintf ppf "%a since%a %a" (go 5) a Interval.pp i (go 6) b)
  | Until (i, a, b) ->
    wrap (fun () ->
        Format.fprintf ppf "%a until%a %a" (go 5) a Interval.pp i (go 6) b)
  | Next (i, a) ->
    wrap (fun () -> Format.fprintf ppf "next%a %a" Interval.pp i (go 6) a)
  | Eventually (i, a) ->
    wrap (fun () -> Format.fprintf ppf "eventually%a %a" Interval.pp i (go 6) a)
  | Always (i, a) ->
    wrap (fun () -> Format.fprintf ppf "always%a %a" Interval.pp i (go 6) a)
  | And (a, b) ->
    wrap (fun () -> Format.fprintf ppf "%a & %a" (go 4) a (go 5) b)
  | Or (a, b) ->
    wrap (fun () -> Format.fprintf ppf "%a | %a" (go 3) a (go 4) b)
  | Implies (a, b) ->
    wrap (fun () -> Format.fprintf ppf "%a -> %a" (go 3) a (go 2) b)
  | Iff (a, b) ->
    wrap (fun () -> Format.fprintf ppf "%a <-> %a" (go 1) a (go 2) b)
  | Exists (vs, a) ->
    wrap (fun () ->
        Format.fprintf ppf "exists %s. %a" (String.concat ", " vs) (go 0) a)
  | Forall (vs, a) ->
    wrap (fun () ->
        Format.fprintf ppf "forall %s. %a" (String.concat ", " vs) (go 0) a)

let pp ppf f = go 0 ppf f
let to_string f = Format.asprintf "%a" pp f

let pp_def ppf (d : def) =
  Format.fprintf ppf "constraint %s:@ %a ;" d.name pp d.body

let def_to_string d = Format.asprintf "%a" pp_def d
