module Schema = Rtic_relational.Schema
open Formula

type decl =
  | Key of string * string list
  | Reference of string * string list * string * string list

let ( let* ) r f = Result.bind r f

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let find_schema cat rel =
  match Schema.Catalog.find rel cat with
  | Some s -> Ok s
  | None -> err "unknown relation: %s" rel

let attr_names (s : Schema.t) = List.map (fun a -> a.Schema.attr_name) s.attrs

let check_attrs rel (s : Schema.t) attrs =
  let names = attr_names s in
  let* () =
    List.fold_left
      (fun acc a ->
        let* () = acc in
        if List.mem a names then Ok ()
        else err "relation %s has no attribute %s" rel a)
      (Ok ()) attrs
  in
  if List.length (List.sort_uniq String.compare attrs) <> List.length attrs
  then err "duplicate attribute in the declaration for %s" rel
  else Ok ()

let key_constraint cat rel key_attrs =
  let* s = find_schema cat rel in
  let* () = check_attrs rel s key_attrs in
  if key_attrs = [] then err "key for %s lists no attributes" rel
  else
    let others =
      List.filter (fun a -> not (List.mem a key_attrs)) (attr_names s)
    in
    if others = [] then
      err
        "key for %s covers every attribute: under set semantics this is \
         trivially true (did you mean a subset?)"
        rel
    else begin
      (* variables: key attributes use their own name; each non-key
         attribute a gets a_1 in the first copy and a_2 in the second *)
      let collision =
        List.exists
          (fun a -> List.mem (a ^ "_1") (attr_names s) || List.mem (a ^ "_2") (attr_names s))
          others
      in
      if collision then
        err "attribute names of %s collide with generated _1/_2 variables" rel
      else
        let term_of copy a =
          if List.mem a key_attrs then Var a
          else Var (a ^ "_" ^ string_of_int copy)
        in
        let ts1 = List.map (term_of 1) (attr_names s) in
        let ts2 = List.map (term_of 2) (attr_names s) in
        let differs =
          match others with
          | [] -> assert false
          | o :: rest ->
            List.fold_left
              (fun acc o -> Or (acc, Cmp (Ne, Var (o ^ "_1"), Var (o ^ "_2"))))
              (Cmp (Ne, Var (o ^ "_1"), Var (o ^ "_2")))
              rest
        in
        let all_vars =
          key_attrs
          @ List.concat_map (fun o -> [ o ^ "_1"; o ^ "_2" ]) others
        in
        Ok
          { name = "key_" ^ rel;
            body =
              Not
                (Exists
                   ( all_vars,
                     And (And (Atom (rel, ts1), Atom (rel, ts2)), differs) )) }
    end

let reference_constraint cat r r_attrs s s_attrs =
  let* rs = find_schema cat r in
  let* ss = find_schema cat s in
  let* () = check_attrs r rs r_attrs in
  let* () = check_attrs s ss s_attrs in
  if List.length r_attrs <> List.length s_attrs then
    err "reference %s -> %s lists %d and %d attributes" r s
      (List.length r_attrs) (List.length s_attrs)
  else if r_attrs = [] then err "reference %s -> %s lists no attributes" r s
  else begin
    (* join variables k0_, k1_, ...; other attributes prefixed by side *)
    let join_var i = Printf.sprintf "k%d_" i in
    let index_in attrs a =
      let rec go i = function
        | [] -> None
        | x :: rest -> if x = a then Some i else go (i + 1) rest
      in
      go 0 attrs
    in
    let r_term a =
      match index_in r_attrs a with
      | Some i -> Var (join_var i)
      | None -> Var ("r_" ^ a)
    in
    let s_term a =
      match index_in s_attrs a with
      | Some i -> Var (join_var i)
      | None -> Var ("s_" ^ a)
    in
    let r_ts = List.map r_term (attr_names rs) in
    let s_ts = List.map s_term (attr_names ss) in
    let r_vars =
      List.map
        (fun a ->
          match r_term a with Var v -> v | _ -> assert false)
        (attr_names rs)
    in
    let s_rest =
      List.filter_map
        (fun a ->
          match index_in s_attrs a with
          | Some _ -> None
          | None -> Some ("s_" ^ a))
        (attr_names ss)
    in
    let target =
      if s_rest = [] then Atom (s, s_ts) else Exists (s_rest, Atom (s, s_ts))
    in
    Ok
      { name = Printf.sprintf "ref_%s_%s" r s;
        body = Forall (r_vars, Implies (Atom (r, r_ts), target)) }
  end

let desugar cat = function
  | Key (rel, attrs) -> key_constraint cat rel attrs
  | Reference (r, r_attrs, s, s_attrs) ->
    reference_constraint cat r r_attrs s s_attrs
