module Value = Rtic_relational.Value
module Schema = Rtic_relational.Schema
open Formula

type env = (string * Value.ty) list

let ( let* ) r f = Result.bind r f

(* Typing state: a mutable table mapping each variable name to its type. *)
let unify_var tbl x ty =
  match Hashtbl.find_opt tbl x with
  | None ->
    Hashtbl.add tbl x ty;
    Ok ()
  | Some ty' ->
    if ty = ty' then Ok ()
    else
      Error
        (Printf.sprintf "variable %s used both as %s and as %s" x
           (Value.ty_name ty') (Value.ty_name ty))

let numeric_ty = function
  | Value.TInt | Value.TReal -> true
  | Value.TStr | Value.TBool -> false

let rec check_term tbl ty = function
  | Var x -> unify_var tbl x ty
  | Const v ->
    let got = Value.type_of v in
    if got = ty then Ok ()
    else
      Error
        (Printf.sprintf "constant %s has type %s, expected %s"
           (Value.to_string v) (Value.ty_name got) (Value.ty_name ty))
  | Add (a, b) | Sub (a, b) | Mul (a, b) ->
    if not (numeric_ty ty) then
      Error
        (Printf.sprintf "arithmetic used at non-numeric type %s"
           (Value.ty_name ty))
    else
      let* () = check_term tbl ty a in
      check_term tbl ty b

(* For comparisons we know no expected type a priori; infer from whichever
   side is determined first. *)
let rec term_known_ty tbl = function
  | Var x -> Hashtbl.find_opt tbl x
  | Const v -> Some (Value.type_of v)
  | Add (a, b) | Sub (a, b) | Mul (a, b) ->
    (match term_known_ty tbl a with
     | Some ty -> Some ty
     | None -> term_known_ty tbl b)

let check_cmp tbl c l r =
  let check_both ty =
    let* () = check_term tbl ty l in
    check_term tbl ty r
  in
  match term_known_ty tbl l, term_known_ty tbl r with
  | Some ty, _ | None, Some ty ->
    let* () = check_both ty in
    (match c with
     | Eq | Ne -> Ok ()
     | Lt | Le | Gt | Ge ->
       if numeric_ty ty then Ok ()
       else
         Error
           (Printf.sprintf "order comparison on non-numeric type %s"
              (Value.ty_name ty)))
  | None, None ->
    Error
      "cannot infer the types in a comparison; mention the variables in a \
       relational atom first"

let check cat f =
  let tbl = Hashtbl.create 16 in
  let rec go f =
    match f with
    | True | False -> Ok ()
    | Atom (rel, ts) | Inserted (rel, ts) | Deleted (rel, ts) ->
      (match Schema.Catalog.find rel cat with
       | None -> Error ("unknown relation: " ^ rel)
       | Some s ->
         let want = Schema.arity s in
         let got = List.length ts in
         if got <> want then
           Error
             (Printf.sprintf "relation %s expects %d arguments, got %d" rel
                want got)
         else
           let tys = Schema.attr_types s in
           let rec args i = function
             | [] -> Ok ()
             | t :: rest ->
               (match t with
                | Add _ | Sub _ | Mul _ ->
                  Error
                    (Printf.sprintf
                       "arithmetic is not allowed as an argument of \
                        relation %s (use a comparison instead)"
                       rel)
                | Var _ | Const _ ->
                  let* () = check_term tbl tys.(i) t in
                  args (i + 1) rest)
           in
           args 0 ts)
    | Cmp (c, l, r) -> check_cmp tbl c l r
    | Not a | Exists (_, a) | Forall (_, a)
    | Prev (_, a) | Once (_, a) | Historically (_, a)
    | Next (_, a) | Eventually (_, a) | Always (_, a) -> go a
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) | Since (_, a, b)
    | Until (_, a, b) ->
      let* () = go a in
      go b
  in
  (* Two passes so that a comparison syntactically left of the atom that
     grounds its variables still type-checks. *)
  let* () = go f in
  let* () = go f in
  Ok
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
     |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let check_def cat (d : def) =
  if not (is_closed d.body) then
    Error
      (Printf.sprintf "constraint %s has free variables: %s" d.name
         (String.concat ", " (free_var_list d.body)))
  else check cat d.body
