(** Pretty-printing of formulas in the concrete syntax.

    The output re-parses to a structurally identical formula:
    [Parser.formula_of_string (Pretty.to_string f) = Ok f] for every
    well-formed [f]. Parentheses are inserted only where the precedence and
    associativity of the grammar require them. *)

val pp_term : Format.formatter -> Formula.term -> unit
(** Print a term: a variable name or a value literal. *)

val pp_cmp : Format.formatter -> Formula.cmp -> unit
(** Print a comparison operator ([=], [!=], [<], [<=], [>], [>=]). *)

val pp : Format.formatter -> Formula.t -> unit
(** Print a formula. *)

val to_string : Formula.t -> string
(** [to_string f] is [Format.asprintf "%a" pp f]. *)

val pp_def : Format.formatter -> Formula.def -> unit
(** Print a constraint declaration: [constraint name: body ;]. *)

val def_to_string : Formula.def -> string
(** [def_to_string d] is [Format.asprintf "%a" pp_def d]. *)
