module Value = Rtic_relational.Value
module Schema = Rtic_relational.Schema
module Interval = Rtic_temporal.Interval
open Formula

type spec = {
  catalog : Schema.Catalog.t;
  defs : Formula.def list;
}

exception Parse_error of string

type state = {
  toks : Lexer.spanned array;
  mutable pos : int;
}

let peek st = st.toks.(st.pos).tok

let fail_at st msg =
  let s = st.toks.(st.pos) in
  raise
    (Parse_error (Printf.sprintf "line %d, column %d: %s" s.line s.col msg))

let expected st what =
  fail_at st
    (Printf.sprintf "expected %s, found %s" what (Lexer.describe (peek st)))

let advance st = st.pos <- st.pos + 1

let eat st tok what =
  if peek st = tok then advance st else expected st what

let eat_kw st kw = eat st (Lexer.KW kw) (Printf.sprintf "'%s'" kw)

(* interval ::= '[' nat ',' (nat | 'inf') ']'   (optional; default [0,inf]) *)
let parse_interval_opt st =
  match peek st with
  | Lexer.LBRACKET ->
    advance st;
    let l =
      match peek st with
      | Lexer.INT l when l >= 0 ->
        advance st;
        l
      | Lexer.INT _ -> fail_at st "interval bounds must be non-negative"
      | _ -> expected st "a natural number"
    in
    eat st Lexer.COMMA "','";
    let u =
      match peek st with
      | Lexer.INT u when u >= 0 ->
        advance st;
        Some u
      | Lexer.INT _ -> fail_at st "interval bounds must be non-negative"
      | Lexer.KW "inf" ->
        advance st;
        None
      | _ -> expected st "a natural number or 'inf'"
    in
    eat st Lexer.RBRACKET "']'";
    (match u with
     | Some u when u < l -> fail_at st "empty interval: upper bound below lower"
     | _ -> Interval.make l u)
  | _ -> Interval.full

let parse_term_opt st =
  match peek st with
  | Lexer.IDENT x ->
    (* Only a term if not a relation atom, which the caller checks. *)
    advance st;
    Some (Var x)
  | Lexer.INT n ->
    advance st;
    Some (Const (Value.Int n))
  | Lexer.REAL f ->
    advance st;
    Some (Const (Value.Real f))
  | Lexer.STRING s ->
    advance st;
    Some (Const (Value.Str s))
  | _ -> None

let parse_cmp_opt st =
  let c =
    match peek st with
    | Lexer.EQUAL -> Some Eq
    | Lexer.NOTEQUAL -> Some Ne
    | Lexer.LESS -> Some Lt
    | Lexer.LESSEQ -> Some Le
    | Lexer.GREATER -> Some Gt
    | Lexer.GREATEREQ -> Some Ge
    | _ -> None
  in
  if c <> None then advance st;
  c

let parse_varlist st =
  let rec go acc =
    match peek st with
    | Lexer.IDENT x ->
      advance st;
      if peek st = Lexer.COMMA then begin
        advance st;
        go (x :: acc)
      end
      else List.rev (x :: acc)
    | _ -> expected st "a variable name"
  in
  go []

let rec parse_formula st =
  match peek st with
  | Lexer.KW (("forall" | "exists") as q) ->
    advance st;
    let vs = parse_varlist st in
    eat st Lexer.DOT "'.'";
    let body = parse_formula st in
    if q = "forall" then Forall (vs, body) else Exists (vs, body)
  | _ -> parse_iff st

and parse_iff st =
  let rec go acc =
    if peek st = Lexer.IFFARROW then begin
      advance st;
      let rhs = parse_implies st in
      go (Iff (acc, rhs))
    end
    else acc
  in
  go (parse_implies st)

and parse_implies st =
  let lhs = parse_or st in
  if peek st = Lexer.ARROW then begin
    advance st;
    let rhs = parse_implies st in
    Implies (lhs, rhs)
  end
  else lhs

and parse_or st =
  let rec go acc =
    match peek st with
    | Lexer.BAR | Lexer.KW "or" ->
      advance st;
      let rhs = parse_and st in
      go (Or (acc, rhs))
    | _ -> acc
  in
  go (parse_and st)

and parse_and st =
  let rec go acc =
    match peek st with
    | Lexer.AMP | Lexer.KW "and" ->
      advance st;
      let rhs = parse_since st in
      go (And (acc, rhs))
    | _ -> acc
  in
  go (parse_since st)

and parse_since st =
  let rec go acc =
    match peek st with
    | Lexer.KW "since" ->
      advance st;
      let i = parse_interval_opt st in
      let rhs = parse_unary st in
      go (Since (i, acc, rhs))
    | Lexer.KW "until" ->
      advance st;
      let i = parse_interval_opt st in
      let rhs = parse_unary st in
      go (Until (i, acc, rhs))
    | _ -> acc
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.KW "not" | Lexer.BANG ->
    advance st;
    Not (parse_unary st)
  | Lexer.KW "once" ->
    advance st;
    let i = parse_interval_opt st in
    Once (i, parse_unary st)
  | Lexer.KW "historically" ->
    advance st;
    let i = parse_interval_opt st in
    Historically (i, parse_unary st)
  | Lexer.KW "prev" ->
    advance st;
    let i = parse_interval_opt st in
    Prev (i, parse_unary st)
  | Lexer.KW "next" ->
    advance st;
    let i = parse_interval_opt st in
    Next (i, parse_unary st)
  | Lexer.KW "eventually" ->
    advance st;
    let i = parse_interval_opt st in
    Eventually (i, parse_unary st)
  | Lexer.KW "always" ->
    advance st;
    let i = parse_interval_opt st in
    Always (i, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Lexer.PLUS | Lexer.MINUS ->
    let deleted = peek st = Lexer.MINUS in
    advance st;
    (match peek st with
     | Lexer.IDENT name when st.toks.(st.pos + 1).tok = Lexer.LPAREN ->
       advance st;
       advance st;
       let ts = parse_atom_args st in
       eat st Lexer.RPAREN "')'";
       if deleted then Deleted (name, ts) else Inserted (name, ts)
     | _ -> expected st "a relation atom after the transition sign")
  | Lexer.LPAREN ->
    (* Ambiguity: '(' may open a parenthesized formula or a parenthesized
       arithmetic term heading a comparison. Try the formula reading first
       and fall back to the arithmetic one. *)
    let save = st.pos in
    (try
       advance st;
       let f = parse_formula st in
       eat st Lexer.RPAREN "')'";
       f
     with Parse_error _ ->
       st.pos <- save;
       let lhs = parse_arith st in
       finish_cmp st lhs)
  | Lexer.KW "true" when next_is_cmp st ->
    advance st;
    finish_cmp st (Const (Value.Bool true))
  | Lexer.KW "false" when next_is_cmp st ->
    advance st;
    finish_cmp st (Const (Value.Bool false))
  | Lexer.KW "true" ->
    advance st;
    True
  | Lexer.KW "false" ->
    advance st;
    False
  | Lexer.IDENT name when st.toks.(st.pos + 1).tok = Lexer.LPAREN ->
    advance st;
    advance st;
    let ts = parse_atom_args st in
    eat st Lexer.RPAREN "')'";
    Atom (name, ts)
  | _ ->
    let lhs = parse_arith st in
    finish_cmp st lhs

and parse_atom_args st =
  let rec args acc =
    match parse_term_opt st with
    | None ->
      if acc = [] && peek st = Lexer.RPAREN then List.rev acc
      else expected st "a term"
    | Some t ->
      if peek st = Lexer.COMMA then begin
        advance st;
        args (t :: acc)
      end
      else List.rev (t :: acc)
  in
  args []

(* arithmetic terms:  arith ::= mul (('+'|'-') mul)*
                      mul   ::= prim ('*' prim)*
                      prim  ::= ident | literal | '(' arith ')'  *)
and parse_arith st =
  let rec go acc =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      go (Add (acc, parse_arith_mul st))
    | Lexer.MINUS ->
      advance st;
      go (Sub (acc, parse_arith_mul st))
    | _ -> acc
  in
  go (parse_arith_mul st)

and parse_arith_mul st =
  let rec go acc =
    match peek st with
    | Lexer.STAR ->
      advance st;
      go (Mul (acc, parse_arith_prim st))
    | _ -> acc
  in
  go (parse_arith_prim st)

and parse_arith_prim st =
  match peek st with
  | Lexer.LPAREN ->
    advance st;
    let t = parse_arith st in
    eat st Lexer.RPAREN "')'";
    t
  | _ ->
    (match parse_term_opt st with
     | Some t -> t
     | None -> expected st "a term")

and next_is_cmp st =
  match st.toks.(st.pos + 1).tok with
  | Lexer.EQUAL | Lexer.NOTEQUAL | Lexer.LESS | Lexer.LESSEQ | Lexer.GREATER
  | Lexer.GREATEREQ -> true
  | _ -> false

and finish_cmp st lhs =
  match parse_cmp_opt st with
  | None -> expected st "a comparison operator"
  | Some c ->
    let rhs =
      match peek st with
      | Lexer.KW "true" ->
        advance st;
        Const (Value.Bool true)
      | Lexer.KW "false" ->
        advance st;
        Const (Value.Bool false)
      | _ -> parse_arith st
    in
    Cmp (c, lhs, rhs)

(* schema ::= 'schema' IDENT '(' IDENT ':' IDENT, ... ')' *)
let parse_schema st =
  eat_kw st "schema";
  let name =
    match peek st with
    | Lexer.IDENT x ->
      advance st;
      x
    | _ -> expected st "a relation name"
  in
  eat st Lexer.LPAREN "'('";
  let rec attrs acc =
    match peek st with
    | Lexer.IDENT a ->
      advance st;
      eat st Lexer.COLON "':'";
      let ty =
        match peek st with
        | Lexer.IDENT ty_s ->
          (match Value.ty_of_name ty_s with
           | Some ty ->
             advance st;
             ty
           | None -> fail_at st (Printf.sprintf "unknown type %S" ty_s))
        | _ -> expected st "a type name (int, str, bool, real)"
      in
      if peek st = Lexer.COMMA then begin
        advance st;
        attrs ((a, ty) :: acc)
      end
      else List.rev ((a, ty) :: acc)
    | _ -> expected st "an attribute name"
  in
  let attrs = attrs [] in
  eat st Lexer.RPAREN "')'";
  try Schema.make name attrs with Invalid_argument m -> fail_at st m

(* 'key' IDENT '(' IDENT, ... ')'
   'reference' IDENT '(' IDENT, ... ')' '->' IDENT '(' IDENT, ... ')' *)
let parse_attr_list st =
  eat st Lexer.LPAREN "'('";
  let rec go acc =
    match peek st with
    | Lexer.IDENT a ->
      advance st;
      if peek st = Lexer.COMMA then begin
        advance st;
        go (a :: acc)
      end
      else List.rev (a :: acc)
    | _ -> expected st "an attribute name"
  in
  let attrs = go [] in
  eat st Lexer.RPAREN "')'";
  attrs

let parse_rel_attrs st =
  match peek st with
  | Lexer.IDENT rel ->
    advance st;
    let attrs = parse_attr_list st in
    (rel, attrs)
  | _ -> expected st "a relation name"

let parse_key st =
  eat_kw st "key";
  let rel, attrs = parse_rel_attrs st in
  Sugar.Key (rel, attrs)

let parse_reference st =
  eat_kw st "reference";
  let r, r_attrs = parse_rel_attrs st in
  eat st Lexer.ARROW "'->'";
  let s, s_attrs = parse_rel_attrs st in
  Sugar.Reference (r, r_attrs, s, s_attrs)

(* constraint ::= 'constraint' IDENT ':' formula ';' *)
let parse_def st =
  eat_kw st "constraint";
  let name =
    match peek st with
    | Lexer.IDENT x ->
      advance st;
      x
    | _ -> expected st "a constraint name"
  in
  eat st Lexer.COLON "':'";
  let body = parse_formula st in
  eat st Lexer.SEMI "';'";
  { name; body }

let with_tokens src k =
  match Lexer.tokenize src with
  | Error m -> Error m
  | Ok toks ->
    let st = { toks = Array.of_list toks; pos = 0 } in
    (try
       let v = k st in
       if peek st <> Lexer.EOF then
         expected st "end of input"
       else Ok v
     with Parse_error m -> Error m)

let formula_of_string src = with_tokens src parse_formula
let def_of_string src = with_tokens src parse_def

let spec_of_string src =
  with_tokens src (fun st ->
      let rec add_def cat defs d =
        if List.exists (fun d' -> d'.name = d.name) defs then
          fail_at st (Printf.sprintf "duplicate constraint name %s" d.name)
        else go cat (d :: defs)
      and go cat defs =
        match peek st with
        | Lexer.EOF -> { catalog = cat; defs = List.rev defs }
        | Lexer.KW "schema" -> go (Schema.Catalog.add (parse_schema st) cat) defs
        | Lexer.KW "key" ->
          let decl = parse_key st in
          (match Sugar.desugar cat decl with
           | Ok d -> add_def cat defs d
           | Error m -> fail_at st m)
        | Lexer.KW "reference" ->
          let decl = parse_reference st in
          (match Sugar.desugar cat decl with
           | Ok d -> add_def cat defs d
           | Error m -> fail_at st m)
        | Lexer.KW "constraint" -> add_def cat defs (parse_def st)
        | _ -> expected st "'schema', 'key', 'reference' or 'constraint'"
      in
      go Schema.Catalog.empty [])
