open Formula

let flip_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(* Smart negation: cancel double negations and flip comparisons as we
   build, so that e.g. [not (s >= s0)] becomes the guardable filter
   [s < s0]. *)
let neg = function
  | Not a -> a
  | True -> False
  | False -> True
  | Cmp (c, l, r) -> Cmp (flip_cmp c, l, r)
  | a -> Not a

let rec normalize f =
  match f with
  | True | False | Atom _ | Inserted _ | Deleted _ | Cmp _ -> f
  | Not a -> neg (normalize a)
  | And (a, b) -> And (normalize a, normalize b)
  | Or (a, b) -> Or (normalize a, normalize b)
  | Implies (a, b) -> neg (And (normalize a, neg (normalize b)))
  | Iff (a, b) ->
    let a = normalize a and b = normalize b in
    And (neg (And (a, neg b)), neg (And (b, neg a)))
  | Exists (vs, a) -> Exists (vs, normalize a)
  | Forall (vs, a) -> neg (Exists (vs, neg (normalize a)))
  | Prev (i, a) -> Prev (i, normalize a)
  | Since (i, a, b) -> Since (i, normalize a, normalize b)
  | Once (i, a) -> Once (i, normalize a)
  | Historically (i, a) -> neg (Once (i, neg (normalize a)))
  | Next (i, a) -> Next (i, normalize a)
  | Until (i, a, b) -> Until (i, normalize a, normalize b)
  | Eventually (i, a) -> Until (i, True, normalize a)
  | Always (i, a) -> neg (Until (i, True, neg (normalize a)))

let rec is_core = function
  | True | False | Atom _ | Inserted _ | Deleted _ | Cmp _ -> true
  | Not a | Exists (_, a) | Prev (_, a) | Once (_, a) | Next (_, a) ->
    is_core a
  | And (a, b) | Or (a, b) | Since (_, a, b) | Until (_, a, b) ->
    is_core a && is_core b
  | Implies _ | Iff _ | Forall _ | Historically _ | Eventually _ | Always _ ->
    false

let rec simplify f =
  match f with
  | True | False | Atom _ | Inserted _ | Deleted _ | Cmp _ -> f
  | Not a ->
    (match simplify a with
     | True -> False
     | False -> True
     | Not b -> b
     | Cmp (c, l, r) -> Cmp (flip_cmp c, l, r)
     | a -> Not a)
  | And (a, b) ->
    (match simplify a, simplify b with
     | False, _ | _, False -> False
     | True, b -> b
     | a, True -> a
     | a, b -> And (a, b))
  | Or (a, b) ->
    (match simplify a, simplify b with
     | True, _ | _, True -> True
     | False, b -> b
     | a, False -> a
     | a, b -> Or (a, b))
  | Implies (a, b) -> simplify (normalize (Implies (a, b)))
  | Iff (a, b) -> simplify (normalize (Iff (a, b)))
  | Forall (vs, a) -> simplify (normalize (Forall (vs, a)))
  | Historically (i, a) -> simplify (normalize (Historically (i, a)))
  | Exists (vs, a) ->
    (match simplify a with
     (* Quantifying a constant is sound only when some tuple exists to bind
        the variables; our safety discipline rules the [True] case out, so we
        keep it unchanged rather than fold incorrectly. *)
     | False -> False
     | a -> Exists (vs, a))
  | Prev (i, a) ->
    (match simplify a with
     | False -> False
     | a -> Prev (i, a))
  | Once (i, a) ->
    (match simplify a with
     | False -> False
     | a -> Once (i, a))
  | Since (i, a, b) ->
    (match simplify a, simplify b with
     | _, False -> False
     | a, b -> Since (i, a, b))
  | Next (i, a) ->
    (match simplify a with
     | False -> False
     | a -> Next (i, a))
  | Until (i, a, b) ->
    (match simplify a, simplify b with
     | _, False -> False
     | a, b -> Until (i, a, b))
  | Eventually (i, a) -> simplify (normalize (Eventually (i, a)))
  | Always (i, a) -> simplify (normalize (Always (i, a)))

let rec nnf_nontemporal f =
  match f with
  | True | False | Atom _ | Inserted _ | Deleted _ | Cmp _ -> f
  | And (a, b) -> And (nnf_nontemporal a, nnf_nontemporal b)
  | Or (a, b) -> Or (nnf_nontemporal a, nnf_nontemporal b)
  | Exists (vs, a) -> Exists (vs, nnf_nontemporal a)
  | Prev (i, a) -> Prev (i, nnf_nontemporal a)
  | Once (i, a) -> Once (i, nnf_nontemporal a)
  | Since (i, a, b) -> Since (i, nnf_nontemporal a, nnf_nontemporal b)
  | Next (i, a) -> Next (i, nnf_nontemporal a)
  | Until (i, a, b) -> Until (i, nnf_nontemporal a, nnf_nontemporal b)
  | Not a ->
    (match a with
     | True -> False
     | False -> True
     | Not b -> nnf_nontemporal b
     | And (x, y) -> Or (nnf_nontemporal (Not x), nnf_nontemporal (Not y))
     | Or (x, y) -> And (nnf_nontemporal (Not x), nnf_nontemporal (Not y))
     | Cmp (c, l, r) -> Cmp (flip_cmp c, l, r)
     | Atom _ | Inserted _ | Deleted _ | Exists _ | Prev _ | Once _
     | Since _ | Next _ | Until _ ->
       Not (nnf_nontemporal a)
     | Implies _ | Iff _ | Forall _ | Historically _ | Eventually _
     | Always _ ->
       Not (nnf_nontemporal (normalize a)))
  | Implies _ | Iff _ | Forall _ | Historically _ | Eventually _ | Always _ ->
    nnf_nontemporal (normalize f)
