module Value = Rtic_relational.Value
module Interval = Rtic_temporal.Interval

type term =
  | Var of string
  | Const of Value.t
  | Add of term * term
  | Sub of term * term
  | Mul of term * term

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | True
  | False
  | Atom of string * term list
  | Inserted of string * term list
  | Deleted of string * term list
  | Cmp of cmp * term * term
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists of string list * t
  | Forall of string list * t
  | Prev of Interval.t * t
  | Since of Interval.t * t * t
  | Once of Interval.t * t
  | Historically of Interval.t * t
  | Next of Interval.t * t
  | Until of Interval.t * t * t
  | Eventually of Interval.t * t
  | Always of Interval.t * t

type def = {
  name : string;
  body : t;
}

let rec compare_term a b =
  let rank = function
    | Var _ -> 0 | Const _ -> 1 | Add _ -> 2 | Sub _ -> 3 | Mul _ -> 4
  in
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const x, Const y -> Value.compare x y
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2) ->
    let c = compare_term a1 b1 in
    if c <> 0 then c else compare_term a2 b2
  | _ -> Stdlib.compare (rank a) (rank b)

let compare_cmp (a : cmp) (b : cmp) = Stdlib.compare a b

let rec compare a b =
  let rank = function
    | True -> 0 | False -> 1 | Atom _ -> 2 | Cmp _ -> 3 | Not _ -> 4
    | And _ -> 5 | Or _ -> 6 | Implies _ -> 7 | Iff _ -> 8 | Exists _ -> 9
    | Forall _ -> 10 | Prev _ -> 11 | Since _ -> 12 | Once _ -> 13
    | Historically _ -> 14 | Next _ -> 15 | Until _ -> 16
    | Eventually _ -> 17 | Always _ -> 18 | Inserted _ -> 19 | Deleted _ -> 20
  in
  match a, b with
  | True, True | False, False -> 0
  | Atom (r1, ts1), Atom (r2, ts2)
  | Inserted (r1, ts1), Inserted (r2, ts2)
  | Deleted (r1, ts1), Deleted (r2, ts2) ->
    let c = String.compare r1 r2 in
    if c <> 0 then c else List.compare compare_term ts1 ts2
  | Cmp (c1, l1, r1), Cmp (c2, l2, r2) ->
    let c = compare_cmp c1 c2 in
    if c <> 0 then c
    else
      let c = compare_term l1 l2 in
      if c <> 0 then c else compare_term r1 r2
  | Not a1, Not b1 -> compare a1 b1
  | And (a1, a2), And (b1, b2)
  | Or (a1, a2), Or (b1, b2)
  | Implies (a1, a2), Implies (b1, b2)
  | Iff (a1, a2), Iff (b1, b2) ->
    let c = compare a1 b1 in
    if c <> 0 then c else compare a2 b2
  | Exists (vs1, a1), Exists (vs2, b1) | Forall (vs1, a1), Forall (vs2, b1) ->
    let c = List.compare String.compare vs1 vs2 in
    if c <> 0 then c else compare a1 b1
  | Prev (i1, a1), Prev (i2, b1)
  | Once (i1, a1), Once (i2, b1)
  | Historically (i1, a1), Historically (i2, b1)
  | Next (i1, a1), Next (i2, b1)
  | Eventually (i1, a1), Eventually (i2, b1)
  | Always (i1, a1), Always (i2, b1) ->
    let c = Interval.compare i1 i2 in
    if c <> 0 then c else compare a1 b1
  | Since (i1, a1, a2), Since (i2, b1, b2)
  | Until (i1, a1, a2), Until (i2, b1, b2) ->
    let c = Interval.compare i1 i2 in
    if c <> 0 then c
    else
      let c = compare a1 b1 in
      if c <> 0 then c else compare a2 b2
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

module Var_set = Set.Make (String)

let rec term_vars = function
  | Var x -> Var_set.singleton x
  | Const _ -> Var_set.empty
  | Add (a, b) | Sub (a, b) | Mul (a, b) ->
    Var_set.union (term_vars a) (term_vars b)

let rec free_vars = function
  | True | False -> Var_set.empty
  | Atom (_, ts) | Inserted (_, ts) | Deleted (_, ts) ->
    List.fold_left
      (fun acc t -> Var_set.union acc (term_vars t))
      Var_set.empty ts
  | Cmp (_, l, r) -> Var_set.union (term_vars l) (term_vars r)
  | Not a | Prev (_, a) | Once (_, a) | Historically (_, a)
  | Next (_, a) | Eventually (_, a) | Always (_, a) -> free_vars a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) | Since (_, a, b)
  | Until (_, a, b) ->
    Var_set.union (free_vars a) (free_vars b)
  | Exists (vs, a) | Forall (vs, a) ->
    List.fold_left (fun acc v -> Var_set.remove v acc) (free_vars a) vs

let free_var_list f = Var_set.elements (free_vars f)
let is_closed f = Var_set.is_empty (free_vars f)

let rec atoms = function
  | True | False | Cmp _ -> []
  | Atom (r, ts) | Inserted (r, ts) | Deleted (r, ts) -> [ (r, ts) ]
  | Not a | Exists (_, a) | Forall (_, a)
  | Prev (_, a) | Once (_, a) | Historically (_, a)
  | Next (_, a) | Eventually (_, a) | Always (_, a) -> atoms a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) | Since (_, a, b)
  | Until (_, a, b) ->
    atoms a @ atoms b

let relations f =
  atoms f |> List.map fst |> List.sort_uniq String.compare

let subst bindings f =
  let rec subst_term env = function
    | Var x as t ->
      (match List.assoc_opt x env with Some v -> Const v | None -> t)
    | Const _ as t -> t
    | Add (a, b) -> Add (subst_term env a, subst_term env b)
    | Sub (a, b) -> Sub (subst_term env a, subst_term env b)
    | Mul (a, b) -> Mul (subst_term env a, subst_term env b)
  in
  let rec go env f =
    if env = [] then f
    else
      match f with
      | True | False -> f
      | Atom (r, ts) -> Atom (r, List.map (subst_term env) ts)
      | Inserted (r, ts) -> Inserted (r, List.map (subst_term env) ts)
      | Deleted (r, ts) -> Deleted (r, List.map (subst_term env) ts)
      | Cmp (c, l, r) -> Cmp (c, subst_term env l, subst_term env r)
      | Not a -> Not (go env a)
      | And (a, b) -> And (go env a, go env b)
      | Or (a, b) -> Or (go env a, go env b)
      | Implies (a, b) -> Implies (go env a, go env b)
      | Iff (a, b) -> Iff (go env a, go env b)
      | Exists (vs, a) ->
        Exists (vs, go (List.filter (fun (x, _) -> not (List.mem x vs)) env) a)
      | Forall (vs, a) ->
        Forall (vs, go (List.filter (fun (x, _) -> not (List.mem x vs)) env) a)
      | Prev (i, a) -> Prev (i, go env a)
      | Since (i, a, b) -> Since (i, go env a, go env b)
      | Once (i, a) -> Once (i, go env a)
      | Historically (i, a) -> Historically (i, go env a)
      | Next (i, a) -> Next (i, go env a)
      | Until (i, a, b) -> Until (i, go env a, go env b)
      | Eventually (i, a) -> Eventually (i, go env a)
      | Always (i, a) -> Always (i, go env a)
  in
  go bindings f

let rec size = function
  | True | False | Atom _ | Inserted _ | Deleted _ | Cmp _ -> 1
  | Not a | Exists (_, a) | Forall (_, a)
  | Prev (_, a) | Once (_, a) | Historically (_, a)
  | Next (_, a) | Eventually (_, a) | Always (_, a) -> 1 + size a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) | Since (_, a, b)
  | Until (_, a, b) ->
    1 + size a + size b

let rec temporal_depth = function
  | True | False | Atom _ | Inserted _ | Deleted _ | Cmp _ -> 0
  | Not a | Exists (_, a) | Forall (_, a) -> temporal_depth a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
    max (temporal_depth a) (temporal_depth b)
  | Prev (_, a) | Once (_, a) | Historically (_, a)
  | Next (_, a) | Eventually (_, a) | Always (_, a) -> 1 + temporal_depth a
  | Since (_, a, b) | Until (_, a, b) ->
    1 + max (temporal_depth a) (temporal_depth b)

let rec temporal_count = function
  | True | False | Atom _ | Inserted _ | Deleted _ | Cmp _ -> 0
  | Not a | Exists (_, a) | Forall (_, a) -> temporal_count a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
    temporal_count a + temporal_count b
  | Prev (_, a) | Once (_, a) | Historically (_, a)
  | Next (_, a) | Eventually (_, a) | Always (_, a) -> 1 + temporal_count a
  | Since (_, a, b) | Until (_, a, b) ->
    1 + temporal_count a + temporal_count b

let opt_add a b =
  match a, b with
  | Some x, Some y -> Some (x + y)
  | _ -> None

let opt_max a b =
  match a, b with
  | Some x, Some y -> Some (max x y)
  | _ -> None

let rec time_reach = function
  | True | False | Atom _ | Cmp _ -> Some 0
  (* transition atoms read the previous snapshot, which every checker
     retains when needed; their time reach is unbounded in clock terms but
     bounded in state count — for windowing purposes treat them as the
     current state *)
  | Inserted _ | Deleted _ -> Some 0
  | Not a | Exists (_, a) | Forall (_, a) -> time_reach a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
    opt_max (time_reach a) (time_reach b)
  | Prev (i, a) | Once (i, a) | Historically (i, a) ->
    opt_add (Interval.hi i) (time_reach a)
  | Since (i, a, b) ->
    opt_add (Interval.hi i) (opt_max (time_reach a) (time_reach b))
  | Next (_, a) | Eventually (_, a) | Always (_, a) -> time_reach a
  | Until (_, a, b) -> opt_max (time_reach a) (time_reach b)

let rec future_reach = function
  | True | False | Atom _ | Cmp _ | Inserted _ | Deleted _ -> Some 0
  | Not a | Exists (_, a) | Forall (_, a) -> future_reach a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
    opt_max (future_reach a) (future_reach b)
  | Prev (_, a) | Once (_, a) | Historically (_, a) -> future_reach a
  | Since (_, a, b) -> opt_max (future_reach a) (future_reach b)
  | Next (i, a) | Eventually (i, a) | Always (i, a) ->
    opt_add (Interval.hi i) (future_reach a)
  | Until (i, a, b) ->
    opt_add (Interval.hi i) (opt_max (future_reach a) (future_reach b))

let rec past_only = function
  | True | False | Atom _ | Cmp _ | Inserted _ | Deleted _ -> true
  | Not a | Exists (_, a) | Forall (_, a)
  | Prev (_, a) | Once (_, a) | Historically (_, a) -> past_only a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) | Since (_, a, b) ->
    past_only a && past_only b
  | Next _ | Until _ | Eventually _ | Always _ -> false

let rec map_intervals g = function
  | (True | False | Atom _ | Cmp _ | Inserted _ | Deleted _) as f -> f
  | Not a -> Not (map_intervals g a)
  | And (a, b) -> And (map_intervals g a, map_intervals g b)
  | Or (a, b) -> Or (map_intervals g a, map_intervals g b)
  | Implies (a, b) -> Implies (map_intervals g a, map_intervals g b)
  | Iff (a, b) -> Iff (map_intervals g a, map_intervals g b)
  | Exists (vs, a) -> Exists (vs, map_intervals g a)
  | Forall (vs, a) -> Forall (vs, map_intervals g a)
  | Prev (i, a) -> Prev (g i, map_intervals g a)
  | Since (i, a, b) -> Since (g i, map_intervals g a, map_intervals g b)
  | Once (i, a) -> Once (g i, map_intervals g a)
  | Historically (i, a) -> Historically (g i, map_intervals g a)
  | Next (i, a) -> Next (g i, map_intervals g a)
  | Until (i, a, b) -> Until (g i, map_intervals g a, map_intervals g b)
  | Eventually (i, a) -> Eventually (g i, map_intervals g a)
  | Always (i, a) -> Always (g i, map_intervals g a)

let rec has_transition_atoms = function
  | True | False | Atom _ | Cmp _ -> false
  | Inserted _ | Deleted _ -> true
  | Not a | Exists (_, a) | Forall (_, a)
  | Prev (_, a) | Once (_, a) | Historically (_, a)
  | Next (_, a) | Eventually (_, a) | Always (_, a) -> has_transition_atoms a
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) | Since (_, a, b)
  | Until (_, a, b) ->
    has_transition_atoms a || has_transition_atoms b
