(** Textual serialization of schemas and facts.

    The concrete syntax is line-oriented and shared by database dumps, trace
    files and the command-line tool:

    {v
    schema emp(name:str, sal:int)     # a schema declaration
    emp("alice", 100)                 # a fact
    v}

    Comments start with [#] and run to the end of the line; blank lines are
    ignored. *)

val parse_schema_line : string -> (Schema.t, string) result
(** Parse a [schema name(attr:ty, ...)] declaration. *)

val parse_fact : string -> (string * Tuple.t, string) result
(** Parse a fact [rel(v1, v2, ...)] into the relation name and tuple.
    Values use {!Value.of_string} syntax; commas inside string literals are
    handled. *)

val split_values : string -> (string list, string) result
(** Split a comma-separated value list, respecting double-quoted strings.
    Exposed for reuse by the trace parser. *)

val strip_comment : string -> string
(** Remove a trailing [# ...] comment (quote-aware) and surrounding
    whitespace. *)

val fact_to_string : string -> Tuple.t -> string
(** Render a fact in the concrete syntax accepted by {!parse_fact}. *)

val schema_to_string : Schema.t -> string
(** Render a schema declaration accepted by {!parse_schema_line}. *)

val dump_database : Database.t -> string
(** Render the catalog followed by every stored fact, one item per line. *)

val parse_database : string -> (Database.t, string) result
(** Parse the output of {!dump_database} (schemas may be interleaved with
    facts as long as each schema appears before its facts). *)
