type attr = {
  attr_name : string;
  attr_ty : Value.ty;
}

type t = {
  rel_name : string;
  attrs : attr list;
}

let make name attrs =
  if name = "" then invalid_arg "Schema.make: empty relation name";
  let names = List.map fst attrs in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg ("Schema.make: duplicate attribute name in " ^ name);
  { rel_name = name;
    attrs = List.map (fun (attr_name, attr_ty) -> { attr_name; attr_ty }) attrs }

let arity s = List.length s.attrs

let attr_types s = Array.of_list (List.map (fun a -> a.attr_ty) s.attrs)

let attr_index s name =
  let rec loop i = function
    | [] -> None
    | a :: rest -> if a.attr_name = name then Some i else loop (i + 1) rest
  in
  loop 0 s.attrs

let conforms s t =
  let want = arity s in
  let got = Tuple.arity t in
  if got <> want then
    Error
      (Printf.sprintf "relation %s expects arity %d, tuple has arity %d"
         s.rel_name want got)
  else
    let rec loop i = function
      | [] -> Ok ()
      | a :: rest ->
        let ty = Value.type_of (Tuple.get t i) in
        if ty <> a.attr_ty then
          Error
            (Printf.sprintf "relation %s attribute %s expects %s, got %s"
               s.rel_name a.attr_name (Value.ty_name a.attr_ty)
               (Value.ty_name ty))
        else loop (i + 1) rest
    in
    loop 0 s.attrs

let equal a b =
  a.rel_name = b.rel_name
  && List.length a.attrs = List.length b.attrs
  && List.for_all2
       (fun x y -> x.attr_name = y.attr_name && x.attr_ty = y.attr_ty)
       a.attrs b.attrs

let pp ppf s =
  let pp_attr ppf a =
    Format.fprintf ppf "%s:%s" a.attr_name (Value.ty_name a.attr_ty)
  in
  Format.fprintf ppf "%s(@[%a@])" s.rel_name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_attr)
    s.attrs

module String_map = Map.Make (String)

module Catalog = struct
  type schema = t
  type t = schema String_map.t

  let empty = String_map.empty
  let add s c = String_map.add s.rel_name s c
  let of_list ss = List.fold_left (fun c s -> add s c) empty ss
  let find name c = String_map.find_opt name c
  let mem name c = String_map.mem name c
  let names c = List.map fst (String_map.bindings c)
  let schemas c = List.map snd (String_map.bindings c)

  let pp ppf c =
    Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf (schemas c)
end
