(** Finite relations: immutable sets of same-arity tuples.

    A relation carries its arity explicitly so that the empty relation of
    arity [k] is distinguishable from the empty relation of arity [j]. All
    operations are purely functional. *)

type t
(** A finite relation. *)

val empty : int -> t
(** [empty k] is the empty relation of arity [k]. Raises [Invalid_argument]
    if [k < 0]. *)

val arity : t -> int
(** Arity of the relation. *)

val is_empty : t -> bool
(** [true] iff the relation holds no tuple. *)

val cardinal : t -> int
(** Number of tuples. *)

val mem : Tuple.t -> t -> bool
(** Membership test. *)

val add : Tuple.t -> t -> t
(** [add t r] inserts [t]. Raises [Invalid_argument] if the arity of [t]
    differs from the arity of [r]. *)

val remove : Tuple.t -> t -> t
(** [remove t r] deletes [t]; identity if absent. *)

val of_list : int -> Tuple.t list -> t
(** [of_list k ts] builds a relation of arity [k] from [ts]. *)

val to_list : t -> Tuple.t list
(** Tuples in increasing {!Tuple.compare} order. *)

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over tuples in increasing order. *)

val iter : (Tuple.t -> unit) -> t -> unit
(** Iterate over tuples in increasing order. *)

val filter : (Tuple.t -> bool) -> t -> t
(** Keep the tuples satisfying the predicate. *)

val map : int -> (Tuple.t -> Tuple.t) -> t -> t
(** [map k f r] applies [f] to every tuple; the result has arity [k].
    Raises [Invalid_argument] if some [f t] does not have arity [k]. *)

val exists : (Tuple.t -> bool) -> t -> bool
(** [true] iff some tuple satisfies the predicate. *)

val for_all : (Tuple.t -> bool) -> t -> bool
(** [true] iff every tuple satisfies the predicate. *)

val union : t -> t -> t
(** Set union. Raises [Invalid_argument] on arity mismatch. *)

val inter : t -> t -> t
(** Set intersection. Raises [Invalid_argument] on arity mismatch. *)

val diff : t -> t -> t
(** Set difference. Raises [Invalid_argument] on arity mismatch. *)

val subset : t -> t -> bool
(** [subset a b] is [true] iff every tuple of [a] is in [b]. *)

val equal : t -> t -> bool
(** Extensional equality (same arity, same tuples). *)

val compare : t -> t -> int
(** Total order consistent with {!equal}. *)

val product : t -> t -> t
(** Cartesian product; the arity of the result is the sum of the arities. *)

val project : int array -> t -> t
(** [project idx r] projects every tuple through {!Tuple.project}[ idx]
    (duplicates collapse). *)

val active_domain : t -> Value.t list
(** All values occurring in the relation, sorted, without duplicates. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{(..), (..), ...}]. *)
