let ( let* ) r f = Result.bind r f

let strip_comment line =
  let n = String.length line in
  let rec find i in_string =
    if i >= n then n
    else
      match line.[i] with
      | '"' -> find (i + 1) (not in_string)
      | '\\' when in_string -> find (i + 2) in_string
      | '#' when not in_string -> i
      | _ -> find (i + 1) in_string
  in
  String.trim (String.sub line 0 (find 0 false))

let split_values s =
  let n = String.length s in
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    parts := String.trim (Buffer.contents buf) :: !parts;
    Buffer.clear buf
  in
  let rec go i in_string =
    if i >= n then
      if in_string then Error "unterminated string literal"
      else begin
        flush ();
        Ok (List.rev !parts)
      end
    else
      match s.[i] with
      | '"' ->
        Buffer.add_char buf '"';
        go (i + 1) (not in_string)
      | '\\' when in_string && i + 1 < n ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf s.[i + 1];
        go (i + 2) in_string
      | ',' when not in_string ->
        flush ();
        go (i + 1) false
      | c ->
        Buffer.add_char buf c;
        go (i + 1) in_string
  in
  if String.trim s = "" then Ok [] else go 0 false

(* Split "name(body)" into the name and the text between the outer parens. *)
let split_call s what =
  match String.index_opt s '(' with
  | None -> Error (Printf.sprintf "%s: missing '(' in %S" what s)
  | Some i ->
    let name = String.trim (String.sub s 0 i) in
    if name = "" then Error (Printf.sprintf "%s: missing name in %S" what s)
    else if String.length s = 0 || s.[String.length s - 1] <> ')' then
      Error (Printf.sprintf "%s: missing ')' in %S" what s)
    else
      Ok (name, String.sub s (i + 1) (String.length s - i - 2))

let parse_schema_line line =
  let line = strip_comment line in
  let prefix = "schema " in
  if not (String.length line > String.length prefix
          && String.sub line 0 (String.length prefix) = prefix)
  then Error (Printf.sprintf "not a schema declaration: %S" line)
  else
    let rest = String.sub line 7 (String.length line - 7) in
    let* name, body = split_call (String.trim rest) "schema" in
    let* fields = split_values body in
    let* attrs =
      List.fold_left
        (fun acc field ->
          let* acc = acc in
          match String.index_opt field ':' with
          | None -> Error (Printf.sprintf "schema attribute %S lacks ':type'" field)
          | Some i ->
            let a = String.trim (String.sub field 0 i) in
            let ty_s =
              String.trim (String.sub field (i + 1) (String.length field - i - 1))
            in
            (match Value.ty_of_name ty_s with
             | None -> Error (Printf.sprintf "unknown type %S" ty_s)
             | Some ty -> Ok ((a, ty) :: acc)))
        (Ok []) fields
    in
    (try Ok (Schema.make name (List.rev attrs))
     with Invalid_argument m -> Error m)

let parse_fact line =
  let line = strip_comment line in
  let* name, body = split_call line "fact" in
  let* raw = split_values body in
  let* values =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* v = Value.of_string s in
        Ok (v :: acc))
      (Ok []) raw
  in
  Ok (name, Tuple.make (List.rev values))

let fact_to_string rel t =
  let fields =
    Array.to_list t |> List.map Value.to_string |> String.concat ", "
  in
  Printf.sprintf "%s(%s)" rel fields

let schema_to_string (s : Schema.t) =
  let fields =
    List.map
      (fun a -> Printf.sprintf "%s:%s" a.Schema.attr_name (Value.ty_name a.Schema.attr_ty))
      s.attrs
    |> String.concat ", "
  in
  Printf.sprintf "schema %s(%s)" s.rel_name fields

let dump_database db =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string buf (schema_to_string s);
      Buffer.add_char buf '\n')
    (Schema.Catalog.schemas (Database.catalog db));
  Database.fold
    (fun name r () ->
      Relation.iter
        (fun t ->
          Buffer.add_string buf (fact_to_string name t);
          Buffer.add_char buf '\n')
        r)
    db ();
  Buffer.contents buf

let parse_database text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno cat facts = function
    | [] ->
      let db = Database.create cat in
      List.fold_left
        (fun acc (name, t) ->
          let* db = acc in
          Database.insert db name t)
        (Ok db) (List.rev facts)
    | line :: rest ->
      let body = strip_comment line in
      if body = "" then go (lineno + 1) cat facts rest
      else if String.length body >= 7 && String.sub body 0 7 = "schema " then
        match parse_schema_line body with
        | Ok s -> go (lineno + 1) (Schema.Catalog.add s cat) facts rest
        | Error m -> Error (Printf.sprintf "line %d: %s" lineno m)
      else
        match parse_fact body with
        | Ok f -> go (lineno + 1) cat (f :: facts) rest
        | Error m -> Error (Printf.sprintf "line %d: %s" lineno m)
  in
  go 1 Schema.Catalog.empty [] lines
