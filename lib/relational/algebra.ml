type operand =
  | Col of int
  | Lit of Value.t
  | Add_op of operand * operand
  | Sub_op of operand * operand
  | Mul_op of operand * operand

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type pred =
  | Compare of cmp * operand * operand
  | And_p of pred * pred
  | Or_p of pred * pred
  | Not_p of pred
  | True_p

type t =
  | Scan of string
  | Const of Relation.t
  | Select of pred * t
  | Project of int array * t
  | Product of t * t
  | Join of (int * int) list * t * t
  | Union of t * t
  | Diff of t * t

let ( let* ) r f = Result.bind r f

let rec operand_value t = function
  | Lit v -> Ok v
  | Col i ->
    if i < 0 || i >= Tuple.arity t then
      Error (Printf.sprintf "column %d out of range (arity %d)" i (Tuple.arity t))
    else Ok (Tuple.get t i)
  | Add_op (a, b) -> arith_value t "+" ( + ) ( +. ) a b
  | Sub_op (a, b) -> arith_value t "-" ( - ) ( -. ) a b
  | Mul_op (a, b) -> arith_value t "*" ( * ) ( *. ) a b

and arith_value t name int_op real_op a b =
  let* x = operand_value t a in
  let* y = operand_value t b in
  match x, y with
  | Value.Int x, Value.Int y -> Ok (Value.Int (int_op x y))
  | Value.Real x, Value.Real y -> Ok (Value.Real (real_op x y))
  | x, y ->
    Error
      (Printf.sprintf "arithmetic '%s' on non-numeric or mixed values %s, %s"
         name (Value.to_string x) (Value.to_string y))

let compare_values c a b =
  match c with
  | Eq -> Ok (Value.equal a b)
  | Ne -> Ok (not (Value.equal a b))
  | Lt | Le | Gt | Ge ->
    (match Value.numeric a, Value.numeric b with
     | Some x, Some y ->
       Ok
         (match c with
          | Lt -> x < y
          | Le -> x <= y
          | Gt -> x > y
          | Ge -> x >= y
          | Eq | Ne -> assert false)
     | _ ->
       Error
         (Printf.sprintf "order comparison on non-numeric values %s, %s"
            (Value.to_string a) (Value.to_string b)))

let rec eval_pred p t =
  match p with
  | True_p -> Ok true
  | Compare (c, l, r) ->
    let* a = operand_value t l in
    let* b = operand_value t r in
    compare_values c a b
  | And_p (a, b) ->
    let* x = eval_pred a t in
    if not x then Ok false else eval_pred b t
  | Or_p (a, b) ->
    let* x = eval_pred a t in
    if x then Ok true else eval_pred b t
  | Not_p a ->
    let* x = eval_pred a t in
    Ok (not x)

let max_col_pred p =
  let rec operand acc = function
    | Col i -> max acc i
    | Lit _ -> acc
    | Add_op (a, b) | Sub_op (a, b) | Mul_op (a, b) -> operand (operand acc a) b
  in
  let rec go acc = function
    | True_p -> acc
    | Compare (_, l, r) -> operand (operand acc l) r
    | And_p (a, b) | Or_p (a, b) -> go (go acc a) b
    | Not_p a -> go acc a
  in
  go (-1) p

let rec arity_of cat expr =
  match expr with
  | Scan name ->
    (match Schema.Catalog.find name cat with
     | Some s -> Ok (Schema.arity s)
     | None -> Error ("unknown relation: " ^ name))
  | Const r -> Ok (Relation.arity r)
  | Select (p, e) ->
    let* k = arity_of cat e in
    if max_col_pred p >= k then
      Error
        (Printf.sprintf "selection refers to column %d of arity-%d input"
           (max_col_pred p) k)
    else Ok k
  | Project (idx, e) ->
    let* k = arity_of cat e in
    if Array.exists (fun i -> i < 0 || i >= k) idx then
      Error "projection index out of range"
    else Ok (Array.length idx)
  | Product (a, b) ->
    let* ka = arity_of cat a in
    let* kb = arity_of cat b in
    Ok (ka + kb)
  | Join (cols, a, b) ->
    let* ka = arity_of cat a in
    let* kb = arity_of cat b in
    if List.exists (fun (i, j) -> i < 0 || i >= ka || j < 0 || j >= kb) cols
    then Error "join column out of range"
    else Ok (ka + kb)
  | Union (a, b) | Diff (a, b) ->
    let* ka = arity_of cat a in
    let* kb = arity_of cat b in
    if ka <> kb then
      Error (Printf.sprintf "arity mismatch: %d vs %d" ka kb)
    else Ok ka

(* First predicate error aborts a selection scan; carries the message. *)
exception Pred_error of string

(* Equi-join as a hash join: build a table on the smaller input's join
   columns, probe with the larger. Output tuples are always left ++ right,
   whichever side was the build side. Cost O(|a| + |b| + |out|) instead of
   the nested loop's O(|a| * |b|). *)
let hash_join cols ra rb =
  let k = Relation.arity ra + Relation.arity rb in
  let li = Array.of_list (List.map fst cols) in
  let ri = Array.of_list (List.map snd cols) in
  let key idx t = Array.map (fun i -> Tuple.get t i) idx in
  let build_on_left = Relation.cardinal ra <= Relation.cardinal rb in
  let build, build_idx, probe, probe_idx =
    if build_on_left then (ra, li, rb, ri) else (rb, ri, ra, li)
  in
  let index = Hashtbl.create (max 16 (Relation.cardinal build)) in
  Relation.iter
    (fun t ->
      let k = key build_idx t in
      Hashtbl.replace index k (t :: (try Hashtbl.find index k with Not_found -> [])))
    build;
  Relation.fold
    (fun t acc ->
      match Hashtbl.find_opt index (key probe_idx t) with
      | None -> acc
      | Some matches ->
        List.fold_left
          (fun acc m ->
            let out = if build_on_left then Tuple.append m t else Tuple.append t m in
            Relation.add out acc)
          acc matches)
    probe (Relation.empty k)

let rec eval db expr =
  match expr with
  | Scan name ->
    (match Database.relation db name with
     | Some r -> Ok r
     | None -> Error ("unknown relation: " ^ name))
  | Const r -> Ok r
  | Select (p, e) ->
    let* r = eval db e in
    (try
       Ok
         (Relation.filter
            (fun t ->
              match eval_pred p t with
              | Ok b -> b
              | Error m -> raise (Pred_error m))
            r)
     with Pred_error m -> Error m)
  | Project (idx, e) ->
    let* r = eval db e in
    (try Ok (Relation.project idx r) with Invalid_argument m -> Error m)
  | Product (a, b) ->
    let* ra = eval db a in
    let* rb = eval db b in
    Ok (Relation.product ra rb)
  | Join ([], a, b) ->
    (* Zero-column join is a cartesian product; keep the direct path. *)
    let* ra = eval db a in
    let* rb = eval db b in
    Ok (Relation.product ra rb)
  | Join (cols, a, b) ->
    let* ra = eval db a in
    let* rb = eval db b in
    if Relation.is_empty ra || Relation.is_empty rb then
      (* Same silence as the nested loop: with an empty input no tuple is
         ever touched, so bad column indices cannot surface here. *)
      Ok (Relation.empty (Relation.arity ra + Relation.arity rb))
    else (try Ok (hash_join cols ra rb) with Invalid_argument m -> Error m)
  | Union (a, b) ->
    let* ra = eval db a in
    let* rb = eval db b in
    (try Ok (Relation.union ra rb) with Invalid_argument m -> Error m)
  | Diff (a, b) ->
    let* ra = eval db a in
    let* rb = eval db b in
    (try Ok (Relation.diff ra rb) with Invalid_argument m -> Error m)

let eval_exn db expr =
  match eval db expr with
  | Ok r -> r
  | Error m -> failwith ("Algebra.eval: " ^ m)

let pp_cmp ppf c =
  Format.pp_print_string ppf
    (match c with
     | Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let rec pp_operand ppf = function
  | Col i -> Format.fprintf ppf "#%d" i
  | Lit v -> Value.pp ppf v
  | Add_op (a, b) -> Format.fprintf ppf "(%a + %a)" pp_operand a pp_operand b
  | Sub_op (a, b) -> Format.fprintf ppf "(%a - %a)" pp_operand a pp_operand b
  | Mul_op (a, b) -> Format.fprintf ppf "(%a * %a)" pp_operand a pp_operand b

let rec pp_pred ppf = function
  | True_p -> Format.pp_print_string ppf "true"
  | Compare (c, a, b) ->
    Format.fprintf ppf "%a %a %a" pp_operand a pp_cmp c pp_operand b
  | And_p (a, b) -> Format.fprintf ppf "(%a & %a)" pp_pred a pp_pred b
  | Or_p (a, b) -> Format.fprintf ppf "(%a | %a)" pp_pred a pp_pred b
  | Not_p a -> Format.fprintf ppf "!(%a)" pp_pred a

let rec pp ppf = function
  | Scan name -> Format.pp_print_string ppf name
  | Const r -> Relation.pp ppf r
  | Select (p, e) -> Format.fprintf ppf "sel[%a](%a)" pp_pred p pp e
  | Project (idx, e) ->
    Format.fprintf ppf "proj[%a](%a)"
      (Format.pp_print_seq
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Format.pp_print_int)
      (Array.to_seq idx) pp e
  | Product (a, b) -> Format.fprintf ppf "(%a x %a)" pp a pp b
  | Join (cols, a, b) ->
    Format.fprintf ppf "(%a join[%a] %a)" pp a
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         (fun ppf (i, j) -> Format.fprintf ppf "%d=%d" i j))
      cols pp b
  | Union (a, b) -> Format.fprintf ppf "(%a union %a)" pp a pp b
  | Diff (a, b) -> Format.fprintf ppf "(%a diff %a)" pp a pp b
