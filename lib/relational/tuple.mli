(** Database tuples: fixed-arity sequences of {!Value.t}.

    Tuples are immutable by convention: the arrays backing them must never be
    mutated after construction. All functions in this module respect that
    convention. *)

type t = Value.t array

val make : Value.t list -> t
(** [make vs] is a tuple with the values of [vs], in order. *)

val arity : t -> int
(** Number of fields. *)

val get : t -> int -> Value.t
(** [get t i] is the [i]-th field (0-based). Raises [Invalid_argument] when
    out of range. *)

val compare : t -> t -> int
(** Lexicographic order; shorter tuples sort before longer ones. *)

val equal : t -> t -> bool
(** [equal a b] is [compare a b = 0]. *)

val hash : t -> int
(** Hash compatible with {!equal}. *)

val project : int array -> t -> t
(** [project idx t] is the tuple [[| t.(idx.(0)); t.(idx.(1)); ... |]].
    Raises [Invalid_argument] if an index is out of range. *)

val append : t -> t -> t
(** [append a b] concatenates the fields of [a] and [b]. *)

val types : t -> Value.ty array
(** Runtime type of each field. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(v1, v2, ...)]. *)

val to_string : t -> string
(** [to_string t] is [Format.asprintf "%a" pp t]. *)
