(** Database states: a catalog plus one relation instance per schema.

    A database is a snapshot — one element of a timed history. It is
    immutable; transactions (see {!Update}) produce new snapshots. Every
    relation named in the catalog is always present (initially empty), and
    every stored tuple conforms to its schema. *)

type t
(** A database state. *)

val create : Schema.Catalog.t -> t
(** [create cat] is the database over [cat] with every relation empty. *)

val catalog : t -> Schema.Catalog.t
(** The catalog the database was created with. *)

val relation : t -> string -> Relation.t option
(** [relation db name] is the instance of relation [name], or [None] if the
    catalog has no such relation. *)

val relation_exn : t -> string -> Relation.t
(** Like {!relation} but raises [Invalid_argument] on unknown names. *)

val with_relation : t -> string -> Relation.t -> (t, string) result
(** [with_relation db name r] replaces the instance of [name] by [r].
    Fails if [name] is not in the catalog or the arity of [r] differs from
    the schema. (Per-tuple type conformance is enforced on {!insert}.) *)

val insert : t -> string -> Tuple.t -> (t, string) result
(** [insert db name t] adds [t] to relation [name], checking schema
    conformance. Inserting an existing tuple is a no-op (set semantics). *)

val delete : t -> string -> Tuple.t -> (t, string) result
(** [delete db name t] removes [t] from relation [name]; removing an absent
    tuple is a no-op. Fails only on unknown relation names. *)

val cardinal : t -> int
(** Total number of stored tuples across all relations. *)

val active_domain : t -> Value.t list
(** All values occurring anywhere in the database, sorted, distinct. *)

val equal : t -> t -> bool
(** Extensional equality of all relation instances (catalogs assumed
    compatible). *)

val fold : (string -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over relation instances in name order. *)

val pp : Format.formatter -> t -> unit
(** Prints each non-empty relation on its own line. *)
