(** A small cost-based planner for {!Algebra} expressions.

    Rewrites an expression into an equivalent one that is cheaper to
    evaluate with the hash-join executor:

    - {b selection pushdown}: a conjunct of a selection predicate that only
      touches columns of one join (or product) operand moves below the join,
      shrinking the hashed and probed inputs; selections also commute below
      projections on the way down;
    - {b join operand reordering}: when a projection sits directly above an
      equi-join (the shape the {!Rtic_eval.Codd} compiler emits), the
      operands are swapped so the estimated-smaller input comes first, the
      join columns flipped and the projection re-indexed — no extra
      operator is introduced.

    Cardinality estimates come from [stats] for base relations (e.g. the
    live sizes of a database snapshot) and structural heuristics above
    them; without [stats] every base relation is assumed equal, which
    disables reordering but still allows pushdown.

    Planning preserves results: for every database on which the unplanned
    expression evaluates without error, the planned expression evaluates to
    the same relation. An evaluation that fails may report the error from a
    different operator (a pushed-down selection sees its rows before the
    join would have filtered them), but on catalog-typechecked constraint
    queries predicate evaluation cannot fail. *)

val estimate :
  ?stats:(string -> int option) -> Schema.Catalog.t -> Algebra.t -> int
(** Estimated output cardinality; saturating, never negative. *)

val plan :
  ?stats:(string -> int option) -> Schema.Catalog.t -> Algebra.t -> Algebra.t
(** Rewrite the expression as described above. Statically ill-formed
    expressions ({!Algebra.arity_of} fails) are returned unchanged so the
    evaluator reports the original error. *)

val db_stats : Database.t -> string -> int option
(** Base-relation cardinalities of a database snapshot, for [?stats]. *)
