module String_map = Map.Make (String)

type t = {
  cat : Schema.Catalog.t;
  data : Relation.t String_map.t;
}

let create cat =
  let data =
    List.fold_left
      (fun m s -> String_map.add s.Schema.rel_name (Relation.empty (Schema.arity s)) m)
      String_map.empty (Schema.Catalog.schemas cat)
  in
  { cat; data }

let catalog db = db.cat
let relation db name = String_map.find_opt name db.data

let relation_exn db name =
  match relation db name with
  | Some r -> r
  | None -> invalid_arg ("Database.relation_exn: unknown relation " ^ name)

let with_relation db name r =
  match Schema.Catalog.find name db.cat with
  | None -> Error ("unknown relation: " ^ name)
  | Some s ->
    if Relation.arity r <> Schema.arity s then
      Error
        (Printf.sprintf "relation %s expects arity %d, got %d" name
           (Schema.arity s) (Relation.arity r))
    else Ok { db with data = String_map.add name r db.data }

let insert db name t =
  match Schema.Catalog.find name db.cat with
  | None -> Error ("unknown relation: " ^ name)
  | Some s ->
    (match Schema.conforms s t with
     | Error _ as e -> e
     | Ok () ->
       let r = String_map.find name db.data in
       Ok { db with data = String_map.add name (Relation.add t r) db.data })

let delete db name t =
  match String_map.find_opt name db.data with
  | None -> Error ("unknown relation: " ^ name)
  | Some r -> Ok { db with data = String_map.add name (Relation.remove t r) db.data }

let cardinal db =
  String_map.fold (fun _ r acc -> acc + Relation.cardinal r) db.data 0

module Value_set = Set.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

let active_domain db =
  let vs =
    String_map.fold
      (fun _ r acc ->
        List.fold_left (fun acc v -> Value_set.add v acc) acc
          (Relation.active_domain r))
      db.data Value_set.empty
  in
  Value_set.elements vs

let equal a b = String_map.equal Relation.equal a.data b.data

let fold f db acc = String_map.fold f db.data acc

let pp ppf db =
  let first = ref true in
  String_map.iter
    (fun name r ->
      if not (Relation.is_empty r) then begin
        if not !first then Format.pp_print_newline ppf ();
        first := false;
        Format.fprintf ppf "%s = %a" name Relation.pp r
      end)
    db.data
