(** A positional relational algebra over database states.

    This is the classical algebra (selection, projection, product, equi-join,
    union, difference) used by the first-order fragment of the system and by
    tests and examples that want to query a single snapshot directly.
    Attributes are addressed by position; the named-column machinery used for
    constraint evaluation lives in [Rtic_eval.Valrel]. *)

(** Operand of a comparison: a column of the input, a literal, or
    arithmetic over operands of one numeric type. *)
type operand =
  | Col of int
  | Lit of Value.t
  | Add_op of operand * operand
  | Sub_op of operand * operand
  | Mul_op of operand * operand

(** Comparison operators. Order comparisons require numeric operands. *)
type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

(** Selection predicates. *)
type pred =
  | Compare of cmp * operand * operand
  | And_p of pred * pred
  | Or_p of pred * pred
  | Not_p of pred
  | True_p

(** Algebra expressions. *)
type t =
  | Scan of string                  (** A base relation, by name. *)
  | Const of Relation.t             (** A literal relation. *)
  | Select of pred * t              (** Keep tuples satisfying the predicate. *)
  | Project of int array * t        (** Reorder/drop columns by position. *)
  | Product of t * t                (** Cartesian product. *)
  | Join of (int * int) list * t * t
      (** [Join [(i1,j1);...]] is the equi-join on left column [i]s = right
          column [j]s; the result keeps all left columns then all right
          columns. *)
  | Union of t * t
  | Diff of t * t

val arity_of : Schema.Catalog.t -> t -> (int, string) result
(** Static arity of the expression; checks column references and operand
    arities against the catalog. *)

val eval : Database.t -> t -> (Relation.t, string) result
(** Evaluate over a snapshot. Errors on unknown relations, out-of-range
    columns, arity mismatches, or order comparisons on non-numeric values. *)

val eval_exn : Database.t -> t -> Relation.t
(** Like {!eval} but raises [Failure]. *)

val eval_pred : pred -> Tuple.t -> (bool, string) result
(** Evaluate a selection predicate on a single tuple. *)

val pp : Format.formatter -> t -> unit
(** Structural pretty-printer (for diagnostics). *)
