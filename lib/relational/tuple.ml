type t = Value.t array

let make vs = Array.of_list vs
let arity = Array.length
let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Tuple.get: index out of range";
  t.(i)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec loop i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let project idx t =
  Array.map
    (fun i ->
      if i < 0 || i >= Array.length t then
        invalid_arg "Tuple.project: index out of range"
      else t.(i))
    idx

let append = Array.append

let types t = Array.map Value.type_of t

let pp ppf t =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Value.pp)
    (Array.to_seq t)

let to_string t = Format.asprintf "%a" pp t
