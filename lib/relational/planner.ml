module A = Algebra

(* Saturating arithmetic: estimates multiply (products) and must not wrap. *)
let sat_mul a b = if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b
let sat_add a b = if a > max_int - b then max_int else a + b

(* Cardinality of a base relation unknown to [stats]: any constant works
   as long as it is the same for every unknown scan (reordering then never
   triggers on guesses alone). *)
let default_scan = 64

let rec estimate ?(stats = fun _ -> None) cat e =
  let est e = estimate ~stats cat e in
  match e with
  | A.Scan name -> (match stats name with Some n -> max n 0 | None -> default_scan)
  | A.Const r -> Relation.cardinal r
  | A.Select (_, e) ->
    (* a selection keeps some rows; assume 1/4 but never promote 0 to 1 *)
    let n = est e in
    min n (max 1 (n / 4))
  | A.Project (_, e) -> est e
  | A.Product (a, b) | A.Join ([], a, b) -> sat_mul (est a) (est b)
  | A.Join (_ :: _, a, b) -> max (est a) (est b)
  | A.Union (a, b) -> sat_add (est a) (est b)
  | A.Diff (a, _) -> est a

(* ---------------- predicate plumbing ---------------- *)

let rec operand_cols acc = function
  | A.Col i -> i :: acc
  | A.Lit _ -> acc
  | A.Add_op (a, b) | A.Sub_op (a, b) | A.Mul_op (a, b) ->
    operand_cols (operand_cols acc a) b

let rec pred_cols acc = function
  | A.True_p -> acc
  | A.Compare (_, l, r) -> operand_cols (operand_cols acc l) r
  | A.And_p (a, b) | A.Or_p (a, b) -> pred_cols (pred_cols acc a) b
  | A.Not_p a -> pred_cols acc a

let rec map_cols f = function
  | A.Col i -> A.Col (f i)
  | A.Lit _ as o -> o
  | A.Add_op (a, b) -> A.Add_op (map_cols f a, map_cols f b)
  | A.Sub_op (a, b) -> A.Sub_op (map_cols f a, map_cols f b)
  | A.Mul_op (a, b) -> A.Mul_op (map_cols f a, map_cols f b)

let rec map_pred_cols f = function
  | A.True_p -> A.True_p
  | A.Compare (c, l, r) -> A.Compare (c, map_cols f l, map_cols f r)
  | A.And_p (a, b) -> A.And_p (map_pred_cols f a, map_pred_cols f b)
  | A.Or_p (a, b) -> A.Or_p (map_pred_cols f a, map_pred_cols f b)
  | A.Not_p a -> A.Not_p (map_pred_cols f a)

(* Top-level conjuncts in left-to-right evaluation order. *)
let conjuncts p =
  let rec go acc = function
    | A.And_p (a, b) -> go (go acc a) b
    | p -> p :: acc
  in
  List.rev (go [] p)

let rec and_of = function
  | [] -> A.True_p
  | [ p ] -> p
  | p :: rest -> A.And_p (p, and_of rest)

let wrap_select ps e = match ps with [] -> e | ps -> A.Select (and_of ps, e)

(* ---------------- the rewriter ---------------- *)

let db_stats db name = Option.map Relation.cardinal (Database.relation db name)

let plan ?(stats = fun _ -> None) cat expr =
  let arity e =
    match A.arity_of cat e with
    | Ok k -> k
    | Error _ -> assert false (* the whole expression was checked up front *)
  in
  let est e = estimate ~stats cat e in
  (* Push the conjuncts of a selection predicate as deep as they go: through
     projections (re-indexing the columns), and into whichever operand of a
     join/product they exclusively touch. Conjuncts without columns, or
     touching both sides, stay put. *)
  let rec push_select p e =
    match e with
    | A.Project (idx, e1) ->
      A.Project (idx, push_select (map_pred_cols (fun c -> idx.(c)) p) e1)
    | A.Join (_, a, _) | A.Product (a, _) ->
      let ka = arity a in
      let left, right, keep =
        List.fold_left
          (fun (l, r, k) c ->
            match pred_cols [] c with
            | [] -> (l, r, c :: k)
            | cols when List.for_all (fun i -> i < ka) cols -> (c :: l, r, k)
            | cols when List.for_all (fun i -> i >= ka) cols -> (l, c :: r, k)
            | _ -> (l, r, c :: k))
          ([], [], [])
          (conjuncts p)
      in
      let left = List.rev left and right = List.rev right and keep = List.rev keep in
      if left = [] && right = [] then A.Select (p, e)
      else
        let push_side side ps shift =
          if ps = [] then side
          else push_select (and_of (List.map (map_pred_cols shift) ps)) side
        in
        let e' =
          match e with
          | A.Join (cols, a, b) ->
            A.Join (cols, push_side a left Fun.id,
                    push_side b right (fun c -> c - ka))
          | A.Product (a, b) ->
            A.Product (push_side a left Fun.id,
                       push_side b right (fun c -> c - ka))
          | _ -> assert false
        in
        wrap_select keep e'
    | _ -> A.Select (p, e)
  in
  (* Reorder a projected equi-join so the estimated-smaller operand comes
     first: flip the join columns, re-index the projection. Only fires when
     a projection already sits on top (the Codd shape), so no operator is
     added, and only on a strict estimate win, so plans are stable when
     statistics are silent. *)
  let reorder_project idx e =
    match e with
    | A.Join ((_ :: _ as cols), a, b) when est b < est a ->
      let ka = arity a and kb = arity b in
      let idx' = Array.map (fun p -> if p < ka then kb + p else p - ka) idx in
      A.Project (idx', A.Join (List.map (fun (i, j) -> (j, i)) cols, b, a))
    | _ -> A.Project (idx, e)
  in
  let rec go e =
    match e with
    | A.Scan _ | A.Const _ -> e
    | A.Select (p, e1) -> push_select p (go e1)
    | A.Project (idx, e1) -> reorder_project idx (go e1)
    | A.Product (a, b) -> A.Product (go a, go b)
    | A.Join (cols, a, b) -> A.Join (cols, go a, go b)
    | A.Union (a, b) -> A.Union (go a, go b)
    | A.Diff (a, b) -> A.Diff (go a, go b)
  in
  match A.arity_of cat expr with
  | Error _ -> expr
  | Ok _ -> go expr
