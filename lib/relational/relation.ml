module Tuple_set = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type t = {
  arity : int;
  tuples : Tuple_set.t;
}

let empty k =
  if k < 0 then invalid_arg "Relation.empty: negative arity";
  { arity = k; tuples = Tuple_set.empty }

let arity r = r.arity
let is_empty r = Tuple_set.is_empty r.tuples
let cardinal r = Tuple_set.cardinal r.tuples
let mem t r = Tuple_set.mem t r.tuples

let check_arity op r t =
  if Tuple.arity t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation.%s: tuple arity %d, relation arity %d" op
         (Tuple.arity t) r.arity)

let add t r =
  check_arity "add" r t;
  { r with tuples = Tuple_set.add t r.tuples }

let remove t r = { r with tuples = Tuple_set.remove t r.tuples }
let of_list k ts = List.fold_left (fun r t -> add t r) (empty k) ts
let to_list r = Tuple_set.elements r.tuples
let fold f r acc = Tuple_set.fold f r.tuples acc
let iter f r = Tuple_set.iter f r.tuples
let filter p r = { r with tuples = Tuple_set.filter p r.tuples }

let map k f r =
  fold (fun t acc -> add (f t) acc) r (empty k)

let exists p r = Tuple_set.exists p r.tuples
let for_all p r = Tuple_set.for_all p r.tuples

let same_arity op a b =
  if a.arity <> b.arity then
    invalid_arg
      (Printf.sprintf "Relation.%s: arities %d and %d differ" op a.arity b.arity)

let union a b =
  same_arity "union" a b;
  { a with tuples = Tuple_set.union a.tuples b.tuples }

let inter a b =
  same_arity "inter" a b;
  { a with tuples = Tuple_set.inter a.tuples b.tuples }

let diff a b =
  same_arity "diff" a b;
  { a with tuples = Tuple_set.diff a.tuples b.tuples }

let subset a b = a.arity = b.arity && Tuple_set.subset a.tuples b.tuples
let equal a b = a.arity = b.arity && Tuple_set.equal a.tuples b.tuples

let compare a b =
  let c = Stdlib.compare a.arity b.arity in
  if c <> 0 then c else Tuple_set.compare a.tuples b.tuples

let product a b =
  let k = a.arity + b.arity in
  fold
    (fun ta acc -> fold (fun tb acc -> add (Tuple.append ta tb) acc) b acc)
    a (empty k)

let project idx r =
  fold (fun t acc -> add (Tuple.project idx t) acc) r
    (empty (Array.length idx))

module Value_set = Set.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

let active_domain r =
  let vs =
    fold
      (fun t acc -> Array.fold_left (fun acc v -> Value_set.add v acc) acc t)
      r Value_set.empty
  in
  Value_set.elements vs

let pp ppf r =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Tuple.pp)
    (to_list r)
