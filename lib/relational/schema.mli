(** Relation schemas and database catalogs.

    A schema gives a relation's name and the name and type of each attribute.
    A catalog maps relation names to their schemas; every database and every
    constraint is checked against a catalog. *)

(** A named, typed attribute. *)
type attr = {
  attr_name : string;
  attr_ty : Value.ty;
}

(** A relation schema. Attribute names within a schema are distinct. *)
type t = {
  rel_name : string;
  attrs : attr list;
}

val make : string -> (string * Value.ty) list -> t
(** [make name attrs] builds a schema. Raises [Invalid_argument] if attribute
    names repeat or [name] is empty. *)

val arity : t -> int
(** Number of attributes. *)

val attr_types : t -> Value.ty array
(** Attribute types, in declaration order. *)

val attr_index : t -> string -> int option
(** [attr_index s a] is the position of attribute [a] in [s], if any. *)

val conforms : t -> Tuple.t -> (unit, string) result
(** [conforms s t] checks that [t] has the arity and field types required by
    [s]. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Prints as [name(attr1:ty1, attr2:ty2, ...)]. *)

(** Catalogs: immutable maps from relation name to schema. *)
module Catalog : sig
  type schema := t

  type t
  (** A catalog. *)

  val empty : t
  (** The catalog with no relations. *)

  val add : schema -> t -> t
  (** [add s c] binds [s.rel_name] to [s], replacing any previous binding. *)

  val of_list : schema list -> t
  (** [of_list ss] is [List.fold_right add ss empty]. *)

  val find : string -> t -> schema option
  (** Look a schema up by relation name. *)

  val mem : string -> t -> bool
  (** [mem name c] is [true] iff [c] has a schema named [name]. *)

  val names : t -> string list
  (** All relation names, sorted. *)

  val schemas : t -> schema list
  (** All schemas, sorted by relation name. *)

  val pp : Format.formatter -> t -> unit
  (** One schema per line. *)
end
