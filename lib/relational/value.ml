type ty =
  | TInt
  | TStr
  | TBool
  | TReal

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Real of float

let type_of = function
  | Int _ -> TInt
  | Str _ -> TStr
  | Bool _ -> TBool
  | Real _ -> TReal

let ty_name = function
  | TInt -> "int"
  | TStr -> "str"
  | TBool -> "bool"
  | TReal -> "real"

let ty_of_name = function
  | "int" -> Some TInt
  | "str" -> Some TStr
  | "bool" -> Some TBool
  | "real" -> Some TReal
  | _ -> None

let ty_rank = function
  | TInt -> 0
  | TStr -> 1
  | TBool -> 2
  | TReal -> 3

let compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Real x, Real y -> Stdlib.compare x y
  | _ -> Stdlib.compare (ty_rank (type_of a)) (ty_rank (type_of b))

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str x -> Hashtbl.hash (1, x)
  | Bool x -> Hashtbl.hash (2, x)
  | Real x -> Hashtbl.hash (3, x)

let numeric = function
  | Int x -> Some (float_of_int x)
  | Real x -> Some x
  | Str _ | Bool _ -> None

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Str x -> Format.fprintf ppf "%S" x
  | Bool x -> Format.pp_print_bool ppf x
  | Real x ->
    (* Keep a trailing component so the output re-parses as a real. *)
    let s = Printf.sprintf "%.12g" x in
    if String.contains s '.' || String.contains s 'e'
       || String.contains s 'n' || String.contains s 'i'
    then Format.pp_print_string ppf s
    else Format.fprintf ppf "%s.0" s

let pp_ty ppf ty = Format.pp_print_string ppf (ty_name ty)

let to_string v = Format.asprintf "%a" pp v

let of_string s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then Error "empty value"
  else if s = "true" then Ok (Bool true)
  else if s = "false" then Ok (Bool false)
  else if s.[0] = '"' then
    if n >= 2 && s.[n - 1] = '"' then
      (* %n checks the scanner consumed the whole token: %S alone would
         silently accept (and drop) trailing garbage after the close quote,
         e.g. ["a" "b"] parsing as just "a". *)
      try
        let x, consumed = Scanf.sscanf s "%S%n" (fun x k -> (x, k)) in
        if consumed = n then Ok (Str x)
        else Error ("trailing garbage after string literal: " ^ s)
      with Scanf.Scan_failure m | Failure m -> Error ("bad string literal: " ^ m)
    else Error ("unterminated string literal: " ^ s)
  else
    match int_of_string_opt s with
    | Some i -> Ok (Int i)
    | None ->
      (match float_of_string_opt s with
       | Some f -> Ok (Real f)
       | None -> Error ("unrecognized value literal: " ^ s))
