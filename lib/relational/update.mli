(** Database updates and transactions.

    A transaction is an ordered list of primitive updates applied atomically:
    either all of them type-check against the catalog and the transaction
    commits, or none is applied. Transactions are the unit at which the
    real-time clock stamps states and at which integrity constraints are
    re-checked. *)

(** A primitive update. *)
type op =
  | Insert of string * Tuple.t  (** [Insert (rel, t)] adds [t] to [rel]. *)
  | Delete of string * Tuple.t  (** [Delete (rel, t)] removes [t] from [rel]. *)

type transaction = op list
(** An atomic batch of updates, applied left to right. *)

val insert : string -> Value.t list -> op
(** [insert rel vs] is [Insert (rel, Tuple.make vs)]. *)

val delete : string -> Value.t list -> op
(** [delete rel vs] is [Delete (rel, Tuple.make vs)]. *)

val apply_op : Database.t -> op -> (Database.t, string) result
(** Apply one primitive update. *)

val apply : Database.t -> transaction -> (Database.t, string) result
(** [apply db txn] applies all updates of [txn] in order; the first failing
    update aborts the whole transaction and the original [db] is reported in
    no way modified. *)

val apply_exn : Database.t -> transaction -> Database.t
(** Like {!apply} but raises [Failure] with the error message. *)

val invert : op -> op
(** [invert op] is the update undoing [op] (assuming [op] changed the state:
    inserts invert to deletes and vice versa). *)

val pp_op : Format.formatter -> op -> unit
(** Prints as [+rel(v, ...)] or [-rel(v, ...)]. *)

val pp : Format.formatter -> transaction -> unit
(** Prints the updates separated by spaces. *)
