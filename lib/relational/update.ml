type op =
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t

type transaction = op list

let insert rel vs = Insert (rel, Tuple.make vs)
let delete rel vs = Delete (rel, Tuple.make vs)

let apply_op db = function
  | Insert (rel, t) -> Database.insert db rel t
  | Delete (rel, t) -> Database.delete db rel t

let apply db txn =
  let rec loop db = function
    | [] -> Ok db
    | op :: rest ->
      (match apply_op db op with
       | Ok db -> loop db rest
       | Error _ as e -> e)
  in
  loop db txn

let apply_exn db txn =
  match apply db txn with
  | Ok db -> db
  | Error msg -> failwith ("transaction failed: " ^ msg)

let invert = function
  | Insert (rel, t) -> Delete (rel, t)
  | Delete (rel, t) -> Insert (rel, t)

let pp_op ppf = function
  | Insert (rel, t) -> Format.fprintf ppf "+%s%a" rel Tuple.pp t
  | Delete (rel, t) -> Format.fprintf ppf "-%s%a" rel Tuple.pp t

let pp ppf txn =
  Format.pp_print_list ~pp_sep:Format.pp_print_space pp_op ppf txn
