(** Typed atomic values stored in database relations.

    Values are the constants of the whole system: they populate tuples, appear
    as constants in constraint formulas, and are compared by selection
    predicates. Four primitive types are supported: integers, strings,
    booleans and reals. *)

(** The type of an atomic value. *)
type ty =
  | TInt
  | TStr
  | TBool
  | TReal

(** An atomic value. *)
type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Real of float

val type_of : t -> ty
(** [type_of v] is the runtime type of [v]. *)

val ty_name : ty -> string
(** [ty_name ty] is the concrete-syntax name of [ty]:
    ["int"], ["str"], ["bool"] or ["real"]. *)

val ty_of_name : string -> ty option
(** [ty_of_name s] parses a type name as printed by {!ty_name}. *)

val compare : t -> t -> int
(** Total order on values. Values of distinct types are ordered by type
    ([Int < Str < Bool < Real]); values of the same type are ordered by their
    natural order. *)

val equal : t -> t -> bool
(** [equal a b] is [compare a b = 0]. *)

val hash : t -> int
(** A hash compatible with {!equal}. *)

val numeric : t -> float option
(** [numeric v] is the numeric magnitude of [v] if it is an [Int] or [Real],
    and [None] otherwise. Used by order comparisons in constraint formulas,
    which are only defined on numeric values. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer. Strings are printed quoted with escapes so that the
    output can be re-parsed by {!of_string}. *)

val pp_ty : Format.formatter -> ty -> unit
(** Pretty-printer for types. *)

val to_string : t -> string
(** [to_string v] is [Format.asprintf "%a" pp v]. *)

val of_string : string -> (t, string) result
(** [of_string s] parses the concrete syntax produced by {!to_string}:
    integer literals, [true]/[false], floating literals (containing ['.']),
    and double-quoted strings. Returns [Error msg] on malformed input. *)
