module Value = Rtic_relational.Value
module Tuple = Rtic_relational.Tuple
module Schema = Rtic_relational.Schema
module Relation = Rtic_relational.Relation
module Database = Rtic_relational.Database
module Interval = Rtic_temporal.Interval
module Formula = Rtic_mtl.Formula
module Rewrite = Rtic_mtl.Rewrite
module Safety = Rtic_mtl.Safety
module Typecheck = Rtic_mtl.Typecheck
module Closure = Rtic_mtl.Closure
module Pretty = Rtic_mtl.Pretty
module Valrel = Rtic_eval.Valrel
module Fo = Rtic_eval.Fo

let ( let* ) r f = Result.bind r f

type kind =
  | KPrev of Interval.t * Formula.t
  | KOnce of Interval.t * Formula.t
  | KSince of Interval.t * bool * Formula.t * Formula.t * int array

type node = {
  formula : Formula.t;
  aux_name : string;
  cols : string list;  (* sorted free variables *)
  kind : kind;
}

type program = {
  d : Formula.def;
  norm : Formula.t;
  nodes : node array;
  aux_cat : Schema.Catalog.t;
}

type engine = {
  prog : program;
  aux : Database.t;
  last_time : int option;
  needs_prev : bool;
  prev_db : Database.t option;
}

type rule_desc = {
  rule_name : string;
  target : string;
  on_formula : string;
  description : string;
}

module Formula_map = Map.Make (struct
  type t = Formula.t

  let compare = Formula.compare
end)

let embed sub sup =
  let sup = Array.of_list sup in
  Array.of_list
    (List.map
       (fun c ->
         let rec find i =
           if i >= Array.length sup then
             invalid_arg "Active.Compile: column embedding failure"
           else if sup.(i) = c then i
           else find (i + 1)
         in
         find 0)
       sub)

let compile cat (d : Formula.def) =
  let* () = Safety.monitorable cat d in
  let* () =
    if Formula.past_only d.body then Ok ()
    else
      Error
        (Printf.sprintf
           "constraint %s uses future operators; monitor it with \
            Rtic_core.Future instead of compiled active rules"
           d.name)
  in
  let* env = Typecheck.check_def cat d in
  let norm = Rewrite.normalize d.body in
  let closure = Closure.build norm in
  let var_ty v =
    match List.assoc_opt v env with
    | Some ty -> Ok ty
    | None -> Error ("cannot type auxiliary column for variable " ^ v)
  in
  let* nodes =
    Array.to_list (Closure.nodes closure)
    |> List.mapi (fun i f -> (i, f))
    |> List.fold_left
         (fun acc (i, f) ->
           let* acc = acc in
           let cols = Formula.free_var_list f in
           let* _tys =
             List.fold_left
               (fun acc v ->
                 let* acc = acc in
                 let* ty = var_ty v in
                 Ok (ty :: acc))
               (Ok []) cols
           in
           let kind =
             match f with
             | Formula.Prev (iv, a) -> KPrev (iv, a)
             | Formula.Once (iv, a) -> KOnce (iv, a)
             | Formula.Since (iv, a, b) ->
               let negated, left =
                 match a with
                 | Formula.Not a' -> (true, a')
                 | _ -> (false, a)
               in
               KSince (iv, negated, left, b, embed (Formula.free_var_list left) cols)
             | _ -> assert false
           in
           Ok ({ formula = f; aux_name = Printf.sprintf "_aux%d" i; cols; kind } :: acc))
         (Ok [])
    |> Result.map List.rev
  in
  let* aux_cat =
    List.fold_left
      (fun acc n ->
        let* acc = acc in
        let* attrs =
          List.fold_left
            (fun acc v ->
              let* acc = acc in
              let* ty = var_ty v in
              Ok ((v, ty) :: acc))
            (Ok []) n.cols
          |> Result.map List.rev
        in
        Ok (Schema.Catalog.add (Schema.make n.aux_name (attrs @ [ ("_ts", Value.TInt) ])) acc))
      (Ok Schema.Catalog.empty) nodes
  in
  Ok { d; norm; nodes = Array.of_list nodes; aux_cat }

let rules prog =
  Array.to_list prog.nodes
  |> List.map (fun n ->
      let on_formula = Pretty.to_string n.formula in
      let description =
        match n.kind with
        | KPrev (iv, a) ->
          Printf.sprintf
            "ON COMMIT AT ts: DELETE FROM %s; INSERT the current relation of \
             %s stamped ts. (Read back as: rows whose age at the next commit \
             lies in %s.)"
            n.aux_name (Pretty.to_string a)
            (Format.asprintf "%a" Interval.pp_always iv)
        | KOnce (iv, a) ->
          Printf.sprintf
            "ON COMMIT AT ts: INSERT (v, ts) for every v in the current \
             relation of %s; DELETE rows older than %s; verdict rows are \
             those with age in %s."
            (Pretty.to_string a)
            (match Interval.hi iv with
             | Some u -> Printf.sprintf "%d ticks (window bound)" u
             | None -> "never (keep the oldest witness per valuation)")
            (Format.asprintf "%a" Interval.pp_always iv)
        | KSince (iv, negated, left, right, _) ->
          Printf.sprintf
            "ON COMMIT AT ts: DELETE rows whose valuation %s the current \
             relation of %s; INSERT (v, ts) for every v in the current \
             relation of %s; DELETE rows older than %s; verdict rows are \
             those with age in %s."
            (if negated then "matches" else "fails to match")
            (Pretty.to_string left) (Pretty.to_string right)
            (match Interval.hi iv with
             | Some u -> Printf.sprintf "%d ticks" u
             | None -> "never (keep the oldest witness per valuation)")
            (Format.asprintf "%a" Interval.pp_always iv)
      in
      { rule_name = "maintain_" ^ n.aux_name;
        target = n.aux_name;
        on_formula;
        description })

let aux_catalog prog = prog.aux_cat

let start prog =
  { prog;
    aux = Database.create prog.aux_cat;
    last_time = None;
    needs_prev = Formula.has_transition_atoms prog.norm;
    prev_db = None }

(* Conversions between auxiliary table rows (valuation ++ [_ts]) and
   valuation relations. *)

let table_to_valrel ~cols ~time iv rel =
  let k = List.length cols in
  let rows =
    Relation.fold
      (fun row acc ->
        let ts =
          match row.(k) with
          | Value.Int t -> t
          | _ -> invalid_arg "Active: corrupt _ts column"
        in
        if Interval.mem (time - ts) iv then
          Array.sub row 0 k :: acc
        else acc)
      rel []
  in
  Valrel.make cols rows

let valrel_to_rows ~time vr =
  Valrel.fold
    (fun row acc -> Array.append row [| Value.Int time |] :: acc)
    vr []

let prune_table iv ~time rel =
  let k = Relation.arity rel - 1 in
  match Interval.hi iv with
  | Some u ->
    Relation.filter
      (fun row ->
        match row.(k) with
        | Value.Int t -> time - t <= u
        | _ -> false)
      rel
  | None ->
    (* keep the minimal timestamp per valuation *)
    let best = Hashtbl.create 16 in
    Relation.iter
      (fun row ->
        let key = Array.sub row 0 k in
        let ts = match row.(k) with Value.Int t -> t | _ -> max_int in
        match Hashtbl.find_opt best key with
        | Some t0 when t0 <= ts -> ()
        | _ -> Hashtbl.replace best key ts)
      rel;
    Relation.filter
      (fun row ->
        let key = Array.sub row 0 k in
        let ts = match row.(k) with Value.Int t -> t | _ -> max_int in
        Hashtbl.find_opt best key = Some ts)
      rel

let step eng ~time db =
  match eng.last_time with
  | Some t0 when time <= t0 ->
    Error (Printf.sprintf "non-increasing timestamp: %d after %d" time t0)
  | _ ->
    (try
       let memo = ref Formula_map.empty in
       let eval_fo f =
         Fo.eval ~db ?prev:eng.prev_db
           ~temporal:(fun g ->
             match Formula_map.find_opt g !memo with
             | Some v -> v
             | None ->
               raise (Fo.Error ("active engine: node evaluated out of order: "
                                ^ Pretty.to_string g)))
           f
       in
       (* Fire maintenance rules bottom-up. *)
       let aux = ref eng.aux in
       Array.iter
         (fun n ->
           let old = Database.relation_exn !aux n.aux_name in
           let arity = Relation.arity old in
           let updated =
             match n.kind with
             | KPrev (_, a) ->
               let na = eval_fo a in
               Relation.of_list arity (valrel_to_rows ~time na)
             | KOnce (iv, a) ->
               let na = eval_fo a in
               let merged =
                 List.fold_left
                   (fun acc row -> Relation.add row acc)
                   old
                   (valrel_to_rows ~time na)
               in
               prune_table iv ~time merged
             | KSince (iv, negated, left, right, proj) ->
               let nl = eval_fo left in
               let nr = eval_fo right in
               let survivors =
                 Relation.filter
                   (fun row ->
                     let lrow = Array.map (fun i -> row.(i)) proj in
                     let matches = Valrel.mem lrow nl in
                     if negated then not matches else matches)
                   old
               in
               let merged =
                 List.fold_left
                   (fun acc row -> Relation.add row acc)
                   survivors
                   (valrel_to_rows ~time nr)
               in
               prune_table iv ~time merged
           in
           (match Database.with_relation !aux n.aux_name updated with
            | Ok db' -> aux := db'
            | Error m -> raise (Fo.Error m));
           (* The node's current value, read back from the freshly
              maintained table. *)
           let iv =
             match n.kind with
             | KPrev (iv, _) | KOnce (iv, _) | KSince (iv, _, _, _, _) -> iv
           in
           let value =
             match n.kind with
             | KPrev (iv, _) ->
               (* rows are stamped with the previous commit time; the gap
                  must lie in the interval *)
               (match eng.last_time with
                | None -> Valrel.none n.cols
                | Some _ ->
                  table_to_valrel ~cols:n.cols ~time iv
                    (Database.relation_exn eng.aux n.aux_name))
             | KOnce _ | KSince _ ->
               table_to_valrel ~cols:n.cols ~time iv
                 (Database.relation_exn !aux n.aux_name)
           in
           memo := Formula_map.add n.formula value !memo)
         eng.prog.nodes;
       let satisfied = Valrel.holds (eval_fo eng.prog.norm) in
       Ok
         ( { eng with
             aux = !aux;
             last_time = Some time;
             prev_db = (if eng.needs_prev then Some db else None) },
           satisfied )
     with Fo.Error m -> Error m)

let aux_database eng = eng.aux

let space eng =
  Database.fold (fun _ r acc -> acc + Relation.cardinal r) (aux_database eng) 0
