(** Compilation of real-time constraints into active-DBMS rules.

    The companion implementation path (following the "Implementing Temporal
    Integrity Constraints Using an Active DBMS" line of work): instead of
    keeping the bounded history encoding in checker-private data structures,
    the constraint is {e compiled} into

    - one {e auxiliary table} per temporal subformula, materialized inside a
      database ([_aux0], [_aux1], ...) whose schema is the subformula's free
      variables plus a [_ts] timestamp column, and
    - one {e maintenance rule} per table, fired on every transaction commit,
      which rebuilds the table from the committed user state and the
      previous table contents (insert new witnesses, keep survivors, delete
      expired rows), and
    - a {e violation query}, evaluated last, which decides the verdict.

    The rules the compiler emits can be inspected with {!rules} — each
    carries a human-readable description of the trigger it would become on a
    production active DBMS. Verdicts are identical to
    {!Rtic_core.Incremental} (property-tested); the two differ in where the
    encoding lives, which is exactly the ablation of experiment E8. *)

type program
(** A compiled constraint. *)

type engine
(** Execution state: the auxiliary database plus the clock. *)

type rule_desc = {
  rule_name : string;     (** e.g. ["maintain__aux0"]. *)
  target : string;        (** The auxiliary table it maintains. *)
  on_formula : string;    (** The temporal subformula, pretty-printed. *)
  description : string;   (** What the rule does, in words. *)
}

val compile :
  Rtic_relational.Schema.Catalog.t ->
  Rtic_mtl.Formula.def ->
  (program, string) result
(** Admit and compile a constraint (same admission checks as the
    incremental checker: typed, closed, monitorable). *)

val rules : program -> rule_desc list
(** The maintenance rules, in firing (bottom-up) order. *)

val aux_catalog : program -> Rtic_relational.Schema.Catalog.t
(** The schemas of the generated auxiliary tables. *)

val start : program -> engine
(** Fresh engine with empty auxiliary tables. *)

val step :
  engine ->
  time:int ->
  Rtic_relational.Database.t ->
  (engine * bool, string) result
(** Fire all maintenance rules against the committed state [db], then
    evaluate the violation query; returns whether the constraint is
    satisfied. Fails on non-increasing timestamps. *)

val aux_database : engine -> Rtic_relational.Database.t
(** The current auxiliary tables (inspectable, e.g. for [rtic explain]). *)

val space : engine -> int
(** Total rows stored across auxiliary tables (comparable to
    {!Rtic_core.Incremental.space}). *)
