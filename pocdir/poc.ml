let () =
  let text = Printf.sprintf "rtic-wal/1\nstart 0\ntxn 5 %d 00000000\n" max_int in
  (match Rtic_core.Wal.recover text with
  | Ok w ->
    Printf.printf "ok: records=%d torn=%s\n" (List.length w.Rtic_core.Wal.records)
      (match w.Rtic_core.Wal.torn with Some r -> r | None -> "none")
  | Error e -> Printf.printf "error: %s\n" e
  | exception e -> Printf.printf "EXCEPTION: %s\n" (Printexc.to_string e))
