(* Quickstart: declare a schema, write a real-time constraint, feed
   transactions, get violations.

   Run with:  dune exec examples/quickstart.exe *)

module Value = Rtic_relational.Value
module Schema = Rtic_relational.Schema
module Update = Rtic_relational.Update
module Parser = Rtic_mtl.Parser
module Monitor = Rtic_core.Monitor

let or_die = function
  | Ok v -> v
  | Error m ->
    prerr_endline ("quickstart: " ^ m);
    exit 1

let () =
  (* 1. A catalog: employees and their salaries. *)
  let cat =
    Schema.Catalog.of_list
      [ Schema.make "emp" [ ("name", Value.TStr); ("sal", Value.TInt) ] ]
  in

  (* 2. A real-time integrity constraint, in concrete syntax: a salary may
        never be lower than any salary the same employee had before. *)
  let d =
    or_die
      (Parser.def_of_string
         "constraint salary_monotone:\n\
         \  forall e, s, t. emp(e, s) & prev once emp(e, t) -> s >= t ;")
  in

  (* 3. A monitor. Admission type-checks the constraint against the catalog
        and verifies it is monitorable. *)
  let m = or_die (Monitor.create cat [ d ]) in

  (* 4. Feed timestamped transactions. Each commit re-checks the constraint
        against the new state using only the bounded history encoding. *)
  let steps =
    [ (0, [ Update.insert "emp" [ Value.Str "amy"; Value.Int 100 ] ]);
      (5, [ Update.delete "emp" [ Value.Str "amy"; Value.Int 100 ];
            Update.insert "emp" [ Value.Str "amy"; Value.Int 120 ] ]);
      (* time 9: oops — amy's salary drops below a past value *)
      (9, [ Update.delete "emp" [ Value.Str "amy"; Value.Int 120 ];
            Update.insert "emp" [ Value.Str "amy"; Value.Int 110 ] ]) ]
  in
  let _m =
    List.fold_left
      (fun m (time, txn) ->
        let m, reports = or_die (Monitor.step m ~time txn) in
        List.iter
          (fun r -> Format.printf "%a@." Monitor.pp_report r)
          reports;
        m)
      m steps
  in
  print_endline "quickstart: done"
