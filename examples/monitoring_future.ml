(* Process monitoring with bounded-future operators: "every fault must be
   alarmed within 8 ticks" is a future-looking requirement, monitored by
   verdict delay (the paper's future-work direction).

   Run with:  dune exec examples/monitoring_future.exe *)

module Value = Rtic_relational.Value
module Schema = Rtic_relational.Schema
module Update = Rtic_relational.Update
module Trace = Rtic_temporal.Trace
module History = Rtic_temporal.History
module Parser = Rtic_mtl.Parser
module Future = Rtic_core.Future

let or_die = function
  | Ok v -> v
  | Error m ->
    prerr_endline ("monitoring_future: " ^ m);
    exit 1

let () =
  let cat =
    Schema.Catalog.of_list
      [ Schema.make "fault" [ ("id", Value.TStr) ];
        Schema.make "alarm" [ ("id", Value.TStr) ] ]
  in
  let d =
    or_die
      (Parser.def_of_string
         "constraint fault_alarmed:\n\
         \  forall i. fault(i) -> eventually[0,8] alarm(i) ;")
  in
  let st = or_die (Future.create cat d) in
  Format.printf "verdict delay (horizon): %d ticks@.@." (Future.horizon st);

  (* s1 faults at t=2 and is alarmed at t=7 (in time);
     s2 faults at t=10 and is never alarmed. *)
  let ev rel id = Update.insert rel [ Value.Str id ] in
  let unev rel id = Update.delete rel [ Value.Str id ] in
  let steps =
    [ (2, [ ev "fault" "s1" ]);
      (7, [ unev "fault" "s1"; ev "alarm" "s1" ]);
      (10, [ unev "alarm" "s1"; ev "fault" "s2" ]);
      (12, [ unev "fault" "s2" ]);
      (25, []) ]
  in
  let tr = Trace.make_exn cat steps in
  let h = or_die (Trace.materialize tr) in
  let st =
    List.fold_left
      (fun st (time, db) ->
        let st, verdicts = or_die (Future.step st ~time db) in
        List.iter
          (fun (v : Future.verdict) ->
            Format.printf
              "state %d (time %2d) decided at time %2d: %s@."
              v.index v.time time
              (if v.satisfied then "ok" else "VIOLATED"))
          verdicts;
        st)
      st (History.snapshots h)
  in
  List.iter
    (fun (v : Future.verdict) ->
      Format.printf "state %d (time %2d) decided at end:     %s@."
        v.index v.time
        (if v.satisfied then "ok" else "VIOLATED"))
    (Future.finish st)
