(* Banking scenario: run the monitor over a synthetic banking workload and
   compare the incremental checker's space against the naive baseline.

   Run with:  dune exec examples/banking.exe *)

module Trace = Rtic_temporal.Trace
module History = Rtic_temporal.History
module Formula = Rtic_mtl.Formula
module Incremental = Rtic_core.Incremental
module Monitor = Rtic_core.Monitor
module Scenarios = Rtic_workload.Scenarios

let or_die = function
  | Ok v -> v
  | Error m ->
    prerr_endline ("banking: " ^ m);
    exit 1

let () =
  let sc = Scenarios.banking in
  Format.printf "Constraints of the %s scenario:@." sc.Scenarios.name;
  List.iter
    (fun (d : Formula.def) ->
      Format.printf "  %s  (past window %s)@." d.name
        (match Formula.time_reach d.body with
         | Some w -> string_of_int w ^ " ticks"
         | None -> "unbounded"))
    sc.Scenarios.constraints;

  (* A 500-transaction stream in which roughly 5%% of the steps misbehave. *)
  let tr = sc.Scenarios.generate ~seed:2024 ~steps:500 ~violation_rate:0.05 in
  let reports = or_die (Monitor.run_trace sc.Scenarios.constraints tr) in
  Format.printf "@.%d transactions, %d violations:@." (Trace.length tr)
    (List.length reports);
  List.iteri
    (fun i r -> if i < 8 then Format.printf "  %a@." Monitor.pp_report r)
    reports;
  if List.length reports > 8 then
    Format.printf "  ... and %d more@." (List.length reports - 8);

  (* Space: what the incremental checker keeps vs. what the naive checker
     would have to keep (the whole history). *)
  let h = or_die (Trace.materialize tr) in
  let m =
    List.fold_left
      (fun m (time, db) ->
        List.map (fun st -> fst (or_die (Incremental.step st ~time db))) m)
      (List.map
         (fun d -> or_die (Incremental.create sc.Scenarios.catalog d))
         sc.Scenarios.constraints)
      (History.snapshots h)
  in
  let aux_space =
    List.fold_left (fun acc st -> acc + Incremental.space st) 0 m
  in
  Format.printf
    "@.space after %d transactions:@.  bounded history encoding: %d stored \
     pairs@.  naive full history:       %d stored tuples@."
    (Trace.length tr) aux_space (History.stored_tuples h);
  List.iter
    (fun st ->
      Format.printf "  - %s:@." (Incremental.def st).Formula.name;
      List.iter
        (fun (sub, n) -> Format.printf "      %-50s %d@." sub n)
        (Incremental.space_detail st))
    m
