(* Compare all four checking engines on the same workload: the incremental
   bounded-history-encoding checker, the unpruned ablation, the compiled
   active rules, and the naive full-history baseline.

   Run with:  dune exec examples/compare_engines.exe *)

module Trace = Rtic_temporal.Trace
module History = Rtic_temporal.History
module Formula = Rtic_mtl.Formula
module Incremental = Rtic_core.Incremental
module Naive = Rtic_eval.Naive
module Compile = Rtic_active.Compile
module Scenarios = Rtic_workload.Scenarios

let or_die = function
  | Ok v -> v
  | Error m ->
    prerr_endline ("compare_engines: " ^ m);
    exit 1

let time_it f =
  let t0 = Sys.time () in
  let x = f () in
  (x, (Sys.time () -. t0) *. 1000.)

let () =
  let sc = Scenarios.logistics in
  let tr = sc.Scenarios.generate ~seed:11 ~steps:250 ~violation_rate:0.08 in
  let h = or_die (Trace.materialize tr) in
  let snaps = History.snapshots h in
  Format.printf "workload: %s scenario, %d transactions, %d constraints@.@."
    sc.Scenarios.name (Trace.length tr)
    (List.length sc.Scenarios.constraints);
  Format.printf "%-34s %8s %10s %10s@." "engine" "viol" "time(ms)" "space";
  let d = sc.Scenarios.constraints in

  let run_incremental config =
    List.fold_left
      (fun (sts, bad) (time, db) ->
        let sts, bad =
          List.fold_left
            (fun (acc, bad) st ->
              let st, v = or_die (Incremental.step st ~time db) in
              (st :: acc, if v.Incremental.satisfied then bad else bad + 1))
            ([], bad) sts
        in
        (List.rev sts, bad))
      (List.map (fun d -> or_die (Incremental.create ~config sc.Scenarios.catalog d)) d, 0)
      snaps
  in
  let space sts = List.fold_left (fun a st -> a + Incremental.space st) 0 sts in

  let (sts, bad), t = time_it (fun () -> run_incremental { Incremental.prune = true }) in
  Format.printf "%-34s %8d %10.1f %10d@." "incremental (bounded encoding)" bad t (space sts);

  let (sts, bad), t = time_it (fun () -> run_incremental { Incremental.prune = false }) in
  Format.printf "%-34s %8d %10.1f %10d@." "incremental (pruning off)" bad t (space sts);

  let (engs, bad), t =
    time_it (fun () ->
        List.fold_left
          (fun (engs, bad) (time, db) ->
            let engs, bad =
              List.fold_left
                (fun (acc, bad) eng ->
                  let eng, ok = or_die (Compile.step eng ~time db) in
                  (eng :: acc, if ok then bad else bad + 1))
                ([], bad) engs
            in
            (List.rev engs, bad))
          ( List.map
              (fun d -> Compile.start (or_die (Compile.compile sc.Scenarios.catalog d)))
              d,
            0 )
          snaps)
  in
  let rules_space = List.fold_left (fun a e -> a + Compile.space e) 0 engs in
  Format.printf "%-34s %8d %10.1f %10d@." "compiled active rules" bad t rules_space;

  let bad, t =
    time_it (fun () ->
        List.fold_left
          (fun bad c -> bad + List.length (or_die (Naive.violations h c)))
          0 d)
  in
  Format.printf "%-34s %8d %10.1f %10d@." "naive (full history)" bad t
    (History.stored_tuples h);
  Format.printf
    "@.(all engines must agree on the violation count; the space column is\n\
     \ what each keeps: auxiliary pairs vs the whole stored history)@."
