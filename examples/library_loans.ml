(* Library loans: a hand-written story in the textual trace format, checked
   against the three library constraints, with witnesses for each violation.

   Run with:  dune exec examples/library_loans.exe *)

module Trace = Rtic_temporal.Trace
module History = Rtic_temporal.History
module Formula = Rtic_mtl.Formula
module Parser = Rtic_mtl.Parser
module Rewrite = Rtic_mtl.Rewrite
module Valrel = Rtic_eval.Valrel
module Naive = Rtic_eval.Naive
module Monitor = Rtic_core.Monitor

let or_die = function
  | Ok v -> v
  | Error m ->
    prerr_endline ("library_loans: " ^ m);
    exit 1

(* The story: ann is a member and borrows b1; ben (not a member!) borrows
   b2; ann returns b1 late — after the 28-tick loan period; cat borrows b1
   while... no, after it was returned, which is fine; then cat borrows b2
   even though ben still has it out. *)
let trace_text =
  {|
schema member(patron:str)
schema borrow(patron:str, book:str)
schema return(patron:str, book:str)

@0
+member("ann")
+member("cat")
@2
+borrow("ann", "b1")            # fine: ann is a member
@3
-borrow("ann", "b1")
+borrow("ben", "b2")            # violation: ben is not a member
@4
-borrow("ben", "b2")
@33
+return("ann", "b1")            # violation at 31+: the loan expired at 30
@34
-return("ann", "b1")
+borrow("cat", "b1")            # fine: b1 was returned
@36
-borrow("cat", "b1")
+borrow("cat", "b2")            # violation: b2 is still out with ben
|}

let spec_text =
  {|
constraint member_borrow:
  forall p, b. borrow(p, b) -> member(p) ;
constraint no_double_borrow:
  forall p, b. borrow(p, b) ->
    not prev ((not (exists q. return(q, b))) since (exists q. borrow(q, b))) ;
constraint loan_expiry:
  not (exists b. ((not (exists q. return(q, b))) since[29,inf]
                  (exists p. borrow(p, b)))) ;
|}

let () =
  let tr = or_die (Trace.parse trace_text) in
  let defs = (or_die (Parser.spec_of_string spec_text)).Parser.defs in
  let reports = or_die (Monitor.run_trace defs tr) in
  let h = or_die (Trace.materialize tr) in
  Format.printf "%d violations:@." (List.length reports);
  List.iter
    (fun (r : Monitor.report) ->
      Format.printf "@.%a@." Monitor.pp_report r;
      let d = List.find (fun (d : Formula.def) -> d.name = r.constraint_name) defs in
      match Rewrite.normalize d.body with
      | Formula.Not (Formula.Exists (_, g)) | Formula.Not g ->
        (match Naive.eval h r.position g with
         | Ok vr ->
           List.iter
             (fun bindings ->
               Format.printf "    who/what: %s@."
                 (String.concat ", "
                    (List.map
                       (fun (v, value) ->
                         Printf.sprintf "%s = %s" v
                           (Rtic_relational.Value.to_string value))
                       bindings)))
             (Valrel.bindings vr)
         | Error _ -> ())
      | _ -> ())
    reports
