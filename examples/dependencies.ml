(* Classical dependencies and fleet monitoring: declare keys and inclusion
   dependencies in a spec file, monitor them together with temporal
   constraints in one shared kernel, and summarize the run.

   Run with:  dune exec examples/dependencies.exe *)

module Trace = Rtic_temporal.Trace
module Parser = Rtic_mtl.Parser
module Formula = Rtic_mtl.Formula
module Shared = Rtic_core.Shared
module Monitor = Rtic_core.Monitor
module Stats = Rtic_core.Stats

let or_die = function
  | Ok v -> v
  | Error m ->
    prerr_endline ("dependencies: " ^ m);
    exit 1

let spec_text =
  {|
schema employee(name:str, salary:int, dept:str)
schema department(dname:str, head:str)

key employee(name)                       # one salary/department per employee
key department(dname)
reference employee(dept) -> department(dname)
reference department(head) -> employee(name)

constraint salary_monotone:
  forall e, s, d, t, d2. employee(e, s, d) & prev once employee(e, t, d2)
    -> s >= t ;
constraint heads_are_stable:             # at most one head change per 20 ticks
  forall d, h. department(d, h) & not prev department(d, h)
    -> not once[1,20] (exists h0. (department(d, h0)
                                   & not prev department(d, h0))) ;
|}

let trace_text =
  {|
schema employee(name:str, salary:int, dept:str)
schema department(dname:str, head:str)

@0
+employee("amy", 100, "cs")
+department("cs", "amy")
@4
+employee("bob", 90, "cs")
@9
+employee("bob", 95, "cs")        # key violation: bob now has two rows
@12
-employee("bob", 90, "cs")        # fixed
@15
+employee("cho", 80, "ee")        # dangling department "ee"
@20
+department("ee", "cho")          # fixed
@26
-department("cs", "amy")
+department("cs", "bob")          # head change; last change was at 0: fine
@31
-department("cs", "bob")
+department("cs", "amy")          # flapping head: violates heads_are_stable
@40
-employee("amy", 100, "cs")
+employee("amy", 90, "cs")        # salary decrease
|}

let () =
  let spec = or_die (Parser.spec_of_string spec_text) in
  Format.printf "constraints (declared + generated):@.";
  List.iter
    (fun (d : Formula.def) -> Format.printf "  %s@." d.name)
    spec.Parser.defs;
  let tr = or_die (Trace.parse trace_text) in
  let m = or_die (Shared.create spec.Parser.catalog spec.Parser.defs) in
  Format.printf "@.shared kernel: %d temporal subformula(s) for %d constraints@."
    (Shared.shared_nodes m)
    (List.length spec.Parser.defs);
  let _, stats =
    List.fold_left
      (fun (m, stats) (time, txn) ->
        let m, reports = or_die (Shared.step m ~time txn) in
        List.iter
          (fun r -> Format.printf "  %a@." Monitor.pp_report r)
          reports;
        ( m,
          Stats.observe stats ~time ~space:(Shared.space m) ~reports ))
      (m, Stats.empty) tr.Trace.steps
  in
  Format.printf "@.%a@." Stats.pp stats
